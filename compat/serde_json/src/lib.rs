//! Offline vendored shim for the subset of `serde_json` used by this
//! workspace: `to_string`, `to_string_pretty`, `from_str`, `Value`, and the
//! `json!` macro, all in terms of the serde shim's [`Content`] data model.

pub use serde::Content as Value;
use serde::{Content, DeError, Deserialize, Serialize};

// The `json!` macro needs `serde` even when the calling crate does not
// depend on it directly, so re-export it under `$crate`.
#[doc(hidden)]
pub use serde as __serde;

/// Error type shared by serialization and parsing.
pub type Error = DeError;
pub type Result<T> = std::result::Result<T, Error>;

pub fn to_string<T: Serialize + ?Sized>(value: &T) -> Result<String> {
    let mut out = String::new();
    write_content(&value.to_content(), &mut out, None, 0);
    Ok(out)
}

pub fn to_string_pretty<T: Serialize + ?Sized>(value: &T) -> Result<String> {
    let mut out = String::new();
    write_content(&value.to_content(), &mut out, Some(2), 0);
    Ok(out)
}

pub fn from_str<T: Deserialize>(s: &str) -> Result<T> {
    let mut parser = Parser {
        bytes: s.as_bytes(),
        pos: 0,
    };
    parser.skip_ws();
    let content = parser.parse_value()?;
    parser.skip_ws();
    if parser.pos != parser.bytes.len() {
        return Err(DeError::custom(format!(
            "trailing characters at offset {}",
            parser.pos
        )));
    }
    T::from_content(&content)
}

/// Builds a [`Value`] from JSON-ish literal syntax. Supports objects,
/// arrays, `null`, and arbitrary serializable expressions as values
/// (including multi-token expressions like `result.dpr()`), with optional
/// trailing commas.
#[macro_export]
macro_rules! json {
    (null) => { $crate::Value::Null };
    ([ $($tt:tt)* ]) => { $crate::Value::Seq($crate::json_internal_seq!([] $($tt)*)) };
    ({ $($tt:tt)* }) => { $crate::Value::Map($crate::json_internal_map!([] $($tt)*)) };
    ($other:expr) => { $crate::__serde::Serialize::to_content(&$other) };
}

// Token munchers for `json!`: values are accumulated one token tree at a
// time until a top-level comma, then re-dispatched through `json!`.
#[macro_export]
#[doc(hidden)]
macro_rules! json_internal_map {
    ([$($done:expr,)*]) => { ::std::vec![$($done,)*] };
    ([$($done:expr,)*] $key:literal : $($rest:tt)*) => {
        $crate::json_map_munch!([$($done,)*] $key; []; $($rest)*)
    };
}

#[macro_export]
#[doc(hidden)]
macro_rules! json_map_munch {
    ([$($done:expr,)*] $key:literal; [$($val:tt)*];) => {
        ::std::vec![$($done,)* (::std::string::String::from($key), $crate::json!($($val)*)),]
    };
    ([$($done:expr,)*] $key:literal; [$($val:tt)*]; , $($rest:tt)*) => {
        $crate::json_internal_map!(
            [$($done,)* (::std::string::String::from($key), $crate::json!($($val)*)),]
            $($rest)*
        )
    };
    ([$($done:expr,)*] $key:literal; [$($val:tt)*]; $next:tt $($rest:tt)*) => {
        $crate::json_map_munch!([$($done,)*] $key; [$($val)* $next]; $($rest)*)
    };
}

#[macro_export]
#[doc(hidden)]
macro_rules! json_internal_seq {
    ([$($done:expr,)*]) => { ::std::vec![$($done,)*] };
    ([$($done:expr,)*] $($rest:tt)+) => {
        $crate::json_seq_munch!([$($done,)*]; []; $($rest)+)
    };
}

#[macro_export]
#[doc(hidden)]
macro_rules! json_seq_munch {
    ([$($done:expr,)*]; [$($val:tt)*];) => {
        ::std::vec![$($done,)* $crate::json!($($val)*),]
    };
    ([$($done:expr,)*]; [$($val:tt)*]; , $($rest:tt)*) => {
        $crate::json_internal_seq!([$($done,)* $crate::json!($($val)*),] $($rest)*)
    };
    ([$($done:expr,)*]; [$($val:tt)*]; $next:tt $($rest:tt)*) => {
        $crate::json_seq_munch!([$($done,)*]; [$($val)* $next]; $($rest)*)
    };
}

// ------------------------------------------------------------- rendering

fn write_escaped(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

fn write_f64(v: f64, out: &mut String) {
    if v.is_finite() {
        if v == v.trunc() && v.abs() < 1e15 {
            // Keep integral floats readable ("3.0" not "3").
            out.push_str(&format!("{v:.1}"));
        } else {
            out.push_str(&format!("{v}"));
        }
    } else {
        // JSON has no Inf/NaN; serde_json emits null.
        out.push_str("null");
    }
}

fn write_content(c: &Content, out: &mut String, indent: Option<usize>, depth: usize) {
    match c {
        Content::Null => out.push_str("null"),
        Content::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        Content::U64(v) => out.push_str(&v.to_string()),
        Content::I64(v) => out.push_str(&v.to_string()),
        Content::F64(v) => write_f64(*v, out),
        Content::Str(s) => write_escaped(s, out),
        Content::Seq(items) => {
            write_block(items.iter().map(Entry::Seq), out, indent, depth, ['[', ']'])
        }
        Content::Map(entries) => write_block(
            entries.iter().map(|(k, v)| Entry::Map(k, v)),
            out,
            indent,
            depth,
            ['{', '}'],
        ),
    }
}

enum Entry<'a> {
    Seq(&'a Content),
    Map(&'a String, &'a Content),
}

fn write_block<'a>(
    items: impl ExactSizeIterator<Item = Entry<'a>>,
    out: &mut String,
    indent: Option<usize>,
    depth: usize,
    brackets: [char; 2],
) {
    if items.len() == 0 {
        out.push(brackets[0]);
        out.push(brackets[1]);
        return;
    }
    out.push(brackets[0]);
    let n = items.len();
    for (i, entry) in items.enumerate() {
        if let Some(width) = indent {
            out.push('\n');
            out.push_str(&" ".repeat(width * (depth + 1)));
        }
        match entry {
            Entry::Seq(v) => write_content(v, out, indent, depth + 1),
            Entry::Map(k, v) => {
                write_escaped(k, out);
                out.push(':');
                if indent.is_some() {
                    out.push(' ');
                }
                write_content(v, out, indent, depth + 1);
            }
        }
        if i + 1 < n {
            out.push(',');
        }
    }
    if let Some(width) = indent {
        out.push('\n');
        out.push_str(&" ".repeat(width * depth));
    }
    out.push(brackets[1]);
}

// --------------------------------------------------------------- parsing

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn skip_ws(&mut self) {
        while self.pos < self.bytes.len()
            && matches!(self.bytes[self.pos], b' ' | b'\t' | b'\n' | b'\r')
        {
            self.pos += 1;
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, byte: u8) -> Result<()> {
        if self.peek() == Some(byte) {
            self.pos += 1;
            Ok(())
        } else {
            Err(DeError::custom(format!(
                "expected `{}` at offset {}",
                byte as char, self.pos
            )))
        }
    }

    fn eat_keyword(&mut self, kw: &str) -> bool {
        if self.bytes[self.pos..].starts_with(kw.as_bytes()) {
            self.pos += kw.len();
            true
        } else {
            false
        }
    }

    fn parse_value(&mut self) -> Result<Content> {
        self.skip_ws();
        match self.peek() {
            Some(b'n') if self.eat_keyword("null") => Ok(Content::Null),
            Some(b't') if self.eat_keyword("true") => Ok(Content::Bool(true)),
            Some(b'f') if self.eat_keyword("false") => Ok(Content::Bool(false)),
            Some(b'"') => self.parse_string().map(Content::Str),
            Some(b'[') => {
                self.pos += 1;
                let mut items = Vec::new();
                self.skip_ws();
                if self.peek() == Some(b']') {
                    self.pos += 1;
                    return Ok(Content::Seq(items));
                }
                loop {
                    items.push(self.parse_value()?);
                    self.skip_ws();
                    match self.peek() {
                        Some(b',') => {
                            self.pos += 1;
                        }
                        Some(b']') => {
                            self.pos += 1;
                            return Ok(Content::Seq(items));
                        }
                        _ => {
                            return Err(DeError::custom(format!(
                                "expected `,` or `]` at offset {}",
                                self.pos
                            )))
                        }
                    }
                }
            }
            Some(b'{') => {
                self.pos += 1;
                let mut entries = Vec::new();
                self.skip_ws();
                if self.peek() == Some(b'}') {
                    self.pos += 1;
                    return Ok(Content::Map(entries));
                }
                loop {
                    self.skip_ws();
                    let key = self.parse_string()?;
                    self.skip_ws();
                    self.expect(b':')?;
                    let value = self.parse_value()?;
                    entries.push((key, value));
                    self.skip_ws();
                    match self.peek() {
                        Some(b',') => {
                            self.pos += 1;
                        }
                        Some(b'}') => {
                            self.pos += 1;
                            return Ok(Content::Map(entries));
                        }
                        _ => {
                            return Err(DeError::custom(format!(
                                "expected `,` or `}}` at offset {}",
                                self.pos
                            )))
                        }
                    }
                }
            }
            Some(c) if c == b'-' || c.is_ascii_digit() => self.parse_number(),
            _ => Err(DeError::custom(format!(
                "unexpected character at offset {}",
                self.pos
            ))),
        }
    }

    fn parse_string(&mut self) -> Result<String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    let esc = self
                        .peek()
                        .ok_or_else(|| DeError::custom("unterminated escape"))?;
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'b' => out.push('\u{8}'),
                        b'f' => out.push('\u{c}'),
                        b'u' => {
                            let hex = self
                                .bytes
                                .get(self.pos..self.pos + 4)
                                .ok_or_else(|| DeError::custom("truncated \\u escape"))?;
                            let code = u32::from_str_radix(
                                std::str::from_utf8(hex)
                                    .map_err(|_| DeError::custom("bad \\u escape"))?,
                                16,
                            )
                            .map_err(|_| DeError::custom("bad \\u escape"))?;
                            self.pos += 4;
                            // Surrogate pairs are not needed by this workspace.
                            out.push(
                                char::from_u32(code)
                                    .ok_or_else(|| DeError::custom("invalid \\u code point"))?,
                            );
                        }
                        other => {
                            return Err(DeError::custom(format!(
                                "invalid escape `\\{}`",
                                other as char
                            )))
                        }
                    }
                }
                Some(_) => {
                    // Consume one UTF-8 character.
                    let rest = std::str::from_utf8(&self.bytes[self.pos..])
                        .map_err(|_| DeError::custom("invalid utf-8 in string"))?;
                    let c = rest.chars().next().unwrap();
                    out.push(c);
                    self.pos += c.len_utf8();
                }
                None => return Err(DeError::custom("unterminated string")),
            }
        }
    }

    fn parse_number(&mut self) -> Result<Content> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let mut is_float = false;
        while let Some(c) = self.peek() {
            match c {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    is_float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| DeError::custom("invalid number"))?;
        if !is_float {
            if let Ok(v) = text.parse::<u64>() {
                return Ok(Content::U64(v));
            }
            if let Ok(v) = text.parse::<i64>() {
                return Ok(Content::I64(v));
            }
        }
        text.parse::<f64>()
            .map(Content::F64)
            .map_err(|_| DeError::custom(format!("invalid number `{text}`")))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashMap;

    #[test]
    fn scalar_roundtrip() {
        assert_eq!(to_string(&3.5f32).unwrap(), "3.5");
        assert_eq!(to_string(&42u64).unwrap(), "42");
        assert_eq!(to_string(&-7i32).unwrap(), "-7");
        assert_eq!(to_string(&true).unwrap(), "true");
        assert_eq!(to_string("hi").unwrap(), "\"hi\"");
        assert_eq!(from_str::<f64>("3.5").unwrap(), 3.5);
        assert_eq!(from_str::<u64>("18446744073709551615").unwrap(), u64::MAX);
        assert_eq!(from_str::<i64>("-3").unwrap(), -3);
    }

    #[test]
    fn u64_seed_roundtrips_exactly() {
        let seed = 0xFAB_F11Bu64;
        let json = to_string(&seed).unwrap();
        assert_eq!(from_str::<u64>(&json).unwrap(), seed);
    }

    #[test]
    fn vec_and_map_roundtrip() {
        let v = vec![1.0f32, -2.5, 3.25];
        let json = to_string(&v).unwrap();
        assert_eq!(from_str::<Vec<f32>>(&json).unwrap(), v);

        let mut m = HashMap::new();
        m.insert("a".to_string(), 1u64);
        m.insert("b".to_string(), 2u64);
        let json = to_string(&m).unwrap();
        assert_eq!(from_str::<HashMap<String, u64>>(&json).unwrap(), m);
    }

    #[test]
    fn option_skips_and_nulls() {
        assert_eq!(to_string(&Option::<f32>::None).unwrap(), "null");
        assert_eq!(from_str::<Option<f32>>("null").unwrap(), None);
        assert_eq!(from_str::<Option<f32>>("1.5").unwrap(), Some(1.5));
    }

    #[test]
    fn string_escapes_roundtrip() {
        let s = "line\n\"quoted\"\tand \\ backslash".to_string();
        let json = to_string(&s).unwrap();
        assert_eq!(from_str::<String>(&json).unwrap(), s);
    }

    #[test]
    fn pretty_output_is_parseable() {
        let v = json!({ "a": [1, 2, 3], "b": { "c": null }, "d": 1.5, });
        let text = to_string_pretty(&v).unwrap();
        assert!(text.contains('\n'));
        assert_eq!(from_str::<Value>(&text).unwrap(), v);
    }

    #[test]
    fn json_macro_shapes() {
        let v = json!({ "x": 1u64, "y": [true, null], "z": "s" });
        let expected = Value::Map(vec![
            ("x".to_string(), Value::U64(1)),
            (
                "y".to_string(),
                Value::Seq(vec![Value::Bool(true), Value::Null]),
            ),
            ("z".to_string(), Value::Str("s".to_string())),
        ]);
        assert_eq!(v, expected);
        let opt: Option<f32> = None;
        let v = json!({ "opt": opt, "vec": vec![1.0f32], });
        assert_eq!(
            v,
            Value::Map(vec![
                ("opt".to_string(), Value::Null),
                ("vec".to_string(), Value::Seq(vec![Value::F64(1.0)])),
            ])
        );
    }

    #[test]
    fn rejects_garbage() {
        assert!(from_str::<Value>("{oops}").is_err());
        assert!(from_str::<Value>("[1,]").is_err());
        assert!(from_str::<Value>("[1] junk").is_err());
    }

    #[test]
    fn nested_json_macro_and_method_calls() {
        struct S;
        impl S {
            fn val(&self) -> f32 {
                2.5
            }
        }
        let s = S;
        let v = json!({ "outer": { "inner": s.val() }, "arr": [1.0f32, s.val()], });
        assert_eq!(
            v,
            Value::Map(vec![
                (
                    "outer".to_string(),
                    Value::Map(vec![("inner".to_string(), Value::F64(2.5))])
                ),
                (
                    "arr".to_string(),
                    Value::Seq(vec![Value::F64(1.0), Value::F64(2.5)])
                )
            ])
        );
    }
}
