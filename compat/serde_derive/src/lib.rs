//! Offline vendored `serde_derive` shim.
//!
//! Generates `serde::Serialize` / `serde::Deserialize` impls (in terms of
//! the shim's `Content` data model) for structs with named fields and for
//! enums whose variants are unit or struct-like — the only shapes this
//! workspace derives. Attribute support: `#[serde(skip)]`,
//! `#[serde(default)]`, `#[serde(skip_serializing_if = "path")]`.
//!
//! Built without `syn`/`quote`: the item is parsed directly from the
//! `proc_macro` token stream and the impl is emitted as a source string.

use proc_macro::{Delimiter, TokenStream, TokenTree};
use std::fmt::Write as _;

struct Field {
    name: String,
    skip: bool,
    default: bool,
    skip_serializing_if: Option<String>,
}

enum Variant {
    Unit(String),
    Struct(String, Vec<Field>),
}

enum Item {
    Struct(String, Vec<Field>),
    Enum(String, Vec<Variant>),
}

#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let item = parse_item(input);
    let code = match &item {
        Item::Struct(name, fields) => gen_struct_ser(name, fields),
        Item::Enum(name, variants) => gen_enum_ser(name, variants),
    };
    code.parse().expect("serde_derive: generated invalid code")
}

#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let item = parse_item(input);
    let code = match &item {
        Item::Struct(name, fields) => gen_struct_de(name, fields),
        Item::Enum(name, variants) => gen_enum_de(name, variants),
    };
    code.parse().expect("serde_derive: generated invalid code")
}

// ---------------------------------------------------------------- parsing

/// Serde-relevant flags found in one `#[...]` attribute group.
#[derive(Default)]
struct AttrFlags {
    skip: bool,
    default: bool,
    skip_serializing_if: Option<String>,
}

impl AttrFlags {
    fn merge(&mut self, other: AttrFlags) {
        self.skip |= other.skip;
        self.default |= other.default;
        if other.skip_serializing_if.is_some() {
            self.skip_serializing_if = other.skip_serializing_if;
        }
    }
}

/// Parses the contents of one attribute bracket group, e.g.
/// `serde(default, skip_serializing_if = "Option::is_none")` or `doc = "…"`.
fn parse_attr_group(stream: TokenStream) -> AttrFlags {
    let mut flags = AttrFlags::default();
    let mut tokens = stream.into_iter();
    let Some(TokenTree::Ident(head)) = tokens.next() else {
        return flags;
    };
    if head.to_string() != "serde" {
        return flags;
    }
    let Some(TokenTree::Group(args)) = tokens.next() else {
        return flags;
    };
    let mut inner = args.stream().into_iter().peekable();
    while let Some(tok) = inner.next() {
        let TokenTree::Ident(key) = tok else { continue };
        match key.to_string().as_str() {
            "skip" => flags.skip = true,
            "default" => flags.default = true,
            "skip_serializing_if" => {
                // Expect `= "path"`.
                let eq = inner.next();
                debug_assert!(matches!(&eq, Some(TokenTree::Punct(p)) if p.as_char() == '='));
                if let Some(TokenTree::Literal(lit)) = inner.next() {
                    let text = lit.to_string();
                    let path = text.trim_matches('"').to_string();
                    flags.skip_serializing_if = Some(path);
                }
            }
            other => panic!("serde_derive shim: unsupported serde attribute `{other}`"),
        }
    }
    flags
}

fn parse_item(input: TokenStream) -> Item {
    let mut tokens = input.into_iter().peekable();
    // Skip attributes and visibility until `struct` / `enum`.
    let mut kind = None;
    while let Some(tok) = tokens.next() {
        match tok {
            TokenTree::Punct(p) if p.as_char() == '#' => {
                tokens.next(); // the bracket group
            }
            TokenTree::Ident(id) => {
                let s = id.to_string();
                if s == "struct" || s == "enum" {
                    kind = Some(s);
                    break;
                }
                // `pub`, `crate`, etc.
            }
            _ => {}
        }
    }
    let kind = kind.expect("serde_derive shim: expected `struct` or `enum`");
    let name = match tokens.next() {
        Some(TokenTree::Ident(id)) => id.to_string(),
        other => panic!("serde_derive shim: expected type name, got {other:?}"),
    };
    let body = loop {
        match tokens.next() {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => break g.stream(),
            Some(TokenTree::Punct(p)) if p.as_char() == '<' => {
                panic!("serde_derive shim: generic types are not supported")
            }
            Some(_) => continue,
            None => {
                panic!("serde_derive shim: `{name}` has no braced body (tuple structs unsupported)")
            }
        }
    };
    if kind == "struct" {
        Item::Struct(name, parse_fields(body))
    } else {
        Item::Enum(name, parse_variants(body))
    }
}

fn parse_fields(stream: TokenStream) -> Vec<Field> {
    let mut fields = Vec::new();
    let mut tokens = stream.into_iter().peekable();
    loop {
        let mut flags = AttrFlags::default();
        // Attributes.
        while matches!(tokens.peek(), Some(TokenTree::Punct(p)) if p.as_char() == '#') {
            tokens.next();
            if let Some(TokenTree::Group(g)) = tokens.next() {
                flags.merge(parse_attr_group(g.stream()));
            }
        }
        // Visibility.
        if matches!(tokens.peek(), Some(TokenTree::Ident(id)) if id.to_string() == "pub") {
            tokens.next();
            if matches!(tokens.peek(), Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis)
            {
                tokens.next();
            }
        }
        let Some(TokenTree::Ident(name)) = tokens.next() else {
            break;
        };
        match tokens.next() {
            Some(TokenTree::Punct(p)) if p.as_char() == ':' => {}
            other => panic!("serde_derive shim: expected `:` after field name, got {other:?}"),
        }
        // Skip the type: consume until a comma at angle-bracket depth 0.
        let mut angle_depth = 0i32;
        for tok in tokens.by_ref() {
            if let TokenTree::Punct(p) = &tok {
                match p.as_char() {
                    '<' => angle_depth += 1,
                    '>' => angle_depth -= 1,
                    ',' if angle_depth == 0 => break,
                    _ => {}
                }
            }
        }
        fields.push(Field {
            name: name.to_string(),
            skip: flags.skip,
            default: flags.default,
            skip_serializing_if: flags.skip_serializing_if,
        });
    }
    fields
}

fn parse_variants(stream: TokenStream) -> Vec<Variant> {
    let mut variants = Vec::new();
    let mut tokens = stream.into_iter().peekable();
    loop {
        // Attributes (doc comments etc.).
        while matches!(tokens.peek(), Some(TokenTree::Punct(p)) if p.as_char() == '#') {
            tokens.next();
            tokens.next();
        }
        let Some(TokenTree::Ident(name)) = tokens.next() else {
            break;
        };
        let name = name.to_string();
        match tokens.peek() {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                let fields = parse_fields(g.stream());
                tokens.next();
                variants.push(Variant::Struct(name, fields));
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                panic!(
                    "serde_derive shim: tuple variant `{name}` unsupported; use struct-like fields"
                )
            }
            _ => variants.push(Variant::Unit(name)),
        }
        // Trailing comma.
        if matches!(tokens.peek(), Some(TokenTree::Punct(p)) if p.as_char() == ',') {
            tokens.next();
        }
    }
    variants
}

// ---------------------------------------------------------------- codegen

fn push_field_ser(out: &mut String, field: &Field, access: &str) {
    if field.skip {
        return;
    }
    let name = &field.name;
    if let Some(cond) = &field.skip_serializing_if {
        let _ = writeln!(out, "        if !{cond}(&{access}) {{");
        let _ = writeln!(
            out,
            "            entries.push((::std::string::String::from(\"{name}\"), ::serde::Serialize::to_content(&{access})));"
        );
        let _ = writeln!(out, "        }}");
    } else {
        let _ = writeln!(
            out,
            "        entries.push((::std::string::String::from(\"{name}\"), ::serde::Serialize::to_content(&{access})));"
        );
    }
}

fn push_field_de(out: &mut String, field: &Field, context: &str) {
    let name = &field.name;
    if field.skip {
        let _ = writeln!(
            out,
            "            {name}: ::std::default::Default::default(),"
        );
        return;
    }
    let missing = if field.default || field.skip_serializing_if.is_some() {
        "::std::default::Default::default()".to_string()
    } else {
        format!(
            "return ::std::result::Result::Err(::serde::DeError::missing_field(\"{name}\", \"{context}\"))"
        )
    };
    let _ = writeln!(
        out,
        "            {name}: match ::serde::map_get(entries, \"{name}\") {{ ::std::option::Option::Some(v) => ::serde::Deserialize::from_content(v)?, ::std::option::Option::None => {missing} }},"
    );
}

fn gen_struct_ser(name: &str, fields: &[Field]) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "#[automatically_derived]");
    let _ = writeln!(out, "#[allow(unused, clippy::all)]");
    let _ = writeln!(out, "impl ::serde::Serialize for {name} {{");
    let _ = writeln!(out, "    fn to_content(&self) -> ::serde::Content {{");
    let _ = writeln!(
        out,
        "        let mut entries: ::std::vec::Vec<(::std::string::String, ::serde::Content)> = ::std::vec::Vec::new();"
    );
    for field in fields {
        push_field_ser(&mut out, field, &format!("self.{}", field.name));
    }
    let _ = writeln!(out, "        ::serde::Content::Map(entries)");
    let _ = writeln!(out, "    }}");
    let _ = writeln!(out, "}}");
    out
}

fn gen_struct_de(name: &str, fields: &[Field]) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "#[automatically_derived]");
    let _ = writeln!(out, "#[allow(unused, clippy::all)]");
    let _ = writeln!(out, "impl ::serde::Deserialize for {name} {{");
    let _ = writeln!(
        out,
        "    fn from_content(content: &::serde::Content) -> ::std::result::Result<Self, ::serde::DeError> {{"
    );
    let _ = writeln!(
        out,
        "        let entries = content.as_map().ok_or_else(|| ::serde::DeError::expected(\"map\", \"{name}\", content))?;"
    );
    let _ = writeln!(out, "        ::std::result::Result::Ok({name} {{");
    for field in fields {
        push_field_de(&mut out, field, name);
    }
    let _ = writeln!(out, "        }})");
    let _ = writeln!(out, "    }}");
    let _ = writeln!(out, "}}");
    out
}

fn gen_enum_ser(name: &str, variants: &[Variant]) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "#[automatically_derived]");
    let _ = writeln!(out, "#[allow(unused, clippy::all)]");
    let _ = writeln!(out, "impl ::serde::Serialize for {name} {{");
    let _ = writeln!(out, "    fn to_content(&self) -> ::serde::Content {{");
    let _ = writeln!(out, "        match self {{");
    for variant in variants {
        match variant {
            Variant::Unit(v) => {
                let _ = writeln!(
                    out,
                    "            {name}::{v} => ::serde::Content::Str(::std::string::String::from(\"{v}\")),"
                );
            }
            Variant::Struct(v, fields) => {
                let bindings: Vec<&str> = fields.iter().map(|f| f.name.as_str()).collect();
                let _ = writeln!(
                    out,
                    "            {name}::{v} {{ {} }} => {{",
                    bindings.join(", ")
                );
                let _ = writeln!(
                    out,
                    "        let mut entries: ::std::vec::Vec<(::std::string::String, ::serde::Content)> = ::std::vec::Vec::new();"
                );
                for field in fields {
                    push_field_ser(&mut out, field, field.name.to_string().as_str());
                }
                let _ = writeln!(
                    out,
                    "                ::serde::Content::Map(::std::vec![(::std::string::String::from(\"{v}\"), ::serde::Content::Map(entries))])"
                );
                let _ = writeln!(out, "            }}");
            }
        }
    }
    let _ = writeln!(out, "        }}");
    let _ = writeln!(out, "    }}");
    let _ = writeln!(out, "}}");
    out
}

fn gen_enum_de(name: &str, variants: &[Variant]) -> String {
    let unit: Vec<&String> = variants
        .iter()
        .filter_map(|v| match v {
            Variant::Unit(n) => Some(n),
            _ => None,
        })
        .collect();
    let structs: Vec<(&String, &Vec<Field>)> = variants
        .iter()
        .filter_map(|v| match v {
            Variant::Struct(n, f) => Some((n, f)),
            _ => None,
        })
        .collect();

    let mut out = String::new();
    let _ = writeln!(out, "#[automatically_derived]");
    let _ = writeln!(out, "#[allow(unused, clippy::all)]");
    let _ = writeln!(out, "impl ::serde::Deserialize for {name} {{");
    let _ = writeln!(
        out,
        "    fn from_content(content: &::serde::Content) -> ::std::result::Result<Self, ::serde::DeError> {{"
    );
    let _ = writeln!(out, "        match content {{");

    // Unit variants arrive as bare strings.
    let _ = writeln!(out, "            ::serde::Content::Str(s) => {{");
    for v in &unit {
        let _ = writeln!(
            out,
            "                if s == \"{v}\" {{ return ::std::result::Result::Ok({name}::{v}); }}"
        );
    }
    let _ = writeln!(
        out,
        "                ::std::result::Result::Err(::serde::DeError::unknown_variant(s, \"{name}\"))"
    );
    let _ = writeln!(out, "            }}");

    // Struct variants arrive as single-entry maps.
    let _ = writeln!(
        out,
        "            ::serde::Content::Map(outer) if outer.len() == 1 => {{"
    );
    let _ = writeln!(out, "                let (tag, payload) = &outer[0];");
    for (v, fields) in &structs {
        let _ = writeln!(out, "                if tag == \"{v}\" {{");
        let _ = writeln!(
            out,
            "                    let entries = payload.as_map().ok_or_else(|| ::serde::DeError::expected(\"map\", \"{name}::{v}\", payload))?;"
        );
        let _ = writeln!(
            out,
            "                    return ::std::result::Result::Ok({name}::{v} {{"
        );
        for field in *fields {
            push_field_de(&mut out, field, &format!("{name}::{v}"));
        }
        let _ = writeln!(out, "                    }});");
        let _ = writeln!(out, "                }}");
    }
    let _ = writeln!(
        out,
        "                ::std::result::Result::Err(::serde::DeError::unknown_variant(tag, \"{name}\"))"
    );
    let _ = writeln!(out, "            }}");

    let _ = writeln!(
        out,
        "            other => ::std::result::Result::Err(::serde::DeError::expected(\"string or single-key map\", \"{name}\", other)),"
    );
    let _ = writeln!(out, "        }}");
    let _ = writeln!(out, "    }}");
    let _ = writeln!(out, "}}");
    out
}
