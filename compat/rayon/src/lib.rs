//! Offline vendored shim for the subset of `rayon` used by this workspace.
//!
//! Implements `slice.par_iter().map(f).collect()` on top of
//! `std::thread::scope`, splitting the input into one contiguous block per
//! worker thread and concatenating results in order, so collected output is
//! ordered exactly like the serial iterator. Thread count comes from
//! `ThreadPoolBuilder::num_threads` / the `FABFLIP_THREADS` environment
//! variable / `std::thread::available_parallelism`, in that priority order.

use std::sync::OnceLock;

static GLOBAL_THREADS: OnceLock<usize> = OnceLock::new();

fn env_threads() -> Option<usize> {
    std::env::var("FABFLIP_THREADS")
        .ok()
        .and_then(|v| v.trim().parse::<usize>().ok())
        .filter(|&n| n > 0)
}

/// Number of worker threads parallel iterators will use.
pub fn current_num_threads() -> usize {
    if let Some(&n) = GLOBAL_THREADS.get() {
        return n;
    }
    env_threads().unwrap_or_else(|| {
        std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1)
    })
}

#[derive(Debug)]
pub struct ThreadPoolBuildError;

impl std::fmt::Display for ThreadPoolBuildError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "global thread pool already initialized")
    }
}

impl std::error::Error for ThreadPoolBuildError {}

/// Builder mirroring `rayon::ThreadPoolBuilder`; only the global pool's
/// thread count is honored (this shim spawns scoped threads per call).
#[derive(Default)]
pub struct ThreadPoolBuilder {
    num_threads: Option<usize>,
}

impl ThreadPoolBuilder {
    pub fn new() -> Self {
        Self::default()
    }

    pub fn num_threads(mut self, n: usize) -> Self {
        self.num_threads = Some(n);
        self
    }

    pub fn build_global(self) -> Result<(), ThreadPoolBuildError> {
        let n = self
            .num_threads
            .filter(|&n| n > 0)
            .or_else(env_threads)
            .unwrap_or_else(|| {
                std::thread::available_parallelism()
                    .map(|n| n.get())
                    .unwrap_or(1)
            });
        GLOBAL_THREADS.set(n).map_err(|_| ThreadPoolBuildError)
    }
}

/// Runs `f(0..n)` across worker threads, returning results in index order.
fn run_ordered<R, F>(n: usize, f: F) -> Vec<R>
where
    R: Send,
    F: Fn(usize) -> R + Sync,
{
    let threads = current_num_threads().min(n.max(1));
    if threads <= 1 || n <= 1 {
        return (0..n).map(f).collect();
    }
    let chunk = n.div_ceil(threads);
    let mut out: Vec<Vec<R>> = Vec::new();
    std::thread::scope(|scope| {
        let mut handles = Vec::new();
        for t in 0..threads {
            let lo = t * chunk;
            let hi = ((t + 1) * chunk).min(n);
            if lo >= hi {
                break;
            }
            let f = &f;
            handles.push(scope.spawn(move || (lo..hi).map(f).collect::<Vec<R>>()));
        }
        for h in handles {
            out.push(h.join().expect("rayon shim worker panicked"));
        }
    });
    out.into_iter().flatten().collect()
}

pub struct SliceParIter<'a, T> {
    items: &'a [T],
}

pub struct SliceParMap<'a, T, F> {
    items: &'a [T],
    f: F,
}

/// `par_iter` entry point for slices and anything derefencing to one.
pub trait IntoParallelRefIterator<'a> {
    type Item: 'a;
    fn par_iter(&'a self) -> SliceParIter<'a, Self::Item>;
}

impl<'a, T: Sync + 'a> IntoParallelRefIterator<'a> for [T] {
    type Item = T;
    fn par_iter(&'a self) -> SliceParIter<'a, T> {
        SliceParIter { items: self }
    }
}

impl<'a, T: Sync + 'a> IntoParallelRefIterator<'a> for Vec<T> {
    type Item = T;
    fn par_iter(&'a self) -> SliceParIter<'a, T> {
        SliceParIter { items: self }
    }
}

impl<'a, T: Sync> SliceParIter<'a, T> {
    pub fn map<R, F>(self, f: F) -> SliceParMap<'a, T, F>
    where
        R: Send,
        F: Fn(&'a T) -> R + Sync,
    {
        SliceParMap {
            items: self.items,
            f,
        }
    }
}

impl<'a, T: Sync, R: Send, F: Fn(&'a T) -> R + Sync> SliceParMap<'a, T, F> {
    pub fn collect<C: FromParallelIterator<R>>(self) -> C {
        let results = run_ordered(self.items.len(), |i| (self.f)(&self.items[i]));
        C::from_ordered(results)
    }
}

/// Collection targets for `collect`; results arrive already in input order.
pub trait FromParallelIterator<T>: Sized {
    fn from_ordered(items: Vec<T>) -> Self;
}

impl<T> FromParallelIterator<T> for Vec<T> {
    fn from_ordered(items: Vec<T>) -> Self {
        items
    }
}

impl<T, E, C: FromParallelIterator<T>> FromParallelIterator<Result<T, E>> for Result<C, E> {
    fn from_ordered(items: Vec<Result<T, E>>) -> Self {
        let mut ok = Vec::with_capacity(items.len());
        for item in items {
            ok.push(item?);
        }
        Ok(C::from_ordered(ok))
    }
}

pub mod prelude {
    pub use super::{FromParallelIterator, IntoParallelRefIterator};
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn map_collect_preserves_order() {
        let v: Vec<usize> = (0..1000).collect();
        let doubled: Vec<usize> = v.par_iter().map(|&x| x * 2).collect();
        assert_eq!(doubled, (0..1000).map(|x| x * 2).collect::<Vec<_>>());
    }

    #[test]
    fn collect_into_result_short_circuits() {
        let v: Vec<usize> = (0..10).collect();
        let ok: Result<Vec<usize>, String> = v.par_iter().map(|&x| Ok(x)).collect();
        assert_eq!(ok.unwrap(), v);
        let err: Result<Vec<usize>, String> = v
            .par_iter()
            .map(|&x| {
                if x == 5 {
                    Err("boom".to_string())
                } else {
                    Ok(x)
                }
            })
            .collect();
        assert_eq!(err.unwrap_err(), "boom");
    }
}
