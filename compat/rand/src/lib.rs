//! Offline vendored shim for the subset of `rand` 0.8 used by this workspace.
//!
//! The container this repository builds in has no registry access, so the
//! workspace vendors a minimal deterministic PRNG stack instead of the real
//! crate. The API mirrors `rand` 0.8 closely enough for every call site in
//! the workspace (`Rng::gen_range`, `Rng::gen::<f32>()`, `StdRng`,
//! `SeedableRng::seed_from_u64`, `seq::SliceRandom::shuffle`), but the
//! generated streams are NOT bit-compatible with upstream `rand`; they only
//! promise determinism for a fixed seed and reasonable statistical quality
//! (xoshiro256++ behind a SplitMix64 seeder).

use core::ops::{Range, RangeInclusive};

/// Core source of randomness: a 64-bit generator.
pub trait RngCore {
    fn next_u64(&mut self) -> u64;

    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    fn fill_bytes(&mut self, dest: &mut [u8]) {
        for chunk in dest.chunks_mut(8) {
            let bytes = self.next_u64().to_le_bytes();
            chunk.copy_from_slice(&bytes[..chunk.len()]);
        }
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// Seeding support; only `seed_from_u64` is exercised in this workspace.
pub trait SeedableRng: Sized {
    fn seed_from_u64(state: u64) -> Self;
}

/// High-level convenience methods, blanket-implemented for every `RngCore`.
pub trait Rng: RngCore {
    fn gen_range<T, R>(&mut self, range: R) -> T
    where
        R: SampleRange<T>,
    {
        range.sample_single(self)
    }

    fn gen<T: Standard>(&mut self) -> T {
        T::sample_standard(self)
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Types samplable by `Rng::gen` (stand-in for the `Standard` distribution).
pub trait Standard: Sized {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for f32 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 24 mantissa bits -> uniform in [0, 1).
        (rng.next_u64() >> 40) as f32 / (1u64 << 24) as f32
    }
}

impl Standard for f64 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }
}

impl Standard for u64 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl Standard for u32 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32()
    }
}

impl Standard for bool {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

/// Ranges samplable by `Rng::gen_range`.
///
/// Mirrors rand 0.8's architecture: one blanket impl per range shape over a
/// `SampleUniform` bound, so type inference flows from the range's element
/// type exactly like it does with the real crate.
pub trait SampleRange<T> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

/// Primitive types uniformly samplable from a range.
pub trait SampleUniform: PartialOrd + Copy {
    /// Samples from `[lo, hi)` (`inclusive = false`) or `[lo, hi]`.
    fn sample_range<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self, inclusive: bool) -> Self;
}

impl<T: SampleUniform> SampleRange<T> for Range<T> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        assert!(self.start < self.end, "gen_range: empty range");
        T::sample_range(rng, self.start, self.end, false)
    }
}

impl<T: SampleUniform> SampleRange<T> for RangeInclusive<T> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        let (lo, hi) = (*self.start(), *self.end());
        assert!(lo <= hi, "gen_range: empty range");
        T::sample_range(rng, lo, hi, true)
    }
}

/// Maps a raw u64 onto `[0, span)` without modulo bias worth worrying
/// about (widening multiply; bias is O(span / 2^64)).
#[inline]
fn bounded_u64<R: RngCore + ?Sized>(rng: &mut R, span: u64) -> u64 {
    debug_assert!(span > 0);
    ((rng.next_u64() as u128 * span as u128) >> 64) as u64
}

macro_rules! impl_int_uniform {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_range<R: RngCore + ?Sized>(
                rng: &mut R,
                lo: Self,
                hi: Self,
                inclusive: bool,
            ) -> Self {
                let span = (hi as i128 - lo as i128) as u64;
                if inclusive {
                    if span == u64::MAX {
                        return (lo as i128 + rng.next_u64() as i128) as $t;
                    }
                    (lo as i128 + bounded_u64(rng, span + 1) as i128) as $t
                } else {
                    (lo as i128 + bounded_u64(rng, span) as i128) as $t
                }
            }
        }
    )*};
}

impl_int_uniform!(usize, u64, u32, i64, i32, isize);

macro_rules! impl_float_uniform {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_range<R: RngCore + ?Sized>(
                rng: &mut R,
                lo: Self,
                hi: Self,
                inclusive: bool,
            ) -> Self {
                let u = <$t as Standard>::sample_standard(rng);
                let v = lo + (hi - lo) * u;
                // Guard against rounding up to an excluded endpoint.
                if !inclusive && v >= hi {
                    <$t>::midpoint(lo, hi)
                } else {
                    v
                }
            }
        }
    )*};
}

impl_float_uniform!(f32, f64);

pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// Deterministic standard RNG: xoshiro256++ seeded via SplitMix64.
    ///
    /// Not stream-compatible with upstream `rand::rngs::StdRng`; the
    /// workspace only relies on seed-determinism, not on exact streams.
    #[derive(Clone, Debug)]
    pub struct StdRng {
        s: [u64; 4],
    }

    #[inline]
    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(state: u64) -> Self {
            let mut sm = state;
            let s = [
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
            ];
            StdRng { s }
        }
    }

    impl RngCore for StdRng {
        #[inline]
        fn next_u64(&mut self) -> u64 {
            let result = self.s[0]
                .wrapping_add(self.s[3])
                .rotate_left(23)
                .wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }
}

pub mod seq {
    use super::{Rng, RngCore};

    /// Slice extension trait; only `shuffle` is used by the workspace.
    pub trait SliceRandom {
        type Item;

        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R);

        fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&Self::Item>;
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R) {
            // Fisher-Yates, matching rand 0.8's iteration direction.
            for i in (1..self.len()).rev() {
                let j = rng.gen_range(0..=i);
                self.swap(i, j);
            }
        }

        fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&T> {
            if self.is_empty() {
                None
            } else {
                Some(&self[rng.gen_range(0..self.len())])
            }
        }
    }
}

pub mod prelude {
    pub use super::rngs::StdRng;
    pub use super::seq::SliceRandom;
    pub use super::{Rng, RngCore, SeedableRng};
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::seq::SliceRandom;
    use super::{Rng, SeedableRng};

    #[test]
    fn same_seed_same_stream() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.gen::<u64>(), b.gen::<u64>());
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = StdRng::seed_from_u64(1);
        let mut b = StdRng::seed_from_u64(2);
        let same = (0..64).filter(|_| a.gen::<u64>() == b.gen::<u64>()).count();
        assert!(same < 4);
    }

    #[test]
    fn float_ranges_respect_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..10_000 {
            let v = rng.gen_range(-1.0f32..1.0);
            assert!((-1.0..1.0).contains(&v));
            let w = rng.gen_range(f32::EPSILON..1.0);
            assert!((f32::EPSILON..1.0).contains(&w));
            let x = rng.gen_range(-0.5f32..=0.5);
            assert!((-0.5..=0.5).contains(&x));
        }
    }

    #[test]
    fn int_ranges_cover_support() {
        let mut rng = StdRng::seed_from_u64(11);
        let mut seen = [false; 6];
        for _ in 0..1000 {
            seen[rng.gen_range(0usize..6)] = true;
        }
        assert!(seen.iter().all(|&s| s));
        for _ in 0..1000 {
            let v = rng.gen_range(-3i32..=3);
            assert!((-3..=3).contains(&v));
        }
    }

    #[test]
    fn uniform_mean_is_plausible() {
        let mut rng = StdRng::seed_from_u64(3);
        let n = 100_000;
        let sum: f64 = (0..n).map(|_| rng.gen::<f64>()).sum();
        assert!((sum / n as f64 - 0.5).abs() < 0.01);
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut rng = StdRng::seed_from_u64(5);
        let mut v: Vec<usize> = (0..20).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..20).collect::<Vec<_>>());
        assert_ne!(v, (0..20).collect::<Vec<_>>());
    }
}
