//! Offline vendored shim for the subset of `serde` used by this workspace.
//!
//! Instead of serde's visitor architecture, this shim round-trips every
//! value through a self-describing [`Content`] tree (a JSON-shaped data
//! model). `Serialize` renders a value into `Content`; `Deserialize`
//! rebuilds a value from `Content`. The companion `serde_json` shim
//! converts `Content` to and from JSON text, and the `serde_derive` shim
//! generates the impls for structs and enums, honoring the `#[serde(...)]`
//! attributes this workspace uses (`skip`, `default`,
//! `skip_serializing_if`).

use std::collections::HashMap;

#[cfg(feature = "derive")]
pub use serde_derive::{Deserialize, Serialize};

/// Self-describing value tree (the shim's data model).
///
/// Unsigned and signed integers are kept apart so `u64` seeds round-trip
/// exactly instead of passing through `f64`.
#[derive(Debug, Clone, PartialEq)]
pub enum Content {
    Null,
    Bool(bool),
    U64(u64),
    I64(i64),
    F64(f64),
    Str(String),
    Seq(Vec<Content>),
    Map(Vec<(String, Content)>),
}

impl Content {
    pub fn as_map(&self) -> Option<&[(String, Content)]> {
        match self {
            Content::Map(entries) => Some(entries),
            _ => None,
        }
    }

    pub fn as_str(&self) -> Option<&str> {
        match self {
            Content::Str(s) => Some(s),
            _ => None,
        }
    }

    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Content::F64(v) => Some(*v),
            Content::U64(v) => Some(*v as f64),
            Content::I64(v) => Some(*v as f64),
            _ => None,
        }
    }

    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Content::U64(v) => Some(*v),
            Content::I64(v) if *v >= 0 => Some(*v as u64),
            _ => None,
        }
    }

    pub fn as_i64(&self) -> Option<i64> {
        match self {
            Content::I64(v) => Some(*v),
            Content::U64(v) if *v <= i64::MAX as u64 => Some(*v as i64),
            _ => None,
        }
    }

    fn kind(&self) -> &'static str {
        match self {
            Content::Null => "null",
            Content::Bool(_) => "bool",
            Content::U64(_) | Content::I64(_) | Content::F64(_) => "number",
            Content::Str(_) => "string",
            Content::Seq(_) => "sequence",
            Content::Map(_) => "map",
        }
    }
}

/// Looks up a key in a `Content::Map`'s entry list.
pub fn map_get<'a>(entries: &'a [(String, Content)], key: &str) -> Option<&'a Content> {
    entries.iter().find(|(k, _)| k == key).map(|(_, v)| v)
}

/// Deserialization error (also reused by `serde_json` for parse errors).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DeError {
    msg: String,
}

impl DeError {
    pub fn custom(msg: impl Into<String>) -> Self {
        DeError { msg: msg.into() }
    }

    pub fn expected(what: &str, context: &str, got: &Content) -> Self {
        DeError {
            msg: format!("expected {what} for {context}, got {}", got.kind()),
        }
    }

    pub fn missing_field(field: &str, context: &str) -> Self {
        DeError {
            msg: format!("missing field `{field}` in {context}"),
        }
    }

    pub fn unknown_variant(variant: &str, context: &str) -> Self {
        DeError {
            msg: format!("unknown variant `{variant}` for {context}"),
        }
    }
}

impl std::fmt::Display for DeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.msg)
    }
}

impl std::error::Error for DeError {}

/// Renders `self` into the shim data model.
pub trait Serialize {
    fn to_content(&self) -> Content;
}

/// Rebuilds `Self` from the shim data model.
pub trait Deserialize: Sized {
    fn from_content(content: &Content) -> Result<Self, DeError>;
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_content(&self) -> Content {
        (**self).to_content()
    }
}

macro_rules! ser_via {
    ($($t:ty => $variant:ident as $conv:ty),*) => {$(
        impl Serialize for $t {
            fn to_content(&self) -> Content {
                Content::$variant(*self as $conv)
            }
        }
    )*};
}

ser_via!(
    u8 => U64 as u64, u16 => U64 as u64, u32 => U64 as u64, u64 => U64 as u64,
    usize => U64 as u64,
    f32 => F64 as f64, f64 => F64 as f64
);

// Non-negative signed integers serialize as `U64`, like real serde_json's
// `PosInt` representation — so a parse → serialize round trip compares
// equal on the `Content` tree.
macro_rules! ser_signed {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_content(&self) -> Content {
                if *self >= 0 {
                    Content::U64(*self as u64)
                } else {
                    Content::I64(*self as i64)
                }
            }
        }
    )*};
}

ser_signed!(i8, i16, i32, i64, isize);

impl Serialize for bool {
    fn to_content(&self) -> Content {
        Content::Bool(*self)
    }
}

impl Serialize for str {
    fn to_content(&self) -> Content {
        Content::Str(self.to_string())
    }
}

impl Serialize for String {
    fn to_content(&self) -> Content {
        Content::Str(self.clone())
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_content(&self) -> Content {
        match self {
            Some(v) => v.to_content(),
            None => Content::Null,
        }
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_content(&self) -> Content {
        Content::Seq(self.iter().map(Serialize::to_content).collect())
    }
}

impl<T: Serialize> Serialize for [T] {
    fn to_content(&self) -> Content {
        Content::Seq(self.iter().map(Serialize::to_content).collect())
    }
}

macro_rules! ser_tuple {
    ($(($($name:ident : $idx:tt),+)),*) => {$(
        impl<$($name: Serialize),+> Serialize for ($($name,)+) {
            fn to_content(&self) -> Content {
                Content::Seq(vec![$(self.$idx.to_content()),+])
            }
        }
    )*};
}

ser_tuple!(
    (A: 0),
    (A: 0, B: 1),
    (A: 0, B: 1, C: 2),
    (A: 0, B: 1, C: 2, D: 3)
);

impl<V: Serialize> Serialize for HashMap<String, V> {
    fn to_content(&self) -> Content {
        // Sorted for deterministic output across runs.
        let mut entries: Vec<(String, Content)> = self
            .iter()
            .map(|(k, v)| (k.clone(), v.to_content()))
            .collect();
        entries.sort_by(|a, b| a.0.cmp(&b.0));
        Content::Map(entries)
    }
}

impl<V: Serialize> Serialize for std::collections::BTreeMap<String, V> {
    fn to_content(&self) -> Content {
        Content::Map(
            self.iter()
                .map(|(k, v)| (k.clone(), v.to_content()))
                .collect(),
        )
    }
}

impl Serialize for Content {
    fn to_content(&self) -> Content {
        self.clone()
    }
}

macro_rules! de_uint {
    ($($t:ty),*) => {$(
        impl Deserialize for $t {
            fn from_content(content: &Content) -> Result<Self, DeError> {
                let v = content
                    .as_u64()
                    .ok_or_else(|| DeError::expected("unsigned integer", stringify!($t), content))?;
                <$t>::try_from(v)
                    .map_err(|_| DeError::custom(format!("{v} out of range for {}", stringify!($t))))
            }
        }
    )*};
}

de_uint!(u8, u16, u32, u64, usize);

macro_rules! de_int {
    ($($t:ty),*) => {$(
        impl Deserialize for $t {
            fn from_content(content: &Content) -> Result<Self, DeError> {
                let v = content
                    .as_i64()
                    .ok_or_else(|| DeError::expected("integer", stringify!($t), content))?;
                <$t>::try_from(v)
                    .map_err(|_| DeError::custom(format!("{v} out of range for {}", stringify!($t))))
            }
        }
    )*};
}

de_int!(i8, i16, i32, i64, isize);

impl Deserialize for f64 {
    fn from_content(content: &Content) -> Result<Self, DeError> {
        content
            .as_f64()
            .ok_or_else(|| DeError::expected("number", "f64", content))
    }
}

impl Deserialize for f32 {
    fn from_content(content: &Content) -> Result<Self, DeError> {
        Ok(f64::from_content(content)? as f32)
    }
}

impl Deserialize for bool {
    fn from_content(content: &Content) -> Result<Self, DeError> {
        match content {
            Content::Bool(b) => Ok(*b),
            _ => Err(DeError::expected("bool", "bool", content)),
        }
    }
}

impl Deserialize for String {
    fn from_content(content: &Content) -> Result<Self, DeError> {
        content
            .as_str()
            .map(str::to_string)
            .ok_or_else(|| DeError::expected("string", "String", content))
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn from_content(content: &Content) -> Result<Self, DeError> {
        match content {
            Content::Null => Ok(None),
            other => Ok(Some(T::from_content(other)?)),
        }
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn from_content(content: &Content) -> Result<Self, DeError> {
        match content {
            Content::Seq(items) => items.iter().map(T::from_content).collect(),
            _ => Err(DeError::expected("sequence", "Vec", content)),
        }
    }
}

impl<V: Deserialize> Deserialize for HashMap<String, V> {
    fn from_content(content: &Content) -> Result<Self, DeError> {
        match content {
            Content::Map(entries) => entries
                .iter()
                .map(|(k, v)| Ok((k.clone(), V::from_content(v)?)))
                .collect(),
            _ => Err(DeError::expected("map", "HashMap", content)),
        }
    }
}

impl<V: Deserialize> Deserialize for std::collections::BTreeMap<String, V> {
    fn from_content(content: &Content) -> Result<Self, DeError> {
        match content {
            Content::Map(entries) => entries
                .iter()
                .map(|(k, v)| Ok((k.clone(), V::from_content(v)?)))
                .collect(),
            _ => Err(DeError::expected("map", "BTreeMap", content)),
        }
    }
}

impl Deserialize for Content {
    fn from_content(content: &Content) -> Result<Self, DeError> {
        Ok(content.clone())
    }
}
