//! Offline vendored shim for the subset of `proptest` used by this
//! workspace: the `proptest!` macro, range/`Just`/`prop_oneof!` strategies,
//! `collection::vec`, `prop_map`/`boxed`, and `prop_assert*`/`prop_assume!`.
//!
//! Differences from upstream: no shrinking (a failing case reports its
//! deterministic case seed instead of a minimized input), and generation
//! streams are not compatible with upstream proptest.

pub mod test_runner {
    pub use rand::rngs::StdRng as TestRng;
    use rand::SeedableRng;

    /// Runner configuration; only `cases` is honored.
    #[derive(Clone, Debug)]
    pub struct Config {
        pub cases: u32,
    }

    impl Config {
        pub fn with_cases(cases: u32) -> Self {
            Config { cases }
        }
    }

    impl Default for Config {
        fn default() -> Self {
            Config { cases: 64 }
        }
    }

    #[derive(Debug)]
    pub enum TestCaseError {
        /// The case failed an assertion.
        Fail(String),
        /// The case's preconditions were not met (`prop_assume!`).
        Reject(String),
    }

    impl TestCaseError {
        pub fn fail(msg: impl Into<String>) -> Self {
            TestCaseError::Fail(msg.into())
        }

        pub fn reject(msg: impl Into<String>) -> Self {
            TestCaseError::Reject(msg.into())
        }
    }

    pub struct TestRunner {
        config: Config,
    }

    impl TestRunner {
        pub fn new(config: Config) -> Self {
            TestRunner { config }
        }

        /// Runs `body` for each case with a deterministic per-case RNG.
        /// Rejected cases (failed `prop_assume!`) are retried with fresh
        /// seeds and do not count toward the case total.
        pub fn run(&mut self, mut body: impl FnMut(&mut TestRng) -> Result<(), TestCaseError>) {
            let mut seed_counter = 0u64;
            let mut completed = 0u32;
            let mut rejected = 0u64;
            // Bound total attempts so a strategy that always rejects
            // terminates with a clear message instead of spinning.
            let max_attempts = self.config.cases as u64 * 20 + 100;
            while completed < self.config.cases {
                if seed_counter >= max_attempts {
                    panic!(
                        "proptest shim: too many rejected cases ({rejected} rejects in {seed_counter} attempts)"
                    );
                }
                let case_seed =
                    0x9E37_79B9_7F4A_7C15u64.wrapping_mul(seed_counter.wrapping_add(0xA5A5_5A5A));
                seed_counter += 1;
                let mut rng = TestRng::seed_from_u64(case_seed);
                match body(&mut rng) {
                    Ok(()) => completed += 1,
                    Err(TestCaseError::Reject(_)) => rejected += 1,
                    Err(TestCaseError::Fail(msg)) => {
                        panic!(
                            "proptest case failed (case #{completed}, case seed {case_seed:#x}): {msg}"
                        );
                    }
                }
            }
        }
    }
}

pub mod strategy {
    use crate::test_runner::TestRng;
    use rand::Rng;
    use std::ops::Range;

    /// Value-generation strategy. Unlike upstream there is no value tree /
    /// shrinking; `generate` directly produces a value.
    pub trait Strategy {
        type Value;

        fn generate(&self, rng: &mut TestRng) -> Self::Value;

        fn prop_map<O, F>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
            F: Fn(Self::Value) -> O,
        {
            Map { inner: self, f }
        }

        fn boxed(self) -> BoxedStrategy<Self::Value>
        where
            Self: Sized + 'static,
        {
            BoxedStrategy {
                inner: std::rc::Rc::new(self),
            }
        }
    }

    /// Always produces a clone of the given value.
    #[derive(Clone, Debug)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;

        fn generate(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    pub struct Map<S, F> {
        inner: S,
        f: F,
    }

    impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
        type Value = O;

        fn generate(&self, rng: &mut TestRng) -> O {
            (self.f)(self.inner.generate(rng))
        }
    }

    trait DynStrategy<T> {
        fn generate_dyn(&self, rng: &mut TestRng) -> T;
    }

    impl<S: Strategy> DynStrategy<S::Value> for S {
        fn generate_dyn(&self, rng: &mut TestRng) -> S::Value {
            self.generate(rng)
        }
    }

    /// Type-erased strategy handle (`Strategy::boxed`).
    pub struct BoxedStrategy<T> {
        inner: std::rc::Rc<dyn DynStrategy<T>>,
    }

    impl<T> Clone for BoxedStrategy<T> {
        fn clone(&self) -> Self {
            BoxedStrategy {
                inner: self.inner.clone(),
            }
        }
    }

    impl<T> Strategy for BoxedStrategy<T> {
        type Value = T;

        fn generate(&self, rng: &mut TestRng) -> T {
            self.inner.generate_dyn(rng)
        }
    }

    /// Uniform choice between boxed alternatives (`prop_oneof!`).
    pub struct Union<T> {
        options: Vec<BoxedStrategy<T>>,
    }

    impl<T> Union<T> {
        pub fn new(options: Vec<BoxedStrategy<T>>) -> Self {
            assert!(!options.is_empty(), "prop_oneof! needs at least one option");
            Union { options }
        }
    }

    impl<T> Strategy for Union<T> {
        type Value = T;

        fn generate(&self, rng: &mut TestRng) -> T {
            let idx = rng.gen_range(0..self.options.len());
            self.options[idx].generate(rng)
        }
    }

    macro_rules! impl_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for Range<$t> {
                type Value = $t;

                fn generate(&self, rng: &mut TestRng) -> $t {
                    rng.gen_range(self.clone())
                }
            }
        )*};
    }

    impl_range_strategy!(f32, f64, usize, u64, u32, i64, i32);
}

pub mod collection {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use rand::Rng;
    use std::ops::Range;

    /// Size specification for `collection::vec`: a fixed length or a range.
    #[derive(Clone, Debug)]
    pub struct SizeRange {
        lo: usize,
        hi_exclusive: usize,
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange {
                lo: n,
                hi_exclusive: n + 1,
            }
        }
    }

    impl From<Range<usize>> for SizeRange {
        fn from(r: Range<usize>) -> Self {
            assert!(r.start < r.end, "collection::vec: empty size range");
            SizeRange {
                lo: r.start,
                hi_exclusive: r.end,
            }
        }
    }

    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let len = rng.gen_range(self.size.lo..self.size.hi_exclusive);
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }
}

pub mod prelude {
    pub use crate::strategy::{BoxedStrategy, Just, Strategy, Union};
    pub use crate::test_runner::Config as ProptestConfig;
    pub use crate::test_runner::{TestCaseError, TestRunner};
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, prop_oneof, proptest,
    };
}

/// Defines deterministic property tests. Mirrors upstream's surface:
/// an optional `#![proptest_config(...)]` header and `fn name(pat in
/// strategy, ...) { body }` items (attributes like `#[test]` included).
#[macro_export]
macro_rules! proptest {
    (
        #![proptest_config($config:expr)]
        $($rest:tt)*
    ) => {
        $crate::proptest_items! { config = $config; $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::proptest_items! { config = $crate::test_runner::Config::default(); $($rest)* }
    };
}

#[macro_export]
#[doc(hidden)]
macro_rules! proptest_items {
    (config = $config:expr;) => {};
    (
        config = $config:expr;
        $(#[$meta:meta])*
        fn $name:ident($($pat:pat_param in $strategy:expr),+ $(,)?) $body:block
        $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let mut runner = $crate::test_runner::TestRunner::new($config);
            runner.run(|__proptest_rng| {
                $(let $pat = $crate::strategy::Strategy::generate(&($strategy), __proptest_rng);)+
                $body
                Ok(())
            });
        }
        $crate::proptest_items! { config = $config; $($rest)* }
    };
}

/// Uniformly picks one of several strategies. All options are boxed, so
/// their value types must agree.
#[macro_export]
macro_rules! prop_oneof {
    ($($strategy:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $($crate::strategy::Strategy::boxed($strategy)),+
        ])
    };
}

#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {{
        let __prop_cond: bool = $cond;
        if !__prop_cond {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!("assertion failed: {}", stringify!($cond)),
            ));
        }
    }};
    ($cond:expr, $($fmt:tt)+) => {{
        let __prop_cond: bool = $cond;
        if !__prop_cond {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!($($fmt)+),
            ));
        }
    }};
}

#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        if !(*l == *r) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(format!(
                "assertion failed: `{} == {}`\n  left: {:?}\n right: {:?}",
                stringify!($left),
                stringify!($right),
                l,
                r
            )));
        }
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (l, r) = (&$left, &$right);
        if !(*l == *r) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(format!(
                $($fmt)+
            )));
        }
    }};
}

#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        if *l == *r {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(format!(
                "assertion failed: `{} != {}`\n  both: {:?}",
                stringify!($left),
                stringify!($right),
                l
            )));
        }
    }};
}

#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {{
        let __prop_cond: bool = $cond;
        if !__prop_cond {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::reject(
                stringify!($cond),
            ));
        }
    }};
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    fn square_strategy() -> impl Strategy<Value = (f32, f32)> {
        (0.0f32..4.0).prop_map(|x| (x, x * x))
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn ranges_stay_in_bounds(x in -3.0f32..3.0, n in 1usize..10) {
            prop_assert!((-3.0..3.0).contains(&x));
            prop_assert!((1..10).contains(&n));
        }

        #[test]
        fn vec_strategy_respects_len(v in crate::collection::vec(0.0f32..1.0, 3..7)) {
            prop_assert!((3..7).contains(&v.len()));
            prop_assert!(v.iter().all(|x| (0.0..1.0).contains(x)));
        }

        #[test]
        fn prop_map_and_assume_work((x, sq) in square_strategy()) {
            prop_assume!(x > 0.5);
            prop_assert!((sq - x * x).abs() < 1e-6);
            prop_assert_eq!(sq, x * x);
            prop_assert_ne!(sq + 1.0, sq);
        }

        #[test]
        fn oneof_picks_each_variant(choice in prop_oneof![Just(1u32), Just(2u32), (10u32..20).prop_map(|v| v)]) {
            prop_assert!(choice == 1 || choice == 2 || (10..20).contains(&choice));
        }

        #[test]
        fn nested_vec_strategy(m in crate::collection::vec(crate::collection::vec(-1.0f32..1.0, 4), 2..5)) {
            prop_assert!((2..5).contains(&m.len()));
            for row in &m {
                prop_assert_eq!(row.len(), 4);
            }
        }
    }

    #[test]
    #[should_panic(expected = "proptest case failed")]
    fn failing_property_panics() {
        proptest! {
            fn always_fails(x in 0usize..10) {
                prop_assert!(x > 100, "x was {}", x);
            }
        }
        always_fails();
    }
}
