//! Offline vendored shim for the subset of `criterion` used by this
//! workspace. Runs each benchmark `sample_size` times after one warmup
//! iteration and prints mean / min wall-clock per iteration. No statistical
//! analysis, HTML reports, or baseline comparison.

use std::time::{Duration, Instant};

pub struct Criterion {
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion { sample_size: 20 }
    }
}

impl Criterion {
    pub fn sample_size(mut self, n: usize) -> Self {
        assert!(n > 0, "sample_size must be positive");
        self.sample_size = n;
        self
    }

    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, mut f: F) -> &mut Self {
        let mut bencher = Bencher {
            samples: Vec::new(),
            sample_size: self.sample_size,
        };
        f(&mut bencher);
        bencher.report(name);
        self
    }

    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.to_string(),
        }
    }
}

pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
}

impl BenchmarkGroup<'_> {
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, f: F) -> &mut Self {
        let full = format!("{}/{}", self.name, name);
        self.criterion.bench_function(&full, f);
        self
    }

    pub fn finish(self) {}
}

pub struct Bencher {
    samples: Vec<Duration>,
    sample_size: usize,
}

impl Bencher {
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut routine: F) {
        // Warmup.
        std::hint::black_box(routine());
        self.samples.clear();
        for _ in 0..self.sample_size {
            let start = Instant::now();
            std::hint::black_box(routine());
            self.samples.push(start.elapsed());
        }
    }

    fn report(&self, name: &str) {
        if self.samples.is_empty() {
            println!("{name:<40} (no samples)");
            return;
        }
        let total: Duration = self.samples.iter().sum();
        let mean = total / self.samples.len() as u32;
        let min = self.samples.iter().min().copied().unwrap_or_default();
        println!(
            "{name:<40} mean {:>12.3?}  min {:>12.3?}  ({} samples)",
            mean,
            min,
            self.samples.len()
        );
    }
}

/// Re-export for benches that use `criterion::black_box`.
pub fn black_box<T>(value: T) -> T {
    std::hint::black_box(value)
}

#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        fn $name() {
            let mut criterion: $crate::Criterion = $config;
            $($target(&mut criterion);)+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group! {
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        }
    };
}

#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_runs_routine() {
        let mut runs = 0usize;
        Criterion::default()
            .sample_size(3)
            .bench_function("counting", |b| b.iter(|| runs += 1));
        // 1 warmup + 3 samples.
        assert_eq!(runs, 4);
    }

    #[test]
    fn groups_compose_names() {
        let mut c = Criterion::default().sample_size(2);
        let mut group = c.benchmark_group("g");
        group.bench_function("inner", |b| b.iter(|| 1 + 1));
        group.finish();
    }
}
