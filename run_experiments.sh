#!/bin/bash
# Regenerates every table and figure. Order: cheap/fashion first.
set -x
cd /root/repo
B=target/release
$B/table1 > results/table1.txt 2>&1
$B/fig4  > results/fig4.txt 2>&1
$B/fig6  > results/fig6.txt 2>&1
$B/table2 > results/table2.txt 2>&1
$B/fig5   > results/fig5.txt 2>&1
$B/table5 > results/table5.txt 2>&1
$B/micro_random > results/micro_random.txt 2>&1
$B/table3 > results/table3.txt 2>&1
$B/fig7   > results/fig7.txt 2>&1
$B/table4 > results/table4.txt 2>&1
$B/ablation_s > results/ablation_s.txt 2>&1
$B/ablation_lambda > results/ablation_lambda.txt 2>&1
echo ALL_EXPERIMENTS_DONE
