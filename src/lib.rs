//! Umbrella crate: re-exports the full `fabflip` reproduction stack.
//! See README.md and DESIGN.md.
pub use fabflip as zka;
pub use fabflip_agg as agg;
pub use fabflip_attacks as attacks;
pub use fabflip_data as data;
pub use fabflip_fl as fl;
pub use fabflip_nn as nn;
pub use fabflip_tensor as tensor;
