//! Peek at the fabricated images themselves: synthesize ZKA-R and ZKA-G
//! sets against a freshly initialized global model, render one of each as
//! ASCII art, and compare their diversity (the paper's Fig. 4 claim).
//!
//! ```sh
//! cargo run --release --example synthetic_data
//! ```

use fabflip::{ZkaConfig, ZkaG, ZkaR};
use fabflip_attacks::TaskInfo;
use fabflip_fl::TaskKind;
use fabflip_tensor::Tensor;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn ascii_render(img: &Tensor) {
    let h = img.shape()[2];
    let w = img.shape()[3];
    let ramp: Vec<char> = " .:-=+*#%@".chars().collect();
    for y in 0..h {
        let mut line = String::new();
        for x in 0..w {
            let v = img.data()[y * w + x].clamp(0.0, 1.0);
            line.push(ramp[((v * (ramp.len() - 1) as f32).round()) as usize]);
        }
        println!("{line}");
    }
}

fn set_variance(s: &Tensor) -> f32 {
    let n = s.shape()[0];
    let d: usize = s.shape()[1..].iter().product();
    (0..d)
        .map(|j| {
            let mean: f32 = (0..n).map(|i| s.data()[i * d + j]).sum::<f32>() / n as f32;
            (0..n)
                .map(|i| (s.data()[i * d + j] - mean).powi(2))
                .sum::<f32>()
                / n as f32
        })
        .sum::<f32>()
        / d as f32
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let mut rng = StdRng::seed_from_u64(11);
    let mut global = TaskKind::Fashion.build_model(&mut rng);
    let spec = TaskKind::Fashion.spec();
    let task = TaskInfo {
        channels: spec.channels,
        height: spec.height,
        width: spec.width,
        num_classes: spec.num_classes,
        synth_set_size: 12,
        local_lr: 0.08,
        local_batch: 16,
        local_epochs: 1,
    };
    let cfg = ZkaConfig::paper();
    let (s_r, r_trace) = ZkaR::new(cfg).synthesize(&mut global, &task, &mut rng)?;
    let (s_g, g_trace) = ZkaG::new(cfg).synthesize(&mut global, &task, 0, &mut rng)?;

    println!("ZKA-R image #0 (reverse-engineered ambiguity):");
    ascii_render(&s_r.slice_batch(0)?);
    println!("\nZKA-G image #0 (generator output, anti-Ỹ):");
    ascii_render(&s_g.slice_batch(0)?);
    println!("\nZKA-R generation loss per epoch (minimized): {r_trace:?}");
    println!("ZKA-G cross-entropy per epoch (maximized):   {g_trace:?}");
    // Also save inspectable image files next to the results.
    std::fs::create_dir_all("results").ok();
    fabflip_data::io::save_image(&s_r.slice_batch(0)?, "results/zka_r_sample.pgm")?;
    fabflip_data::io::save_image(&s_g.slice_batch(0)?, "results/zka_g_sample.pgm")?;
    println!("\nsaved results/zka_r_sample.pgm and results/zka_g_sample.pgm");
    println!("\nset diversity (mean per-pixel variance):");
    println!("  ZKA-R: {:.5}", set_variance(&s_r));
    println!(
        "  ZKA-G: {:.5}   ← lower: shared generator + fixed noise",
        set_variance(&s_g)
    );
    Ok(())
}
