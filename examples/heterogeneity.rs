//! Data-heterogeneity sweep (paper Table III, reduced): how the Dirichlet
//! concentration β changes the attack success rate of ZKA-R under the
//! aggressive Bulyan defense. Lower β = more heterogeneous clients =
//! harder outlier detection = stronger attack.
//!
//! ```sh
//! cargo run --release --example heterogeneity
//! ```

use fabflip::ZkaConfig;
use fabflip_agg::DefenseKind;
use fabflip_fl::{
    metrics::attack_success_rate, runner::acc_natk, simulate, AttackSpec, FlConfig, TaskKind,
};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    println!(
        "{:>6} {:>10} {:>8} {:>8}",
        "beta", "acc_natk", "acc_max", "ASR%"
    );
    for beta in [0.1, 0.5, 0.9] {
        let cfg = FlConfig::builder(TaskKind::Fashion)
            .n_clients(40)
            .rounds(25)
            .local_epochs(2)
            .train_size(1200)
            .test_size(300)
            .beta(beta)
            .defense(DefenseKind::Bulyan { f: 2 })
            .attack(AttackSpec::ZkaR {
                cfg: ZkaConfig::fast(),
            })
            .seed(3)
            .build();
        let r = simulate(&cfg)?;
        let natk = acc_natk(&cfg)?;
        println!(
            "{:>6} {:>10.3} {:>8.3} {:>8.1}",
            beta,
            natk,
            r.max_accuracy(),
            attack_success_rate(natk, r.max_accuracy()) * 100.0
        );
    }
    Ok(())
}
