//! The paper's Sec. III-A aside, made runnable: Sybil defenses (FoolsGold)
//! *do* catch the ZKA adversary when all malicious clients submit identical
//! updates — and a little per-copy perturbation noise circumvents them,
//! which is why the paper excludes Sybil defenses from its threat model.
//!
//! ```sh
//! cargo run --release --example foolsgold_sybil
//! ```

use fabflip::ZkaConfig;
use fabflip_agg::DefenseKind;
use fabflip_fl::{simulate, AttackSpec, FlConfig, TaskKind};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    println!("{:<22} {:>8} {:>8}", "adversary", "DPR%", "acc_max");
    for (label, noise) in [("identical copies", 0.0f32), ("perturbed copies", 0.02)] {
        let cfg = FlConfig::builder(TaskKind::Fashion)
            .n_clients(40)
            .rounds(12)
            .local_epochs(2)
            .train_size(1200)
            .test_size(300)
            .defense(DefenseKind::FoolsGold)
            .attack(AttackSpec::ZkaG {
                cfg: ZkaConfig::fast(),
            })
            .sybil_noise(noise)
            .seed(9)
            .build();
        let r = simulate(&cfg)?;
        let dpr = r.dpr().map_or("NA".into(), |d| format!("{:.1}", d * 100.0));
        println!("{label:<22} {dpr:>8} {:>8.3}", r.max_accuracy());
    }
    println!("\n(Sec. III-A: small perturbation noise circumvents Sybil defenses)");
    Ok(())
}
