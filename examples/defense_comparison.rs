//! Compare all four robust aggregation rules (plus undefended FedAvg)
//! against the same zero-knowledge attack — the scenario of paper Table II,
//! one attack column at a reduced scale.
//!
//! ```sh
//! cargo run --release --example defense_comparison
//! ```

use fabflip::ZkaConfig;
use fabflip_agg::DefenseKind;
use fabflip_fl::{
    metrics::attack_success_rate, runner::acc_natk, simulate, AttackSpec, FlConfig, TaskKind,
};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let defenses = [
        DefenseKind::FedAvg,
        DefenseKind::MKrum { f: 2 },
        DefenseKind::TrMean { trim: 2 },
        DefenseKind::Bulyan { f: 2 },
        DefenseKind::Median,
    ];
    println!(
        "{:<8} {:>8} {:>8} {:>8}",
        "defense", "acc_max", "ASR%", "DPR%"
    );
    for defense in defenses {
        let cfg = FlConfig::builder(TaskKind::Fashion)
            .n_clients(40)
            .rounds(25)
            .local_epochs(2)
            .train_size(1200)
            .test_size(300)
            .defense(defense)
            .attack(AttackSpec::ZkaR {
                cfg: ZkaConfig::fast(),
            })
            .seed(7)
            .build();
        let r = simulate(&cfg)?;
        let natk = acc_natk(&cfg)?;
        let asr = attack_success_rate(natk, r.max_accuracy());
        let dpr = r
            .dpr()
            .map_or("NA".to_string(), |d| format!("{:.1}", d * 100.0));
        println!(
            "{:<8} {:>8.3} {:>8.1} {:>8}",
            defense.label(),
            r.max_accuracy(),
            asr * 100.0,
            dpr
        );
    }
    Ok(())
}
