//! Scratch probe: central cifar-like training diagnostics.
//! `cargo run --release --example probe_cifar -- <lr> <epochs>`

use fabflip_data::{Dataset, SynthSpec};
use fabflip_nn::losses::{accuracy, softmax_cross_entropy_hard};
use fabflip_nn::models;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let lr: f32 = args.first().and_then(|s| s.parse().ok()).unwrap_or(0.05);
    let epochs: usize = args.get(1).and_then(|s| s.parse().ok()).unwrap_or(4);
    let spec = SynthSpec::cifar_like();
    let train = Dataset::synthesize_split(&spec, 1200, 1, 100);
    let test = Dataset::synthesize_split(&spec, 400, 1, 200);
    let mut rng = StdRng::seed_from_u64(0);
    let mut model = models::cifar_cnn(&mut rng);
    let mut srng = StdRng::seed_from_u64(3);
    let all: Vec<usize> = (0..train.len()).collect();
    for e in 0..epochs {
        let mut loss_sum = 0.0f32;
        let mut batches = 0usize;
        for b in train.shuffled_batches(&all, 32, &mut srng) {
            let loss = model
                .train_step(&b.images, lr, |logits| {
                    softmax_cross_entropy_hard(logits, &b.labels)
                })
                .expect("training step");
            loss_sum += loss;
            batches += 1;
        }
        let tb = test.gather(&(0..test.len()).collect::<Vec<_>>());
        let logits = model.forward(&tb.images).expect("forward");
        let acc = accuracy(&logits, &tb.labels);
        let finite = model.flat_params().iter().all(|v| v.is_finite());
        println!(
            "epoch {e}: mean loss {:.4}, test acc {:.4}, params finite: {finite}",
            loss_sum / batches.max(1) as f32,
            acc
        );
    }
}
