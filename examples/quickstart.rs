//! Quickstart: poison a small federated-learning run with ZKA-G — the
//! zero-knowledge generator attack — against a Multi-Krum defended server.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use fabflip::ZkaConfig;
use fabflip_agg::DefenseKind;
use fabflip_fl::{
    metrics::attack_success_rate, runner::acc_natk, simulate, AttackSpec, FlConfig, TaskKind,
};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // A reduced Fashion-MNIST-like federation: 40 clients, 10 sampled per
    // round, 20% controlled by one adversary who owns NO data and NEVER
    // sees another client's update.
    let cfg = FlConfig::builder(TaskKind::Fashion)
        .n_clients(40)
        .rounds(25)
        .local_epochs(2)
        .train_size(1200)
        .test_size(300)
        .defense(DefenseKind::MKrum { f: 2 })
        .attack(AttackSpec::ZkaG {
            cfg: ZkaConfig::fast(),
        })
        .seed(42)
        .build();

    println!("running {} rounds of FL under attack…", cfg.rounds);
    let attacked = simulate(&cfg)?;
    let natk = acc_natk(&cfg)?;

    println!("\nround  accuracy");
    for r in &attacked.rounds {
        println!("{:>5}  {:.3}", r.round, r.accuracy);
    }
    println!("\nclean ceiling (no attack, no defense): {:.3}", natk);
    println!(
        "max accuracy under ZKA-G + mKrum:      {:.3}",
        attacked.max_accuracy()
    );
    println!(
        "attack success rate (Eq. 4):            {:.1}%",
        attack_success_rate(natk, attacked.max_accuracy()) * 100.0
    );
    match attacked.dpr() {
        Some(d) => println!("defense pass rate (Eq. 5):              {:.1}%", d * 100.0),
        None => println!("defense pass rate: NA"),
    }
    Ok(())
}
