use std::fmt;

/// Error type for tensor operations.
///
/// Every fallible operation in this crate returns `Result<_, TensorError>`;
/// the variants carry enough context to diagnose shape bugs in the layers
/// built on top.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TensorError {
    /// Two operands had incompatible shapes for the requested operation.
    ShapeMismatch {
        /// Name of the failing operation, e.g. `"add"`.
        op: &'static str,
        /// Shape of the left-hand operand.
        lhs: Vec<usize>,
        /// Shape of the right-hand operand.
        rhs: Vec<usize>,
    },
    /// The number of data elements did not match the product of the shape.
    LengthMismatch {
        /// Expected number of elements (product of shape dims).
        expected: usize,
        /// Actual length of the provided buffer.
        actual: usize,
    },
    /// An operation required a tensor of a specific rank.
    RankMismatch {
        /// Name of the failing operation.
        op: &'static str,
        /// Required rank.
        expected: usize,
        /// Rank of the tensor that was provided.
        actual: usize,
    },
    /// A convolution geometry was invalid (e.g. kernel larger than padded input).
    InvalidGeometry(String),
}

impl fmt::Display for TensorError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TensorError::ShapeMismatch { op, lhs, rhs } => {
                write!(f, "shape mismatch in `{op}`: lhs {lhs:?} vs rhs {rhs:?}")
            }
            TensorError::LengthMismatch { expected, actual } => {
                write!(
                    f,
                    "data length {actual} does not match shape product {expected}"
                )
            }
            TensorError::RankMismatch {
                op,
                expected,
                actual,
            } => {
                write!(
                    f,
                    "`{op}` requires rank-{expected} tensor, got rank {actual}"
                )
            }
            TensorError::InvalidGeometry(msg) => write!(f, "invalid geometry: {msg}"),
        }
    }
}

impl std::error::Error for TensorError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_nonempty_and_lowercase() {
        let errs = [
            TensorError::ShapeMismatch {
                op: "add",
                lhs: vec![2],
                rhs: vec![3],
            },
            TensorError::LengthMismatch {
                expected: 4,
                actual: 3,
            },
            TensorError::RankMismatch {
                op: "matmul",
                expected: 2,
                actual: 1,
            },
            TensorError::InvalidGeometry("kernel 5 > input 3".into()),
        ];
        for e in errs {
            let s = e.to_string();
            assert!(!s.is_empty());
            assert!(s.chars().next().unwrap().is_lowercase() || s.starts_with('`'));
        }
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<TensorError>();
    }
}
