//! Portable scalar backend: the pre-backend `matmul.rs`/`vecops.rs` inner
//! loops, extracted without changing a single floating-point operation.
//! This implementation is the bitwise reference — the committed goldens in
//! `crates/tensor/tests/backend_goldens.rs` pin its results to the
//! pre-refactor ones, and the autovectorizer is free to (and does)
//! vectorize these fixed-order loops because none of them reassociates.

use super::{CpuBackend, DOT_LANES, MR, WR};

/// The portable backend (unit struct; dispatched as `&'static dyn`).
pub(super) struct Scalar;

/// One `R`-row × `WR`-column register-tile update for a single `k` panel:
/// zeroed accumulators, an ascending-`p` FMA chain, then one flush add
/// into `c`. Remainder columns past the last full `WR` tile follow the
/// exact same per-element sequence with scalar accumulators. `av(p)`
/// yields the `R` broadcast values of `a` for step `p`.
#[allow(clippy::too_many_arguments)]
#[inline(always)]
fn mr_block<const R: usize>(
    av: impl Fn(usize) -> [f32; R],
    bp: &[f32],
    b_base: usize,
    b_stride: usize,
    kc: usize,
    width: usize,
    c: &mut [f32],
    c_base: usize,
    c_stride: usize,
) {
    let wr_end = width - width % WR;
    let mut jw = 0;
    while jw + WR <= width {
        let mut acc = [[0.0f32; WR]; R];
        for p in 0..kc {
            let a_vals = av(p);
            let off = b_base + p * b_stride + jw;
            let bv = &bp[off..off + WR];
            for r in 0..R {
                let ar = a_vals[r];
                let accr = &mut acc[r];
                for t in 0..WR {
                    accr[t] = ar.mul_add(bv[t], accr[t]);
                }
            }
        }
        for (r, accr) in acc.iter().enumerate() {
            let cr = &mut c[c_base + r * c_stride + jw..c_base + r * c_stride + jw + WR];
            for t in 0..WR {
                cr[t] += accr[t];
            }
        }
        jw += WR;
    }
    for t in wr_end..width {
        let mut s = [0.0f32; R];
        for p in 0..kc {
            let a_vals = av(p);
            let bv = bp[b_base + p * b_stride + t];
            for r in 0..R {
                s[r] = a_vals[r].mul_add(bv, s[r]);
            }
        }
        for (r, sr) in s.iter().enumerate() {
            c[c_base + r * c_stride + t] += sr;
        }
    }
}

impl CpuBackend for Scalar {
    fn name(&self) -> &'static str {
        "scalar"
    }

    fn gemm_tile(
        &self,
        a: &[f32],
        a_base: usize,
        a_row_stride: usize,
        a_p_stride: usize,
        rows: usize,
        kc: usize,
        bp: &[f32],
        b_base: usize,
        b_stride: usize,
        width: usize,
        c: &mut [f32],
        c_base: usize,
        c_stride: usize,
    ) {
        debug_assert!((1..=MR).contains(&rows), "gemm_tile: rows {rows}");
        let av1 = |p: usize| [a[a_base + p * a_p_stride]];
        match rows {
            4 => mr_block::<4>(
                |p| std::array::from_fn(|r| a[a_base + r * a_row_stride + p * a_p_stride]),
                bp,
                b_base,
                b_stride,
                kc,
                width,
                c,
                c_base,
                c_stride,
            ),
            3 => mr_block::<3>(
                |p| std::array::from_fn(|r| a[a_base + r * a_row_stride + p * a_p_stride]),
                bp,
                b_base,
                b_stride,
                kc,
                width,
                c,
                c_base,
                c_stride,
            ),
            2 => mr_block::<2>(
                |p| std::array::from_fn(|r| a[a_base + r * a_row_stride + p * a_p_stride]),
                bp,
                b_base,
                b_stride,
                kc,
                width,
                c,
                c_base,
                c_stride,
            ),
            _ => mr_block::<1>(av1, bp, b_base, b_stride, kc, width, c, c_base, c_stride),
        }
    }

    fn dot_lanes(&self, a: &[f32], b: &[f32]) -> f32 {
        debug_assert_eq!(a.len(), b.len());
        const L: usize = DOT_LANES;
        let mut acc = [0.0f32; L];
        let chunks = a.len() / L;
        for q in 0..chunks {
            let av = &a[q * L..q * L + L];
            let bv = &b[q * L..q * L + L];
            for t in 0..L {
                acc[t] = av[t].mul_add(bv[t], acc[t]);
            }
        }
        let mut w = L / 2;
        while w > 0 {
            for t in 0..w {
                acc[t] += acc[t + w];
            }
            w /= 2;
        }
        let mut s = acc[0];
        for t in chunks * L..a.len() {
            s = a[t].mul_add(b[t], s);
        }
        s
    }

    fn dot(&self, a: &[f32], b: &[f32]) -> f32 {
        debug_assert_eq!(a.len(), b.len());
        let mut s = 0.0f32;
        for (x, y) in a.iter().zip(b) {
            s += x * y;
        }
        s
    }

    fn sq_norm(&self, a: &[f32]) -> f32 {
        let mut s = 0.0f32;
        for x in a {
            s += x * x;
        }
        s
    }

    fn dot_delta(&self, a: &[f32], b: &[f32], r: &[f32]) -> f32 {
        debug_assert_eq!(a.len(), b.len());
        debug_assert_eq!(a.len(), r.len());
        let mut s = 0.0f32;
        for ((x, y), c) in a.iter().zip(b).zip(r) {
            s += (x - c) * (y - c);
        }
        s
    }

    fn sq_norm_delta(&self, a: &[f32], r: &[f32]) -> f32 {
        debug_assert_eq!(a.len(), r.len());
        let mut s = 0.0f32;
        for (x, c) in a.iter().zip(r) {
            let d = x - c;
            s += d * d;
        }
        s
    }

    fn add_assign(&self, out: &mut [f32], src: &[f32]) {
        debug_assert_eq!(out.len(), src.len());
        for (o, x) in out.iter_mut().zip(src) {
            *o += x;
        }
    }

    fn scale_assign(&self, out: &mut [f32], alpha: f32) {
        for o in out {
            *o *= alpha;
        }
    }

    fn sq_dev_assign(&self, out: &mut [f32], v: &[f32], m: &[f32]) {
        debug_assert_eq!(out.len(), v.len());
        debug_assert_eq!(out.len(), m.len());
        for (o, (x, mv)) in out.iter_mut().zip(v.iter().zip(m)) {
            let diff = x - mv;
            *o += diff * diff;
        }
    }

    fn scale_sqrt_assign(&self, out: &mut [f32], alpha: f32) {
        for o in out {
            *o = (*o * alpha).sqrt();
        }
    }

    fn axpy_assign(&self, out: &mut [f32], alpha: f32, src: &[f32]) {
        debug_assert_eq!(out.len(), src.len());
        for (o, y) in out.iter_mut().zip(src) {
            *o += alpha * y;
        }
    }
}
