//! AVX2 + FMA backend (256-bit lanes).
//!
//! Only constructed by the dispatcher after
//! `is_x86_feature_detected!("avx2")` and `("fma")` both succeed, so every
//! `#[target_feature]` kernel below is reachable only on hosts that
//! execute it legally.
//!
//! Determinism: the GEMM tile and `dot_lanes` reproduce the scalar
//! backend's per-element operation chains exactly (see the module docs in
//! `backend/mod.rs`); the serial reductions (`dot`, `sq_norm`, `*_delta`)
//! use a fixed four-register lane layout folded by a fixed tree —
//! deterministic for this backend, ≈1 ULP-scaled from scalar. Element-wise
//! primitives use separate mul/add (no fused contraction), matching scalar
//! rounding bitwise.

use std::arch::x86_64::{
    __m256, _mm256_add_ps, _mm256_castps256_ps128, _mm256_extractf128_ps, _mm256_fmadd_ps,
    _mm256_loadu_ps, _mm256_mul_ps, _mm256_set1_ps, _mm256_setzero_ps, _mm256_sqrt_ps,
    _mm256_storeu_ps, _mm256_sub_ps, _mm_add_ps, _mm_add_ss, _mm_cvtss_f32, _mm_movehl_ps,
    _mm_shuffle_ps,
};

use super::{CpuBackend, MR};

/// The AVX2 + FMA backend (unit struct; dispatched as `&'static dyn`).
pub(super) struct Avx2;

/// Horizontal sum of one 8-lane register with the fixed halving tree
/// `acc[t] += acc[t+w]` for `w = 4, 2, 1` — the same tree the scalar
/// `dot_lanes` applies to lanes 0..8, so the two backends agree bitwise.
#[target_feature(enable = "avx2")]
fn hsum8(v: __m256) -> f32 {
    let q = _mm_add_ps(_mm256_castps256_ps128(v), _mm256_extractf128_ps(v, 1));
    let h = _mm_add_ps(q, _mm_movehl_ps(q, q));
    let s = _mm_add_ss(h, _mm_shuffle_ps(h, h, 1));
    _mm_cvtss_f32(s)
}

/// One `R`-row GEMM register tile for a single `k` panel: 16-column
/// sub-tiles (two 8-lane accumulators per row, `2R + 1` live registers),
/// then 8-column sub-tiles, then scalar remainder columns. Every output
/// element keeps the scalar chain — zeroed accumulator, ascending-`p`
/// correctly-rounded FMA, one flush add — so results are bitwise equal to
/// the scalar backend.
#[allow(clippy::too_many_arguments)]
#[target_feature(enable = "avx2,fma")]
fn tile<const R: usize>(
    a: &[f32],
    a_base: usize,
    ars: usize,
    aps: usize,
    kc: usize,
    bp: &[f32],
    b_base: usize,
    b_stride: usize,
    width: usize,
    c: &mut [f32],
    c_base: usize,
    c_stride: usize,
) {
    let ap = a.as_ptr();
    let bpp = bp.as_ptr();
    let mut jw = 0;
    while jw + 16 <= width {
        let mut acc = [[_mm256_setzero_ps(); 2]; R];
        for p in 0..kc {
            let boff = b_base + p * b_stride + jw;
            // SAFETY(bound: b_base + p*b_stride + jw + 16 <= bp.len()): the
            // caller's panel contract puts the full `width` row in-bounds
            // for every p < kc, and jw + 16 <= width.
            let (b0, b1) = unsafe {
                (
                    _mm256_loadu_ps(bpp.wrapping_add(boff)),
                    _mm256_loadu_ps(bpp.wrapping_add(boff + 8)),
                )
            };
            for (r, accr) in acc.iter_mut().enumerate() {
                // SAFETY(bound: a_base + r*ars + p*aps < a.len()): row r <
                // R, step p < kc of `a` per the caller's tile contract.
                let av = _mm256_set1_ps(unsafe { *ap.wrapping_add(a_base + r * ars + p * aps) });
                accr[0] = _mm256_fmadd_ps(av, b0, accr[0]);
                accr[1] = _mm256_fmadd_ps(av, b1, accr[1]);
            }
        }
        for (r, accr) in acc.iter().enumerate() {
            // SAFETY(bound: c_base + r*c_stride + jw + 16 <= c.len()): holds
            // for every r < R (caller's output-tile contract), so the two
            // 8-lane read-modify-write pairs stay inside `c`.
            unsafe {
                let cp = c.as_mut_ptr().wrapping_add(c_base + r * c_stride + jw);
                _mm256_storeu_ps(cp, _mm256_add_ps(_mm256_loadu_ps(cp), accr[0]));
                _mm256_storeu_ps(
                    cp.wrapping_add(8),
                    _mm256_add_ps(_mm256_loadu_ps(cp.wrapping_add(8)), accr[1]),
                );
            }
        }
        jw += 16;
    }
    while jw + 8 <= width {
        let mut acc = [_mm256_setzero_ps(); R];
        for p in 0..kc {
            let boff = b_base + p * b_stride + jw;
            // SAFETY(bound: b_base + p*b_stride + jw + 8 <= bp.len()): jw +
            // 8 <= width keeps this load inside the caller-guaranteed panel
            // row for p < kc.
            let b0 = unsafe { _mm256_loadu_ps(bpp.wrapping_add(boff)) };
            for (r, accr) in acc.iter_mut().enumerate() {
                // SAFETY(bound: a_base + r*ars + p*aps < a.len()): r < R,
                // p < kc per the caller's tile contract.
                let av = _mm256_set1_ps(unsafe { *ap.wrapping_add(a_base + r * ars + p * aps) });
                *accr = _mm256_fmadd_ps(av, b0, *accr);
            }
        }
        for (r, accr) in acc.iter().enumerate() {
            // SAFETY(bound: c_base + r*c_stride + jw + 8 <= c.len()): holds
            // for r < R (caller's output-tile contract).
            unsafe {
                let cp = c.as_mut_ptr().wrapping_add(c_base + r * c_stride + jw);
                _mm256_storeu_ps(cp, _mm256_add_ps(_mm256_loadu_ps(cp), *accr));
            }
        }
        jw += 8;
    }
    for t in jw..width {
        let mut s = [0.0f32; R];
        for p in 0..kc {
            // SAFETY(bound: b_base + p*b_stride + t < bp.len()): t < width
            // keeps the panel read in-bounds for p < kc.
            let bv = unsafe { *bpp.wrapping_add(b_base + p * b_stride + t) };
            for (r, sr) in s.iter_mut().enumerate() {
                // SAFETY(bound: a_base + r*ars + p*aps < a.len()): r < R,
                // p < kc per the caller's tile contract.
                let av = unsafe { *ap.wrapping_add(a_base + r * ars + p * aps) };
                *sr = av.mul_add(bv, *sr);
            }
        }
        for (r, sr) in s.iter().enumerate() {
            // SAFETY(bound: c_base + r*c_stride + t < c.len()): holds for
            // r < R, t < width (caller's output-tile contract).
            unsafe {
                let cp = c.as_mut_ptr().wrapping_add(c_base + r * c_stride + t);
                *cp += sr;
            }
        }
    }
}

/// 16-lane dot kernel: two 8-lane FMA accumulators are exactly the scalar
/// `dot_lanes` array `acc[0..16]`; `acc0 + acc1` is its `w = 8` halving
/// step and [`hsum8`] the rest of the tree — bitwise equal to scalar.
#[target_feature(enable = "avx2,fma")]
fn dot_lanes(a: &[f32], b: &[f32]) -> f32 {
    let chunks = a.len() / 16;
    let (ap, bp) = (a.as_ptr(), b.as_ptr());
    let mut acc0 = _mm256_setzero_ps();
    let mut acc1 = _mm256_setzero_ps();
    for q in 0..chunks {
        // SAFETY(bound: q*16 + 16 <= a.len() == b.len()): q < len/16, so
        // all four 8-lane loads are in-bounds.
        unsafe {
            acc0 = _mm256_fmadd_ps(
                _mm256_loadu_ps(ap.wrapping_add(q * 16)),
                _mm256_loadu_ps(bp.wrapping_add(q * 16)),
                acc0,
            );
            acc1 = _mm256_fmadd_ps(
                _mm256_loadu_ps(ap.wrapping_add(q * 16 + 8)),
                _mm256_loadu_ps(bp.wrapping_add(q * 16 + 8)),
                acc1,
            );
        }
    }
    let mut s = hsum8(_mm256_add_ps(acc0, acc1));
    for (x, y) in a.iter().skip(chunks * 16).zip(b.iter().skip(chunks * 16)) {
        s = x.mul_add(*y, s);
    }
    s
}

/// Serial-reduction layout shared by `dot`/`sq_norm`/`*_delta`: four
/// 8-lane FMA accumulators striped over 8-element blocks (`block q →
/// acc[q & 3]`), folded `(0+1) + (2+3)` then [`hsum8`], scalar FMA tail.
/// Fixed order for this backend; reassociated relative to scalar.
#[target_feature(enable = "avx2,fma")]
fn dot(a: &[f32], b: &[f32]) -> f32 {
    let blocks = a.len() / 8;
    let (ap, bp) = (a.as_ptr(), b.as_ptr());
    let mut acc = [_mm256_setzero_ps(); 4];
    for q in 0..blocks {
        // SAFETY(bound: q*8 + 8 <= a.len() == b.len()): q < len/8, so both
        // 8-lane loads are in-bounds.
        let (av, bv) = unsafe {
            (
                _mm256_loadu_ps(ap.wrapping_add(q * 8)),
                _mm256_loadu_ps(bp.wrapping_add(q * 8)),
            )
        };
        acc[q & 3] = _mm256_fmadd_ps(av, bv, acc[q & 3]);
    }
    let v = _mm256_add_ps(_mm256_add_ps(acc[0], acc[1]), _mm256_add_ps(acc[2], acc[3]));
    let mut s = hsum8(v);
    for (x, y) in a.iter().skip(blocks * 8).zip(b.iter().skip(blocks * 8)) {
        s = x.mul_add(*y, s);
    }
    s
}

/// Same lane layout as [`dot`] with `x·x` terms.
#[target_feature(enable = "avx2,fma")]
fn sq_norm(a: &[f32]) -> f32 {
    let blocks = a.len() / 8;
    let ap = a.as_ptr();
    let mut acc = [_mm256_setzero_ps(); 4];
    for q in 0..blocks {
        // SAFETY(bound: q*8 + 8 <= a.len()): q < len/8, so the 8-lane load
        // is in-bounds.
        let av = unsafe { _mm256_loadu_ps(ap.wrapping_add(q * 8)) };
        acc[q & 3] = _mm256_fmadd_ps(av, av, acc[q & 3]);
    }
    let v = _mm256_add_ps(_mm256_add_ps(acc[0], acc[1]), _mm256_add_ps(acc[2], acc[3]));
    let mut s = hsum8(v);
    for x in a.iter().skip(blocks * 8) {
        s = x.mul_add(*x, s);
    }
    s
}

/// [`dot`]'s exact structure on on-the-fly deltas — each `xᵢ−rᵢ` rounds
/// identically whether or not it is materialized, so this is bitwise
/// `dot(a−r, b−r)` for this backend.
#[target_feature(enable = "avx2,fma")]
fn dot_delta(a: &[f32], b: &[f32], r: &[f32]) -> f32 {
    let blocks = a.len() / 8;
    let (ap, bp, rp) = (a.as_ptr(), b.as_ptr(), r.as_ptr());
    let mut acc = [_mm256_setzero_ps(); 4];
    for q in 0..blocks {
        // SAFETY(bound: q*8 + 8 <= a.len() == b.len() == r.len()): q <
        // len/8, so all three 8-lane loads are in-bounds.
        let (av, bv, rv) = unsafe {
            (
                _mm256_loadu_ps(ap.wrapping_add(q * 8)),
                _mm256_loadu_ps(bp.wrapping_add(q * 8)),
                _mm256_loadu_ps(rp.wrapping_add(q * 8)),
            )
        };
        acc[q & 3] = _mm256_fmadd_ps(_mm256_sub_ps(av, rv), _mm256_sub_ps(bv, rv), acc[q & 3]);
    }
    let v = _mm256_add_ps(_mm256_add_ps(acc[0], acc[1]), _mm256_add_ps(acc[2], acc[3]));
    let mut s = hsum8(v);
    let tail = blocks * 8;
    for ((x, y), cv) in a
        .iter()
        .skip(tail)
        .zip(b.iter().skip(tail))
        .zip(r.iter().skip(tail))
    {
        s = (x - cv).mul_add(y - cv, s);
    }
    s
}

/// [`sq_norm`]'s exact structure on on-the-fly deltas — bitwise
/// `sq_norm(a−r)` for this backend.
#[target_feature(enable = "avx2,fma")]
fn sq_norm_delta(a: &[f32], r: &[f32]) -> f32 {
    let blocks = a.len() / 8;
    let (ap, rp) = (a.as_ptr(), r.as_ptr());
    let mut acc = [_mm256_setzero_ps(); 4];
    for q in 0..blocks {
        // SAFETY(bound: q*8 + 8 <= a.len() == r.len()): q < len/8, so both
        // 8-lane loads are in-bounds.
        let (av, rv) = unsafe {
            (
                _mm256_loadu_ps(ap.wrapping_add(q * 8)),
                _mm256_loadu_ps(rp.wrapping_add(q * 8)),
            )
        };
        let d = _mm256_sub_ps(av, rv);
        acc[q & 3] = _mm256_fmadd_ps(d, d, acc[q & 3]);
    }
    let v = _mm256_add_ps(_mm256_add_ps(acc[0], acc[1]), _mm256_add_ps(acc[2], acc[3]));
    let mut s = hsum8(v);
    for (x, cv) in a.iter().skip(blocks * 8).zip(r.iter().skip(blocks * 8)) {
        let d = x - cv;
        s = d.mul_add(d, s);
    }
    s
}

/// `out[i] += src[i]`, 8 lanes at a time — independent per-coordinate
/// adds, bitwise equal to scalar.
#[target_feature(enable = "avx2")]
fn add_assign(out: &mut [f32], src: &[f32]) {
    let blocks = out.len() / 8;
    let (op, sp) = (out.as_mut_ptr(), src.as_ptr());
    for q in 0..blocks {
        // SAFETY(bound: q*8 + 8 <= out.len() == src.len()): q < len/8, so
        // the 8-lane load/store pair stays in-bounds.
        unsafe {
            let o = _mm256_loadu_ps(op.wrapping_add(q * 8));
            _mm256_storeu_ps(
                op.wrapping_add(q * 8),
                _mm256_add_ps(o, _mm256_loadu_ps(sp.wrapping_add(q * 8))),
            );
        }
    }
    for (o, x) in out
        .iter_mut()
        .skip(blocks * 8)
        .zip(src.iter().skip(blocks * 8))
    {
        *o += x;
    }
}

/// `out[i] *= alpha` — bitwise equal to scalar.
#[target_feature(enable = "avx2")]
fn scale_assign(out: &mut [f32], alpha: f32) {
    let blocks = out.len() / 8;
    let av = _mm256_set1_ps(alpha);
    let op = out.as_mut_ptr();
    for q in 0..blocks {
        // SAFETY(bound: q*8 + 8 <= out.len()): q < len/8, so the 8-lane
        // load/store pair stays in-bounds.
        unsafe {
            _mm256_storeu_ps(
                op.wrapping_add(q * 8),
                _mm256_mul_ps(_mm256_loadu_ps(op.wrapping_add(q * 8)), av),
            );
        }
    }
    for o in out.iter_mut().skip(blocks * 8) {
        *o *= alpha;
    }
}

/// `out[i] += (v[i] − m[i])²` via separate sub/mul/add — the scalar
/// variance-accumulate rounding, bitwise equal to scalar.
#[target_feature(enable = "avx2")]
fn sq_dev_assign(out: &mut [f32], v: &[f32], m: &[f32]) {
    let blocks = out.len() / 8;
    let (op, vp, mp) = (out.as_mut_ptr(), v.as_ptr(), m.as_ptr());
    for q in 0..blocks {
        // SAFETY(bound: q*8 + 8 <= out.len() == v.len() == m.len()): q <
        // len/8, so every 8-lane access stays in-bounds.
        unsafe {
            let d = _mm256_sub_ps(
                _mm256_loadu_ps(vp.wrapping_add(q * 8)),
                _mm256_loadu_ps(mp.wrapping_add(q * 8)),
            );
            let o = _mm256_loadu_ps(op.wrapping_add(q * 8));
            _mm256_storeu_ps(
                op.wrapping_add(q * 8),
                _mm256_add_ps(o, _mm256_mul_ps(d, d)),
            );
        }
    }
    let tail = blocks * 8;
    for (o, (x, mv)) in out
        .iter_mut()
        .skip(tail)
        .zip(v.iter().skip(tail).zip(m.iter().skip(tail)))
    {
        let diff = x - mv;
        *o += diff * diff;
    }
}

/// `out[i] = sqrt(out[i] * alpha)` — `sqrt` is correctly rounded, bitwise
/// equal to scalar.
#[target_feature(enable = "avx2")]
fn scale_sqrt_assign(out: &mut [f32], alpha: f32) {
    let blocks = out.len() / 8;
    let av = _mm256_set1_ps(alpha);
    let op = out.as_mut_ptr();
    for q in 0..blocks {
        // SAFETY(bound: q*8 + 8 <= out.len()): q < len/8, so the 8-lane
        // load/store pair stays in-bounds.
        unsafe {
            let o = _mm256_loadu_ps(op.wrapping_add(q * 8));
            _mm256_storeu_ps(op.wrapping_add(q * 8), _mm256_sqrt_ps(_mm256_mul_ps(o, av)));
        }
    }
    for o in out.iter_mut().skip(blocks * 8) {
        *o = (*o * alpha).sqrt();
    }
}

/// `out[i] += alpha * src[i]` via separate mul/add — bitwise equal to
/// scalar `axpy_in_place`.
#[target_feature(enable = "avx2")]
fn axpy_assign(out: &mut [f32], alpha: f32, src: &[f32]) {
    let blocks = out.len() / 8;
    let av = _mm256_set1_ps(alpha);
    let (op, sp) = (out.as_mut_ptr(), src.as_ptr());
    for q in 0..blocks {
        // SAFETY(bound: q*8 + 8 <= out.len() == src.len()): q < len/8, so
        // the 8-lane load/store pair stays in-bounds.
        unsafe {
            let o = _mm256_loadu_ps(op.wrapping_add(q * 8));
            _mm256_storeu_ps(
                op.wrapping_add(q * 8),
                _mm256_add_ps(
                    o,
                    _mm256_mul_ps(av, _mm256_loadu_ps(sp.wrapping_add(q * 8))),
                ),
            );
        }
    }
    for (o, y) in out
        .iter_mut()
        .skip(blocks * 8)
        .zip(src.iter().skip(blocks * 8))
    {
        *o += alpha * y;
    }
}

impl CpuBackend for Avx2 {
    fn name(&self) -> &'static str {
        "avx2"
    }

    fn gemm_tile(
        &self,
        a: &[f32],
        a_base: usize,
        a_row_stride: usize,
        a_p_stride: usize,
        rows: usize,
        kc: usize,
        bp: &[f32],
        b_base: usize,
        b_stride: usize,
        width: usize,
        c: &mut [f32],
        c_base: usize,
        c_stride: usize,
    ) {
        debug_assert!((1..=MR).contains(&rows), "gemm_tile: rows {rows}");
        // SAFETY(feature: avx2,fma): `Avx2` is only instantiated after the
        // dispatcher detected both features, so the tile kernels are
        // executable on this host.
        unsafe {
            match rows {
                4 => tile::<4>(
                    a,
                    a_base,
                    a_row_stride,
                    a_p_stride,
                    kc,
                    bp,
                    b_base,
                    b_stride,
                    width,
                    c,
                    c_base,
                    c_stride,
                ),
                3 => tile::<3>(
                    a,
                    a_base,
                    a_row_stride,
                    a_p_stride,
                    kc,
                    bp,
                    b_base,
                    b_stride,
                    width,
                    c,
                    c_base,
                    c_stride,
                ),
                2 => tile::<2>(
                    a,
                    a_base,
                    a_row_stride,
                    a_p_stride,
                    kc,
                    bp,
                    b_base,
                    b_stride,
                    width,
                    c,
                    c_base,
                    c_stride,
                ),
                _ => tile::<1>(
                    a,
                    a_base,
                    a_row_stride,
                    a_p_stride,
                    kc,
                    bp,
                    b_base,
                    b_stride,
                    width,
                    c,
                    c_base,
                    c_stride,
                ),
            }
        }
    }

    fn dot_lanes(&self, a: &[f32], b: &[f32]) -> f32 {
        debug_assert_eq!(a.len(), b.len());
        // SAFETY(feature: avx2,fma): detected by the dispatcher before this
        // backend was handed out.
        unsafe { dot_lanes(a, b) }
    }

    fn dot(&self, a: &[f32], b: &[f32]) -> f32 {
        debug_assert_eq!(a.len(), b.len());
        // SAFETY(feature: avx2,fma): detected by the dispatcher before this
        // backend was handed out.
        unsafe { dot(a, b) }
    }

    fn sq_norm(&self, a: &[f32]) -> f32 {
        // SAFETY(feature: avx2,fma): detected by the dispatcher before this
        // backend was handed out.
        unsafe { sq_norm(a) }
    }

    fn dot_delta(&self, a: &[f32], b: &[f32], r: &[f32]) -> f32 {
        debug_assert_eq!(a.len(), b.len());
        debug_assert_eq!(a.len(), r.len());
        // SAFETY(feature: avx2,fma): detected by the dispatcher before this
        // backend was handed out.
        unsafe { dot_delta(a, b, r) }
    }

    fn sq_norm_delta(&self, a: &[f32], r: &[f32]) -> f32 {
        debug_assert_eq!(a.len(), r.len());
        // SAFETY(feature: avx2,fma): detected by the dispatcher before this
        // backend was handed out.
        unsafe { sq_norm_delta(a, r) }
    }

    fn add_assign(&self, out: &mut [f32], src: &[f32]) {
        debug_assert_eq!(out.len(), src.len());
        // SAFETY(feature: avx2): detected by the dispatcher before this
        // backend was handed out.
        unsafe { add_assign(out, src) }
    }

    fn scale_assign(&self, out: &mut [f32], alpha: f32) {
        // SAFETY(feature: avx2): detected by the dispatcher before this
        // backend was handed out.
        unsafe { scale_assign(out, alpha) }
    }

    fn sq_dev_assign(&self, out: &mut [f32], v: &[f32], m: &[f32]) {
        debug_assert_eq!(out.len(), v.len());
        debug_assert_eq!(out.len(), m.len());
        // SAFETY(feature: avx2): detected by the dispatcher before this
        // backend was handed out.
        unsafe { sq_dev_assign(out, v, m) }
    }

    fn scale_sqrt_assign(&self, out: &mut [f32], alpha: f32) {
        // SAFETY(feature: avx2): detected by the dispatcher before this
        // backend was handed out.
        unsafe { scale_sqrt_assign(out, alpha) }
    }

    fn axpy_assign(&self, out: &mut [f32], alpha: f32, src: &[f32]) {
        debug_assert_eq!(out.len(), src.len());
        // SAFETY(feature: avx2): detected by the dispatcher before this
        // backend was handed out.
        unsafe { axpy_assign(out, alpha, src) }
    }
}
