//! Runtime-dispatched CPU microkernel backends (DESIGN.md §4f).
//!
//! The hot inner loops of [`crate::matmul`] and [`crate::vecops`] — the
//! GEMM register tile, the 16-lane dot kernel, the serial reductions and
//! the element-wise chunk primitives — live behind the [`CpuBackend`]
//! trait with three implementations:
//!
//! * **scalar** — the portable kernels, extracted verbatim from the
//!   pre-backend `matmul.rs`/`vecops.rs` code. Bitwise identical to the
//!   historical results on every host.
//! * **avx2** — AVX2 + FMA `std::arch` intrinsics (256-bit lanes).
//! * **avx512** — AVX-512F intrinsics (512-bit lanes).
//!
//! The active backend is chosen once, on first use, by
//! `is_x86_feature_detected!` and cached in a [`OnceLock`]. The
//! `FABFLIP_BACKEND` environment variable (`scalar` | `avx2` | `avx512`)
//! overrides detection, but a request for an ISA the host does not support
//! (or an unrecognized value) falls back to the detected best — the
//! override selects among safe options, it can never make the process
//! execute unsupported instructions. On non-x86-64 targets only the scalar
//! backend exists.
//!
//! # Determinism contract (§4b restated per backend)
//!
//! Within one backend every kernel fixes its floating-point operation
//! order as a function of input positions and dimensions alone, so all the
//! §4b guarantees (serial ≡ parallel bitwise, replay stability) hold
//! unchanged under any backend. Across backends the kernels split in two
//! classes:
//!
//! * **Bitwise-invariant across backends** — [`CpuBackend::gemm_tile`]
//!   (each output element is an independent zero-initialized ascending-`p`
//!   correctly-rounded FMA chain plus one flush add; lane regrouping never
//!   reorders a per-element chain), [`CpuBackend::dot_lanes`] (the
//!   [`DOT_LANES`]-lane accumulator array and its binary combining tree
//!   map exactly onto one 512-bit or two 256-bit registers), and every
//!   element-wise primitive (`add_assign`, `scale_assign`,
//!   `sq_dev_assign`, `scale_sqrt_assign`, `axpy_assign` — independent
//!   per-coordinate op chains; the SIMD impls use separate mul/add, never
//!   a fused contraction, and `sqrt` is correctly rounded).
//! * **Per-backend order** — the serial single-accumulator reductions
//!   ([`CpuBackend::dot`], [`CpuBackend::sq_norm`] and their `_delta`
//!   forms) genuinely reassociate under SIMD: the wide backends accumulate
//!   in a fixed array of vector lanes folded by a fixed tree. Results are
//!   deterministic for a given backend but differ from scalar by rounding
//!   (≈1 ULP-scaled); goldens for these are keyed by backend.
//!
//! Within each backend `dot_delta(a, b, r)` runs the exact accumulation
//! structure of `dot` on the on-the-fly deltas, so the §4e identity
//! `dot_delta(a, b, r) ≡ dot(a−r, b−r)` stays *bitwise* under every
//! backend (a subtraction rounds identically whether or not the result is
//! materialized), and likewise `sq_norm_delta ≡ sq_norm ∘ sub`.
//!
//! # fabcheck blessing
//!
//! `crates/tensor/src/backend/` is the one blessed home for SIMD
//! intrinsics and raw-pointer loads in product code
//! (`raw-pointer-outside-par`); every `unsafe` block carries a
//! machine-parsed `// SAFETY(bound: …)` / `// SAFETY(feature: …)` claim
//! naming the bounds or ISA invariant it relies on — presence is enforced
//! by `unsafe-without-safety-comment`, the claim grammar and claim *kind*
//! by `unsafe-claim-grammar`, and calls into `#[target_feature]` kernels
//! by `target-feature-call-unguarded` (only detection-proven call sites,
//! i.e. these backend methods, may enter them). `backend-parity` checks
//! that every [`CpuBackend`] method is implemented by all three backends
//! and exercised by the cross-backend goldens/proptests. This file is
//! additionally blessed for `env-var-outside-config` (the single
//! `FABFLIP_BACKEND` read below).

use std::sync::atomic::{AtomicU8, Ordering};
use std::sync::OnceLock;

#[cfg(target_arch = "x86_64")]
mod avx2;
#[cfg(target_arch = "x86_64")]
mod avx512;
mod scalar;

/// Rows processed together by the GEMM micro-kernels (register-tile
/// height). Shared by every backend so row partitioning — and therefore
/// the §4b fixed-work-unit argument — is backend-independent.
pub const MR: usize = 4;

/// Register-tile width of the scalar GEMM kernel: one `MR×WR` accumulator
/// block stays in SIMD registers for a whole `k` panel. The wide backends
/// sub-tile `WR` to fit their register files; per-element op order is
/// unaffected (each output element keeps its own accumulator chain).
pub const WR: usize = 64;

/// Number of independent accumulator lanes in [`CpuBackend::dot_lanes`].
/// Exactly one 512-bit register (or two 256-bit registers), which is what
/// makes the lane structure — and the results — identical across
/// backends.
pub const DOT_LANES: usize = 16;

/// One CPU microkernel implementation. All methods are safe to call on
/// any host *through the handles this module hands out* — an instance for
/// an ISA is only ever constructed after feature detection succeeds.
///
/// Implementations are zero-sized; the dispatcher returns `&'static dyn
/// CpuBackend`, so selection costs one vtable indirection per kernel
/// entry, never per inner-loop iteration.
pub trait CpuBackend: Send + Sync {
    /// Static name for logs, benches and golden keys: `"scalar"`,
    /// `"avx2"` or `"avx512"`.
    fn name(&self) -> &'static str;

    /// One `rows × width` GEMM register-tile update for a single `k`
    /// panel: `c[c_base + r*c_stride + j] += Σ_p a(r, p) · b(p, j)` with
    /// `a(r, p) = a[a_base + r*a_row_stride + p*a_p_stride]`,
    /// `b(p, j) = bp[b_base + p*b_stride + j]`, `p ∈ 0..kc`,
    /// `j ∈ 0..width`, `r ∈ 0..rows` (`rows ≤ MR`).
    ///
    /// Per output element: zeroed accumulator, ascending-`p` fused
    /// multiply-add chain, one flush add into `c` — bitwise identical
    /// across backends.
    #[allow(clippy::too_many_arguments)]
    fn gemm_tile(
        &self,
        a: &[f32],
        a_base: usize,
        a_row_stride: usize,
        a_p_stride: usize,
        rows: usize,
        kc: usize,
        bp: &[f32],
        b_base: usize,
        b_stride: usize,
        width: usize,
        c: &mut [f32],
        c_base: usize,
        c_stride: usize,
    );

    /// Dot product over [`DOT_LANES`] independent FMA lanes with a fixed
    /// binary halving tree and a scalar FMA tail — bitwise identical
    /// across backends (the row-dot kernel of `matmul_transpose_b`).
    fn dot_lanes(&self, a: &[f32], b: &[f32]) -> f32;

    /// Dot product. Scalar: the historical serial single-accumulator
    /// `Σ xᵢ·yᵢ`. Wide backends: fixed vector-lane accumulation —
    /// per-backend op order.
    fn dot(&self, a: &[f32], b: &[f32]) -> f32;

    /// Squared Euclidean norm `Σ xᵢ²`; same accumulation structure as
    /// [`CpuBackend::dot`] — per-backend op order.
    fn sq_norm(&self, a: &[f32]) -> f32;

    /// `Σ (aᵢ−rᵢ)·(bᵢ−rᵢ)` without materializing the deltas; bitwise
    /// equal to `self.dot(a−r, b−r)` within any single backend.
    fn dot_delta(&self, a: &[f32], b: &[f32], r: &[f32]) -> f32;

    /// `Σ (aᵢ−rᵢ)²`; bitwise equal to `self.sq_norm(a−r)` within any
    /// single backend.
    fn sq_norm_delta(&self, a: &[f32], r: &[f32]) -> f32;

    /// `out[i] += src[i]` (mean-accumulate chunk primitive). Bitwise
    /// across backends.
    fn add_assign(&self, out: &mut [f32], src: &[f32]);

    /// `out[i] *= alpha`. Bitwise across backends.
    fn scale_assign(&self, out: &mut [f32], alpha: f32);

    /// `out[i] += (v[i] − m[i])²` via separate sub/mul/add (the variance
    /// accumulate; no fused contraction so rounding matches scalar).
    /// Bitwise across backends.
    fn sq_dev_assign(&self, out: &mut [f32], v: &[f32], m: &[f32]);

    /// `out[i] = sqrt(out[i] * alpha)` (variance → std-dev finish; `sqrt`
    /// is correctly rounded). Bitwise across backends.
    fn scale_sqrt_assign(&self, out: &mut [f32], alpha: f32);

    /// `out[i] += alpha * src[i]` via separate mul/add (matches the
    /// historical `axpy_in_place` rounding). Bitwise across backends.
    fn axpy_assign(&self, out: &mut [f32], alpha: f32, src: &[f32]);
}

/// Identifies one backend implementation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Kind {
    /// Portable scalar kernels (every host).
    Scalar,
    /// AVX2 + FMA (x86-64 with both features).
    Avx2,
    /// AVX-512F (x86-64 with the feature).
    Avx512,
}

impl Kind {
    /// Name as accepted by `FABFLIP_BACKEND` and reported by
    /// [`CpuBackend::name`].
    pub fn name(self) -> &'static str {
        match self {
            Kind::Scalar => "scalar",
            Kind::Avx2 => "avx2",
            Kind::Avx512 => "avx512",
        }
    }

    /// Whether the running host can execute this backend.
    pub fn supported(self) -> bool {
        match self {
            Kind::Scalar => true,
            #[cfg(target_arch = "x86_64")]
            Kind::Avx2 => {
                std::arch::is_x86_feature_detected!("avx2")
                    && std::arch::is_x86_feature_detected!("fma")
            }
            #[cfg(target_arch = "x86_64")]
            Kind::Avx512 => std::arch::is_x86_feature_detected!("avx512f"),
            #[cfg(not(target_arch = "x86_64"))]
            _ => false,
        }
    }
}

/// All backend kinds, best-first. Test helper for "run this proptest
/// against every backend the host supports".
pub const ALL_KINDS: [Kind; 3] = [Kind::Avx512, Kind::Avx2, Kind::Scalar];

/// Returns the backend instance for `kind`.
///
/// # Panics
///
/// Panics if the host does not support `kind` — constructing a handle for
/// an undetected ISA would make every later method call undefined
/// behavior, so this is checked eagerly. Gate calls with
/// [`Kind::supported`].
pub fn instance(kind: Kind) -> &'static dyn CpuBackend {
    assert!(
        kind.supported(),
        "backend {} not supported on this host",
        kind.name()
    );
    instance_unchecked(kind)
}

/// `kind` → static instance; caller has already established support.
fn instance_unchecked(kind: Kind) -> &'static dyn CpuBackend {
    match kind {
        Kind::Scalar => &scalar::Scalar,
        #[cfg(target_arch = "x86_64")]
        Kind::Avx2 => &avx2::Avx2,
        #[cfg(target_arch = "x86_64")]
        Kind::Avx512 => &avx512::Avx512,
        #[cfg(not(target_arch = "x86_64"))]
        _ => &scalar::Scalar,
    }
}

/// Best backend the host supports, by feature detection alone.
fn detected() -> Kind {
    #[cfg(target_arch = "x86_64")]
    {
        if std::arch::is_x86_feature_detected!("avx512f") {
            return Kind::Avx512;
        }
        if std::arch::is_x86_feature_detected!("avx2") && std::arch::is_x86_feature_detected!("fma")
        {
            return Kind::Avx2;
        }
    }
    Kind::Scalar
}

/// Parses `FABFLIP_BACKEND`. Unset, unrecognized, or unsupported values
/// yield `None` (→ fall back to [`detected`]).
fn env_override() -> Option<Kind> {
    let v = std::env::var("FABFLIP_BACKEND").ok()?;
    let kind = if v.eq_ignore_ascii_case("scalar") {
        Kind::Scalar
    } else if v.eq_ignore_ascii_case("avx2") {
        Kind::Avx2
    } else if v.eq_ignore_ascii_case("avx512") {
        Kind::Avx512
    } else {
        return None;
    };
    kind.supported().then_some(kind)
}

/// Startup choice, resolved once and cached for the process lifetime.
static STARTUP: OnceLock<Kind> = OnceLock::new();

/// Test/bench-only override; `0` = none, else `Kind as u8 + 1`. An atomic
/// (not a lock) because [`active`] sits on every kernel entry path.
static FORCED: AtomicU8 = AtomicU8::new(0);

/// The backend kind [`active`] currently resolves to.
pub fn active_kind() -> Kind {
    match FORCED.load(Ordering::Relaxed) {
        1 => Kind::Scalar,
        2 => Kind::Avx2,
        3 => Kind::Avx512,
        _ => *STARTUP.get_or_init(|| env_override().unwrap_or_else(detected)),
    }
}

/// The active [`CpuBackend`]: the forced override if set, else the cached
/// startup choice (`FABFLIP_BACKEND`, falling back to detection).
pub fn active() -> &'static dyn CpuBackend {
    instance_unchecked(active_kind())
}

/// Forces the active backend for this process (benches and per-backend
/// test sweeps; production code never calls this). `None` restores the
/// startup choice. Takes effect on the *next* kernel entry — callers that
/// need a consistent backend across a region must not race this with
/// concurrent kernel calls (the in-tree users are single-threaded benches
/// and lock-guarded tests).
///
/// # Panics
///
/// Panics if `Some(kind)` is not supported on this host.
pub fn force(kind: Option<Kind>) {
    let code = match kind {
        None => 0,
        Some(k) => {
            assert!(
                k.supported(),
                "cannot force unsupported backend {}",
                k.name()
            );
            match k {
                Kind::Scalar => 1,
                Kind::Avx2 => 2,
                Kind::Avx512 => 3,
            }
        }
    };
    FORCED.store(code, Ordering::Relaxed);
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalar_is_always_supported() {
        assert!(Kind::Scalar.supported());
        assert_eq!(instance(Kind::Scalar).name(), "scalar");
    }

    #[test]
    fn active_matches_reported_kind() {
        assert_eq!(active().name(), active_kind().name());
    }

    #[test]
    fn supported_kinds_instantiate_with_matching_names() {
        for kind in ALL_KINDS {
            if kind.supported() {
                assert_eq!(instance(kind).name(), kind.name());
            }
        }
    }
}
