//! AVX-512F backend (512-bit lanes, masked remainders).
//!
//! Only constructed by the dispatcher after
//! `is_x86_feature_detected!("avx512f")` succeeds. Mirrors `avx2.rs`
//! structurally; see `backend/mod.rs` for the per-backend determinism
//! contract. The horizontal tree uses `extractf64x4`/`castpd` shuffles so
//! everything stays inside the F subset (no DQ/BW requirements).

use std::arch::x86_64::{
    __m512, __mmask16, _mm256_add_ps, _mm256_castpd_ps, _mm512_add_ps, _mm512_castps_pd,
    _mm512_extractf64x4_pd, _mm512_fmadd_ps, _mm512_loadu_ps, _mm512_mask_storeu_ps,
    _mm512_maskz_loadu_ps, _mm512_mul_ps, _mm512_set1_ps, _mm512_setzero_ps, _mm512_sqrt_ps,
    _mm512_storeu_ps, _mm512_sub_ps,
};

use super::{CpuBackend, MR};

/// The AVX-512F backend (unit struct; dispatched as `&'static dyn`).
pub(super) struct Avx512;

/// Lower 256 bits of a 512-bit register (bit-preserving casts only).
#[target_feature(enable = "avx512f")]
fn lo256(v: __m512) -> std::arch::x86_64::__m256 {
    _mm256_castpd_ps(std::arch::x86_64::_mm512_castpd512_pd256(_mm512_castps_pd(
        v,
    )))
}

/// Upper 256 bits of a 512-bit register via `extractf64x4` (AVX-512F;
/// `extractf32x8` would need DQ).
#[target_feature(enable = "avx512f")]
fn hi256(v: __m512) -> std::arch::x86_64::__m256 {
    _mm256_castpd_ps(_mm512_extractf64x4_pd(_mm512_castps_pd(v), 1))
}

/// Horizontal sum of one 16-lane register with the fixed halving tree
/// `acc[t] += acc[t+w]` for `w = 8, 4, 2, 1` — exactly the scalar
/// `dot_lanes` combining tree, so the backends agree bitwise.
#[target_feature(enable = "avx512f")]
fn hsum16(v: __m512) -> f32 {
    use std::arch::x86_64::{
        _mm256_castps256_ps128, _mm256_extractf128_ps, _mm_add_ps, _mm_add_ss, _mm_cvtss_f32,
        _mm_movehl_ps, _mm_shuffle_ps,
    };
    let y = _mm256_add_ps(lo256(v), hi256(v));
    let q = _mm_add_ps(_mm256_castps256_ps128(y), _mm256_extractf128_ps(y, 1));
    let h = _mm_add_ps(q, _mm_movehl_ps(q, q));
    let s = _mm_add_ss(h, _mm_shuffle_ps(h, h, 1));
    _mm_cvtss_f32(s)
}

/// One `R`-row GEMM register tile for a single `k` panel: 64-column
/// sub-tiles (four 16-lane accumulators per row — 16 of the 32 `zmm`
/// registers at `R = 4`), then 16-column sub-tiles, then one masked
/// sub-tile for the remainder columns. Every output element keeps the
/// scalar chain (zeroed accumulator, ascending-`p` correctly-rounded FMA,
/// one flush add) — masking only selects *which* elements exist, never
/// reorders a chain — so results are bitwise equal to the scalar backend.
#[allow(clippy::too_many_arguments)]
#[target_feature(enable = "avx512f")]
fn tile<const R: usize>(
    a: &[f32],
    a_base: usize,
    ars: usize,
    aps: usize,
    kc: usize,
    bp: &[f32],
    b_base: usize,
    b_stride: usize,
    width: usize,
    c: &mut [f32],
    c_base: usize,
    c_stride: usize,
) {
    let ap = a.as_ptr();
    let bpp = bp.as_ptr();
    let mut jw = 0;
    while jw + 64 <= width {
        let mut acc = [[_mm512_setzero_ps(); 4]; R];
        for p in 0..kc {
            let boff = b_base + p * b_stride + jw;
            // SAFETY(bound: b_base + p*b_stride + jw + 64 <= bp.len()): the
            // caller's panel contract puts the full `width` row in-bounds
            // for every p < kc, and jw + 64 <= width.
            let bv = unsafe {
                [
                    _mm512_loadu_ps(bpp.wrapping_add(boff)),
                    _mm512_loadu_ps(bpp.wrapping_add(boff + 16)),
                    _mm512_loadu_ps(bpp.wrapping_add(boff + 32)),
                    _mm512_loadu_ps(bpp.wrapping_add(boff + 48)),
                ]
            };
            for (r, accr) in acc.iter_mut().enumerate() {
                // SAFETY(bound: a_base + r*ars + p*aps < a.len()): row r <
                // R, step p < kc of `a` per the caller's tile contract.
                let av = _mm512_set1_ps(unsafe { *ap.wrapping_add(a_base + r * ars + p * aps) });
                for (t, b) in bv.iter().enumerate() {
                    accr[t] = _mm512_fmadd_ps(av, *b, accr[t]);
                }
            }
        }
        for (r, accr) in acc.iter().enumerate() {
            // SAFETY(bound: c_base + r*c_stride + jw + 64 <= c.len()): holds
            // for every r < R (caller's output-tile contract), so the four
            // 16-lane read-modify-write pairs stay inside `c`.
            unsafe {
                let cp = c.as_mut_ptr().wrapping_add(c_base + r * c_stride + jw);
                for (t, av) in accr.iter().enumerate() {
                    let dst = cp.wrapping_add(t * 16);
                    _mm512_storeu_ps(dst, _mm512_add_ps(_mm512_loadu_ps(dst), *av));
                }
            }
        }
        jw += 64;
    }
    while jw + 16 <= width {
        let mut acc = [_mm512_setzero_ps(); R];
        for p in 0..kc {
            let boff = b_base + p * b_stride + jw;
            // SAFETY(bound: b_base + p*b_stride + jw + 16 <= bp.len()): jw +
            // 16 <= width keeps this load inside the caller-guaranteed panel
            // row for p < kc.
            let b0 = unsafe { _mm512_loadu_ps(bpp.wrapping_add(boff)) };
            for (r, accr) in acc.iter_mut().enumerate() {
                // SAFETY(bound: a_base + r*ars + p*aps < a.len()): r < R,
                // p < kc per the caller's tile contract.
                let av = _mm512_set1_ps(unsafe { *ap.wrapping_add(a_base + r * ars + p * aps) });
                *accr = _mm512_fmadd_ps(av, b0, *accr);
            }
        }
        for (r, accr) in acc.iter().enumerate() {
            // SAFETY(bound: c_base + r*c_stride + jw + 16 <= c.len()): holds
            // for r < R (caller's output-tile contract).
            unsafe {
                let cp = c.as_mut_ptr().wrapping_add(c_base + r * c_stride + jw);
                _mm512_storeu_ps(cp, _mm512_add_ps(_mm512_loadu_ps(cp), *accr));
            }
        }
        jw += 16;
    }
    let rem = width - jw;
    if rem > 0 {
        let mask: __mmask16 = (1u16 << rem) - 1;
        let mut acc = [_mm512_setzero_ps(); R];
        for p in 0..kc {
            let boff = b_base + p * b_stride + jw;
            // SAFETY(bound: b_base + p*b_stride + jw + rem <= bp.len()): the
            // masked load touches only the `rem` in-bounds lanes (jw + rem
            // == width); masked-out lanes never fault.
            let b0 = unsafe { _mm512_maskz_loadu_ps(mask, bpp.wrapping_add(boff)) };
            for (r, accr) in acc.iter_mut().enumerate() {
                // SAFETY(bound: a_base + r*ars + p*aps < a.len()): r < R,
                // p < kc per the caller's tile contract.
                let av = _mm512_set1_ps(unsafe { *ap.wrapping_add(a_base + r * ars + p * aps) });
                *accr = _mm512_fmadd_ps(av, b0, *accr);
            }
        }
        for (r, accr) in acc.iter().enumerate() {
            // SAFETY(bound: c_base + r*c_stride + jw + rem <= c.len()): the
            // masked load/store touch only the `rem` lanes ending at the
            // caller-guaranteed row end; masked-out lanes never fault.
            unsafe {
                let cp = c.as_mut_ptr().wrapping_add(c_base + r * c_stride + jw);
                let cur = _mm512_maskz_loadu_ps(mask, cp);
                _mm512_mask_storeu_ps(cp, mask, _mm512_add_ps(cur, *accr));
            }
        }
    }
}

/// 16-lane dot kernel: one 16-lane FMA accumulator is exactly the scalar
/// `dot_lanes` array, [`hsum16`] its halving tree — bitwise equal to
/// scalar.
#[target_feature(enable = "avx512f")]
fn dot_lanes(a: &[f32], b: &[f32]) -> f32 {
    let chunks = a.len() / 16;
    let (ap, bp) = (a.as_ptr(), b.as_ptr());
    let mut acc = _mm512_setzero_ps();
    for q in 0..chunks {
        // SAFETY(bound: q*16 + 16 <= a.len() == b.len()): q < len/16, so
        // both 16-lane loads are in-bounds.
        unsafe {
            acc = _mm512_fmadd_ps(
                _mm512_loadu_ps(ap.wrapping_add(q * 16)),
                _mm512_loadu_ps(bp.wrapping_add(q * 16)),
                acc,
            );
        }
    }
    let mut s = hsum16(acc);
    for (x, y) in a.iter().skip(chunks * 16).zip(b.iter().skip(chunks * 16)) {
        s = x.mul_add(*y, s);
    }
    s
}

/// Serial-reduction layout shared by `dot`/`sq_norm`/`*_delta`: four
/// 16-lane FMA accumulators striped over 16-element blocks (`block q →
/// acc[q & 3]`), folded `(0+1) + (2+3)` then [`hsum16`], scalar FMA tail.
/// Fixed order for this backend; reassociated relative to scalar.
#[target_feature(enable = "avx512f")]
fn dot(a: &[f32], b: &[f32]) -> f32 {
    let blocks = a.len() / 16;
    let (ap, bp) = (a.as_ptr(), b.as_ptr());
    let mut acc = [_mm512_setzero_ps(); 4];
    for q in 0..blocks {
        // SAFETY(bound: q*16 + 16 <= a.len() == b.len()): q < len/16, so
        // both 16-lane loads are in-bounds.
        let (av, bv) = unsafe {
            (
                _mm512_loadu_ps(ap.wrapping_add(q * 16)),
                _mm512_loadu_ps(bp.wrapping_add(q * 16)),
            )
        };
        acc[q & 3] = _mm512_fmadd_ps(av, bv, acc[q & 3]);
    }
    let v = _mm512_add_ps(_mm512_add_ps(acc[0], acc[1]), _mm512_add_ps(acc[2], acc[3]));
    let mut s = hsum16(v);
    for (x, y) in a.iter().skip(blocks * 16).zip(b.iter().skip(blocks * 16)) {
        s = x.mul_add(*y, s);
    }
    s
}

/// Same lane layout as [`dot`] with `x·x` terms.
#[target_feature(enable = "avx512f")]
fn sq_norm(a: &[f32]) -> f32 {
    let blocks = a.len() / 16;
    let ap = a.as_ptr();
    let mut acc = [_mm512_setzero_ps(); 4];
    for q in 0..blocks {
        // SAFETY(bound: q*16 + 16 <= a.len()): q < len/16, so the 16-lane
        // load is in-bounds.
        let av = unsafe { _mm512_loadu_ps(ap.wrapping_add(q * 16)) };
        acc[q & 3] = _mm512_fmadd_ps(av, av, acc[q & 3]);
    }
    let v = _mm512_add_ps(_mm512_add_ps(acc[0], acc[1]), _mm512_add_ps(acc[2], acc[3]));
    let mut s = hsum16(v);
    for x in a.iter().skip(blocks * 16) {
        s = x.mul_add(*x, s);
    }
    s
}

/// [`dot`]'s exact structure on on-the-fly deltas — bitwise
/// `dot(a−r, b−r)` for this backend.
#[target_feature(enable = "avx512f")]
fn dot_delta(a: &[f32], b: &[f32], r: &[f32]) -> f32 {
    let blocks = a.len() / 16;
    let (ap, bp, rp) = (a.as_ptr(), b.as_ptr(), r.as_ptr());
    let mut acc = [_mm512_setzero_ps(); 4];
    for q in 0..blocks {
        // SAFETY(bound: q*16 + 16 <= a.len() == b.len() == r.len()): q <
        // len/16, so all three 16-lane loads are in-bounds.
        let (av, bv, rv) = unsafe {
            (
                _mm512_loadu_ps(ap.wrapping_add(q * 16)),
                _mm512_loadu_ps(bp.wrapping_add(q * 16)),
                _mm512_loadu_ps(rp.wrapping_add(q * 16)),
            )
        };
        acc[q & 3] = _mm512_fmadd_ps(_mm512_sub_ps(av, rv), _mm512_sub_ps(bv, rv), acc[q & 3]);
    }
    let v = _mm512_add_ps(_mm512_add_ps(acc[0], acc[1]), _mm512_add_ps(acc[2], acc[3]));
    let mut s = hsum16(v);
    let tail = blocks * 16;
    for ((x, y), cv) in a
        .iter()
        .skip(tail)
        .zip(b.iter().skip(tail))
        .zip(r.iter().skip(tail))
    {
        s = (x - cv).mul_add(y - cv, s);
    }
    s
}

/// [`sq_norm`]'s exact structure on on-the-fly deltas — bitwise
/// `sq_norm(a−r)` for this backend.
#[target_feature(enable = "avx512f")]
fn sq_norm_delta(a: &[f32], r: &[f32]) -> f32 {
    let blocks = a.len() / 16;
    let (ap, rp) = (a.as_ptr(), r.as_ptr());
    let mut acc = [_mm512_setzero_ps(); 4];
    for q in 0..blocks {
        // SAFETY(bound: q*16 + 16 <= a.len() == r.len()): q < len/16, so
        // both 16-lane loads are in-bounds.
        let (av, rv) = unsafe {
            (
                _mm512_loadu_ps(ap.wrapping_add(q * 16)),
                _mm512_loadu_ps(rp.wrapping_add(q * 16)),
            )
        };
        let d = _mm512_sub_ps(av, rv);
        acc[q & 3] = _mm512_fmadd_ps(d, d, acc[q & 3]);
    }
    let v = _mm512_add_ps(_mm512_add_ps(acc[0], acc[1]), _mm512_add_ps(acc[2], acc[3]));
    let mut s = hsum16(v);
    for (x, cv) in a.iter().skip(blocks * 16).zip(r.iter().skip(blocks * 16)) {
        let d = x - cv;
        s = d.mul_add(d, s);
    }
    s
}

/// `out[i] += src[i]`, 16 lanes at a time — bitwise equal to scalar.
#[target_feature(enable = "avx512f")]
fn add_assign(out: &mut [f32], src: &[f32]) {
    let blocks = out.len() / 16;
    let (op, sp) = (out.as_mut_ptr(), src.as_ptr());
    for q in 0..blocks {
        // SAFETY(bound: q*16 + 16 <= out.len() == src.len()): q < len/16,
        // so the 16-lane load/store pair stays in-bounds.
        unsafe {
            let o = _mm512_loadu_ps(op.wrapping_add(q * 16));
            _mm512_storeu_ps(
                op.wrapping_add(q * 16),
                _mm512_add_ps(o, _mm512_loadu_ps(sp.wrapping_add(q * 16))),
            );
        }
    }
    for (o, x) in out
        .iter_mut()
        .skip(blocks * 16)
        .zip(src.iter().skip(blocks * 16))
    {
        *o += x;
    }
}

/// `out[i] *= alpha` — bitwise equal to scalar.
#[target_feature(enable = "avx512f")]
fn scale_assign(out: &mut [f32], alpha: f32) {
    let blocks = out.len() / 16;
    let av = _mm512_set1_ps(alpha);
    let op = out.as_mut_ptr();
    for q in 0..blocks {
        // SAFETY(bound: q*16 + 16 <= out.len()): q < len/16, so the 16-lane
        // load/store pair stays in-bounds.
        unsafe {
            _mm512_storeu_ps(
                op.wrapping_add(q * 16),
                _mm512_mul_ps(_mm512_loadu_ps(op.wrapping_add(q * 16)), av),
            );
        }
    }
    for o in out.iter_mut().skip(blocks * 16) {
        *o *= alpha;
    }
}

/// `out[i] += (v[i] − m[i])²` via separate sub/mul/add — bitwise equal to
/// scalar.
#[target_feature(enable = "avx512f")]
fn sq_dev_assign(out: &mut [f32], v: &[f32], m: &[f32]) {
    let blocks = out.len() / 16;
    let (op, vp, mp) = (out.as_mut_ptr(), v.as_ptr(), m.as_ptr());
    for q in 0..blocks {
        // SAFETY(bound: q*16 + 16 <= out.len() == v.len() == m.len()): q <
        // len/16, so every 16-lane access stays in-bounds.
        unsafe {
            let d = _mm512_sub_ps(
                _mm512_loadu_ps(vp.wrapping_add(q * 16)),
                _mm512_loadu_ps(mp.wrapping_add(q * 16)),
            );
            let o = _mm512_loadu_ps(op.wrapping_add(q * 16));
            _mm512_storeu_ps(
                op.wrapping_add(q * 16),
                _mm512_add_ps(o, _mm512_mul_ps(d, d)),
            );
        }
    }
    let tail = blocks * 16;
    for (o, (x, mv)) in out
        .iter_mut()
        .skip(tail)
        .zip(v.iter().skip(tail).zip(m.iter().skip(tail)))
    {
        let diff = x - mv;
        *o += diff * diff;
    }
}

/// `out[i] = sqrt(out[i] * alpha)` — bitwise equal to scalar.
#[target_feature(enable = "avx512f")]
fn scale_sqrt_assign(out: &mut [f32], alpha: f32) {
    let blocks = out.len() / 16;
    let av = _mm512_set1_ps(alpha);
    let op = out.as_mut_ptr();
    for q in 0..blocks {
        // SAFETY(bound: q*16 + 16 <= out.len()): q < len/16, so the 16-lane
        // load/store pair stays in-bounds.
        unsafe {
            let o = _mm512_loadu_ps(op.wrapping_add(q * 16));
            _mm512_storeu_ps(
                op.wrapping_add(q * 16),
                _mm512_sqrt_ps(_mm512_mul_ps(o, av)),
            );
        }
    }
    for o in out.iter_mut().skip(blocks * 16) {
        *o = (*o * alpha).sqrt();
    }
}

/// `out[i] += alpha * src[i]` via separate mul/add — bitwise equal to
/// scalar.
#[target_feature(enable = "avx512f")]
fn axpy_assign(out: &mut [f32], alpha: f32, src: &[f32]) {
    let blocks = out.len() / 16;
    let av = _mm512_set1_ps(alpha);
    let (op, sp) = (out.as_mut_ptr(), src.as_ptr());
    for q in 0..blocks {
        // SAFETY(bound: q*16 + 16 <= out.len() == src.len()): q < len/16,
        // so the 16-lane load/store pair stays in-bounds.
        unsafe {
            let o = _mm512_loadu_ps(op.wrapping_add(q * 16));
            _mm512_storeu_ps(
                op.wrapping_add(q * 16),
                _mm512_add_ps(
                    o,
                    _mm512_mul_ps(av, _mm512_loadu_ps(sp.wrapping_add(q * 16))),
                ),
            );
        }
    }
    for (o, y) in out
        .iter_mut()
        .skip(blocks * 16)
        .zip(src.iter().skip(blocks * 16))
    {
        *o += alpha * y;
    }
}

impl CpuBackend for Avx512 {
    fn name(&self) -> &'static str {
        "avx512"
    }

    fn gemm_tile(
        &self,
        a: &[f32],
        a_base: usize,
        a_row_stride: usize,
        a_p_stride: usize,
        rows: usize,
        kc: usize,
        bp: &[f32],
        b_base: usize,
        b_stride: usize,
        width: usize,
        c: &mut [f32],
        c_base: usize,
        c_stride: usize,
    ) {
        debug_assert!((1..=MR).contains(&rows), "gemm_tile: rows {rows}");
        // SAFETY(feature: avx512f): `Avx512` is only instantiated after the
        // dispatcher detected the feature, so the tile kernels are
        // executable on this host.
        unsafe {
            match rows {
                4 => tile::<4>(
                    a,
                    a_base,
                    a_row_stride,
                    a_p_stride,
                    kc,
                    bp,
                    b_base,
                    b_stride,
                    width,
                    c,
                    c_base,
                    c_stride,
                ),
                3 => tile::<3>(
                    a,
                    a_base,
                    a_row_stride,
                    a_p_stride,
                    kc,
                    bp,
                    b_base,
                    b_stride,
                    width,
                    c,
                    c_base,
                    c_stride,
                ),
                2 => tile::<2>(
                    a,
                    a_base,
                    a_row_stride,
                    a_p_stride,
                    kc,
                    bp,
                    b_base,
                    b_stride,
                    width,
                    c,
                    c_base,
                    c_stride,
                ),
                _ => tile::<1>(
                    a,
                    a_base,
                    a_row_stride,
                    a_p_stride,
                    kc,
                    bp,
                    b_base,
                    b_stride,
                    width,
                    c,
                    c_base,
                    c_stride,
                ),
            }
        }
    }

    fn dot_lanes(&self, a: &[f32], b: &[f32]) -> f32 {
        debug_assert_eq!(a.len(), b.len());
        // SAFETY(feature: avx512f): detected by the dispatcher before this
        // backend was handed out.
        unsafe { dot_lanes(a, b) }
    }

    fn dot(&self, a: &[f32], b: &[f32]) -> f32 {
        debug_assert_eq!(a.len(), b.len());
        // SAFETY(feature: avx512f): detected by the dispatcher before this
        // backend was handed out.
        unsafe { dot(a, b) }
    }

    fn sq_norm(&self, a: &[f32]) -> f32 {
        // SAFETY(feature: avx512f): detected by the dispatcher before this
        // backend was handed out.
        unsafe { sq_norm(a) }
    }

    fn dot_delta(&self, a: &[f32], b: &[f32], r: &[f32]) -> f32 {
        debug_assert_eq!(a.len(), b.len());
        debug_assert_eq!(a.len(), r.len());
        // SAFETY(feature: avx512f): detected by the dispatcher before this
        // backend was handed out.
        unsafe { dot_delta(a, b, r) }
    }

    fn sq_norm_delta(&self, a: &[f32], r: &[f32]) -> f32 {
        debug_assert_eq!(a.len(), r.len());
        // SAFETY(feature: avx512f): detected by the dispatcher before this
        // backend was handed out.
        unsafe { sq_norm_delta(a, r) }
    }

    fn add_assign(&self, out: &mut [f32], src: &[f32]) {
        debug_assert_eq!(out.len(), src.len());
        // SAFETY(feature: avx512f): detected by the dispatcher before this
        // backend was handed out.
        unsafe { add_assign(out, src) }
    }

    fn scale_assign(&self, out: &mut [f32], alpha: f32) {
        // SAFETY(feature: avx512f): detected by the dispatcher before this
        // backend was handed out.
        unsafe { scale_assign(out, alpha) }
    }

    fn sq_dev_assign(&self, out: &mut [f32], v: &[f32], m: &[f32]) {
        debug_assert_eq!(out.len(), v.len());
        debug_assert_eq!(out.len(), m.len());
        // SAFETY(feature: avx512f): detected by the dispatcher before this
        // backend was handed out.
        unsafe { sq_dev_assign(out, v, m) }
    }

    fn scale_sqrt_assign(&self, out: &mut [f32], alpha: f32) {
        // SAFETY(feature: avx512f): detected by the dispatcher before this
        // backend was handed out.
        unsafe { scale_sqrt_assign(out, alpha) }
    }

    fn axpy_assign(&self, out: &mut [f32], alpha: f32, src: &[f32]) {
        debug_assert_eq!(out.len(), src.len());
        // SAFETY(feature: avx512f): detected by the dispatcher before this
        // backend was handed out.
        unsafe { axpy_assign(out, alpha, src) }
    }
}
