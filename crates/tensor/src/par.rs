//! Deterministic parallel execution helpers shared by the whole stack.
//!
//! # Parallelism/determinism contract
//!
//! Every helper in this module partitions work into *fixed* units (rows,
//! samples, or fixed-size coordinate chunks) whose boundaries do not depend
//! on the number of worker threads. Each unit is computed independently and
//! results are merged in unit order on the calling thread, so every f32
//! produced under `FABFLIP_THREADS=1` is bitwise identical to the output at
//! any other thread count.
//!
//! The thread budget is resolved once per process, in priority order:
//! 1. [`set_max_threads`] (e.g. from a CLI flag),
//! 2. the `FABFLIP_THREADS` environment variable,
//! 3. `std::thread::available_parallelism()`.
//!
//! # Persistent worker pool
//!
//! Dispatches run on a lazily-initialized, process-wide pool of workers
//! parked on a condvar — no OS threads are spawned per dispatch. Workers
//! claim *fixed* blocks dynamically (an atomic cursor), which is safe under
//! the contract above: block boundaries are computed by the caller from the
//! problem shape and thread budget alone, each block's math is a pure
//! function of its block index, and merge order is by block index — so
//! which thread runs a block can never affect results. A panic inside any
//! block is caught, short-circuits the remaining blocks, and is re-thrown
//! on the calling thread once the dispatch has fully drained; workers
//! survive the panic and keep serving later dispatches. Shrinking the
//! budget via [`set_max_threads`] parks surplus workers at their next
//! dispatch — threads are never killed mid-job. Nested dispatches (from
//! inside a pool job) run serially on the current thread, which the
//! contract guarantees is bitwise-equivalent.

use std::any::Any;
use std::cell::Cell;
use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Condvar, Mutex, MutexGuard, OnceLock, PoisonError};

static MAX_THREADS: AtomicUsize = AtomicUsize::new(0);

/// Fixed coordinate-chunk length used by chunked reductions (`vecops`).
/// Part of the determinism contract: changing it re-tiles the reductions
/// but still cannot change results, because chunks never split a single
/// coordinate's accumulation.
pub const CHUNK: usize = 4096;

/// Default ceiling on pool workers ever spawned, independent of how high
/// the budget is set. Workers park when idle, so the only cost of a
/// high-water mark is stack reservations. Many-core serving hosts can
/// raise (or lower) it with `FABFLIP_MAX_POOL_WORKERS`, clamped to the
/// detected core count — see [`max_pool_workers`].
const DEFAULT_MAX_POOL_WORKERS: usize = 64;

/// Cached resolved pool-worker cap (0 = not yet resolved).
static POOL_CAP: AtomicUsize = AtomicUsize::new(0);

/// Resolves the pool-worker cap from the `FABFLIP_MAX_POOL_WORKERS`
/// override and the detected core count. Pure, so the env/cores
/// interaction is unit-testable without process-global races: an explicit
/// positive override is honoured but clamped to `cores` (a cap above the
/// hardware can only oversubscribe), anything else falls back to the
/// default ceiling.
fn resolve_pool_cap(env: Option<&str>, cores: usize) -> usize {
    match env
        .and_then(|v| v.trim().parse::<usize>().ok())
        .filter(|&n| n > 0)
    {
        Some(n) => n.min(cores.max(1)),
        None => DEFAULT_MAX_POOL_WORKERS,
    }
}

/// The process-wide cap on pool workers ever spawned, resolved once from
/// `FABFLIP_MAX_POOL_WORKERS` (clamped to detected cores) or the built-in
/// default of 64. Like [`max_threads`], the first reader wins and the
/// value is cached for the life of the process.
pub fn max_pool_workers() -> usize {
    let cached = POOL_CAP.load(Ordering::Relaxed);
    if cached != 0 {
        return cached;
    }
    let cores = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(DEFAULT_MAX_POOL_WORKERS);
    let n = resolve_pool_cap(
        std::env::var("FABFLIP_MAX_POOL_WORKERS").ok().as_deref(),
        cores,
    );
    POOL_CAP.store(n, Ordering::Relaxed);
    n
}

thread_local! {
    /// True while this thread is executing blocks of a pool job (as the
    /// dispatching caller or as a pool worker). Makes nested parallel
    /// helpers run serially instead of re-entering the pool.
    static IN_JOB: Cell<bool> = const { Cell::new(false) };
}

/// Mutex lock that shrugs off poisoning: pool state stays consistent even
/// if a panic unwound through a lock holder (all critical sections are
/// panic-free bookkeeping).
fn lock<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(PoisonError::into_inner)
}

/// Caps the worker threads used by all fabflip parallel helpers.
///
/// Call before any parallel work runs (the value is consulted on every
/// dispatch, but in-flight dispatches keep the count they started with).
/// `run_grid`-style outer loops set this to 1 in their workers so nested
/// parallelism does not oversubscribe the machine. Shrinking the budget
/// never kills pool workers: surplus workers simply stay parked.
pub fn set_max_threads(n: usize) {
    MAX_THREADS.store(n.max(1), Ordering::Relaxed);
}

/// The current worker-thread budget (≥ 1). Inside a pool job this is
/// always 1: nested dispatches run serially on the current thread.
pub fn max_threads() -> usize {
    if IN_JOB.with(Cell::get) {
        return 1;
    }
    let cached = MAX_THREADS.load(Ordering::Relaxed);
    if cached != 0 {
        return cached;
    }
    let n = std::env::var("FABFLIP_THREADS")
        .ok()
        .and_then(|v| v.trim().parse::<usize>().ok())
        .filter(|&n| n > 0)
        .unwrap_or_else(|| {
            std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(1)
        });
    MAX_THREADS.store(n, Ordering::Relaxed);
    n
}

/// One in-flight dispatch: a borrowed block runner plus claim/panic
/// bookkeeping. Lives on the dispatching thread's stack for the duration
/// of the dispatch (see the safety argument on [`JobRef`]).
struct Job<'a> {
    run: &'a (dyn Fn(usize) + Sync),
    n_blocks: usize,
    /// Next unclaimed block index; `>= n_blocks` means exhausted.
    next: AtomicUsize,
    /// First panic payload observed in any block, re-thrown by the caller.
    panic: Mutex<Option<Box<dyn Any + Send + 'static>>>,
}

impl Job<'_> {
    /// Claims and runs blocks until the cursor is exhausted. The first
    /// panic is parked in `self.panic` and short-circuits every block not
    /// yet claimed (their outputs would be discarded by the unwinding
    /// caller anyway).
    fn work(&self) {
        loop {
            let b = self.next.fetch_add(1, Ordering::Relaxed);
            if b >= self.n_blocks {
                break;
            }
            if let Err(payload) = catch_unwind(AssertUnwindSafe(|| (self.run)(b))) {
                self.next.store(self.n_blocks, Ordering::Relaxed);
                let mut slot = lock(&self.panic);
                if slot.is_none() {
                    *slot = Some(payload);
                }
            }
        }
    }
}

/// Type-erased pointer to a [`Job`] on a dispatcher's stack.
///
/// Safety argument: workers only dereference the pointer between
/// registering (`in_job += 1`, under the pool mutex, while the job is
/// published) and deregistering (`in_job -= 1`), and [`dispatch`] does not
/// return until it has unpublished the job *and* observed `in_job == 0`
/// for its epoch — so the pointee, and the closure it borrows, strictly
/// outlive every access. The lifetime is erased to `'static` only to give
/// the pointer a nameable type inside the global state.
#[derive(Clone, Copy)]
struct JobRef(*const Job<'static>);

// SAFETY(sync: JobRef): the dispatch protocol (type-level argument above)
// guarantees the pointee outlives all worker accesses, and `Job` itself is
// `Sync` (its closure is `Sync`, its bookkeeping is atomics + mutexes).
unsafe impl Send for JobRef {}

/// Pool bookkeeping, all guarded by one mutex.
struct PoolState {
    /// The currently published job, if any. At most one at a time:
    /// concurrent dispatchers queue on `done`.
    job: Option<JobRef>,
    /// Bumped on every publish so a worker never re-joins a job it has
    /// already finished helping with.
    epoch: u64,
    /// How many more workers may still join the current job. Set at
    /// publish time to `min(requested helpers, spawned)`; this is how a
    /// shrunken budget parks surplus workers without killing them.
    helper_slots: usize,
    /// Workers currently executing the published job's blocks.
    in_job: usize,
    /// Worker threads ever spawned (they never exit).
    spawned: usize,
}

struct PoolShared {
    state: Mutex<PoolState>,
    /// Signals parked workers that a job was published.
    work: Condvar,
    /// Signals dispatchers: job drained, or the pool is free for the next
    /// queued dispatch.
    done: Condvar,
}

fn pool() -> &'static PoolShared {
    static POOL: OnceLock<PoolShared> = OnceLock::new();
    POOL.get_or_init(|| PoolShared {
        state: Mutex::new(PoolState {
            job: None,
            epoch: 0,
            helper_slots: 0,
            in_job: 0,
            spawned: 0,
        }),
        work: Condvar::new(),
        done: Condvar::new(),
    })
}

/// Lazily tops the pool up to `wanted` workers (capped). Spawn failures
/// are tolerated: the dispatch simply runs with fewer helpers.
fn ensure_workers(shared: &'static PoolShared, wanted: usize) {
    let target = wanted.min(max_pool_workers());
    let mut st = lock(&shared.state);
    while st.spawned < target {
        let res = std::thread::Builder::new()
            // fabcheck::allow(alloc_on_hot_path): one-time worker spawn —
            // the pool tops up at most max_pool_workers() times per process.
            .name(format!("fabflip-par-{}", st.spawned))
            .spawn(move || worker_loop(shared));
        match res {
            Ok(_) => st.spawned += 1,
            Err(_) => break,
        }
    }
}

fn worker_loop(shared: &'static PoolShared) {
    let mut seen_epoch = 0u64;
    loop {
        let job_ref = {
            let mut st = lock(&shared.state);
            loop {
                match st.job {
                    Some(j) if st.epoch != seen_epoch && st.helper_slots > 0 => {
                        seen_epoch = st.epoch;
                        st.helper_slots -= 1;
                        st.in_job += 1;
                        break j;
                    }
                    _ => {
                        st = shared.work.wait(st).unwrap_or_else(PoisonError::into_inner);
                    }
                }
            }
        };
        // SAFETY(sync: JobRef): this worker registered under the lock while
        // the job was published, so per the `JobRef` protocol the dispatcher
        // is blocked until we deregister below — the stack `Job` is alive.
        let job: &Job<'_> = unsafe { &*job_ref.0 };
        IN_JOB.with(|f| f.set(true));
        job.work();
        IN_JOB.with(|f| f.set(false));
        let mut st = lock(&shared.state);
        st.in_job -= 1;
        if st.in_job == 0 {
            shared.done.notify_all();
        }
    }
}

/// Runs `run(b)` for every `b in 0..n_blocks`, with up to `helpers` pool
/// workers assisting the calling thread. Block *boundaries* are fixed by
/// the caller; blocks are claimed dynamically, which cannot affect results
/// because each block's computation and merge slot depend only on its
/// index. Panics from any block propagate to the caller after the dispatch
/// has fully drained.
fn dispatch(n_blocks: usize, helpers: usize, run: &(dyn Fn(usize) + Sync)) {
    if n_blocks == 0 {
        return;
    }
    if helpers == 0 || n_blocks == 1 || IN_JOB.with(Cell::get) {
        let job = Job {
            run,
            n_blocks,
            next: AtomicUsize::new(0),
            panic: Mutex::new(None),
        };
        let was_in_job = IN_JOB.with(Cell::get);
        IN_JOB.with(|f| f.set(true));
        job.work();
        IN_JOB.with(|f| f.set(was_in_job));
        if let Some(payload) = lock(&job.panic).take() {
            resume_unwind(payload);
        }
        return;
    }
    let shared = pool();
    ensure_workers(shared, helpers);
    let job = Job {
        run,
        n_blocks,
        next: AtomicUsize::new(0),
        panic: Mutex::new(None),
    };
    let my_epoch;
    {
        let mut st = lock(&shared.state);
        // One job at a time: wait for any in-flight dispatch to fully
        // drain before publishing (its dispatcher wakes us via `done`).
        while st.job.is_some() || st.in_job > 0 {
            st = shared.done.wait(st).unwrap_or_else(PoisonError::into_inner);
        }
        st.job = Some(JobRef(std::ptr::from_ref(&job).cast::<Job<'static>>()));
        st.epoch = st.epoch.wrapping_add(1);
        my_epoch = st.epoch;
        st.helper_slots = helpers.min(st.spawned);
        shared.work.notify_all();
    }
    IN_JOB.with(|f| f.set(true));
    job.work();
    IN_JOB.with(|f| f.set(false));
    {
        let mut st = lock(&shared.state);
        st.job = None;
        st.helper_slots = 0;
        // Wait for registered workers to drain. If the epoch moved on, a
        // queued dispatcher already observed `in_job == 0` for our job and
        // published its own — ours is fully drained.
        while st.epoch == my_epoch && st.in_job > 0 {
            st = shared.done.wait(st).unwrap_or_else(PoisonError::into_inner);
        }
        // Wake dispatchers queued behind this job.
        shared.done.notify_all();
    }
    let payload = lock(&job.panic).take();
    if let Some(payload) = payload {
        resume_unwind(payload);
    }
}

/// Runs `f(i)` for `i in 0..n` across the thread budget and returns results
/// in index order. Work is split into one contiguous index block per
/// worker; since each `f(i)` depends only on `i`, the output is identical
/// to the serial `(0..n).map(f).collect()`.
pub fn map_collect<R, F>(n: usize, f: F) -> Vec<R>
where
    R: Send,
    F: Fn(usize) -> R + Sync,
{
    let threads = max_threads().min(n.max(1));
    if threads <= 1 {
        return (0..n).map(f).collect();
    }
    let block = n.div_ceil(threads);
    let n_blocks = n.div_ceil(block);
    let slots: Vec<Mutex<Vec<R>>> = (0..n_blocks).map(|_| Mutex::new(Vec::new())).collect();
    dispatch(n_blocks, threads - 1, &|b| {
        let lo = b * block;
        let hi = ((b + 1) * block).min(n);
        let out: Vec<R> = (lo..hi).map(&f).collect();
        *lock(&slots[b]) = out;
    });
    slots
        .into_iter()
        .flat_map(|s| s.into_inner().unwrap_or_else(PoisonError::into_inner))
        .collect()
}

/// Base pointer of a slice being dispatched as disjoint per-block spans.
///
/// The allocation-free chunk dispatchers hand workers the slice's base
/// pointer plus arithmetic instead of a per-dispatch `Vec` of pre-split
/// subslices. Each block `b` reconstructs exactly the half-open item range
/// `[b · items_per_block, min((b+1) · items_per_block, len))`; ranges of
/// distinct blocks never overlap and the dispatch protocol keeps the
/// borrowed slice alive until every block has drained, so the reconstructed
/// `&mut` subslices are disjoint and valid.
struct SpanBase<T>(*mut T);

// SAFETY(sync: SpanBase<T>): the pointer is only used to carve disjoint
// per-block ranges of a slice that outlives the dispatch (type-level
// argument above), so moving it to a worker thread is sound for `T: Send`.
unsafe impl<T: Send> Send for SpanBase<T> {}

// SAFETY(sync: SpanBase<T>): workers share `&SpanBase` only to read the
// base address; every `&mut` subslice derived from it covers a
// block-exclusive range, so concurrent use cannot alias.
unsafe impl<T: Send> Sync for SpanBase<T> {}

impl<T> SpanBase<T> {
    /// The base address. A method (not field access) so closures capture
    /// the `Sync` wrapper rather than the bare pointer field.
    fn ptr(&self) -> *mut T {
        self.0
    }
}

/// Debug-only runtime verifier for the `fabcheck::claim(disjoint)` claims
/// below: a process-wide shadow registry of live `[lo, hi)` item ranges
/// keyed by base address. Every carve registers its range before the `&mut`
/// subslice exists and unregisters when the block finishes (RAII), so two
/// overlapping live ranges on the same base — i.e. a wrong disjointness
/// claim — panic at the faulty carve instead of silently aliasing. Release
/// builds compile the whole module (and its call sites) out.
#[cfg(debug_assertions)]
mod overlap {
    use super::lock;
    use std::sync::Mutex;

    /// Live spans as `(base_addr, lo, hi)` half-open item ranges.
    static LIVE: Mutex<Vec<(usize, usize, usize)>> = Mutex::new(Vec::new());

    /// Unregisters its span on drop, keyed by `(base, lo)` — unique among
    /// live entries because an equal key would have tripped the overlap
    /// assertion at registration.
    pub(super) struct Guard {
        base: usize,
        lo: usize,
    }

    /// Registers `[lo, hi)` on `base`, panicking if it overlaps any live
    /// range on the same base.
    pub(super) fn register(base: usize, lo: usize, hi: usize) -> Guard {
        let mut live = lock(&LIVE);
        for &(b, l, h) in live.iter() {
            // fabcheck::allow(panic_on_hot_path): debug-only verifier — the
            // panic IS the product (it flags a wrong disjointness claim).
            assert!(
                !(b == base && lo < h && l < hi),
                "span-disjointness violation: [{lo}, {hi}) overlaps live [{l}, {h}) on base {base:#x}"
            );
        }
        // fabcheck::allow(alloc_on_hot_path): debug-only shadow registry;
        // release builds compile this module out entirely.
        live.push((base, lo, hi));
        Guard { base, lo }
    }

    impl Drop for Guard {
        fn drop(&mut self) {
            let mut live = lock(&LIVE);
            if let Some(i) = live
                .iter()
                .position(|&(b, l, _)| b == self.base && l == self.lo)
            {
                live.remove(i);
            }
        }
    }
}

/// Splits `data` into consecutive `chunk_len`-sized pieces and runs
/// `f(chunk_index, chunk)` on each, in parallel. Chunk boundaries depend
/// only on `chunk_len`, so any per-chunk computation that is a pure
/// function of `(chunk_index, chunk)` yields thread-count-independent
/// results. Allocation-free: blocks are carved from the slice's base
/// pointer (see [`SpanBase`]) rather than collected up front.
pub fn for_each_chunk_mut<T, F>(data: &mut [T], chunk_len: usize, f: F)
where
    T: Send,
    F: Fn(usize, &mut [T]) + Sync,
{
    assert!(chunk_len > 0, "chunk_len must be positive");
    let n_chunks = data.len().div_ceil(chunk_len);
    let threads = max_threads().min(n_chunks.max(1));
    if threads <= 1 {
        for (idx, chunk) in data.chunks_mut(chunk_len).enumerate() {
            f(idx, chunk);
        }
        return;
    }
    // Hand each block a contiguous run of whole chunks.
    let chunks_per_worker = n_chunks.div_ceil(threads);
    let items_per_worker = chunks_per_worker * chunk_len;
    let len = data.len();
    let base = SpanBase(data.as_mut_ptr());
    dispatch(n_chunks.div_ceil(chunks_per_worker), threads - 1, &|b| {
        let lo = b * items_per_worker;
        let hi = (lo + items_per_worker).min(len);
        #[cfg(debug_assertions)]
        let _guard = overlap::register(base.ptr() as usize, lo, hi);
        // SAFETY(bound: lo <= hi && hi <= len): block `b`'s exclusive range
        // of `data`, held borrowed until all blocks drain (`SpanBase`);
        // `wrapping_add`, not `add`, dodges the `Tensor::add` name match.
        // fabcheck::claim(disjoint): `lo` strides by whole worker spans, so
        // blocks' `[lo, hi)` ranges partition `data` without overlap.
        let span = unsafe { std::slice::from_raw_parts_mut(base.ptr().wrapping_add(lo), hi - lo) };
        for (i, chunk) in span.chunks_mut(chunk_len).enumerate() {
            f(b * chunks_per_worker + i, chunk);
        }
    });
}

/// Zips fixed-size chunks of two slices and runs `f(chunk_index, a_chunk,
/// b_chunk)` on each pair, in parallel. Both slices must split into the
/// same number of chunks. Lets callers pair each work unit with its own
/// slice of a reusable output/scratch buffer (e.g. conv pairing each
/// sample's output with its im2col columns) without per-unit allocation.
pub fn for_each_chunk_pair_mut<T, U, F>(
    a: &mut [T],
    a_chunk_len: usize,
    b: &mut [U],
    b_chunk_len: usize,
    f: F,
) where
    T: Send,
    U: Send,
    F: Fn(usize, &mut [T], &mut [U]) + Sync,
{
    assert!(
        a_chunk_len > 0 && b_chunk_len > 0,
        "chunk lengths must be positive"
    );
    let n_chunks = a.len().div_ceil(a_chunk_len);
    assert_eq!(
        n_chunks,
        b.len().div_ceil(b_chunk_len),
        "paired slices must split into the same number of chunks"
    );
    let threads = max_threads().min(n_chunks.max(1));
    if threads <= 1 {
        for (idx, (ca, cb)) in a
            .chunks_mut(a_chunk_len)
            .zip(b.chunks_mut(b_chunk_len))
            .enumerate()
        {
            f(idx, ca, cb);
        }
        return;
    }
    let chunks_per_worker = n_chunks.div_ceil(threads);
    let (a_items, b_items) = (
        chunks_per_worker * a_chunk_len,
        chunks_per_worker * b_chunk_len,
    );
    let (a_len, b_len) = (a.len(), b.len());
    let base_a = SpanBase(a.as_mut_ptr());
    let base_b = SpanBase(b.as_mut_ptr());
    dispatch(n_chunks.div_ceil(chunks_per_worker), threads - 1, &|s| {
        let (a_lo, b_lo) = (s * a_items, s * b_items);
        let (a_hi, b_hi) = ((a_lo + a_items).min(a_len), (b_lo + b_items).min(b_len));
        #[cfg(debug_assertions)]
        let _guard_a = overlap::register(base_a.ptr() as usize, a_lo, a_hi);
        #[cfg(debug_assertions)]
        let _guard_b = overlap::register(base_b.ptr() as usize, b_lo, b_hi);
        // SAFETY(bound: a_lo <= a_hi && a_hi <= a_len): block `s`'s
        // exclusive range of `a`, alive for the whole dispatch (`SpanBase`).
        // fabcheck::claim(disjoint): `a_lo` strides by whole worker spans
        // (`s * a_items`), so blocks' `[a_lo, a_hi)` ranges are disjoint.
        let sa =
            unsafe { std::slice::from_raw_parts_mut(base_a.ptr().wrapping_add(a_lo), a_hi - a_lo) };
        // SAFETY(bound: b_lo <= b_hi && b_hi <= b_len): block `s`'s
        // exclusive range of `b`, alive for the whole dispatch (`SpanBase`).
        // fabcheck::claim(disjoint): `b_lo` strides by whole worker spans
        // (`s * b_items`), so blocks' `[b_lo, b_hi)` ranges are disjoint.
        let sb =
            unsafe { std::slice::from_raw_parts_mut(base_b.ptr().wrapping_add(b_lo), b_hi - b_lo) };
        for (i, (ca, cb)) in sa
            .chunks_mut(a_chunk_len)
            .zip(sb.chunks_mut(b_chunk_len))
            .enumerate()
        {
            f(s * chunks_per_worker + i, ca, cb);
        }
    });
}

/// Like [`for_each_chunk_mut`] but each chunk also produces a value;
/// results are returned in chunk order.
pub fn map_chunks_mut<T, R, F>(data: &mut [T], chunk_len: usize, f: F) -> Vec<R>
where
    T: Send,
    R: Send,
    F: Fn(usize, &mut [T]) -> R + Sync,
{
    assert!(chunk_len > 0, "chunk_len must be positive");
    let n_chunks = data.len().div_ceil(chunk_len);
    let threads = max_threads().min(n_chunks.max(1));
    if threads <= 1 {
        return data
            .chunks_mut(chunk_len)
            .enumerate()
            .map(|(idx, chunk)| f(idx, chunk))
            .collect();
    }
    let chunks_per_worker = n_chunks.div_ceil(threads);
    let items_per_worker = chunks_per_worker * chunk_len;
    let spans: Vec<Mutex<Option<&mut [T]>>> = data
        .chunks_mut(items_per_worker)
        .map(|s| Mutex::new(Some(s)))
        .collect();
    let slots: Vec<Mutex<Vec<R>>> = (0..spans.len()).map(|_| Mutex::new(Vec::new())).collect();
    dispatch(spans.len(), threads - 1, &|b| {
        let span = lock(&spans[b]).take().expect("span claimed exactly once");
        let out: Vec<R> = span
            .chunks_mut(chunk_len)
            .enumerate()
            .map(|(i, chunk)| f(b * chunks_per_worker + i, chunk))
            .collect();
        *lock(&slots[b]) = out;
    });
    slots
        .into_iter()
        .flat_map(|s| s.into_inner().unwrap_or_else(PoisonError::into_inner))
        .collect()
}

/// The pre-pool dispatch path, kept as a measurable baseline: spawns one
/// scoped OS thread per block on every call, exactly as the helpers above
/// did before the persistent pool existed. Exists so the bench crate's
/// dispatch-overhead microbench (and CI's `--smoke` ratio check) can
/// quantify the pool's win against the code it replaced. Not for
/// production call sites — the fabcheck rule `thread-spawn-outside-par`
/// keeps per-dispatch spawning from reappearing anywhere else.
pub mod spawn_reference {
    use super::max_threads;

    /// [`super::for_each_chunk_mut`] with per-dispatch `thread::scope`
    /// spawning (the PR-1 implementation, verbatim).
    pub fn for_each_chunk_mut<T, F>(data: &mut [T], chunk_len: usize, f: F)
    where
        T: Send,
        F: Fn(usize, &mut [T]) + Sync,
    {
        assert!(chunk_len > 0, "chunk_len must be positive");
        let n_chunks = data.len().div_ceil(chunk_len);
        let threads = max_threads().min(n_chunks.max(1));
        if threads <= 1 {
            for (idx, chunk) in data.chunks_mut(chunk_len).enumerate() {
                f(idx, chunk);
            }
            return;
        }
        let chunks_per_worker = n_chunks.div_ceil(threads);
        let items_per_worker = chunks_per_worker * chunk_len;
        std::thread::scope(|scope| {
            for (w, span) in data.chunks_mut(items_per_worker).enumerate() {
                let f = &f;
                scope.spawn(move || {
                    for (i, chunk) in span.chunks_mut(chunk_len).enumerate() {
                        f(w * chunks_per_worker + i, chunk);
                    }
                });
            }
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn map_collect_matches_serial() {
        let par = map_collect(1000, |i| i * i);
        let ser: Vec<usize> = (0..1000).map(|i| i * i).collect();
        assert_eq!(par, ser);
    }

    #[test]
    fn for_each_chunk_mut_covers_every_chunk_once() {
        let mut data = vec![0u32; 10_000];
        for_each_chunk_mut(&mut data, 33, |idx, chunk| {
            for v in chunk.iter_mut() {
                *v += 1 + idx as u32;
            }
        });
        for (i, &v) in data.iter().enumerate() {
            assert_eq!(v, 1 + (i / 33) as u32, "element {i}");
        }
    }

    #[test]
    fn map_chunks_mut_returns_in_chunk_order() {
        let mut data: Vec<usize> = (0..1000).collect();
        let firsts = map_chunks_mut(&mut data, 64, |idx, chunk| (idx, chunk[0]));
        for (i, (idx, first)) in firsts.iter().enumerate() {
            assert_eq!(*idx, i);
            assert_eq!(*first, i * 64);
        }
    }

    #[test]
    fn chunk_pair_visits_aligned_chunks() {
        let mut a: Vec<usize> = (0..600).collect();
        let mut b = vec![0usize; 200];
        // 600/6 == 200/2 == 100 chunks.
        for_each_chunk_pair_mut(&mut a, 6, &mut b, 2, |idx, ca, cb| {
            cb[0] = idx;
            cb[1] = ca[0];
        });
        for (i, pair) in b.chunks(2).enumerate() {
            assert_eq!(pair[0], i);
            assert_eq!(pair[1], i * 6);
        }
    }

    #[test]
    fn spawn_reference_matches_pool() {
        let mut pooled = vec![0u32; 5000];
        let mut spawned = vec![0u32; 5000];
        let body = |idx: usize, chunk: &mut [u32]| {
            for (j, v) in chunk.iter_mut().enumerate() {
                *v = (idx * 1000 + j) as u32;
            }
        };
        for_each_chunk_mut(&mut pooled, 77, body);
        spawn_reference::for_each_chunk_mut(&mut spawned, 77, body);
        assert_eq!(pooled, spawned);
    }

    #[test]
    fn thread_budget_is_positive() {
        assert!(max_threads() >= 1);
    }

    #[test]
    fn pool_cap_resolver_clamps_and_defaults() {
        // No override (or garbage): the built-in default, uncapped by
        // cores — lazy spawning never tops past actual dispatch demand.
        assert_eq!(resolve_pool_cap(None, 8), DEFAULT_MAX_POOL_WORKERS);
        assert_eq!(resolve_pool_cap(Some(""), 8), DEFAULT_MAX_POOL_WORKERS);
        assert_eq!(resolve_pool_cap(Some("lots"), 8), DEFAULT_MAX_POOL_WORKERS);
        assert_eq!(resolve_pool_cap(Some("0"), 8), DEFAULT_MAX_POOL_WORKERS);
        // An explicit override is honoured, clamped to detected cores.
        assert_eq!(resolve_pool_cap(Some("128"), 256), 128);
        assert_eq!(resolve_pool_cap(Some(" 96 "), 128), 96);
        assert_eq!(resolve_pool_cap(Some("1024"), 8), 8);
        assert_eq!(resolve_pool_cap(Some("2"), 8), 2);
        // Degenerate core detection still yields a positive cap.
        assert_eq!(resolve_pool_cap(Some("4"), 0), 1);
    }

    #[test]
    fn resolved_pool_cap_is_positive_and_stable() {
        let a = max_pool_workers();
        assert!(a >= 1);
        assert_eq!(max_pool_workers(), a, "first resolution is cached");
    }

    #[cfg(debug_assertions)]
    #[test]
    fn overlap_registry_catches_aliasing_spans() {
        // Fake base addresses: the registry only compares, never derefs.
        let _a = overlap::register(0x1000, 0, 10);
        // Overlapping range on the same base must panic…
        let err = std::panic::catch_unwind(|| overlap::register(0x1000, 5, 15));
        assert!(err.is_err(), "overlapping span must be rejected");
        // …while disjoint ranges and other bases register fine, and the
        // rejected span left no stale entry behind.
        let _b = overlap::register(0x1000, 10, 20);
        let _c = overlap::register(0x2000, 5, 15);
        drop(_b);
        let _d = overlap::register(0x1000, 10, 20);
    }

    #[test]
    fn nested_dispatch_runs_serially_and_correctly() {
        let mut outer = vec![0u64; 64];
        for_each_chunk_mut(&mut outer, 8, |idx, chunk| {
            // A nested helper must not re-enter the pool; budget reads as 1.
            let inner = map_collect(4, |i| (idx * 4 + i) as u64);
            assert_eq!(max_threads(), 1);
            for (v, x) in chunk.iter_mut().zip(inner.iter().cycle()) {
                *v = *x;
            }
        });
        assert!(outer.iter().all(|&v| v < 32));
    }
}
