//! Deterministic parallel execution helpers shared by the whole stack.
//!
//! # Parallelism/determinism contract
//!
//! Every helper in this module partitions work into *fixed* units (rows,
//! samples, or fixed-size coordinate chunks) whose boundaries do not depend
//! on the number of worker threads. Each unit is computed independently and
//! results are merged in unit order on the calling thread, so every f32
//! produced under `FABFLIP_THREADS=1` is bitwise identical to the output at
//! any other thread count.
//!
//! The thread budget is resolved once per process, in priority order:
//! 1. [`set_max_threads`] (e.g. from a CLI flag),
//! 2. the `FABFLIP_THREADS` environment variable,
//! 3. `std::thread::available_parallelism()`.

use std::sync::atomic::{AtomicUsize, Ordering};

static MAX_THREADS: AtomicUsize = AtomicUsize::new(0);

/// Fixed coordinate-chunk length used by chunked reductions (`vecops`).
/// Part of the determinism contract: changing it re-tiles the reductions
/// but still cannot change results, because chunks never split a single
/// coordinate's accumulation.
pub const CHUNK: usize = 4096;

/// Caps the worker threads used by all fabflip parallel helpers.
///
/// Call before any parallel work runs (the value is consulted on every
/// dispatch, but in-flight dispatches keep the count they started with).
/// `run_grid`-style outer loops set this to 1 in their workers so nested
/// parallelism does not oversubscribe the machine.
pub fn set_max_threads(n: usize) {
    MAX_THREADS.store(n.max(1), Ordering::Relaxed);
}

/// The current worker-thread budget (≥ 1).
pub fn max_threads() -> usize {
    let cached = MAX_THREADS.load(Ordering::Relaxed);
    if cached != 0 {
        return cached;
    }
    let n = std::env::var("FABFLIP_THREADS")
        .ok()
        .and_then(|v| v.trim().parse::<usize>().ok())
        .filter(|&n| n > 0)
        .unwrap_or_else(|| {
            std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(1)
        });
    MAX_THREADS.store(n, Ordering::Relaxed);
    n
}

/// Runs `f(i)` for `i in 0..n` across the thread budget and returns results
/// in index order. Work is split into one contiguous index block per
/// worker; since each `f(i)` depends only on `i`, the output is identical
/// to the serial `(0..n).map(f).collect()`.
pub fn map_collect<R, F>(n: usize, f: F) -> Vec<R>
where
    R: Send,
    F: Fn(usize) -> R + Sync,
{
    let threads = max_threads().min(n.max(1));
    if threads <= 1 {
        return (0..n).map(f).collect();
    }
    let block = n.div_ceil(threads);
    let mut out: Vec<Vec<R>> = Vec::with_capacity(threads);
    std::thread::scope(|scope| {
        let mut handles = Vec::with_capacity(threads);
        for t in 0..threads {
            let lo = t * block;
            let hi = ((t + 1) * block).min(n);
            if lo >= hi {
                break;
            }
            let f = &f;
            handles.push(scope.spawn(move || (lo..hi).map(f).collect::<Vec<R>>()));
        }
        for handle in handles {
            out.push(handle.join().expect("fabflip parallel worker panicked"));
        }
    });
    out.into_iter().flatten().collect()
}

/// Splits `data` into consecutive `chunk_len`-sized pieces and runs
/// `f(chunk_index, chunk)` on each, in parallel. Chunk boundaries depend
/// only on `chunk_len`, so any per-chunk computation that is a pure
/// function of `(chunk_index, chunk)` yields thread-count-independent
/// results.
pub fn for_each_chunk_mut<T, F>(data: &mut [T], chunk_len: usize, f: F)
where
    T: Send,
    F: Fn(usize, &mut [T]) + Sync,
{
    assert!(chunk_len > 0, "chunk_len must be positive");
    let n_chunks = data.len().div_ceil(chunk_len);
    let threads = max_threads().min(n_chunks.max(1));
    if threads <= 1 {
        for (idx, chunk) in data.chunks_mut(chunk_len).enumerate() {
            f(idx, chunk);
        }
        return;
    }
    // Hand each worker a contiguous run of whole chunks.
    let chunks_per_worker = n_chunks.div_ceil(threads);
    let items_per_worker = chunks_per_worker * chunk_len;
    std::thread::scope(|scope| {
        for (w, span) in data.chunks_mut(items_per_worker).enumerate() {
            let f = &f;
            scope.spawn(move || {
                for (i, chunk) in span.chunks_mut(chunk_len).enumerate() {
                    f(w * chunks_per_worker + i, chunk);
                }
            });
        }
    });
}

/// Like [`for_each_chunk_mut`] but each chunk also produces a value;
/// results are returned in chunk order.
pub fn map_chunks_mut<T, R, F>(data: &mut [T], chunk_len: usize, f: F) -> Vec<R>
where
    T: Send,
    R: Send,
    F: Fn(usize, &mut [T]) -> R + Sync,
{
    assert!(chunk_len > 0, "chunk_len must be positive");
    let n_chunks = data.len().div_ceil(chunk_len);
    let threads = max_threads().min(n_chunks.max(1));
    if threads <= 1 {
        return data
            .chunks_mut(chunk_len)
            .enumerate()
            .map(|(idx, chunk)| f(idx, chunk))
            .collect();
    }
    let chunks_per_worker = n_chunks.div_ceil(threads);
    let items_per_worker = chunks_per_worker * chunk_len;
    let mut out: Vec<Vec<R>> = Vec::new();
    std::thread::scope(|scope| {
        let mut handles = Vec::new();
        for (w, span) in data.chunks_mut(items_per_worker).enumerate() {
            let f = &f;
            handles.push(scope.spawn(move || {
                span.chunks_mut(chunk_len)
                    .enumerate()
                    .map(|(i, chunk)| f(w * chunks_per_worker + i, chunk))
                    .collect::<Vec<R>>()
            }));
        }
        for handle in handles {
            out.push(handle.join().expect("fabflip parallel worker panicked"));
        }
    });
    out.into_iter().flatten().collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn map_collect_matches_serial() {
        let par = map_collect(1000, |i| i * i);
        let ser: Vec<usize> = (0..1000).map(|i| i * i).collect();
        assert_eq!(par, ser);
    }

    #[test]
    fn for_each_chunk_mut_covers_every_chunk_once() {
        let mut data = vec![0u32; 10_000];
        for_each_chunk_mut(&mut data, 33, |idx, chunk| {
            for v in chunk.iter_mut() {
                *v += 1 + idx as u32;
            }
        });
        for (i, &v) in data.iter().enumerate() {
            assert_eq!(v, 1 + (i / 33) as u32, "element {i}");
        }
    }

    #[test]
    fn map_chunks_mut_returns_in_chunk_order() {
        let mut data: Vec<usize> = (0..1000).collect();
        let firsts = map_chunks_mut(&mut data, 64, |idx, chunk| (idx, chunk[0]));
        for (i, (idx, first)) in firsts.iter().enumerate() {
            assert_eq!(*idx, i);
            assert_eq!(*first, i * 64);
        }
    }

    #[test]
    fn thread_budget_is_positive() {
        assert!(max_threads() >= 1);
    }
}
