//! # fabflip-tensor
//!
//! Dense, row-major `f32` tensor math substrate for the `fabflip`
//! reproduction of *Fabricated Flips: Poisoning Federated Learning without
//! Data* (DSN 2023).
//!
//! The crate provides exactly what the layers above need and nothing more:
//!
//! * [`Tensor`] — an owned, dense, row-major `f32` tensor with shape
//!   bookkeeping and element-wise arithmetic,
//! * [`matmul`] — a cache-friendly (ikj-ordered) matrix multiply used by the
//!   dense and im2col-based convolution layers,
//! * [`im2col`]/[`col2im`] — the lowering used by `fabflip-nn`'s `Conv2d`,
//! * [`vecops`] — algebra on flat `&[f32]` parameter vectors, the
//!   representation on which every aggregation rule and attack in the paper
//!   is defined.
//!
//! # Examples
//!
//! ```
//! use fabflip_tensor::Tensor;
//!
//! let a = Tensor::from_vec(vec![2, 2], vec![1.0, 2.0, 3.0, 4.0])?;
//! let b = Tensor::zeros(vec![2, 2]);
//! let c = a.add(&b)?;
//! assert_eq!(c.data(), &[1.0, 2.0, 3.0, 4.0]);
//! # Ok::<(), fabflip_tensor::TensorError>(())
//! ```

pub mod backend;
mod error;
mod im2col;
mod matmul;
pub mod par;
pub mod quant;
pub mod scratch;
mod tensor;
pub mod vecops;

pub use error::TensorError;
pub use im2col::{col2im, conv_out_dim, im2col};
pub use matmul::{
    matmul, matmul_into, matmul_into_serial, matmul_transpose_a, matmul_transpose_a_serial,
    matmul_transpose_b, matmul_transpose_b_serial, PAR_FLOP_THRESHOLD,
};
pub use tensor::Tensor;

#[cfg(test)]
mod proptests;
