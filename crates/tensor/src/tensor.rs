use crate::TensorError;
use rand::Rng;
use std::fmt;

/// An owned, dense, row-major `f32` tensor.
///
/// `Tensor` is the single data container used throughout the `fabflip`
/// stack: images are `[N, C, H, W]`, dense activations `[N, F]`, convolution
/// kernels `[OC, IC, KH, KW]`. The representation (shape + flat `Vec<f32>`)
/// is deliberately simple; all heavy lifting happens in [`crate::matmul`]
/// and [`crate::im2col`].
///
/// # Examples
///
/// ```
/// use fabflip_tensor::Tensor;
///
/// let t = Tensor::zeros(vec![1, 2, 3]);
/// assert_eq!(t.len(), 6);
/// assert_eq!(t.shape(), &[1, 2, 3]);
/// ```
#[derive(Clone, PartialEq)]
pub struct Tensor {
    shape: Vec<usize>,
    data: Vec<f32>,
}

impl fmt::Debug for Tensor {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let preview: Vec<f32> = self.data.iter().take(8).copied().collect();
        write!(
            f,
            "Tensor {{ shape: {:?}, len: {}, data[..{}]: {:?}{} }}",
            self.shape,
            self.data.len(),
            preview.len(),
            preview,
            if self.data.len() > 8 { ", …" } else { "" }
        )
    }
}

impl Default for Tensor {
    fn default() -> Self {
        Tensor {
            shape: vec![0],
            data: Vec::new(),
        }
    }
}

impl Tensor {
    /// Creates a tensor of zeros with the given shape.
    ///
    /// ```
    /// # use fabflip_tensor::Tensor;
    /// let t = Tensor::zeros(vec![2, 3]);
    /// assert!(t.data().iter().all(|&x| x == 0.0));
    /// ```
    pub fn zeros(shape: Vec<usize>) -> Tensor {
        let n: usize = shape.iter().product();
        Tensor {
            shape,
            data: vec![0.0; n],
        }
    }

    /// Creates a tensor filled with `value`.
    pub fn full(shape: Vec<usize>, value: f32) -> Tensor {
        let n: usize = shape.iter().product();
        Tensor {
            shape,
            data: vec![value; n],
        }
    }

    /// Creates a tensor from a flat buffer.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::LengthMismatch`] if `data.len()` differs from
    /// the product of `shape`.
    pub fn from_vec(shape: Vec<usize>, data: Vec<f32>) -> Result<Tensor, TensorError> {
        let n: usize = shape.iter().product();
        if n != data.len() {
            return Err(TensorError::LengthMismatch {
                expected: n,
                actual: data.len(),
            });
        }
        Ok(Tensor { shape, data })
    }

    /// Creates a tensor with elements drawn i.i.d. from `U[lo, hi)`.
    pub fn uniform<R: Rng + ?Sized>(shape: Vec<usize>, lo: f32, hi: f32, rng: &mut R) -> Tensor {
        let n: usize = shape.iter().product();
        let data = (0..n).map(|_| rng.gen_range(lo..hi)).collect();
        Tensor { shape, data }
    }

    /// Creates a tensor with elements drawn i.i.d. from `N(mean, std^2)`
    /// using the Box–Muller transform (no external distribution crate).
    pub fn normal<R: Rng + ?Sized>(shape: Vec<usize>, mean: f32, std: f32, rng: &mut R) -> Tensor {
        let n: usize = shape.iter().product();
        let mut data = Vec::with_capacity(n);
        while data.len() < n {
            let (a, b) = box_muller(rng);
            data.push(mean + std * a);
            if data.len() < n {
                data.push(mean + std * b);
            }
        }
        Tensor { shape, data }
    }

    /// The shape of the tensor.
    pub fn shape(&self) -> &[usize] {
        &self.shape
    }

    /// Number of elements.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// Whether the tensor holds no elements.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Rank (number of dimensions).
    pub fn rank(&self) -> usize {
        self.shape.len()
    }

    /// Immutable view of the flat data.
    pub fn data(&self) -> &[f32] {
        &self.data
    }

    /// Mutable view of the flat data.
    pub fn data_mut(&mut self) -> &mut [f32] {
        &mut self.data
    }

    /// Consumes the tensor, returning its flat buffer.
    pub fn into_vec(self) -> Vec<f32> {
        self.data
    }

    /// Returns a copy with a new shape of equal element count.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::LengthMismatch`] if the element counts differ.
    pub fn reshape(&self, shape: Vec<usize>) -> Result<Tensor, TensorError> {
        let n: usize = shape.iter().product();
        if n != self.data.len() {
            return Err(TensorError::LengthMismatch {
                expected: n,
                actual: self.data.len(),
            });
        }
        Ok(Tensor {
            shape,
            data: self.data.clone(),
        })
    }

    /// Reshapes in place (no copy).
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::LengthMismatch`] if the element counts differ.
    pub fn reshape_in_place(&mut self, shape: Vec<usize>) -> Result<(), TensorError> {
        let n: usize = shape.iter().product();
        if n != self.data.len() {
            return Err(TensorError::LengthMismatch {
                expected: n,
                actual: self.data.len(),
            });
        }
        self.shape = shape;
        Ok(())
    }

    fn check_same_shape(&self, other: &Tensor, op: &'static str) -> Result<(), TensorError> {
        if self.shape != other.shape {
            return Err(TensorError::ShapeMismatch {
                op,
                lhs: self.shape.clone(),
                rhs: other.shape.clone(),
            });
        }
        Ok(())
    }

    /// Element-wise addition.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::ShapeMismatch`] if shapes differ.
    pub fn add(&self, other: &Tensor) -> Result<Tensor, TensorError> {
        self.check_same_shape(other, "add")?;
        let data = self
            .data
            .iter()
            .zip(&other.data)
            .map(|(a, b)| a + b)
            .collect();
        Ok(Tensor {
            shape: self.shape.clone(),
            data,
        })
    }

    /// Element-wise subtraction (`self - other`).
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::ShapeMismatch`] if shapes differ.
    pub fn sub(&self, other: &Tensor) -> Result<Tensor, TensorError> {
        self.check_same_shape(other, "sub")?;
        let data = self
            .data
            .iter()
            .zip(&other.data)
            .map(|(a, b)| a - b)
            .collect();
        Ok(Tensor {
            shape: self.shape.clone(),
            data,
        })
    }

    /// Element-wise multiplication.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::ShapeMismatch`] if shapes differ.
    pub fn mul(&self, other: &Tensor) -> Result<Tensor, TensorError> {
        self.check_same_shape(other, "mul")?;
        let data = self
            .data
            .iter()
            .zip(&other.data)
            .map(|(a, b)| a * b)
            .collect();
        Ok(Tensor {
            shape: self.shape.clone(),
            data,
        })
    }

    /// In-place `self += alpha * other`.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::ShapeMismatch`] if shapes differ.
    pub fn axpy(&mut self, alpha: f32, other: &Tensor) -> Result<(), TensorError> {
        self.check_same_shape(other, "axpy")?;
        for (a, b) in self.data.iter_mut().zip(&other.data) {
            *a += alpha * b;
        }
        Ok(())
    }

    /// Returns a copy scaled by `alpha`.
    pub fn scale(&self, alpha: f32) -> Tensor {
        let data = self.data.iter().map(|a| a * alpha).collect();
        Tensor {
            shape: self.shape.clone(),
            data,
        }
    }

    /// Scales in place by `alpha`.
    pub fn scale_in_place(&mut self, alpha: f32) {
        for a in &mut self.data {
            *a *= alpha;
        }
    }

    /// Applies `f` element-wise, returning a new tensor.
    ///
    /// Not a hot-path kernel: fabcheck's call graph only reaches it through
    /// the iterator adapter `.map(...)` inside real kernels (a method-name
    /// over-approximation), hence the allow markers below.
    pub fn map<F: Fn(f32) -> f32>(&self, f: F) -> Tensor {
        // fabcheck::allow(alloc_on_hot_path): returns a fresh tensor by design.
        let data = self.data.iter().map(|&a| f(a)).collect();
        Tensor {
            // fabcheck::allow(alloc_on_hot_path): fresh tensor's shape copy.
            shape: self.shape.clone(),
            data,
        }
    }

    /// Fills every element with zero (reuses the allocation).
    pub fn zero_(&mut self) {
        for a in &mut self.data {
            *a = 0.0;
        }
    }

    /// Sum of all elements.
    pub fn sum(&self) -> f32 {
        self.data.iter().sum()
    }

    /// Arithmetic mean of all elements (0 for empty tensors).
    pub fn mean(&self) -> f32 {
        if self.data.is_empty() {
            0.0
        } else {
            self.sum() / self.data.len() as f32
        }
    }

    /// Euclidean (L2) norm of the flattened tensor.
    pub fn l2_norm(&self) -> f32 {
        // fabcheck::allow(unordered_float_reduction): serial sum in slice order (this IS a fixed-order kernel)
        self.data.iter().map(|a| a * a).sum::<f32>().sqrt()
    }

    /// Population variance of all elements (0 for empty tensors).
    pub fn variance(&self) -> f32 {
        if self.data.is_empty() {
            return 0.0;
        }
        let m = self.mean();
        // fabcheck::allow(unordered_float_reduction): serial sum in slice order (this IS a fixed-order kernel)
        self.data.iter().map(|a| (a - m) * (a - m)).sum::<f32>() / self.data.len() as f32
    }

    /// Index of the maximum element of a 1-D slice interpretation.
    ///
    /// Returns 0 for empty tensors. NaN elements are never selected unless
    /// all elements are NaN.
    pub fn argmax(&self) -> usize {
        let mut best = 0usize;
        let mut best_v = f32::NEG_INFINITY;
        for (i, &v) in self.data.iter().enumerate() {
            if v > best_v {
                best_v = v;
                best = i;
            }
        }
        best
    }

    /// Clamps every element into `[lo, hi]` in place.
    pub fn clamp_in_place(&mut self, lo: f32, hi: f32) {
        for a in &mut self.data {
            *a = a.clamp(lo, hi);
        }
    }

    /// True if any element is NaN or infinite.
    pub fn has_non_finite(&self) -> bool {
        self.data.iter().any(|a| !a.is_finite())
    }

    /// Extracts sample `i` of a batched tensor whose first axis is the batch.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::RankMismatch`] for rank-0 tensors and
    /// [`TensorError::InvalidGeometry`] if `i` is out of range.
    pub fn slice_batch(&self, i: usize) -> Result<Tensor, TensorError> {
        if self.shape.is_empty() {
            return Err(TensorError::RankMismatch {
                op: "slice_batch",
                expected: 1,
                actual: 0,
            });
        }
        let n = self.shape[0];
        if i >= n {
            return Err(TensorError::InvalidGeometry(format!(
                "batch index {i} out of range for batch size {n}"
            )));
        }
        let stride: usize = self.shape[1..].iter().product();
        let mut shape = self.shape.clone();
        shape[0] = 1;
        let data = self.data[i * stride..(i + 1) * stride].to_vec();
        Ok(Tensor { shape, data })
    }

    /// Stacks tensors of identical per-sample shape along a new batch axis.
    ///
    /// Inputs may themselves be batches (first axis is concatenated).
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::ShapeMismatch`] if the trailing dimensions of
    /// any input differ from the first, or [`TensorError::InvalidGeometry`]
    /// when `parts` is empty.
    pub fn concat_batch(parts: &[Tensor]) -> Result<Tensor, TensorError> {
        let first = parts
            .first()
            .ok_or_else(|| TensorError::InvalidGeometry("concat_batch of zero tensors".into()))?;
        let tail = &first.shape[1..];
        let mut total = 0usize;
        for p in parts {
            if &p.shape[1..] != tail {
                return Err(TensorError::ShapeMismatch {
                    op: "concat_batch",
                    lhs: first.shape.clone(),
                    rhs: p.shape.clone(),
                });
            }
            total += p.shape[0];
        }
        let mut shape = first.shape.clone();
        shape[0] = total;
        let mut data = Vec::with_capacity(shape.iter().product());
        for p in parts {
            data.extend_from_slice(&p.data);
        }
        Ok(Tensor { shape, data })
    }
}

/// One Box–Muller draw: two independent standard normal samples.
fn box_muller<R: Rng + ?Sized>(rng: &mut R) -> (f32, f32) {
    // Avoid u1 == 0, which would make ln(0) = -inf.
    let u1: f32 = rng.gen_range(f32::EPSILON..1.0);
    let u2: f32 = rng.gen_range(0.0..1.0);
    let r = (-2.0 * u1.ln()).sqrt();
    let theta = 2.0 * std::f32::consts::PI * u2;
    (r * theta.cos(), r * theta.sin())
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn zeros_and_shape() {
        let t = Tensor::zeros(vec![2, 3, 4]);
        assert_eq!(t.len(), 24);
        assert_eq!(t.rank(), 3);
        assert!(t.data().iter().all(|&x| x == 0.0));
    }

    #[test]
    fn from_vec_checks_length() {
        assert!(Tensor::from_vec(vec![2, 2], vec![1.0; 4]).is_ok());
        let err = Tensor::from_vec(vec![2, 2], vec![1.0; 3]).unwrap_err();
        assert_eq!(
            err,
            TensorError::LengthMismatch {
                expected: 4,
                actual: 3
            }
        );
    }

    #[test]
    fn elementwise_ops() {
        let a = Tensor::from_vec(vec![3], vec![1.0, 2.0, 3.0]).unwrap();
        let b = Tensor::from_vec(vec![3], vec![4.0, 5.0, 6.0]).unwrap();
        assert_eq!(a.add(&b).unwrap().data(), &[5.0, 7.0, 9.0]);
        assert_eq!(b.sub(&a).unwrap().data(), &[3.0, 3.0, 3.0]);
        assert_eq!(a.mul(&b).unwrap().data(), &[4.0, 10.0, 18.0]);
        assert_eq!(a.scale(2.0).data(), &[2.0, 4.0, 6.0]);
    }

    #[test]
    fn shape_mismatch_is_reported() {
        let a = Tensor::zeros(vec![2]);
        let b = Tensor::zeros(vec![3]);
        match a.add(&b) {
            Err(TensorError::ShapeMismatch { op, .. }) => assert_eq!(op, "add"),
            other => panic!("expected shape mismatch, got {other:?}"),
        }
    }

    #[test]
    fn axpy_accumulates() {
        let mut a = Tensor::from_vec(vec![2], vec![1.0, 1.0]).unwrap();
        let b = Tensor::from_vec(vec![2], vec![2.0, 4.0]).unwrap();
        a.axpy(0.5, &b).unwrap();
        assert_eq!(a.data(), &[2.0, 3.0]);
    }

    #[test]
    fn reductions() {
        let t = Tensor::from_vec(vec![4], vec![1.0, 2.0, 3.0, 4.0]).unwrap();
        assert_eq!(t.sum(), 10.0);
        assert_eq!(t.mean(), 2.5);
        assert!((t.variance() - 1.25).abs() < 1e-6);
        assert!((t.l2_norm() - 30.0_f32.sqrt()).abs() < 1e-6);
        assert_eq!(t.argmax(), 3);
    }

    #[test]
    fn argmax_ignores_nan() {
        let t = Tensor::from_vec(vec![3], vec![f32::NAN, 2.0, 1.0]).unwrap();
        assert_eq!(t.argmax(), 1);
    }

    #[test]
    fn normal_moments_are_plausible() {
        let mut rng = StdRng::seed_from_u64(7);
        let t = Tensor::normal(vec![20_000], 1.5, 2.0, &mut rng);
        assert!((t.mean() - 1.5).abs() < 0.1, "mean {} off", t.mean());
        assert!((t.variance().sqrt() - 2.0).abs() < 0.1);
    }

    #[test]
    fn uniform_bounds() {
        let mut rng = StdRng::seed_from_u64(3);
        let t = Tensor::uniform(vec![1000], -1.0, 1.0, &mut rng);
        assert!(t.data().iter().all(|&x| (-1.0..1.0).contains(&x)));
    }

    #[test]
    fn reshape_roundtrip() {
        let t = Tensor::from_vec(vec![2, 3], (0..6).map(|i| i as f32).collect()).unwrap();
        let r = t.reshape(vec![3, 2]).unwrap();
        assert_eq!(r.shape(), &[3, 2]);
        assert_eq!(r.data(), t.data());
        assert!(t.reshape(vec![4, 2]).is_err());
    }

    #[test]
    fn slice_and_concat_batch() {
        let t = Tensor::from_vec(vec![2, 3], vec![0.0, 1.0, 2.0, 3.0, 4.0, 5.0]).unwrap();
        let s0 = t.slice_batch(0).unwrap();
        let s1 = t.slice_batch(1).unwrap();
        assert_eq!(s0.data(), &[0.0, 1.0, 2.0]);
        assert_eq!(s1.data(), &[3.0, 4.0, 5.0]);
        assert!(t.slice_batch(2).is_err());
        let back = Tensor::concat_batch(&[s0, s1]).unwrap();
        assert_eq!(back, t);
        assert!(Tensor::concat_batch(&[]).is_err());
    }

    #[test]
    fn non_finite_detection() {
        let mut t = Tensor::zeros(vec![3]);
        assert!(!t.has_non_finite());
        t.data_mut()[1] = f32::INFINITY;
        assert!(t.has_non_finite());
    }

    #[test]
    fn clamp() {
        let mut t = Tensor::from_vec(vec![3], vec![-2.0, 0.5, 3.0]).unwrap();
        t.clamp_in_place(-1.0, 1.0);
        assert_eq!(t.data(), &[-1.0, 0.5, 1.0]);
    }

    #[test]
    fn debug_is_nonempty() {
        let t = Tensor::zeros(vec![2]);
        assert!(!format!("{t:?}").is_empty());
    }
}
