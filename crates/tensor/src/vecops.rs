//! Algebra on flat `f32` parameter vectors.
//!
//! Federated aggregation rules (Krum, trimmed mean, median, Bulyan) and the
//! model-poisoning attacks (LIE, Min-Max, the ZKA distance regularizer) are
//! all defined on the flattened weight vector of a model. This module is the
//! shared vocabulary for those computations.
//!
//! The set-reductions (`mean`, `std_dev`, `median`, `trimmed_mean`,
//! `pairwise_sq_distances`) are chunk-parallel: coordinates are tiled into
//! fixed [`par::CHUNK`]-sized blocks dispatched across the [`crate::par`]
//! thread budget. Chunk boundaries never split a coordinate's reduction, so
//! results are bitwise identical to the retained `*_serial` references at
//! any thread count.
//!
//! Each reduction has an allocation-free `*_into` entry writing into a
//! caller-provided output slice (temporaries come from [`crate::scratch`]
//! arenas); the `Vec`-returning names are thin wrappers that allocate the
//! output once and delegate. The `*_into` family is the fabcheck hot-path
//! entry set — everything reachable from it must stay allocation-free.
//!
//! The hot primitives — [`dot`], [`l2_norm`], the `*_delta` forms, and the
//! mean/variance chunk kernels — execute on the active [`crate::backend`]
//! (DESIGN.md §4f). The element-wise chunk kernels are bitwise identical
//! across backends; the serial single-accumulator reductions carry a
//! per-backend fixed op order (scalar keeps the historical order bitwise),
//! and within any one backend `dot_delta`/`l2_norm_delta` stay bitwise
//! equal to their materialized `dot`/`l2_norm` counterparts.

use crate::backend::{self, CpuBackend};
use crate::par;
use crate::scratch::{scratch_f32, Element, Purpose};

/// Work threshold (total input floats) below which the set-reductions stay
/// on the calling thread.
const PAR_ELEMS: usize = 1 << 20;

/// Dot product of two equally long slices of any [`Element`] type, widened
/// to `f32` per element — the serial single-accumulator reference order.
/// The scalar backend's [`dot`] is bitwise identical to the `f32`
/// monomorphization of this.
pub fn dot_t<T: Element>(a: &[T], b: &[T]) -> f32 {
    debug_assert_eq!(a.len(), b.len(), "dot: length mismatch");
    a.iter().zip(b).map(|(x, y)| x.to_f32() * y.to_f32()).sum()
}

/// Dot product of two equally long slices, on the active backend
/// (per-backend fixed accumulation order; scalar ≡ [`dot_t`] bitwise).
///
/// # Panics
///
/// Panics if the lengths differ.
pub fn dot(a: &[f32], b: &[f32]) -> f32 {
    assert_eq!(a.len(), b.len(), "dot: length mismatch");
    backend::active().dot(a, b)
}

/// Euclidean norm of a slice of any [`Element`] type (widened per
/// element) — the serial single-accumulator reference order. The scalar
/// backend's [`l2_norm`] is bitwise identical to the `f32`
/// monomorphization of this.
pub fn l2_norm_t<T: Element>(a: &[T]) -> f32 {
    a.iter()
        .map(|x| {
            let v = x.to_f32();
            v * v
        })
        // fabcheck::allow(unordered_float_reduction): this is the blessed fixed-order serial kernel itself
        .sum::<f32>()
        .sqrt()
}

/// Euclidean norm, on the active backend (per-backend fixed accumulation
/// order; scalar ≡ [`l2_norm_t`] bitwise).
pub fn l2_norm(a: &[f32]) -> f32 {
    backend::active().sq_norm(a).sqrt()
}

/// Squared Euclidean distance between two equally long slices of any
/// [`Element`] type, widened to `f32` per element. Same fixed four-lane
/// reduction tree as [`sq_distance`], which is its `f32` monomorphization.
pub fn sq_distance_t<T: Element>(a: &[T], b: &[T]) -> f32 {
    debug_assert_eq!(a.len(), b.len(), "sq_distance: length mismatch");
    let (mut s0, mut s1, mut s2, mut s3) = (0.0f32, 0.0f32, 0.0f32, 0.0f32);
    // `chunks_exact` + slice patterns keep the four-lane shape with no
    // bounds checks (and no panic sites for the hot-path ratchet).
    let (qa, qb) = (a.chunks_exact(4), b.chunks_exact(4));
    let (ra, rb) = (qa.remainder(), qb.remainder());
    for (ca, cb) in qa.zip(qb) {
        if let ([a0, a1, a2, a3], [b0, b1, b2, b3]) = (ca, cb) {
            let d0 = a0.to_f32() - b0.to_f32();
            let d1 = a1.to_f32() - b1.to_f32();
            let d2 = a2.to_f32() - b2.to_f32();
            let d3 = a3.to_f32() - b3.to_f32();
            s0 += d0 * d0;
            s1 += d1 * d1;
            s2 += d2 * d2;
            s3 += d3 * d3;
        }
    }
    let mut tail = 0.0f32;
    for (x, y) in ra.iter().zip(rb) {
        let d = x.to_f32() - y.to_f32();
        tail += d * d;
    }
    ((s0 + s1) + (s2 + s3)) + tail
}

/// Squared Euclidean distance between two vectors.
///
/// Accumulates in four independent lanes combined as
/// `((s0 + s1) + (s2 + s3)) + tail` — a fixed reduction tree that lets the
/// compiler vectorize the hot Krum/Bulyan distance loops while staying
/// deterministic across calls.
///
/// # Panics
///
/// Panics if the lengths differ.
pub fn sq_distance(a: &[f32], b: &[f32]) -> f32 {
    assert_eq!(a.len(), b.len(), "sq_distance: length mismatch");
    sq_distance_t(a, b)
}

/// `Σᵢ (aᵢ−rᵢ)·(bᵢ−rᵢ)` without materializing the deltas — bitwise
/// identical to `dot(&sub(a, r), &sub(b, r))` under every backend (each
/// backend runs its [`dot`] accumulation structure on the on-the-fly
/// deltas), but O(1) resident. The per-entry kernel of the tiled
/// FoolsGold cosine pass.
pub fn dot_delta(a: &[f32], b: &[f32], r: &[f32]) -> f32 {
    debug_assert_eq!(a.len(), b.len(), "dot_delta: length mismatch");
    debug_assert_eq!(a.len(), r.len(), "dot_delta: reference length mismatch");
    backend::active().dot_delta(a, b, r)
}

/// `‖a − r‖₂` without materializing the delta — bitwise identical to
/// `l2_norm(&sub(a, r))` under every backend.
pub fn l2_norm_delta(a: &[f32], r: &[f32]) -> f32 {
    debug_assert_eq!(a.len(), r.len(), "l2_norm_delta: length mismatch");
    backend::active().sq_norm_delta(a, r).sqrt()
}

/// Euclidean distance between two vectors.
pub fn l2_distance(a: &[f32], b: &[f32]) -> f32 {
    sq_distance(a, b).sqrt()
}

/// `out = a + b` element-wise.
///
/// # Panics
///
/// Panics if the lengths differ.
pub fn add(a: &[f32], b: &[f32]) -> Vec<f32> {
    assert_eq!(a.len(), b.len(), "add: length mismatch");
    a.iter().zip(b).map(|(x, y)| x + y).collect()
}

/// `out = a - b` element-wise.
///
/// # Panics
///
/// Panics if the lengths differ.
pub fn sub(a: &[f32], b: &[f32]) -> Vec<f32> {
    assert_eq!(a.len(), b.len(), "sub: length mismatch");
    a.iter().zip(b).map(|(x, y)| x - y).collect()
}

/// `out = alpha * a`.
pub fn scale(a: &[f32], alpha: f32) -> Vec<f32> {
    a.iter().map(|x| x * alpha).collect()
}

/// In-place `a += alpha * b` (element-wise on the active backend; bitwise
/// identical across backends — separate mul/add per coordinate).
///
/// # Panics
///
/// Panics if the lengths differ.
pub fn axpy_in_place(a: &mut [f32], alpha: f32, b: &[f32]) {
    assert_eq!(a.len(), b.len(), "axpy: length mismatch");
    backend::active().axpy_assign(a, alpha, b);
}

/// Returns the unit vector `a / ‖a‖₂`, or a zero vector when `‖a‖₂ == 0`.
pub fn unit(a: &[f32]) -> Vec<f32> {
    let n = l2_norm(a);
    if n == 0.0 {
        vec![0.0; a.len()]
    } else {
        scale(a, 1.0 / n)
    }
}

/// Element-wise sign vector (−1, 0, +1).
pub fn sign(a: &[f32]) -> Vec<f32> {
    a.iter()
        .map(|&x| {
            if x > 0.0 {
                1.0
            } else if x < 0.0 {
                -1.0
            } else {
                0.0
            }
        })
        .collect()
}

/// Asserts every vector in `vs` has length `d`.
fn check_lengths(vs: &[&[f32]], d: usize, op: &str) {
    for v in vs {
        assert_eq!(v.len(), d, "{op}: length mismatch");
    }
}

/// Accumulation kernel shared by [`mean`] and [`mean_serial`]: fills
/// `out[..]` (the coordinates starting at `lo`) with the vector-order sum
/// scaled by `inv`. Element-wise on the active backend — per-coordinate
/// op chains, bitwise identical across backends.
fn mean_chunk(be: &dyn CpuBackend, vs: &[&[f32]], lo: usize, out: &mut [f32], inv: f32) {
    out.fill(0.0);
    for v in vs {
        // Entry validation (`check_lengths`) makes the miss arm
        // unreachable; checked slicing keeps the hot path panic-free.
        let Some(src) = v.get(lo..lo + out.len()) else {
            continue;
        };
        be.add_assign(out, src);
    }
    be.scale_assign(out, inv);
}

/// Variance kernel shared by [`std_dev`] and [`std_dev_serial`];
/// `m` is the already computed coordinate-wise mean. Element-wise on the
/// active backend — bitwise identical across backends.
fn std_chunk(be: &dyn CpuBackend, vs: &[&[f32]], lo: usize, out: &mut [f32], m: &[f32], inv: f32) {
    out.fill(0.0);
    let Some(ms) = m.get(lo..lo + out.len()) else {
        return;
    };
    for v in vs {
        // Entry validation (`check_lengths`) makes the miss arm
        // unreachable; checked slicing keeps the hot path panic-free.
        let Some(src) = v.get(lo..lo + out.len()) else {
            continue;
        };
        be.sq_dev_assign(out, src, ms);
    }
    be.scale_sqrt_assign(out, inv);
}

/// Sorted-column kernel shared by [`median_into`]/[`trimmed_mean_into`]
/// and the serial references. For each coordinate of the chunk, gathers
/// the column into `buf` (exactly `vs.len()` long, reused across the whole
/// chunk), sorts it in place, and reduces via `pick`. The sort is
/// `sort_unstable_by`: in-place pdqsort, no allocation, and for `f32` keys
/// stability is unobservable (equal floats are bitwise interchangeable),
/// so serial and parallel columns stay bitwise identical.
fn sorted_column_chunk(
    vs: &[&[f32]],
    lo: usize,
    out: &mut [f32],
    buf: &mut [f32],
    pick: impl Fn(&[f32]) -> f32,
) {
    debug_assert_eq!(buf.len(), vs.len());
    for (i, o) in out.iter_mut().enumerate() {
        for (slot, v) in buf.iter_mut().zip(vs) {
            // Checked gather: entry validation (`check_lengths`) makes the
            // miss arm unreachable, so no panic site on the hot path.
            *slot = v.get(lo + i).copied().unwrap_or(0.0);
        }
        buf.sort_unstable_by(|a, b| a.partial_cmp(b).unwrap_or(std::cmp::Ordering::Less));
        *o = pick(buf);
    }
}

fn median_of_sorted(buf: &[f32]) -> f32 {
    let n = buf.len();
    if n % 2 == 1 {
        buf[n / 2]
    } else {
        0.5 * (buf[n / 2 - 1] + buf[n / 2])
    }
}

/// Dispatches a per-chunk kernel over `out`, serially below the work
/// threshold and chunk-parallel above it. `work` is the total number of
/// input floats feeding the reduction.
fn run_chunked(out: &mut [f32], work: usize, kernel: impl Fn(usize, &mut [f32]) + Sync) {
    if work < PAR_ELEMS || par::max_threads() == 1 {
        for (idx, chunk) in out.chunks_mut(par::CHUNK).enumerate() {
            kernel(idx * par::CHUNK, chunk);
        }
    } else {
        par::for_each_chunk_mut(out, par::CHUNK, |idx, chunk| {
            kernel(idx * par::CHUNK, chunk)
        });
    }
}

/// Coordinate-wise mean of `vs`, written into `out` (allocation-free).
///
/// Chunk-parallel; bitwise identical to [`mean_serial`].
///
/// # Panics
///
/// Panics when `vs` is empty or any length differs from `out.len()`.
pub fn mean_into(vs: &[&[f32]], out: &mut [f32]) {
    assert!(!vs.is_empty(), "mean of zero vectors");
    let d = out.len();
    check_lengths(vs, d, "mean");
    let inv = 1.0 / vs.len() as f32;
    let be = backend::active();
    run_chunked(out, d * vs.len(), |lo, chunk| {
        mean_chunk(be, vs, lo, chunk, inv)
    });
}

/// Coordinate-wise mean of a set of equally long vectors.
///
/// Allocates the output then delegates to [`mean_into`].
///
/// # Panics
///
/// Panics when `vs` is empty or lengths differ.
pub fn mean(vs: &[&[f32]]) -> Vec<f32> {
    assert!(!vs.is_empty(), "mean of zero vectors");
    let mut out = vec![0.0f32; vs[0].len()];
    mean_into(vs, &mut out);
    out
}

/// Serial reference for [`mean`].
pub fn mean_serial(vs: &[&[f32]]) -> Vec<f32> {
    assert!(!vs.is_empty(), "mean of zero vectors");
    let d = vs[0].len();
    check_lengths(vs, d, "mean");
    let inv = 1.0 / vs.len() as f32;
    let be = backend::active();
    let mut out = vec![0.0f32; d];
    for (idx, chunk) in out.chunks_mut(par::CHUNK).enumerate() {
        mean_chunk(be, vs, idx * par::CHUNK, chunk, inv);
    }
    out
}

/// Coordinate-wise (population) standard deviation of `vs`, written into
/// `out`. The intermediate mean lives in a [`Purpose::CoordMean`] scratch
/// arena, so the steady state is allocation-free.
///
/// Chunk-parallel; bitwise identical to [`std_dev_serial`].
///
/// # Panics
///
/// Panics when `vs` is empty or any length differs from `out.len()`.
pub fn std_dev_into(vs: &[&[f32]], out: &mut [f32]) {
    assert!(!vs.is_empty(), "std_dev of zero vectors");
    let d = out.len();
    check_lengths(vs, d, "std_dev");
    let inv = 1.0 / vs.len() as f32;
    let be = backend::active();
    let mut m = scratch_f32(Purpose::CoordMean, d);
    run_chunked(&mut m, d * vs.len(), |lo, chunk| {
        mean_chunk(be, vs, lo, chunk, inv)
    });
    let m = &*m;
    run_chunked(out, d * vs.len(), |lo, chunk| {
        std_chunk(be, vs, lo, chunk, m, inv)
    });
}

/// Coordinate-wise (population) standard deviation of a set of vectors.
///
/// Allocates the output then delegates to [`std_dev_into`].
///
/// # Panics
///
/// Panics when `vs` is empty or lengths differ.
pub fn std_dev(vs: &[&[f32]]) -> Vec<f32> {
    assert!(!vs.is_empty(), "std_dev of zero vectors");
    let mut out = vec![0.0f32; vs[0].len()];
    std_dev_into(vs, &mut out);
    out
}

/// Serial reference for [`std_dev`].
pub fn std_dev_serial(vs: &[&[f32]]) -> Vec<f32> {
    let m = mean_serial(vs);
    let d = m.len();
    let inv = 1.0 / vs.len() as f32;
    let be = backend::active();
    let mut out = vec![0.0f32; d];
    for (idx, chunk) in out.chunks_mut(par::CHUNK).enumerate() {
        std_chunk(be, vs, idx * par::CHUNK, chunk, &m, inv);
    }
    out
}

/// Coordinate-wise median of a set of vectors.
///
/// For an even count the lower-upper midpoint is used. NaN coordinates are
/// sorted last and therefore never selected as median unless all values for
/// the coordinate are NaN. Chunk-parallel with one sort scratch per chunk;
/// bitwise identical to [`median_serial`].
///
/// # Panics
///
/// Panics when `vs` is empty or lengths differ.
pub fn median(vs: &[&[f32]]) -> Vec<f32> {
    assert!(!vs.is_empty(), "median of zero vectors");
    let mut out = vec![0.0f32; vs[0].len()];
    median_into(vs, &mut out);
    out
}

/// Coordinate-wise median of `vs`, written into `out`. Per-chunk sort
/// columns come from the executing thread's [`Purpose::SortColumn`]
/// arena, so warm steady-state calls never allocate.
///
/// Chunk-parallel; bitwise identical to [`median_serial`].
///
/// # Panics
///
/// Panics when `vs` is empty or any length differs from `out.len()`.
pub fn median_into(vs: &[&[f32]], out: &mut [f32]) {
    assert!(!vs.is_empty(), "median of zero vectors");
    let d = out.len();
    check_lengths(vs, d, "median");
    run_chunked(out, d * vs.len(), |lo, chunk| {
        let mut buf = scratch_f32(Purpose::SortColumn, vs.len());
        sorted_column_chunk(vs, lo, chunk, &mut buf, median_of_sorted);
    });
}

/// Serial reference for [`median`].
pub fn median_serial(vs: &[&[f32]]) -> Vec<f32> {
    assert!(!vs.is_empty(), "median of zero vectors");
    let d = vs[0].len();
    check_lengths(vs, d, "median");
    let mut out = vec![0.0f32; d];
    let mut buf = vec![0.0f32; vs.len()];
    for (idx, chunk) in out.chunks_mut(par::CHUNK).enumerate() {
        sorted_column_chunk(vs, idx * par::CHUNK, chunk, &mut buf, median_of_sorted);
    }
    out
}

/// Coordinate-wise trimmed mean: drops the `trim` smallest and `trim`
/// largest values per coordinate, averaging the rest.
///
/// Chunk-parallel with one sort scratch per chunk; bitwise identical to
/// [`trimmed_mean_serial`].
///
/// # Panics
///
/// Panics when `vs` is empty, lengths differ, or `2·trim >= vs.len()`.
pub fn trimmed_mean(vs: &[&[f32]], trim: usize) -> Vec<f32> {
    assert!(!vs.is_empty(), "trimmed mean of zero vectors");
    let mut out = vec![0.0f32; vs[0].len()];
    trimmed_mean_into(vs, trim, &mut out);
    out
}

/// Coordinate-wise trimmed mean of `vs`, written into `out`. Sort columns
/// come from the executing thread's [`Purpose::SortColumn`] arena.
///
/// Chunk-parallel; bitwise identical to [`trimmed_mean_serial`].
///
/// # Panics
///
/// Panics when `vs` is empty, any length differs from `out.len()`, or
/// `2·trim >= vs.len()`.
pub fn trimmed_mean_into(vs: &[&[f32]], trim: usize, out: &mut [f32]) {
    assert!(!vs.is_empty(), "trimmed mean of zero vectors");
    let n = vs.len();
    assert!(2 * trim < n, "trim {trim} too large for {n} vectors");
    let d = out.len();
    check_lengths(vs, d, "trimmed_mean");
    let keep = (n - 2 * trim) as f32;
    run_chunked(out, d * n, |lo, chunk| {
        let mut buf = scratch_f32(Purpose::SortColumn, n);
        sorted_column_chunk(vs, lo, chunk, &mut buf, |sorted| {
            // fabcheck::allow(unordered_float_reduction): serial sum over the sorted column window; order fixed by the sort
            sorted.iter().take(n - trim).skip(trim).sum::<f32>() / keep
        });
    });
}

/// Serial reference for [`trimmed_mean`].
pub fn trimmed_mean_serial(vs: &[&[f32]], trim: usize) -> Vec<f32> {
    assert!(!vs.is_empty(), "trimmed mean of zero vectors");
    let n = vs.len();
    assert!(2 * trim < n, "trim {trim} too large for {n} vectors");
    let d = vs[0].len();
    check_lengths(vs, d, "trimmed_mean");
    let keep = (n - 2 * trim) as f32;
    let mut out = vec![0.0f32; d];
    let mut buf = vec![0.0f32; n];
    for (idx, chunk) in out.chunks_mut(par::CHUNK).enumerate() {
        sorted_column_chunk(vs, idx * par::CHUNK, chunk, &mut buf, |sorted| {
            // fabcheck::allow(unordered_float_reduction): serial sum over the sorted column window; order fixed by the sort
            sorted.iter().take(n - trim).skip(trim).sum::<f32>() / keep
        });
    }
    out
}

/// Full pairwise squared-distance matrix, written into `out` as a flat
/// row-major `n × n` slice (symmetric, zero diagonal), allocation-free.
///
/// Rows are dispatched in parallel over the strict upper triangle, then
/// mirrored serially; each entry is a pure function of its pair, so the
/// matrix is bitwise identical to [`pairwise_sq_distances_serial`] at any
/// thread count.
///
/// # Panics
///
/// Panics if `out.len() != vs.len()²` or vector lengths differ.
pub fn pairwise_sq_distances_into(vs: &[&[f32]], out: &mut [f32]) {
    let n = vs.len();
    assert_eq!(out.len(), n * n, "pairwise_sq_distances: out must be n*n");
    let d = vs.first().map_or(0, |v| v.len());
    check_lengths(vs, d, "pairwise_sq_distances");
    if n == 0 {
        return;
    }
    let fill_row = |i: usize, row: &mut [f32]| {
        let vi = vs.get(i).copied().unwrap_or(&[]);
        for (j, (slot, vj)) in row.iter_mut().zip(vs).enumerate() {
            *slot = if j > i { sq_distance(vi, vj) } else { 0.0 };
        }
    };
    let work = n * (n.saturating_sub(1)) / 2 * d;
    if work < PAR_ELEMS || par::max_threads() == 1 {
        for (i, row) in out.chunks_mut(n).enumerate() {
            fill_row(i, row);
        }
    } else {
        par::for_each_chunk_mut(out, n, |i, row| fill_row(i, row));
    }
    // Serial mirror of the upper triangle into the lower; checked access
    // (the bounds are guaranteed by the `n*n` entry assert).
    for i in 0..n {
        for j in (i + 1)..n {
            let v = out.get(i * n + j).copied().unwrap_or(0.0);
            if let Some(dst) = out.get_mut(j * n + i) {
                *dst = v;
            }
        }
    }
}

/// Full pairwise squared-distance matrix (symmetric, zero diagonal).
///
/// Allocates the nested output then delegates to
/// [`pairwise_sq_distances_into`].
///
/// # Panics
///
/// Panics if vector lengths differ.
pub fn pairwise_sq_distances(vs: &[&[f32]]) -> Vec<Vec<f32>> {
    let n = vs.len();
    let mut flat = vec![0.0f32; n * n];
    pairwise_sq_distances_into(vs, &mut flat);
    flat.chunks(n.max(1)).map(<[f32]>::to_vec).collect()
}

/// Serial reference for [`pairwise_sq_distances`].
pub fn pairwise_sq_distances_serial(vs: &[&[f32]]) -> Vec<Vec<f32>> {
    let n = vs.len();
    let mut m = vec![vec![0.0f32; n]; n];
    for i in 0..n {
        for j in (i + 1)..n {
            let d = sq_distance(vs[i], vs[j]);
            m[i][j] = d;
            m[j][i] = d;
        }
    }
    m
}

/// Fills one tile of an `n × n` pairwise matrix into `tile` (row-major,
/// `tile.len()/cols` rows × `cols` columns): tile entry `(r, c)` receives
/// `entry(row_lo + r, col_lo + c)`, with `0.0` on the global diagonal.
/// Allocation-free — the blocked Krum/FoolsGold kernels stream tiles
/// through a [`Purpose::DistTile`] scratch so only O(tile) floats of the
/// matrix are ever resident (DESIGN.md §4e).
///
/// Rows are dispatched in parallel above the work threshold (`elem_work`
/// is the per-entry input size). Each entry is a pure function of its
/// global index pair, so the tile is bitwise identical to the
/// corresponding slice of the dense matrix at any thread count.
pub fn pairwise_tile_into(
    row_lo: usize,
    col_lo: usize,
    cols: usize,
    elem_work: usize,
    tile: &mut [f32],
    entry: impl Fn(usize, usize) -> f32 + Sync,
) {
    if cols == 0 || tile.is_empty() {
        return;
    }
    debug_assert_eq!(tile.len() % cols, 0, "pairwise_tile: ragged tile");
    let rows = tile.len() / cols;
    let fill_row = |r: usize, row: &mut [f32]| {
        let i = row_lo + r;
        for (c, slot) in row.iter_mut().enumerate() {
            let j = col_lo + c;
            *slot = if i == j { 0.0 } else { entry(i, j) };
        }
    };
    let work = rows * cols * elem_work;
    if work < PAR_ELEMS || par::max_threads() == 1 {
        for (r, row) in tile.chunks_mut(cols).enumerate() {
            fill_row(r, row);
        }
    } else {
        par::for_each_chunk_mut(tile, cols, fill_row);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dot_and_norms() {
        assert_eq!(dot(&[1.0, 2.0], &[3.0, 4.0]), 11.0);
        assert_eq!(l2_norm(&[3.0, 4.0]), 5.0);
        assert_eq!(sq_distance(&[0.0, 0.0], &[3.0, 4.0]), 25.0);
        assert_eq!(l2_distance(&[0.0, 0.0], &[3.0, 4.0]), 5.0);
    }

    #[test]
    fn arithmetic() {
        assert_eq!(add(&[1.0], &[2.0]), vec![3.0]);
        assert_eq!(sub(&[1.0], &[2.0]), vec![-1.0]);
        assert_eq!(scale(&[2.0, -1.0], 3.0), vec![6.0, -3.0]);
        let mut a = vec![1.0, 1.0];
        axpy_in_place(&mut a, 2.0, &[1.0, 2.0]);
        assert_eq!(a, vec![3.0, 5.0]);
    }

    #[test]
    fn unit_and_sign() {
        assert_eq!(unit(&[3.0, 4.0]), vec![0.6, 0.8]);
        assert_eq!(unit(&[0.0, 0.0]), vec![0.0, 0.0]);
        assert_eq!(sign(&[-2.0, 0.0, 5.0]), vec![-1.0, 0.0, 1.0]);
    }

    #[test]
    fn mean_and_std() {
        let a = [1.0f32, 10.0];
        let b = [3.0f32, 10.0];
        let m = mean(&[&a, &b]);
        assert_eq!(m, vec![2.0, 10.0]);
        let s = std_dev(&[&a, &b]);
        assert_eq!(s, vec![1.0, 0.0]);
    }

    #[test]
    fn median_odd_even() {
        let a = [1.0f32];
        let b = [5.0f32];
        let c = [3.0f32];
        assert_eq!(median(&[&a, &b, &c]), vec![3.0]);
        assert_eq!(median(&[&a, &b]), vec![3.0]);
    }

    #[test]
    fn median_resists_one_outlier() {
        let a = [1.0f32];
        let b = [2.0f32];
        let c = [1e9f32];
        assert_eq!(median(&[&a, &b, &c]), vec![2.0]);
    }

    #[test]
    fn trimmed_mean_drops_extremes() {
        let vs: Vec<Vec<f32>> = vec![vec![-100.0], vec![1.0], vec![2.0], vec![3.0], vec![100.0]];
        let refs: Vec<&[f32]> = vs.iter().map(|v| v.as_slice()).collect();
        assert_eq!(trimmed_mean(&refs, 1), vec![2.0]);
    }

    #[test]
    #[should_panic(expected = "trim")]
    fn trimmed_mean_rejects_overtrim() {
        let vs: Vec<Vec<f32>> = vec![vec![1.0], vec![2.0]];
        let refs: Vec<&[f32]> = vs.iter().map(|v| v.as_slice()).collect();
        let _ = trimmed_mean(&refs, 1);
    }

    #[test]
    fn pairwise_matrix_is_symmetric() {
        let vs: Vec<Vec<f32>> = vec![vec![0.0, 0.0], vec![3.0, 4.0], vec![6.0, 8.0]];
        let refs: Vec<&[f32]> = vs.iter().map(|v| v.as_slice()).collect();
        let m = pairwise_sq_distances(&refs);
        assert_eq!(m[0][1], 25.0);
        assert_eq!(m[1][0], 25.0);
        assert_eq!(m[0][2], 100.0);
        assert_eq!(m[1][1], 0.0);
    }

    #[test]
    fn generic_kernels_match_serial_reference_bitwise() {
        let a: Vec<f32> = (0..131).map(|i| ((i as f32) * 0.31).sin() * 2.0).collect();
        let b: Vec<f32> = (0..131).map(|i| ((i as f32) * 0.17).cos() * 3.0).collect();
        // The generic kernels are the serial reference order — the scalar
        // backend reproduces them bitwise (the public entries run on the
        // active backend, which may reassociate).
        let serial_dot: f32 = a.iter().zip(&b).map(|(x, y)| x * y).sum();
        let serial_sq: f32 = a.iter().map(|x| x * x).sum();
        assert_eq!(dot_t::<f32>(&a, &b).to_bits(), serial_dot.to_bits());
        assert_eq!(l2_norm_t::<f32>(&a).to_bits(), serial_sq.sqrt().to_bits());
        let scalar = backend::instance(backend::Kind::Scalar);
        assert_eq!(scalar.dot(&a, &b).to_bits(), serial_dot.to_bits());
        assert_eq!(scalar.sq_norm(&a).to_bits(), serial_sq.to_bits());
        assert_eq!(
            sq_distance(&a, &b).to_bits(),
            sq_distance_t::<f32>(&a, &b).to_bits()
        );
    }

    #[test]
    fn delta_kernels_match_materialized_path_bitwise() {
        let a: Vec<f32> = (0..97).map(|i| ((i as f32) * 0.7).sin()).collect();
        let b: Vec<f32> = (0..97).map(|i| ((i as f32) * 0.9).cos()).collect();
        let r: Vec<f32> = (0..97).map(|i| (i as f32) * 0.001).collect();
        let da = sub(&a, &r);
        let db = sub(&b, &r);
        // The identity holds through the public entries (whatever backend
        // is active)...
        assert_eq!(dot_delta(&a, &b, &r).to_bits(), dot(&da, &db).to_bits());
        assert_eq!(l2_norm_delta(&a, &r).to_bits(), l2_norm(&da).to_bits());
        // ...and on every backend this host supports, checked directly on
        // the instances so concurrent tests cannot race a global override.
        for kind in backend::ALL_KINDS {
            if !kind.supported() {
                continue;
            }
            let be = backend::instance(kind);
            assert_eq!(
                be.dot_delta(&a, &b, &r).to_bits(),
                be.dot(&da, &db).to_bits(),
                "dot_delta != dot∘sub on {}",
                kind.name()
            );
            assert_eq!(
                be.sq_norm_delta(&a, &r).to_bits(),
                be.sq_norm(&da).to_bits(),
                "sq_norm_delta != sq_norm∘sub on {}",
                kind.name()
            );
        }
    }

    #[test]
    fn tile_matches_dense_matrix_slice() {
        let vs: Vec<Vec<f32>> = (0..7)
            .map(|u| (0..13).map(|i| ((u * 13 + i) as f32 * 0.2).sin()).collect())
            .collect();
        let refs: Vec<&[f32]> = vs.iter().map(|v| v.as_slice()).collect();
        let n = refs.len();
        let mut dense = vec![0.0f32; n * n];
        pairwise_sq_distances_into(&refs, &mut dense);
        // Sweep every (row_lo, col_lo) block origin of a 3×4 tile.
        for row_lo in 0..n - 2 {
            for col_lo in 0..n - 3 {
                let mut tile = vec![f32::NAN; 3 * 4];
                pairwise_tile_into(row_lo, col_lo, 4, 13, &mut tile, |i, j| {
                    sq_distance(refs[i], refs[j])
                });
                for r in 0..3 {
                    for c in 0..4 {
                        let want = dense[(row_lo + r) * n + (col_lo + c)];
                        assert_eq!(tile[r * 4 + c].to_bits(), want.to_bits());
                    }
                }
            }
        }
    }
}
