//! Algebra on flat `f32` parameter vectors.
//!
//! Federated aggregation rules (Krum, trimmed mean, median, Bulyan) and the
//! model-poisoning attacks (LIE, Min-Max, the ZKA distance regularizer) are
//! all defined on the flattened weight vector of a model. This module is the
//! shared vocabulary for those computations.

/// Dot product of two equally long slices.
///
/// # Panics
///
/// Panics if the lengths differ.
pub fn dot(a: &[f32], b: &[f32]) -> f32 {
    assert_eq!(a.len(), b.len(), "dot: length mismatch");
    a.iter().zip(b).map(|(x, y)| x * y).sum()
}

/// Euclidean norm.
pub fn l2_norm(a: &[f32]) -> f32 {
    a.iter().map(|x| x * x).sum::<f32>().sqrt()
}

/// Squared Euclidean distance between two vectors.
///
/// # Panics
///
/// Panics if the lengths differ.
pub fn sq_distance(a: &[f32], b: &[f32]) -> f32 {
    assert_eq!(a.len(), b.len(), "sq_distance: length mismatch");
    a.iter().zip(b).map(|(x, y)| (x - y) * (x - y)).sum()
}

/// Euclidean distance between two vectors.
pub fn l2_distance(a: &[f32], b: &[f32]) -> f32 {
    sq_distance(a, b).sqrt()
}

/// `out = a + b` element-wise.
///
/// # Panics
///
/// Panics if the lengths differ.
pub fn add(a: &[f32], b: &[f32]) -> Vec<f32> {
    assert_eq!(a.len(), b.len(), "add: length mismatch");
    a.iter().zip(b).map(|(x, y)| x + y).collect()
}

/// `out = a - b` element-wise.
///
/// # Panics
///
/// Panics if the lengths differ.
pub fn sub(a: &[f32], b: &[f32]) -> Vec<f32> {
    assert_eq!(a.len(), b.len(), "sub: length mismatch");
    a.iter().zip(b).map(|(x, y)| x - y).collect()
}

/// `out = alpha * a`.
pub fn scale(a: &[f32], alpha: f32) -> Vec<f32> {
    a.iter().map(|x| x * alpha).collect()
}

/// In-place `a += alpha * b`.
///
/// # Panics
///
/// Panics if the lengths differ.
pub fn axpy_in_place(a: &mut [f32], alpha: f32, b: &[f32]) {
    assert_eq!(a.len(), b.len(), "axpy: length mismatch");
    for (x, y) in a.iter_mut().zip(b) {
        *x += alpha * y;
    }
}

/// Returns the unit vector `a / ‖a‖₂`, or a zero vector when `‖a‖₂ == 0`.
pub fn unit(a: &[f32]) -> Vec<f32> {
    let n = l2_norm(a);
    if n == 0.0 {
        vec![0.0; a.len()]
    } else {
        scale(a, 1.0 / n)
    }
}

/// Element-wise sign vector (−1, 0, +1).
pub fn sign(a: &[f32]) -> Vec<f32> {
    a.iter()
        .map(|&x| {
            if x > 0.0 {
                1.0
            } else if x < 0.0 {
                -1.0
            } else {
                0.0
            }
        })
        .collect()
}

/// Coordinate-wise mean of a set of equally long vectors.
///
/// # Panics
///
/// Panics when `vs` is empty or lengths differ.
pub fn mean(vs: &[&[f32]]) -> Vec<f32> {
    assert!(!vs.is_empty(), "mean of zero vectors");
    let d = vs[0].len();
    let mut out = vec![0.0f32; d];
    for v in vs {
        assert_eq!(v.len(), d, "mean: length mismatch");
        for (o, &x) in out.iter_mut().zip(*v) {
            *o += x;
        }
    }
    let inv = 1.0 / vs.len() as f32;
    for o in &mut out {
        *o *= inv;
    }
    out
}

/// Coordinate-wise (population) standard deviation of a set of vectors.
///
/// # Panics
///
/// Panics when `vs` is empty or lengths differ.
pub fn std_dev(vs: &[&[f32]]) -> Vec<f32> {
    let m = mean(vs);
    let d = m.len();
    let mut out = vec![0.0f32; d];
    for v in vs {
        for i in 0..d {
            let diff = v[i] - m[i];
            out[i] += diff * diff;
        }
    }
    let inv = 1.0 / vs.len() as f32;
    for o in &mut out {
        *o = (*o * inv).sqrt();
    }
    out
}

/// Coordinate-wise median of a set of vectors.
///
/// For an even count the lower-upper midpoint is used. NaN coordinates are
/// sorted last and therefore never selected as median unless all values for
/// the coordinate are NaN.
///
/// # Panics
///
/// Panics when `vs` is empty or lengths differ.
pub fn median(vs: &[&[f32]]) -> Vec<f32> {
    assert!(!vs.is_empty(), "median of zero vectors");
    let d = vs[0].len();
    let n = vs.len();
    let mut buf = vec![0.0f32; n];
    let mut out = vec![0.0f32; d];
    for (i, o) in out.iter_mut().enumerate() {
        for (j, v) in vs.iter().enumerate() {
            assert_eq!(v.len(), d, "median: length mismatch");
            buf[j] = v[i];
        }
        buf.sort_by(|a, b| a.partial_cmp(b).unwrap_or(std::cmp::Ordering::Less));
        *o = if n % 2 == 1 { buf[n / 2] } else { 0.5 * (buf[n / 2 - 1] + buf[n / 2]) };
    }
    out
}

/// Coordinate-wise trimmed mean: drops the `trim` smallest and `trim`
/// largest values per coordinate, averaging the rest.
///
/// # Panics
///
/// Panics when `vs` is empty, lengths differ, or `2·trim >= vs.len()`.
pub fn trimmed_mean(vs: &[&[f32]], trim: usize) -> Vec<f32> {
    assert!(!vs.is_empty(), "trimmed mean of zero vectors");
    let n = vs.len();
    assert!(2 * trim < n, "trim {trim} too large for {n} vectors");
    let d = vs[0].len();
    let mut buf = vec![0.0f32; n];
    let mut out = vec![0.0f32; d];
    let keep = (n - 2 * trim) as f32;
    for (i, o) in out.iter_mut().enumerate() {
        for (j, v) in vs.iter().enumerate() {
            assert_eq!(v.len(), d, "trimmed_mean: length mismatch");
            buf[j] = v[i];
        }
        buf.sort_by(|a, b| a.partial_cmp(b).unwrap_or(std::cmp::Ordering::Less));
        *o = buf[trim..n - trim].iter().sum::<f32>() / keep;
    }
    out
}

/// Full pairwise squared-distance matrix (symmetric, zero diagonal).
///
/// # Panics
///
/// Panics if vector lengths differ.
pub fn pairwise_sq_distances(vs: &[&[f32]]) -> Vec<Vec<f32>> {
    let n = vs.len();
    let mut m = vec![vec![0.0f32; n]; n];
    for i in 0..n {
        for j in (i + 1)..n {
            let d = sq_distance(vs[i], vs[j]);
            m[i][j] = d;
            m[j][i] = d;
        }
    }
    m
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dot_and_norms() {
        assert_eq!(dot(&[1.0, 2.0], &[3.0, 4.0]), 11.0);
        assert_eq!(l2_norm(&[3.0, 4.0]), 5.0);
        assert_eq!(sq_distance(&[0.0, 0.0], &[3.0, 4.0]), 25.0);
        assert_eq!(l2_distance(&[0.0, 0.0], &[3.0, 4.0]), 5.0);
    }

    #[test]
    fn arithmetic() {
        assert_eq!(add(&[1.0], &[2.0]), vec![3.0]);
        assert_eq!(sub(&[1.0], &[2.0]), vec![-1.0]);
        assert_eq!(scale(&[2.0, -1.0], 3.0), vec![6.0, -3.0]);
        let mut a = vec![1.0, 1.0];
        axpy_in_place(&mut a, 2.0, &[1.0, 2.0]);
        assert_eq!(a, vec![3.0, 5.0]);
    }

    #[test]
    fn unit_and_sign() {
        assert_eq!(unit(&[3.0, 4.0]), vec![0.6, 0.8]);
        assert_eq!(unit(&[0.0, 0.0]), vec![0.0, 0.0]);
        assert_eq!(sign(&[-2.0, 0.0, 5.0]), vec![-1.0, 0.0, 1.0]);
    }

    #[test]
    fn mean_and_std() {
        let a = [1.0f32, 10.0];
        let b = [3.0f32, 10.0];
        let m = mean(&[&a, &b]);
        assert_eq!(m, vec![2.0, 10.0]);
        let s = std_dev(&[&a, &b]);
        assert_eq!(s, vec![1.0, 0.0]);
    }

    #[test]
    fn median_odd_even() {
        let a = [1.0f32];
        let b = [5.0f32];
        let c = [3.0f32];
        assert_eq!(median(&[&a, &b, &c]), vec![3.0]);
        assert_eq!(median(&[&a, &b]), vec![3.0]);
    }

    #[test]
    fn median_resists_one_outlier() {
        let a = [1.0f32];
        let b = [2.0f32];
        let c = [1e9f32];
        assert_eq!(median(&[&a, &b, &c]), vec![2.0]);
    }

    #[test]
    fn trimmed_mean_drops_extremes() {
        let vs: Vec<Vec<f32>> = vec![vec![-100.0], vec![1.0], vec![2.0], vec![3.0], vec![100.0]];
        let refs: Vec<&[f32]> = vs.iter().map(|v| v.as_slice()).collect();
        assert_eq!(trimmed_mean(&refs, 1), vec![2.0]);
    }

    #[test]
    #[should_panic(expected = "trim")]
    fn trimmed_mean_rejects_overtrim() {
        let vs: Vec<Vec<f32>> = vec![vec![1.0], vec![2.0]];
        let refs: Vec<&[f32]> = vs.iter().map(|v| v.as_slice()).collect();
        let _ = trimmed_mean(&refs, 1);
    }

    #[test]
    fn pairwise_matrix_is_symmetric() {
        let vs: Vec<Vec<f32>> = vec![vec![0.0, 0.0], vec![3.0, 4.0], vec![6.0, 8.0]];
        let refs: Vec<&[f32]> = vs.iter().map(|v| v.as_slice()).collect();
        let m = pairwise_sq_distances(&refs);
        assert_eq!(m[0][1], 25.0);
        assert_eq!(m[1][0], 25.0);
        assert_eq!(m[0][2], 100.0);
        assert_eq!(m[1][1], 0.0);
    }
}
