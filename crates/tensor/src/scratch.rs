//! Thread-local, grow-only scratch arenas for the hot compute path.
//!
//! Every kernel that used to allocate a temporary `Vec<f32>` per call
//! (packed GEMM panels, im2col column matrices, conv gradient lowering
//! buffers) instead borrows a purpose-keyed buffer from the current
//! thread's arena and returns it on drop. Buffers only ever grow, so a
//! steady-state training round performs zero hot-loop allocations after
//! the first round warms each worker's arena.
//!
//! Arenas are generic over the [`Element`] type: `f32` for compute
//! buffers, [`crate::quant::F16`] / `i8` for quantized-transport staging
//! (one independent arena array per concrete element type, so mixed-type
//! checkouts of the same [`Purpose`] never alias).
//!
//! # Ownership rules (DESIGN.md §4b)
//!
//! - Buffers are **thread-local**: a [`ScratchBuf`] never crosses threads,
//!   so arenas need no locks and cannot introduce cross-thread
//!   nondeterminism.
//! - Each [`Purpose`] is a distinct slot; taking a buffer *removes* it
//!   from the arena, so nested same-purpose takes yield an independent
//!   (freshly grown) buffer instead of aliasing — correct, just unpooled.
//!   Kernels therefore keep purposes disjoint along any call chain.
//! - [`scratch_f32`] hands back **unspecified contents** (stale data from
//!   earlier uses on this thread). Callers must fully overwrite every
//!   element they later read — `im2col` and GEMM panel packing qualify.
//!   Accumulation targets (`+=` kernels) must use [`scratch_zeroed`].
//! - Determinism: buffer *contents* a kernel reads are always either
//!   freshly written or freshly zeroed, so results cannot depend on what
//!   previously ran on the thread; only capacity (a non-observable) is
//!   reused.

use std::cell::RefCell;
use std::ops::{Deref, DerefMut};

/// What a scratch buffer is for. One arena slot per variant (per element
/// type).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Purpose {
    /// Packed GEMM `b`-panel (`matmul` cache blocking).
    PackedPanel = 0,
    /// im2col column matrix whose every element is overwritten
    /// (conv-transpose backward lowering).
    Im2col = 1,
    /// conv backward `grad_col` accumulator (zeroed: col2im accumulates).
    GradCol = 2,
    /// conv-transpose forward column accumulator (zeroed: col2im
    /// accumulates the result into the output image).
    ConvCol = 3,
    /// Per-coordinate sort column for `vecops::median_into` /
    /// `vecops::trimmed_mean_into` (one client value per slot).
    SortColumn = 4,
    /// Coordinate-wise mean staging for `vecops::std_dev_into`.
    CoordMean = 5,
    /// Per-client squared-distance row for `aggregation` Krum scoring.
    KrumRow = 6,
    /// Bulyan stage-2 column workspace (gather + sort + closeness).
    BulyanCols = 7,
    /// Pairwise distance/similarity tile for the blocked O(n²) kernels
    /// (`vecops::pairwise_tile_into` callers).
    DistTile = 8,
    /// Quantized-transport encode staging (`quant::roundtrip_in_place`).
    QuantEncode = 9,
    /// Quantized-transport decode staging (streaming server ingest).
    QuantDecode = 10,
}

/// Number of [`Purpose`] variants — the arena array length.
#[doc(hidden)]
pub const PURPOSES: usize = 11;

/// An element type that scratch arenas can pool.
///
/// Implementations exist for `f32`, `i8`, and [`crate::quant::F16`]; each
/// concrete type owns an independent `thread_local!` arena array (Rust has
/// no generic statics), reached through [`Element::with_arena`].
pub trait Element: Copy + Send + 'static {
    /// The value [`scratch_zeroed_of`] fills with (the additive identity).
    const ZERO: Self;

    /// Widens this element to `f32` — the identity for `f32` itself, so
    /// the generic vecops entry kernels monomorphize to exactly the
    /// historical f32 float-op sequence (bitwise-identity guarantee).
    fn to_f32(self) -> f32;

    /// Runs `f` against this type's thread-local arena array. Returns
    /// `None` only during thread teardown, when the arena is gone.
    #[doc(hidden)]
    fn with_arena<R>(f: impl FnOnce(&RefCell<[Vec<Self>; PURPOSES]>) -> R) -> Option<R>;
}

/// Implements [`Element`] for a concrete type by declaring its private
/// per-thread arena array. `$to_f32` is the widening closure.
macro_rules! impl_element {
    ($t:ty, $zero:expr, $to_f32:expr, $tls:ident) => {
        ::std::thread_local! {
            static $tls: ::std::cell::RefCell<[::std::vec::Vec<$t>; $crate::scratch::PURPOSES]> =
                ::std::cell::RefCell::new(::std::default::Default::default());
        }
        impl $crate::scratch::Element for $t {
            const ZERO: Self = $zero;
            #[inline(always)]
            fn to_f32(self) -> f32 {
                ($to_f32)(self)
            }
            fn with_arena<R>(
                f: impl FnOnce(
                    &::std::cell::RefCell<[::std::vec::Vec<Self>; $crate::scratch::PURPOSES]>,
                ) -> R,
            ) -> ::std::option::Option<R> {
                $tls.try_with(f).ok()
            }
        }
    };
}
pub(crate) use impl_element;

impl_element!(f32, 0.0, |v: f32| v, ARENA_F32);
impl_element!(i8, 0, |v: i8| f32::from(v), ARENA_I8);

fn take<T: Element>(purpose: Purpose) -> Vec<T> {
    T::with_arena(|a| std::mem::take(&mut a.borrow_mut()[purpose as usize])).unwrap_or_default()
}

/// A scratch buffer checked out of the current thread's arena. Derefs to
/// `[T]` of exactly the requested length; the backing allocation is
/// returned to the arena on drop.
#[derive(Debug)]
pub struct ScratchBuf<T: Element = f32> {
    purpose: Purpose,
    buf: Vec<T>,
    len: usize,
}

impl<T: Element> Deref for ScratchBuf<T> {
    type Target = [T];

    fn deref(&self) -> &[T] {
        &self.buf[..self.len]
    }
}

impl<T: Element> DerefMut for ScratchBuf<T> {
    fn deref_mut(&mut self) -> &mut [T] {
        &mut self.buf[..self.len]
    }
}

impl<T: Element> Drop for ScratchBuf<T> {
    fn drop(&mut self) {
        let buf = std::mem::take(&mut self.buf);
        // `with_arena` is `None` during thread teardown (arena gone); a
        // guard dropped then just frees its buffer instead of panicking.
        let _ = T::with_arena(|a| {
            let slot = &mut a.borrow_mut()[self.purpose as usize];
            // Keep whichever allocation is larger (grow-only pooling;
            // also resolves nested same-purpose guards racing to return).
            if buf.capacity() > slot.capacity() {
                *slot = buf;
            }
        });
    }
}

/// Borrows a `len`-element scratch buffer with **unspecified contents**.
/// Only for uses that fully overwrite every element they later read.
pub fn scratch_of<T: Element>(purpose: Purpose, len: usize) -> ScratchBuf<T> {
    let mut buf = take::<T>(purpose);
    if buf.len() < len {
        // fabcheck::allow(alloc_on_hot_path): grow-only arena fill — zero
        // steady-state allocations, witnessed by tensor/tests/alloc_guard.rs.
        buf.resize(len, T::ZERO);
    }
    ScratchBuf { purpose, buf, len }
}

/// Borrows a `len`-element scratch buffer guaranteed to be all
/// [`Element::ZERO`]. Required for accumulation targets (`+=` kernels).
pub fn scratch_zeroed_of<T: Element>(purpose: Purpose, len: usize) -> ScratchBuf<T> {
    let mut buf = take::<T>(purpose);
    buf.clear();
    // fabcheck::allow(alloc_on_hot_path): grow-only arena fill — the clear
    // keeps capacity, so a warm arena re-zeroes without allocating.
    buf.resize(len, T::ZERO);
    ScratchBuf { purpose, buf, len }
}

/// Borrows a `len`-element `f32` scratch buffer with **unspecified
/// contents**. Only for uses that fully overwrite every element they later
/// read.
pub fn scratch_f32(purpose: Purpose, len: usize) -> ScratchBuf {
    scratch_of::<f32>(purpose, len)
}

/// Borrows a `len`-element `f32` scratch buffer guaranteed to be all
/// zeros. Required for accumulation targets (`+=` kernels).
pub fn scratch_zeroed(purpose: Purpose, len: usize) -> ScratchBuf {
    scratch_zeroed_of::<f32>(purpose, len)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn f32_capacity(purpose: Purpose) -> usize {
        f32::with_arena(|a| a.borrow()[purpose as usize].capacity()).unwrap()
    }

    #[test]
    fn zeroed_is_zero_after_dirty_use() {
        {
            let mut s = scratch_zeroed(Purpose::GradCol, 128);
            for v in s.iter_mut() {
                *v = 7.5;
            }
        }
        let s = scratch_zeroed(Purpose::GradCol, 64);
        assert!(s.iter().all(|&v| v == 0.0));
        assert_eq!(s.len(), 64);
    }

    #[test]
    fn allocation_is_reused_across_checkouts() {
        let p1 = {
            let s = scratch_f32(Purpose::PackedPanel, 256);
            s.as_ptr() as usize
        };
        let p2 = {
            let s = scratch_f32(Purpose::PackedPanel, 100);
            s.as_ptr() as usize
        };
        assert_eq!(p1, p2, "smaller request must reuse the same allocation");
    }

    #[test]
    fn arena_grows_monotonically() {
        {
            let _ = scratch_f32(Purpose::Im2col, 10);
        }
        let cap_small = f32_capacity(Purpose::Im2col);
        {
            let _ = scratch_f32(Purpose::Im2col, 10_000);
        }
        let cap_big = f32_capacity(Purpose::Im2col);
        assert!(cap_small >= 10 && cap_big >= 10_000);
        {
            let _ = scratch_f32(Purpose::Im2col, 5);
        }
        let cap_after = f32_capacity(Purpose::Im2col);
        assert!(cap_after >= cap_big, "arena must never shrink");
    }

    #[test]
    fn distinct_purposes_are_independent() {
        let mut a = scratch_zeroed(Purpose::GradCol, 16);
        let mut b = scratch_zeroed(Purpose::ConvCol, 16);
        a[0] = 1.0;
        b[0] = 2.0;
        assert_eq!(a[0], 1.0);
        assert_eq!(b[0], 2.0);
    }

    #[test]
    fn nested_same_purpose_takes_are_disjoint() {
        let mut outer = scratch_zeroed(Purpose::Im2col, 32);
        outer[0] = 3.0;
        {
            let inner = scratch_zeroed(Purpose::Im2col, 32);
            assert_eq!(inner[0], 0.0);
            assert_ne!(outer.as_ptr(), inner.as_ptr());
        }
        assert_eq!(outer[0], 3.0);
    }

    #[test]
    fn typed_arenas_are_independent_per_element_type() {
        let mut qf = scratch_zeroed_of::<f32>(Purpose::QuantEncode, 8);
        let mut qi = scratch_zeroed_of::<i8>(Purpose::QuantEncode, 8);
        qf[0] = 1.5;
        qi[0] = -7;
        assert_eq!(qf[0], 1.5);
        assert_eq!(qi[0], -7);
        drop(qi);
        let qi2 = scratch_zeroed_of::<i8>(Purpose::QuantEncode, 4);
        assert!(qi2.iter().all(|&v| v == 0));
    }
}
