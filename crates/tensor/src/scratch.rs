//! Thread-local, grow-only scratch arenas for the hot compute path.
//!
//! Every kernel that used to allocate a temporary `Vec<f32>` per call
//! (packed GEMM panels, im2col column matrices, conv gradient lowering
//! buffers) instead borrows a purpose-keyed buffer from the current
//! thread's arena and returns it on drop. Buffers only ever grow, so a
//! steady-state training round performs zero hot-loop allocations after
//! the first round warms each worker's arena.
//!
//! # Ownership rules (DESIGN.md §4b)
//!
//! - Buffers are **thread-local**: a [`ScratchBuf`] never crosses threads,
//!   so arenas need no locks and cannot introduce cross-thread
//!   nondeterminism.
//! - Each [`Purpose`] is a distinct slot; taking a buffer *removes* it
//!   from the arena, so nested same-purpose takes yield an independent
//!   (freshly grown) buffer instead of aliasing — correct, just unpooled.
//!   Kernels therefore keep purposes disjoint along any call chain.
//! - [`scratch_f32`] hands back **unspecified contents** (stale data from
//!   earlier uses on this thread). Callers must fully overwrite every
//!   element they later read — `im2col` and GEMM panel packing qualify.
//!   Accumulation targets (`+=` kernels) must use [`scratch_zeroed`].
//! - Determinism: buffer *contents* a kernel reads are always either
//!   freshly written or freshly zeroed, so results cannot depend on what
//!   previously ran on the thread; only capacity (a non-observable) is
//!   reused.

use std::cell::RefCell;
use std::ops::{Deref, DerefMut};

/// What a scratch buffer is for. One arena slot per variant.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Purpose {
    /// Packed GEMM `b`-panel (`matmul` cache blocking).
    PackedPanel = 0,
    /// im2col column matrix whose every element is overwritten
    /// (conv-transpose backward lowering).
    Im2col = 1,
    /// conv backward `grad_col` accumulator (zeroed: col2im accumulates).
    GradCol = 2,
    /// conv-transpose forward column accumulator (zeroed: col2im
    /// accumulates the result into the output image).
    ConvCol = 3,
    /// Per-coordinate sort column for `vecops::median_into` /
    /// `vecops::trimmed_mean_into` (one client value per slot).
    SortColumn = 4,
    /// Coordinate-wise mean staging for `vecops::std_dev_into`.
    CoordMean = 5,
    /// Per-client squared-distance row for `aggregation` Krum scoring.
    KrumRow = 6,
    /// Bulyan stage-2 column workspace (gather + sort + closeness).
    BulyanCols = 7,
}

const PURPOSES: usize = 8;

thread_local! {
    static ARENA: RefCell<[Vec<f32>; PURPOSES]> = RefCell::new(Default::default());
}

fn take(purpose: Purpose) -> Vec<f32> {
    ARENA.with(|a| std::mem::take(&mut a.borrow_mut()[purpose as usize]))
}

/// A scratch buffer checked out of the current thread's arena. Derefs to
/// `[f32]` of exactly the requested length; the backing allocation is
/// returned to the arena on drop.
#[derive(Debug)]
pub struct ScratchBuf {
    purpose: Purpose,
    buf: Vec<f32>,
    len: usize,
}

impl Deref for ScratchBuf {
    type Target = [f32];

    fn deref(&self) -> &[f32] {
        &self.buf[..self.len]
    }
}

impl DerefMut for ScratchBuf {
    fn deref_mut(&mut self) -> &mut [f32] {
        &mut self.buf[..self.len]
    }
}

impl Drop for ScratchBuf {
    fn drop(&mut self) {
        let buf = std::mem::take(&mut self.buf);
        // `try_with`: a guard dropped during thread teardown (arena gone)
        // just frees its buffer instead of panicking.
        let _ = ARENA.try_with(|a| {
            let slot = &mut a.borrow_mut()[self.purpose as usize];
            // Keep whichever allocation is larger (grow-only pooling;
            // also resolves nested same-purpose guards racing to return).
            if buf.capacity() > slot.capacity() {
                *slot = buf;
            }
        });
    }
}

/// Borrows a `len`-element scratch buffer with **unspecified contents**.
/// Only for uses that fully overwrite every element they later read.
pub fn scratch_f32(purpose: Purpose, len: usize) -> ScratchBuf {
    let mut buf = take(purpose);
    if buf.len() < len {
        // fabcheck::allow(alloc_on_hot_path): grow-only arena fill — zero
        // steady-state allocations, witnessed by tensor/tests/alloc_guard.rs.
        buf.resize(len, 0.0);
    }
    ScratchBuf { purpose, buf, len }
}

/// Borrows a `len`-element scratch buffer guaranteed to be all zeros.
/// Required for accumulation targets (`+=` kernels).
pub fn scratch_zeroed(purpose: Purpose, len: usize) -> ScratchBuf {
    let mut buf = take(purpose);
    buf.clear();
    // fabcheck::allow(alloc_on_hot_path): grow-only arena fill — the clear
    // keeps capacity, so a warm arena re-zeroes without allocating.
    buf.resize(len, 0.0);
    ScratchBuf { purpose, buf, len }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zeroed_is_zero_after_dirty_use() {
        {
            let mut s = scratch_zeroed(Purpose::GradCol, 128);
            for v in s.iter_mut() {
                *v = 7.5;
            }
        }
        let s = scratch_zeroed(Purpose::GradCol, 64);
        assert!(s.iter().all(|&v| v == 0.0));
        assert_eq!(s.len(), 64);
    }

    #[test]
    fn allocation_is_reused_across_checkouts() {
        let p1 = {
            let s = scratch_f32(Purpose::PackedPanel, 256);
            s.as_ptr() as usize
        };
        let p2 = {
            let s = scratch_f32(Purpose::PackedPanel, 100);
            s.as_ptr() as usize
        };
        assert_eq!(p1, p2, "smaller request must reuse the same allocation");
    }

    #[test]
    fn arena_grows_monotonically() {
        {
            let _ = scratch_f32(Purpose::Im2col, 10);
        }
        let cap_small = ARENA.with(|a| a.borrow()[Purpose::Im2col as usize].capacity());
        {
            let _ = scratch_f32(Purpose::Im2col, 10_000);
        }
        let cap_big = ARENA.with(|a| a.borrow()[Purpose::Im2col as usize].capacity());
        assert!(cap_small >= 10 && cap_big >= 10_000);
        {
            let _ = scratch_f32(Purpose::Im2col, 5);
        }
        let cap_after = ARENA.with(|a| a.borrow()[Purpose::Im2col as usize].capacity());
        assert!(cap_after >= cap_big, "arena must never shrink");
    }

    #[test]
    fn distinct_purposes_are_independent() {
        let mut a = scratch_zeroed(Purpose::GradCol, 16);
        let mut b = scratch_zeroed(Purpose::ConvCol, 16);
        a[0] = 1.0;
        b[0] = 2.0;
        assert_eq!(a[0], 1.0);
        assert_eq!(b[0], 2.0);
    }

    #[test]
    fn nested_same_purpose_takes_are_disjoint() {
        let mut outer = scratch_zeroed(Purpose::Im2col, 32);
        outer[0] = 3.0;
        {
            let inner = scratch_zeroed(Purpose::Im2col, 32);
            assert_eq!(inner[0], 0.0);
            assert_ne!(outer.as_ptr(), inner.as_ptr());
        }
        assert_eq!(outer[0], 3.0);
    }
}
