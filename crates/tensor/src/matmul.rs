//! Matrix multiplication kernels.
//!
//! All matrices are dense row-major `f32` slices with explicit dimensions.
//! The `ikj` loop order keeps the innermost loop streaming over contiguous
//! memory of both the output row and the `b` row, which is the single most
//! important optimization for the convolution-by-im2col path.

use crate::{Tensor, TensorError};

/// Computes `c += a (m×k) · b (k×n)` into a caller-provided buffer.
///
/// # Panics
///
/// Debug-asserts that the slice lengths match the given dimensions.
pub fn matmul_into(a: &[f32], b: &[f32], c: &mut [f32], m: usize, k: usize, n: usize) {
    debug_assert_eq!(a.len(), m * k);
    debug_assert_eq!(b.len(), k * n);
    debug_assert_eq!(c.len(), m * n);
    for i in 0..m {
        let a_row = &a[i * k..(i + 1) * k];
        let c_row = &mut c[i * n..(i + 1) * n];
        for (p, &a_ip) in a_row.iter().enumerate() {
            if a_ip == 0.0 {
                continue;
            }
            let b_row = &b[p * n..(p + 1) * n];
            for (c_v, &b_v) in c_row.iter_mut().zip(b_row) {
                *c_v += a_ip * b_v;
            }
        }
    }
}

/// Multiplies two rank-2 tensors: `a (m×k) · b (k×n) -> (m×n)`.
///
/// # Errors
///
/// Returns [`TensorError::RankMismatch`] for non-matrix inputs and
/// [`TensorError::ShapeMismatch`] when the inner dimensions disagree.
///
/// ```
/// use fabflip_tensor::{matmul, Tensor};
/// let a = Tensor::from_vec(vec![2, 2], vec![1.0, 2.0, 3.0, 4.0])?;
/// let i = Tensor::from_vec(vec![2, 2], vec![1.0, 0.0, 0.0, 1.0])?;
/// assert_eq!(matmul(&a, &i)?.data(), a.data());
/// # Ok::<(), fabflip_tensor::TensorError>(())
/// ```
pub fn matmul(a: &Tensor, b: &Tensor) -> Result<Tensor, TensorError> {
    if a.rank() != 2 {
        return Err(TensorError::RankMismatch { op: "matmul", expected: 2, actual: a.rank() });
    }
    if b.rank() != 2 {
        return Err(TensorError::RankMismatch { op: "matmul", expected: 2, actual: b.rank() });
    }
    let (m, k) = (a.shape()[0], a.shape()[1]);
    let (k2, n) = (b.shape()[0], b.shape()[1]);
    if k != k2 {
        return Err(TensorError::ShapeMismatch {
            op: "matmul",
            lhs: a.shape().to_vec(),
            rhs: b.shape().to_vec(),
        });
    }
    let mut c = Tensor::zeros(vec![m, n]);
    matmul_into(a.data(), b.data(), c.data_mut(), m, k, n);
    Ok(c)
}

/// Computes `aᵀ (k×m)ᵀ · b (k×n) -> (m×n)` without materializing `aᵀ`.
///
/// `a` is stored as `k×m`. Used for weight gradients (`grad_w = δᵀ·x`).
pub fn matmul_transpose_a(a: &[f32], b: &[f32], c: &mut [f32], m: usize, k: usize, n: usize) {
    debug_assert_eq!(a.len(), k * m);
    debug_assert_eq!(b.len(), k * n);
    debug_assert_eq!(c.len(), m * n);
    for p in 0..k {
        let a_row = &a[p * m..(p + 1) * m];
        let b_row = &b[p * n..(p + 1) * n];
        for (i, &a_pi) in a_row.iter().enumerate() {
            if a_pi == 0.0 {
                continue;
            }
            let c_row = &mut c[i * n..(i + 1) * n];
            for (c_v, &b_v) in c_row.iter_mut().zip(b_row) {
                *c_v += a_pi * b_v;
            }
        }
    }
}

/// Computes `a (m×k) · bᵀ (n×k)ᵀ -> (m×n)` without materializing `bᵀ`.
///
/// `b` is stored as `n×k`. Used for input gradients of dense layers.
pub fn matmul_transpose_b(a: &[f32], b: &[f32], c: &mut [f32], m: usize, k: usize, n: usize) {
    debug_assert_eq!(a.len(), m * k);
    debug_assert_eq!(b.len(), n * k);
    debug_assert_eq!(c.len(), m * n);
    for i in 0..m {
        let a_row = &a[i * k..(i + 1) * k];
        let c_row = &mut c[i * n..(i + 1) * n];
        for (j, c_v) in c_row.iter_mut().enumerate() {
            let b_row = &b[j * k..(j + 1) * k];
            let mut acc = 0.0f32;
            for (&a_v, &b_v) in a_row.iter().zip(b_row) {
                acc += a_v * b_v;
            }
            *c_v += acc;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(shape: &[usize], data: &[f32]) -> Tensor {
        Tensor::from_vec(shape.to_vec(), data.to_vec()).unwrap()
    }

    #[test]
    fn matmul_known_result() {
        let a = t(&[2, 3], &[1.0, 2.0, 3.0, 4.0, 5.0, 6.0]);
        let b = t(&[3, 2], &[7.0, 8.0, 9.0, 10.0, 11.0, 12.0]);
        let c = matmul(&a, &b).unwrap();
        assert_eq!(c.shape(), &[2, 2]);
        assert_eq!(c.data(), &[58.0, 64.0, 139.0, 154.0]);
    }

    #[test]
    fn matmul_rejects_bad_shapes() {
        let a = t(&[2, 3], &[0.0; 6]);
        let b = t(&[2, 3], &[0.0; 6]);
        assert!(matches!(matmul(&a, &b), Err(TensorError::ShapeMismatch { .. })));
        let v = t(&[3], &[0.0; 3]);
        assert!(matches!(matmul(&v, &b), Err(TensorError::RankMismatch { .. })));
    }

    #[test]
    fn transpose_a_matches_explicit_transpose() {
        // a is stored k×m = 3×2; logical op is (2×3)·(3×2).
        let a_t = [1.0, 4.0, 2.0, 5.0, 3.0, 6.0]; // transpose of [[1,2,3],[4,5,6]]
        let b = [7.0, 8.0, 9.0, 10.0, 11.0, 12.0];
        let mut c = [0.0f32; 4];
        matmul_transpose_a(&a_t, &b, &mut c, 2, 3, 2);
        assert_eq!(c, [58.0, 64.0, 139.0, 154.0]);
    }

    #[test]
    fn transpose_b_matches_explicit_transpose() {
        // b is stored n×k = 2×3; logical op is (2×3)·(3×2).
        let a = [1.0, 2.0, 3.0, 4.0, 5.0, 6.0];
        let b_t = [7.0, 9.0, 11.0, 8.0, 10.0, 12.0]; // transpose of [[7,8],[9,10],[11,12]]
        let mut c = [0.0f32; 4];
        matmul_transpose_b(&a, &b_t, &mut c, 2, 3, 2);
        assert_eq!(c, [58.0, 64.0, 139.0, 154.0]);
    }

    #[test]
    fn matmul_into_accumulates() {
        let a = [1.0, 0.0, 0.0, 1.0];
        let b = [1.0, 2.0, 3.0, 4.0];
        let mut c = [10.0, 10.0, 10.0, 10.0];
        matmul_into(&a, &b, &mut c, 2, 2, 2);
        assert_eq!(c, [11.0, 12.0, 13.0, 14.0]);
    }
}
