//! Matrix multiplication kernels.
//!
//! All matrices are dense row-major `f32` slices with explicit dimensions.
//! Each operation exists in two forms sharing one per-row micro-kernel:
//!
//! * a `*_serial` reference that walks rows in order on the calling thread;
//! * the public entry point, which row-parallelizes across the
//!   [`crate::par`] thread budget once the FLOP count crosses
//!   [`PAR_FLOP_THRESHOLD`].
//!
//! The micro-kernels fix each output element's floating-point operation
//! sequence as a function of the element's position and the matrix
//! dimensions alone: per `k`-panel the partial dot product accumulates in
//! registers via an ascending-`p` FMA chain and is flushed into `c` with a
//! single add. The `MR`-row block path and the single-row remainder path
//! follow the exact same per-element sequence, and row partitioning never
//! splits an element's accumulation, so the parallel results are bitwise
//! identical to the serial reference at any thread count — see
//! `crates/tensor/src/proptests.rs`.
//!
//! The register tile itself ([`CpuBackend::gemm_tile`]) and the row-dot
//! kernel ([`CpuBackend::dot_lanes`]) are provided by the active
//! [`crate::backend`]; because each output element's chain is independent
//! and every backend uses correctly-rounded FMAs in the same ascending-`p`
//! order, GEMM results are bitwise identical across scalar, AVX2, and
//! AVX-512 backends (DESIGN.md §4f).
//!
//! The kernels are cache-blocked: `k` is tiled in `KC` panels so a panel of
//! `b` stays in L2 across an output row block, `n` is tiled in `NC` columns
//! so the active output slices stay in L1, and rows are processed `MR` at a
//! time so each loaded `b` row is reused `MR` times. Within a column tile,
//! `WR`-wide stacks of accumulators stay in SIMD registers across the whole
//! `k` panel, so `c` is touched once per panel instead of once per `p`. The
//! dense path carries no `a_ip == 0.0` skip (the branch defeated
//! vectorization and only helped on the mostly-zero one-hot matrices that
//! no hot path multiplies today).

use crate::backend::{self, CpuBackend, MR};
use crate::scratch::{scratch_f32, Purpose, ScratchBuf};
use crate::{par, Tensor, TensorError};

/// `k`-panel height: one panel of `b` (`KC·NC` floats) stays L2-resident.
const KC: usize = 256;
/// Column-tile width: an `MR`-row output tile (`MR·NC` floats) fits in L1.
const NC: usize = 1024;

/// Minimum `2·m·k·n` FLOP count before the kernels fan out to threads.
/// Below this the dispatch overhead outweighs the parallel win.
pub const PAR_FLOP_THRESHOLD: u64 = 1 << 23;

fn flops(m: usize, k: usize, n: usize) -> u64 {
    2 * m as u64 * k as u64 * n as u64
}

/// Picks a row-chunk size that spreads `m` rows over the thread budget.
fn rows_per_chunk(m: usize) -> usize {
    let threads = par::max_threads();
    // Aim for a few chunks per thread so uneven rows still balance.
    m.div_ceil(threads * 4).max(1)
}

// ------------------------------------------------------------ micro-kernels

/// Minimum row count before a `b` panel is copied into a contiguous
/// scratch buffer. Packing costs one sweep over the panel and pays off
/// through TLB-friendly streaming once enough `MR` blocks reuse it; below
/// the threshold the kernels read `b` in place. Results are bitwise
/// identical either way — packing changes layout, not operation order.
const PACK_MIN_ROWS: usize = 16;

/// Copies rows `pb..pe`, columns `jb..jb+width` of row-major `b` into the
/// head of `scratch`, returning the packed panel.
fn pack_panel<'s>(
    b: &[f32],
    n: usize,
    jb: usize,
    pb: usize,
    pe: usize,
    width: usize,
    scratch: &'s mut [f32],
) -> &'s [f32] {
    let packed = &mut scratch[..(pe - pb) * width];
    for (q, p) in (pb..pe).enumerate() {
        packed[q * width..(q + 1) * width].copy_from_slice(&b[p * n + jb..p * n + jb + width]);
    }
    packed
}

/// Checks out a thread-local scratch buffer sized for the largest panel a
/// `k×n` problem can need. Contents are unspecified — `pack_panel` fully
/// overwrites the region the micro-kernels read.
fn panel_scratch(k: usize, n: usize) -> ScratchBuf {
    scratch_f32(Purpose::PackedPanel, KC.min(k) * NC.min(n))
}

/// Computes `c_rows += a_rows · b` for `rows` output rows starting at
/// global row `row0`. `a` and `b` are the full input matrices; `c_rows` is
/// exactly `rows·n` long. Full `MR`-row blocks and leftover single rows run
/// the same [`CpuBackend::gemm_tile`], so their per-element math is
/// identical.
#[allow(clippy::too_many_arguments)]
fn kernel_into(
    be: &dyn CpuBackend,
    a: &[f32],
    b: &[f32],
    c_rows: &mut [f32],
    row0: usize,
    rows: usize,
    k: usize,
    n: usize,
) {
    debug_assert_eq!(c_rows.len(), rows * n);
    let mut scratch = (rows >= PACK_MIN_ROWS).then(|| panel_scratch(k, n));
    for jb in (0..n).step_by(NC) {
        let je = (jb + NC).min(n);
        let width = je - jb;
        for pb in (0..k).step_by(KC) {
            let pe = (pb + KC).min(k);
            let (bp, b_base, b_stride): (&[f32], usize, usize) = match scratch.as_mut() {
                Some(s) => (pack_panel(b, n, jb, pb, pe, width, s), 0, width),
                None => (b, pb * n + jb, n),
            };
            let mut i = 0;
            while i + MR <= rows {
                // A(r, p) = a[(row0+i+r)·k + pb + p]: row stride k, p
                // stride 1.
                be.gemm_tile(
                    a,
                    (row0 + i) * k + pb,
                    k,
                    1,
                    MR,
                    pe - pb,
                    bp,
                    b_base,
                    b_stride,
                    width,
                    c_rows,
                    i * n + jb,
                    n,
                );
                i += MR;
            }
            while i < rows {
                be.gemm_tile(
                    a,
                    (row0 + i) * k + pb,
                    k,
                    1,
                    1,
                    pe - pb,
                    bp,
                    b_base,
                    b_stride,
                    width,
                    c_rows,
                    i * n + jb,
                    n,
                );
                i += 1;
            }
        }
    }
}

/// Computes `c_rows += aᵀ · b` rows (`a` stored `k×m`): the transpose-A
/// analogue of [`kernel_into`]. The `MR` per-row broadcasts read `MR`
/// consecutive elements of each `a` row, so the strided access stays cheap.
#[allow(clippy::too_many_arguments)]
fn kernel_transpose_a(
    be: &dyn CpuBackend,
    a: &[f32],
    b: &[f32],
    c_rows: &mut [f32],
    row0: usize,
    rows: usize,
    m: usize,
    k: usize,
    n: usize,
) {
    debug_assert_eq!(c_rows.len(), rows * n);
    let mut scratch = (rows >= PACK_MIN_ROWS).then(|| panel_scratch(k, n));
    for jb in (0..n).step_by(NC) {
        let je = (jb + NC).min(n);
        let width = je - jb;
        for pb in (0..k).step_by(KC) {
            let pe = (pb + KC).min(k);
            let (bp, b_base, b_stride): (&[f32], usize, usize) = match scratch.as_mut() {
                Some(s) => (pack_panel(b, n, jb, pb, pe, width, s), 0, width),
                None => (b, pb * n + jb, n),
            };
            let mut i = 0;
            while i + MR <= rows {
                // A(r, p) = a[(pb+p)·m + row0 + i + r]: row stride 1, p
                // stride m (the transpose walk).
                be.gemm_tile(
                    a,
                    pb * m + row0 + i,
                    1,
                    m,
                    MR,
                    pe - pb,
                    bp,
                    b_base,
                    b_stride,
                    width,
                    c_rows,
                    i * n + jb,
                    n,
                );
                i += MR;
            }
            while i < rows {
                be.gemm_tile(
                    a,
                    pb * m + row0 + i,
                    1,
                    m,
                    1,
                    pe - pb,
                    bp,
                    b_base,
                    b_stride,
                    width,
                    c_rows,
                    i * n + jb,
                    n,
                );
                i += 1;
            }
        }
    }
}

/// Computes `c_rows += a_rows · bᵀ` (`b` stored `n×k`): row-against-row dot
/// products via [`CpuBackend::dot_lanes`] (the fixed 16-lane reduction
/// tree — identical across backends). Both operands stream contiguously,
/// so no `k`-tiling is needed; `j` is tiled to keep the active `b` rows
/// L2-resident across the row block.
#[allow(clippy::too_many_arguments)]
fn kernel_transpose_b(
    be: &dyn CpuBackend,
    a: &[f32],
    b: &[f32],
    c_rows: &mut [f32],
    row0: usize,
    rows: usize,
    k: usize,
    n: usize,
) {
    debug_assert_eq!(c_rows.len(), rows * n);
    let jc = (NC * KC / k.max(1)).max(8);
    for jb in (0..n).step_by(jc) {
        let je = (jb + jc).min(n);
        for i in 0..rows {
            let a_row = &a[(row0 + i) * k..(row0 + i + 1) * k];
            let c_row = &mut c_rows[i * n + jb..i * n + je];
            for (j, c_v) in (jb..je).zip(c_row.iter_mut()) {
                *c_v += be.dot_lanes(a_row, &b[j * k..(j + 1) * k]);
            }
        }
    }
}

// -------------------------------------------------------- serial reference

/// Serial reference for [`matmul_into`]: same micro-kernel, no threads.
pub fn matmul_into_serial(a: &[f32], b: &[f32], c: &mut [f32], m: usize, k: usize, n: usize) {
    debug_assert_eq!(a.len(), m * k);
    debug_assert_eq!(b.len(), k * n);
    debug_assert_eq!(c.len(), m * n);
    kernel_into(backend::active(), a, b, c, 0, m, k, n);
}

/// Serial reference for [`matmul_transpose_a`].
pub fn matmul_transpose_a_serial(
    a: &[f32],
    b: &[f32],
    c: &mut [f32],
    m: usize,
    k: usize,
    n: usize,
) {
    debug_assert_eq!(a.len(), k * m);
    debug_assert_eq!(b.len(), k * n);
    debug_assert_eq!(c.len(), m * n);
    kernel_transpose_a(backend::active(), a, b, c, 0, m, m, k, n);
}

/// Serial reference for [`matmul_transpose_b`].
pub fn matmul_transpose_b_serial(
    a: &[f32],
    b: &[f32],
    c: &mut [f32],
    m: usize,
    k: usize,
    n: usize,
) {
    debug_assert_eq!(a.len(), m * k);
    debug_assert_eq!(b.len(), n * k);
    debug_assert_eq!(c.len(), m * n);
    kernel_transpose_b(backend::active(), a, b, c, 0, m, k, n);
}

// ------------------------------------------------------- public entry points

/// Computes `c += a (m×k) · b (k×n)` into a caller-provided buffer.
///
/// Row-parallel above [`PAR_FLOP_THRESHOLD`]; bitwise identical to
/// [`matmul_into_serial`] at any thread count.
///
/// # Panics
///
/// Debug-asserts that the slice lengths match the given dimensions.
pub fn matmul_into(a: &[f32], b: &[f32], c: &mut [f32], m: usize, k: usize, n: usize) {
    debug_assert_eq!(a.len(), m * k);
    debug_assert_eq!(b.len(), k * n);
    debug_assert_eq!(c.len(), m * n);
    let be = backend::active();
    if flops(m, k, n) < PAR_FLOP_THRESHOLD || par::max_threads() == 1 {
        kernel_into(be, a, b, c, 0, m, k, n);
        return;
    }
    let rows = rows_per_chunk(m);
    par::for_each_chunk_mut(c, rows * n, |chunk, c_rows| {
        let row0 = chunk * rows;
        kernel_into(be, a, b, c_rows, row0, c_rows.len() / n, k, n);
    });
}

/// Computes `aᵀ (k×m)ᵀ · b (k×n) -> (m×n)` without materializing `aᵀ`.
///
/// `a` is stored as `k×m`. Used for weight gradients (`grad_w = δᵀ·x`).
pub fn matmul_transpose_a(a: &[f32], b: &[f32], c: &mut [f32], m: usize, k: usize, n: usize) {
    debug_assert_eq!(a.len(), k * m);
    debug_assert_eq!(b.len(), k * n);
    debug_assert_eq!(c.len(), m * n);
    let be = backend::active();
    if flops(m, k, n) < PAR_FLOP_THRESHOLD || par::max_threads() == 1 {
        kernel_transpose_a(be, a, b, c, 0, m, m, k, n);
        return;
    }
    let rows = rows_per_chunk(m);
    par::for_each_chunk_mut(c, rows * n, |chunk, c_rows| {
        let row0 = chunk * rows;
        kernel_transpose_a(be, a, b, c_rows, row0, c_rows.len() / n, m, k, n);
    });
}

/// Computes `a (m×k) · bᵀ (n×k)ᵀ -> (m×n)` without materializing `bᵀ`.
///
/// `b` is stored as `n×k`. Used for input gradients of dense layers.
pub fn matmul_transpose_b(a: &[f32], b: &[f32], c: &mut [f32], m: usize, k: usize, n: usize) {
    debug_assert_eq!(a.len(), m * k);
    debug_assert_eq!(b.len(), n * k);
    debug_assert_eq!(c.len(), m * n);
    let be = backend::active();
    if flops(m, k, n) < PAR_FLOP_THRESHOLD || par::max_threads() == 1 {
        kernel_transpose_b(be, a, b, c, 0, m, k, n);
        return;
    }
    let rows = rows_per_chunk(m);
    par::for_each_chunk_mut(c, rows * n, |chunk, c_rows| {
        let row0 = chunk * rows;
        kernel_transpose_b(be, a, b, c_rows, row0, c_rows.len() / n, k, n);
    });
}

/// Multiplies two rank-2 tensors: `a (m×k) · b (k×n) -> (m×n)`.
///
/// # Errors
///
/// Returns [`TensorError::RankMismatch`] for non-matrix inputs and
/// [`TensorError::ShapeMismatch`] when the inner dimensions disagree.
///
/// ```
/// use fabflip_tensor::{matmul, Tensor};
/// let a = Tensor::from_vec(vec![2, 2], vec![1.0, 2.0, 3.0, 4.0])?;
/// let i = Tensor::from_vec(vec![2, 2], vec![1.0, 0.0, 0.0, 1.0])?;
/// assert_eq!(matmul(&a, &i)?.data(), a.data());
/// # Ok::<(), fabflip_tensor::TensorError>(())
/// ```
pub fn matmul(a: &Tensor, b: &Tensor) -> Result<Tensor, TensorError> {
    if a.rank() != 2 {
        return Err(TensorError::RankMismatch {
            op: "matmul",
            expected: 2,
            actual: a.rank(),
        });
    }
    if b.rank() != 2 {
        return Err(TensorError::RankMismatch {
            op: "matmul",
            expected: 2,
            actual: b.rank(),
        });
    }
    let (m, k) = (a.shape()[0], a.shape()[1]);
    let (k2, n) = (b.shape()[0], b.shape()[1]);
    if k != k2 {
        return Err(TensorError::ShapeMismatch {
            op: "matmul",
            lhs: a.shape().to_vec(),
            rhs: b.shape().to_vec(),
        });
    }
    let mut c = Tensor::zeros(vec![m, n]);
    matmul_into(a.data(), b.data(), c.data_mut(), m, k, n);
    Ok(c)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(shape: &[usize], data: &[f32]) -> Tensor {
        Tensor::from_vec(shape.to_vec(), data.to_vec()).unwrap()
    }

    #[test]
    fn matmul_known_result() {
        let a = t(&[2, 3], &[1.0, 2.0, 3.0, 4.0, 5.0, 6.0]);
        let b = t(&[3, 2], &[7.0, 8.0, 9.0, 10.0, 11.0, 12.0]);
        let c = matmul(&a, &b).unwrap();
        assert_eq!(c.shape(), &[2, 2]);
        assert_eq!(c.data(), &[58.0, 64.0, 139.0, 154.0]);
    }

    #[test]
    fn matmul_rejects_bad_shapes() {
        let a = t(&[2, 3], &[0.0; 6]);
        let b = t(&[2, 3], &[0.0; 6]);
        assert!(matches!(
            matmul(&a, &b),
            Err(TensorError::ShapeMismatch { .. })
        ));
        let v = t(&[3], &[0.0; 3]);
        assert!(matches!(
            matmul(&v, &b),
            Err(TensorError::RankMismatch { .. })
        ));
    }

    #[test]
    fn transpose_a_matches_explicit_transpose() {
        // a is stored k×m = 3×2; logical op is (2×3)·(3×2).
        let a_t = [1.0, 4.0, 2.0, 5.0, 3.0, 6.0]; // transpose of [[1,2,3],[4,5,6]]
        let b = [7.0, 8.0, 9.0, 10.0, 11.0, 12.0];
        let mut c = [0.0f32; 4];
        matmul_transpose_a(&a_t, &b, &mut c, 2, 3, 2);
        assert_eq!(c, [58.0, 64.0, 139.0, 154.0]);
    }

    #[test]
    fn transpose_b_matches_explicit_transpose() {
        // b is stored n×k = 2×3; logical op is (2×3)·(3×2).
        let a = [1.0, 2.0, 3.0, 4.0, 5.0, 6.0];
        let b_t = [7.0, 9.0, 11.0, 8.0, 10.0, 12.0]; // transpose of [[7,8],[9,10],[11,12]]
        let mut c = [0.0f32; 4];
        matmul_transpose_b(&a, &b_t, &mut c, 2, 3, 2);
        assert_eq!(c, [58.0, 64.0, 139.0, 154.0]);
    }

    #[test]
    fn matmul_into_accumulates() {
        let a = [1.0, 0.0, 0.0, 1.0];
        let b = [1.0, 2.0, 3.0, 4.0];
        let mut c = [10.0, 10.0, 10.0, 10.0];
        matmul_into(&a, &b, &mut c, 2, 2, 2);
        assert_eq!(c, [11.0, 12.0, 13.0, 14.0]);
    }

    /// Sizes straddling the MR/KC/NC tile boundaries against a textbook
    /// triple loop (exact equality holds: small integer-valued inputs).
    #[test]
    fn tiled_kernels_match_naive_on_awkward_sizes() {
        for &(m, k, n) in &[
            (1, 1, 1),
            (3, 5, 2),
            (4, 4, 4),
            (5, 7, 9),
            (6, 3, 5),
            (9, 2, 11),
        ] {
            let a: Vec<f32> = (0..m * k).map(|v| ((v % 7) as f32) - 3.0).collect();
            let b: Vec<f32> = (0..k * n).map(|v| ((v % 5) as f32) - 2.0).collect();
            let mut naive = vec![0.0f32; m * n];
            for i in 0..m {
                for j in 0..n {
                    for p in 0..k {
                        naive[i * n + j] += a[i * k + p] * b[p * n + j];
                    }
                }
            }
            let mut c = vec![0.0f32; m * n];
            matmul_into(&a, &b, &mut c, m, k, n);
            assert_eq!(c, naive, "matmul_into {m}x{k}x{n}");
        }
    }
}
