//! im2col / col2im lowering for 2-D convolution.
//!
//! `im2col` unfolds a `[C, H, W]` image into a `[C·KH·KW, OH·OW]` matrix so
//! convolution becomes one matrix multiply; `col2im` is its adjoint, folding
//! gradients back into image space. The pair is exercised by an adjointness
//! property test (`<x_col, y> == <x, col2im(y)>`), which pins down the
//! correctness of convolution backprop.

use crate::TensorError;

/// Output spatial dimension of a convolution:
/// `(input + 2·pad − kernel) / stride + 1`.
///
/// # Errors
///
/// Returns [`TensorError::InvalidGeometry`] when the kernel does not fit the
/// padded input or `stride == 0`.
pub fn conv_out_dim(
    input: usize,
    kernel: usize,
    stride: usize,
    pad: usize,
) -> Result<usize, TensorError> {
    if stride == 0 {
        return Err(TensorError::InvalidGeometry(
            "stride must be positive".into(),
        ));
    }
    let padded = input + 2 * pad;
    if kernel == 0 || kernel > padded {
        // fabcheck::allow(alloc_on_hot_path): error branch only.
        return Err(TensorError::InvalidGeometry(format!(
            "kernel {kernel} does not fit padded input {padded}"
        )));
    }
    Ok((padded - kernel) / stride + 1)
}

/// Unfolds one `[C, H, W]` image (flat slice) into column-major patches.
///
/// The output buffer `col` has layout `[C*KH*KW, OH*OW]` row-major: row
/// `(c*KH + kh)*KW + kw` holds, for each output position, the input pixel
/// that the kernel tap `(c, kh, kw)` sees (0 where padding is sampled).
///
/// # Panics
///
/// Debug-asserts buffer sizes.
#[allow(clippy::too_many_arguments)]
pub fn im2col(
    img: &[f32],
    col: &mut [f32],
    c: usize,
    h: usize,
    w: usize,
    kh: usize,
    kw: usize,
    stride: usize,
    pad: usize,
) {
    let oh = (h + 2 * pad - kh) / stride + 1;
    let ow = (w + 2 * pad - kw) / stride + 1;
    debug_assert_eq!(img.len(), c * h * w);
    debug_assert_eq!(col.len(), c * kh * kw * oh * ow);
    let out_area = oh * ow;
    for ch in 0..c {
        let img_ch = &img[ch * h * w..(ch + 1) * h * w];
        for ky in 0..kh {
            for kx in 0..kw {
                let row = ((ch * kh + ky) * kw + kx) * out_area;
                let col_row = &mut col[row..row + out_area];
                for oy in 0..oh {
                    let iy = (oy * stride + ky) as isize - pad as isize;
                    let dst = &mut col_row[oy * ow..(oy + 1) * ow];
                    if iy < 0 || iy >= h as isize {
                        for v in dst.iter_mut() {
                            *v = 0.0;
                        }
                        continue;
                    }
                    let src_row = &img_ch[iy as usize * w..(iy as usize + 1) * w];
                    for (ox, v) in dst.iter_mut().enumerate() {
                        let ix = (ox * stride + kx) as isize - pad as isize;
                        *v = if ix < 0 || ix >= w as isize {
                            0.0
                        } else {
                            src_row[ix as usize]
                        };
                    }
                }
            }
        }
    }
}

/// Adjoint of [`im2col`]: folds patch-space gradients back into image space,
/// accumulating into `img` (caller usually passes a zeroed buffer).
///
/// # Panics
///
/// Debug-asserts buffer sizes.
#[allow(clippy::too_many_arguments)]
pub fn col2im(
    col: &[f32],
    img: &mut [f32],
    c: usize,
    h: usize,
    w: usize,
    kh: usize,
    kw: usize,
    stride: usize,
    pad: usize,
) {
    let oh = (h + 2 * pad - kh) / stride + 1;
    let ow = (w + 2 * pad - kw) / stride + 1;
    debug_assert_eq!(img.len(), c * h * w);
    debug_assert_eq!(col.len(), c * kh * kw * oh * ow);
    let out_area = oh * ow;
    for ch in 0..c {
        let img_ch = &mut img[ch * h * w..(ch + 1) * h * w];
        for ky in 0..kh {
            for kx in 0..kw {
                let row = ((ch * kh + ky) * kw + kx) * out_area;
                let col_row = &col[row..row + out_area];
                for oy in 0..oh {
                    let iy = (oy * stride + ky) as isize - pad as isize;
                    if iy < 0 || iy >= h as isize {
                        continue;
                    }
                    let src = &col_row[oy * ow..(oy + 1) * ow];
                    let dst_row = &mut img_ch[iy as usize * w..(iy as usize + 1) * w];
                    for (ox, &v) in src.iter().enumerate() {
                        let ix = (ox * stride + kx) as isize - pad as isize;
                        if ix >= 0 && ix < w as isize {
                            dst_row[ix as usize] += v;
                        }
                    }
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn out_dim_formula() {
        assert_eq!(conv_out_dim(28, 3, 1, 1).unwrap(), 28);
        assert_eq!(conv_out_dim(28, 3, 1, 0).unwrap(), 26);
        assert_eq!(conv_out_dim(28, 2, 2, 0).unwrap(), 14);
        assert!(conv_out_dim(2, 5, 1, 0).is_err());
        assert!(conv_out_dim(8, 3, 0, 0).is_err());
    }

    #[test]
    fn im2col_identity_kernel() {
        // 1x1 kernel, stride 1, no pad: col equals the image.
        let img: Vec<f32> = (0..12).map(|i| i as f32).collect(); // 1x3x4
        let mut col = vec![0.0; 12];
        im2col(&img, &mut col, 1, 3, 4, 1, 1, 1, 0);
        assert_eq!(col, img);
    }

    #[test]
    fn im2col_known_patch() {
        // 2x2 image, 2x2 kernel, stride 1, no pad -> single output position.
        let img = [1.0, 2.0, 3.0, 4.0];
        let mut col = vec![0.0; 4];
        im2col(&img, &mut col, 1, 2, 2, 2, 2, 1, 0);
        assert_eq!(col, [1.0, 2.0, 3.0, 4.0]);
    }

    #[test]
    fn im2col_padding_zeroes() {
        // 1x1 image, 3x3 kernel, pad 1 -> one output, only center nonzero.
        let img = [5.0];
        let mut col = vec![0.0; 9];
        im2col(&img, &mut col, 1, 1, 1, 3, 3, 1, 1);
        let mut expect = [0.0f32; 9];
        expect[4] = 5.0;
        assert_eq!(col, expect);
    }

    #[test]
    fn col2im_adjoint_small() {
        // <im2col(x), y> == <x, col2im(y)> for fixed small geometry.
        let (c, h, w, kh, kw, s, p) = (2, 4, 3, 3, 2, 1, 1);
        let oh = (h + 2 * p - kh) / s + 1;
        let ow = (w + 2 * p - kw) / s + 1;
        let n_img = c * h * w;
        let n_col = c * kh * kw * oh * ow;
        let x: Vec<f32> = (0..n_img).map(|i| (i as f32 * 0.37).sin()).collect();
        let y: Vec<f32> = (0..n_col).map(|i| (i as f32 * 0.11).cos()).collect();
        let mut x_col = vec![0.0; n_col];
        im2col(&x, &mut x_col, c, h, w, kh, kw, s, p);
        let mut y_img = vec![0.0; n_img];
        col2im(&y, &mut y_img, c, h, w, kh, kw, s, p);
        let lhs: f32 = x_col.iter().zip(&y).map(|(a, b)| a * b).sum();
        let rhs: f32 = x.iter().zip(&y_img).map(|(a, b)| a * b).sum();
        assert!((lhs - rhs).abs() < 1e-3, "{lhs} vs {rhs}");
    }
}
