//! Quantized client→server update transport (DESIGN.md §4e).
//!
//! Clients may encode their parameter-delta payloads as IEEE-754 binary16
//! ([`Codec::F16`]) or symmetric per-tensor `i8` ([`Codec::I8`]) before
//! upload; the server dequantizes deterministically before validation and
//! aggregation. Both codecs are pure element-wise functions of the input
//! bits — no RNG, no data-dependent branching on accumulated state — so a
//! quantized round transcript is bitwise identical at any thread count and
//! across checkpoint/resume, exactly like the f32 path.
//!
//! Rounding contracts (pinned by proptests and DESIGN.md §4e):
//!
//! - **f16**: round-to-nearest-even on the 13 dropped mantissa bits;
//!   values above the binary16 range become ±∞ (which the PR-5 server
//!   validator then quarantines as non-finite); subnormal halves are
//!   produced exactly; NaN payloads stay NaN (quieted to a single
//!   mantissa bit).
//! - **i8**: symmetric per-tensor scale `max_abs/127`, round half away
//!   from zero ([`f32::round`]), clamp to ±127 (−128 unused, keeping the
//!   code symmetric). Non-finite or all-zero inputs encode as the zero
//!   buffer with scale 0 — the server's dead-buffer sentinel rejects it.

use serde::{Deserialize, Serialize};

use crate::scratch::{self, Purpose};

/// Wire codec for client→server update payloads.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default, Serialize, Deserialize)]
pub enum Codec {
    /// Full-precision passthrough: the wire value is the client value.
    #[default]
    F32,
    /// IEEE-754 binary16, round-to-nearest-even.
    F16,
    /// Symmetric per-tensor `i8`, scale `max_abs/127`, round half away
    /// from zero.
    I8,
}

impl Codec {
    /// `true` for the full-precision passthrough codec (the default).
    /// Used as a serde `skip_serializing_if` so configs that never opt
    /// into quantization serialize byte-identically to pre-transport
    /// configs (cache-key stability).
    pub fn is_f32(&self) -> bool {
        matches!(self, Codec::F32)
    }

    /// Stable lowercase label for reports and bench JSON.
    pub fn label(&self) -> &'static str {
        match self {
            Codec::F32 => "f32",
            Codec::F16 => "f16",
            Codec::I8 => "i8",
        }
    }

    /// Bytes per element on the wire (excluding the per-tensor scale).
    pub fn wire_bytes_per_elem(&self) -> usize {
        match self {
            Codec::F32 => 4,
            Codec::F16 => 2,
            Codec::I8 => 1,
        }
    }
}

/// An IEEE-754 binary16 value stored as raw bits. A transparent newtype
/// so scratch arenas and wire buffers can pool it as an [`Element`]
/// without pulling in a half-float arithmetic dependency.
///
/// [`Element`]: crate::scratch::Element
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
#[repr(transparent)]
pub struct F16(pub u16);

scratch::impl_element!(F16, F16(0), |v: F16| f16_bits_to_f32(v.0), ARENA_F16);

/// Converts an `f32` to binary16 bits with round-to-nearest-even.
#[inline]
pub fn f32_to_f16_bits(x: f32) -> u16 {
    let b = x.to_bits();
    let sign = ((b >> 16) & 0x8000) as u16;
    let exp = ((b >> 23) & 0xff) as i32;
    let man = b & 0x007f_ffff;
    if exp == 0xff {
        // Inf stays inf; NaN is quieted to a single mantissa bit so the
        // result is a pure function of "was NaN", not of the payload.
        return sign | 0x7c00 | if man != 0 { 0x0200 } else { 0 };
    }
    let e = exp - 127 + 15;
    if e >= 0x1f {
        // Overflows binary16 → ±inf (quarantined downstream as non-finite).
        return sign | 0x7c00;
    }
    if e >= 1 {
        // Normal: drop 13 mantissa bits, round-to-nearest-even. A mantissa
        // carry overflows cleanly into the exponent (and into ±inf at the
        // top), which is exactly the correctly rounded result.
        let lsb = (man >> 13) & 1;
        let rounded = man + 0x0fff + lsb;
        return sign + (((e as u32) << 10) + (rounded >> 13)) as u16;
    }
    if e < -10 {
        // Below the smallest subnormal half → signed zero.
        return sign;
    }
    // Subnormal half: shift out `14 - e` bits of the 24-bit significand
    // (implicit bit restored), round-to-nearest-even; a round-up to 2^10
    // lands on the smallest normal encoding, which is again correct.
    let man = man | 0x0080_0000;
    let shift = (14 - e) as u32;
    let lsb = (man >> shift) & 1;
    let half = (1u32 << (shift - 1)) - 1 + lsb;
    sign | ((man + half) >> shift) as u16
}

/// Converts binary16 bits to the exactly-representable `f32` value.
#[inline]
pub fn f16_bits_to_f32(h: u16) -> f32 {
    let sign = u32::from(h & 0x8000) << 16;
    let e = u32::from(h >> 10) & 0x1f;
    let m = u32::from(h & 0x03ff);
    let bits = if e == 0x1f {
        sign | 0x7f80_0000 | (m << 13)
    } else if e != 0 {
        sign | ((e + 127 - 15) << 23) | (m << 13)
    } else if m == 0 {
        sign
    } else {
        // Subnormal half: renormalize (every subnormal half is a normal
        // f32, so this is exact).
        let shift = m.leading_zeros() - 21;
        let man = (m << shift) & 0x03ff;
        sign | ((113 - shift) << 23) | (man << 13)
    };
    f32::from_bits(bits)
}

/// Symmetric per-tensor `i8` scale: `max_abs/127`, or `0.0` when the
/// input has no finite nonzero magnitude (the all-zero encoding).
#[inline]
pub fn i8_scale(v: &[f32]) -> f32 {
    // `f32::max` drops NaN operands, so NaN coordinates do not poison the
    // scale; ±inf forces the 0-scale (all-zero) encoding below.
    // fabcheck::allow(unordered_float_reduction): running max of |x|, serial left-to-right
    let max_abs = v.iter().fold(0.0f32, |acc, &x| acc.max(x.abs()));
    if max_abs > 0.0 && max_abs.is_finite() {
        max_abs / 127.0
    } else {
        0.0
    }
}

/// Encodes `v` as binary16 into `out` (`out.len() == v.len()`).
pub fn f16_encode_into(v: &[f32], out: &mut [F16]) {
    debug_assert_eq!(v.len(), out.len());
    for (o, &x) in out.iter_mut().zip(v) {
        *o = F16(f32_to_f16_bits(x));
    }
}

/// Decodes binary16 `enc` into `out` (`out.len() == enc.len()`).
/// Allocation-free: a fabcheck hot entry.
pub fn f16_decode_into(enc: &[F16], out: &mut [f32]) {
    debug_assert_eq!(enc.len(), out.len());
    for (o, &F16(h)) in out.iter_mut().zip(enc) {
        *o = f16_bits_to_f32(h);
    }
}

/// Encodes `v` as symmetric `i8` into `out`, returning the scale.
/// With scale 0 (non-finite or all-zero input) every element encodes as 0.
pub fn i8_encode_into(v: &[f32], out: &mut [i8]) -> f32 {
    debug_assert_eq!(v.len(), out.len());
    let scale = i8_scale(v);
    if scale == 0.0 {
        for o in out.iter_mut() {
            *o = 0;
        }
        return 0.0;
    }
    for (o, &x) in out.iter_mut().zip(v) {
        // `as i8` saturates and maps NaN→0, both deterministically; the
        // clamp keeps the code symmetric in ±127.
        *o = (x / scale).round().clamp(-127.0, 127.0) as i8;
    }
    scale
}

/// Decodes symmetric `i8` `enc` at `scale` into `out`.
/// Allocation-free: a fabcheck hot entry.
pub fn i8_decode_into(enc: &[i8], scale: f32, out: &mut [f32]) {
    debug_assert_eq!(enc.len(), out.len());
    for (o, &q) in out.iter_mut().zip(enc) {
        *o = f32::from(q) * scale;
    }
}

/// An encoded update payload as it crosses the wire.
#[derive(Debug, Clone, PartialEq)]
pub enum Encoded {
    /// Full-precision passthrough.
    F32(Vec<f32>),
    /// binary16 bits.
    F16(Vec<F16>),
    /// Symmetric `i8` with its per-tensor scale.
    I8 {
        /// Dequantization scale (`max_abs/127`, or 0 for the zero buffer).
        scale: f32,
        /// Quantized elements.
        data: Vec<i8>,
    },
}

impl Encoded {
    /// Element count of the decoded payload.
    pub fn len(&self) -> usize {
        match self {
            Encoded::F32(v) => v.len(),
            Encoded::F16(v) => v.len(),
            Encoded::I8 { data, .. } => data.len(),
        }
    }

    /// `true` when the payload has no elements.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Payload bytes on the wire (scale overhead excluded).
    pub fn wire_bytes(&self) -> usize {
        match self {
            Encoded::F32(v) => v.len() * 4,
            Encoded::F16(v) => v.len() * 2,
            Encoded::I8 { data, .. } => data.len(),
        }
    }
}

/// Encodes `v` under `codec` into a fresh wire payload.
pub fn encode(codec: Codec, v: &[f32]) -> Encoded {
    match codec {
        Codec::F32 => Encoded::F32(v.to_vec()),
        Codec::F16 => {
            let mut out = vec![F16(0); v.len()];
            f16_encode_into(v, &mut out);
            Encoded::F16(out)
        }
        Codec::I8 => {
            let mut data = vec![0i8; v.len()];
            let scale = i8_encode_into(v, &mut data);
            Encoded::I8 { scale, data }
        }
    }
}

/// Decodes a wire payload into `out` (`out.len() == enc.len()`).
/// Allocation-free: the streaming server's hot ingest entry.
pub fn decode_into(enc: &Encoded, out: &mut [f32]) {
    match enc {
        Encoded::F32(v) => {
            debug_assert_eq!(v.len(), out.len());
            out.copy_from_slice(v);
        }
        Encoded::F16(v) => f16_decode_into(v, out),
        Encoded::I8 { scale, data } => i8_decode_into(data, *scale, out),
    }
}

/// Decodes a wire payload into a fresh vector.
pub fn decode(enc: &Encoded) -> Vec<f32> {
    let mut out = vec![0.0f32; enc.len()];
    decode_into(enc, &mut out);
    out
}

/// Applies the encode→decode roundtrip to `v` in place — what the
/// simulator's transport stage does to every staged payload when a
/// non-f32 codec is configured. [`Codec::F32`] is an exact no-op (the
/// pre-transport bitwise-identity guarantee); the quantized paths stage
/// through typed scratch arenas, so steady-state rounds allocate nothing.
pub fn roundtrip_in_place(codec: Codec, v: &mut [f32]) {
    match codec {
        Codec::F32 => {}
        Codec::F16 => {
            let mut buf = scratch::scratch_of::<F16>(Purpose::QuantEncode, v.len());
            f16_encode_into(v, &mut buf);
            f16_decode_into(&buf, v);
        }
        Codec::I8 => {
            let mut buf = scratch::scratch_of::<i8>(Purpose::QuantEncode, v.len());
            let scale = i8_encode_into(v, &mut buf);
            i8_decode_into(&buf, scale, v);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn f16_roundtrips_exactly_representable_values() {
        for &x in &[
            0.0f32, -0.0, 1.0, -1.0, 0.5, 2.0, 65504.0, -65504.0, 0.25, 1024.0,
        ] {
            let h = f32_to_f16_bits(x);
            assert_eq!(f16_bits_to_f32(h).to_bits(), x.to_bits(), "x={x}");
        }
    }

    #[test]
    fn f16_rounds_to_nearest_even() {
        // 1 + 2^-11 sits exactly between 1.0 and the next half (1 + 2^-10):
        // ties go to the even mantissa, i.e. 1.0.
        let tie = 1.0f32 + f32::powi(2.0, -11);
        assert_eq!(f16_bits_to_f32(f32_to_f16_bits(tie)), 1.0);
        // Just above the tie rounds up.
        let above = 1.0f32 + f32::powi(2.0, -11) + f32::powi(2.0, -20);
        assert_eq!(
            f16_bits_to_f32(f32_to_f16_bits(above)),
            1.0 + f32::powi(2.0, -10)
        );
        // The next tie (1 + 3·2^-11) is between two halves whose lower has
        // an odd mantissa: ties-to-even rounds *up*.
        let tie2 = 1.0f32 + 3.0 * f32::powi(2.0, -11);
        assert_eq!(
            f16_bits_to_f32(f32_to_f16_bits(tie2)),
            1.0 + 2.0 * f32::powi(2.0, -10)
        );
    }

    #[test]
    fn f16_overflow_is_inf_and_nan_stays_nan() {
        assert_eq!(f32_to_f16_bits(1.0e6), 0x7c00);
        assert_eq!(f32_to_f16_bits(-1.0e6), 0xfc00);
        assert_eq!(f32_to_f16_bits(f32::INFINITY), 0x7c00);
        assert!(f16_bits_to_f32(f32_to_f16_bits(f32::NAN)).is_nan());
        // Largest value that rounds into range vs. first that overflows.
        assert_eq!(f16_bits_to_f32(f32_to_f16_bits(65519.0)), 65504.0);
        assert_eq!(f32_to_f16_bits(65520.0), 0x7c00);
    }

    #[test]
    fn f16_subnormals_are_exact() {
        let smallest = f32::powi(2.0, -24);
        assert_eq!(f16_bits_to_f32(f32_to_f16_bits(smallest)), smallest);
        assert_eq!(f32_to_f16_bits(smallest), 0x0001);
        // Half of the smallest subnormal ties to even → zero.
        assert_eq!(f32_to_f16_bits(f32::powi(2.0, -25)), 0x0000);
        // Largest subnormal.
        let sub_max = 1023.0 * f32::powi(2.0, -24);
        assert_eq!(f32_to_f16_bits(sub_max), 0x03ff);
        assert_eq!(f16_bits_to_f32(0x03ff), sub_max);
        // Round-up across the subnormal/normal boundary.
        let norm_min = f32::powi(2.0, -14);
        assert_eq!(f16_bits_to_f32(f32_to_f16_bits(norm_min)), norm_min);
    }

    #[test]
    fn i8_codec_is_symmetric_and_bounded() {
        let v = [1.0f32, -2.0, 0.5, 127.0, -127.0, 0.0];
        let mut q = vec![0i8; v.len()];
        let scale = i8_encode_into(&v, &mut q);
        assert_eq!(scale, 1.0);
        assert_eq!(q, vec![1, -2, 1, 127, -127, 0]);
        let mut back = vec![0.0f32; v.len()];
        i8_decode_into(&q, scale, &mut back);
        assert_eq!(back, vec![1.0, -2.0, 1.0, 127.0, -127.0, 0.0]);
    }

    #[test]
    fn i8_degenerate_inputs_encode_as_zero_buffer() {
        for v in [
            vec![0.0f32; 4],
            vec![f32::INFINITY, 1.0, 2.0, 3.0],
            vec![f32::NAN; 4],
        ] {
            let mut q = vec![7i8; v.len()];
            let scale = i8_encode_into(&v, &mut q);
            assert_eq!(scale, 0.0);
            assert!(q.iter().all(|&x| x == 0));
        }
    }

    #[test]
    fn i8_nan_coordinate_maps_to_zero() {
        let v = [1.0f32, f32::NAN, -1.0];
        let mut q = vec![0i8; 3];
        let scale = i8_encode_into(&v, &mut q);
        assert!(scale > 0.0);
        assert_eq!(q[1], 0);
    }

    #[test]
    fn encode_decode_roundtrip_matches_in_place() {
        let v: Vec<f32> = (0..257).map(|i| ((i as f32) * 0.37).sin() * 3.0).collect();
        for codec in [Codec::F32, Codec::F16, Codec::I8] {
            let enc = encode(codec, &v);
            assert_eq!(enc.len(), v.len());
            let via_enum = decode(&enc);
            let mut in_place = v.clone();
            roundtrip_in_place(codec, &mut in_place);
            assert_eq!(
                via_enum.iter().map(|x| x.to_bits()).collect::<Vec<_>>(),
                in_place.iter().map(|x| x.to_bits()).collect::<Vec<_>>(),
                "codec={}",
                codec.label()
            );
            if codec == Codec::F32 {
                assert_eq!(in_place, v);
            }
        }
    }

    #[test]
    fn quantization_is_idempotent() {
        // Dequantized values are exactly representable under the same
        // codec, so transporting twice equals transporting once (f16);
        // i8 is idempotent because the scale is preserved by roundtrip.
        let v: Vec<f32> = (0..64).map(|i| ((i as f32) * 1.7).cos() * 9.0).collect();
        for codec in [Codec::F16, Codec::I8] {
            let mut once = v.clone();
            roundtrip_in_place(codec, &mut once);
            let mut twice = once.clone();
            roundtrip_in_place(codec, &mut twice);
            assert_eq!(
                once.iter().map(|x| x.to_bits()).collect::<Vec<_>>(),
                twice.iter().map(|x| x.to_bits()).collect::<Vec<_>>(),
                "codec={}",
                codec.label()
            );
        }
    }

    #[test]
    fn codec_serde_labels_are_stable() {
        assert_eq!(serde_json::to_string(&Codec::F32).unwrap(), "\"F32\"");
        assert_eq!(serde_json::to_string(&Codec::F16).unwrap(), "\"F16\"");
        assert_eq!(serde_json::to_string(&Codec::I8).unwrap(), "\"I8\"");
        let c: Codec = serde_json::from_str("\"F16\"").unwrap();
        assert_eq!(c, Codec::F16);
    }

    #[test]
    fn wire_bytes_shrink_with_codec() {
        let v = vec![1.0f32; 100];
        assert_eq!(encode(Codec::F32, &v).wire_bytes(), 400);
        assert_eq!(encode(Codec::F16, &v).wire_bytes(), 200);
        assert_eq!(encode(Codec::I8, &v).wire_bytes(), 100);
    }
}
