//! Property-based tests for the tensor substrate.

use crate::{col2im, conv_out_dim, im2col, matmul, quant, vecops, Tensor};
use proptest::prelude::*;

fn vec_strategy(len: usize) -> impl Strategy<Value = Vec<f32>> {
    proptest::collection::vec(-10.0f32..10.0, len)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// The f16 roundtrip is a pure element-wise function with bounded
    /// relative error (2^-11 for normal halves) and is idempotent: a
    /// transported value re-transports to itself bitwise.
    #[test]
    fn f16_roundtrip_error_is_bounded_and_idempotent(data in vec_strategy(64)) {
        let mut once = data.clone();
        quant::roundtrip_in_place(quant::Codec::F16, &mut once);
        for (&x, &y) in data.iter().zip(&once) {
            // Inputs are in ±10, far from the subnormal/overflow edges.
            prop_assert!((x - y).abs() <= x.abs() * 4.9e-4 + 1e-7, "{x} -> {y}");
        }
        let mut twice = once.clone();
        quant::roundtrip_in_place(quant::Codec::F16, &mut twice);
        for (a, b) in once.iter().zip(&twice) {
            prop_assert_eq!(a.to_bits(), b.to_bits());
        }
    }

    /// The i8 roundtrip error is bounded by half a quantization step
    /// (scale/2) per coordinate, and encode is deterministic: the same
    /// input always yields the same wire payload.
    #[test]
    fn i8_roundtrip_error_is_bounded_and_deterministic(data in vec_strategy(64)) {
        let enc1 = quant::encode(quant::Codec::I8, &data);
        let enc2 = quant::encode(quant::Codec::I8, &data);
        prop_assert_eq!(&enc1, &enc2);
        let back = quant::decode(&enc1);
        let max_abs = data.iter().fold(0.0f32, |a, &x| a.max(x.abs()));
        let step = max_abs / 127.0;
        for (&x, &y) in data.iter().zip(&back) {
            prop_assert!((x - y).abs() <= 0.5 * step + 1e-6, "{x} -> {y} (step {step})");
        }
    }

    /// Every f16 bit pattern decodes to an f32 that encodes back to the
    /// same bits (decode is a right inverse of encode), modulo NaN
    /// payload quieting.
    #[test]
    fn f16_decode_then_encode_is_identity(h in 0i32..0x10000) {
        let h = h as u16;
        let x = quant::f16_bits_to_f32(h);
        let back = quant::f32_to_f16_bits(x);
        if x.is_nan() {
            prop_assert!(quant::f16_bits_to_f32(back).is_nan());
        } else {
            prop_assert_eq!(back, h, "h={h:#06x} x={x}");
        }
    }

    #[test]
    fn add_commutes(data in vec_strategy(16), data2 in vec_strategy(16)) {
        let a = Tensor::from_vec(vec![4, 4], data).unwrap();
        let b = Tensor::from_vec(vec![4, 4], data2).unwrap();
        let ab = a.add(&b).unwrap();
        let ba = b.add(&a).unwrap();
        prop_assert_eq!(ab.data(), ba.data());
    }

    #[test]
    fn sub_then_add_roundtrips(data in vec_strategy(12), data2 in vec_strategy(12)) {
        let a = Tensor::from_vec(vec![12], data).unwrap();
        let b = Tensor::from_vec(vec![12], data2).unwrap();
        let back = a.sub(&b).unwrap().add(&b).unwrap();
        for (x, y) in back.data().iter().zip(a.data()) {
            prop_assert!((x - y).abs() < 1e-4);
        }
    }

    #[test]
    fn scale_is_linear_in_norm(data in vec_strategy(20), alpha in -4.0f32..4.0) {
        let a = Tensor::from_vec(vec![20], data).unwrap();
        let scaled = a.scale(alpha);
        prop_assert!((scaled.l2_norm() - alpha.abs() * a.l2_norm()).abs() < 1e-2);
    }

    #[test]
    fn matmul_identity(data in vec_strategy(9)) {
        let a = Tensor::from_vec(vec![3, 3], data).unwrap();
        let eye = Tensor::from_vec(vec![3, 3],
            vec![1.0, 0.0, 0.0, 0.0, 1.0, 0.0, 0.0, 0.0, 1.0]).unwrap();
        let c = matmul(&a, &eye).unwrap();
        prop_assert_eq!(c.data(), a.data());
    }

    #[test]
    fn matmul_distributes_over_addition(
        a in vec_strategy(6), b in vec_strategy(6), c in vec_strategy(6)
    ) {
        let a = Tensor::from_vec(vec![2, 3], a).unwrap();
        let b = Tensor::from_vec(vec![3, 2], b).unwrap();
        let c = Tensor::from_vec(vec![3, 2], c).unwrap();
        let lhs = matmul(&a, &b.add(&c).unwrap()).unwrap();
        let rhs = matmul(&a, &b).unwrap().add(&matmul(&a, &c).unwrap()).unwrap();
        for (x, y) in lhs.data().iter().zip(rhs.data()) {
            prop_assert!((x - y).abs() < 1e-2, "{} vs {}", x, y);
        }
    }

    #[test]
    fn im2col_col2im_adjoint(
        h in 2usize..6, w in 2usize..6, kh in 1usize..4, kw in 1usize..4,
        stride in 1usize..3, pad in 0usize..2, seed in 0u64..1000
    ) {
        prop_assume!(conv_out_dim(h, kh, stride, pad).is_ok());
        prop_assume!(conv_out_dim(w, kw, stride, pad).is_ok());
        let c = 2usize;
        let oh = conv_out_dim(h, kh, stride, pad).unwrap();
        let ow = conv_out_dim(w, kw, stride, pad).unwrap();
        let n_img = c * h * w;
        let n_col = c * kh * kw * oh * ow;
        // Deterministic pseudo-random fill from the seed.
        let x: Vec<f32> = (0..n_img).map(|i| ((i as f32 + seed as f32) * 0.7).sin()).collect();
        let y: Vec<f32> = (0..n_col).map(|i| ((i as f32 * 1.3) + seed as f32).cos()).collect();
        let mut x_col = vec![0.0; n_col];
        im2col(&x, &mut x_col, c, h, w, kh, kw, stride, pad);
        let mut y_img = vec![0.0; n_img];
        col2im(&y, &mut y_img, c, h, w, kh, kw, stride, pad);
        let lhs: f32 = x_col.iter().zip(&y).map(|(p, q)| p * q).sum();
        let rhs: f32 = x.iter().zip(&y_img).map(|(p, q)| p * q).sum();
        prop_assert!((lhs - rhs).abs() < 1e-2 * (1.0 + lhs.abs()), "{} vs {}", lhs, rhs);
    }

    #[test]
    fn median_bounded_by_extremes(rows in proptest::collection::vec(vec_strategy(5), 1..7)) {
        let refs: Vec<&[f32]> = rows.iter().map(|v| v.as_slice()).collect();
        let med = vecops::median(&refs);
        for i in 0..5 {
            let lo = refs.iter().map(|r| r[i]).fold(f32::INFINITY, f32::min);
            let hi = refs.iter().map(|r| r[i]).fold(f32::NEG_INFINITY, f32::max);
            prop_assert!(med[i] >= lo - 1e-6 && med[i] <= hi + 1e-6);
        }
    }

    #[test]
    fn trimmed_mean_bounded_and_permutation_invariant(
        rows in proptest::collection::vec(vec_strategy(4), 5..9)
    ) {
        let refs: Vec<&[f32]> = rows.iter().map(|v| v.as_slice()).collect();
        let tm = vecops::trimmed_mean(&refs, 1);
        // Bounded by per-coordinate extremes.
        for i in 0..4 {
            let lo = refs.iter().map(|r| r[i]).fold(f32::INFINITY, f32::min);
            let hi = refs.iter().map(|r| r[i]).fold(f32::NEG_INFINITY, f32::max);
            prop_assert!(tm[i] >= lo - 1e-5 && tm[i] <= hi + 1e-5);
        }
        // Permutation invariance: reverse the set of updates.
        let rev: Vec<&[f32]> = refs.iter().rev().copied().collect();
        let tm2 = vecops::trimmed_mean(&rev, 1);
        for (a, b) in tm.iter().zip(&tm2) {
            prop_assert!((a - b).abs() < 1e-5);
        }
    }

    #[test]
    fn mean_of_identical_vectors_is_identity(v in vec_strategy(8), n in 1usize..6) {
        let copies: Vec<&[f32]> = (0..n).map(|_| v.as_slice()).collect();
        let m = vecops::mean(&copies);
        for (a, b) in m.iter().zip(&v) {
            prop_assert!((a - b).abs() < 1e-4);
        }
    }

    #[test]
    fn unit_vector_has_unit_norm(v in vec_strategy(16)) {
        prop_assume!(vecops::l2_norm(&v) > 1e-3);
        let u = vecops::unit(&v);
        prop_assert!((vecops::l2_norm(&u) - 1.0).abs() < 1e-3);
    }
}

/// Bitwise equivalence of the parallel kernels and their serial references.
///
/// The public entry points only fan out above their work thresholds, so
/// these tests pin the thread budget to a value > 1 and use shapes big
/// enough to cross the thresholds; a process-local lock keeps the budget
/// stable while each case runs.
mod parallel_equivalence {
    use crate::{
        matmul_into, matmul_into_serial, matmul_transpose_a, matmul_transpose_a_serial,
        matmul_transpose_b, matmul_transpose_b_serial, par, vecops, PAR_FLOP_THRESHOLD,
    };
    use proptest::prelude::*;
    use std::sync::Mutex;

    /// Serializes tests that pin the global thread budget.
    static THREADS_LOCK: Mutex<()> = Mutex::new(());

    fn with_threads<R>(n: usize, f: impl FnOnce() -> R) -> R {
        let guard = THREADS_LOCK.lock().unwrap_or_else(|e| e.into_inner());
        let prev = par::max_threads();
        par::set_max_threads(n);
        let out = f();
        par::set_max_threads(prev);
        drop(guard);
        out
    }

    /// Cheap deterministic fill in [-1, 1) (SplitMix64 mix).
    fn fill(seed: u64, len: usize) -> Vec<f32> {
        let mut s = seed;
        (0..len)
            .map(|_| {
                s = s.wrapping_add(0x9E37_79B9_7F4A_7C15);
                let mut z = s;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
                z ^= z >> 31;
                ((z >> 40) as f32 / (1u64 << 24) as f32) * 2.0 - 1.0
            })
            .collect()
    }

    fn bits(v: &[f32]) -> Vec<u32> {
        v.iter().map(|x| x.to_bits()).collect()
    }

    /// Smallest `n` that pushes `2·m·k·n` past the parallel threshold.
    fn crossing_n(m: usize, k: usize) -> usize {
        (PAR_FLOP_THRESHOLD as usize).div_ceil(2 * m * k) + 1
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(4))]

        #[test]
        fn matmul_into_parallel_is_bitwise_serial(
            m in 33usize..70, k in 30usize..90, seed in 0u64..1_000_000
        ) {
            let n = crossing_n(m, k);
            let a = fill(seed, m * k);
            let b = fill(seed ^ 0xABCD, k * n);
            let c0 = fill(seed ^ 0x1234, m * n);
            let mut c_par = c0.clone();
            with_threads(4, || matmul_into(&a, &b, &mut c_par, m, k, n));
            let mut c_ser = c0;
            matmul_into_serial(&a, &b, &mut c_ser, m, k, n);
            prop_assert_eq!(bits(&c_par), bits(&c_ser));
        }

        #[test]
        fn matmul_transpose_a_parallel_is_bitwise_serial(
            m in 33usize..70, k in 30usize..90, seed in 0u64..1_000_000
        ) {
            let n = crossing_n(m, k);
            let a = fill(seed, k * m);
            let b = fill(seed ^ 0xABCD, k * n);
            let c0 = fill(seed ^ 0x1234, m * n);
            let mut c_par = c0.clone();
            with_threads(4, || matmul_transpose_a(&a, &b, &mut c_par, m, k, n));
            let mut c_ser = c0;
            matmul_transpose_a_serial(&a, &b, &mut c_ser, m, k, n);
            prop_assert_eq!(bits(&c_par), bits(&c_ser));
        }

        #[test]
        fn matmul_transpose_b_parallel_is_bitwise_serial(
            m in 33usize..70, k in 30usize..90, seed in 0u64..1_000_000
        ) {
            let n = crossing_n(m, k);
            let a = fill(seed, m * k);
            let b = fill(seed ^ 0xABCD, n * k);
            let c0 = fill(seed ^ 0x1234, m * n);
            let mut c_par = c0.clone();
            with_threads(4, || matmul_transpose_b(&a, &b, &mut c_par, m, k, n));
            let mut c_ser = c0;
            matmul_transpose_b_serial(&a, &b, &mut c_ser, m, k, n);
            prop_assert_eq!(bits(&c_par), bits(&c_ser));
        }

        #[test]
        fn vecops_reductions_parallel_are_bitwise_serial(
            nv in 7usize..10, seed in 0u64..1_000_000
        ) {
            // nv · d must cross the vecops work threshold (1 << 20 floats).
            let d = 160_000usize;
            let data: Vec<Vec<f32>> = (0..nv).map(|i| fill(seed ^ i as u64, d)).collect();
            let refs: Vec<&[f32]> = data.iter().map(|v| v.as_slice()).collect();
            let (mean_p, std_p, med_p, tm_p) = with_threads(4, || {
                (
                    vecops::mean(&refs),
                    vecops::std_dev(&refs),
                    vecops::median(&refs),
                    vecops::trimmed_mean(&refs, 2),
                )
            });
            prop_assert_eq!(bits(&mean_p), bits(&vecops::mean_serial(&refs)));
            prop_assert_eq!(bits(&std_p), bits(&vecops::std_dev_serial(&refs)));
            prop_assert_eq!(bits(&med_p), bits(&vecops::median_serial(&refs)));
            prop_assert_eq!(bits(&tm_p), bits(&vecops::trimmed_mean_serial(&refs, 2)));
        }

        /// The persistent pool must give bitwise-serial results at every
        /// thread count, including odd ones that split the rows unevenly.
        #[test]
        fn pool_is_bitwise_serial_across_thread_counts(
            m in 33usize..70, k in 30usize..90, seed in 0u64..1_000_000
        ) {
            let n = crossing_n(m, k);
            let a = fill(seed, m * k);
            let b = fill(seed ^ 0xABCD, k * n);
            let c0 = fill(seed ^ 0x1234, m * n);
            let mut c_ser = c0.clone();
            matmul_into_serial(&a, &b, &mut c_ser, m, k, n);
            for threads in [1usize, 2, 7] {
                let mut c_par = c0.clone();
                with_threads(threads, || matmul_into(&a, &b, &mut c_par, m, k, n));
                prop_assert_eq!(bits(&c_par), bits(&c_ser), "threads={}", threads);
            }
        }

        /// Resizing the budget between dispatches parks or wakes workers
        /// but never changes results — the block boundaries each dispatch
        /// hands out depend only on the budget it started with.
        #[test]
        fn pool_is_bitwise_serial_after_mid_run_resize(
            m in 33usize..70, k in 30usize..90, seed in 0u64..1_000_000
        ) {
            let n = crossing_n(m, k);
            let a = fill(seed, m * k);
            let b = fill(seed ^ 0xABCD, k * n);
            let c0 = fill(seed ^ 0x1234, m * n);
            let mut c_ser = c0.clone();
            matmul_into_serial(&a, &b, &mut c_ser, m, k, n);
            let (c_wide, c_narrow) = with_threads(7, || {
                let mut c_wide = c0.clone();
                matmul_into(&a, &b, &mut c_wide, m, k, n);
                // Shrink the pool mid-run: surplus workers park, results
                // stay bitwise-identical.
                par::set_max_threads(2);
                let mut c_narrow = c0.clone();
                matmul_into(&a, &b, &mut c_narrow, m, k, n);
                (c_wide, c_narrow)
            });
            prop_assert_eq!(bits(&c_wide), bits(&c_ser));
            prop_assert_eq!(bits(&c_narrow), bits(&c_ser));
        }

        /// A panic in any block propagates to the dispatching caller, and
        /// the pool keeps serving bitwise-correct dispatches afterwards
        /// (workers survive the panic).
        #[test]
        fn pool_recovers_after_worker_panic(
            m in 33usize..70, k in 30usize..90, seed in 0u64..1_000_000
        ) {
            let n = crossing_n(m, k);
            let a = fill(seed, m * k);
            let b = fill(seed ^ 0xABCD, k * n);
            let c0 = fill(seed ^ 0x1234, m * n);
            let mut c_ser = c0.clone();
            matmul_into_serial(&a, &b, &mut c_ser, m, k, n);
            let (panicked, c_par) = with_threads(4, || {
                let panicked = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                    let mut sink = vec![0u8; 4096];
                    par::for_each_chunk_mut(&mut sink, 512, |idx, _| {
                        assert!(idx != 5, "injected test panic");
                    });
                }))
                .is_err();
                let mut c_par = c0.clone();
                matmul_into(&a, &b, &mut c_par, m, k, n);
                (panicked, c_par)
            });
            prop_assert!(panicked, "panic must propagate to the caller");
            prop_assert_eq!(bits(&c_par), bits(&c_ser));
        }

        #[test]
        fn backend_gemm_tile_is_bitwise_identical_across_backends(
            rows in 1usize..5, k in 1usize..40, n in 1usize..90, seed in 0u64..1_000_000
        ) {
            // The "packed" panel is B itself (b_base = 0, b_stride = n):
            // layout-identical to a pack_panel copy of the full width.
            use crate::backend::{self, Kind, ALL_KINDS};
            let a = fill(seed, rows * k);
            let b = fill(seed ^ 0x5EED, k * n);
            let scalar = backend::instance(Kind::Scalar);
            let mut want = vec![0.0f32; rows * n];
            scalar.gemm_tile(&a, 0, k, 1, rows, k, &b, 0, n, n, &mut want, 0, n);
            for kind in ALL_KINDS {
                if !kind.supported() {
                    continue;
                }
                let be = backend::instance(kind);
                let mut got = vec![0.0f32; rows * n];
                be.gemm_tile(&a, 0, k, 1, rows, k, &b, 0, n, n, &mut got, 0, n);
                prop_assert_eq!(bits(&got), bits(&want), "backend {}", be.name());
            }
        }

        #[test]
        fn backend_elementwise_primitives_are_bitwise_identical(
            d in 1usize..70, seed in 0u64..1_000_000, alpha in -2.0f32..2.0
        ) {
            use crate::backend::{self, CpuBackend, Kind, ALL_KINDS};
            let x = fill(seed, d);
            let y = fill(seed ^ 0xF00D, d);
            let mvs = fill(seed ^ 0x1DEA, d);
            let scalar = backend::instance(Kind::Scalar);
            // (add, scale, sq_dev, scale_sqrt, axpy) under the scalar
            // reference, then every supported backend must match bitwise.
            let run = |be: &dyn CpuBackend| {
                let mut add = x.clone();
                be.add_assign(&mut add, &y);
                let mut scale = x.clone();
                be.scale_assign(&mut scale, alpha);
                let mut sq = x.clone();
                be.sq_dev_assign(&mut sq, &y, &mvs);
                let mut ss: Vec<f32> = x.iter().map(|v| v.abs() + 0.25).collect();
                be.scale_sqrt_assign(&mut ss, alpha.abs() + 0.5);
                let mut ax = x.clone();
                be.axpy_assign(&mut ax, alpha, &y);
                [add, scale, sq, ss, ax]
            };
            let want = run(scalar);
            for kind in ALL_KINDS {
                if !kind.supported() {
                    continue;
                }
                let got = run(backend::instance(kind));
                for (g, w) in got.iter().zip(&want) {
                    prop_assert_eq!(bits(g), bits(w), "backend {}", kind.name());
                }
            }
        }

        /// Within each backend, the fused delta reductions are bitwise
        /// identical to materializing the difference first; across
        /// backends the serial reductions stay within a ULP budget of
        /// the scalar order.
        #[test]
        fn backend_reductions_delta_identity_and_cross_backend_tolerance(
            d in 1usize..600, seed in 0u64..1_000_000
        ) {
            use crate::backend::{self, Kind, ALL_KINDS};
            let x = fill(seed, d);
            let y = fill(seed ^ 0xBEEF, d);
            let r = fill(seed ^ 0xCAFE, d);
            let diff_xr: Vec<f32> = x.iter().zip(&r).map(|(a, b)| a - b).collect();
            let diff_yr: Vec<f32> = y.iter().zip(&r).map(|(a, b)| a - b).collect();
            let scalar = backend::instance(Kind::Scalar);
            for kind in ALL_KINDS {
                if !kind.supported() {
                    continue;
                }
                let be = backend::instance(kind);
                prop_assert_eq!(
                    be.dot_delta(&x, &y, &r).to_bits(),
                    be.dot(&diff_xr, &diff_yr).to_bits(),
                    "dot_delta identity, backend {}", be.name()
                );
                prop_assert_eq!(
                    be.sq_norm_delta(&x, &r).to_bits(),
                    be.sq_norm(&diff_xr).to_bits(),
                    "sq_norm_delta identity, backend {}", be.name()
                );
                // dot_lanes is bitwise cross-backend; dot/sq_norm within budget.
                prop_assert_eq!(
                    be.dot_lanes(&x, &y).to_bits(),
                    scalar.dot_lanes(&x, &y).to_bits(),
                    "dot_lanes, backend {}", be.name()
                );
                // Reassociation error scales with the magnitude of the
                // summed terms (Σ|tᵢ|), not the (possibly cancelled)
                // result — bound the absolute drift accordingly.
                let sum_abs_dot: f32 = x.iter().zip(&y).map(|(a, b)| (a * b).abs()).sum();
                let sum_abs_sq: f32 = x.iter().map(|a| a * a).sum();
                for (name, got, want, sum_abs) in [
                    ("dot", be.dot(&x, &y), scalar.dot(&x, &y), sum_abs_dot),
                    ("sq_norm", be.sq_norm(&x), scalar.sq_norm(&x), sum_abs_sq),
                ] {
                    let tol = f32::EPSILON * sum_abs * (d as f32).sqrt().max(4.0);
                    prop_assert!(
                        (got - want).abs() <= tol,
                        "{} d={} backend {}: {:?} vs scalar {:?} (tol {})",
                        name, d, be.name(), got, want, tol
                    );
                }
            }
        }

        #[test]
        fn pairwise_sq_distances_parallel_is_bitwise_serial(
            nv in 11usize..14, seed in 0u64..1_000_000
        ) {
            // pairs · d must cross the work threshold: C(11,2)=55 pairs.
            let d = 20_000usize;
            let data: Vec<Vec<f32>> = (0..nv).map(|i| fill(seed ^ i as u64, d)).collect();
            let refs: Vec<&[f32]> = data.iter().map(|v| v.as_slice()).collect();
            let par_d = with_threads(4, || vecops::pairwise_sq_distances(&refs));
            let ser_d = vecops::pairwise_sq_distances_serial(&refs);
            for (rp, rs) in par_d.iter().zip(&ser_d) {
                prop_assert_eq!(bits(rp), bits(rs));
            }
        }
    }
}
