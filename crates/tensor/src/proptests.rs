//! Property-based tests for the tensor substrate.

use crate::{col2im, conv_out_dim, im2col, matmul, vecops, Tensor};
use proptest::prelude::*;

fn vec_strategy(len: usize) -> impl Strategy<Value = Vec<f32>> {
    proptest::collection::vec(-10.0f32..10.0, len)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn add_commutes(data in vec_strategy(16), data2 in vec_strategy(16)) {
        let a = Tensor::from_vec(vec![4, 4], data).unwrap();
        let b = Tensor::from_vec(vec![4, 4], data2).unwrap();
        let ab = a.add(&b).unwrap();
        let ba = b.add(&a).unwrap();
        prop_assert_eq!(ab.data(), ba.data());
    }

    #[test]
    fn sub_then_add_roundtrips(data in vec_strategy(12), data2 in vec_strategy(12)) {
        let a = Tensor::from_vec(vec![12], data).unwrap();
        let b = Tensor::from_vec(vec![12], data2).unwrap();
        let back = a.sub(&b).unwrap().add(&b).unwrap();
        for (x, y) in back.data().iter().zip(a.data()) {
            prop_assert!((x - y).abs() < 1e-4);
        }
    }

    #[test]
    fn scale_is_linear_in_norm(data in vec_strategy(20), alpha in -4.0f32..4.0) {
        let a = Tensor::from_vec(vec![20], data).unwrap();
        let scaled = a.scale(alpha);
        prop_assert!((scaled.l2_norm() - alpha.abs() * a.l2_norm()).abs() < 1e-2);
    }

    #[test]
    fn matmul_identity(data in vec_strategy(9)) {
        let a = Tensor::from_vec(vec![3, 3], data).unwrap();
        let eye = Tensor::from_vec(vec![3, 3],
            vec![1.0, 0.0, 0.0, 0.0, 1.0, 0.0, 0.0, 0.0, 1.0]).unwrap();
        let c = matmul(&a, &eye).unwrap();
        prop_assert_eq!(c.data(), a.data());
    }

    #[test]
    fn matmul_distributes_over_addition(
        a in vec_strategy(6), b in vec_strategy(6), c in vec_strategy(6)
    ) {
        let a = Tensor::from_vec(vec![2, 3], a).unwrap();
        let b = Tensor::from_vec(vec![3, 2], b).unwrap();
        let c = Tensor::from_vec(vec![3, 2], c).unwrap();
        let lhs = matmul(&a, &b.add(&c).unwrap()).unwrap();
        let rhs = matmul(&a, &b).unwrap().add(&matmul(&a, &c).unwrap()).unwrap();
        for (x, y) in lhs.data().iter().zip(rhs.data()) {
            prop_assert!((x - y).abs() < 1e-2, "{} vs {}", x, y);
        }
    }

    #[test]
    fn im2col_col2im_adjoint(
        h in 2usize..6, w in 2usize..6, kh in 1usize..4, kw in 1usize..4,
        stride in 1usize..3, pad in 0usize..2, seed in 0u64..1000
    ) {
        prop_assume!(conv_out_dim(h, kh, stride, pad).is_ok());
        prop_assume!(conv_out_dim(w, kw, stride, pad).is_ok());
        let c = 2usize;
        let oh = conv_out_dim(h, kh, stride, pad).unwrap();
        let ow = conv_out_dim(w, kw, stride, pad).unwrap();
        let n_img = c * h * w;
        let n_col = c * kh * kw * oh * ow;
        // Deterministic pseudo-random fill from the seed.
        let x: Vec<f32> = (0..n_img).map(|i| ((i as f32 + seed as f32) * 0.7).sin()).collect();
        let y: Vec<f32> = (0..n_col).map(|i| ((i as f32 * 1.3) + seed as f32).cos()).collect();
        let mut x_col = vec![0.0; n_col];
        im2col(&x, &mut x_col, c, h, w, kh, kw, stride, pad);
        let mut y_img = vec![0.0; n_img];
        col2im(&y, &mut y_img, c, h, w, kh, kw, stride, pad);
        let lhs: f32 = x_col.iter().zip(&y).map(|(p, q)| p * q).sum();
        let rhs: f32 = x.iter().zip(&y_img).map(|(p, q)| p * q).sum();
        prop_assert!((lhs - rhs).abs() < 1e-2 * (1.0 + lhs.abs()), "{} vs {}", lhs, rhs);
    }

    #[test]
    fn median_bounded_by_extremes(rows in proptest::collection::vec(vec_strategy(5), 1..7)) {
        let refs: Vec<&[f32]> = rows.iter().map(|v| v.as_slice()).collect();
        let med = vecops::median(&refs);
        for i in 0..5 {
            let lo = refs.iter().map(|r| r[i]).fold(f32::INFINITY, f32::min);
            let hi = refs.iter().map(|r| r[i]).fold(f32::NEG_INFINITY, f32::max);
            prop_assert!(med[i] >= lo - 1e-6 && med[i] <= hi + 1e-6);
        }
    }

    #[test]
    fn trimmed_mean_bounded_and_permutation_invariant(
        rows in proptest::collection::vec(vec_strategy(4), 5..9)
    ) {
        let refs: Vec<&[f32]> = rows.iter().map(|v| v.as_slice()).collect();
        let tm = vecops::trimmed_mean(&refs, 1);
        // Bounded by per-coordinate extremes.
        for i in 0..4 {
            let lo = refs.iter().map(|r| r[i]).fold(f32::INFINITY, f32::min);
            let hi = refs.iter().map(|r| r[i]).fold(f32::NEG_INFINITY, f32::max);
            prop_assert!(tm[i] >= lo - 1e-5 && tm[i] <= hi + 1e-5);
        }
        // Permutation invariance: reverse the set of updates.
        let rev: Vec<&[f32]> = refs.iter().rev().copied().collect();
        let tm2 = vecops::trimmed_mean(&rev, 1);
        for (a, b) in tm.iter().zip(&tm2) {
            prop_assert!((a - b).abs() < 1e-5);
        }
    }

    #[test]
    fn mean_of_identical_vectors_is_identity(v in vec_strategy(8), n in 1usize..6) {
        let copies: Vec<&[f32]> = (0..n).map(|_| v.as_slice()).collect();
        let m = vecops::mean(&copies);
        for (a, b) in m.iter().zip(&v) {
            prop_assert!((a - b).abs() < 1e-4);
        }
    }

    #[test]
    fn unit_vector_has_unit_norm(v in vec_strategy(16)) {
        prop_assume!(vecops::l2_norm(&v) > 1e-3);
        let u = vecops::unit(&v);
        prop_assert!((vecops::l2_norm(&u) - 1.0).abs() < 1e-3);
    }
}
