//! Per-backend golden tests for the CPU backend trait (DESIGN.md §4f).
//!
//! The `GOLD_*` constants below are the exact bits produced by the
//! pre-backend (autovectorized scalar) kernels on the unmodified tree,
//! captured before the `tensor::backend` refactor landed. They pin two
//! contracts:
//!
//! * **Scalar ≡ pre-refactor, bitwise.** The extracted scalar backend
//!   must reproduce every golden bit-for-bit — the refactor is not
//!   allowed to move a single ULP on the portable path.
//! * **GEMM and elementwise ops are bitwise identical across backends.**
//!   Each output element's FLOP chain is independent and identically
//!   ordered in the scalar, AVX2, and AVX-512 microkernels, so the GEMM
//!   and mean/std/axpy goldens must hold under *any* active backend
//!   (CI runs this suite under `FABFLIP_BACKEND=scalar` and under
//!   auto-detection).
//!
//! Serial reductions (`dot`, `l2_norm`, and their delta forms) have a
//! per-backend fixed accumulation order: scalar matches the goldens
//! bitwise, SIMD backends must land within a ULP budget that scales
//! with the reduction length.
//!
//! All per-backend assertions go through `backend::instance(kind)`
//! directly — never the global `force()` — so this suite is safe under
//! the parallel test harness.

use fabflip_tensor::backend::{self, Kind, ALL_KINDS};
use fabflip_tensor::vecops;
use fabflip_tensor::{matmul_into, matmul_transpose_a, matmul_transpose_b};

// Pre-refactor golden bits (captured on the unmodified tree; inputs are
// the SplitMix64 streams below, flag-invariant under RUSTFLAGS="" and
// target-cpu=native).
const GOLD_MATMUL_FOLD: u32 = 0x728afd31;
const GOLD_MATMUL_FIRST: u32 = 0xc0b9c63e;
const GOLD_MATMUL_MID: u32 = 0xc017a959;
const GOLD_MATMUL_LAST: u32 = 0x3fe4e24b;
const GOLD_TRANSPOSE_A_FOLD: u32 = 0x9b08a9ff;
const GOLD_TRANSPOSE_B_FOLD: u32 = 0x353cd5c1;
const GOLD_MEAN_FOLD: u32 = 0x95a69f2e;
const GOLD_STD_FOLD: u32 = 0x9da5254e;
const GOLD_AXPY_FOLD: u32 = 0x5b258491;

/// (d, dot, l2_norm, dot_delta, l2_norm_delta) golden bits at
/// tail-exercising reduction lengths.
const GOLD_REDUCTIONS: [(usize, u32, u32, u32, u32); 3] = [
    (3, 0x3ded46dc, 0x3f30c5a6, 0x3ff4f196, 0x3fbac2a0),
    (16, 0x3f63d3c7, 0x401359b5, 0x406a0e0c, 0x403e2f3b),
    (4099, 0x4102125f, 0x421342eb, 0x44b301c6, 0x425406a1),
];

/// Deterministic SplitMix64 stream mapped to [-1, 1) — the exact input
/// generator the goldens were captured with.
fn fill(seed: u64, len: usize) -> Vec<f32> {
    let mut s = seed;
    (0..len)
        .map(|_| {
            s = s.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = s;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^= z >> 31;
            ((z >> 40) as f32 / (1u64 << 24) as f32) * 2.0 - 1.0
        })
        .collect()
}

/// Order-sensitive bit fold: any single-ULP drift anywhere flips it.
fn fold(v: &[f32]) -> u32 {
    v.iter().fold(0u32, |h, x| h.rotate_left(5) ^ x.to_bits())
}

/// ULP distance between two finite same-sign floats.
fn ulps(a: f32, b: f32) -> u32 {
    (a.to_bits() as i64 - b.to_bits() as i64).unsigned_abs() as u32
}

/// GEMM golden bits hold under whichever backend is active: every
/// backend's register tile evaluates each C element with the identical
/// per-element FLOP chain, so the fold is backend-invariant.
#[test]
fn gemm_goldens_bitwise_under_active_backend() {
    // Sizes straddle the KC=256, NC=1024, WR=64, MR=4 boundaries so the
    // full-tile, sub-tile, and remainder paths all execute.
    let (m, k, n) = (37, 300, 1100);
    let a = fill(1, m * k);
    let b = fill(2, k * n);
    let mut c = vec![0.0f32; m * n];
    matmul_into(&a, &b, &mut c, m, k, n);
    assert_eq!(
        fold(&c),
        GOLD_MATMUL_FOLD,
        "backend {}",
        backend::active().name()
    );
    assert_eq!(c[0].to_bits(), GOLD_MATMUL_FIRST);
    assert_eq!(c[m * n / 2].to_bits(), GOLD_MATMUL_MID);
    assert_eq!(c[m * n - 1].to_bits(), GOLD_MATMUL_LAST);

    let at = fill(3, k * m); // stored k×m
    let mut c2 = vec![0.0f32; m * n];
    matmul_transpose_a(&at, &b, &mut c2, m, k, n);
    assert_eq!(fold(&c2), GOLD_TRANSPOSE_A_FOLD);

    let bt = fill(4, n * k); // stored n×k
    let mut c3 = vec![0.0f32; m * n];
    matmul_transpose_b(&a, &bt, &mut c3, m, k, n);
    assert_eq!(fold(&c3), GOLD_TRANSPOSE_B_FOLD);
}

/// mean/std/axpy are elementwise over independent coordinates (separate
/// mul/add, no fused reassociation), so their goldens are also
/// backend-invariant.
#[test]
fn elementwise_goldens_bitwise_under_active_backend() {
    let d = 2069;
    let vs: Vec<Vec<f32>> = (0..5).map(|u| fill(100 + u, d)).collect();
    let refs: Vec<&[f32]> = vs.iter().map(|v| v.as_slice()).collect();
    assert_eq!(fold(&vecops::mean(&refs)), GOLD_MEAN_FOLD);
    assert_eq!(fold(&vecops::std_dev(&refs)), GOLD_STD_FOLD);

    let mut ax = fill(200, d);
    vecops::axpy_in_place(&mut ax, 0.37, &vs[0]);
    assert_eq!(fold(&ax), GOLD_AXPY_FOLD);
}

/// The scalar backend instance reproduces the pre-refactor serial
/// reduction bits exactly — the portable path did not move.
#[test]
fn scalar_reductions_match_pre_refactor_goldens_bitwise() {
    let be = backend::instance(Kind::Scalar);
    for &(d, g_dot, g_l2, g_dotd, g_l2d) in &GOLD_REDUCTIONS {
        let x = fill(10 + d as u64, d);
        let y = fill(20 + d as u64, d);
        let r = fill(30 + d as u64, d);
        assert_eq!(be.dot(&x, &y).to_bits(), g_dot, "dot d={d}");
        assert_eq!(be.sq_norm(&x).sqrt().to_bits(), g_l2, "l2 d={d}");
        assert_eq!(be.dot_delta(&x, &y, &r).to_bits(), g_dotd, "dotd d={d}");
        assert_eq!(
            be.sq_norm_delta(&x, &r).sqrt().to_bits(),
            g_l2d,
            "l2d d={d}"
        );
    }
}

/// SIMD serial reductions use a fixed per-backend order (striped vector
/// accumulators + a fixed horizontal-sum tree); they may differ from the
/// scalar order only within a ULP budget that grows with the number of
/// reassociated terms.
#[test]
fn simd_reductions_within_ulp_budget_of_scalar() {
    let scalar = backend::instance(Kind::Scalar);
    for kind in ALL_KINDS {
        if !kind.supported() || kind == Kind::Scalar {
            continue;
        }
        let be = backend::instance(kind);
        for &(d, ..) in &GOLD_REDUCTIONS {
            let budget = 4 + (d as u32) / 32;
            let x = fill(10 + d as u64, d);
            let y = fill(20 + d as u64, d);
            let r = fill(30 + d as u64, d);
            for (name, got, want) in [
                ("dot", be.dot(&x, &y), scalar.dot(&x, &y)),
                ("sq_norm", be.sq_norm(&x), scalar.sq_norm(&x)),
                (
                    "dot_delta",
                    be.dot_delta(&x, &y, &r),
                    scalar.dot_delta(&x, &y, &r),
                ),
                (
                    "sq_norm_delta",
                    be.sq_norm_delta(&x, &r),
                    scalar.sq_norm_delta(&x, &r),
                ),
            ] {
                assert!(
                    ulps(got, want) <= budget,
                    "{name} d={d} backend {}: {got:?} vs scalar {want:?} ({} ulps > {budget})",
                    be.name(),
                    ulps(got, want),
                );
            }
        }
    }
}

/// `dot_lanes` (the transpose-B / row-dot microkernel) is bitwise
/// identical across backends: its 16-lane partial-sum structure maps to
/// one zmm register (AVX-512) or two ymm registers (AVX2), and the
/// horizontal fold mirrors the scalar halving tree exactly.
#[test]
fn dot_lanes_bitwise_identical_across_backends() {
    let scalar = backend::instance(Kind::Scalar);
    for d in [0usize, 1, 3, 15, 16, 17, 31, 32, 300, 4099] {
        let x = fill(40 + d as u64, d);
        let y = fill(50 + d as u64, d);
        let want = scalar.dot_lanes(&x, &y).to_bits();
        for kind in ALL_KINDS {
            if !kind.supported() {
                continue;
            }
            let be = backend::instance(kind);
            assert_eq!(
                be.dot_lanes(&x, &y).to_bits(),
                want,
                "dot_lanes d={d} backend {}",
                be.name()
            );
        }
    }
}

/// The elementwise `*_assign` kernels are bitwise identical across
/// backends: each output coordinate is an independent mul/add/sqrt chain
/// with no reassociation, so SIMD lanes compute exactly the scalar FLOPs.
/// Lengths straddle the 8- and 16-lane boundaries so every backend's
/// vector body and scalar tail both execute.
#[test]
fn assign_kernels_bitwise_identical_across_backends() {
    let scalar = backend::instance(Kind::Scalar);
    for d in [1usize, 7, 8, 15, 16, 17, 33, 2069] {
        let src = fill(80 + d as u64, d);
        let v = fill(81 + d as u64, d);
        let m = fill(82 + d as u64, d);
        // `scale_sqrt_assign` takes the root of `out * alpha`: start from
        // squared deviations so the product is non-negative.
        let mut sq = vec![0.0f32; d];
        scalar.sq_dev_assign(&mut sq, &v, &m);

        let run = |be: &dyn backend::CpuBackend| {
            let mut add = fill(90 + d as u64, d);
            be.add_assign(&mut add, &src);
            let mut scale = fill(91 + d as u64, d);
            be.scale_assign(&mut scale, 0.37);
            let mut dev = vec![0.0f32; d];
            be.sq_dev_assign(&mut dev, &v, &m);
            let mut root = sq.clone();
            be.scale_sqrt_assign(&mut root, 0.25);
            let mut axpy = fill(92 + d as u64, d);
            be.axpy_assign(&mut axpy, -1.75, &src);
            [
                fold(&add),
                fold(&scale),
                fold(&dev),
                fold(&root),
                fold(&axpy),
            ]
        };
        let want = run(scalar);
        for kind in ALL_KINDS {
            if !kind.supported() {
                continue;
            }
            let got = run(backend::instance(kind));
            assert_eq!(
                got,
                want,
                "assign kernels d={d} backend {} diverge from scalar \
                 (add/scale/sq_dev/scale_sqrt/axpy folds)",
                backend::instance(kind).name()
            );
        }
    }
}

/// The GEMM register tile itself is bitwise identical across backends,
/// exercised directly through `gemm_tile` so the 64/16/8-column
/// sub-tile and masked-remainder paths are all covered. The "packed"
/// panel is the B matrix itself (`b_base = 0`, `b_stride = n`), which
/// is layout-identical to a `pack_panel` copy of the full width.
#[test]
fn gemm_tile_bitwise_identical_across_backends() {
    let scalar = backend::instance(Kind::Scalar);
    // Widths cover: masked tail (3, 9, 15), one 16-lane block (16),
    // 8-col sub-tile (24), 64-col block + remainders (64, 77, 200).
    for &(rows, k, n) in &[
        (4usize, 31usize, 3usize),
        (1, 31, 9),
        (2, 7, 15),
        (3, 12, 16),
        (4, 5, 24),
        (4, 9, 64),
        (3, 20, 77),
        (4, 16, 200),
    ] {
        let a = fill(60 + (rows * k * n) as u64, rows * k);
        let b = fill(70 + (rows + k + n) as u64, k * n);
        let mut want = vec![0.0f32; rows * n];
        // A is row-major rows×k: element (r, p) at r*k + p.
        scalar.gemm_tile(&a, 0, k, 1, rows, k, &b, 0, n, n, &mut want, 0, n);
        for kind in ALL_KINDS {
            if !kind.supported() {
                continue;
            }
            let be = backend::instance(kind);
            let mut got = vec![0.0f32; rows * n];
            be.gemm_tile(&a, 0, k, 1, rows, k, &b, 0, n, n, &mut got, 0, n);
            let same = got
                .iter()
                .zip(want.iter())
                .all(|(g, w)| g.to_bits() == w.to_bits());
            assert!(
                same,
                "gemm_tile rows={rows} k={k} n={n} backend {} diverges from scalar",
                be.name()
            );
        }
    }
}
