//! Dynamic witness for fabcheck's `alloc-on-hot-path` rule: a counting
//! global allocator proves the kernel-entry set performs **zero**
//! steady-state allocations once scratch arenas are warm.
//!
//! The static rule (crates/fabcheck/src/graph.rs) over-approximates
//! reachability and relies on `fabcheck::allow(alloc_on_hot_path)` escape
//! comments for grow-only arenas; this test is the other half of the
//! argument — it runs the real kernels and checks the allocator was never
//! called on the second (warm) pass.
//!
//! One `#[test]` on purpose: the counter is process-global and
//! `par::set_max_threads` is too, so concurrent tests would race.

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicUsize, Ordering};

use fabflip_tensor::vecops::{
    mean_into, median_into, pairwise_sq_distances_into, pairwise_tile_into, std_dev_into,
    trimmed_mean_into,
};
use fabflip_tensor::{
    col2im, im2col, matmul_into, matmul_transpose_a, matmul_transpose_b, par, quant, Tensor,
};

/// Counts `alloc` + `realloc` calls (frees are irrelevant: a kernel that
/// frees without allocating cannot have allocated on the hot path).
struct CountingAlloc;

static ALLOCS: AtomicUsize = AtomicUsize::new(0);

// SAFETY: delegates every operation to `System`, which upholds the
// `GlobalAlloc` contract; the added counter bump has no effect on the
// returned memory.
unsafe impl GlobalAlloc for CountingAlloc {
    // SAFETY: same contract as `System::alloc`, to which this forwards.
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        System.alloc(layout)
    }
    // SAFETY: same contract as `System::dealloc`, to which this forwards.
    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }
    // SAFETY: same contract as `System::realloc`, to which this forwards.
    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        System.realloc(ptr, layout, new_size)
    }
}

#[global_allocator]
static GLOBAL: CountingAlloc = CountingAlloc;

/// Allocations observed while running `f`.
fn allocs_during<F: FnMut()>(mut f: F) -> usize {
    let before = ALLOCS.load(Ordering::Relaxed);
    f();
    ALLOCS.load(Ordering::Relaxed) - before
}

/// Warm pass (arenas grow), then measured passes that must not allocate.
///
/// A kernel that allocates on the hot path does so deterministically on
/// *every* warm repeat (fixed inputs, warmed arenas), so the claim is
/// refuted only when every measured pass allocates. The counter is
/// process-global on purpose — Phase B must see pool-worker allocations —
/// which means rare ambient allocations elsewhere in the process
/// (test-harness machinery, lazy std initialization) can land inside one
/// measured window; retrying distinguishes that noise from a real
/// hot-path allocation.
fn assert_steady_state_alloc_free(name: &str, mut kernel: impl FnMut()) {
    kernel();
    let mut deltas = Vec::new();
    for _ in 0..3 {
        let delta = allocs_during(&mut kernel);
        if delta == 0 {
            return;
        }
        deltas.push(delta);
    }
    panic!("{name}: steady-state allocation(s) in every measured pass: {deltas:?}");
}

#[test]
fn hot_kernels_are_allocation_free_once_warm() {
    // ---- Phase A: serial. Every kernel entry must hit zero exactly. ----
    par::set_max_threads(1);

    let (m, k, n) = (24, 32, 40);
    let a: Vec<f32> = (0..m * k).map(|i| (i as f32 * 0.37).sin()).collect();
    let b: Vec<f32> = (0..k * n).map(|i| (i as f32 * 0.11).cos()).collect();
    let bt: Vec<f32> = (0..n * k).map(|i| (i as f32 * 0.11).cos()).collect();
    let at: Vec<f32> = (0..k * m).map(|i| (i as f32 * 0.37).sin()).collect();
    let mut c = vec![0.0f32; m * n];
    assert_steady_state_alloc_free("matmul_into", || {
        matmul_into(&a, &b, &mut c, m, k, n);
    });
    assert_steady_state_alloc_free("matmul_transpose_a", || {
        c.iter_mut().for_each(|v| *v = 0.0);
        matmul_transpose_a(&at, &b, &mut c, m, k, n);
    });
    assert_steady_state_alloc_free("matmul_transpose_b", || {
        c.iter_mut().for_each(|v| *v = 0.0);
        matmul_transpose_b(&a, &bt, &mut c, m, k, n);
    });

    let (ch, h, w, kk, stride, pad) = (3usize, 9usize, 9usize, 3usize, 1usize, 1usize);
    let img: Vec<f32> = (0..ch * h * w).map(|i| i as f32 * 0.01).collect();
    let mut col = vec![0.0f32; ch * kk * kk * h * w];
    let mut back = vec![0.0f32; ch * h * w];
    assert_steady_state_alloc_free("im2col/col2im", || {
        im2col(&img, &mut col, ch, h, w, kk, kk, stride, pad);
        back.iter_mut().for_each(|v| *v = 0.0);
        col2im(&col, &mut back, ch, h, w, kk, kk, stride, pad);
    });

    let d = 257;
    let n_up = 9;
    let updates: Vec<Vec<f32>> = (0..n_up)
        .map(|u| (0..d).map(|i| ((u * d + i) as f32 * 0.13).sin()).collect())
        .collect();
    let refs: Vec<&[f32]> = updates.iter().map(Vec::as_slice).collect();
    let mut out = vec![0.0f32; d];
    assert_steady_state_alloc_free("mean_into", || mean_into(&refs, &mut out));
    assert_steady_state_alloc_free("std_dev_into", || std_dev_into(&refs, &mut out));
    assert_steady_state_alloc_free("median_into", || median_into(&refs, &mut out));
    assert_steady_state_alloc_free("trimmed_mean_into", || {
        trimmed_mean_into(&refs, 2, &mut out);
    });
    // Backend-dispatched reductions: the first call initializes the
    // dispatch `OnceLock` (env read + detection — warm pass absorbs it);
    // steady-state calls must never touch the allocator on any backend.
    let mut red_sink = 0.0f32;
    assert_steady_state_alloc_free("vecops::dot/l2_norm", || {
        red_sink += fabflip_tensor::vecops::dot(&refs[0][..d], &refs[1][..d]);
        red_sink += fabflip_tensor::vecops::l2_norm(&refs[0][..d]);
    });
    assert_steady_state_alloc_free("vecops::dot_delta/l2_norm_delta", || {
        red_sink += fabflip_tensor::vecops::dot_delta(refs[0], refs[1], refs[2]);
        red_sink += fabflip_tensor::vecops::l2_norm_delta(refs[0], refs[2]);
    });
    assert_steady_state_alloc_free("vecops::axpy_in_place", || {
        out.iter_mut().for_each(|v| *v = 0.0);
        fabflip_tensor::vecops::axpy_in_place(&mut out, 0.37, refs[0]);
    });
    assert!(red_sink.is_finite());

    let mut dists = vec![0.0f32; n_up * n_up];
    assert_steady_state_alloc_free("pairwise_sq_distances_into", || {
        pairwise_sq_distances_into(&refs, &mut dists);
    });

    let mut tile = vec![0.0f32; 4 * n_up];
    assert_steady_state_alloc_free("pairwise_tile_into", || {
        pairwise_tile_into(2, 0, n_up, d, &mut tile, |i, j| {
            fabflip_tensor::vecops::sq_distance(refs[i], refs[j])
        });
    });

    let mut f16_buf = vec![quant::F16(0); d];
    let mut i8_buf = vec![0i8; d];
    let mut dec = vec![0.0f32; d];
    assert_steady_state_alloc_free("quant f16/i8 encode+decode", || {
        quant::f16_encode_into(refs[0], &mut f16_buf);
        quant::f16_decode_into(&f16_buf, &mut dec);
        let scale = quant::i8_encode_into(refs[0], &mut i8_buf);
        quant::i8_decode_into(&i8_buf, scale, &mut dec);
    });

    let f_byz = 2;
    let pool: Vec<usize> = (0..n_up).collect();
    let mut scores = vec![0.0f32; n_up];
    let mut row = vec![0.0f32; n_up - 1];
    assert_steady_state_alloc_free("krum_scores_into", || {
        fabflip_agg::krum_scores_into(&dists, n_up, &pool, f_byz, &mut scores, &mut row)
            .expect("geometry valid");
    });

    let theta = n_up - 2 * f_byz;
    let beta = theta - 2 * f_byz;
    let sel: Vec<&[f32]> = refs[..theta].to_vec();
    let mut agg_out = vec![0.0f32; d];
    let mut cols3 = vec![0.0f32; 3 * theta];
    assert_steady_state_alloc_free("bulyan_coordinate_chunk", || {
        fabflip_agg::bulyan_coordinate_chunk(&sel, 0, &mut agg_out, beta, &mut cols3);
    });

    // Streaming ingest: per-update server work must be allocation-free in
    // steady state. Mean-family folds never allocate; the rank-family
    // reservoir allocates only while filling to capacity (warm pass).
    use fabflip_agg::{DefenseKind, StreamingAggregator, StreamingConfig};
    let scfg = StreamingConfig {
        shards: 4,
        reservoir: 3,
        seed: 0x5EED,
    };
    let mut mean_agg =
        StreamingAggregator::new(DefenseKind::FedAvg, d, scfg, None).expect("streaming fedavg");
    assert_steady_state_alloc_free("StreamingAggregator::ingest (mean)", || {
        mean_agg.ingest(refs[0], 1.0);
    });
    let mut rank_agg =
        StreamingAggregator::new(DefenseKind::Median, d, scfg, None).expect("streaming median");
    for r in &refs {
        rank_agg.ingest(r, 1.0); // fill past capacity
    }
    assert_steady_state_alloc_free("StreamingAggregator::ingest (reservoir)", || {
        rank_agg.ingest(refs[1], 1.0);
    });

    // Layers return fresh output tensors (escaped sites): their per-call
    // cost must stay O(1) allocations, independent of batch and model.
    use fabflip_nn::{Conv2d, ConvTranspose2d, Layer};
    use rand::{rngs::StdRng, SeedableRng};
    let mut rng = StdRng::seed_from_u64(7);
    let mut conv = Conv2d::new(3, 4, 3, 1, 1, &mut rng);
    let x = Tensor::uniform(vec![2, 3, 8, 8], -1.0, 1.0, &mut rng);
    let y = conv.forward(&x).expect("forward");
    let g = Tensor::uniform(y.shape().to_vec(), -1.0, 1.0, &mut rng);
    conv.backward(&g).expect("backward");
    let conv_delta = allocs_during(|| {
        conv.forward(&x).expect("forward");
        conv.backward(&g).expect("backward");
    });
    assert!(
        conv_delta <= 8,
        "Conv2d fwd+bwd: {conv_delta} allocations (want O(1) output tensors only)"
    );
    let mut up = ConvTranspose2d::new(3, 2, 4, 2, 1, &mut rng);
    let yu = up.forward(&x).expect("forward");
    let gu = Tensor::uniform(yu.shape().to_vec(), -1.0, 1.0, &mut rng);
    up.backward(&gu).expect("backward");
    let up_delta = allocs_during(|| {
        up.forward(&x).expect("forward");
        up.backward(&gu).expect("backward");
    });
    assert!(
        up_delta <= 8,
        "ConvTranspose2d fwd+bwd: {up_delta} allocations (want O(1) output tensors only)"
    );

    // ---- Phase B: parallel. Pool workers warm their own thread-local ----
    // arenas lazily and block claiming is dynamic, so warmth converges
    // instead of arriving in one pass: iterate until a full measured pass
    // allocates nothing (bounded; each worker grows each arena at most
    // once per size).
    par::set_max_threads(4);
    // Sizes chosen to clear PAR_FLOP_THRESHOLD (matmul) and the vecops
    // element threshold, so the measured passes really run parallel.
    let (pm, pk, pn) = (128, 256, 256);
    let pa: Vec<f32> = (0..pm * pk).map(|i| (i as f32 * 0.05).sin()).collect();
    let pb: Vec<f32> = (0..pk * pn).map(|i| (i as f32 * 0.07).cos()).collect();
    let mut pc = vec![0.0f32; pm * pn];
    let pd = 1 << 17;
    let par_updates: Vec<Vec<f32>> = (0..8)
        .map(|u| (0..pd).map(|i| ((u + i) as f32 * 0.003).sin()).collect())
        .collect();
    let par_refs: Vec<&[f32]> = par_updates.iter().map(Vec::as_slice).collect();
    let mut par_out = vec![0.0f32; pd];
    let mut converged = false;
    for _ in 0..64 {
        let delta = allocs_during(|| {
            matmul_into(&pa, &pb, &mut pc, pm, pk, pn);
            mean_into(&par_refs, &mut par_out);
            std_dev_into(&par_refs, &mut par_out);
        });
        if delta == 0 {
            converged = true;
            break;
        }
    }
    assert!(
        converged,
        "parallel kernels kept allocating after 64 warm passes"
    );
    par::set_max_threads(1);
}
