//! End-to-end tests: scan the known-bad and known-clean fixture
//! workspaces under `tests/fixtures/`, through both the library API and
//! the compiled binary (exit codes, `--json` output, `--bless`).

use fabcheck::rules::Rule;
use fabcheck::{check_workspace, ratchet};
use std::path::{Path, PathBuf};
use std::process::Command;

fn fixture(name: &str) -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("tests/fixtures")
        .join(name)
}

/// Copies a fixture workspace into a fresh temp dir (for tests that
/// mutate files or bless baselines).
fn copy_fixture(name: &str, tag: &str) -> PathBuf {
    let dst = std::env::temp_dir().join(format!("fabcheck-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dst);
    copy_tree(&fixture(name), &dst).expect("fixture copy");
    dst
}

fn copy_tree(src: &Path, dst: &Path) -> std::io::Result<()> {
    std::fs::create_dir_all(dst)?;
    for entry in std::fs::read_dir(src)? {
        let entry = entry?;
        let to = dst.join(entry.file_name());
        if entry.path().is_dir() {
            copy_tree(&entry.path(), &to)?;
        } else {
            std::fs::copy(entry.path(), &to)?;
        }
    }
    Ok(())
}

fn run_binary(args: &[&str]) -> (i32, String, String) {
    let out = Command::new(env!("CARGO_BIN_EXE_fabcheck"))
        .args(args)
        .output()
        .expect("spawn fabcheck binary");
    (
        out.status.code().expect("exit code"),
        String::from_utf8_lossy(&out.stdout).into_owned(),
        String::from_utf8_lossy(&out.stderr).into_owned(),
    )
}

#[test]
fn bad_fixture_reports_every_forbidden_rule() {
    let report = check_workspace(&fixture("bad")).expect("scan");
    let fired: Vec<&str> = report.findings.iter().map(|f| f.rule.name()).collect();
    for rule in [
        "nondeterministic-collection",
        "entropy-rng",
        "wallclock-in-kernel",
        "env-var-outside-config",
        "unsafe-without-safety-comment",
        "thread-spawn-outside-par",
        "raw-pointer-outside-par",
        "alloc-on-hot-path",
        "seed-stream-registry",
        "unordered-float-reduction",
        "io-on-hot-path",
        "unclaimed-raw-span",
        "unsafe-claim-grammar",
        "target-feature-call-unguarded",
        "backend-parity",
    ] {
        assert!(fired.contains(&rule), "missing {rule} in {fired:?}");
    }
    // Findings carry exact positions: the undocumented unsafe block.
    let unsafe_hit = report
        .findings
        .iter()
        .find(|f| f.rule == Rule::UnsafeWithoutSafetyComment)
        .expect("unsafe finding");
    assert_eq!(unsafe_hit.file, "crates/tensor/src/kernel.rs");
    assert_eq!(unsafe_hit.line, 12);
    // The reachability finding names the route that makes the site hot.
    let alloc_hit = report
        .findings
        .iter()
        .find(|f| f.rule == Rule::AllocOnHotPath)
        .expect("alloc finding");
    assert_eq!(alloc_hit.file, "crates/tensor/src/matmul.rs");
    assert!(
        alloc_hit
            .message
            .contains("tensor::matmul::matmul_into → tensor::matmul::pack"),
        "route missing: {}",
        alloc_hit.message
    );
    // Counted debt: two unwraps, one todo!, three hot-path panic sites.
    assert_eq!(
        report.counts["unwrap-in-lib"]["crates/nn/src/lib.rs"], 2,
        "counts: {:?}",
        report.counts
    );
    assert_eq!(
        report.counts["todo-unimplemented"]["crates/nn/src/lib.rs"],
        1
    );
    assert_eq!(
        report.counts["panic-on-hot-path"]["crates/tensor/src/matmul.rs"],
        3
    );
    // The sum-strided carve in par.rs: claimed disjoint, unprovable.
    assert_eq!(
        report.counts["span-disjointness"]["crates/tensor/src/par.rs"],
        1
    );
}

#[test]
fn bad_fixture_regresses_against_its_baseline() {
    let report = check_workspace(&fixture("bad")).expect("scan");
    // The bad baseline is deliberately kept in the v1 bare-map format, so
    // this test also exercises the schema migration read path.
    let baseline = ratchet::load(&fixture("bad").join("FABCHECK_BASELINE.json")).expect("baseline");
    let (regressions, _) = ratchet::compare(&baseline.counts, &report.counts);
    // unwrap-in-lib grew 1 → 2, todo-unimplemented appeared 0 → 1, and
    // panic-on-hot-path (0 → 3) and span-disjointness (0 → 1) appeared
    // (v1 baselines lack both rules).
    assert_eq!(regressions.len(), 4, "{regressions:?}");
    assert!(regressions
        .iter()
        .any(|r| r.rule == "unwrap-in-lib" && r.baseline == 1 && r.actual == 2));
    assert!(regressions
        .iter()
        .any(|r| r.rule == "todo-unimplemented" && r.baseline == 0));
    assert!(regressions
        .iter()
        .any(|r| r.rule == "panic-on-hot-path" && r.baseline == 0 && r.actual == 3));
    assert!(regressions
        .iter()
        .any(|r| r.rule == "span-disjointness" && r.baseline == 0 && r.actual == 1));
}

#[test]
fn clean_fixture_is_silent() {
    let report = check_workspace(&fixture("clean")).expect("scan");
    assert!(
        report.findings.is_empty(),
        "false positives: {:?}",
        report.findings
    );
    assert!(report.counted.is_empty(), "{:?}", report.counted);
    // 10 files: the serve shell (`crates/serve/src/shell.rs`) is full of
    // sockets, locks, and spawns, and must still be silent — the blessed
    // I/O boundary.
    assert_eq!(report.files_checked, 10);
}

#[test]
fn binary_ci_mode_exit_codes() {
    let bad = fixture("bad");
    let (code, _, _) = run_binary(&["--ci", "--root", bad.to_str().expect("utf8 path")]);
    assert_eq!(code, 1);

    let clean = fixture("clean");
    let (code, stdout, stderr) =
        run_binary(&["--ci", "--root", clean.to_str().expect("utf8 path")]);
    assert_eq!(code, 0, "stdout: {stdout} stderr: {stderr}");
    assert!(stdout.contains("0 forbidden finding(s)"));
}

#[test]
fn binary_json_output_is_machine_readable() {
    let bad = fixture("bad");
    let (code, stdout, _) = run_binary(&["--json", "--root", bad.to_str().expect("utf8 path")]);
    assert_eq!(code, 1);
    let v: serde_json::Value = serde_json::from_str(&stdout).expect("valid JSON");
    let map = v.as_map().expect("object");
    let findings = map
        .iter()
        .find(|(k, _)| k == "findings")
        .and_then(|(_, v)| match v {
            serde_json::Value::Seq(items) => Some(items.len()),
            _ => None,
        })
        .expect("findings array");
    assert!(findings >= 5, "expected >=5 findings, got {findings}");
}

#[test]
fn corrupting_a_clean_tree_flips_exit_to_nonzero() {
    let dir = copy_fixture("clean", "corrupt");
    let root = dir.to_str().expect("utf8 path");
    let (code, _, _) = run_binary(&["--ci", "--root", root]);
    assert_eq!(code, 0);
    // Introduce one entropy call.
    let target = dir.join("crates/fl/src/sim.rs");
    let mut src = std::fs::read_to_string(&target).expect("read fixture");
    src.push_str("\npub fn corrupted() {\n    let _ = rand::thread_rng();\n}\n");
    std::fs::write(&target, src).expect("write fixture");
    let (code, stdout, _) = run_binary(&["--ci", "--root", root]);
    assert_eq!(code, 1, "stdout: {stdout}");
    assert!(stdout.contains("entropy-rng"));
    std::fs::remove_dir_all(&dir).ok();
}

/// Acceptance pin: planting a call to a `#[target_feature]` kernel from
/// an ordinary function in a clean tree flips `--ci` to failure via the
/// ISA-safety pass.
#[test]
fn unguarded_target_feature_call_flips_ci() {
    let dir = copy_fixture("clean", "tfcall");
    let root = dir.to_str().expect("utf8 path");
    let (code, _, _) = run_binary(&["--ci", "--root", root]);
    assert_eq!(code, 0);
    let target = dir.join("crates/tensor/src/backend/avx2.rs");
    let mut src = std::fs::read_to_string(&target).expect("read fixture");
    src.push_str(
        "\n#[target_feature(enable = \"avx512f\")]\n\
         fn gated(v: &[f32]) -> f32 {\n    v[0]\n}\n\n\
         pub fn hasty(v: &[f32]) -> f32 {\n    \
         // SAFETY(feature: avx512f): claimed but never detection-proven.\n    \
         unsafe { gated(v) }\n}\n",
    );
    std::fs::write(&target, src).expect("write fixture");
    let (code, stdout, _) = run_binary(&["--ci", "--root", root]);
    assert_eq!(code, 1, "stdout: {stdout}");
    assert!(stdout.contains("target-feature-call-unguarded"), "{stdout}");
    assert!(stdout.contains("avx512f"), "{stdout}");
    std::fs::remove_dir_all(&dir).ok();
}

/// Acceptance pin: a `fabcheck::claim(disjoint)` carve whose offset the
/// recognizer cannot prove disjoint (an overlapping sum stride) regresses
/// the span-disjointness ratchet and flips `--ci` to failure.
#[test]
fn unprovable_span_claim_flips_ci() {
    let dir = copy_fixture("clean", "spanclaim");
    let root = dir.to_str().expect("utf8 path");
    let (code, _, _) = run_binary(&["--ci", "--root", root]);
    assert_eq!(code, 0);
    let target = dir.join("crates/tensor/src/par.rs");
    let mut src = std::fs::read_to_string(&target).expect("read fixture");
    src.push_str(
        "\npub fn overlapping(data: &mut [f32], w: usize, per: usize) {\n    \
         let base = data.as_mut_ptr();\n    \
         let off = w + per / 2;\n    \
         // SAFETY(bound: off + per <= data.len()): scanned, never compiled.\n    \
         // fabcheck::claim(disjoint): spans overlap by half a block — wrong.\n    \
         let s = unsafe { std::slice::from_raw_parts_mut(base.wrapping_add(off), per) };\n    \
         s.fill(0.0);\n}\n",
    );
    std::fs::write(&target, src).expect("write fixture");
    let (code, stdout, _) = run_binary(&["--ci", "--root", root]);
    assert_eq!(code, 1, "stdout: {stdout}");
    assert!(stdout.contains("span-disjointness"), "{stdout}");
    std::fs::remove_dir_all(&dir).ok();
}

/// Acceptance pin: removing a backend's implementation of a trait method
/// in a clean tree is caught by `backend-parity` — the bad fixture's
/// `Scalar` impl already skips `axpy`, checked end to end here.
#[test]
fn backend_parity_gap_fails_ci_with_exact_anchor() {
    let bad = fixture("bad");
    let (code, stdout, _) = run_binary(&["--ci", "--root", bad.to_str().expect("utf8 path")]);
    assert_eq!(code, 1);
    assert!(
        stdout.contains("`CpuBackend::axpy` has no implementation"),
        "{stdout}"
    );
    assert!(
        stdout.contains("crates/tensor/src/backend/mod.rs:13"),
        "finding must anchor at the trait method declaration: {stdout}"
    );
}

/// `--explain` prints a rule's contract without scanning; unknown names
/// list the roster and exit 2.
#[test]
fn explain_prints_rule_contracts() {
    let (code, stdout, _) = run_binary(&["--explain", "unsafe-claim-grammar"]);
    assert_eq!(code, 0);
    assert!(stdout.contains("SAFETY(bound:"), "{stdout}");
    assert!(stdout.contains("SAFETY(feature:"), "{stdout}");
    let (code, _, stderr) = run_binary(&["--explain", "no-such-rule"]);
    assert_eq!(code, 2);
    assert!(stderr.contains("unsafe-claim-grammar"), "{stderr}");
    assert!(stderr.contains("backend-parity"), "{stderr}");
}

/// Acceptance pin on the real tree: every unsafe site in the blessed
/// SIMD backends and the thread layer carries a machine-parsed claim —
/// the audit map reports full coverage for those files.
#[test]
fn real_tree_unsafe_audit_is_fully_claimed_in_blessed_regions() {
    let report = check_workspace(real_root()).expect("scan");
    let blessed: Vec<(&String, &(u64, u64))> = report
        .unsafe_audit
        .iter()
        .filter(|(file, _)| {
            file.starts_with("crates/tensor/src/backend/") || *file == "crates/tensor/src/par.rs"
        })
        .collect();
    assert!(
        !blessed.is_empty(),
        "audit map must cover the blessed regions: {:?}",
        report.unsafe_audit
    );
    for (file, (claimed, total)) in blessed {
        assert_eq!(
            claimed, total,
            "{file}: {claimed}/{total} unsafe sites claimed"
        );
    }
}

#[test]
fn bless_rewrites_baseline_and_future_runs_pass() {
    let dir = copy_fixture("bad", "bless");
    let root = dir.to_str().expect("utf8 path");
    // Counted debt exceeds the baseline: fails before blessing…
    let (code, _, _) = run_binary(&["--ci", "--root", root]);
    assert_eq!(code, 1);
    // …and still fails after, because forbidden findings are never
    // blessed away.
    let (code, _, _) = run_binary(&["--bless", "--root", root]);
    assert_eq!(code, 1);
    let baseline_path = dir.join("FABCHECK_BASELINE.json");
    let blessed = ratchet::load(&baseline_path).expect("blessed baseline");
    assert_eq!(blessed.counts["unwrap-in-lib"]["crates/nn/src/lib.rs"], 2);
    assert_eq!(
        blessed.counts["todo-unimplemented"]["crates/nn/src/lib.rs"],
        1
    );
    assert_eq!(
        blessed.counts["panic-on-hot-path"]["crates/tensor/src/matmul.rs"],
        3
    );
    // Blessing a v1 baseline rewrites it in the v4 envelope: roster plus
    // the unsafe-site coverage map.
    let raw = std::fs::read_to_string(&baseline_path).expect("read blessed");
    assert!(raw.contains("\"schema_version\": 4"), "{raw}");
    assert!(raw.contains("\"rules\": ["), "{raw}");
    assert!(raw.contains("\"unsafe_audit\""), "{raw}");
    // With the counted debt blessed, only the forbidden findings remain.
    let report = check_workspace(&dir).expect("scan");
    let (regressions, _) = ratchet::compare(&blessed.counts, &report.counts);
    assert!(regressions.is_empty());
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn missing_baseline_fails_closed_on_counted_debt() {
    let dir = copy_fixture("bad", "nobase");
    std::fs::remove_file(dir.join("FABCHECK_BASELINE.json")).expect("remove baseline");
    let report = check_workspace(&dir).expect("scan");
    let baseline = ratchet::load(&dir.join("FABCHECK_BASELINE.json")).expect("empty baseline");
    let (regressions, _) = ratchet::compare(&baseline.counts, &report.counts);
    assert!(
        !regressions.is_empty(),
        "counted debt must regress against an absent baseline"
    );
    std::fs::remove_dir_all(&dir).ok();
}

/// Diagnostics are a deterministic function of the tree: two runs emit
/// byte-identical `--json` reports, pinned against a committed golden
/// file (regenerate with
/// `cargo run -p fabcheck -- --json --root crates/fabcheck/tests/fixtures/bad`).
#[test]
fn json_output_matches_golden_file() {
    let bad = fixture("bad");
    let root = bad.to_str().expect("utf8 path");
    let (_, first, _) = run_binary(&["--json", "--root", root]);
    let (_, second, _) = run_binary(&["--json", "--root", root]);
    assert_eq!(first, second, "two runs diverged");
    let golden = std::fs::read_to_string(bad.join("expected.json")).expect("golden file");
    assert_eq!(first, golden, "regenerate the golden file if intentional");
    // The report explains WHY a site is hot: the callgraph section lists
    // each hot function with its entry route.
    let v: serde_json::Value = serde_json::from_str(&first).expect("valid JSON");
    let callgraph = v
        .as_map()
        .and_then(|m| m.iter().find(|(k, _)| k == "callgraph"))
        .map(|(_, v)| format!("{v:?}"))
        .expect("callgraph section");
    assert!(callgraph.contains("tensor::matmul::pack"), "{callgraph}");
}

/// The allow-comment scoping bugfix, pinned against the fixture: an
/// allow separated from its site by a blank line must NOT suppress, and
/// coverage consumed by one line must not chain through a *trailing*
/// comment onto the next line. Only full-line comments continue a block.
#[test]
fn allow_comments_do_not_chain_past_blank_lines_or_trailing_comments() {
    let report = check_workspace(&fixture("bad")).expect("scan");
    let reduce_lines: Vec<u32> = report
        .findings
        .iter()
        .filter(|f| {
            f.rule == Rule::UnorderedFloatReduction && f.file == "crates/tensor/src/reduce.rs"
        })
        .map(|f| f.line)
        .collect();
    // Line 31: the site below the blank-line-separated allow still fires.
    assert!(reduce_lines.contains(&31), "{reduce_lines:?}");
    // Line 36 is covered by its allow; line 37 (after the trailing
    // comment on 36) must NOT inherit that coverage.
    assert!(!reduce_lines.contains(&36), "{reduce_lines:?}");
    assert!(reduce_lines.contains(&37), "{reduce_lines:?}");
}

/// The duplicate-stream-id fixture: both the collision and the
/// unregistered call sites are reported with exact positions.
#[test]
fn seed_stream_registry_findings_are_position_exact() {
    let report = check_workspace(&fixture("bad")).expect("scan");
    let streams: Vec<(&str, u32)> = report
        .findings
        .iter()
        .filter(|f| f.rule == Rule::SeedStreamRegistry)
        .map(|f| (f.file.as_str(), f.line))
        .collect();
    assert!(
        streams.contains(&("crates/fl/src/faults.rs", 9)),
        "duplicate id missing: {streams:?}"
    );
    assert!(
        streams.contains(&("crates/fl/src/faults.rs", 21)),
        "unregistered constant missing: {streams:?}"
    );
    assert!(
        streams.contains(&("crates/fl/src/sim.rs", 17)),
        "magic literal missing: {streams:?}"
    );
}

/// v2 → v4 baseline migration, end to end through the binary: a clean
/// tree with a v2-envelope baseline passes as-is, `--bless` rewrites it
/// in the v4 envelope (roster plus the unsafe-audit coverage map,
/// populated from the fixture's actual unsafe sites), and the tree still
/// passes.
#[test]
fn v2_baseline_migrates_to_v4_roundtrip() {
    let dir = copy_fixture("clean", "migrate");
    let root = dir.to_str().expect("utf8 path");
    let before = std::fs::read_to_string(dir.join("FABCHECK_BASELINE.json")).expect("read");
    assert!(before.contains("\"schema_version\": 2"), "{before}");
    let (code, _, _) = run_binary(&["--ci", "--root", root]);
    assert_eq!(code, 0, "v2 baseline must parse");
    let (code, _, _) = run_binary(&["--bless", "--root", root]);
    assert_eq!(code, 0);
    let after = std::fs::read_to_string(dir.join("FABCHECK_BASELINE.json")).expect("read");
    assert!(after.contains("\"schema_version\": 4"), "{after}");
    assert!(after.contains("\"rules\": ["), "{after}");
    assert!(after.contains("\"unsafe_audit\""), "{after}");
    let (code, _, _) = run_binary(&["--ci", "--root", root]);
    assert_eq!(code, 0, "v4 baseline must pass unchanged");
    std::fs::remove_dir_all(&dir).ok();
}

/// Workspace root for tests that scan the real tree.
fn real_root() -> &'static Path {
    Path::new(env!("CARGO_MANIFEST_DIR"))
        .parent()
        .and_then(Path::parent)
        .expect("workspace root")
}

/// The PR-6 cross-crate edge, pinned: the `--json` callgraph proves
/// `fl::stream::StreamingServer::submit` reaches `tensor::vecops` through
/// `aggregation::streaming::StreamingAggregator::ingest` — the chain the
/// per-crate v2 graph could not see.
#[test]
fn cross_crate_hot_chain_appears_in_json_callgraph() {
    let root = real_root().to_str().expect("utf8 path");
    let (_, stdout, _) = run_binary(&["--json", "--root", root]);
    let v: serde_json::Value = serde_json::from_str(&stdout).expect("valid JSON");
    let hot = v
        .as_map()
        .and_then(|m| m.iter().find(|(k, _)| k == "callgraph"))
        .and_then(|(_, cg)| cg.as_map())
        .and_then(|m| m.iter().find(|(k, _)| k == "hot"))
        .map(|(_, h)| format!("{h:?}"))
        .expect("hot section");
    for link in [
        "fl::stream::StreamingServer::submit",
        "aggregation::streaming::StreamingAggregator::ingest",
        "tensor::vecops::l2_norm_delta",
    ] {
        assert!(hot.contains(link), "chain link {link} missing");
    }
    // The via chain itself crosses all three crates in entry order.
    let chain = hot
        .split("l2_norm_delta")
        .find(|seg| seg.contains("via"))
        .map(|seg| seg.to_string());
    assert!(chain.is_some(), "no via chain ends at l2_norm_delta");
}

/// Planting an allocation in `StreamingAggregator::ingest` must flip
/// `--ci` to failure with a route from the `fl` entry — the cross-crate
/// false negative this release closes.
#[test]
fn vec_in_ingest_flips_ci_from_fl_entry() {
    let src = real_root();
    let dir = std::env::temp_dir().join(format!("fabcheck-xcrate-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    copy_tree(&src.join("crates"), &dir.join("crates")).expect("copy crates");
    copy_tree(&src.join("compat"), &dir.join("compat")).expect("copy compat");
    std::fs::copy(src.join("Cargo.toml"), dir.join("Cargo.toml")).expect("copy manifest");
    std::fs::copy(
        src.join(fabcheck::BASELINE_FILE),
        dir.join(fabcheck::BASELINE_FILE),
    )
    .expect("copy baseline");
    let root = dir.to_str().expect("utf8 path");
    let (code, stdout, _) = run_binary(&["--ci", "--root", root]);
    assert_eq!(code, 0, "copied tree must start clean: {stdout}");

    let target = dir.join("crates/aggregation/src/streaming.rs");
    let text = std::fs::read_to_string(&target).expect("read streaming.rs");
    let needle = "pub fn ingest(&mut self, update: &[f32], weight: f32) {";
    let planted = text.replace(
        needle,
        "pub fn ingest(&mut self, update: &[f32], weight: f32) {\n        \
         let _grow = vec![0.0f32; update.len()];",
    );
    assert_ne!(planted, text, "ingest signature moved; update the test");
    std::fs::write(&target, planted).expect("write streaming.rs");

    let (code, stdout, _) = run_binary(&["--ci", "--root", root]);
    assert_eq!(code, 1, "planted alloc must fail CI: {stdout}");
    assert!(stdout.contains("alloc-on-hot-path"), "{stdout}");
    assert!(
        stdout.contains("fl::stream::StreamingServer::submit"),
        "route must start at the fl entry: {stdout}"
    );
    std::fs::remove_dir_all(&dir).ok();
}

/// The serve-dir blessing must not blunt the rule for the core: the bad
/// fixture's `fl::stream::StreamingServer::submit` dials a `TcpStream`,
/// and that is still an `io-on-hot-path` finding with a route from the
/// fl entry.
#[test]
fn stray_tcp_in_fl_hot_entry_still_fires_despite_serve_blessing() {
    let report = check_workspace(&fixture("bad")).expect("scan");
    let io_hit = report
        .findings
        .iter()
        .find(|f| f.rule == Rule::IoOnHotPath && f.file == "crates/fl/src/stream.rs")
        .expect("fl TcpStream finding");
    assert!(
        io_hit.message.contains("net::TcpStream::connect"),
        "{}",
        io_hit.message
    );
    assert!(
        io_hit
            .message
            .contains("fl::stream::StreamingServer::submit"),
        "route must name the fl entry: {}",
        io_hit.message
    );
}

/// Planting a `TcpStream` in `StreamingAggregator::ingest` on the real
/// tree must flip `--ci` to failure — the `crates/serve/` blessing is a
/// directory boundary, not a hole in the aggregation core's purity.
#[test]
fn tcp_dial_in_ingest_flips_ci_from_fl_entry() {
    let src = real_root();
    let dir = std::env::temp_dir().join(format!("fabcheck-tcpplant-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    copy_tree(&src.join("crates"), &dir.join("crates")).expect("copy crates");
    copy_tree(&src.join("compat"), &dir.join("compat")).expect("copy compat");
    std::fs::copy(src.join("Cargo.toml"), dir.join("Cargo.toml")).expect("copy manifest");
    std::fs::copy(
        src.join(fabcheck::BASELINE_FILE),
        dir.join(fabcheck::BASELINE_FILE),
    )
    .expect("copy baseline");
    let root = dir.to_str().expect("utf8 path");
    let (code, stdout, _) = run_binary(&["--ci", "--root", root]);
    assert_eq!(code, 0, "copied tree must start clean: {stdout}");

    let target = dir.join("crates/aggregation/src/streaming.rs");
    let text = std::fs::read_to_string(&target).expect("read streaming.rs");
    let needle = "pub fn ingest(&mut self, update: &[f32], weight: f32) {";
    let planted = text.replace(
        needle,
        "pub fn ingest(&mut self, update: &[f32], weight: f32) {\n        \
         let _probe = std::net::TcpStream::connect(\"127.0.0.1:9\");",
    );
    assert_ne!(planted, text, "ingest signature moved; update the test");
    std::fs::write(&target, planted).expect("write streaming.rs");

    let (code, stdout, _) = run_binary(&["--ci", "--root", root]);
    assert_eq!(code, 1, "planted TcpStream must fail CI: {stdout}");
    assert!(stdout.contains("io-on-hot-path"), "{stdout}");
    assert!(
        stdout.contains("fl::stream::StreamingServer::submit"),
        "route must start at the fl entry: {stdout}"
    );
    std::fs::remove_dir_all(&dir).ok();
}

/// The real workspace must stay clean: this is the same check CI runs,
/// kept as a test so `cargo test` alone catches contract violations.
#[test]
fn real_workspace_has_no_forbidden_findings() {
    let root = Path::new(env!("CARGO_MANIFEST_DIR"))
        .parent()
        .and_then(Path::parent)
        .expect("workspace root");
    let report = check_workspace(root).expect("scan");
    assert!(
        report.findings.is_empty(),
        "forbidden findings in the real tree: {:#?}",
        report.findings
    );
    let baseline = ratchet::load(&root.join(fabcheck::BASELINE_FILE)).expect("baseline");
    let (regressions, _) = ratchet::compare(&baseline.counts, &report.counts);
    assert!(
        regressions.is_empty(),
        "ratchet regressions: {regressions:#?}"
    );
}
