//! Clean fixture: the rayon-shim path is a blessed `FABFLIP_THREADS`
//! budget module, so its `env::var` read is allowed.

pub fn budget() -> usize {
    std::env::var("FABFLIP_THREADS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(1)
}
