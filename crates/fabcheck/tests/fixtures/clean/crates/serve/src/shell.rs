//! Serving-shell fixture: blocking socket I/O, queue locks, condvar
//! waits, and ad-hoc threads are all legal inside `crates/serve/` — the
//! blessed I/O boundary mirroring `BLESSED_SIMD_DIR`. The hot-path walk
//! stops at this directory's door, so none of this may produce a
//! finding. Scanned, never compiled.
use std::sync::{Condvar, Mutex};

pub fn accept_loop(addr: &str) {
    let listener = match std::net::TcpListener::bind(addr) {
        Ok(l) => l,
        Err(_) => return,
    };
    let queue = Mutex::new(Vec::<Vec<u8>>::new());
    let ready = Condvar::new();
    std::thread::scope(|s| {
        s.spawn(|| {
            for conn in listener.incoming().flatten() {
                pump(conn, &queue, &ready);
            }
        });
    });
}

fn pump(mut conn: std::net::TcpStream, queue: &Mutex<Vec<Vec<u8>>>, ready: &Condvar) {
    use std::io::Read;
    let mut buf = [0u8; 64];
    while let Ok(n) = conn.read(&mut buf) {
        if n == 0 {
            break;
        }
        if let Ok(mut q) = queue.lock() {
            q.push(buf[..n].to_vec());
            ready.notify_one();
        }
    }
}
