//! Clean fixture: a seeded, deterministic "simulation" — the blessed way
//! to draw randomness.
use rand::rngs::StdRng;
use rand::SeedableRng;

pub fn select(seed: u64) -> StdRng {
    StdRng::seed_from_u64(seed)
}
