//! Clean fixture: the blessed seed-stream shape — one `streams` registry
//! module with unique ids, and every `sub_seed` call site referencing a
//! registry constant. fabcheck must report nothing here.

/// The one registry module (`seed-stream-registry` requires exactly one
/// per workspace, in the `fl` crate).
pub mod streams {
    /// Training-data synthesis stream.
    pub const TRAIN_DATA: u64 = 1;
    /// Client-sampling stream.
    pub const CLIENT_SAMPLING: u64 = 6;
}

/// SplitMix-style mixing stand-in (the definition itself is not a call
/// site; the rule must not flag the parameter list).
pub fn sub_seed(master: u64, stream: u64, a: u64, b: u64) -> u64 {
    master ^ stream.wrapping_mul(0x9E37_79B9_7F4A_7C15) ^ a ^ b
}

/// Registered call sites: named constants, never bare literals.
pub fn derive(seed: u64, round: u64) -> (u64, u64) {
    (
        sub_seed(seed, streams::TRAIN_DATA, 0, 0),
        sub_seed(seed, streams::CLIENT_SAMPLING, round, 0),
    )
}
