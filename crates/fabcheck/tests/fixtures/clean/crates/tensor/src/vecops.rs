//! Clean fixture for `unordered-float-reduction`: the three blessed
//! shapes — an allow-annotated fixed-order kernel, a direct value sort,
//! and a derived-key sort with a value tie-break. No findings here.

/// A blessed fixed-order reduction: the allow comment states the
/// fixed-order argument, so the `.sum::<f32>()` needle is escaped.
pub fn norm_sq(a: &[f32]) -> f32 {
    // fabcheck::allow(unordered_float_reduction): serial left-to-right
    // slice iteration; this IS the fixed-order kernel.
    a.iter().map(|x| x * x).sum::<f32>()
}

/// Sorting *values* by `partial_cmp` needs no tie-break: equal floats are
/// bitwise interchangeable, so stability is unobservable.
pub fn sort_values(v: &mut [f32]) {
    v.sort_unstable_by(|a, b| a.partial_cmp(b).unwrap_or(std::cmp::Ordering::Less));
}

/// Sorting by a *derived* key with a value tie-break: equal keys order by
/// the tuple's second component, so the permutation is deterministic.
pub fn order_by_distance(xs: &[f32], med: f32) -> Vec<usize> {
    let mut order: Vec<usize> = (0..xs.len()).collect();
    order.sort_by(|&a, &b| {
        let ka = xs.get(a).copied().unwrap_or(0.0);
        let kb = xs.get(b).copied().unwrap_or(0.0);
        ((ka - med).abs(), a)
            .partial_cmp(&((kb - med).abs(), b))
            .unwrap_or(std::cmp::Ordering::Equal)
    });
    order
}
