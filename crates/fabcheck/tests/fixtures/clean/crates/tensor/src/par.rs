//! Clean fixture: the thread layer's monopolies, all properly used.
//! `dispatch` is a declared hot entry, and this file is the one blessed
//! location for blocking synchronization (`io-on-hot-path` exempts it)
//! and raw spans — provided each `from_raw_parts_mut` carries its own
//! `fabcheck::claim(disjoint)` annotation. Nothing may fire here.

use std::sync::Mutex;

/// Worker wake-up flag (blocking primitives are this file's monopoly).
pub static GATE: Mutex<usize> = Mutex::new(0);

/// Hot entry: hands each worker a disjoint span of `data`.
pub fn dispatch(data: &mut [f32], workers: usize) {
    if let Ok(mut g) = GATE.lock() {
        *g += 1;
    }
    let len = data.len();
    let per = len.div_ceil(workers.max(1));
    let base = data.as_mut_ptr();
    for w in 0..workers {
        let lo = (w * per).min(len);
        let hi = ((w + 1) * per).min(len);
        // SAFETY(bound: lo <= hi && hi <= len): `[lo, hi)` lies inside
        // `data`, which outlives the loop; spans never overlap.
        // fabcheck::claim(disjoint): `lo` strides by whole `per`-sized
        // blocks, so workers' `[lo, hi)` ranges partition `data`.
        let span = unsafe { std::slice::from_raw_parts_mut(base.wrapping_add(lo), hi - lo) };
        span.fill(0.0);
    }
}
