//! Clean fixture: the CPU-backend dispatcher reads `FABFLIP_BACKEND`
//! once at startup — `env::var` here is blessed (`BLESSED_ENV_FILES`),
//! mirroring the real tree's `crates/tensor/src/backend/mod.rs`.

use std::sync::OnceLock;

static KIND: OnceLock<&'static str> = OnceLock::new();

pub fn active_name() -> &'static str {
    KIND.get_or_init(|| match std::env::var("FABFLIP_BACKEND") {
        Ok(v) if v == "scalar" => "scalar",
        _ => "auto",
    })
}
