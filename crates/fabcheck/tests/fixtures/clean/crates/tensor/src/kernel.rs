//! Clean fixture: needle-shaped content in every position the lexer must
//! see through — comments, strings, char literals, raw strings, test
//! modules — plus a properly documented unsafe block. fabcheck must report
//! nothing here.

/* block comment bait: HashMap /* nested: thread_rng */ Instant */

/// Doc-comment prose bait: Instantiates a HashMap via thread_rng.
pub fn lexer_bait() -> &'static str {
    let _char_with_quote = '"';
    let _raw = r#"HashMap thread_rng unsafe env::var"#;
    let _raw_hashes = r##"quote-hash "# SystemTime inside"##;
    let _byte = b"from_entropy";
    "SystemTime Instant OsRng *const bait"
}

/// Slice-based (no raw pointers — those are `par.rs`'s monopoly) with one
/// unsafe block claiming one SAFETY comment.
pub fn first(v: &[f32]) -> f32 {
    assert!(!v.is_empty(), "first: empty slice");
    // SAFETY: the assert above guarantees index 0 is in bounds.
    unsafe { *v.get_unchecked(0) }
}

/// `Instantiates` must not whole-ident-match `Instant`; `unwrap_or` must
/// not match `unwrap`.
pub fn instantiates(v: Option<usize>) -> usize {
    v.unwrap_or(0)
}

#[cfg(test)]
mod tests {
    use std::collections::HashMap;

    #[test]
    fn order_independent_check_may_use_hashmap() {
        let mut m: HashMap<u32, u32> = HashMap::new();
        m.insert(1, 2);
        assert_eq!(m.get(&1).copied().unwrap(), 2);
    }
}
