//! Clean fixture: an allocation-free kernel entry. `matmul_into` is in
//! fabcheck's declared hot-entry set, so everything reachable from here is
//! scanned by the `alloc-on-hot-path` and `panic-on-hot-path` rules — this
//! file must produce neither, including through its callee and its one
//! escaped setup branch.

/// Kernel entry: elementwise-ish stand-in shaped like the real signature.
pub fn matmul_into(a: &[f32], b: &[f32], c: &mut [f32], m: usize, k: usize, n: usize) {
    if c.len() != m * n {
        // fabcheck::allow(panic_on_hot_path): geometry misuse is a caller
        // bug; fail fast before touching any output.
        panic!("matmul_into: output is {} not {m}x{n}", c.len());
    }
    let bias = scale(k);
    for ((out, x), y) in c.iter_mut().zip(a.iter().cycle()).zip(b.iter().cycle()) {
        *out = x * y + bias;
    }
}

/// Reachable from the entry: must also be allocation- and panic-free.
fn scale(k: usize) -> f32 {
    (k as f32).sqrt()
}
