//! Clean fixture: raw pointers inside the blessed SIMD backend dir
//! (`BLESSED_SIMD_DIR`) with a per-site machine-parsed SAFETY claim —
//! silent under `raw-pointer-outside-par`,
//! `unsafe-without-safety-comment`, and `unsafe-claim-grammar`.

pub fn lane_sum(v: &[f32]) -> f32 {
    let p: *const f32 = v.as_ptr();
    let mut s = 0.0f32;
    for i in 0..v.len() {
        // SAFETY(bound: i < v.len()): the offset pointer stays in bounds
        // of the borrowed slice.
        s += unsafe { *p.wrapping_add(i) };
    }
    s
}
