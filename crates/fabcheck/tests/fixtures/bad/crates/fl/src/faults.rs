//! Deliberately bad fixture for `seed-stream-registry`: a registry with a
//! duplicate stream id, plus call sites using an unregistered constant.
//! Never compiled — only scanned.

pub mod streams {
    pub const TRAIN_DATA: u64 = 1;
    pub const TEST_DATA: u64 = 2;
    /// Collision: same id as `TRAIN_DATA` — correlated "randomness".
    pub const ATTACK: u64 = 1;
}

/// A constant declared OUTSIDE the registry module: call sites using it
/// must be flagged as unregistered.
pub const ROGUE_STREAM: u64 = 7;

pub fn sub_seed(master: u64, stream: u64, a: u64, b: u64) -> u64 {
    master ^ stream ^ a ^ b
}

pub fn derive(seed: u64) -> u64 {
    sub_seed(seed, ROGUE_STREAM, 0, 0)
}
