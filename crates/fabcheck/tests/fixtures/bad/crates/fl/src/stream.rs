//! Deliberately bad fixture: the hot ingest entry dials a TCP socket.
//! The serving shell (`crates/serve/`) is blessed for I/O, but the core
//! is not — a stray `TcpStream` here must still fail `--ci`.
//! Never compiled — only scanned.

pub struct StreamingServer;

impl StreamingServer {
    /// `io-on-hot-path`: blocking network I/O inside the hot entry.
    pub fn submit(&mut self, update: &[f32]) -> usize {
        let _probe = std::net::TcpStream::connect("127.0.0.1:9");
        update.len()
    }
}
