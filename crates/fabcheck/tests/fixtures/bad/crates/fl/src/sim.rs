//! Deliberately bad fixture: entropy, env-var, and hash-set violations in
//! an "FL" crate. Never compiled — only scanned.
use std::collections::HashSet;

pub fn select(n: usize) -> HashSet<usize> {
    let threads: usize = std::env::var("FABFLIP_THREADS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(1);
    let mut rng = rand::thread_rng();
    let _ = (threads, &mut rng);
    (0..n).collect()
}

/// `seed-stream-registry`: a magic-number stream id at the call site.
pub fn derive(seed: u64) -> u64 {
    crate::faults::sub_seed(seed, 3, 0, 0)
}
