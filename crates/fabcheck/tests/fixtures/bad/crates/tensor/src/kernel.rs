//! Deliberately bad fixture: numeric-crate determinism violations plus an
//! undocumented unsafe block. Never compiled — only scanned by fabcheck's
//! integration tests.
use std::collections::HashMap;
use std::time::Instant;

pub fn kernel(cache: &mut HashMap<usize, f32>) -> f32 {
    let t0 = Instant::now();
    let sum: f32 = cache.values().sum();
    let _ = t0.elapsed();
    let p = &sum as *const f32;
    unsafe { *p }
}

pub fn ad_hoc_parallelism() {
    let h = std::thread::spawn(|| 0u32);
    let _ = h.join();
}
