//! Deliberately bad fixture: SIMD-style raw-pointer code outside the
//! blessed `crates/tensor/src/backend/` home. The backend-dir blessing
//! must not leak — lifetime-erased pointers anywhere else in product
//! code still fail `--ci`, even with a dutiful SAFETY comment.

pub fn stray_lane_load(v: &[f32]) -> f32 {
    let p: *const f32 = v.as_ptr();
    // SAFETY: `v` is non-empty in every caller, so the midpoint offset
    // stays in bounds of the borrow.
    unsafe { *p.wrapping_add(v.len() / 2) }
}
