//! Deliberately bad fixture: this backend skips `CpuBackend::axpy`, so
//! `backend-parity` flags the roster gap (anchored at the trait
//! declaration in mod.rs). Never compiled — only scanned.

use super::CpuBackend;

pub struct Scalar;

impl CpuBackend for Scalar {
    fn name(&self) -> &'static str {
        "scalar"
    }

    fn dot(&self, a: &[f32], b: &[f32]) -> f32 {
        let mut s = 0.0;
        for (x, y) in a.iter().zip(b) {
            s += x * y;
        }
        s
    }
}
