//! Deliberately bad fixture for the workspace `backend-parity` pass: the
//! trait roster below has three methods, but the scalar backend
//! (scalar.rs) implements only two — the gap is reported here, at the
//! missing method's declaration. Never compiled — only scanned.

mod avx2;
mod avx512;
mod scalar;

pub trait CpuBackend: Send + Sync {
    fn name(&self) -> &'static str;
    fn dot(&self, a: &[f32], b: &[f32]) -> f32;
    fn axpy(&self, out: &mut [f32], alpha: f32, src: &[f32]);
}
