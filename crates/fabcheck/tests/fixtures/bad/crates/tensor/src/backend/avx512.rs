//! Deliberately bad fixture for `target-feature-call-unguarded`: a free
//! function calls an avx512f-gated kernel without proving the ISA (it is
//! neither `#[target_feature]` itself nor a blessed backend method), so
//! executing it on a host without AVX-512 would be undefined behavior.
//! Never compiled — only scanned.

use super::CpuBackend;

#[target_feature(enable = "avx512f")]
fn wide_dot(a: &[f32], b: &[f32]) -> f32 {
    // SAFETY(bound: 0 < a.len() == b.len()): first-element loads only.
    unsafe { *a.as_ptr() * *b.as_ptr() }
}

pub fn fast_dot(a: &[f32], b: &[f32]) -> f32 {
    // SAFETY(feature: avx512f): claimed, but this call site never ran
    // feature detection — the ISA-safety pass must reject it.
    unsafe { wide_dot(a, b) }
}

pub struct Avx512;

impl CpuBackend for Avx512 {
    fn name(&self) -> &'static str {
        "avx512f"
    }

    fn dot(&self, a: &[f32], b: &[f32]) -> f32 {
        let mut s = 0.0;
        for (x, y) in a.iter().zip(b) {
            s += x * y;
        }
        s
    }

    fn axpy(&self, out: &mut [f32], alpha: f32, src: &[f32]) {
        for (o, x) in out.iter_mut().zip(src) {
            *o += alpha * x;
        }
    }
}
