//! Deliberately bad fixture: an allocation reachable from a declared
//! kernel entry (`matmul_into` → `pack` → `.to_vec()`), plus indexing
//! panic sites on the hot path. Never compiled — only scanned.

pub fn matmul_into(a: &[f32], b: &[f32], c: &mut [f32], m: usize, k: usize, n: usize) {
    let _console = std::io::stdout();
    let scratch = pack(a);
    for i in 0..m * n {
        c[i] = scratch[i % scratch.len()] + b[0] * k as f32;
    }
}

fn pack(a: &[f32]) -> Vec<f32> {
    a.to_vec()
}
