//! Deliberately bad fixture for `unsafe-claim-grammar`: one free-text
//! SAFETY comment inside a `#[target_feature]` kernel (must be a parsed
//! `bound:` claim) and one wrong-kind claim (a `feature:` claim on a
//! block that carves pointers and so needs `bound:`). Never compiled —
//! only scanned.

use super::CpuBackend;

#[target_feature(enable = "avx2")]
fn lane_dot(a: &[f32], b: &[f32]) -> f32 {
    let p = a.as_ptr();
    let q = b.as_ptr();
    // SAFETY: both pointers stay in bounds because the slices are
    // non-empty — free text, not a machine-checked claim.
    unsafe { *p.add(0) * *q.add(0) }
}

pub struct Avx2;

impl CpuBackend for Avx2 {
    fn name(&self) -> &'static str {
        "avx2"
    }

    fn dot(&self, a: &[f32], b: &[f32]) -> f32 {
        // SAFETY(feature: avx2): detected by the dispatcher before this
        // backend was handed out.
        unsafe { lane_dot(a, b) }
    }

    fn axpy(&self, out: &mut [f32], alpha: f32, src: &[f32]) {
        let p = out.as_mut_ptr();
        // SAFETY(feature: avx2): wrong claim kind — this block carves raw
        // pointers, so the grammar demands a `bound:` claim.
        unsafe { *p.add(0) = alpha * *src.as_ptr().add(0) };
    }
}
