//! Deliberately bad fixture for the span-disjointness audit: raw spans in
//! the blessed thread file, but one with no `fabcheck::claim(disjoint)`
//! annotation and one whose claim names none of the call's arguments.
//! Never compiled — only scanned.

pub fn split(data: &mut [f32], per: usize) {
    let base = data.as_mut_ptr();
    let lo = per;
    let hi = data.len();
    // SAFETY: `[lo, hi)` is in bounds and no other span aliases it.
    let tail = unsafe { std::slice::from_raw_parts_mut(base.wrapping_add(lo), hi - lo) };
    tail.fill(0.0);
    // SAFETY: the head span `[0, lo)` is disjoint from `tail` above.
    // fabcheck::claim(disjoint): the workers partition the matrix rows.
    let head = unsafe { std::slice::from_raw_parts_mut(base, lo) };
    head.fill(1.0);
}

/// A claimed-but-unverifiable carve: the offset strides by a *sum*, which
/// the span-disjointness recognizer cannot prove partitions the slice —
/// counted debt, not a forbidden finding.
pub fn split_sum(data: &mut [f32], lo: usize, per: usize) {
    let base = data.as_mut_ptr();
    let off = lo + per;
    // SAFETY(bound: off + per <= data.len()): scanned, never compiled.
    // fabcheck::claim(disjoint): offsets stride by `lo + per`, a sum the
    // recognizer rejects.
    let span = unsafe { std::slice::from_raw_parts_mut(base.wrapping_add(off), per) };
    span.fill(2.0);
}
