//! Deliberately bad fixture for `unordered-float-reduction`, including
//! the allow-comment scoping cases: an allow separated from its site by a
//! blank line must NOT suppress, and an allow consumed by one line must
//! not leak past a trailing comment to the next. Never compiled — only
//! scanned.

pub fn naked_sum(xs: &[f32]) -> f32 {
    xs.iter().map(|x| x * x).sum::<f32>()
}

pub fn float_seeded_fold(xs: &[f32]) -> f32 {
    xs.iter().fold(0.0f32, |acc, &x| acc + x)
}

pub fn sort_without_tie_break(scores: &[f32]) -> Vec<usize> {
    let mut order: Vec<usize> = (0..scores.len()).collect();
    order.sort_by(|&a, &b| {
        let ka = scores.get(a).copied().unwrap_or(0.0);
        let kb = scores.get(b).copied().unwrap_or(0.0);
        ka.abs()
            .partial_cmp(&kb.abs())
            .unwrap_or(std::cmp::Ordering::Equal)
    });
    order
}

pub fn allow_separated_by_blank_line(xs: &[f32]) -> f32 {
    // fabcheck::allow(unordered_float_reduction): stale — a blank line
    // separates this comment from the site, so it must NOT suppress.

    xs.iter().map(|x| x + 1.0).sum::<f32>()
}

pub fn allow_must_not_leak_past_trailing_comment(xs: &[f32]) -> (f32, f32) {
    // fabcheck::allow(unordered_float_reduction): covers only the next line
    let a = xs.iter().map(|x| x * x).sum::<f32>(); // trailing note
    let b = xs.iter().map(|x| x - 1.0).sum::<f32>();
    (a, b)
}
