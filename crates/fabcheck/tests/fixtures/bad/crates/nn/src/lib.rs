//! Deliberately bad fixture: counted-rule debt above the committed
//! baseline. Never compiled — only scanned.

pub fn load(bytes: &[u8]) -> Vec<f32> {
    let s = std::str::from_utf8(bytes).unwrap();
    s.lines().map(|l| l.parse().unwrap()).collect()
}

pub fn backward() {
    todo!()
}
