//! # fabcheck
//!
//! A self-contained static-analysis pass enforcing this workspace's
//! determinism and panic-safety contracts (DESIGN.md § Static invariants).
//! No `syn`, no registry deps: a minimal hand-rolled Rust lexer
//! ([`lexer`]) feeds a whole-identifier rule engine ([`rules`]), and
//! counted rules ratchet against a committed baseline ([`ratchet`]).
//!
//! Run it from anywhere in the repo:
//!
//! ```text
//! cargo run -p fabcheck -- --ci          # what CI runs; exit 1 on any hit
//! cargo run -p fabcheck -- --json        # machine-readable report
//! cargo run -p fabcheck -- --bless       # rewrite FABCHECK_BASELINE.json
//! ```

pub mod diag;
pub mod graph;
pub mod lexer;
pub mod parser;
pub mod ratchet;
pub mod rules;
pub mod walk;

use ratchet::{Counts, Regression, UnsafeAudit};
use rules::Finding;
use std::path::{Path, PathBuf};

/// Default baseline filename at the workspace root.
pub const BASELINE_FILE: &str = "FABCHECK_BASELINE.json";

/// Everything one pass over the tree produces.
#[derive(Debug)]
pub struct Report {
    /// Forbidden-rule hits (any of these fails the run), sorted by
    /// file/line/column/rule.
    pub findings: Vec<Finding>,
    /// Counted-rule hits (ratcheted, not forbidden), same order.
    pub counted: Vec<Finding>,
    /// Counted tallies per `rule × file`. Always contains an entry for
    /// every counted rule so a blessed baseline pins zeros explicitly.
    pub counts: Counts,
    /// The hot-path call graph: kernel entries found and every function
    /// reachable from them (see [`graph::HOT_ENTRIES`]).
    pub hot: graph::HotSummary,
    /// Unsafe-site coverage per non-test file with at least one `unsafe`
    /// site: how many carry a SAFETY claim, out of how many exist.
    pub unsafe_audit: UnsafeAudit,
    /// Number of files scanned.
    pub files_checked: usize,
}

/// Scans every `.rs` file under `root/crates` and `root/compat`: the
/// per-file rules, then the workspace call-graph rules over the same
/// sources.
///
/// # Errors
///
/// Propagates I/O failures from the walk.
pub fn check_workspace(root: &Path) -> std::io::Result<Report> {
    let files = walk::collect(root)?;
    let mut sources = Vec::with_capacity(files.len());
    for file in &files {
        sources.push(std::fs::read_to_string(&file.path)?);
    }
    let files_checked = files.len();

    let mut findings = Vec::new();
    let mut counted = Vec::new();
    let mut take = |finding: Finding| {
        if finding.rule.is_forbidden() {
            findings.push(finding);
        } else {
            counted.push(finding);
        }
    };
    for (file, src) in files.iter().zip(&sources) {
        for finding in rules::check_file(&file.class, src) {
            take(finding);
        }
    }
    let pairs: Vec<(&rules::FileClass, &str)> = files
        .iter()
        .zip(&sources)
        .map(|(f, s)| (&f.class, s.as_str()))
        .collect();
    for finding in rules::check_seed_streams(&pairs) {
        take(finding);
    }
    for finding in rules::check_backend_parity(&pairs) {
        take(finding);
    }
    let analysis = graph::analyze(&pairs);
    for finding in analysis.findings {
        take(finding);
    }
    let mut unsafe_audit = UnsafeAudit::new();
    for (class, src) in &pairs {
        if class.is_test_file {
            continue;
        }
        let (claimed, total) = rules::unsafe_site_audit(src);
        if total > 0 {
            unsafe_audit.insert(class.rel.clone(), (claimed, total));
        }
    }

    // Deterministic diagnostics regardless of rule evaluation order.
    let key = |f: &Finding| (f.file.clone(), f.line, f.col, f.rule.name());
    findings.sort_by_key(key);
    counted.sort_by_key(key);

    let mut counts = Counts::new();
    for rule in rules::Rule::ALL.iter().filter(|r| !r.is_forbidden()) {
        counts.insert(rule.name().to_string(), Default::default());
    }
    for f in &counted {
        *counts
            .entry(f.rule.name().to_string())
            .or_default()
            .entry(f.file.clone())
            .or_insert(0) += 1;
    }
    Ok(Report {
        findings,
        counted,
        counts,
        hot: analysis.summary,
        unsafe_audit,
        files_checked,
    })
}

/// Parsed command line for [`run`].
#[derive(Debug, Default)]
pub struct Options {
    /// Workspace root; discovered from the current directory when absent.
    pub root: Option<PathBuf>,
    /// Baseline path; `<root>/FABCHECK_BASELINE.json` when absent.
    pub baseline: Option<PathBuf>,
    /// Emit the machine-readable JSON report instead of diagnostics.
    pub json: bool,
    /// Rewrite the baseline at the observed counts.
    pub bless: bool,
    /// CI mode: identical checks, but says so in the summary line.
    pub ci: bool,
    /// Print one rule's contract (and an example claim) and exit.
    pub explain: Option<String>,
}

impl Options {
    /// Parses CLI arguments (everything after the program name).
    ///
    /// # Errors
    ///
    /// Returns a usage message on unknown or incomplete flags.
    pub fn parse<I: IntoIterator<Item = String>>(args: I) -> Result<Options, String> {
        let mut opts = Options::default();
        let mut it = args.into_iter();
        while let Some(arg) = it.next() {
            match arg.as_str() {
                "--json" => opts.json = true,
                "--bless" => opts.bless = true,
                "--ci" => opts.ci = true,
                "--root" => {
                    opts.root = Some(PathBuf::from(it.next().ok_or("--root needs a directory")?));
                }
                "--baseline" => {
                    opts.baseline =
                        Some(PathBuf::from(it.next().ok_or("--baseline needs a path")?));
                }
                "--explain" => {
                    opts.explain = Some(it.next().ok_or("--explain needs a rule name")?);
                }
                "--help" | "-h" => {
                    return Err(USAGE.to_string());
                }
                other => return Err(format!("unknown flag {other:?}\n{USAGE}")),
            }
        }
        Ok(opts)
    }
}

/// CLI usage text.
pub const USAGE: &str = "\
fabcheck — workspace lint for the determinism & panic-safety contracts

USAGE: cargo run -p fabcheck -- [FLAGS]

FLAGS:
  --ci              CI mode (same checks; exit 1 on any forbidden hit or
                    ratchet regression)
  --json            print the machine-readable JSON report
  --bless           rewrite FABCHECK_BASELINE.json at the current counts
                    (use after driving a counted rule down; never silences
                    forbidden rules)
  --explain RULE    print the rule's contract and an example claim, then
                    exit (no scan)
  --root DIR        workspace root (default: discovered from the cwd)
  --baseline PATH   baseline file (default: <root>/FABCHECK_BASELINE.json)";

/// Walks upward from `start` to the first directory containing both
/// `Cargo.toml` and `crates/` — the workspace root, regardless of which
/// subdirectory the tool is invoked from.
pub fn discover_root(start: &Path) -> Option<PathBuf> {
    let mut dir = start.to_path_buf();
    loop {
        if dir.join("Cargo.toml").is_file() && dir.join("crates").is_dir() {
            return Some(dir);
        }
        if !dir.pop() {
            return None;
        }
    }
}

/// Runs the whole pass with CLI semantics, writing to `stdout`/`stderr`.
/// Returns the process exit code: `0` clean, `1` findings or regressions,
/// `2` usage or I/O errors.
pub fn run(opts: &Options) -> i32 {
    if let Some(rule) = &opts.explain {
        return match rules::explain(rule) {
            Some(text) => {
                println!("{text}");
                0
            }
            None => {
                let known: Vec<&str> = rules::Rule::ALL.iter().map(|r| r.name()).collect();
                eprintln!(
                    "fabcheck: unknown rule {rule:?}; known rules:\n  {}",
                    known.join("\n  ")
                );
                2
            }
        };
    }
    let root = match &opts.root {
        Some(r) => r.clone(),
        None => {
            let cwd = std::env::current_dir().unwrap_or_else(|_| PathBuf::from("."));
            match discover_root(&cwd) {
                Some(r) => r,
                None => {
                    eprintln!(
                        "fabcheck: no workspace root (Cargo.toml + crates/) above {}",
                        cwd.display()
                    );
                    return 2;
                }
            }
        }
    };
    let baseline_path = opts
        .baseline
        .clone()
        .unwrap_or_else(|| root.join(BASELINE_FILE));

    let report = match check_workspace(&root) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("fabcheck: scan failed: {e}");
            return 2;
        }
    };
    let baseline = match ratchet::load(&baseline_path) {
        Ok(b) => b,
        Err(e) => {
            eprintln!("fabcheck: {e}");
            return 2;
        }
    };
    let (regressions, improved) = ratchet::compare(&baseline.counts, &report.counts);

    if opts.bless {
        if let Err(e) = ratchet::bless(&baseline_path, &report.counts, &report.unsafe_audit) {
            eprintln!("fabcheck: {e}");
            return 2;
        }
    }
    let regressions: Vec<Regression> = if opts.bless { Vec::new() } else { regressions };

    if opts.json {
        print!(
            "{}",
            diag::render_json(
                &report.findings,
                &report.counts,
                &regressions,
                &report.hot,
                &report.unsafe_audit,
                report.files_checked
            )
        );
    } else {
        for f in &report.findings {
            print!("{}", diag::render_finding(f));
        }
        for r in &regressions {
            print!("{}", diag::render_regression(r));
        }
        let counted_total: u64 = report
            .counts
            .values()
            .flat_map(|files| files.values())
            .sum();
        let mode = if opts.ci { " (ci)" } else { "" };
        println!(
            "fabcheck{mode}: {} files, {} forbidden finding(s), {} regression(s), \
             counted debt: {counted_total}",
            report.files_checked,
            report.findings.len(),
            regressions.len(),
        );
        if opts.bless {
            println!("fabcheck: baseline blessed at {}", baseline_path.display());
        } else if improved && regressions.is_empty() {
            println!(
                "fabcheck: counted debt shrank below the baseline — run \
                 `cargo run -p fabcheck -- --bless` to lock it in"
            );
        }
    }

    if report.findings.is_empty() && regressions.is_empty() {
        0
    } else {
        1
    }
}
