//! The `fabcheck` binary: thin wrapper over [`fabcheck::run`].

fn main() {
    let opts = match fabcheck::Options::parse(std::env::args().skip(1)) {
        Ok(opts) => opts,
        Err(msg) => {
            eprintln!("{msg}");
            std::process::exit(2);
        }
    };
    std::process::exit(fabcheck::run(&opts));
}
