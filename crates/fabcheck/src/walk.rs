//! Workspace walker: finds every `.rs` file under `crates/` and `compat/`,
//! classifies it for the rule engine, and resolves out-of-line
//! `#[cfg(test)] mod x;` targets in a first pass so `x.rs` / `x/mod.rs`
//! count as all-test files.

use crate::rules::{test_only_mods, FileClass};
use std::collections::BTreeSet;
use std::path::{Path, PathBuf};

/// Directory names never descended into: build output, VCS metadata, and
/// fabcheck's own deliberately-bad fixture trees.
const SKIP_DIRS: &[&str] = &["target", ".git", "fixtures"];

/// A classified source file ready for [`crate::rules::check_file`].
#[derive(Debug)]
pub struct WorkspaceFile {
    /// Absolute path on disk.
    pub path: PathBuf,
    /// Classification (includes the root-relative path).
    pub class: FileClass,
}

/// Collects and classifies every checkable source file under
/// `root/crates` and `root/compat`, sorted by relative path so output and
/// baseline ordering are deterministic.
///
/// # Errors
///
/// Propagates directory-walk and file-read I/O errors.
pub fn collect(root: &Path) -> std::io::Result<Vec<WorkspaceFile>> {
    let mut files: Vec<(PathBuf, String)> = Vec::new();
    for top in ["crates", "compat"] {
        let dir = root.join(top);
        if dir.is_dir() {
            walk_dir(&dir, root, &mut files)?;
        }
    }
    files.sort_by(|a, b| a.1.cmp(&b.1));

    // First pass: find files that are out-of-line #[cfg(test)] modules.
    let mut test_files: BTreeSet<String> = BTreeSet::new();
    for (path, rel) in &files {
        let src = std::fs::read_to_string(path)?;
        for name in test_only_mods(&src) {
            let dir = match rel.rfind('/') {
                Some(idx) => &rel[..idx],
                None => "",
            };
            test_files.insert(format!("{dir}/{name}.rs"));
            test_files.insert(format!("{dir}/{name}/mod.rs"));
        }
    }

    Ok(files
        .into_iter()
        .map(|(path, rel)| {
            let class = classify(&rel, test_files.contains(&rel));
            WorkspaceFile { path, class }
        })
        .collect())
}

fn walk_dir(dir: &Path, root: &Path, out: &mut Vec<(PathBuf, String)>) -> std::io::Result<()> {
    let mut entries: Vec<PathBuf> = std::fs::read_dir(dir)?
        .map(|e| e.map(|e| e.path()))
        .collect::<std::io::Result<_>>()?;
    entries.sort();
    for path in entries {
        let name = path.file_name().and_then(|n| n.to_str()).unwrap_or("");
        if path.is_dir() {
            if !SKIP_DIRS.contains(&name) {
                walk_dir(&path, root, out)?;
            }
        } else if name.ends_with(".rs") {
            let rel = path
                .strip_prefix(root)
                .unwrap_or(&path)
                .components()
                .map(|c| c.as_os_str().to_string_lossy())
                .collect::<Vec<_>>()
                .join("/");
            out.push((path, rel));
        }
    }
    Ok(())
}

/// Classifies a root-relative path (`crates/<name>/…` or `compat/<name>/…`).
fn classify(rel: &str, is_cfg_test_mod_file: bool) -> FileClass {
    let parts: Vec<&str> = rel.split('/').collect();
    let in_crates = parts.first() == Some(&"crates");
    let crate_name = parts.get(1).copied().unwrap_or("").to_string();
    // Everything after crates/<name>/ decides the target kind.
    let tail = &parts[2.min(parts.len())..];
    let in_dir = |d: &str| tail.iter().rev().skip(1).any(|p| *p == d);
    FileClass {
        rel: rel.to_string(),
        in_crates,
        crate_name,
        is_test_file: in_dir("tests") || in_dir("benches") || is_cfg_test_mod_file,
        is_example: in_dir("examples"),
        is_bin: rel.ends_with("/src/main.rs") || in_dir("bin"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn classify_kinds() {
        let c = classify("crates/tensor/src/matmul.rs", false);
        assert!(c.in_crates && c.crate_name == "tensor");
        assert!(!c.is_test_file && !c.is_bin && !c.is_example);

        assert!(classify("crates/fabcheck/tests/integration.rs", false).is_test_file);
        assert!(classify("crates/bench/benches/micro.rs", false).is_test_file);
        assert!(classify("crates/bench/src/bin/perf.rs", false).is_bin);
        assert!(classify("crates/cli/src/main.rs", false).is_bin);
        assert!(classify("crates/fl/examples/probe.rs", false).is_example);
        assert!(!classify("compat/rand/src/lib.rs", false).in_crates);
        assert!(classify("crates/nn/src/proptests.rs", true).is_test_file);
    }
}
