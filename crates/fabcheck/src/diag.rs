//! Diagnostic rendering: rustc-style human output and `--json` machine
//! output. Both are deterministic — findings arrive sorted by file, line,
//! column from the checker and maps are `BTreeMap`s.

use crate::graph::HotSummary;
use crate::ratchet::{json_string, Counts, Regression, UnsafeAudit};
use crate::rules::Finding;

/// Renders one finding like a rustc diagnostic:
///
/// ```text
/// error[fabcheck::entropy-rng]: `thread_rng` draws OS entropy…
///   --> crates/fl/src/sim.rs:42:17
/// ```
pub fn render_finding(f: &Finding) -> String {
    let severity = if f.rule.is_forbidden() {
        "error"
    } else {
        "note"
    };
    format!(
        "{severity}[fabcheck::{}]: {}\n  --> {}:{}:{}\n",
        f.rule.name(),
        f.message,
        f.file,
        f.line,
        f.col
    )
}

/// Renders a ratchet regression.
pub fn render_regression(r: &Regression) -> String {
    format!(
        "error[fabcheck::ratchet]: {} count in {} grew from {} to {}; \
         remove the new site (or, if the baseline is genuinely stale, run \
         `cargo run -p fabcheck -- --bless`)\n",
        r.rule, r.file, r.baseline, r.actual
    )
}

/// The complete machine-readable report for `--json`: forbidden findings,
/// counted tallies, ratchet regressions, the hot-path call graph
/// (each hot function with the entry chain that makes it hot — the CI
/// artifact answers *why* a path is hot, not just that it is), and the
/// unsafe-site coverage map the CI job summary tabulates.
pub fn render_json(
    findings: &[Finding],
    counts: &Counts,
    regressions: &[Regression],
    hot: &HotSummary,
    unsafe_audit: &UnsafeAudit,
    files_checked: usize,
) -> String {
    let mut out = String::from("{\n  \"findings\": [");
    for (i, f) in findings.iter().enumerate() {
        out.push_str(if i == 0 { "\n" } else { ",\n" });
        out.push_str(&format!(
            "    {{\"rule\": {}, \"file\": {}, \"line\": {}, \"col\": {}, \"message\": {}}}",
            json_string(f.rule.name()),
            json_string(&f.file),
            f.line,
            f.col,
            json_string(&f.message)
        ));
    }
    if !findings.is_empty() {
        out.push_str("\n  ");
    }
    out.push_str("],\n  \"counts\": {");
    for (ri, (rule, files)) in counts.iter().enumerate() {
        out.push_str(if ri == 0 { "\n" } else { ",\n" });
        out.push_str(&format!("    {}: {{", json_string(rule)));
        for (fi, (file, n)) in files.iter().enumerate() {
            out.push_str(if fi == 0 { "\n" } else { ",\n" });
            out.push_str(&format!("      {}: {n}", json_string(file)));
        }
        if !files.is_empty() {
            out.push_str("\n    ");
        }
        out.push('}');
    }
    if !counts.is_empty() {
        out.push_str("\n  ");
    }
    out.push_str("},\n  \"regressions\": [");
    for (i, r) in regressions.iter().enumerate() {
        out.push_str(if i == 0 { "\n" } else { ",\n" });
        out.push_str(&format!(
            "    {{\"rule\": {}, \"file\": {}, \"baseline\": {}, \"actual\": {}}}",
            json_string(&r.rule),
            json_string(&r.file),
            r.baseline,
            r.actual
        ));
    }
    if !regressions.is_empty() {
        out.push_str("\n  ");
    }
    out.push_str("],\n  \"callgraph\": {\n    \"entries\": [");
    for (i, e) in hot.entries.iter().enumerate() {
        out.push_str(if i == 0 { "" } else { ", " });
        out.push_str(&json_string(e));
    }
    out.push_str("],\n    \"hot\": [");
    for (i, h) in hot.hot.iter().enumerate() {
        out.push_str(if i == 0 { "\n" } else { ",\n" });
        let via: Vec<String> = h.via.iter().map(|v| json_string(v)).collect();
        out.push_str(&format!(
            "      {{\"fn\": {}, \"file\": {}, \"line\": {}, \"via\": [{}]}}",
            json_string(&h.fqn),
            json_string(&h.file),
            h.line,
            via.join(", ")
        ));
    }
    if !hot.hot.is_empty() {
        out.push_str("\n    ");
    }
    out.push_str("]\n  },\n  \"unsafe_audit\": {");
    for (i, (file, (claimed, total))) in unsafe_audit.iter().enumerate() {
        out.push_str(if i == 0 { "\n" } else { ",\n" });
        out.push_str(&format!(
            "    {}: {{\"claimed\": {claimed}, \"total\": {total}}}",
            json_string(file)
        ));
    }
    if !unsafe_audit.is_empty() {
        out.push_str("\n  ");
    }
    out.push_str(&format!("}},\n  \"files_checked\": {files_checked}\n}}\n"));
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rules::Rule;

    fn finding() -> Finding {
        Finding {
            rule: Rule::EntropyRng,
            file: "crates/fl/src/sim.rs".into(),
            line: 42,
            col: 17,
            message: "`thread_rng` draws OS entropy".into(),
        }
    }

    #[test]
    fn human_rendering_is_rustc_shaped() {
        let text = render_finding(&finding());
        assert!(text.starts_with("error[fabcheck::entropy-rng]:"));
        assert!(text.contains("--> crates/fl/src/sim.rs:42:17"));
        let counted = Finding {
            rule: Rule::UnwrapInLib,
            ..finding()
        };
        assert!(render_finding(&counted).starts_with("note[fabcheck::unwrap-in-lib]:"));
    }

    #[test]
    fn json_report_parses_back() {
        let mut counts = Counts::new();
        counts
            .entry("unwrap-in-lib".to_string())
            .or_default()
            .insert("a.rs".to_string(), 3);
        let regs = vec![Regression {
            rule: "unwrap-in-lib".into(),
            file: "a.rs".into(),
            baseline: 2,
            actual: 3,
        }];
        let hot = HotSummary {
            entries: vec!["tensor::matmul::matmul_into".into()],
            hot: vec![crate::graph::HotNode {
                fqn: "tensor::matmul::kernel_into".into(),
                file: "crates/tensor/src/matmul.rs".into(),
                line: 7,
                via: vec![
                    "tensor::matmul::matmul_into".into(),
                    "tensor::matmul::kernel_into".into(),
                ],
            }],
        };
        let mut audit = UnsafeAudit::new();
        audit.insert("crates/tensor/src/par.rs".into(), (7, 7));
        let text = render_json(&[finding()], &counts, &regs, &hot, &audit, 90);
        let v: serde_json::Value = serde_json::from_str(&text).expect("valid JSON");
        let map = v.as_map().expect("object");
        let keys: Vec<&str> = map.iter().map(|(k, _)| k.as_str()).collect();
        assert_eq!(
            keys,
            [
                "findings",
                "counts",
                "regressions",
                "callgraph",
                "unsafe_audit",
                "files_checked"
            ]
        );
        assert!(text.contains("\"via\": [\"tensor::matmul::matmul_into\""));
        assert!(
            text.contains("\"crates/tensor/src/par.rs\": {\"claimed\": 7, \"total\": 7}"),
            "{text}"
        );
    }

    #[test]
    fn empty_report_is_valid_json() {
        let text = render_json(
            &[],
            &Counts::new(),
            &[],
            &HotSummary::default(),
            &UnsafeAudit::new(),
            0,
        );
        let v: serde_json::Value = serde_json::from_str(&text).expect("valid JSON");
        assert!(v.as_map().is_some());
    }
}
