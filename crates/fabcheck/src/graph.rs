//! Workspace-wide call graph + hot-path reachability rules.
//!
//! Built from the [`crate::parser`] function items of every non-test
//! file under `crates/`, with cross-crate name resolution:
//!
//! * each file's `use` declarations become an alias map, so a path call
//!   expands through its import (`vecops::l2_norm_delta` after
//!   `use fabflip_tensor::vecops;` becomes
//!   `fabflip_tensor::vecops::l2_norm_delta`), and extern package names
//!   normalize to crate directories ([`CRATE_ALIASES`]:
//!   `fabflip_agg` → `aggregation`) — this is what lets a hot entry in
//!   `fl` prove edges down through `aggregation` into `tensor`;
//! * the expanded path then resolves by fully-qualified-name suffix
//!   (exact match first — `start == 0` in the suffix loop — then
//!   retrying with leading segments dropped, so a partially-qualified
//!   `par::dispatch` still matches `tensor::par::dispatch`);
//! * bare calls resolve same-file, then same-crate, then workspace-wide;
//! * method calls resolve by *name* across **every** impl in the
//!   workspace — a deliberate over-approximation kept from v2, because
//!   receiver types are invisible to a token-level parser.
//!
//! All of this over-approximates: a call site may link to functions it
//! can never reach at runtime. That is the safe direction — a false-hot
//! function costs an escape comment or a ratchet entry, while a
//! false-cold one would let an allocation ship inside the per-round
//! kernel loop (DESIGN.md §4c). Unresolved names (std, core) produce no
//! edges but still hit the allocation/panic/io needle lists below.
//!
//! Reachability starts from [`HOT_ENTRIES`] — the declared kernel entry
//! set — and every reachable function is scanned for allocation sites
//! (`alloc-on-hot-path`, forbidden), panic sites (`panic-on-hot-path`,
//! ratcheted), and I/O or blocking synchronization (`io-on-hot-path`,
//! forbidden outside the worker pool — the purity boundary a serving
//! shell sits on). A line annotated with a
//! `// fabcheck::allow(alloc_on_hot_path): why` comment (or the
//! `panic_on_hot_path` / `io_on_hot_path` variants) — on the line itself
//! or the line above — is a declared setup-only branch: its sites are
//! suppressed for that rule, and alloc/panic escapes also drop the
//! line's call edges so they do not extend the hot region.
//!
//! The same graph carries the **ISA-safety pass**
//! (`target-feature-call-unguarded`, forbidden): every resolved edge
//! into an `#[target_feature(enable = …)]` function is checked over ALL
//! nodes — hot or cold — and is legal only if the caller itself proves
//! the callee's feature set (its own `#[target_feature]` attribute is a
//! superset) or the caller is a backend dispatch method inside
//! [`BLESSED_SIMD_DIR`], where `backend::active()`'s
//! `is_x86_feature_detected!` / `FABFLIP_BACKEND` gate has already run.
//! Any other edge could execute AVX code on a CPU without it — UB, not a
//! crash — so the rule fails `--ci` outright.

use crate::lexer::{lex, Lexed};
use crate::parser::{parse_tokens, parse_uses, target_feature_fns, Call, CallKind, FnNode};
use crate::rules::{
    allow_lines, test_spans, FileClass, Finding, Rule, BLESSED_SERVE_DIR, BLESSED_SIMD_DIR,
    BLESSED_THREAD_FILE, NUMERIC_CRATES,
};
use std::collections::{BTreeMap, BTreeSet, VecDeque};

/// The kernel entry set: the functions executed O(rounds × clients ×
/// model-size) times whose steady-state cost decides grid throughput.
/// Everything reachable from here must be allocation-free and
/// panic-bounded. Matched exactly against generated fully-qualified
/// names (`crate_dir::file_modules::[ImplType::]fn`).
pub const HOT_ENTRIES: &[&str] = &[
    // GEMM entry points (parallel + serial reference).
    "tensor::matmul::matmul_into",
    "tensor::matmul::matmul_into_serial",
    "tensor::matmul::matmul_transpose_a",
    "tensor::matmul::matmul_transpose_a_serial",
    "tensor::matmul::matmul_transpose_b",
    "tensor::matmul::matmul_transpose_b_serial",
    // Convolution lowering kernels.
    "tensor::im2col::im2col",
    "tensor::im2col::col2im",
    // The worker-pool dispatch fast path.
    "tensor::par::dispatch",
    // Flat vector kernels.
    "tensor::vecops::dot",
    "tensor::vecops::l2_norm",
    "tensor::vecops::sq_distance",
    "tensor::vecops::l2_distance",
    "tensor::vecops::axpy_in_place",
    "tensor::vecops::mean_into",
    "tensor::vecops::std_dev_into",
    "tensor::vecops::median_into",
    "tensor::vecops::trimmed_mean_into",
    "tensor::vecops::pairwise_sq_distances_into",
    // Blocked/tiled O(n²) kernel driver (§4e).
    "tensor::vecops::pairwise_tile_into",
    // Quantized-transport wire kernels: encode runs per client per round,
    // decode per submission on the server ingest path.
    "tensor::quant::f16_encode_into",
    "tensor::quant::f16_decode_into",
    "tensor::quant::i8_encode_into",
    "tensor::quant::i8_decode_into",
    "tensor::quant::decode_into",
    // Aggregation score/coordinate kernels.
    "aggregation::krum::krum_scores_into",
    "aggregation::bulyan::bulyan_coordinate_chunk",
    // Streaming ingest: one call per submitted update (§4e). The fl-side
    // server entry is the root; `StreamingAggregator::ingest` is NOT
    // listed — it must be proven hot *through* the cross-crate chain
    // `submit → submit_validated → ingest`, which is exactly the edge a
    // per-crate graph would miss.
    "fl::stream::StreamingServer::submit",
    // Layer forward/backward over im2col + GEMM.
    "nn::conv::Conv2d::forward",
    "nn::conv::Conv2d::backward",
    "nn::conv_transpose::ConvTranspose2d::forward",
    "nn::conv_transpose::ConvTranspose2d::backward",
];

/// Method names that allocate (or amortize allocation) on `std`
/// containers. Over-approximate on purpose: a workspace method sharing a
/// name is still hot-scanned, and `sort_unstable*` is deliberately
/// absent (in-place pdqsort — the blessed hot-loop sort).
const ALLOC_METHODS: &[&str] = &[
    "append",
    "clone",
    "cloned",
    "collect",
    "concat",
    "extend",
    "extend_from_slice",
    "insert",
    "into_vec",
    "join",
    "push",
    "repeat",
    "reserve",
    "reserve_exact",
    "resize",
    "resize_with",
    "sort",
    "sort_by",
    "sort_by_cached_key",
    "sort_by_key",
    "split_off",
    "to_owned",
    "to_string",
    "to_vec",
];

/// Two-segment path suffixes that construct heap storage.
const ALLOC_PATHS: &[&str] = &[
    "Arc::new",
    "BTreeMap::new",
    "BTreeSet::new",
    "Box::from",
    "Box::new",
    "HashMap::new",
    "HashSet::new",
    "Rc::new",
    "String::from",
    "String::new",
    "String::with_capacity",
    "Vec::from",
    "Vec::new",
    "Vec::with_capacity",
    "VecDeque::new",
];

/// Macros that allocate.
const ALLOC_MACROS: &[&str] = &["eprintln", "format", "println", "vec"];

/// Extern package name → crate directory, for the workspace's own
/// numeric crates (`Cargo.toml` package names differ from directory
/// names). Paths entering through `use fabflip_agg::…` or written
/// `fabflip_agg::…` inline normalize to the `aggregation::…` namespace
/// the node FQNs use.
const CRATE_ALIASES: &[(&str, &str)] = &[
    ("fabflip_agg", "aggregation"),
    ("fabflip_attacks", "attacks"),
    ("fabflip_data", "data"),
    ("fabflip_fl", "fl"),
    ("fabflip_nn", "nn"),
    ("fabflip_serve", "serve"),
    ("fabflip_tensor", "tensor"),
];

/// Macros that write to stdout/stderr.
const IO_MACROS: &[&str] = &["eprint", "eprintln", "print", "println"];

/// Methods that acquire blocking synchronization primitives.
const IO_BLOCKING_METHODS: &[&str] = &["lock", "wait", "wait_timeout", "wait_while"];

/// Path segments that mark filesystem/network/console I/O or blocking
/// primitives (`std::fs::read`, `io::stdout`, `Mutex::new`, …).
const IO_PATH_SEGS: &[&str] = &["Condvar", "Mutex", "fs", "io", "net"];

/// Methods that panic on `None`/`Err`.
const PANIC_METHODS: &[&str] = &["expect", "expect_err", "unwrap", "unwrap_err"];

/// Macros that panic. `debug_assert*` is excluded: the hot path ships in
/// release builds where those compile out.
const PANIC_MACROS: &[&str] = &[
    "assert",
    "assert_eq",
    "assert_ne",
    "panic",
    "todo",
    "unimplemented",
    "unreachable",
];

/// One hot (entry-reachable) function, with the call chain that makes it
/// hot — emitted into the `--json` report so CI artifacts show *why*.
#[derive(Debug, Clone)]
pub struct HotNode {
    /// Fully qualified name.
    pub fqn: String,
    /// Root-relative file.
    pub file: String,
    /// 1-based line of the `fn`.
    pub line: u32,
    /// Shortest call chain from an entry to this function (inclusive).
    pub via: Vec<String>,
}

/// The call-graph side of a workspace report.
#[derive(Debug, Clone, Default)]
pub struct HotSummary {
    /// Entry-set functions actually present in the scanned tree.
    pub entries: Vec<String>,
    /// Every hot function, in deterministic (file, line) order.
    pub hot: Vec<HotNode>,
}

/// Result of the hot-path analysis.
#[derive(Debug, Default)]
pub struct Analysis {
    /// `alloc-on-hot-path` (forbidden) + `panic-on-hot-path` (counted)
    /// findings.
    pub findings: Vec<Finding>,
    /// The graph summary for `--json`.
    pub summary: HotSummary,
}

struct Node {
    fqn: String,
    file: String,
    file_idx: usize,
    crate_name: String,
    name: String,
    line: u32,
    calls: Vec<Call>,
    index_sites: Vec<(u32, u32)>,
    is_method: bool,
    /// `#[target_feature(enable = …)]` features this fn is compiled
    /// with; empty for ordinary functions.
    target_features: Vec<String>,
}

/// Per-file escape-comment lines, by rule.
#[derive(Default)]
struct Escapes {
    alloc: BTreeSet<u32>,
    panic: BTreeSet<u32>,
    io: BTreeSet<u32>,
}

impl Escapes {
    /// Whether an alloc or panic escape covers `line` — these drop call
    /// edges (a declared setup-only branch does not extend the hot
    /// region). An io escape only suppresses io findings: the code it
    /// blesses still runs hot.
    fn drops_edges(&self, line: u32) -> bool {
        self.alloc.contains(&line) || self.panic.contains(&line)
    }
}

/// The module path a file contributes to its crate's namespace:
/// `crates/tensor/src/matmul.rs` → `["matmul"]`, crate roots and
/// `mod.rs` → `[]`, `src/bin/perf.rs` → `["bin", "perf"]`.
fn file_mods(rel: &str, crate_name: &str) -> Vec<String> {
    let tail = rel
        .strip_prefix(&format!("crates/{crate_name}/"))
        .unwrap_or(rel);
    let tail = tail.strip_prefix("src/").unwrap_or(tail);
    let tail = tail.strip_suffix(".rs").unwrap_or(tail);
    tail.split('/')
        .filter(|seg| !seg.is_empty() && !matches!(*seg, "lib" | "main" | "mod"))
        .map(str::to_string)
        .collect()
}

fn fqn_of(crate_name: &str, rel: &str, f: &FnNode) -> String {
    let mut parts: Vec<String> = vec![crate_name.to_string()];
    parts.extend(file_mods(rel, crate_name));
    parts.extend(f.mods.iter().cloned());
    if let Some(ty) = &f.impl_type {
        parts.push(ty.clone());
    }
    parts.push(f.name.clone());
    parts.join("::")
}

/// Escape-comment coverage per rule; see [`allow_lines`] for the
/// coverage/continuation semantics (full-line comment chains continue, a
/// blank line or a trailing comment on a code line ends the chain).
fn escapes_of(lexed: &Lexed) -> Escapes {
    Escapes {
        alloc: allow_lines(&lexed.comments, &lexed.tokens, "alloc_on_hot_path"),
        panic: allow_lines(&lexed.comments, &lexed.tokens, "panic_on_hot_path"),
        io: allow_lines(&lexed.comments, &lexed.tokens, "io_on_hot_path"),
    }
}

/// Builds the call graph over `(class, source)` pairs and runs the two
/// hot-path rules. Only numeric-crate product code enters the graph:
/// test code may allocate, and tooling crates (fabcheck itself, bench
/// harnesses outside [`NUMERIC_CRATES`]) would otherwise be dragged in
/// by method-name over-approximation (`.parse()` in `par` must not mark
/// every workspace `parse` method hot).
pub fn analyze(files: &[(&FileClass, &str)]) -> Analysis {
    let mut nodes: Vec<Node> = Vec::new();
    let mut escapes: Vec<Escapes> = Vec::new();
    // Per-file import alias map: in-scope name → expanded path segments
    // with extern package names already normalized to crate directories.
    let mut use_maps: Vec<BTreeMap<String, Vec<String>>> = Vec::new();
    let crate_dir = |seg: &str| -> String {
        CRATE_ALIASES
            .iter()
            .find(|(pkg, _)| *pkg == seg)
            .map(|(_, dir)| (*dir).to_string())
            .unwrap_or_else(|| seg.to_string())
    };
    for (file_idx, (class, src)) in files.iter().enumerate() {
        // The serving shell joins the graph alongside the numeric crates:
        // its per-submission ingest calls straight into hot fl/tensor
        // kernels, and those cross-crate edges are what keep a stray
        // socket or Vec in the core visible from a serve-side route.
        let in_graph = NUMERIC_CRATES.contains(&class.crate_name.as_str())
            || class.rel.starts_with(BLESSED_SERVE_DIR);
        if !class.in_crates || class.is_test_file || !in_graph {
            escapes.push(Escapes::default());
            use_maps.push(BTreeMap::new());
            continue;
        }
        let lexed = lex(src);
        escapes.push(escapes_of(&lexed));
        let mut aliases = BTreeMap::new();
        for u in parse_uses(&lexed.tokens) {
            let mut segs = u.segs;
            segs[0] = crate_dir(&segs[0]);
            aliases.insert(u.alias, segs);
        }
        use_maps.push(aliases);
        // Features by `fn`-keyword line: `target_feature_fns` and
        // `parse_tokens` both anchor on that line, so the join is exact.
        let tf_by_line: BTreeMap<u32, Vec<String>> = target_feature_fns(&lexed.tokens, src)
            .into_iter()
            .map(|tf| (tf.line, tf.features))
            .collect();
        let spans = test_spans(&lexed.tokens);
        for f in parse_tokens(&lexed.tokens, &spans) {
            if f.is_test {
                continue;
            }
            nodes.push(Node {
                fqn: fqn_of(&class.crate_name, &class.rel, &f),
                file: class.rel.clone(),
                file_idx,
                crate_name: class.crate_name.clone(),
                name: f.name.clone(),
                line: f.line,
                calls: f.calls,
                index_sites: f.index_sites,
                is_method: f.impl_type.is_some(),
                target_features: tf_by_line.get(&f.line).cloned().unwrap_or_default(),
            });
        }
    }

    // Name indexes for resolution.
    let mut by_name: BTreeMap<&str, Vec<usize>> = BTreeMap::new();
    let mut methods: BTreeMap<&str, Vec<usize>> = BTreeMap::new();
    for (i, n) in nodes.iter().enumerate() {
        by_name.entry(&n.name).or_default().push(i);
        if n.is_method {
            methods.entry(&n.name).or_default().push(i);
        }
    }
    let resolve = |call: &Call, from: &Node| -> Vec<usize> {
        match call.kind {
            CallKind::Method => methods.get(call.name()).cloned().unwrap_or_default(),
            CallKind::Macro => Vec::new(),
            CallKind::Path { .. } => {
                // Cross-crate expansion: rewrite the leading segment
                // through the file's `use` aliases (`vecops::x` →
                // `tensor::vecops::x` after `use fabflip_tensor::vecops`),
                // then normalize an extern package name written inline.
                let mut segs: Vec<String> = call.segs.clone();
                if let Some(mapped) = use_maps[from.file_idx].get(&segs[0]) {
                    let mut expanded = mapped.clone();
                    expanded.extend(segs[1..].iter().cloned());
                    segs = expanded;
                }
                segs[0] = crate_dir(&segs[0]);
                if segs.len() == 1 {
                    let cands = by_name.get(call.name()).map(Vec::as_slice).unwrap_or(&[]);
                    let same_file: Vec<usize> = cands
                        .iter()
                        .copied()
                        .filter(|&i| nodes[i].file_idx == from.file_idx)
                        .collect();
                    if !same_file.is_empty() {
                        return same_file;
                    }
                    let same_crate: Vec<usize> = cands
                        .iter()
                        .copied()
                        .filter(|&i| nodes[i].crate_name == from.crate_name)
                        .collect();
                    if !same_crate.is_empty() {
                        return same_crate;
                    }
                    return cands.to_vec();
                }
                // Longest-suffix match: `start == 0` is the exact
                // fully-qualified name after expansion; later starts drop
                // leading segments so partially-qualified paths (written
                // without an importing `use`) still resolve.
                for start in 0..segs.len() - 1 {
                    let suffix = segs[start..].join("::");
                    let hits: Vec<usize> = by_name
                        .get(segs.last().map(String::as_str).unwrap_or_default())
                        .map(Vec::as_slice)
                        .unwrap_or(&[])
                        .iter()
                        .copied()
                        .filter(|&i| {
                            nodes[i].fqn == suffix || nodes[i].fqn.ends_with(&format!("::{suffix}"))
                        })
                        .collect();
                    if !hits.is_empty() {
                        return hits;
                    }
                }
                Vec::new()
            }
        }
    };

    // BFS from the entry set; parent pointers give shortest "why hot"
    // chains. Entry order and adjacency order are deterministic (sorted
    // walk, source token order).
    let mut entry_idx: Vec<usize> = (0..nodes.len())
        .filter(|&i| HOT_ENTRIES.contains(&nodes[i].fqn.as_str()))
        .collect();
    entry_idx.sort_by(|&a, &b| nodes[a].fqn.cmp(&nodes[b].fqn));
    let mut visited = vec![false; nodes.len()];
    let mut parent: Vec<Option<usize>> = vec![None; nodes.len()];
    let mut queue: VecDeque<usize> = VecDeque::new();
    for &e in &entry_idx {
        visited[e] = true;
        queue.push_back(e);
    }
    let mut hot_order: Vec<usize> = Vec::new();
    while let Some(u) = queue.pop_front() {
        hot_order.push(u);
        for call in &nodes[u].calls {
            // An escaped line is a declared setup-only branch: it does
            // not extend the hot region.
            if escapes[nodes[u].file_idx].drops_edges(call.line) {
                continue;
            }
            for v in resolve(call, &nodes[u]) {
                // The serving shell is an I/O boundary, not a kernel:
                // hot reachability stops at its door. Its sockets,
                // checkpoint writes and queue locks are its job
                // (io-on-hot-path is directory-blessed below), and
                // letting name-over-approximated edges wander through
                // the shell would drag `fs`/`net` helpers of the core
                // into the hot set along false routes. Core functions
                // the shell calls stay audited through their own
                // entries (`fl::stream`, `tensor::quant`, …).
                if nodes[v].file.starts_with(BLESSED_SERVE_DIR) {
                    continue;
                }
                if !visited[v] {
                    visited[v] = true;
                    parent[v] = Some(u);
                    queue.push_back(v);
                }
            }
        }
    }

    let chain = |mut i: usize| -> Vec<String> {
        let mut out = vec![nodes[i].fqn.clone()];
        while let Some(p) = parent[i] {
            out.push(nodes[p].fqn.clone());
            i = p;
        }
        out.reverse();
        out
    };

    let mut findings = Vec::new();
    for &u in &hot_order {
        let node = &nodes[u];
        let esc = &escapes[node.file_idx];
        let route = chain(u).join(" → ");
        // The worker pool is the one blessed home for blocking
        // synchronization (park/unpark handshakes), and the serving
        // shell's whole job is I/O (sockets, checkpoints, queue locks) —
        // mirroring BLESSED_SIMD_DIR, the shell is blessed as a
        // directory. Everything else hot must stay pure.
        let io_applies =
            node.file != BLESSED_THREAD_FILE && !node.file.starts_with(BLESSED_SERVE_DIR);
        let mut push = |rule: Rule, line: u32, col: u32, needle: &str| {
            let (verb, remedy) = match rule {
                Rule::AllocOnHotPath => (
                    "allocates",
                    "hoist it, reuse a `tensor::scratch` arena, or mark a setup-only \
                     branch with `// fabcheck::allow(alloc_on_hot_path): why`",
                ),
                Rule::IoOnHotPath => (
                    "performs I/O or blocking synchronization",
                    "the deterministic core stays pure so a serving shell can wrap \
                     it — move this behind the wire layer, or mark a setup-only \
                     branch with `// fabcheck::allow(io_on_hot_path): why`",
                ),
                _ => (
                    "can panic",
                    "ratcheted — prefer checked access, or shrink the committed baseline",
                ),
            };
            findings.push(Finding {
                rule,
                file: node.file.clone(),
                line,
                col,
                message: format!("`{needle}` {verb} on the hot path ({route}); {remedy}"),
            });
        };
        for call in &node.calls {
            let name = call.name();
            match call.kind {
                CallKind::Method => {
                    if ALLOC_METHODS.contains(&name) && !esc.alloc.contains(&call.line) {
                        push(
                            Rule::AllocOnHotPath,
                            call.line,
                            call.col,
                            &format!(".{name}()"),
                        );
                    }
                    if PANIC_METHODS.contains(&name) && !esc.panic.contains(&call.line) {
                        push(
                            Rule::PanicOnHotPath,
                            call.line,
                            call.col,
                            &format!(".{name}()"),
                        );
                    }
                    if io_applies
                        && IO_BLOCKING_METHODS.contains(&name)
                        && !esc.io.contains(&call.line)
                    {
                        push(
                            Rule::IoOnHotPath,
                            call.line,
                            call.col,
                            &format!(".{name}()"),
                        );
                    }
                }
                CallKind::Macro => {
                    if ALLOC_MACROS.contains(&name) && !esc.alloc.contains(&call.line) {
                        push(
                            Rule::AllocOnHotPath,
                            call.line,
                            call.col,
                            &format!("{name}!"),
                        );
                    }
                    if PANIC_MACROS.contains(&name) && !esc.panic.contains(&call.line) {
                        push(
                            Rule::PanicOnHotPath,
                            call.line,
                            call.col,
                            &format!("{name}!"),
                        );
                    }
                    if io_applies && IO_MACROS.contains(&name) && !esc.io.contains(&call.line) {
                        push(Rule::IoOnHotPath, call.line, call.col, &format!("{name}!"));
                    }
                }
                CallKind::Path { .. } => {
                    if call.segs.len() >= 2 {
                        let tail = format!(
                            "{}::{}",
                            call.segs[call.segs.len() - 2],
                            call.segs[call.segs.len() - 1]
                        );
                        if ALLOC_PATHS.contains(&tail.as_str()) && !esc.alloc.contains(&call.line) {
                            push(Rule::AllocOnHotPath, call.line, call.col, &tail);
                        }
                        if io_applies
                            && call.segs.iter().any(|s| IO_PATH_SEGS.contains(&s.as_str()))
                            && !esc.io.contains(&call.line)
                        {
                            push(
                                Rule::IoOnHotPath,
                                call.line,
                                call.col,
                                &call.segs.join("::"),
                            );
                        }
                    }
                }
            }
        }
        for &(line, col) in &node.index_sites {
            if !esc.panic.contains(&line) {
                push(Rule::PanicOnHotPath, line, col, "[..] indexing");
            }
        }
    }

    // ISA-safety pass over EVERY resolved edge, not just hot ones: a
    // cold wrapper that jumps into an `#[target_feature]` kernel is
    // exactly as unsound as a hot one. An edge into a feature-gated
    // callee is legal iff the caller compiles with a superset of those
    // features (tf → tf chains inside a kernel file), or the caller is a
    // `CpuBackend` dispatch method in the blessed backend directory —
    // the one place where `backend::active()` has already proven the ISA
    // via `is_x86_feature_detected!` / the `FABFLIP_BACKEND` override.
    for u in 0..nodes.len() {
        let caller = &nodes[u];
        if caller.file.starts_with(BLESSED_SIMD_DIR) && caller.is_method {
            continue;
        }
        for call in &caller.calls {
            for v in resolve(call, caller) {
                let callee = &nodes[v];
                if callee.target_features.is_empty() {
                    continue;
                }
                let proven = callee
                    .target_features
                    .iter()
                    .all(|feat| caller.target_features.contains(feat));
                if proven {
                    continue;
                }
                findings.push(Finding {
                    rule: Rule::TargetFeatureCallUnguarded,
                    file: caller.file.clone(),
                    line: call.line,
                    col: call.col,
                    message: format!(
                        "call resolves to `{}`, compiled with `#[target_feature(enable = \
                         \"{}\")]`, but this call site proves none of those features; \
                         executing it on a CPU without them is undefined behavior — route \
                         the call through `backend::active()` so the ISA is \
                         detection-proven before dispatch",
                        callee.fqn,
                        callee.target_features.join(",")
                    ),
                });
            }
        }
    }

    let mut hot: Vec<HotNode> = hot_order
        .iter()
        .map(|&u| HotNode {
            fqn: nodes[u].fqn.clone(),
            file: nodes[u].file.clone(),
            line: nodes[u].line,
            via: chain(u),
        })
        .collect();
    hot.sort_by(|a, b| (&a.file, a.line).cmp(&(&b.file, b.line)));
    Analysis {
        findings,
        summary: HotSummary {
            entries: entry_idx.iter().map(|&e| nodes[e].fqn.clone()).collect(),
            hot,
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn class(rel: &str) -> FileClass {
        let mut parts = rel.split('/');
        let top = parts.next().unwrap_or_default();
        let krate = parts.next().unwrap_or_default().to_string();
        FileClass {
            rel: rel.to_string(),
            in_crates: top == "crates",
            crate_name: krate,
            is_test_file: rel.contains("/tests/"),
            is_example: rel.contains("/examples/"),
            is_bin: rel.ends_with("src/main.rs") || rel.contains("/src/bin/"),
        }
    }

    fn run(files: &[(&str, &str)]) -> Analysis {
        let classes: Vec<FileClass> = files.iter().map(|(rel, _)| class(rel)).collect();
        let pairs: Vec<(&FileClass, &str)> = classes
            .iter()
            .zip(files.iter())
            .map(|(c, (_, src))| (c, *src))
            .collect();
        analyze(&pairs)
    }

    fn rule_names(a: &Analysis) -> Vec<&str> {
        a.findings.iter().map(|f| f.rule.name()).collect()
    }

    #[test]
    fn allocation_two_calls_below_an_entry_is_found() {
        let a = run(&[(
            "crates/tensor/src/matmul.rs",
            "pub fn matmul_into(out: &mut [f32]) { stage(out); }\n\
             fn stage(out: &mut [f32]) { helper(out); }\n\
             fn helper(out: &mut [f32]) { let v = out.to_vec(); let _ = v; }\n",
        )]);
        assert_eq!(rule_names(&a), ["alloc-on-hot-path"]);
        let f = &a.findings[0];
        assert_eq!(f.line, 3);
        assert!(
            f.message
                .contains("matmul_into → tensor::matmul::stage → tensor::matmul::helper")
                || f.message.contains("stage"),
            "{}",
            f.message
        );
    }

    #[test]
    fn cold_functions_may_allocate_freely() {
        let a = run(&[(
            "crates/tensor/src/matmul.rs",
            "pub fn matmul_into(out: &mut [f32]) { kernel(out); }\n\
             fn kernel(out: &mut [f32]) { out[0] = 1.0; }\n\
             pub fn matmul(n: usize) -> Vec<f32> { let mut v = vec![0.0; n]; matmul_into(&mut v); v }\n",
        )]);
        // The wrapper calls INTO the entry; it is not reachable FROM it.
        assert_eq!(rule_names(&a), ["panic-on-hot-path"]);
    }

    #[test]
    fn escape_comment_suppresses_site_and_drops_the_edge() {
        let a = run(&[(
            "crates/tensor/src/matmul.rs",
            "pub fn matmul_into(out: &mut [f32]) {\n\
             // fabcheck::allow(alloc_on_hot_path): one-time setup\n\
             let v = setup();\n\
             let _ = (v, out);\n\
             }\n\
             fn setup() -> Vec<f32> { Vec::new() }\n",
        )]);
        assert!(rule_names(&a).is_empty(), "{:?}", a.findings);
        // setup() is not hot: the escaped line's edge was dropped.
        assert!(a
            .summary
            .hot
            .iter()
            .all(|h| h.fqn != "tensor::matmul::setup"));
    }

    #[test]
    fn method_calls_over_approximate_across_impls() {
        let a = run(&[
            (
                "crates/nn/src/conv.rs",
                "impl Conv2d { pub fn forward(&self, t: &Tensor) { t.payload(); } }\n",
            ),
            (
                "crates/tensor/src/lib.rs",
                "impl Tensor { pub fn payload(&self) -> Vec<f32> { self.data.clone() } }\n",
            ),
        ]);
        assert_eq!(rule_names(&a), ["alloc-on-hot-path"]);
        assert_eq!(a.findings[0].file, "crates/tensor/src/lib.rs");
    }

    #[test]
    fn panic_sites_are_counted_not_forbidden() {
        let a = run(&[(
            "crates/tensor/src/vecops.rs",
            "pub fn dot(a: &[f32], b: &[f32]) -> f32 {\n\
             assert_eq!(a.len(), b.len());\n\
             let x = a[0] * b[0];\n\
             let y = a.first().unwrap();\n\
             x + y\n\
             }\n",
        )]);
        // assert_eq!, a[0], b[0], unwrap → four counted sites.
        let names = rule_names(&a);
        assert_eq!(names, ["panic-on-hot-path"; 4]);
        assert!(a.findings.iter().all(|f| !f.rule.is_forbidden()));
    }

    #[test]
    fn test_code_and_non_crates_files_are_outside_the_graph() {
        let a = run(&[
            (
                "crates/tensor/src/matmul.rs",
                "pub fn matmul_into(o: &mut [f32]) { let _ = o; }\n\
                 #[cfg(test)]\nmod tests { fn t() { let v = Vec::new(); matmul_into(&mut v); } }\n",
            ),
            (
                "compat/rayon/src/lib.rs",
                "pub fn join() -> Vec<u8> { Vec::new() }\n",
            ),
        ]);
        assert!(rule_names(&a).is_empty(), "{:?}", a.findings);
        assert_eq!(a.summary.entries, ["tensor::matmul::matmul_into"]);
    }

    #[test]
    fn entries_absent_from_the_tree_are_not_reported() {
        let a = run(&[("crates/fl/src/sim.rs", "pub fn run() {}\n")]);
        assert!(a.summary.entries.is_empty());
        assert!(a.summary.hot.is_empty());
    }

    #[test]
    fn unguarded_target_feature_call_is_forbidden() {
        let a = run(&[(
            "crates/tensor/src/simd.rs",
            "#[target_feature(enable = \"avx2,fma\")]\n\
             fn fast_dot(a: &[f32]) -> f32 { 0.0 }\n\
             pub fn wrapper(a: &[f32]) -> f32 { unsafe { fast_dot(a) } }\n",
        )]);
        assert_eq!(rule_names(&a), ["target-feature-call-unguarded"]);
        let f = &a.findings[0];
        assert!(f.rule.is_forbidden());
        assert_eq!(f.line, 3);
        assert!(
            f.message.contains("tensor::simd::fast_dot") && f.message.contains("avx2,fma"),
            "{}",
            f.message
        );
    }

    #[test]
    fn backend_dispatch_methods_prove_the_isa() {
        // The one blessed shape: an `impl CpuBackend for …` method in the
        // backend directory jumping into its own kernels. Detection ran
        // at `backend::active()` before any such method is reachable.
        let a = run(&[(
            "crates/tensor/src/backend/avx2.rs",
            "#[target_feature(enable = \"avx2\")]\n\
             fn kernel(a: &[f32]) -> f32 { 0.0 }\n\
             impl CpuBackend for Avx2 {\n\
             fn dot(&self, a: &[f32]) -> f32 { unsafe { kernel(a) } }\n\
             }\n",
        )]);
        assert!(rule_names(&a).is_empty(), "{:?}", a.findings);
    }

    #[test]
    fn tf_to_tf_calls_need_a_feature_superset() {
        // dotk(avx2,fma) → hsum(avx2): superset, proven. helper() →
        // hsum(avx2): a plain fn in the same kernel file proves nothing.
        let a = run(&[(
            "crates/tensor/src/backend/avx2.rs",
            "#[target_feature(enable = \"avx2\")]\n\
             fn hsum(a: &[f32]) -> f32 { 0.0 }\n\
             #[target_feature(enable = \"avx2,fma\")]\n\
             fn dotk(a: &[f32]) -> f32 { unsafe { hsum(a) } }\n\
             fn helper(a: &[f32]) -> f32 { unsafe { hsum(a) } }\n",
        )]);
        assert_eq!(rule_names(&a), ["target-feature-call-unguarded"]);
        assert_eq!(a.findings[0].line, 5);
    }

    #[test]
    fn impl_entries_match_their_type_qualified_name() {
        let a = run(&[(
            "crates/nn/src/conv.rs",
            "impl Conv2d { pub fn forward(&self) { let v: Vec<f32> = Vec::with_capacity(3); let _ = v; } }\n",
        )]);
        assert_eq!(a.summary.entries, ["nn::conv::Conv2d::forward"]);
        assert_eq!(rule_names(&a), ["alloc-on-hot-path"]);
    }
}
