//! A lightweight recursive-descent pass over the [`crate::lexer`] token
//! stream that extracts the item structure the call-graph rules need:
//! every `fn` with its module path, surrounding `impl` type, and the
//! call / method-call / macro / index-expression sites inside its body.
//!
//! This is deliberately not a full AST. The hot-path rules only need to
//! know *which function* a site belongs to and *what name* it invokes, so
//! the parser is a single forward scan with an explicit scope stack
//! (`mod` / `impl` / `fn` / plain block). Everything it cannot classify
//! it skips — unparseable constructs degrade to missed edges on cold
//! code, never to crashes (and the hot-path rules over-approximate on the
//! edges that matter; see DESIGN.md §4c).

use crate::lexer::Token;

/// Reserved words that can never start a call path or be an indexing
/// receiver. `self`/`Self`/`crate`/`super` are handled separately because
/// they *can* begin paths.
const KEYWORDS: &[&str] = &[
    "as", "async", "await", "break", "const", "continue", "dyn", "else", "enum", "extern", "false",
    "fn", "for", "if", "impl", "in", "let", "loop", "match", "mod", "move", "mut", "pub", "ref",
    "return", "static", "struct", "trait", "true", "type", "union", "unsafe", "use", "where",
    "while", "yield",
];

fn is_keyword(s: &str) -> bool {
    KEYWORDS.contains(&s)
}

/// How a call site invokes its target.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CallKind {
    /// `a::b::c(..)` or a bare `f(..)`; `called` is false for a path
    /// mention without parens (e.g. a function passed by value), which
    /// still creates a call-graph edge — over-approximation is safe.
    Path {
        /// Whether the path is directly followed by `(`.
        called: bool,
    },
    /// `.name(..)` — resolved by name across every impl in the workspace.
    Method,
    /// `name!(..)` / `name![..]` / `name!{..}`.
    Macro,
}

/// One call/method/macro site inside a function body.
#[derive(Debug, Clone)]
pub struct Call {
    /// Path segments (`["Vec", "new"]`), a single method or macro name.
    /// `Self` is already substituted with the surrounding impl type and
    /// leading `crate`/`self`/`super` segments are stripped.
    pub segs: Vec<String>,
    /// Call shape.
    pub kind: CallKind,
    /// 1-based line of the first segment.
    pub line: u32,
    /// 1-based column of the first segment.
    pub col: u32,
}

impl Call {
    /// Last path segment — the invoked name.
    pub fn name(&self) -> &str {
        self.segs.last().map(String::as_str).unwrap_or_default()
    }
}

/// One function item and every site of interest in its body.
#[derive(Debug, Clone)]
pub struct FnNode {
    /// Function name.
    pub name: String,
    /// Inline `mod` path inside the file (outermost first).
    pub mods: Vec<String>,
    /// Self type of the surrounding `impl`, if any.
    pub impl_type: Option<String>,
    /// 1-based line of the `fn` keyword.
    pub line: u32,
    /// `true` when the `fn` sits inside a `#[cfg(test)]`-gated span.
    pub is_test: bool,
    /// Call, method, and macro sites in body order.
    pub calls: Vec<Call>,
    /// `expr[..]` indexing sites (line, col of the `[`).
    pub index_sites: Vec<(u32, u32)>,
}

/// One name introduced by a `use` declaration: `alias` is the name in
/// scope inside the file, `segs` the full imported path with group braces
/// expanded, `as` renames applied, and leading `crate`/`self`/`super`
/// stripped (matching the normalization [`parse_tokens`] applies to call
/// paths).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct UseDecl {
    /// In-scope name (the last path segment, or the `as` rename).
    pub alias: String,
    /// Imported path segments, outermost first.
    pub segs: Vec<String>,
}

/// Extracts every `use` declaration from a token stream, expanding brace
/// groups (`use a::{b, c as d, self}`) into one [`UseDecl`] per imported
/// name. Glob imports (`use x::*`) introduce no nameable alias and are
/// skipped — the call graph's suffix-match fallback still resolves names
/// they bring in.
pub fn parse_uses(toks: &[Token]) -> Vec<UseDecl> {
    let mut out = Vec::new();
    let mut i = 0;
    while i < toks.len() {
        if toks[i].is_ident && toks[i].text == "use" {
            i = parse_use_tree(toks, i + 1, &[], &mut out);
        } else {
            i += 1;
        }
    }
    out
}

/// Parses one use-tree (a path that may end in a brace group, a glob, or
/// an `as` rename) starting at `j` with `prefix` already consumed.
/// Records the names it introduces and returns the index of the token
/// after the tree (its `,`/`}`/`;` terminator is left unconsumed).
fn parse_use_tree(
    toks: &[Token],
    mut j: usize,
    prefix: &[String],
    out: &mut Vec<UseDecl>,
) -> usize {
    let is_p = |k: usize, s: &str| {
        toks.get(k)
            .is_some_and(|t: &Token| !t.is_ident && t.text == s)
    };
    let mut segs: Vec<String> = prefix.to_vec();
    loop {
        if is_p(j, "{") {
            j += 1;
            while j < toks.len() && !is_p(j, "}") {
                if is_p(j, ",") {
                    j += 1;
                } else {
                    j = parse_use_tree(toks, j, &segs, out);
                }
            }
            return j + 1;
        }
        if is_p(j, "*") {
            return j + 1;
        }
        let Some(t) = toks.get(j) else { return j };
        if !t.is_ident {
            return j;
        }
        match t.text.as_str() {
            "as" => {
                if let Some(a) = toks.get(j + 1).filter(|a| a.is_ident) {
                    record_use(out, a.text.clone(), &segs);
                    return j + 2;
                }
                return j + 1;
            }
            // `use a::b::{self, c}` — `self` imports `b` itself. When an
            // `as` rename follows, let the `as` arm record the alias.
            "self" if !segs.is_empty() => {
                if !toks
                    .get(j + 1)
                    .is_some_and(|n| n.is_ident && n.text == "as")
                {
                    record_use(out, segs[segs.len() - 1].clone(), &segs);
                }
                j += 1;
            }
            _ => {
                segs.push(t.text.clone());
                j += 1;
            }
        }
        if is_p(j, ":") && is_p(j + 1, ":") {
            j += 2;
            continue;
        }
        if toks.get(j).is_some_and(|n| n.is_ident && n.text == "as") {
            continue;
        }
        if segs.len() > prefix.len() {
            record_use(out, segs[segs.len() - 1].clone(), &segs);
        }
        return j;
    }
}

fn record_use(out: &mut Vec<UseDecl>, alias: String, segs: &[String]) {
    let mut segs = segs.to_vec();
    while segs.len() > 1 && matches!(segs[0].as_str(), "crate" | "super" | "self") {
        segs.remove(0);
    }
    out.push(UseDecl { alias, segs });
}

/// A `#[target_feature(enable = "…")]` function item: the declared ISA
/// features plus enough position data for the rules that consume it — the
/// `fn` line (joins against [`FnNode::line`] in the call graph) and the
/// token span of the body (classifies `unsafe` blocks as kernel-interior
/// for the claim-grammar rule).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TargetFeatureFn {
    /// Function name.
    pub name: String,
    /// 1-based line of the `fn` keyword (matches [`FnNode::line`]).
    pub line: u32,
    /// Features named by `enable = "…"`, split on `,`.
    pub features: Vec<String>,
    /// Token indices of the body delimiters: `(index of `{`, index of the
    /// matching `}`)`. A token at index `k` is inside the body iff
    /// `body.0 < k && k < body.1`.
    pub body: (usize, usize),
}

/// Index one past the delimiter matching the opener at `open` (which must
/// hold the `op` token); saturates at the end of the stream when
/// unbalanced.
fn skip_delimited(toks: &[Token], open: usize, op: &str, cl: &str) -> usize {
    let mut depth = 0i64;
    let mut k = open;
    while k < toks.len() {
        if !toks[k].is_ident {
            if toks[k].text == op {
                depth += 1;
            } else if toks[k].text == cl {
                depth -= 1;
                if depth == 0 {
                    return k + 1;
                }
            }
        }
        k += 1;
    }
    k
}

/// Extracts every `#[target_feature(enable = "…")]` fn item.
///
/// The lexer drops string-literal contents entirely, so the attribute
/// lexes as `# [ target_feature ( enable = ) ]` — the feature list is
/// recovered from the **raw source text** of the line carrying the `=`
/// token (its first `"…"` quoted run). After the attribute, remaining
/// attributes and qualifiers (`#[inline]`, `pub(super)`, `unsafe`) are
/// skipped to reach the `fn` name and brace-matched body.
pub fn target_feature_fns(toks: &[Token], src: &str) -> Vec<TargetFeatureFn> {
    let lines: Vec<&str> = src.lines().collect();
    let is_p = |k: usize, s: &str| {
        toks.get(k)
            .is_some_and(|t: &Token| !t.is_ident && t.text == s)
    };
    let is_i = |k: usize, s: &str| {
        toks.get(k)
            .is_some_and(|t: &Token| t.is_ident && t.text == s)
    };
    let mut out = Vec::new();
    let mut i = 0;
    while i < toks.len() {
        if !(is_p(i, "#")
            && is_p(i + 1, "[")
            && is_i(i + 2, "target_feature")
            && is_p(i + 3, "(")
            && is_i(i + 4, "enable")
            && is_p(i + 5, "=")
            && is_p(i + 6, ")")
            && is_p(i + 7, "]"))
        {
            i += 1;
            continue;
        }
        let features: Vec<String> = lines
            .get(toks[i + 5].line as usize - 1)
            .and_then(|l| {
                let a = l.find('"')? + 1;
                let b = a + l[a..].find('"')?;
                Some(
                    l[a..b]
                        .split(',')
                        .map(|f| f.trim().to_string())
                        .filter(|f| !f.is_empty())
                        .collect(),
                )
            })
            .unwrap_or_default();
        // Skip any further attributes and fn qualifiers up to `fn`.
        let mut j = i + 8;
        loop {
            if is_p(j, "#") && is_p(j + 1, "[") {
                j = skip_delimited(toks, j + 1, "[", "]");
            } else if toks.get(j).is_some_and(|t| {
                t.is_ident && matches!(t.text.as_str(), "pub" | "unsafe" | "const" | "extern")
            }) {
                j += 1;
            } else if is_p(j, "(") {
                // `pub(crate)` / `pub(super)` visibility scope.
                j = skip_delimited(toks, j, "(", ")");
            } else {
                break;
            }
        }
        if !is_i(j, "fn") || !toks.get(j + 1).is_some_and(|t| t.is_ident) {
            i += 8;
            continue;
        }
        let mut open = j + 2;
        while open < toks.len() && (toks[open].is_ident || toks[open].text != "{") {
            open += 1;
        }
        let close = skip_delimited(toks, open, "{", "}").saturating_sub(1);
        out.push(TargetFeatureFn {
            name: toks[j + 1].text.clone(),
            line: toks[j].line,
            features,
            body: (open, close),
        });
        i = close.max(i + 8);
    }
    out
}

/// What a `{` opened.
enum ScopeKind {
    Mod,
    Impl,
    Fn,
    Other,
}

/// An item header seen but whose body `{` has not arrived yet.
enum Pending {
    Mod(String),
    Impl(Option<String>),
    Fn {
        name: String,
        line: u32,
        is_test: bool,
    },
}

/// Parses a token stream (with `#[cfg(test)]` spans precomputed by
/// [`crate::rules::test_spans`]) into its function items.
pub fn parse_tokens(toks: &[Token], test_spans: &[(usize, usize)]) -> Vec<FnNode> {
    let in_test = |idx: usize| test_spans.iter().any(|&(a, b)| idx >= a && idx < b);
    let mut fns: Vec<FnNode> = Vec::new();
    let mut scopes: Vec<ScopeKind> = Vec::new();
    let mut mod_stack: Vec<String> = Vec::new();
    let mut impl_stack: Vec<Option<String>> = Vec::new();
    let mut fn_stack: Vec<usize> = Vec::new();
    let mut pending: Option<Pending> = None;
    // Global paren/bracket depth: used to tell a signature-ending `;`
    // (depth 0) from one inside `[f32; 4]`.
    let mut depth = 0i64;

    let mut i = 0;
    while i < toks.len() {
        let t = &toks[i];
        if t.is_ident {
            let next_ident = toks.get(i + 1).map(|n| (n.is_ident, n.text.as_str()));
            match t.text.as_str() {
                "mod" if pending.is_none() && matches!(next_ident, Some((true, _))) => {
                    // Only inline `mod name {` opens a module scope; the
                    // out-of-line `mod name;` form has no body here.
                    if toks
                        .get(i + 2)
                        .is_some_and(|n| !n.is_ident && n.text == "{")
                    {
                        pending = Some(Pending::Mod(toks[i + 1].text.clone()));
                    }
                    i += 2;
                    continue;
                }
                "impl" if pending.is_none() => {
                    let (ty, header_end) = impl_header(toks, i);
                    pending = Some(Pending::Impl(ty));
                    i = header_end;
                    continue;
                }
                "fn" if pending.is_none() && matches!(next_ident, Some((true, _))) => {
                    pending = Some(Pending::Fn {
                        name: toks[i + 1].text.clone(),
                        line: t.line,
                        is_test: in_test(i),
                    });
                    i += 2;
                    continue;
                }
                _ => {
                    if pending.is_none() {
                        if let Some(&fi) = fn_stack.last() {
                            i = scan_site(toks, i, &mut fns[fi], impl_stack.last());
                            continue;
                        }
                    }
                }
            }
        } else {
            match t.text.as_str() {
                "(" | "[" => {
                    if t.text == "["
                        && pending.is_none()
                        && !fn_stack.is_empty()
                        && is_index_receiver(toks, i)
                    {
                        if let Some(&fi) = fn_stack.last() {
                            fns[fi].index_sites.push((t.line, t.col));
                        }
                    }
                    depth += 1;
                }
                ")" | "]" => depth -= 1,
                ";" if depth == 0 => {
                    // A bodyless item (`fn f();` in a trait) never opens
                    // a scope; drop the pending header.
                    pending = None;
                }
                "{" => {
                    let kind = match pending.take() {
                        Some(Pending::Mod(name)) => {
                            mod_stack.push(name);
                            ScopeKind::Mod
                        }
                        Some(Pending::Impl(ty)) => {
                            impl_stack.push(ty);
                            ScopeKind::Impl
                        }
                        Some(Pending::Fn {
                            name,
                            line,
                            is_test,
                        }) => {
                            fns.push(FnNode {
                                name,
                                mods: mod_stack.clone(),
                                impl_type: impl_stack.last().cloned().flatten(),
                                line,
                                is_test,
                                calls: Vec::new(),
                                index_sites: Vec::new(),
                            });
                            fn_stack.push(fns.len() - 1);
                            ScopeKind::Fn
                        }
                        None => ScopeKind::Other,
                    };
                    scopes.push(kind);
                }
                "}" => match scopes.pop() {
                    Some(ScopeKind::Mod) => {
                        mod_stack.pop();
                    }
                    Some(ScopeKind::Impl) => {
                        impl_stack.pop();
                    }
                    Some(ScopeKind::Fn) => {
                        fn_stack.pop();
                    }
                    _ => {}
                },
                _ => {}
            }
        }
        i += 1;
    }
    fns
}

/// Parses an `impl` header starting at the `impl` token; returns the self
/// type (best effort) and the index of the body `{` (or terminating `;`).
///
/// The self type is the first non-keyword identifier at angle-bracket
/// depth 0 — after `for` when present (`impl Trait for Type`), otherwise
/// after the generic parameter list (`impl<T> Type<T>`).
fn impl_header(toks: &[Token], start: usize) -> (Option<String>, usize) {
    let mut angle = 0i64;
    let mut ty: Option<String> = None;
    let mut stopped = false;
    let mut j = start + 1;
    while j < toks.len() {
        let t = &toks[j];
        if t.is_ident {
            match t.text.as_str() {
                "for" if angle == 0 => {
                    ty = None;
                    stopped = false;
                }
                "where" if angle == 0 => stopped = true,
                name if angle == 0 && !stopped && ty.is_none() && !is_keyword(name) => {
                    ty = Some(name.to_string());
                }
                _ => {}
            }
        } else {
            match t.text.as_str() {
                "<" => angle += 1,
                ">" if angle > 0 => angle -= 1,
                "{" | ";" if angle == 0 => return (ty, j),
                _ => {}
            }
        }
        j += 1;
    }
    (ty, j)
}

/// Whether the token before `[` at `open` ends an indexable expression:
/// a non-keyword identifier, `)`, or `]`. Types (`&[f32]`), array
/// literals (`= [0; 4]`), and attributes (`#[...]`) all fail this test.
fn is_index_receiver(toks: &[Token], open: usize) -> bool {
    let Some(prev) = open.checked_sub(1).and_then(|p| toks.get(p)) else {
        return false;
    };
    if prev.is_ident {
        !is_keyword(&prev.text) && prev.text != "Self"
    } else {
        prev.text == ")" || prev.text == "]"
    }
}

/// Skips a turbofish (`::<...>`) starting at `j`, returning the index one
/// past the closing `>` (or `j` unchanged when there is none).
fn skip_turbofish(toks: &[Token], j: usize) -> usize {
    let is_p = |k: usize, s: &str| toks.get(k).is_some_and(|t| !t.is_ident && t.text == s);
    if !(is_p(j, ":") && is_p(j + 1, ":") && is_p(j + 2, "<")) {
        return j;
    }
    let mut angle = 0i64;
    let mut k = j + 2;
    while k < toks.len() {
        match toks[k].text.as_str() {
            "<" if !toks[k].is_ident => angle += 1,
            ">" if !toks[k].is_ident => {
                angle -= 1;
                if angle == 0 {
                    return k + 1;
                }
            }
            _ => {}
        }
        k += 1;
    }
    k
}

/// Classifies the identifier at `i` inside fn body `node`: a method call
/// (after `.`), a macro, or a (possibly multi-segment) path. Returns the
/// index to resume scanning at.
fn scan_site(
    toks: &[Token],
    i: usize,
    node: &mut FnNode,
    impl_type: Option<&Option<String>>,
) -> usize {
    let t = &toks[i];
    let is_p = |k: usize, s: &str| toks.get(k).is_some_and(|x| !x.is_ident && x.text == s);

    // A path continuation (`a::b`) was already consumed with its head.
    if i >= 2 && is_p(i - 1, ":") && is_p(i - 2, ":") {
        return i + 1;
    }
    // Method call: `. name (` or `. name ::<..> (`.
    if i >= 1 && is_p(i - 1, ".") {
        if !is_keyword(&t.text) {
            let after = skip_turbofish(toks, i + 1);
            if is_p(after, "(") {
                node.calls.push(Call {
                    segs: vec![t.text.clone()],
                    kind: CallKind::Method,
                    line: t.line,
                    col: t.col,
                });
            }
        }
        return i + 1;
    }
    if is_keyword(&t.text) {
        return i + 1;
    }
    // Macro: `name ! (` / `name ! [` / `name ! {` (excludes `a != b`).
    if is_p(i + 1, "!")
        && toks
            .get(i + 2)
            .is_some_and(|n| !n.is_ident && matches!(n.text.as_str(), "(" | "[" | "{"))
    {
        node.calls.push(Call {
            segs: vec![t.text.clone()],
            kind: CallKind::Macro,
            line: t.line,
            col: t.col,
        });
        return i + 2;
    }
    // Path: `seg (:: seg)*`, optional turbofish, optional `(`.
    let mut segs = vec![t.text.clone()];
    let mut j = i + 1;
    while is_p(j, ":")
        && is_p(j + 1, ":")
        && toks
            .get(j + 2)
            .is_some_and(|n| n.is_ident && !is_keyword(&n.text))
    {
        segs.push(toks[j + 2].text.clone());
        j += 3;
    }
    let after = skip_turbofish(toks, j);
    let called = is_p(after, "(");
    if segs.len() >= 2 || called {
        if segs[0] == "Self" {
            if let Some(Some(ty)) = impl_type {
                segs[0] = ty.clone();
            }
        }
        while segs.len() > 1 && matches!(segs[0].as_str(), "crate" | "super" | "self") {
            segs.remove(0);
        }
        let trivial = segs.len() == 1 && matches!(segs[0].as_str(), "self" | "Self");
        if !trivial {
            node.calls.push(Call {
                segs,
                kind: CallKind::Path { called },
                line: t.line,
                col: t.col,
            });
        }
    }
    j
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;

    fn parse(src: &str) -> Vec<FnNode> {
        let lexed = lex(src);
        let spans = crate::rules::test_spans(&lexed.tokens);
        parse_tokens(&lexed.tokens, &spans)
    }

    fn call_names(f: &FnNode) -> Vec<&str> {
        f.calls.iter().map(Call::name).collect()
    }

    #[test]
    fn fn_paths_carry_mods_and_impl_type() {
        let src = "mod inner {\n  pub struct Foo;\n  impl Foo {\n    pub fn go(&self) { helper(); }\n  }\n  fn helper() {}\n}";
        let fns = parse(src);
        assert_eq!(fns.len(), 2);
        assert_eq!(fns[0].name, "go");
        assert_eq!(fns[0].mods, ["inner"]);
        assert_eq!(fns[0].impl_type.as_deref(), Some("Foo"));
        assert_eq!(call_names(&fns[0]), ["helper"]);
        assert_eq!(fns[1].name, "helper");
        assert!(fns[1].impl_type.is_none());
    }

    #[test]
    fn trait_impl_takes_the_for_type() {
        let src = "impl Defense for Krum {\n  fn aggregate(&self) { self.score(); }\n}";
        let fns = parse(src);
        assert_eq!(fns[0].impl_type.as_deref(), Some("Krum"));
        assert_eq!(fns[0].calls[0].kind, CallKind::Method);
        assert_eq!(call_names(&fns[0]), ["score"]);
    }

    #[test]
    fn generic_impl_header_finds_the_type() {
        let src = "impl<T: Clone> Wrapper<T> {\n  fn get(&self) {}\n}";
        assert_eq!(parse(src)[0].impl_type.as_deref(), Some("Wrapper"));
    }

    #[test]
    fn paths_methods_macros_and_indexes_are_separated() {
        let src = "fn hot(a: &[f32], out: &mut Vec<f32>) {\n\
                   let v = Vec::with_capacity(4);\n\
                   let s = a.to_vec();\n\
                   let m = vec![0.0; 4];\n\
                   out[0] = a[1];\n\
                   crate::par::dispatch(1, 0, &|_| {});\n\
                   }";
        let fns = parse(src);
        let f = &fns[0];
        let paths: Vec<String> = f
            .calls
            .iter()
            .filter(|c| matches!(c.kind, CallKind::Path { .. }))
            .map(|c| c.segs.join("::"))
            .collect();
        assert!(
            paths.contains(&"Vec::with_capacity".to_string()),
            "{paths:?}"
        );
        assert!(
            paths.contains(&"par::dispatch".to_string()),
            "crate:: stripped: {paths:?}"
        );
        let methods: Vec<&str> = f
            .calls
            .iter()
            .filter(|c| c.kind == CallKind::Method)
            .map(Call::name)
            .collect();
        assert_eq!(methods, ["to_vec"]);
        let macros: Vec<&str> = f
            .calls
            .iter()
            .filter(|c| c.kind == CallKind::Macro)
            .map(Call::name)
            .collect();
        assert_eq!(macros, ["vec"]);
        assert_eq!(f.index_sites.len(), 2, "{:?}", f.index_sites);
        // `&mut Vec<f32>` and `&[f32]` in the signature are not sites.
    }

    #[test]
    fn self_prefix_resolves_to_impl_type() {
        let src = "impl Conv2d {\n  fn forward(&self) { Self::check(); }\n}";
        let fns = parse(src);
        assert_eq!(fns[0].calls[0].segs, ["Conv2d", "check"]);
    }

    #[test]
    fn turbofish_method_is_still_a_call() {
        let src = "fn f(it: I) { let v = it.collect::<Vec<f32>>(); }";
        let fns = parse(src);
        let methods: Vec<&str> = fns[0]
            .calls
            .iter()
            .filter(|c| c.kind == CallKind::Method)
            .map(Call::name)
            .collect();
        assert_eq!(methods, ["collect"]);
    }

    #[test]
    fn cfg_test_fns_are_marked() {
        let src = "pub fn prod() {}\n#[cfg(test)]\nmod tests {\n  fn t() { prod(); }\n}";
        let fns = parse(src);
        assert!(!fns[0].is_test);
        assert!(fns[1].is_test, "{fns:#?}");
    }

    #[test]
    fn field_access_and_comparisons_are_not_calls() {
        let src = "fn f(s: &S) { let a = s.field; let b = a != 3; if a { } }";
        assert!(parse(src)[0].calls.is_empty(), "{:?}", parse(src)[0].calls);
    }

    #[test]
    fn trait_decl_without_body_does_not_leak_scope() {
        let src = "trait T {\n  fn sig(&self);\n  fn with_default(&self) { x.clone(); }\n}\nfn after() { y.to_vec(); }";
        let fns = parse(src);
        assert_eq!(fns.len(), 2);
        assert_eq!(fns[0].name, "with_default");
        assert_eq!(call_names(&fns[0]), ["clone"]);
        assert_eq!(fns[1].name, "after");
        assert_eq!(call_names(&fns[1]), ["to_vec"]);
    }

    #[test]
    fn struct_literal_is_not_a_call_but_array_index_is() {
        let src = "fn f() { let p = Point { x: 1 }; let q = arr[0]; }";
        let f = &parse(src)[0];
        assert!(f.calls.is_empty(), "{:?}", f.calls);
        assert_eq!(f.index_sites.len(), 1);
    }

    #[test]
    fn target_feature_fns_recover_features_from_source() {
        let src = "#[target_feature(enable = \"avx2,fma\")]\n\
                   #[inline]\n\
                   pub(super) fn dot8(a: &[f32]) -> f32 {\n\
                       unsafe { kernel(a) }\n\
                   }\n\
                   fn plain() {}";
        let lexed = lex(src);
        let tfs = target_feature_fns(&lexed.tokens, src);
        assert_eq!(tfs.len(), 1, "{tfs:?}");
        assert_eq!(tfs[0].name, "dot8");
        assert_eq!(tfs[0].features, ["avx2", "fma"]);
        assert_eq!(tfs[0].line, 3);
        // The body span covers the `unsafe` token and nothing outside.
        let unsafe_idx = lexed
            .tokens
            .iter()
            .position(|t| t.text == "unsafe")
            .expect("unsafe token");
        let (open, close) = tfs[0].body;
        assert!(open < unsafe_idx && unsafe_idx < close, "{:?}", tfs[0].body);
        let plain_idx = lexed
            .tokens
            .iter()
            .position(|t| t.text == "plain")
            .expect("plain token");
        assert!(plain_idx > close);
    }

    #[test]
    fn target_feature_generics_and_single_feature() {
        let src = "#[target_feature(enable = \"avx512f\")]\n\
                   unsafe fn tile<const R: usize>(c: &mut [f32]) {\n\
                       c[0] = 1.0;\n\
                   }";
        let tfs = target_feature_fns(&lex(src).tokens, src);
        assert_eq!(tfs.len(), 1);
        assert_eq!(tfs[0].name, "tile");
        assert_eq!(tfs[0].features, ["avx512f"]);
    }

    #[test]
    fn non_target_feature_attrs_yield_nothing() {
        let src = "#[inline(always)]\nfn f() {}\n#[cfg(test)]\nfn g() {}";
        assert!(target_feature_fns(&lex(src).tokens, src).is_empty());
    }

    fn uses(src: &str) -> Vec<(String, String)> {
        parse_uses(&lex(src).tokens)
            .into_iter()
            .map(|u| (u.alias, u.segs.join("::")))
            .collect()
    }

    #[test]
    fn plain_use_binds_last_segment() {
        assert_eq!(
            uses("use fabflip_tensor::vecops;"),
            [("vecops".into(), "fabflip_tensor::vecops".into())]
        );
        assert_eq!(
            uses("use crate::faults::sub_seed;"),
            [("sub_seed".into(), "faults::sub_seed".into())]
        );
    }

    #[test]
    fn brace_groups_expand_with_renames_and_self() {
        assert_eq!(
            uses("use fabflip_agg::{Aggregation, krum as k, streaming::{self, StreamingAggregator}};"),
            [
                ("Aggregation".into(), "fabflip_agg::Aggregation".into()),
                ("k".into(), "fabflip_agg::krum".into()),
                ("streaming".into(), "fabflip_agg::streaming".into()),
                (
                    "StreamingAggregator".into(),
                    "fabflip_agg::streaming::StreamingAggregator".into()
                ),
            ]
        );
    }

    #[test]
    fn glob_imports_bind_nothing() {
        assert_eq!(uses("use super::*;"), []);
        assert_eq!(uses("use a::*; use b::c;"), [("c".into(), "b::c".into())]);
    }

    #[test]
    fn top_level_rename_and_nested_self_rename() {
        assert_eq!(
            uses("use fabflip_tensor::quant as q;"),
            [("q".into(), "fabflip_tensor::quant".into())]
        );
        assert_eq!(
            uses("use a::b::{self as bee};"),
            [("bee".into(), "a::b".into())]
        );
    }
}
