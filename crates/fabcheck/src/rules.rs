//! The fabcheck rule set: project-specific invariants that protect the
//! bitwise-determinism and panic-safety contracts (DESIGN.md § Static
//! invariants).
//!
//! Rules come in two strengths:
//!
//! * **forbidden** — any hit fails CI (`nondeterministic-collection`,
//!   `entropy-rng`, `wallclock-in-kernel`, `env-var-outside-config`,
//!   `unsafe-without-safety-comment`, `thread-spawn-outside-par`,
//!   `raw-pointer-outside-par`, `alloc-on-hot-path`, `io-on-hot-path`,
//!   `seed-stream-registry`, `unordered-float-reduction`,
//!   `unclaimed-raw-span`);
//! * **counted** — hits are tallied per `rule × file` and ratcheted
//!   against `FABCHECK_BASELINE.json`: counts may shrink, never grow
//!   (`unwrap-in-lib`, `todo-unimplemented`, `panic-on-hot-path`).
//!
//! Matching is whole-identifier over the [`crate::lexer`] token stream, so
//! comments, strings, `Instantiates`, and `unwrap_or` never false-positive.
//! The hot-path rules are interprocedural and live in [`crate::graph`]
//! (reachability from the kernel entry set); `seed-stream-registry` is a
//! workspace-level pass ([`check_seed_streams`]) because the registry and
//! its call sites live in different files. This module hosts their
//! [`Rule`] identities plus every single-file rule.

use crate::lexer::{lex, Comment, Token};
use std::collections::{BTreeMap, BTreeSet};

/// Crates whose float-accumulation order feeds the reproducibility
/// contract: map/set iteration order, entropy, and wall-clock reads leak
/// straight into results or JSON output here.
pub const NUMERIC_CRATES: &[&str] = &["tensor", "nn", "aggregation", "attacks", "data", "fl"];

/// Files allowed to read process environment variables: the two
/// `FABFLIP_THREADS` budget modules (the tensor thread budget and the
/// rayon-shim mirror of it) plus the CPU-backend dispatcher, which reads
/// `FABFLIP_BACKEND` once at startup. Everything else must take
/// configuration as arguments so a run is a pure function of its config
/// + seed.
pub const BLESSED_ENV_FILES: &[&str] = &[
    "compat/rayon/src/lib.rs",
    "crates/tensor/src/backend/mod.rs",
    "crates/tensor/src/par.rs",
];

/// The directory holding the runtime-dispatched SIMD microkernels. Raw
/// pointers are allowed here alongside the worker pool: intrinsic
/// loads/stores are inherently pointer-based, and every unsafe block in
/// these files carries its own `// SAFETY:` comment claiming the
/// lane-width/bounds invariant (DESIGN.md §4f). Intrinsics or raw
/// pointers anywhere else in product code still fail `--ci`.
pub const BLESSED_SIMD_DIR: &str = "crates/tensor/src/backend/";

/// The single file allowed to create threads: the persistent worker pool.
/// All other crate code must go through `fabflip_tensor::par` so thread
/// count, block shape, and merge order stay under the §4b determinism
/// contract (and the pool's parked workers are actually reused).
pub const BLESSED_THREAD_FILE: &str = "crates/tensor/src/par.rs";

/// How many lines above an `unsafe` token a `// SAFETY:` comment may end
/// and still annotate it (allows attributes and a signature line between).
const SAFETY_WINDOW_LINES: u32 = 5;

/// A fabcheck rule identifier.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Rule {
    /// `HashMap`/`HashSet` in a numeric crate.
    NondeterministicCollection,
    /// `thread_rng`/`from_entropy`/`OsRng`/`getrandom` anywhere.
    EntropyRng,
    /// `Instant`/`SystemTime` in a numeric crate.
    WallclockInKernel,
    /// `env::var` outside the blessed thread-budget modules.
    EnvVarOutsideConfig,
    /// `unsafe` without a `// SAFETY:` comment just above (or beside) it.
    UnsafeWithoutSafetyComment,
    /// `thread::spawn`/`thread::scope`/`thread::Builder` in `crates/`
    /// outside the worker pool (`crates/tensor/src/par.rs`).
    ThreadSpawnOutsidePar,
    /// Raw-pointer types (`*const T`/`*mut T`) in `crates/` product code
    /// outside the worker pool and the SIMD backend microkernels
    /// ([`BLESSED_SIMD_DIR`]): lifetime-erased pointers are their
    /// monopoly, everything else uses slices.
    RawPointerOutsidePar,
    /// A heap allocation reachable from the kernel entry set
    /// ([`crate::graph::HOT_ENTRIES`]). Forbidden: the steady-state
    /// per-round loop must not touch the allocator.
    AllocOnHotPath,
    /// A panic site (indexing, `assert!`, `unwrap`/`expect`, panic
    /// macros) reachable from the kernel entry set (counted — indexing
    /// is pervasive in kernels, so this ratchets shrink-only).
    PanicOnHotPath,
    /// I/O or blocking synchronization (`std::{fs,net,io}` paths,
    /// `println!`/`eprintln!`, `Mutex`/`Condvar` acquisition) reachable
    /// from the kernel entry set, outside the worker pool. Forbidden:
    /// the deterministic core stays pure so a wire shell can wrap it.
    IoOnHotPath,
    /// A `sub_seed(seed, STREAM, …)` call whose stream argument is a
    /// numeric literal or a name not declared in the `fl::faults::streams`
    /// registry — or two registry constants sharing one id. Forbidden:
    /// a stream collision silently correlates "independent" randomness.
    SeedStreamRegistry,
    /// An order-sensitive float reduction (`.sum::<f32>()`, `.fold(…)`
    /// seeded with a float literal, a `partial_cmp` sort over a derived
    /// float key without a value tie-break) in a numeric crate, outside
    /// kernels blessed with
    /// `// fabcheck::allow(unordered_float_reduction): why`.
    UnorderedFloatReduction,
    /// A `from_raw_parts_mut` span not covered by a
    /// `// fabcheck::claim(disjoint): …` annotation naming one of the
    /// call's arguments — the partition argument whose disjointness
    /// makes the aliasing sound.
    UnclaimedRawSpan,
    /// `.unwrap()` in non-test library code (counted).
    UnwrapInLib,
    /// `todo!`/`unimplemented!` in non-test code (counted).
    TodoUnimplemented,
}

impl Rule {
    /// All rules, in reporting order.
    pub const ALL: [Rule; 15] = [
        Rule::NondeterministicCollection,
        Rule::EntropyRng,
        Rule::WallclockInKernel,
        Rule::EnvVarOutsideConfig,
        Rule::UnsafeWithoutSafetyComment,
        Rule::ThreadSpawnOutsidePar,
        Rule::RawPointerOutsidePar,
        Rule::AllocOnHotPath,
        Rule::PanicOnHotPath,
        Rule::IoOnHotPath,
        Rule::SeedStreamRegistry,
        Rule::UnorderedFloatReduction,
        Rule::UnclaimedRawSpan,
        Rule::UnwrapInLib,
        Rule::TodoUnimplemented,
    ];

    /// The kebab-case rule id used in diagnostics, JSON, and the baseline.
    pub fn name(self) -> &'static str {
        match self {
            Rule::NondeterministicCollection => "nondeterministic-collection",
            Rule::EntropyRng => "entropy-rng",
            Rule::WallclockInKernel => "wallclock-in-kernel",
            Rule::EnvVarOutsideConfig => "env-var-outside-config",
            Rule::UnsafeWithoutSafetyComment => "unsafe-without-safety-comment",
            Rule::ThreadSpawnOutsidePar => "thread-spawn-outside-par",
            Rule::RawPointerOutsidePar => "raw-pointer-outside-par",
            Rule::AllocOnHotPath => "alloc-on-hot-path",
            Rule::PanicOnHotPath => "panic-on-hot-path",
            Rule::IoOnHotPath => "io-on-hot-path",
            Rule::SeedStreamRegistry => "seed-stream-registry",
            Rule::UnorderedFloatReduction => "unordered-float-reduction",
            Rule::UnclaimedRawSpan => "unclaimed-raw-span",
            Rule::UnwrapInLib => "unwrap-in-lib",
            Rule::TodoUnimplemented => "todo-unimplemented",
        }
    }

    /// Forbidden rules fail CI on any hit; counted rules only ratchet.
    pub fn is_forbidden(self) -> bool {
        !matches!(
            self,
            Rule::UnwrapInLib | Rule::TodoUnimplemented | Rule::PanicOnHotPath
        )
    }
}

/// One rule hit at a source position.
#[derive(Debug, Clone)]
pub struct Finding {
    /// Which rule fired.
    pub rule: Rule,
    /// Root-relative path with `/` separators.
    pub file: String,
    /// 1-based line.
    pub line: u32,
    /// 1-based column.
    pub col: u32,
    /// Human-readable explanation with the remedy.
    pub message: String,
}

/// Where a file sits in the workspace — decides which rules apply.
#[derive(Debug, Clone)]
pub struct FileClass {
    /// Root-relative path with `/` separators (diagnostic + baseline key).
    pub rel: String,
    /// `true` under `crates/`, `false` under `compat/`.
    pub in_crates: bool,
    /// The crate directory name (`tensor`, `fl`, …).
    pub crate_name: String,
    /// Under `tests/` or `benches/`, or a `#[cfg(test)] mod x;` target
    /// file: all-test code, skipped by non-test-scoped rules.
    pub is_test_file: bool,
    /// Under `examples/`.
    pub is_example: bool,
    /// `src/main.rs` or under `src/bin/`: binary entry points may panic
    /// freely, so counted panic-debt rules skip them.
    pub is_bin: bool,
}

impl FileClass {
    fn is_numeric(&self) -> bool {
        self.in_crates && NUMERIC_CRATES.contains(&self.crate_name.as_str())
    }
}

/// Whether a rule looks at this file, and at which part of it.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Scope {
    /// Rule does not apply to this file.
    Off,
    /// Rule applies outside `#[cfg(test)]` item spans.
    NonTest,
    /// Rule applies to every token, tests included.
    All,
}

fn scope(rule: Rule, class: &FileClass) -> Scope {
    match rule {
        // Determinism of the numeric pipeline: product code only — tests
        // may legitimately use a HashMap to assert order-independence.
        Rule::NondeterministicCollection | Rule::WallclockInKernel => {
            if class.is_numeric() && !class.is_test_file {
                Scope::NonTest
            } else {
                Scope::Off
            }
        }
        // Entropy anywhere (tests included) breaks fixed-seed replay.
        Rule::EntropyRng => Scope::All,
        Rule::EnvVarOutsideConfig => {
            if BLESSED_ENV_FILES.contains(&class.rel.as_str()) {
                Scope::Off
            } else {
                Scope::All
            }
        }
        // Unsafe needs its invariant written down wherever it appears.
        Rule::UnsafeWithoutSafetyComment => Scope::All,
        // Thread creation is the pool's monopoly: ad-hoc spawns bypass the
        // budget cap and the fixed-block determinism argument. Tests too —
        // a scoped spawn in a test still races the pool's parked workers.
        // The compat shims are exempt (the rayon shim delegates to `par`).
        Rule::ThreadSpawnOutsidePar => {
            if class.in_crates && class.rel != BLESSED_THREAD_FILE {
                Scope::All
            } else {
                Scope::Off
            }
        }
        // Raw-pointer types are the pool's monopoly in product code,
        // shared only with the SIMD backend microkernels (whose unsafe
        // blocks are audited per-site by `unsafe-without-safety-comment`).
        // Test code (incl. the alloc_guard allocator harness) may use
        // them — tests never ship in the hot path.
        Rule::RawPointerOutsidePar => {
            if class.in_crates
                && class.rel != BLESSED_THREAD_FILE
                && !class.rel.starts_with(BLESSED_SIMD_DIR)
                && !class.is_test_file
            {
                Scope::NonTest
            } else {
                Scope::Off
            }
        }
        // Interprocedural rules: evaluated by `crate::graph`, never by
        // the single-file scan. `seed-stream-registry` is likewise
        // cross-file, evaluated by [`check_seed_streams`].
        Rule::AllocOnHotPath | Rule::PanicOnHotPath | Rule::IoOnHotPath => Scope::Off,
        Rule::SeedStreamRegistry => Scope::Off,
        // Float-reduction order feeds the §4b bitwise contract exactly
        // where HashMap order does: the numeric crates' product code.
        Rule::UnorderedFloatReduction => {
            if class.is_numeric() && !class.is_test_file {
                Scope::NonTest
            } else {
                Scope::Off
            }
        }
        // Every raw span in product code must claim its disjointness
        // argument; raw-pointer confinement already limits this to the
        // worker pool, so in practice the rule audits `par.rs`.
        Rule::UnclaimedRawSpan => {
            if class.in_crates && !class.is_test_file {
                Scope::NonTest
            } else {
                Scope::Off
            }
        }
        Rule::UnwrapInLib => {
            if class.in_crates && !class.is_test_file && !class.is_bin && !class.is_example {
                Scope::NonTest
            } else {
                Scope::Off
            }
        }
        Rule::TodoUnimplemented => {
            if class.in_crates && !class.is_test_file {
                Scope::NonTest
            } else {
                Scope::Off
            }
        }
    }
}

/// Returns the names of modules declared `#[cfg(test)] mod name;`
/// (out-of-line test modules): the walker marks `name.rs` / `name/mod.rs`
/// next to the declaring file as all-test files.
pub fn test_only_mods(src: &str) -> Vec<String> {
    let lexed = lex(src);
    let mut out = Vec::new();
    for (_, end) in cfg_test_attr_ranges(&lexed.tokens) {
        if let Some(ItemShape::OutOfLineMod(name)) = item_after_attrs(&lexed.tokens, end) {
            out.push(name);
        }
    }
    out
}

/// Half-open token-index ranges covered by `#[cfg(test)]`-gated items
/// (inline `mod tests { … }` blocks, gated fns, …). Shared with the
/// call-graph builder so test fns stay out of the hot graph.
pub(crate) fn test_spans(tokens: &[Token]) -> Vec<(usize, usize)> {
    let mut spans = Vec::new();
    for (_, attr_end) in cfg_test_attr_ranges(tokens) {
        if let Some(ItemShape::Braced(open, close)) = item_after_attrs(tokens, attr_end) {
            spans.push((open, close + 1));
        }
    }
    spans
}

/// Finds every `#[cfg(test)]`-style attribute (any `cfg(...)` whose
/// argument list mentions the `test` identifier, so `cfg(all(test, …))`
/// also counts). Returns (start index of `#`, index one past `]`).
fn cfg_test_attr_ranges(tokens: &[Token]) -> Vec<(usize, usize)> {
    let mut out = Vec::new();
    let mut i = 0;
    while i + 3 < tokens.len() {
        if tokens[i].text == "#"
            && !tokens[i].is_ident
            && tokens[i + 1].text == "["
            && tokens[i + 2].is_ident
            && tokens[i + 2].text == "cfg"
            && tokens[i + 3].text == "("
        {
            // Balanced parens from i+3; look for the ident `test` inside.
            let mut depth = 0usize;
            let mut j = i + 3;
            let mut saw_test = false;
            while j < tokens.len() {
                match tokens[j].text.as_str() {
                    "(" if !tokens[j].is_ident => depth += 1,
                    ")" if !tokens[j].is_ident => {
                        depth -= 1;
                        if depth == 0 {
                            break;
                        }
                    }
                    "test" if tokens[j].is_ident && depth >= 1 => saw_test = true,
                    _ => {}
                }
                j += 1;
            }
            // Expect the closing `]` right after the paren group.
            if saw_test && j + 1 < tokens.len() && tokens[j + 1].text == "]" {
                out.push((i, j + 2));
                i = j + 2;
                continue;
            }
            i = j.max(i + 1);
            continue;
        }
        i += 1;
    }
    out
}

/// The shape of the item following an attribute: either a braced item
/// (span of `{`..`}` token indices) or an out-of-line `mod name;`.
enum ItemShape {
    Braced(usize, usize),
    OutOfLineMod(String),
}

/// Starting at `from` (just past an attribute's `]`), skips any further
/// attributes, then finds the first top-level `;` or `{` and classifies
/// the item.
fn item_after_attrs(tokens: &[Token], mut from: usize) -> Option<ItemShape> {
    // Skip subsequent attributes: `#[ … ]`.
    while from + 1 < tokens.len() && tokens[from].text == "#" && tokens[from + 1].text == "[" {
        let mut depth = 0usize;
        let mut j = from + 1;
        while j < tokens.len() {
            match tokens[j].text.as_str() {
                "[" if !tokens[j].is_ident => depth += 1,
                "]" if !tokens[j].is_ident => {
                    depth -= 1;
                    if depth == 0 {
                        break;
                    }
                }
                _ => {}
            }
            j += 1;
        }
        from = j + 1;
    }
    let header_start = from;
    let mut paren = 0i64;
    let mut bracket = 0i64;
    let mut j = from;
    while j < tokens.len() {
        let t = &tokens[j];
        if !t.is_ident {
            match t.text.as_str() {
                "(" => paren += 1,
                ")" => paren -= 1,
                "[" => bracket += 1,
                "]" => bracket -= 1,
                ";" if paren == 0 && bracket == 0 => {
                    // `mod name;` → out-of-line module.
                    let names: Vec<&Token> = tokens[header_start..j]
                        .iter()
                        .filter(|t| t.is_ident)
                        .collect();
                    if names.len() >= 2 && names[names.len() - 2].text == "mod" {
                        return Some(ItemShape::OutOfLineMod(names[names.len() - 1].text.clone()));
                    }
                    return None;
                }
                "{" if paren == 0 && bracket == 0 => {
                    let mut depth = 0usize;
                    let mut k = j;
                    while k < tokens.len() {
                        match tokens[k].text.as_str() {
                            "{" if !tokens[k].is_ident => depth += 1,
                            "}" if !tokens[k].is_ident => {
                                depth -= 1;
                                if depth == 0 {
                                    return Some(ItemShape::Braced(j, k));
                                }
                            }
                            _ => {}
                        }
                        k += 1;
                    }
                    return Some(ItemShape::Braced(j, tokens.len().saturating_sub(1)));
                }
                _ => {}
            }
        }
        j += 1;
    }
    None
}

/// Lines covered by `// fabcheck::allow(<marker>): why` comments: a
/// marker comment covers its own last line and the line below it, so
/// both a comment-above and a trailing same-line marker work. A
/// **full-line** comment starting on an already-covered line continues
/// the coverage (so a multi-line `//` allow block reaches the first code
/// line after it) — but a *trailing* comment on a covered code line does
/// not re-extend coverage downward, and a blank line always ends the
/// chain. Coverage never tunnels past code or blank lines to a later
/// statement.
pub(crate) fn allow_lines(comments: &[Comment], tokens: &[Token], marker: &str) -> BTreeSet<u32> {
    let needle = format!("fabcheck::allow({marker})");
    let code_lines: BTreeSet<u32> = tokens.iter().map(|t| t.line).collect();
    let mut out = BTreeSet::new();
    for c in comments {
        let continues = out.contains(&c.line_start) && !code_lines.contains(&c.line_start);
        if c.text.contains(&needle) || continues {
            out.insert(c.line_end);
            out.insert(c.line_end + 1);
        }
    }
    out
}

/// Whether `text` mentions `ident` as a whole word (identifier-boundary
/// match, so a claim naming `lo` does not satisfy an argument `slot`).
fn mentions_ident(text: &str, ident: &str) -> bool {
    let is_word = |c: char| c == '_' || c.is_alphanumeric();
    let mut from = 0;
    while let Some(pos) = text[from..].find(ident) {
        let start = from + pos;
        let end = start + ident.len();
        let before_ok = text[..start]
            .chars()
            .next_back()
            .is_none_or(|c| !is_word(c));
        let after_ok = text[end..].chars().next().is_none_or(|c| !is_word(c));
        if before_ok && after_ok {
            return true;
        }
        from = end;
    }
    false
}

/// A `// SAFETY:` (or `/* SAFETY: */`) comment annotates an `unsafe`
/// token when it ends on the same line or at most [`SAFETY_WINDOW_LINES`]
/// lines above it — and each comment annotates exactly **one** `unsafe`.
/// Claims the nearest eligible unclaimed comment; `claimed` is indexed
/// parallel to `comments`. Two unsafe blocks can no longer share a
/// single SAFETY comment: every block documents its own invariant.
fn claim_safety_comment(comments: &[Comment], claimed: &mut [bool], unsafe_line: u32) -> bool {
    let best = comments
        .iter()
        .enumerate()
        .filter(|(i, c)| {
            !claimed[*i]
                && c.text.contains("SAFETY:")
                && c.line_end <= unsafe_line
                && c.line_end + SAFETY_WINDOW_LINES >= unsafe_line
        })
        .max_by_key(|(_, c)| c.line_end)
        .map(|(i, _)| i);
    match best {
        Some(i) => {
            claimed[i] = true;
            true
        }
        None => false,
    }
}

/// Token index of the `)` matching the `(` at `open` (or the last token
/// when unbalanced — robustness over validation, as everywhere here).
fn matching_paren(toks: &[Token], open: usize) -> usize {
    let mut depth = 0i64;
    let mut j = open;
    while j < toks.len() {
        if !toks[j].is_ident {
            match toks[j].text.as_str() {
                "(" => depth += 1,
                ")" => {
                    depth -= 1;
                    if depth == 0 {
                        return j;
                    }
                }
                _ => {}
            }
        }
        j += 1;
    }
    toks.len().saturating_sub(1)
}

/// Splits the arguments of a call whose `(` sits at `open` into
/// half-open token-index ranges, one per top-level comma-separated
/// argument.
fn arg_ranges(toks: &[Token], open: usize) -> Vec<(usize, usize)> {
    let close = matching_paren(toks, open);
    let mut out = Vec::new();
    let mut depth = 0i64;
    let mut start = open + 1;
    for (j, tok) in toks.iter().enumerate().take(close).skip(open + 1) {
        if tok.is_ident {
            continue;
        }
        match tok.text.as_str() {
            "(" | "[" | "{" => depth += 1,
            ")" | "]" | "}" => depth -= 1,
            "," if depth == 0 => {
                out.push((start, j));
                start = j + 1;
            }
            _ => {}
        }
    }
    if start < close {
        out.push((start, close));
    }
    out
}

/// A numeric-literal token that is a float: has a decimal point or an
/// `f32`/`f64` suffix (hex literals can end in `f32` by coincidence of
/// digits, so those are excluded).
fn is_float_literal(text: &str) -> bool {
    !text.starts_with("0x")
        && (text.contains('.') || text.ends_with("f32") || text.ends_with("f64"))
}

/// Runs every applicable rule over one file. `class.is_test_file` must
/// already account for out-of-line `#[cfg(test)] mod x;` targets (see
/// [`test_only_mods`]).
pub fn check_file(class: &FileClass, src: &str) -> Vec<Finding> {
    let enabled: Vec<(Rule, Scope)> = Rule::ALL
        .iter()
        .map(|&r| (r, scope(r, class)))
        .filter(|(_, s)| *s != Scope::Off)
        .collect();
    if enabled.is_empty() {
        return Vec::new();
    }
    let lexed = lex(src);
    let spans = test_spans(&lexed.tokens);
    let in_test = |idx: usize| spans.iter().any(|&(a, b)| idx >= a && idx < b);
    let on = |rule: Rule, idx: usize| {
        enabled
            .iter()
            .any(|&(r, s)| r == rule && (s == Scope::All || !in_test(idx)))
    };

    let mut findings = Vec::new();
    let mut push = |rule: Rule, t: &Token, message: String| {
        findings.push(Finding {
            rule,
            file: class.rel.clone(),
            line: t.line,
            col: t.col,
            message,
        });
    };
    let toks = &lexed.tokens;
    let mut claimed = vec![false; lexed.comments.len()];
    let mut claim_claimed = vec![false; lexed.comments.len()];
    let float_allow = allow_lines(&lexed.comments, toks, "unordered_float_reduction");
    for (i, t) in toks.iter().enumerate() {
        if !t.is_ident {
            // `*` immediately before `const`/`mut` is a raw-pointer type
            // (`*const T` / `*mut T`); a deref or multiplication is
            // always followed by a non-keyword operand.
            if t.text == "*"
                && on(Rule::RawPointerOutsidePar, i)
                && toks
                    .get(i + 1)
                    .is_some_and(|n| n.is_ident && matches!(n.text.as_str(), "const" | "mut"))
            {
                push(
                    Rule::RawPointerOutsidePar,
                    t,
                    format!(
                        "raw-pointer type `*{}` outside `crates/tensor/src/par.rs` \
                         and `crates/tensor/src/backend/`; product code passes \
                         slices — lifetime-erased pointers are the worker pool's \
                         and the SIMD microkernels' monopoly",
                        toks[i + 1].text
                    ),
                );
            }
            continue;
        }
        match t.text.as_str() {
            "HashMap" | "HashSet" if on(Rule::NondeterministicCollection, i) => push(
                Rule::NondeterministicCollection,
                t,
                format!(
                    "`{}` iteration order is nondeterministic; float accumulation and \
                     JSON emission in numeric crates must use `BTreeMap`/`BTreeSet` \
                     or sorted-key iteration",
                    t.text
                ),
            ),
            "thread_rng" | "from_entropy" | "OsRng" | "ThreadRng" | "getrandom"
                if on(Rule::EntropyRng, i) =>
            {
                push(
                    Rule::EntropyRng,
                    t,
                    format!(
                        "`{}` draws OS entropy, breaking fixed-seed replay; derive a \
                         `StdRng` from the run seed via a SplitMix sub-stream instead",
                        t.text
                    ),
                )
            }
            "Instant" | "SystemTime" if on(Rule::WallclockInKernel, i) => push(
                Rule::WallclockInKernel,
                t,
                format!(
                    "`{}` reads the wall clock inside a numeric crate; timing belongs \
                     in `crates/bench`, not in kernels whose output must be a pure \
                     function of inputs",
                    t.text
                ),
            ),
            "var"
                if on(Rule::EnvVarOutsideConfig, i)
                    && i >= 3
                    && toks[i - 1].text == ":"
                    && !toks[i - 1].is_ident
                    && toks[i - 2].text == ":"
                    && !toks[i - 2].is_ident
                    && toks[i - 3].text == "env"
                    && toks[i - 3].is_ident =>
            {
                push(
                    Rule::EnvVarOutsideConfig,
                    t,
                    "`env::var` outside the FABFLIP_THREADS budget modules; pass \
                     configuration through `FlConfig`/CLI flags so runs are pure \
                     functions of their config"
                        .to_string(),
                )
            }
            "unsafe"
                if on(Rule::UnsafeWithoutSafetyComment, i)
                    && !claim_safety_comment(&lexed.comments, &mut claimed, t.line) =>
            {
                push(
                    Rule::UnsafeWithoutSafetyComment,
                    t,
                    "`unsafe` without its own `// SAFETY:` comment in the preceding \
                     lines (each unsafe block claims exactly one); document the \
                     invariant that makes this sound"
                        .to_string(),
                )
            }
            "spawn" | "scope" | "Builder"
                if on(Rule::ThreadSpawnOutsidePar, i)
                    && i >= 3
                    && toks[i - 1].text == ":"
                    && !toks[i - 1].is_ident
                    && toks[i - 2].text == ":"
                    && !toks[i - 2].is_ident
                    && toks[i - 3].text == "thread"
                    && toks[i - 3].is_ident =>
            {
                push(
                    Rule::ThreadSpawnOutsidePar,
                    t,
                    format!(
                        "`thread::{}` outside `crates/tensor/src/par.rs`; route \
                         parallel work through the `fabflip_tensor::par` worker \
                         pool so the thread budget and §4b block determinism hold",
                        t.text
                    ),
                )
            }
            "unwrap" if on(Rule::UnwrapInLib, i) => {
                let after_dot = i >= 1 && !toks[i - 1].is_ident && toks[i - 1].text == ".";
                let called = i + 1 < toks.len() && toks[i + 1].text == "(";
                if after_dot && called {
                    push(
                        Rule::UnwrapInLib,
                        t,
                        "`.unwrap()` in library code; use `expect(\"actionable \
                         message\")` or propagate a `Result`"
                            .to_string(),
                    )
                }
            }
            "todo" | "unimplemented"
                if on(Rule::TodoUnimplemented, i)
                    && i + 1 < toks.len()
                    && toks[i + 1].text == "!" =>
            {
                push(
                    Rule::TodoUnimplemented,
                    t,
                    format!("`{}!` in non-test code; tracked by the ratchet", t.text),
                )
            }
            // `.sum::<f32>()` / `.sum::<f64>()`: the turbofish names the
            // float type, so this is lexically certain to be a float
            // reduction whose result depends on accumulation order.
            "sum" | "product"
                if on(Rule::UnorderedFloatReduction, i)
                    && !float_allow.contains(&t.line)
                    && i >= 1
                    && !toks[i - 1].is_ident
                    && toks[i - 1].text == "."
                    && toks
                        .get(i + 1)
                        .is_some_and(|x| !x.is_ident && x.text == ":")
                    && toks
                        .get(i + 2)
                        .is_some_and(|x| !x.is_ident && x.text == ":")
                    && toks
                        .get(i + 3)
                        .is_some_and(|x| !x.is_ident && x.text == "<")
                    && toks.get(i + 4).is_some_and(|x| {
                        x.is_ident && matches!(x.text.as_str(), "f32" | "f64")
                    }) =>
            {
                push(
                    Rule::UnorderedFloatReduction,
                    t,
                    format!(
                        "`.{}::<{}>()` is an order-sensitive float reduction; route it \
                         through a fixed-order serial kernel (`tensor::vecops`), or \
                         bless this site with \
                         `// fabcheck::allow(unordered_float_reduction): why` stating \
                         the fixed-order argument",
                        t.text,
                        toks[i + 4].text
                    ),
                )
            }
            // `.fold(0.0, …)`: a float-literal accumulator seed marks a
            // float fold whose result is accumulation-order dependent.
            "fold"
                if on(Rule::UnorderedFloatReduction, i)
                    && !float_allow.contains(&t.line)
                    && i >= 1
                    && !toks[i - 1].is_ident
                    && toks[i - 1].text == "."
                    && toks
                        .get(i + 1)
                        .is_some_and(|x| !x.is_ident && x.text == "(")
                    && arg_ranges(toks, i + 1).first().is_some_and(|&(a, b)| {
                        toks[a..b].iter().any(|x| {
                            !x.is_ident
                                && x.text.starts_with(|c: char| c.is_ascii_digit())
                                && is_float_literal(&x.text)
                        })
                    }) =>
            {
                push(
                    Rule::UnorderedFloatReduction,
                    t,
                    "float-seeded `.fold(…)` is an order-sensitive reduction; use a \
                     fixed-order serial kernel, or bless this site with \
                     `// fabcheck::allow(unordered_float_reduction): why` stating the \
                     fixed-order argument"
                        .to_string(),
                )
            }
            // `sort_by`/`sort_unstable_by` comparing through `partial_cmp`
            // on a *derived* key (indexing/expression, not a bare closure
            // parameter) with no tuple tie-break: equal keys order by the
            // input permutation, which thread count can change.
            "sort_by" | "sort_unstable_by"
                if on(Rule::UnorderedFloatReduction, i)
                    && !float_allow.contains(&t.line)
                    && i >= 1
                    && !toks[i - 1].is_ident
                    && toks[i - 1].text == "."
                    && toks
                        .get(i + 1)
                        .is_some_and(|x| !x.is_ident && x.text == "(") =>
            {
                let close = matching_paren(toks, i + 1);
                let mut bars = (i + 2..close).filter(|&j| !toks[j].is_ident && toks[j].text == "|");
                let params: Vec<&str> = match (bars.next(), bars.next()) {
                    (Some(a), Some(b)) => toks[a + 1..b]
                        .iter()
                        .filter(|x| x.is_ident && x.text != "mut")
                        .map(|x| x.text.as_str())
                        .collect(),
                    _ => Vec::new(),
                };
                for j in i + 2..close {
                    if !(toks[j].is_ident
                        && toks[j].text == "partial_cmp"
                        && j >= 2
                        && !toks[j - 1].is_ident
                        && toks[j - 1].text == ".")
                    {
                        continue;
                    }
                    let recv = &toks[j - 2];
                    if recv.is_ident && params.contains(&recv.text.as_str()) {
                        // `|a, b| a.partial_cmp(b)`: a direct value sort —
                        // equal floats are interchangeable.
                        continue;
                    }
                    let tie_broken = toks
                        .get(j + 1)
                        .is_some_and(|x| !x.is_ident && x.text == "(")
                        && (j + 2..matching_paren(toks, j + 1))
                            .any(|k| !toks[k].is_ident && toks[k].text == ",");
                    if !tie_broken {
                        push(
                            Rule::UnorderedFloatReduction,
                            t,
                            "`partial_cmp` sort over a derived float key without a \
                             value tie-break; sort `(key, index)` tuples so equal keys \
                             order deterministically, or bless with \
                             `// fabcheck::allow(unordered_float_reduction): why`"
                                .to_string(),
                        );
                        break;
                    }
                }
            }
            // Every raw mutable span must claim the partition argument
            // that makes its aliasing sound.
            "from_raw_parts_mut"
                if on(Rule::UnclaimedRawSpan, i)
                    && toks
                        .get(i + 1)
                        .is_some_and(|x| !x.is_ident && x.text == "(") =>
            {
                let close = matching_paren(toks, i + 1);
                let args: Vec<&str> = toks[i + 2..close]
                    .iter()
                    .filter(|x| x.is_ident)
                    .map(|x| x.text.as_str())
                    .collect();
                let best = lexed
                    .comments
                    .iter()
                    .enumerate()
                    .filter(|(k, c)| {
                        !claim_claimed[*k]
                            && c.text.contains("fabcheck::claim(disjoint)")
                            && c.line_end <= t.line
                            && c.line_end + SAFETY_WINDOW_LINES >= t.line
                    })
                    .max_by_key(|(_, c)| c.line_end)
                    .map(|(k, _)| k);
                match best {
                    None => push(
                        Rule::UnclaimedRawSpan,
                        t,
                        "`from_raw_parts_mut` without its own \
                         `// fabcheck::claim(disjoint): …` annotation in the preceding \
                         lines (each span claims exactly one); state which argument \
                         partitions the spans disjointly"
                            .to_string(),
                    ),
                    Some(k) => {
                        claim_claimed[k] = true;
                        if !args
                            .iter()
                            .any(|a| mentions_ident(&lexed.comments[k].text, a))
                        {
                            push(
                                Rule::UnclaimedRawSpan,
                                t,
                                "the `fabcheck::claim(disjoint)` annotation names none \
                                 of this `from_raw_parts_mut` call's arguments; name \
                                 the partition argument on the claim line itself"
                                    .to_string(),
                            )
                        }
                    }
                }
            }
            _ => {}
        }
    }
    findings
}

/// Parses the integer value of a numeric-literal token (decimal or hex,
/// `_` separators and type suffixes tolerated).
fn int_value(text: &str) -> Option<u64> {
    let t: String = text.chars().filter(|&c| c != '_').collect();
    if let Some(hex) = t.strip_prefix("0x").or_else(|| t.strip_prefix("0X")) {
        let digits: String = hex.chars().take_while(|c| c.is_ascii_hexdigit()).collect();
        u64::from_str_radix(&digits, 16).ok()
    } else {
        let digits: String = t.chars().take_while(|c| c.is_ascii_digit()).collect();
        digits.parse().ok()
    }
}

/// The workspace-level `seed-stream-registry` pass (cross-file, so it
/// cannot run inside [`check_file`]).
///
/// Pass 1 collects the registry: every `pub const NAME: u64 = <id>;`
/// inside a `mod streams { … }` block in crate `fl`, flagging duplicate
/// ids (two streams sharing an id silently correlate their
/// "independent" randomness) and a second registry module. Pass 2 audits
/// every non-test `sub_seed(seed, STREAM, …)` call site in `crates/`:
/// the stream argument must be a path ending in a registered constant —
/// numeric literals and unregistered names are findings.
pub fn check_seed_streams(files: &[(&FileClass, &str)]) -> Vec<Finding> {
    let mut findings = Vec::new();
    let mut registry: BTreeSet<String> = BTreeSet::new();
    let mut by_id: BTreeMap<u64, String> = BTreeMap::new();
    let mut registry_file: Option<String> = None;

    for (class, src) in files {
        if !class.in_crates || class.crate_name != "fl" || class.is_test_file {
            continue;
        }
        let lexed = lex(src);
        let toks = &lexed.tokens;
        let mut i = 0;
        while i + 2 < toks.len() {
            if !(toks[i].is_ident
                && toks[i].text == "mod"
                && toks[i + 1].is_ident
                && toks[i + 1].text == "streams"
                && !toks[i + 2].is_ident
                && toks[i + 2].text == "{")
            {
                i += 1;
                continue;
            }
            match &registry_file {
                None => registry_file = Some(class.rel.clone()),
                Some(first) => findings.push(Finding {
                    rule: Rule::SeedStreamRegistry,
                    file: class.rel.clone(),
                    line: toks[i].line,
                    col: toks[i].col,
                    message: format!(
                        "second `mod streams` registry (first in `{first}`); the \
                         seed-stream registry must be a single module in `fl::faults`"
                    ),
                }),
            }
            // Walk the registry block, collecting `const NAME … = <id> ;`.
            let mut depth = 0i64;
            let mut j = i + 2;
            while j < toks.len() {
                let t = &toks[j];
                if !t.is_ident {
                    match t.text.as_str() {
                        "{" => depth += 1,
                        "}" => {
                            depth -= 1;
                            if depth == 0 {
                                break;
                            }
                        }
                        _ => {}
                    }
                    j += 1;
                    continue;
                }
                if t.text == "const" && toks.get(j + 1).is_some_and(|n| n.is_ident) {
                    let name = &toks[j + 1];
                    let mut k = j + 2;
                    while k < toks.len() && toks[k].text != "=" && toks[k].text != ";" {
                        k += 1;
                    }
                    let value = toks
                        .get(k + 1)
                        .filter(|v| {
                            toks[k].text == "="
                                && !v.is_ident
                                && v.text.starts_with(|c: char| c.is_ascii_digit())
                        })
                        .and_then(|v| int_value(&v.text));
                    registry.insert(name.text.clone());
                    if let Some(v) = value {
                        if let Some(first) = by_id.get(&v) {
                            findings.push(Finding {
                                rule: Rule::SeedStreamRegistry,
                                file: class.rel.clone(),
                                line: name.line,
                                col: name.col,
                                message: format!(
                                    "stream id {v} is declared twice in the registry \
                                     (`{first}` and `{}`); two streams sharing an id \
                                     derive identical sub-seeds",
                                    name.text
                                ),
                            });
                        } else {
                            by_id.insert(v, name.text.clone());
                        }
                    }
                    j = k;
                    continue;
                }
                j += 1;
            }
            i = j.max(i + 1);
        }
    }

    for (class, src) in files {
        if !class.in_crates || class.is_test_file {
            continue;
        }
        let lexed = lex(src);
        let toks = &lexed.tokens;
        let spans = test_spans(toks);
        let in_test = |idx: usize| spans.iter().any(|&(a, b)| idx >= a && idx < b);
        for (i, t) in toks.iter().enumerate() {
            if !(t.is_ident
                && t.text == "sub_seed"
                && toks.get(i + 1).is_some_and(|n| !n.is_ident && n.text == "(")
                && !in_test(i)
                // Skip the definition itself (`fn sub_seed(master, …)`).
                && !(i >= 1 && toks[i - 1].is_ident && toks[i - 1].text == "fn"))
            {
                continue;
            }
            let args = arg_ranges(toks, i + 1);
            let Some(&(a, b)) = args.get(1) else {
                continue;
            };
            let stream = &toks[a..b];
            if let Some(lit) = stream
                .iter()
                .find(|x| !x.is_ident && x.text.starts_with(|c: char| c.is_ascii_digit()))
            {
                findings.push(Finding {
                    rule: Rule::SeedStreamRegistry,
                    file: class.rel.clone(),
                    line: lit.line,
                    col: lit.col,
                    message: format!(
                        "`sub_seed` stream id is the magic number `{}`; declare it as \
                         a named constant in the `fl::faults::streams` registry and \
                         reference it, so stream collisions are visible in one place",
                        lit.text
                    ),
                });
                continue;
            }
            let Some(name) = stream.iter().rev().find(|x| x.is_ident) else {
                continue;
            };
            if !registry.contains(&name.text) {
                findings.push(Finding {
                    rule: Rule::SeedStreamRegistry,
                    file: class.rel.clone(),
                    line: name.line,
                    col: name.col,
                    message: format!(
                        "`sub_seed` stream id `{}` is not declared in the \
                         `fl::faults::streams` registry; every stream id lives there \
                         so collisions are impossible to miss",
                        name.text
                    ),
                });
            }
        }
    }
    findings
}

#[cfg(test)]
mod tests {
    use super::*;

    fn class(rel: &str) -> FileClass {
        let mut parts = rel.split('/');
        let top = parts.next().unwrap_or_default();
        let krate = parts.next().unwrap_or_default().to_string();
        FileClass {
            rel: rel.to_string(),
            in_crates: top == "crates",
            crate_name: krate,
            is_test_file: rel.contains("/tests/"),
            is_example: rel.contains("/examples/"),
            is_bin: rel.ends_with("src/main.rs") || rel.contains("/src/bin/"),
        }
    }

    fn run(rel: &str, src: &str) -> Vec<String> {
        check_file(&class(rel), src)
            .into_iter()
            .map(|f| f.rule.name().to_string())
            .collect()
    }

    #[test]
    fn hashmap_flagged_only_in_numeric_crates() {
        let src = "use std::collections::HashMap;";
        assert_eq!(
            run("crates/fl/src/runner.rs", src),
            ["nondeterministic-collection"]
        );
        assert!(run("crates/bench/src/lib.rs", src).is_empty());
        assert!(run("compat/serde/src/lib.rs", src).is_empty());
    }

    #[test]
    fn hashmap_in_comment_string_or_test_mod_is_clean() {
        assert!(run("crates/fl/src/a.rs", "// HashMap in prose").is_empty());
        assert!(run("crates/fl/src/a.rs", r#"let s = "HashMap";"#).is_empty());
        assert!(run(
            "crates/fl/src/a.rs",
            "#[cfg(test)]\nmod tests {\n use std::collections::HashMap;\n}"
        )
        .is_empty());
        // Non-test code after the test mod is still checked.
        assert_eq!(
            run(
                "crates/fl/src/a.rs",
                "#[cfg(test)]\nmod tests { }\nuse std::collections::HashMap;"
            ),
            ["nondeterministic-collection"]
        );
    }

    #[test]
    fn entropy_rng_flagged_everywhere_even_tests() {
        let src = "#[cfg(test)]\nmod tests { fn f() { let r = thread_rng(); } }";
        assert_eq!(run("crates/cli/src/lib.rs", src), ["entropy-rng"]);
        assert_eq!(
            run("compat/rand/src/lib.rs", "pub fn from_entropy() {}"),
            ["entropy-rng"]
        );
    }

    #[test]
    fn wallclock_scoped_to_numeric_crates() {
        let src = "let t = std::time::Instant::now();";
        assert_eq!(
            run("crates/tensor/src/matmul.rs", src),
            ["wallclock-in-kernel"]
        );
        assert!(run("crates/bench/src/lib.rs", src).is_empty());
        // Doc-comment prose like `/// Instantiates the rule.` is clean.
        assert!(run(
            "crates/aggregation/src/types.rs",
            "/// Instantiates the rule."
        )
        .is_empty());
    }

    #[test]
    fn env_var_blessed_only_in_budget_modules() {
        let src = r#"let v = std::env::var("FABFLIP_THREADS");"#;
        assert!(run("crates/tensor/src/par.rs", src).is_empty());
        assert!(run("compat/rayon/src/lib.rs", src).is_empty());
        assert_eq!(run("crates/fl/src/sim.rs", src), ["env-var-outside-config"]);
        // env::args and env::temp_dir stay legal everywhere.
        assert!(run("crates/cli/src/main.rs", "let a = std::env::args();").is_empty());
    }

    #[test]
    fn unsafe_requires_safety_comment() {
        // Snippets live at the par.rs path: raw-pointer types are legal
        // there, so only the unsafe-comment rule is under test.
        let bad = "fn f(p: *const u8) { unsafe { p.read() }; }";
        assert_eq!(
            run("crates/tensor/src/par.rs", bad),
            ["unsafe-without-safety-comment"]
        );
        let good = "// SAFETY: p is valid for reads per the caller contract.\n\
                    fn f(p: *const u8) { unsafe { p.read() }; }";
        assert!(run("crates/tensor/src/par.rs", good).is_empty());
        // Attribute + doc-comment noise between the SAFETY line and the
        // unsafe token stays within the window.
        let noisy = "// SAFETY: index < len checked above.\n\
                     #[allow(clippy::missing_docs_in_private_items)]\n\
                     #[inline(always)]\n\
                     fn g(s: &[u8]) { unsafe { s.get_unchecked(0) }; }";
        assert!(run("crates/tensor/src/par.rs", noisy).is_empty());
        // A SAFETY comment far above does not annotate.
        let far = format!(
            "// SAFETY: stale.\n{}\nfn f(p: *const u8) {{ unsafe {{ p.read() }}; }}",
            "\n".repeat(8)
        );
        assert_eq!(
            run("crates/tensor/src/par.rs", &far),
            ["unsafe-without-safety-comment"]
        );
        // Trailing same-line comment counts.
        let inline = "fn f(p: *const u8) { unsafe { p.read() }; } // SAFETY: valid ptr.";
        assert!(run("crates/tensor/src/par.rs", inline).is_empty());
        // The word SAFETY: inside a doc example string does not annotate
        // and an `unsafe` inside a string is not a finding.
        assert!(run("crates/nn/src/x.rs", r#"let s = "unsafe";"#).is_empty());
    }

    #[test]
    fn each_unsafe_claims_its_own_safety_comment() {
        // Two unsafe blocks, one comment: the second block is naked.
        let shared = "// SAFETY: covers only one block.\n\
                      fn f(s: &[u8]) { unsafe { s.get_unchecked(0) }; unsafe { s.get_unchecked(1) }; }";
        assert_eq!(
            run("crates/tensor/src/par.rs", shared),
            ["unsafe-without-safety-comment"]
        );
        // Two comments, two blocks: both annotated.
        let paired = "// SAFETY: first index in bounds.\n\
                      // SAFETY: second index in bounds.\n\
                      fn f(s: &[u8]) { unsafe { s.get_unchecked(0) }; unsafe { s.get_unchecked(1) }; }";
        assert!(run("crates/tensor/src/par.rs", paired).is_empty());
    }

    #[test]
    fn raw_pointer_types_confined_to_par() {
        let ty = "fn f(p: *const f32, q: *mut f32) {}";
        assert_eq!(
            run("crates/tensor/src/matmul.rs", ty),
            ["raw-pointer-outside-par", "raw-pointer-outside-par"]
        );
        assert!(run("crates/tensor/src/par.rs", ty).is_empty());
        // Multiplication and deref are not raw-pointer types.
        assert!(run("crates/tensor/src/matmul.rs", "let y = a * b; let z = *r;").is_empty());
        // Test files (e.g. the alloc_guard allocator) are exempt.
        assert!(run("crates/tensor/tests/alloc_guard.rs", ty).is_empty());
        assert!(run(
            "crates/nn/src/conv.rs",
            "#[cfg(test)]\nmod tests { fn t(p: *const u8) {} }"
        )
        .is_empty());
    }

    #[test]
    fn thread_spawn_flagged_outside_par() {
        let spawn = "std::thread::spawn(|| {});";
        assert_eq!(
            run("crates/fl/src/runner.rs", spawn),
            ["thread-spawn-outside-par"]
        );
        // The worker pool itself and the compat shims are exempt.
        assert!(run("crates/tensor/src/par.rs", spawn).is_empty());
        assert!(run("compat/rayon/src/lib.rs", spawn).is_empty());
        // `thread::scope` and `thread::Builder` count too.
        assert_eq!(
            run(
                "crates/nn/src/x.rs",
                "thread::scope(|s| { s.spawn(|| {}); });"
            ),
            ["thread-spawn-outside-par"]
        );
        assert_eq!(
            run("crates/fl/src/x.rs", "thread::Builder::new();"),
            ["thread-spawn-outside-par"]
        );
        // Test code is NOT exempt: scoped threads in tests still race the
        // pool's parked workers.
        assert_eq!(
            run(
                "crates/nn/src/x.rs",
                "#[cfg(test)]\nmod tests { fn t() { std::thread::spawn(|| {}); } }"
            ),
            ["thread-spawn-outside-par"]
        );
        // A method call `cmd.spawn()` (e.g. std::process::Command) and the
        // bare words in prose are clean.
        assert!(run("crates/fl/src/x.rs", "cmd.spawn();").is_empty());
        assert!(run("crates/fl/src/x.rs", "// thread::spawn in prose").is_empty());
    }

    #[test]
    fn unwrap_counted_in_lib_only() {
        let src = "fn f() { x.unwrap(); }";
        assert_eq!(run("crates/nn/src/gradcheck.rs", src), ["unwrap-in-lib"]);
        assert!(run("crates/nn/src/main.rs", src).is_empty());
        assert!(run("crates/bench/src/bin/perf.rs", src).is_empty());
        assert!(run("crates/fl/examples/probe.rs", src).is_empty());
        assert!(run("compat/rand/src/lib.rs", src).is_empty());
        // unwrap_or and a fn named unwrap don't count.
        assert!(run("crates/nn/src/a.rs", "x.unwrap_or(0);").is_empty());
        assert!(run("crates/nn/src/a.rs", "fn unwrap() {}").is_empty());
        // Test-module unwraps don't count.
        assert!(run(
            "crates/nn/src/a.rs",
            "#[cfg(test)]\nmod tests { fn t() { x.unwrap(); } }"
        )
        .is_empty());
    }

    #[test]
    fn todo_and_unimplemented_counted() {
        assert_eq!(
            run("crates/fl/src/a.rs", "fn f() { todo!() }"),
            ["todo-unimplemented"]
        );
        assert_eq!(
            run("crates/fl/src/a.rs", "fn f() { unimplemented!() }"),
            ["todo-unimplemented"]
        );
        // The identifier alone (e.g. a variable named todo) is clean.
        assert!(run("crates/fl/src/a.rs", "let todo = 3;").is_empty());
    }

    #[test]
    fn cfg_all_test_gates_are_recognized() {
        let src = "#[cfg(all(test, feature = \"slow\"))]\nmod tests { fn t() { x.unwrap(); } }";
        assert!(run("crates/nn/src/a.rs", src).is_empty());
    }

    #[test]
    fn out_of_line_test_mods_are_reported() {
        let src = "#[cfg(test)]\nmod proptests;\npub fn f() {}";
        assert_eq!(test_only_mods(src), ["proptests"]);
        assert!(test_only_mods("mod proptests;").is_empty());
    }
}
