//! The fabcheck rule set: project-specific invariants that protect the
//! bitwise-determinism and panic-safety contracts (DESIGN.md § Static
//! invariants).
//!
//! Rules come in two strengths:
//!
//! * **forbidden** — any hit fails CI (`nondeterministic-collection`,
//!   `entropy-rng`, `wallclock-in-kernel`, `env-var-outside-config`,
//!   `unsafe-without-safety-comment`, `thread-spawn-outside-par`,
//!   `raw-pointer-outside-par`, `alloc-on-hot-path`);
//! * **counted** — hits are tallied per `rule × file` and ratcheted
//!   against `FABCHECK_BASELINE.json`: counts may shrink, never grow
//!   (`unwrap-in-lib`, `todo-unimplemented`, `panic-on-hot-path`).
//!
//! Matching is whole-identifier over the [`crate::lexer`] token stream, so
//! comments, strings, `Instantiates`, and `unwrap_or` never false-positive.
//! The two hot-path rules are interprocedural and live in [`crate::graph`]
//! (reachability from the kernel entry set); this module hosts their
//! [`Rule`] identities plus every single-file rule.

use crate::lexer::{lex, Comment, Token};

/// Crates whose float-accumulation order feeds the reproducibility
/// contract: map/set iteration order, entropy, and wall-clock reads leak
/// straight into results or JSON output here.
pub const NUMERIC_CRATES: &[&str] = &["tensor", "nn", "aggregation", "attacks", "data", "fl"];

/// Files allowed to read process environment variables: the two
/// `FABFLIP_THREADS` budget modules (the tensor thread budget and the
/// rayon-shim mirror of it). Everything else must take configuration as
/// arguments so a run is a pure function of its config + seed.
pub const BLESSED_ENV_FILES: &[&str] = &["crates/tensor/src/par.rs", "compat/rayon/src/lib.rs"];

/// The single file allowed to create threads: the persistent worker pool.
/// All other crate code must go through `fabflip_tensor::par` so thread
/// count, block shape, and merge order stay under the §4b determinism
/// contract (and the pool's parked workers are actually reused).
pub const BLESSED_THREAD_FILE: &str = "crates/tensor/src/par.rs";

/// How many lines above an `unsafe` token a `// SAFETY:` comment may end
/// and still annotate it (allows attributes and a signature line between).
const SAFETY_WINDOW_LINES: u32 = 5;

/// A fabcheck rule identifier.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Rule {
    /// `HashMap`/`HashSet` in a numeric crate.
    NondeterministicCollection,
    /// `thread_rng`/`from_entropy`/`OsRng`/`getrandom` anywhere.
    EntropyRng,
    /// `Instant`/`SystemTime` in a numeric crate.
    WallclockInKernel,
    /// `env::var` outside the blessed thread-budget modules.
    EnvVarOutsideConfig,
    /// `unsafe` without a `// SAFETY:` comment just above (or beside) it.
    UnsafeWithoutSafetyComment,
    /// `thread::spawn`/`thread::scope`/`thread::Builder` in `crates/`
    /// outside the worker pool (`crates/tensor/src/par.rs`).
    ThreadSpawnOutsidePar,
    /// Raw-pointer types (`*const T`/`*mut T`) in `crates/` product code
    /// outside the worker pool: lifetime-erased pointers are the pool's
    /// monopoly, everything else uses slices.
    RawPointerOutsidePar,
    /// A heap allocation reachable from the kernel entry set
    /// ([`crate::graph::HOT_ENTRIES`]). Forbidden: the steady-state
    /// per-round loop must not touch the allocator.
    AllocOnHotPath,
    /// A panic site (indexing, `assert!`, `unwrap`/`expect`, panic
    /// macros) reachable from the kernel entry set (counted — indexing
    /// is pervasive in kernels, so this ratchets shrink-only).
    PanicOnHotPath,
    /// `.unwrap()` in non-test library code (counted).
    UnwrapInLib,
    /// `todo!`/`unimplemented!` in non-test code (counted).
    TodoUnimplemented,
}

impl Rule {
    /// All rules, in reporting order.
    pub const ALL: [Rule; 11] = [
        Rule::NondeterministicCollection,
        Rule::EntropyRng,
        Rule::WallclockInKernel,
        Rule::EnvVarOutsideConfig,
        Rule::UnsafeWithoutSafetyComment,
        Rule::ThreadSpawnOutsidePar,
        Rule::RawPointerOutsidePar,
        Rule::AllocOnHotPath,
        Rule::PanicOnHotPath,
        Rule::UnwrapInLib,
        Rule::TodoUnimplemented,
    ];

    /// The kebab-case rule id used in diagnostics, JSON, and the baseline.
    pub fn name(self) -> &'static str {
        match self {
            Rule::NondeterministicCollection => "nondeterministic-collection",
            Rule::EntropyRng => "entropy-rng",
            Rule::WallclockInKernel => "wallclock-in-kernel",
            Rule::EnvVarOutsideConfig => "env-var-outside-config",
            Rule::UnsafeWithoutSafetyComment => "unsafe-without-safety-comment",
            Rule::ThreadSpawnOutsidePar => "thread-spawn-outside-par",
            Rule::RawPointerOutsidePar => "raw-pointer-outside-par",
            Rule::AllocOnHotPath => "alloc-on-hot-path",
            Rule::PanicOnHotPath => "panic-on-hot-path",
            Rule::UnwrapInLib => "unwrap-in-lib",
            Rule::TodoUnimplemented => "todo-unimplemented",
        }
    }

    /// Forbidden rules fail CI on any hit; counted rules only ratchet.
    pub fn is_forbidden(self) -> bool {
        !matches!(
            self,
            Rule::UnwrapInLib | Rule::TodoUnimplemented | Rule::PanicOnHotPath
        )
    }
}

/// One rule hit at a source position.
#[derive(Debug, Clone)]
pub struct Finding {
    /// Which rule fired.
    pub rule: Rule,
    /// Root-relative path with `/` separators.
    pub file: String,
    /// 1-based line.
    pub line: u32,
    /// 1-based column.
    pub col: u32,
    /// Human-readable explanation with the remedy.
    pub message: String,
}

/// Where a file sits in the workspace — decides which rules apply.
#[derive(Debug, Clone)]
pub struct FileClass {
    /// Root-relative path with `/` separators (diagnostic + baseline key).
    pub rel: String,
    /// `true` under `crates/`, `false` under `compat/`.
    pub in_crates: bool,
    /// The crate directory name (`tensor`, `fl`, …).
    pub crate_name: String,
    /// Under `tests/` or `benches/`, or a `#[cfg(test)] mod x;` target
    /// file: all-test code, skipped by non-test-scoped rules.
    pub is_test_file: bool,
    /// Under `examples/`.
    pub is_example: bool,
    /// `src/main.rs` or under `src/bin/`: binary entry points may panic
    /// freely, so counted panic-debt rules skip them.
    pub is_bin: bool,
}

impl FileClass {
    fn is_numeric(&self) -> bool {
        self.in_crates && NUMERIC_CRATES.contains(&self.crate_name.as_str())
    }
}

/// Whether a rule looks at this file, and at which part of it.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Scope {
    /// Rule does not apply to this file.
    Off,
    /// Rule applies outside `#[cfg(test)]` item spans.
    NonTest,
    /// Rule applies to every token, tests included.
    All,
}

fn scope(rule: Rule, class: &FileClass) -> Scope {
    match rule {
        // Determinism of the numeric pipeline: product code only — tests
        // may legitimately use a HashMap to assert order-independence.
        Rule::NondeterministicCollection | Rule::WallclockInKernel => {
            if class.is_numeric() && !class.is_test_file {
                Scope::NonTest
            } else {
                Scope::Off
            }
        }
        // Entropy anywhere (tests included) breaks fixed-seed replay.
        Rule::EntropyRng => Scope::All,
        Rule::EnvVarOutsideConfig => {
            if BLESSED_ENV_FILES.contains(&class.rel.as_str()) {
                Scope::Off
            } else {
                Scope::All
            }
        }
        // Unsafe needs its invariant written down wherever it appears.
        Rule::UnsafeWithoutSafetyComment => Scope::All,
        // Thread creation is the pool's monopoly: ad-hoc spawns bypass the
        // budget cap and the fixed-block determinism argument. Tests too —
        // a scoped spawn in a test still races the pool's parked workers.
        // The compat shims are exempt (the rayon shim delegates to `par`).
        Rule::ThreadSpawnOutsidePar => {
            if class.in_crates && class.rel != BLESSED_THREAD_FILE {
                Scope::All
            } else {
                Scope::Off
            }
        }
        // Raw-pointer types are the pool's monopoly in product code.
        // Test code (incl. the alloc_guard allocator harness) may use
        // them — tests never ship in the hot path.
        Rule::RawPointerOutsidePar => {
            if class.in_crates && class.rel != BLESSED_THREAD_FILE && !class.is_test_file {
                Scope::NonTest
            } else {
                Scope::Off
            }
        }
        // Interprocedural rules: evaluated by `crate::graph`, never by
        // the single-file scan.
        Rule::AllocOnHotPath | Rule::PanicOnHotPath => Scope::Off,
        Rule::UnwrapInLib => {
            if class.in_crates && !class.is_test_file && !class.is_bin && !class.is_example {
                Scope::NonTest
            } else {
                Scope::Off
            }
        }
        Rule::TodoUnimplemented => {
            if class.in_crates && !class.is_test_file {
                Scope::NonTest
            } else {
                Scope::Off
            }
        }
    }
}

/// Returns the names of modules declared `#[cfg(test)] mod name;`
/// (out-of-line test modules): the walker marks `name.rs` / `name/mod.rs`
/// next to the declaring file as all-test files.
pub fn test_only_mods(src: &str) -> Vec<String> {
    let lexed = lex(src);
    let mut out = Vec::new();
    for (_, end) in cfg_test_attr_ranges(&lexed.tokens) {
        if let Some(ItemShape::OutOfLineMod(name)) = item_after_attrs(&lexed.tokens, end) {
            out.push(name);
        }
    }
    out
}

/// Half-open token-index ranges covered by `#[cfg(test)]`-gated items
/// (inline `mod tests { … }` blocks, gated fns, …). Shared with the
/// call-graph builder so test fns stay out of the hot graph.
pub(crate) fn test_spans(tokens: &[Token]) -> Vec<(usize, usize)> {
    let mut spans = Vec::new();
    for (_, attr_end) in cfg_test_attr_ranges(tokens) {
        if let Some(ItemShape::Braced(open, close)) = item_after_attrs(tokens, attr_end) {
            spans.push((open, close + 1));
        }
    }
    spans
}

/// Finds every `#[cfg(test)]`-style attribute (any `cfg(...)` whose
/// argument list mentions the `test` identifier, so `cfg(all(test, …))`
/// also counts). Returns (start index of `#`, index one past `]`).
fn cfg_test_attr_ranges(tokens: &[Token]) -> Vec<(usize, usize)> {
    let mut out = Vec::new();
    let mut i = 0;
    while i + 3 < tokens.len() {
        if tokens[i].text == "#"
            && !tokens[i].is_ident
            && tokens[i + 1].text == "["
            && tokens[i + 2].is_ident
            && tokens[i + 2].text == "cfg"
            && tokens[i + 3].text == "("
        {
            // Balanced parens from i+3; look for the ident `test` inside.
            let mut depth = 0usize;
            let mut j = i + 3;
            let mut saw_test = false;
            while j < tokens.len() {
                match tokens[j].text.as_str() {
                    "(" if !tokens[j].is_ident => depth += 1,
                    ")" if !tokens[j].is_ident => {
                        depth -= 1;
                        if depth == 0 {
                            break;
                        }
                    }
                    "test" if tokens[j].is_ident && depth >= 1 => saw_test = true,
                    _ => {}
                }
                j += 1;
            }
            // Expect the closing `]` right after the paren group.
            if saw_test && j + 1 < tokens.len() && tokens[j + 1].text == "]" {
                out.push((i, j + 2));
                i = j + 2;
                continue;
            }
            i = j.max(i + 1);
            continue;
        }
        i += 1;
    }
    out
}

/// The shape of the item following an attribute: either a braced item
/// (span of `{`..`}` token indices) or an out-of-line `mod name;`.
enum ItemShape {
    Braced(usize, usize),
    OutOfLineMod(String),
}

/// Starting at `from` (just past an attribute's `]`), skips any further
/// attributes, then finds the first top-level `;` or `{` and classifies
/// the item.
fn item_after_attrs(tokens: &[Token], mut from: usize) -> Option<ItemShape> {
    // Skip subsequent attributes: `#[ … ]`.
    while from + 1 < tokens.len() && tokens[from].text == "#" && tokens[from + 1].text == "[" {
        let mut depth = 0usize;
        let mut j = from + 1;
        while j < tokens.len() {
            match tokens[j].text.as_str() {
                "[" if !tokens[j].is_ident => depth += 1,
                "]" if !tokens[j].is_ident => {
                    depth -= 1;
                    if depth == 0 {
                        break;
                    }
                }
                _ => {}
            }
            j += 1;
        }
        from = j + 1;
    }
    let header_start = from;
    let mut paren = 0i64;
    let mut bracket = 0i64;
    let mut j = from;
    while j < tokens.len() {
        let t = &tokens[j];
        if !t.is_ident {
            match t.text.as_str() {
                "(" => paren += 1,
                ")" => paren -= 1,
                "[" => bracket += 1,
                "]" => bracket -= 1,
                ";" if paren == 0 && bracket == 0 => {
                    // `mod name;` → out-of-line module.
                    let names: Vec<&Token> = tokens[header_start..j]
                        .iter()
                        .filter(|t| t.is_ident)
                        .collect();
                    if names.len() >= 2 && names[names.len() - 2].text == "mod" {
                        return Some(ItemShape::OutOfLineMod(names[names.len() - 1].text.clone()));
                    }
                    return None;
                }
                "{" if paren == 0 && bracket == 0 => {
                    let mut depth = 0usize;
                    let mut k = j;
                    while k < tokens.len() {
                        match tokens[k].text.as_str() {
                            "{" if !tokens[k].is_ident => depth += 1,
                            "}" if !tokens[k].is_ident => {
                                depth -= 1;
                                if depth == 0 {
                                    return Some(ItemShape::Braced(j, k));
                                }
                            }
                            _ => {}
                        }
                        k += 1;
                    }
                    return Some(ItemShape::Braced(j, tokens.len().saturating_sub(1)));
                }
                _ => {}
            }
        }
        j += 1;
    }
    None
}

/// A `// SAFETY:` (or `/* SAFETY: */`) comment annotates an `unsafe`
/// token when it ends on the same line or at most [`SAFETY_WINDOW_LINES`]
/// lines above it — and each comment annotates exactly **one** `unsafe`.
/// Claims the nearest eligible unclaimed comment; `claimed` is indexed
/// parallel to `comments`. Two unsafe blocks can no longer share a
/// single SAFETY comment: every block documents its own invariant.
fn claim_safety_comment(comments: &[Comment], claimed: &mut [bool], unsafe_line: u32) -> bool {
    let best = comments
        .iter()
        .enumerate()
        .filter(|(i, c)| {
            !claimed[*i]
                && c.text.contains("SAFETY:")
                && c.line_end <= unsafe_line
                && c.line_end + SAFETY_WINDOW_LINES >= unsafe_line
        })
        .max_by_key(|(_, c)| c.line_end)
        .map(|(i, _)| i);
    match best {
        Some(i) => {
            claimed[i] = true;
            true
        }
        None => false,
    }
}

/// Runs every applicable rule over one file. `class.is_test_file` must
/// already account for out-of-line `#[cfg(test)] mod x;` targets (see
/// [`test_only_mods`]).
pub fn check_file(class: &FileClass, src: &str) -> Vec<Finding> {
    let enabled: Vec<(Rule, Scope)> = Rule::ALL
        .iter()
        .map(|&r| (r, scope(r, class)))
        .filter(|(_, s)| *s != Scope::Off)
        .collect();
    if enabled.is_empty() {
        return Vec::new();
    }
    let lexed = lex(src);
    let spans = test_spans(&lexed.tokens);
    let in_test = |idx: usize| spans.iter().any(|&(a, b)| idx >= a && idx < b);
    let on = |rule: Rule, idx: usize| {
        enabled
            .iter()
            .any(|&(r, s)| r == rule && (s == Scope::All || !in_test(idx)))
    };

    let mut findings = Vec::new();
    let mut push = |rule: Rule, t: &Token, message: String| {
        findings.push(Finding {
            rule,
            file: class.rel.clone(),
            line: t.line,
            col: t.col,
            message,
        });
    };
    let toks = &lexed.tokens;
    let mut claimed = vec![false; lexed.comments.len()];
    for (i, t) in toks.iter().enumerate() {
        if !t.is_ident {
            // `*` immediately before `const`/`mut` is a raw-pointer type
            // (`*const T` / `*mut T`); a deref or multiplication is
            // always followed by a non-keyword operand.
            if t.text == "*"
                && on(Rule::RawPointerOutsidePar, i)
                && toks
                    .get(i + 1)
                    .is_some_and(|n| n.is_ident && matches!(n.text.as_str(), "const" | "mut"))
            {
                push(
                    Rule::RawPointerOutsidePar,
                    t,
                    format!(
                        "raw-pointer type `*{}` outside `crates/tensor/src/par.rs`; \
                         product code passes slices — lifetime-erased pointers are \
                         the worker pool's monopoly",
                        toks[i + 1].text
                    ),
                );
            }
            continue;
        }
        match t.text.as_str() {
            "HashMap" | "HashSet" if on(Rule::NondeterministicCollection, i) => push(
                Rule::NondeterministicCollection,
                t,
                format!(
                    "`{}` iteration order is nondeterministic; float accumulation and \
                     JSON emission in numeric crates must use `BTreeMap`/`BTreeSet` \
                     or sorted-key iteration",
                    t.text
                ),
            ),
            "thread_rng" | "from_entropy" | "OsRng" | "ThreadRng" | "getrandom"
                if on(Rule::EntropyRng, i) =>
            {
                push(
                    Rule::EntropyRng,
                    t,
                    format!(
                        "`{}` draws OS entropy, breaking fixed-seed replay; derive a \
                         `StdRng` from the run seed via a SplitMix sub-stream instead",
                        t.text
                    ),
                )
            }
            "Instant" | "SystemTime" if on(Rule::WallclockInKernel, i) => push(
                Rule::WallclockInKernel,
                t,
                format!(
                    "`{}` reads the wall clock inside a numeric crate; timing belongs \
                     in `crates/bench`, not in kernels whose output must be a pure \
                     function of inputs",
                    t.text
                ),
            ),
            "var"
                if on(Rule::EnvVarOutsideConfig, i)
                    && i >= 3
                    && toks[i - 1].text == ":"
                    && !toks[i - 1].is_ident
                    && toks[i - 2].text == ":"
                    && !toks[i - 2].is_ident
                    && toks[i - 3].text == "env"
                    && toks[i - 3].is_ident =>
            {
                push(
                    Rule::EnvVarOutsideConfig,
                    t,
                    "`env::var` outside the FABFLIP_THREADS budget modules; pass \
                     configuration through `FlConfig`/CLI flags so runs are pure \
                     functions of their config"
                        .to_string(),
                )
            }
            "unsafe"
                if on(Rule::UnsafeWithoutSafetyComment, i)
                    && !claim_safety_comment(&lexed.comments, &mut claimed, t.line) =>
            {
                push(
                    Rule::UnsafeWithoutSafetyComment,
                    t,
                    "`unsafe` without its own `// SAFETY:` comment in the preceding \
                     lines (each unsafe block claims exactly one); document the \
                     invariant that makes this sound"
                        .to_string(),
                )
            }
            "spawn" | "scope" | "Builder"
                if on(Rule::ThreadSpawnOutsidePar, i)
                    && i >= 3
                    && toks[i - 1].text == ":"
                    && !toks[i - 1].is_ident
                    && toks[i - 2].text == ":"
                    && !toks[i - 2].is_ident
                    && toks[i - 3].text == "thread"
                    && toks[i - 3].is_ident =>
            {
                push(
                    Rule::ThreadSpawnOutsidePar,
                    t,
                    format!(
                        "`thread::{}` outside `crates/tensor/src/par.rs`; route \
                         parallel work through the `fabflip_tensor::par` worker \
                         pool so the thread budget and §4b block determinism hold",
                        t.text
                    ),
                )
            }
            "unwrap" if on(Rule::UnwrapInLib, i) => {
                let after_dot = i >= 1 && !toks[i - 1].is_ident && toks[i - 1].text == ".";
                let called = i + 1 < toks.len() && toks[i + 1].text == "(";
                if after_dot && called {
                    push(
                        Rule::UnwrapInLib,
                        t,
                        "`.unwrap()` in library code; use `expect(\"actionable \
                         message\")` or propagate a `Result`"
                            .to_string(),
                    )
                }
            }
            "todo" | "unimplemented"
                if on(Rule::TodoUnimplemented, i)
                    && i + 1 < toks.len()
                    && toks[i + 1].text == "!" =>
            {
                push(
                    Rule::TodoUnimplemented,
                    t,
                    format!("`{}!` in non-test code; tracked by the ratchet", t.text),
                )
            }
            _ => {}
        }
    }
    findings
}

#[cfg(test)]
mod tests {
    use super::*;

    fn class(rel: &str) -> FileClass {
        let mut parts = rel.split('/');
        let top = parts.next().unwrap_or_default();
        let krate = parts.next().unwrap_or_default().to_string();
        FileClass {
            rel: rel.to_string(),
            in_crates: top == "crates",
            crate_name: krate,
            is_test_file: rel.contains("/tests/"),
            is_example: rel.contains("/examples/"),
            is_bin: rel.ends_with("src/main.rs") || rel.contains("/src/bin/"),
        }
    }

    fn run(rel: &str, src: &str) -> Vec<String> {
        check_file(&class(rel), src)
            .into_iter()
            .map(|f| f.rule.name().to_string())
            .collect()
    }

    #[test]
    fn hashmap_flagged_only_in_numeric_crates() {
        let src = "use std::collections::HashMap;";
        assert_eq!(
            run("crates/fl/src/runner.rs", src),
            ["nondeterministic-collection"]
        );
        assert!(run("crates/bench/src/lib.rs", src).is_empty());
        assert!(run("compat/serde/src/lib.rs", src).is_empty());
    }

    #[test]
    fn hashmap_in_comment_string_or_test_mod_is_clean() {
        assert!(run("crates/fl/src/a.rs", "// HashMap in prose").is_empty());
        assert!(run("crates/fl/src/a.rs", r#"let s = "HashMap";"#).is_empty());
        assert!(run(
            "crates/fl/src/a.rs",
            "#[cfg(test)]\nmod tests {\n use std::collections::HashMap;\n}"
        )
        .is_empty());
        // Non-test code after the test mod is still checked.
        assert_eq!(
            run(
                "crates/fl/src/a.rs",
                "#[cfg(test)]\nmod tests { }\nuse std::collections::HashMap;"
            ),
            ["nondeterministic-collection"]
        );
    }

    #[test]
    fn entropy_rng_flagged_everywhere_even_tests() {
        let src = "#[cfg(test)]\nmod tests { fn f() { let r = thread_rng(); } }";
        assert_eq!(run("crates/cli/src/lib.rs", src), ["entropy-rng"]);
        assert_eq!(
            run("compat/rand/src/lib.rs", "pub fn from_entropy() {}"),
            ["entropy-rng"]
        );
    }

    #[test]
    fn wallclock_scoped_to_numeric_crates() {
        let src = "let t = std::time::Instant::now();";
        assert_eq!(
            run("crates/tensor/src/matmul.rs", src),
            ["wallclock-in-kernel"]
        );
        assert!(run("crates/bench/src/lib.rs", src).is_empty());
        // Doc-comment prose like `/// Instantiates the rule.` is clean.
        assert!(run(
            "crates/aggregation/src/types.rs",
            "/// Instantiates the rule."
        )
        .is_empty());
    }

    #[test]
    fn env_var_blessed_only_in_budget_modules() {
        let src = r#"let v = std::env::var("FABFLIP_THREADS");"#;
        assert!(run("crates/tensor/src/par.rs", src).is_empty());
        assert!(run("compat/rayon/src/lib.rs", src).is_empty());
        assert_eq!(run("crates/fl/src/sim.rs", src), ["env-var-outside-config"]);
        // env::args and env::temp_dir stay legal everywhere.
        assert!(run("crates/cli/src/main.rs", "let a = std::env::args();").is_empty());
    }

    #[test]
    fn unsafe_requires_safety_comment() {
        // Snippets live at the par.rs path: raw-pointer types are legal
        // there, so only the unsafe-comment rule is under test.
        let bad = "fn f(p: *const u8) { unsafe { p.read() }; }";
        assert_eq!(
            run("crates/tensor/src/par.rs", bad),
            ["unsafe-without-safety-comment"]
        );
        let good = "// SAFETY: p is valid for reads per the caller contract.\n\
                    fn f(p: *const u8) { unsafe { p.read() }; }";
        assert!(run("crates/tensor/src/par.rs", good).is_empty());
        // Attribute + doc-comment noise between the SAFETY line and the
        // unsafe token stays within the window.
        let noisy = "// SAFETY: index < len checked above.\n\
                     #[allow(clippy::missing_docs_in_private_items)]\n\
                     #[inline(always)]\n\
                     fn g(s: &[u8]) { unsafe { s.get_unchecked(0) }; }";
        assert!(run("crates/tensor/src/par.rs", noisy).is_empty());
        // A SAFETY comment far above does not annotate.
        let far = format!(
            "// SAFETY: stale.\n{}\nfn f(p: *const u8) {{ unsafe {{ p.read() }}; }}",
            "\n".repeat(8)
        );
        assert_eq!(
            run("crates/tensor/src/par.rs", &far),
            ["unsafe-without-safety-comment"]
        );
        // Trailing same-line comment counts.
        let inline = "fn f(p: *const u8) { unsafe { p.read() }; } // SAFETY: valid ptr.";
        assert!(run("crates/tensor/src/par.rs", inline).is_empty());
        // The word SAFETY: inside a doc example string does not annotate
        // and an `unsafe` inside a string is not a finding.
        assert!(run("crates/nn/src/x.rs", r#"let s = "unsafe";"#).is_empty());
    }

    #[test]
    fn each_unsafe_claims_its_own_safety_comment() {
        // Two unsafe blocks, one comment: the second block is naked.
        let shared = "// SAFETY: covers only one block.\n\
                      fn f(s: &[u8]) { unsafe { s.get_unchecked(0) }; unsafe { s.get_unchecked(1) }; }";
        assert_eq!(
            run("crates/tensor/src/par.rs", shared),
            ["unsafe-without-safety-comment"]
        );
        // Two comments, two blocks: both annotated.
        let paired = "// SAFETY: first index in bounds.\n\
                      // SAFETY: second index in bounds.\n\
                      fn f(s: &[u8]) { unsafe { s.get_unchecked(0) }; unsafe { s.get_unchecked(1) }; }";
        assert!(run("crates/tensor/src/par.rs", paired).is_empty());
    }

    #[test]
    fn raw_pointer_types_confined_to_par() {
        let ty = "fn f(p: *const f32, q: *mut f32) {}";
        assert_eq!(
            run("crates/tensor/src/matmul.rs", ty),
            ["raw-pointer-outside-par", "raw-pointer-outside-par"]
        );
        assert!(run("crates/tensor/src/par.rs", ty).is_empty());
        // Multiplication and deref are not raw-pointer types.
        assert!(run("crates/tensor/src/matmul.rs", "let y = a * b; let z = *r;").is_empty());
        // Test files (e.g. the alloc_guard allocator) are exempt.
        assert!(run("crates/tensor/tests/alloc_guard.rs", ty).is_empty());
        assert!(run(
            "crates/nn/src/conv.rs",
            "#[cfg(test)]\nmod tests { fn t(p: *const u8) {} }"
        )
        .is_empty());
    }

    #[test]
    fn thread_spawn_flagged_outside_par() {
        let spawn = "std::thread::spawn(|| {});";
        assert_eq!(
            run("crates/fl/src/runner.rs", spawn),
            ["thread-spawn-outside-par"]
        );
        // The worker pool itself and the compat shims are exempt.
        assert!(run("crates/tensor/src/par.rs", spawn).is_empty());
        assert!(run("compat/rayon/src/lib.rs", spawn).is_empty());
        // `thread::scope` and `thread::Builder` count too.
        assert_eq!(
            run(
                "crates/nn/src/x.rs",
                "thread::scope(|s| { s.spawn(|| {}); });"
            ),
            ["thread-spawn-outside-par"]
        );
        assert_eq!(
            run("crates/fl/src/x.rs", "thread::Builder::new();"),
            ["thread-spawn-outside-par"]
        );
        // Test code is NOT exempt: scoped threads in tests still race the
        // pool's parked workers.
        assert_eq!(
            run(
                "crates/nn/src/x.rs",
                "#[cfg(test)]\nmod tests { fn t() { std::thread::spawn(|| {}); } }"
            ),
            ["thread-spawn-outside-par"]
        );
        // A method call `cmd.spawn()` (e.g. std::process::Command) and the
        // bare words in prose are clean.
        assert!(run("crates/fl/src/x.rs", "cmd.spawn();").is_empty());
        assert!(run("crates/fl/src/x.rs", "// thread::spawn in prose").is_empty());
    }

    #[test]
    fn unwrap_counted_in_lib_only() {
        let src = "fn f() { x.unwrap(); }";
        assert_eq!(run("crates/nn/src/gradcheck.rs", src), ["unwrap-in-lib"]);
        assert!(run("crates/nn/src/main.rs", src).is_empty());
        assert!(run("crates/bench/src/bin/perf.rs", src).is_empty());
        assert!(run("crates/fl/examples/probe.rs", src).is_empty());
        assert!(run("compat/rand/src/lib.rs", src).is_empty());
        // unwrap_or and a fn named unwrap don't count.
        assert!(run("crates/nn/src/a.rs", "x.unwrap_or(0);").is_empty());
        assert!(run("crates/nn/src/a.rs", "fn unwrap() {}").is_empty());
        // Test-module unwraps don't count.
        assert!(run(
            "crates/nn/src/a.rs",
            "#[cfg(test)]\nmod tests { fn t() { x.unwrap(); } }"
        )
        .is_empty());
    }

    #[test]
    fn todo_and_unimplemented_counted() {
        assert_eq!(
            run("crates/fl/src/a.rs", "fn f() { todo!() }"),
            ["todo-unimplemented"]
        );
        assert_eq!(
            run("crates/fl/src/a.rs", "fn f() { unimplemented!() }"),
            ["todo-unimplemented"]
        );
        // The identifier alone (e.g. a variable named todo) is clean.
        assert!(run("crates/fl/src/a.rs", "let todo = 3;").is_empty());
    }

    #[test]
    fn cfg_all_test_gates_are_recognized() {
        let src = "#[cfg(all(test, feature = \"slow\"))]\nmod tests { fn t() { x.unwrap(); } }";
        assert!(run("crates/nn/src/a.rs", src).is_empty());
    }

    #[test]
    fn out_of_line_test_mods_are_reported() {
        let src = "#[cfg(test)]\nmod proptests;\npub fn f() {}";
        assert_eq!(test_only_mods(src), ["proptests"]);
        assert!(test_only_mods("mod proptests;").is_empty());
    }
}
