//! The fabcheck rule set: project-specific invariants that protect the
//! bitwise-determinism and panic-safety contracts (DESIGN.md § Static
//! invariants).
//!
//! Rules come in two strengths:
//!
//! * **forbidden** — any hit fails CI (`nondeterministic-collection`,
//!   `entropy-rng`, `wallclock-in-kernel`, `env-var-outside-config`,
//!   `unsafe-without-safety-comment`, `thread-spawn-outside-par`,
//!   `raw-pointer-outside-par`, `alloc-on-hot-path`, `io-on-hot-path`,
//!   `seed-stream-registry`, `unordered-float-reduction`,
//!   `unclaimed-raw-span`, `target-feature-call-unguarded`,
//!   `unsafe-claim-grammar`, `backend-parity`);
//! * **counted** — hits are tallied per `rule × file` and ratcheted
//!   against `FABCHECK_BASELINE.json`: counts may shrink, never grow
//!   (`unwrap-in-lib`, `todo-unimplemented`, `panic-on-hot-path`,
//!   `span-disjointness`).
//!
//! Matching is whole-identifier over the [`crate::lexer`] token stream, so
//! comments, strings, `Instantiates`, and `unwrap_or` never false-positive.
//! The hot-path rules are interprocedural and live in [`crate::graph`]
//! (reachability from the kernel entry set); `seed-stream-registry` is a
//! workspace-level pass ([`check_seed_streams`]) because the registry and
//! its call sites live in different files. This module hosts their
//! [`Rule`] identities plus every single-file rule.

use crate::lexer::{lex, Comment, Token};
use crate::parser::{target_feature_fns, TargetFeatureFn};
use std::collections::{BTreeMap, BTreeSet};

/// Crates whose float-accumulation order feeds the reproducibility
/// contract: map/set iteration order, entropy, and wall-clock reads leak
/// straight into results or JSON output here.
pub const NUMERIC_CRATES: &[&str] = &["tensor", "nn", "aggregation", "attacks", "data", "fl"];

/// Files allowed to read process environment variables: the two
/// `FABFLIP_THREADS` budget modules (the tensor thread budget and the
/// rayon-shim mirror of it) plus the CPU-backend dispatcher, which reads
/// `FABFLIP_BACKEND` once at startup. Everything else must take
/// configuration as arguments so a run is a pure function of its config
/// + seed.
pub const BLESSED_ENV_FILES: &[&str] = &[
    "compat/rayon/src/lib.rs",
    "crates/tensor/src/backend/mod.rs",
    "crates/tensor/src/par.rs",
];

/// The directory holding the runtime-dispatched SIMD microkernels. Raw
/// pointers are allowed here alongside the worker pool: intrinsic
/// loads/stores are inherently pointer-based, and every unsafe block in
/// these files carries its own `// SAFETY:` comment claiming the
/// lane-width/bounds invariant (DESIGN.md §4f). Intrinsics or raw
/// pointers anywhere else in product code still fail `--ci`.
pub const BLESSED_SIMD_DIR: &str = "crates/tensor/src/backend/";

/// The single file allowed to create threads: the persistent worker pool.
/// All other crate code must go through `fabflip_tensor::par` so thread
/// count, block shape, and merge order stay under the §4b determinism
/// contract (and the pool's parked workers are actually reused).
pub const BLESSED_THREAD_FILE: &str = "crates/tensor/src/par.rs";

/// The crash-tolerant serving shell (DESIGN.md §4g). Its threads
/// (acceptors, connection handlers, the round engine, chaos-proxy pumps)
/// do blocking socket I/O, never numeric work — the §4b determinism
/// contract is carried by the pure round engine they call into, not by
/// thread count or interleaving. The same blessing covers
/// `io-on-hot-path` in the cross-crate graph: I/O is this shell's whole
/// job. Thread creation and hot-path I/O stay forbidden everywhere else.
pub const BLESSED_SERVE_DIR: &str = "crates/serve/";

/// The cli's kill-and-restart acceptance test: it must run a server
/// subprocess, a chaos proxy and a client fleet concurrently, so it
/// spawns its own driver threads.
pub const BLESSED_SERVE_TEST: &str = "crates/cli/tests/serve_chaos.rs";

/// How many lines above an `unsafe` token a `// SAFETY:` comment may end
/// and still annotate it (allows attributes and a signature line between).
const SAFETY_WINDOW_LINES: u32 = 5;

/// The target features the workspace's kernels may enable. A
/// `SAFETY(feature: …)` claim naming anything else is unparseable —
/// growing this list is the deliberate act that admits a new ISA.
pub const KNOWN_TARGET_FEATURES: &[&str] = &["avx2", "fma", "avx512f"];

/// A fabcheck rule identifier.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Rule {
    /// `HashMap`/`HashSet` in a numeric crate.
    NondeterministicCollection,
    /// `thread_rng`/`from_entropy`/`OsRng`/`getrandom` anywhere.
    EntropyRng,
    /// `Instant`/`SystemTime` in a numeric crate.
    WallclockInKernel,
    /// `env::var` outside the blessed thread-budget modules.
    EnvVarOutsideConfig,
    /// `unsafe` without a `// SAFETY:` comment just above (or beside) it.
    UnsafeWithoutSafetyComment,
    /// `thread::spawn`/`thread::scope`/`thread::Builder` in `crates/`
    /// outside the worker pool (`crates/tensor/src/par.rs`).
    ThreadSpawnOutsidePar,
    /// Raw-pointer types (`*const T`/`*mut T`) in `crates/` product code
    /// outside the worker pool and the SIMD backend microkernels
    /// ([`BLESSED_SIMD_DIR`]): lifetime-erased pointers are their
    /// monopoly, everything else uses slices.
    RawPointerOutsidePar,
    /// A heap allocation reachable from the kernel entry set
    /// ([`crate::graph::HOT_ENTRIES`]). Forbidden: the steady-state
    /// per-round loop must not touch the allocator.
    AllocOnHotPath,
    /// A panic site (indexing, `assert!`, `unwrap`/`expect`, panic
    /// macros) reachable from the kernel entry set (counted — indexing
    /// is pervasive in kernels, so this ratchets shrink-only).
    PanicOnHotPath,
    /// I/O or blocking synchronization (`std::{fs,net,io}` paths,
    /// `println!`/`eprintln!`, `Mutex`/`Condvar` acquisition) reachable
    /// from the kernel entry set, outside the worker pool. Forbidden:
    /// the deterministic core stays pure so a wire shell can wrap it.
    IoOnHotPath,
    /// A `sub_seed(seed, STREAM, …)` call whose stream argument is a
    /// numeric literal or a name not declared in the `fl::faults::streams`
    /// registry — or two registry constants sharing one id. Forbidden:
    /// a stream collision silently correlates "independent" randomness.
    SeedStreamRegistry,
    /// An order-sensitive float reduction (`.sum::<f32>()`, `.fold(…)`
    /// seeded with a float literal, a `partial_cmp` sort over a derived
    /// float key without a value tie-break) in a numeric crate, outside
    /// kernels blessed with
    /// `// fabcheck::allow(unordered_float_reduction): why`.
    UnorderedFloatReduction,
    /// A `from_raw_parts_mut` span not covered by a
    /// `// fabcheck::claim(disjoint): …` annotation naming one of the
    /// call's arguments — the partition argument whose disjointness
    /// makes the aliasing sound.
    UnclaimedRawSpan,
    /// `.unwrap()` in non-test library code (counted).
    UnwrapInLib,
    /// `todo!`/`unimplemented!` in non-test code (counted).
    TodoUnimplemented,
    /// A call edge into an `#[target_feature(enable = …)]` fn from a
    /// context that does not prove the ISA available: the caller neither
    /// declares a superset of the callee's features nor is a dispatcher
    /// method in [`BLESSED_SIMD_DIR`] (whose instances are only handed
    /// out after `is_x86_feature_detected!` succeeds). Evaluated on the
    /// cross-crate call graph by [`crate::graph`].
    TargetFeatureCallUnguarded,
    /// A SAFETY comment in the blessed unsafe regions
    /// ([`BLESSED_SIMD_DIR`], [`BLESSED_THREAD_FILE`]) that is free text,
    /// does not parse under the claim grammar (`SAFETY(bound: <expr>)` /
    /// `SAFETY(feature: <isa,…>)` / `SAFETY(sync: <type>)`), or claims
    /// the wrong kind for its site (e.g. a feature claim on a block doing
    /// raw-pointer arithmetic).
    UnsafeClaimGrammar,
    /// A `fabcheck::claim(disjoint)` whose partition offset is not a
    /// recognized non-overlapping pattern (a contiguous `i * chunk`
    /// stride, optionally `.min(len)`-clamped). Counted, not forbidden:
    /// unrecognized is not proven wrong, so it ratchets as debt.
    SpanDisjointness,
    /// A `CpuBackend` trait method missing from one of the backend impls
    /// or absent from the cross-backend determinism coverage
    /// (`backend_goldens.rs` / `proptests.rs`). Evaluated workspace-wide
    /// by [`check_backend_parity`].
    BackendParity,
}

impl Rule {
    /// All rules, in reporting order.
    pub const ALL: [Rule; 19] = [
        Rule::NondeterministicCollection,
        Rule::EntropyRng,
        Rule::WallclockInKernel,
        Rule::EnvVarOutsideConfig,
        Rule::UnsafeWithoutSafetyComment,
        Rule::ThreadSpawnOutsidePar,
        Rule::RawPointerOutsidePar,
        Rule::AllocOnHotPath,
        Rule::PanicOnHotPath,
        Rule::IoOnHotPath,
        Rule::SeedStreamRegistry,
        Rule::UnorderedFloatReduction,
        Rule::UnclaimedRawSpan,
        Rule::UnwrapInLib,
        Rule::TodoUnimplemented,
        Rule::TargetFeatureCallUnguarded,
        Rule::UnsafeClaimGrammar,
        Rule::SpanDisjointness,
        Rule::BackendParity,
    ];

    /// The kebab-case rule id used in diagnostics, JSON, and the baseline.
    pub fn name(self) -> &'static str {
        match self {
            Rule::NondeterministicCollection => "nondeterministic-collection",
            Rule::EntropyRng => "entropy-rng",
            Rule::WallclockInKernel => "wallclock-in-kernel",
            Rule::EnvVarOutsideConfig => "env-var-outside-config",
            Rule::UnsafeWithoutSafetyComment => "unsafe-without-safety-comment",
            Rule::ThreadSpawnOutsidePar => "thread-spawn-outside-par",
            Rule::RawPointerOutsidePar => "raw-pointer-outside-par",
            Rule::AllocOnHotPath => "alloc-on-hot-path",
            Rule::PanicOnHotPath => "panic-on-hot-path",
            Rule::IoOnHotPath => "io-on-hot-path",
            Rule::SeedStreamRegistry => "seed-stream-registry",
            Rule::UnorderedFloatReduction => "unordered-float-reduction",
            Rule::UnclaimedRawSpan => "unclaimed-raw-span",
            Rule::UnwrapInLib => "unwrap-in-lib",
            Rule::TodoUnimplemented => "todo-unimplemented",
            Rule::TargetFeatureCallUnguarded => "target-feature-call-unguarded",
            Rule::UnsafeClaimGrammar => "unsafe-claim-grammar",
            Rule::SpanDisjointness => "span-disjointness",
            Rule::BackendParity => "backend-parity",
        }
    }

    /// Forbidden rules fail CI on any hit; counted rules only ratchet.
    pub fn is_forbidden(self) -> bool {
        !matches!(
            self,
            Rule::UnwrapInLib
                | Rule::TodoUnimplemented
                | Rule::PanicOnHotPath
                | Rule::SpanDisjointness
        )
    }
}

/// One rule hit at a source position.
#[derive(Debug, Clone)]
pub struct Finding {
    /// Which rule fired.
    pub rule: Rule,
    /// Root-relative path with `/` separators.
    pub file: String,
    /// 1-based line.
    pub line: u32,
    /// 1-based column.
    pub col: u32,
    /// Human-readable explanation with the remedy.
    pub message: String,
}

/// Where a file sits in the workspace — decides which rules apply.
#[derive(Debug, Clone)]
pub struct FileClass {
    /// Root-relative path with `/` separators (diagnostic + baseline key).
    pub rel: String,
    /// `true` under `crates/`, `false` under `compat/`.
    pub in_crates: bool,
    /// The crate directory name (`tensor`, `fl`, …).
    pub crate_name: String,
    /// Under `tests/` or `benches/`, or a `#[cfg(test)] mod x;` target
    /// file: all-test code, skipped by non-test-scoped rules.
    pub is_test_file: bool,
    /// Under `examples/`.
    pub is_example: bool,
    /// `src/main.rs` or under `src/bin/`: binary entry points may panic
    /// freely, so counted panic-debt rules skip them.
    pub is_bin: bool,
}

impl FileClass {
    fn is_numeric(&self) -> bool {
        self.in_crates && NUMERIC_CRATES.contains(&self.crate_name.as_str())
    }
}

/// Whether a rule looks at this file, and at which part of it.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Scope {
    /// Rule does not apply to this file.
    Off,
    /// Rule applies outside `#[cfg(test)]` item spans.
    NonTest,
    /// Rule applies to every token, tests included.
    All,
}

fn scope(rule: Rule, class: &FileClass) -> Scope {
    match rule {
        // Determinism of the numeric pipeline: product code only — tests
        // may legitimately use a HashMap to assert order-independence.
        Rule::NondeterministicCollection | Rule::WallclockInKernel => {
            if class.is_numeric() && !class.is_test_file {
                Scope::NonTest
            } else {
                Scope::Off
            }
        }
        // Entropy anywhere (tests included) breaks fixed-seed replay.
        Rule::EntropyRng => Scope::All,
        Rule::EnvVarOutsideConfig => {
            if BLESSED_ENV_FILES.contains(&class.rel.as_str()) {
                Scope::Off
            } else {
                Scope::All
            }
        }
        // Unsafe needs its invariant written down wherever it appears.
        Rule::UnsafeWithoutSafetyComment => Scope::All,
        // Thread creation is the pool's monopoly: ad-hoc spawns bypass the
        // budget cap and the fixed-block determinism argument. Tests too —
        // a scoped spawn in a test still races the pool's parked workers.
        // The compat shims are exempt (the rayon shim delegates to `par`),
        // as are the serving shell and its kill/restart harness, whose
        // threads block on sockets rather than compute.
        Rule::ThreadSpawnOutsidePar => {
            if class.in_crates
                && class.rel != BLESSED_THREAD_FILE
                && !class.rel.starts_with(BLESSED_SERVE_DIR)
                && class.rel != BLESSED_SERVE_TEST
            {
                Scope::All
            } else {
                Scope::Off
            }
        }
        // Raw-pointer types are the pool's monopoly in product code,
        // shared only with the SIMD backend microkernels (whose unsafe
        // blocks are audited per-site by `unsafe-without-safety-comment`).
        // Test code (incl. the alloc_guard allocator harness) may use
        // them — tests never ship in the hot path.
        Rule::RawPointerOutsidePar => {
            if class.in_crates
                && class.rel != BLESSED_THREAD_FILE
                && !class.rel.starts_with(BLESSED_SIMD_DIR)
                && !class.is_test_file
            {
                Scope::NonTest
            } else {
                Scope::Off
            }
        }
        // Interprocedural rules: evaluated by `crate::graph`, never by
        // the single-file scan. `seed-stream-registry` is likewise
        // cross-file, evaluated by [`check_seed_streams`].
        Rule::AllocOnHotPath | Rule::PanicOnHotPath | Rule::IoOnHotPath => Scope::Off,
        Rule::SeedStreamRegistry => Scope::Off,
        // Float-reduction order feeds the §4b bitwise contract exactly
        // where HashMap order does: the numeric crates' product code.
        Rule::UnorderedFloatReduction => {
            if class.is_numeric() && !class.is_test_file {
                Scope::NonTest
            } else {
                Scope::Off
            }
        }
        // Every raw span in product code must claim its disjointness
        // argument; raw-pointer confinement already limits this to the
        // worker pool, so in practice the rule audits `par.rs`.
        Rule::UnclaimedRawSpan => {
            if class.in_crates && !class.is_test_file {
                Scope::NonTest
            } else {
                Scope::Off
            }
        }
        Rule::UnwrapInLib => {
            if class.in_crates && !class.is_test_file && !class.is_bin && !class.is_example {
                Scope::NonTest
            } else {
                Scope::Off
            }
        }
        Rule::TodoUnimplemented => {
            if class.in_crates && !class.is_test_file {
                Scope::NonTest
            } else {
                Scope::Off
            }
        }
        // Evaluated by `crate::graph` over the whole cross-crate call
        // graph (a guard and its guarded call live in different files).
        Rule::TargetFeatureCallUnguarded => Scope::Off,
        // Machine-parsed SAFETY claims: only the blessed unsafe homes —
        // everywhere else `unsafe` is forbidden outright, so there is
        // nothing to grammar-check.
        Rule::UnsafeClaimGrammar => {
            if (class.rel.starts_with(BLESSED_SIMD_DIR) || class.rel == BLESSED_THREAD_FILE)
                && !class.is_test_file
            {
                Scope::NonTest
            } else {
                Scope::Off
            }
        }
        // Verifies existing `claim(disjoint)` annotations wherever the
        // unclaimed-raw-span rule demands them.
        Rule::SpanDisjointness => {
            if class.in_crates && !class.is_test_file {
                Scope::NonTest
            } else {
                Scope::Off
            }
        }
        // Workspace-level pass: [`check_backend_parity`] (the trait, the
        // impls, and the coverage files are different files).
        Rule::BackendParity => Scope::Off,
    }
}

/// Returns the names of modules declared `#[cfg(test)] mod name;`
/// (out-of-line test modules): the walker marks `name.rs` / `name/mod.rs`
/// next to the declaring file as all-test files.
pub fn test_only_mods(src: &str) -> Vec<String> {
    let lexed = lex(src);
    let mut out = Vec::new();
    for (_, end) in cfg_test_attr_ranges(&lexed.tokens) {
        if let Some(ItemShape::OutOfLineMod(name)) = item_after_attrs(&lexed.tokens, end) {
            out.push(name);
        }
    }
    out
}

/// Half-open token-index ranges covered by `#[cfg(test)]`-gated items
/// (inline `mod tests { … }` blocks, gated fns, …). Shared with the
/// call-graph builder so test fns stay out of the hot graph.
pub(crate) fn test_spans(tokens: &[Token]) -> Vec<(usize, usize)> {
    let mut spans = Vec::new();
    for (_, attr_end) in cfg_test_attr_ranges(tokens) {
        if let Some(ItemShape::Braced(open, close)) = item_after_attrs(tokens, attr_end) {
            spans.push((open, close + 1));
        }
    }
    spans
}

/// Finds every `#[cfg(test)]`-style attribute (any `cfg(...)` whose
/// argument list mentions the `test` identifier, so `cfg(all(test, …))`
/// also counts). Returns (start index of `#`, index one past `]`).
fn cfg_test_attr_ranges(tokens: &[Token]) -> Vec<(usize, usize)> {
    let mut out = Vec::new();
    let mut i = 0;
    while i + 3 < tokens.len() {
        if tokens[i].text == "#"
            && !tokens[i].is_ident
            && tokens[i + 1].text == "["
            && tokens[i + 2].is_ident
            && tokens[i + 2].text == "cfg"
            && tokens[i + 3].text == "("
        {
            // Balanced parens from i+3; look for the ident `test` inside.
            let mut depth = 0usize;
            let mut j = i + 3;
            let mut saw_test = false;
            while j < tokens.len() {
                match tokens[j].text.as_str() {
                    "(" if !tokens[j].is_ident => depth += 1,
                    ")" if !tokens[j].is_ident => {
                        depth -= 1;
                        if depth == 0 {
                            break;
                        }
                    }
                    "test" if tokens[j].is_ident && depth >= 1 => saw_test = true,
                    _ => {}
                }
                j += 1;
            }
            // Expect the closing `]` right after the paren group.
            if saw_test && j + 1 < tokens.len() && tokens[j + 1].text == "]" {
                out.push((i, j + 2));
                i = j + 2;
                continue;
            }
            i = j.max(i + 1);
            continue;
        }
        i += 1;
    }
    out
}

/// The shape of the item following an attribute: either a braced item
/// (span of `{`..`}` token indices) or an out-of-line `mod name;`.
enum ItemShape {
    Braced(usize, usize),
    OutOfLineMod(String),
}

/// Starting at `from` (just past an attribute's `]`), skips any further
/// attributes, then finds the first top-level `;` or `{` and classifies
/// the item.
fn item_after_attrs(tokens: &[Token], mut from: usize) -> Option<ItemShape> {
    // Skip subsequent attributes: `#[ … ]`.
    while from + 1 < tokens.len() && tokens[from].text == "#" && tokens[from + 1].text == "[" {
        let mut depth = 0usize;
        let mut j = from + 1;
        while j < tokens.len() {
            match tokens[j].text.as_str() {
                "[" if !tokens[j].is_ident => depth += 1,
                "]" if !tokens[j].is_ident => {
                    depth -= 1;
                    if depth == 0 {
                        break;
                    }
                }
                _ => {}
            }
            j += 1;
        }
        from = j + 1;
    }
    let header_start = from;
    let mut paren = 0i64;
    let mut bracket = 0i64;
    let mut j = from;
    while j < tokens.len() {
        let t = &tokens[j];
        if !t.is_ident {
            match t.text.as_str() {
                "(" => paren += 1,
                ")" => paren -= 1,
                "[" => bracket += 1,
                "]" => bracket -= 1,
                ";" if paren == 0 && bracket == 0 => {
                    // `mod name;` → out-of-line module.
                    let names: Vec<&Token> = tokens[header_start..j]
                        .iter()
                        .filter(|t| t.is_ident)
                        .collect();
                    if names.len() >= 2 && names[names.len() - 2].text == "mod" {
                        return Some(ItemShape::OutOfLineMod(names[names.len() - 1].text.clone()));
                    }
                    return None;
                }
                "{" if paren == 0 && bracket == 0 => {
                    let mut depth = 0usize;
                    let mut k = j;
                    while k < tokens.len() {
                        match tokens[k].text.as_str() {
                            "{" if !tokens[k].is_ident => depth += 1,
                            "}" if !tokens[k].is_ident => {
                                depth -= 1;
                                if depth == 0 {
                                    return Some(ItemShape::Braced(j, k));
                                }
                            }
                            _ => {}
                        }
                        k += 1;
                    }
                    return Some(ItemShape::Braced(j, tokens.len().saturating_sub(1)));
                }
                _ => {}
            }
        }
        j += 1;
    }
    None
}

/// Lines covered by `// fabcheck::allow(<marker>): why` comments: a
/// marker comment covers its own last line and the line below it, so
/// both a comment-above and a trailing same-line marker work. A
/// **full-line** comment starting on an already-covered line continues
/// the coverage (so a multi-line `//` allow block reaches the first code
/// line after it) — but a *trailing* comment on a covered code line does
/// not re-extend coverage downward, and a blank line always ends the
/// chain. Coverage never tunnels past code or blank lines to a later
/// statement.
pub(crate) fn allow_lines(comments: &[Comment], tokens: &[Token], marker: &str) -> BTreeSet<u32> {
    let needle = format!("fabcheck::allow({marker})");
    let code_lines: BTreeSet<u32> = tokens.iter().map(|t| t.line).collect();
    let mut out = BTreeSet::new();
    for c in comments {
        let continues = out.contains(&c.line_start) && !code_lines.contains(&c.line_start);
        if c.text.contains(&needle) || continues {
            out.insert(c.line_end);
            out.insert(c.line_end + 1);
        }
    }
    out
}

/// Whether `text` mentions `ident` as a whole word (identifier-boundary
/// match, so a claim naming `lo` does not satisfy an argument `slot`).
fn mentions_ident(text: &str, ident: &str) -> bool {
    let is_word = |c: char| c == '_' || c.is_alphanumeric();
    let mut from = 0;
    while let Some(pos) = text[from..].find(ident) {
        let start = from + pos;
        let end = start + ident.len();
        let before_ok = text[..start]
            .chars()
            .next_back()
            .is_none_or(|c| !is_word(c));
        let after_ok = text[end..].chars().next().is_none_or(|c| !is_word(c));
        if before_ok && after_ok {
            return true;
        }
        from = end;
    }
    false
}

/// A `// SAFETY:` / `// SAFETY(kind: …)` comment annotates an `unsafe`
/// token when it ends on the same line or at most [`SAFETY_WINDOW_LINES`]
/// lines above it — and each comment annotates exactly **one** `unsafe`.
/// Claims the nearest eligible unclaimed comment; `claimed` is indexed
/// parallel to `comments`. Two unsafe blocks can no longer share a
/// single SAFETY comment: every block documents its own invariant.
/// Returns the claimed comment's index so the grammar rule can inspect
/// its content.
fn claim_safety_comment(
    comments: &[Comment],
    claimed: &mut [bool],
    unsafe_line: u32,
) -> Option<usize> {
    let best = comments
        .iter()
        .enumerate()
        .filter(|(i, c)| {
            !claimed[*i]
                && (c.text.contains("SAFETY:") || c.text.contains("SAFETY("))
                && c.line_end <= unsafe_line
                && c.line_end + SAFETY_WINDOW_LINES >= unsafe_line
        })
        .max_by_key(|(_, c)| c.line_end)
        .map(|(i, _)| i);
    if let Some(i) = best {
        claimed[i] = true;
    }
    best
}

/// A machine-parsed SAFETY claim: what kind of invariant the comment
/// asserts for its `unsafe` region.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SafetyClaim {
    /// `SAFETY(bound: <len-expr>)` — memory validity / in-bounds.
    Bound(String),
    /// `SAFETY(feature: avx2,fma)` — ISA availability was detected
    /// before this code can execute.
    Feature(Vec<String>),
    /// `SAFETY(sync: <type>)` — a Send/Sync soundness argument for an
    /// `unsafe impl`.
    Sync(String),
}

/// Parses the first grammar claim in a comment. `None` means the comment
/// contains no `SAFETY(` opener at all (legacy free text); `Some(Err)`
/// means an opener is present but malformed — the error string names
/// what is wrong.
pub fn parse_safety_claim(text: &str) -> Option<Result<SafetyClaim, String>> {
    let start = text.find("SAFETY(")?;
    let inner_from = start + "SAFETY(".len();
    // The argument may itself contain balanced parens (`a.len()`).
    let mut depth = 1i64;
    let mut end = None;
    for (off, c) in text[inner_from..].char_indices() {
        match c {
            '(' => depth += 1,
            ')' => {
                depth -= 1;
                if depth == 0 {
                    end = Some(inner_from + off);
                    break;
                }
            }
            _ => {}
        }
    }
    let Some(end) = end else {
        return Some(Err("unclosed `SAFETY(` claim".to_string()));
    };
    let inner = &text[inner_from..end];
    let Some((kind, arg)) = inner.split_once(':') else {
        return Some(Err(format!(
            "`SAFETY({inner})` is missing its `kind: argument` separator"
        )));
    };
    let arg = arg.trim();
    if arg.is_empty() {
        return Some(Err(format!(
            "`SAFETY({}: )` has an empty argument",
            kind.trim()
        )));
    }
    Some(match kind.trim() {
        "bound" => Ok(SafetyClaim::Bound(arg.to_string())),
        "feature" => {
            let feats: Vec<String> = arg.split(',').map(|f| f.trim().to_string()).collect();
            match feats
                .iter()
                .find(|f| !KNOWN_TARGET_FEATURES.contains(&f.as_str()))
            {
                Some(bad) => Err(format!(
                    "unknown target feature `{bad}` (known: {})",
                    KNOWN_TARGET_FEATURES.join(", ")
                )),
                None => Ok(SafetyClaim::Feature(feats)),
            }
        }
        "sync" => Ok(SafetyClaim::Sync(arg.to_string())),
        other => Err(format!(
            "unknown claim kind `{}` (expected `bound`, `feature`, or `sync`)",
            other.trim()
        )),
    })
}

/// The claim kind a given `unsafe` site must carry, derived from its
/// syntactic context.
#[derive(Debug, Clone, PartialEq, Eq)]
enum ExpectedClaim {
    /// Inside a `#[target_feature]` kernel body, or the block performs
    /// raw-pointer arithmetic — must claim `bound`.
    Bound,
    /// `unsafe impl Send/Sync` — must claim `sync`.
    Sync,
    /// The block calls same-file `#[target_feature]` fns — must claim
    /// `feature` with at least these features.
    Feature(Vec<String>),
    /// No structural signal: any well-formed claim kind is accepted.
    Any,
}

/// Token index of the `}` matching the `{` at `open` (mirror of
/// [`matching_paren`]).
fn matching_brace(toks: &[Token], open: usize) -> usize {
    let mut depth = 0i64;
    let mut j = open;
    while j < toks.len() {
        if !toks[j].is_ident {
            match toks[j].text.as_str() {
                "{" => depth += 1,
                "}" => {
                    depth -= 1;
                    if depth == 0 {
                        return j;
                    }
                }
                _ => {}
            }
        }
        j += 1;
    }
    toks.len().saturating_sub(1)
}

/// Classifies the `unsafe` token at `i`: which claim kind its site
/// structurally requires. Precedence: target-feature kernel interior,
/// `unsafe impl`, pointer arithmetic in the block, same-file
/// target-feature callees, anything else.
fn expected_claim(toks: &[Token], i: usize, tfs: &[TargetFeatureFn]) -> ExpectedClaim {
    if tfs.iter().any(|f| f.body.0 < i && i < f.body.1) {
        return ExpectedClaim::Bound;
    }
    if toks
        .get(i + 1)
        .is_some_and(|n| n.is_ident && n.text == "impl")
    {
        return ExpectedClaim::Sync;
    }
    // The region: the `{` right after `unsafe` (an unsafe block), or the
    // body brace of an `unsafe fn` header.
    let mut open = i + 1;
    while open < toks.len() && (toks[open].is_ident || toks[open].text != "{") {
        open += 1;
    }
    if open >= toks.len() || open > i + 24 {
        return ExpectedClaim::Any;
    }
    let close = matching_brace(toks, open);
    let mut features: BTreeSet<String> = BTreeSet::new();
    for j in open + 1..close {
        if !toks[j].is_ident {
            continue;
        }
        let after_dot = j >= 1 && !toks[j - 1].is_ident && toks[j - 1].text == ".";
        if toks[j].text == "from_raw_parts_mut"
            || (after_dot && matches!(toks[j].text.as_str(), "add" | "wrapping_add" | "offset"))
        {
            return ExpectedClaim::Bound;
        }
        if !after_dot
            && toks
                .get(j + 1)
                .is_some_and(|n| !n.is_ident && (n.text == "(" || n.text == ":"))
        {
            if let Some(tf) = tfs.iter().find(|f| f.name == toks[j].text) {
                features.extend(tf.features.iter().cloned());
            }
        }
    }
    if features.is_empty() {
        ExpectedClaim::Any
    } else {
        ExpectedClaim::Feature(features.into_iter().collect())
    }
}

/// Whether a token can be an operand of a recognized partition product:
/// an identifier or a numeric literal.
fn is_operand(t: &Token) -> bool {
    t.is_ident || t.text.starts_with(|c: char| c.is_ascii_digit())
}

/// Whether a token slice is a recognized disjoint-partition expression:
/// `a * b`, or the clamped form `(a * b).min(c)`. Contiguous
/// `index * chunk` strides are the one partition shape whose spans are
/// provably non-overlapping for distinct indices.
fn product_expr(toks: &[Token]) -> bool {
    let is_p = |k: usize, s: &str| {
        toks.get(k)
            .is_some_and(|t: &Token| !t.is_ident && t.text == s)
    };
    if toks.len() == 3 {
        return is_operand(&toks[0]) && is_p(1, "*") && is_operand(&toks[2]);
    }
    // `( a * b ) . min ( c )` — 10 tokens exactly.
    toks.len() == 10
        && is_p(0, "(")
        && is_operand(&toks[1])
        && is_p(2, "*")
        && is_operand(&toks[3])
        && is_p(4, ")")
        && is_p(5, ".")
        && toks[6].is_ident
        && toks[6].text == "min"
        && is_p(7, "(")
        && is_operand(&toks[8])
        && is_p(9, ")")
}

/// Token index of the statement-ending `;` at delimiter depth 0,
/// starting from `from` (or the stream end when none).
fn stmt_end(toks: &[Token], from: usize) -> usize {
    let mut depth = 0i64;
    let mut j = from;
    while j < toks.len() {
        if !toks[j].is_ident {
            match toks[j].text.as_str() {
                "(" | "[" | "{" => depth += 1,
                ")" | "]" | "}" => depth -= 1,
                ";" if depth == 0 => return j,
                _ => {}
            }
        }
        j += 1;
    }
    j
}

/// Whether `off` is bound in this file by a `let` whose right-hand side
/// is a recognized partition product — either a plain
/// `let off = a * b;` (optionally `.min(…)`-clamped) or a tuple
/// `let (x, y) = (e1, e2);` with position-matched elements.
fn binding_is_block_product(toks: &[Token], off: &str) -> bool {
    let is_p = |k: usize, s: &str| {
        toks.get(k)
            .is_some_and(|t: &Token| !t.is_ident && t.text == s)
    };
    for (j, t) in toks.iter().enumerate() {
        if !(t.is_ident && t.text == "let") {
            continue;
        }
        // Optional `mut` between `let` and the pattern.
        let p = if toks
            .get(j + 1)
            .is_some_and(|n| n.is_ident && n.text == "mut")
        {
            j + 2
        } else {
            j + 1
        };
        if toks.get(p).is_some_and(|n| n.is_ident && n.text == off) && is_p(p + 1, "=") {
            return product_expr(&toks[p + 2..stmt_end(toks, p + 2)]);
        }
        if is_p(p, "(") {
            let close = matching_paren(toks, p);
            let elems = arg_ranges(toks, p);
            let Some(pos) = elems
                .iter()
                .position(|&(a, b)| b - a == 1 && toks[a].is_ident && toks[a].text == off)
            else {
                continue;
            };
            if is_p(close + 1, "=") && is_p(close + 2, "(") {
                if let Some(&(ra, rb)) = arg_ranges(toks, close + 2).get(pos) {
                    return product_expr(&toks[ra..rb]);
                }
            }
            return false;
        }
    }
    false
}

/// Whether the `from_raw_parts_mut` call at token index `i` carves its
/// span with recognized disjoint-partition arithmetic: the pointer
/// argument is either a bare base (zero offset) or
/// `base…​.add/wrapping_add(off)` where `off` is bound to a block
/// product ([`binding_is_block_product`]).
fn span_partition_recognized(toks: &[Token], i: usize) -> bool {
    let Some(&(a, b)) = arg_ranges(toks, i + 1).first() else {
        return false;
    };
    if b - a == 1 && toks[a].is_ident {
        return true;
    }
    for j in a..b {
        if !(toks[j].is_ident
            && matches!(toks[j].text.as_str(), "add" | "wrapping_add" | "offset")
            && j >= 1
            && !toks[j - 1].is_ident
            && toks[j - 1].text == "."
            && toks
                .get(j + 1)
                .is_some_and(|n| !n.is_ident && n.text == "("))
        {
            continue;
        }
        let close = matching_paren(toks, j + 1);
        return close == j + 3
            && toks[j + 2].is_ident
            && binding_is_block_product(toks, &toks[j + 2].text);
    }
    false
}

/// Token index of the `)` matching the `(` at `open` (or the last token
/// when unbalanced — robustness over validation, as everywhere here).
fn matching_paren(toks: &[Token], open: usize) -> usize {
    let mut depth = 0i64;
    let mut j = open;
    while j < toks.len() {
        if !toks[j].is_ident {
            match toks[j].text.as_str() {
                "(" => depth += 1,
                ")" => {
                    depth -= 1;
                    if depth == 0 {
                        return j;
                    }
                }
                _ => {}
            }
        }
        j += 1;
    }
    toks.len().saturating_sub(1)
}

/// Splits the arguments of a call whose `(` sits at `open` into
/// half-open token-index ranges, one per top-level comma-separated
/// argument.
fn arg_ranges(toks: &[Token], open: usize) -> Vec<(usize, usize)> {
    let close = matching_paren(toks, open);
    let mut out = Vec::new();
    let mut depth = 0i64;
    let mut start = open + 1;
    for (j, tok) in toks.iter().enumerate().take(close).skip(open + 1) {
        if tok.is_ident {
            continue;
        }
        match tok.text.as_str() {
            "(" | "[" | "{" => depth += 1,
            ")" | "]" | "}" => depth -= 1,
            "," if depth == 0 => {
                out.push((start, j));
                start = j + 1;
            }
            _ => {}
        }
    }
    if start < close {
        out.push((start, close));
    }
    out
}

/// A numeric-literal token that is a float: has a decimal point or an
/// `f32`/`f64` suffix (hex literals can end in `f32` by coincidence of
/// digits, so those are excluded).
fn is_float_literal(text: &str) -> bool {
    !text.starts_with("0x")
        && (text.contains('.') || text.ends_with("f32") || text.ends_with("f64"))
}

/// Runs every applicable rule over one file. `class.is_test_file` must
/// already account for out-of-line `#[cfg(test)] mod x;` targets (see
/// [`test_only_mods`]).
pub fn check_file(class: &FileClass, src: &str) -> Vec<Finding> {
    let enabled: Vec<(Rule, Scope)> = Rule::ALL
        .iter()
        .map(|&r| (r, scope(r, class)))
        .filter(|(_, s)| *s != Scope::Off)
        .collect();
    if enabled.is_empty() {
        return Vec::new();
    }
    let lexed = lex(src);
    let spans = test_spans(&lexed.tokens);
    let in_test = |idx: usize| spans.iter().any(|&(a, b)| idx >= a && idx < b);
    let on = |rule: Rule, idx: usize| {
        enabled
            .iter()
            .any(|&(r, s)| r == rule && (s == Scope::All || !in_test(idx)))
    };

    let mut findings = Vec::new();
    let mut push = |rule: Rule, t: &Token, message: String| {
        findings.push(Finding {
            rule,
            file: class.rel.clone(),
            line: t.line,
            col: t.col,
            message,
        });
    };
    let toks = &lexed.tokens;
    let mut claimed = vec![false; lexed.comments.len()];
    let mut claim_claimed = vec![false; lexed.comments.len()];
    let float_allow = allow_lines(&lexed.comments, toks, "unordered_float_reduction");
    let grammar_on = enabled.iter().any(|&(r, _)| r == Rule::UnsafeClaimGrammar);
    let tfs = if grammar_on {
        target_feature_fns(toks, src)
    } else {
        Vec::new()
    };
    for (i, t) in toks.iter().enumerate() {
        if !t.is_ident {
            // `*` immediately before `const`/`mut` is a raw-pointer type
            // (`*const T` / `*mut T`); a deref or multiplication is
            // always followed by a non-keyword operand.
            if t.text == "*"
                && on(Rule::RawPointerOutsidePar, i)
                && toks
                    .get(i + 1)
                    .is_some_and(|n| n.is_ident && matches!(n.text.as_str(), "const" | "mut"))
            {
                push(
                    Rule::RawPointerOutsidePar,
                    t,
                    format!(
                        "raw-pointer type `*{}` outside `crates/tensor/src/par.rs` \
                         and `crates/tensor/src/backend/`; product code passes \
                         slices — lifetime-erased pointers are the worker pool's \
                         and the SIMD microkernels' monopoly",
                        toks[i + 1].text
                    ),
                );
            }
            continue;
        }
        match t.text.as_str() {
            "HashMap" | "HashSet" if on(Rule::NondeterministicCollection, i) => push(
                Rule::NondeterministicCollection,
                t,
                format!(
                    "`{}` iteration order is nondeterministic; float accumulation and \
                     JSON emission in numeric crates must use `BTreeMap`/`BTreeSet` \
                     or sorted-key iteration",
                    t.text
                ),
            ),
            "thread_rng" | "from_entropy" | "OsRng" | "ThreadRng" | "getrandom"
                if on(Rule::EntropyRng, i) =>
            {
                push(
                    Rule::EntropyRng,
                    t,
                    format!(
                        "`{}` draws OS entropy, breaking fixed-seed replay; derive a \
                         `StdRng` from the run seed via a SplitMix sub-stream instead",
                        t.text
                    ),
                )
            }
            "Instant" | "SystemTime" if on(Rule::WallclockInKernel, i) => push(
                Rule::WallclockInKernel,
                t,
                format!(
                    "`{}` reads the wall clock inside a numeric crate; timing belongs \
                     in `crates/bench`, not in kernels whose output must be a pure \
                     function of inputs",
                    t.text
                ),
            ),
            "var"
                if on(Rule::EnvVarOutsideConfig, i)
                    && i >= 3
                    && toks[i - 1].text == ":"
                    && !toks[i - 1].is_ident
                    && toks[i - 2].text == ":"
                    && !toks[i - 2].is_ident
                    && toks[i - 3].text == "env"
                    && toks[i - 3].is_ident =>
            {
                push(
                    Rule::EnvVarOutsideConfig,
                    t,
                    "`env::var` outside the FABFLIP_THREADS budget modules; pass \
                     configuration through `FlConfig`/CLI flags so runs are pure \
                     functions of their config"
                        .to_string(),
                )
            }
            "unsafe" if on(Rule::UnsafeWithoutSafetyComment, i) => {
                match claim_safety_comment(&lexed.comments, &mut claimed, t.line) {
                    None => push(
                        Rule::UnsafeWithoutSafetyComment,
                        t,
                        "`unsafe` without its own `// SAFETY:` comment in the preceding \
                         lines (each unsafe block claims exactly one); document the \
                         invariant that makes this sound"
                            .to_string(),
                    ),
                    Some(k) if on(Rule::UnsafeClaimGrammar, i) => {
                        let expected = expected_claim(toks, i, &tfs);
                        match parse_safety_claim(&lexed.comments[k].text) {
                            None => push(
                                Rule::UnsafeClaimGrammar,
                                t,
                                "free-text SAFETY comment in a blessed unsafe region; \
                                 upgrade it to the machine-checked claim grammar: \
                                 `// SAFETY(bound: <len-expr>)`, \
                                 `// SAFETY(feature: <isa,…>)`, or \
                                 `// SAFETY(sync: <type>)`"
                                    .to_string(),
                            ),
                            Some(Err(why)) => push(
                                Rule::UnsafeClaimGrammar,
                                t,
                                format!("unparseable SAFETY claim: {why}"),
                            ),
                            Some(Ok(claim)) => match (&expected, &claim) {
                                (ExpectedClaim::Any, _)
                                | (ExpectedClaim::Bound, SafetyClaim::Bound(_))
                                | (ExpectedClaim::Sync, SafetyClaim::Sync(_)) => {}
                                (ExpectedClaim::Feature(req), SafetyClaim::Feature(got)) => {
                                    let missing: Vec<&String> =
                                        req.iter().filter(|f| !got.contains(f)).collect();
                                    if !missing.is_empty() {
                                        push(
                                            Rule::UnsafeClaimGrammar,
                                            t,
                                            format!(
                                                "the `SAFETY(feature: …)` claim omits \
                                                 {} required by the `#[target_feature]` \
                                                 fns this block calls; claim every \
                                                 feature the callees enable",
                                                missing
                                                    .iter()
                                                    .map(|f| format!("`{f}`"))
                                                    .collect::<Vec<_>>()
                                                    .join(", ")
                                            ),
                                        )
                                    }
                                }
                                (ExpectedClaim::Bound, _) => push(
                                    Rule::UnsafeClaimGrammar,
                                    t,
                                    "this unsafe region does raw-pointer arithmetic \
                                     (or sits inside a `#[target_feature]` kernel) — \
                                     its claim must be `SAFETY(bound: <len-expr>)` \
                                     stating the in-bounds invariant"
                                        .to_string(),
                                ),
                                (ExpectedClaim::Sync, _) => push(
                                    Rule::UnsafeClaimGrammar,
                                    t,
                                    "an `unsafe impl` must claim \
                                     `SAFETY(sync: <type>)` stating why the type is \
                                     sound to share across threads"
                                        .to_string(),
                                ),
                                (ExpectedClaim::Feature(_), _) => push(
                                    Rule::UnsafeClaimGrammar,
                                    t,
                                    "this block calls `#[target_feature]` fns — its \
                                     claim must be `SAFETY(feature: <isa,…>)` naming \
                                     the detected features"
                                        .to_string(),
                                ),
                            },
                        }
                    }
                    Some(_) => {}
                }
            }
            "spawn" | "scope" | "Builder"
                if on(Rule::ThreadSpawnOutsidePar, i)
                    && i >= 3
                    && toks[i - 1].text == ":"
                    && !toks[i - 1].is_ident
                    && toks[i - 2].text == ":"
                    && !toks[i - 2].is_ident
                    && toks[i - 3].text == "thread"
                    && toks[i - 3].is_ident =>
            {
                push(
                    Rule::ThreadSpawnOutsidePar,
                    t,
                    format!(
                        "`thread::{}` outside `crates/tensor/src/par.rs`; route \
                         parallel work through the `fabflip_tensor::par` worker \
                         pool so the thread budget and §4b block determinism hold",
                        t.text
                    ),
                )
            }
            "unwrap" if on(Rule::UnwrapInLib, i) => {
                let after_dot = i >= 1 && !toks[i - 1].is_ident && toks[i - 1].text == ".";
                let called = i + 1 < toks.len() && toks[i + 1].text == "(";
                if after_dot && called {
                    push(
                        Rule::UnwrapInLib,
                        t,
                        "`.unwrap()` in library code; use `expect(\"actionable \
                         message\")` or propagate a `Result`"
                            .to_string(),
                    )
                }
            }
            "todo" | "unimplemented"
                if on(Rule::TodoUnimplemented, i)
                    && i + 1 < toks.len()
                    && toks[i + 1].text == "!" =>
            {
                push(
                    Rule::TodoUnimplemented,
                    t,
                    format!("`{}!` in non-test code; tracked by the ratchet", t.text),
                )
            }
            // `.sum::<f32>()` / `.sum::<f64>()`: the turbofish names the
            // float type, so this is lexically certain to be a float
            // reduction whose result depends on accumulation order.
            "sum" | "product"
                if on(Rule::UnorderedFloatReduction, i)
                    && !float_allow.contains(&t.line)
                    && i >= 1
                    && !toks[i - 1].is_ident
                    && toks[i - 1].text == "."
                    && toks
                        .get(i + 1)
                        .is_some_and(|x| !x.is_ident && x.text == ":")
                    && toks
                        .get(i + 2)
                        .is_some_and(|x| !x.is_ident && x.text == ":")
                    && toks
                        .get(i + 3)
                        .is_some_and(|x| !x.is_ident && x.text == "<")
                    && toks.get(i + 4).is_some_and(|x| {
                        x.is_ident && matches!(x.text.as_str(), "f32" | "f64")
                    }) =>
            {
                push(
                    Rule::UnorderedFloatReduction,
                    t,
                    format!(
                        "`.{}::<{}>()` is an order-sensitive float reduction; route it \
                         through a fixed-order serial kernel (`tensor::vecops`), or \
                         bless this site with \
                         `// fabcheck::allow(unordered_float_reduction): why` stating \
                         the fixed-order argument",
                        t.text,
                        toks[i + 4].text
                    ),
                )
            }
            // `.fold(0.0, …)`: a float-literal accumulator seed marks a
            // float fold whose result is accumulation-order dependent.
            "fold"
                if on(Rule::UnorderedFloatReduction, i)
                    && !float_allow.contains(&t.line)
                    && i >= 1
                    && !toks[i - 1].is_ident
                    && toks[i - 1].text == "."
                    && toks
                        .get(i + 1)
                        .is_some_and(|x| !x.is_ident && x.text == "(")
                    && arg_ranges(toks, i + 1).first().is_some_and(|&(a, b)| {
                        toks[a..b].iter().any(|x| {
                            !x.is_ident
                                && x.text.starts_with(|c: char| c.is_ascii_digit())
                                && is_float_literal(&x.text)
                        })
                    }) =>
            {
                push(
                    Rule::UnorderedFloatReduction,
                    t,
                    "float-seeded `.fold(…)` is an order-sensitive reduction; use a \
                     fixed-order serial kernel, or bless this site with \
                     `// fabcheck::allow(unordered_float_reduction): why` stating the \
                     fixed-order argument"
                        .to_string(),
                )
            }
            // `sort_by`/`sort_unstable_by` comparing through `partial_cmp`
            // on a *derived* key (indexing/expression, not a bare closure
            // parameter) with no tuple tie-break: equal keys order by the
            // input permutation, which thread count can change.
            "sort_by" | "sort_unstable_by"
                if on(Rule::UnorderedFloatReduction, i)
                    && !float_allow.contains(&t.line)
                    && i >= 1
                    && !toks[i - 1].is_ident
                    && toks[i - 1].text == "."
                    && toks
                        .get(i + 1)
                        .is_some_and(|x| !x.is_ident && x.text == "(") =>
            {
                let close = matching_paren(toks, i + 1);
                let mut bars = (i + 2..close).filter(|&j| !toks[j].is_ident && toks[j].text == "|");
                let params: Vec<&str> = match (bars.next(), bars.next()) {
                    (Some(a), Some(b)) => toks[a + 1..b]
                        .iter()
                        .filter(|x| x.is_ident && x.text != "mut")
                        .map(|x| x.text.as_str())
                        .collect(),
                    _ => Vec::new(),
                };
                for j in i + 2..close {
                    if !(toks[j].is_ident
                        && toks[j].text == "partial_cmp"
                        && j >= 2
                        && !toks[j - 1].is_ident
                        && toks[j - 1].text == ".")
                    {
                        continue;
                    }
                    let recv = &toks[j - 2];
                    if recv.is_ident && params.contains(&recv.text.as_str()) {
                        // `|a, b| a.partial_cmp(b)`: a direct value sort —
                        // equal floats are interchangeable.
                        continue;
                    }
                    let tie_broken = toks
                        .get(j + 1)
                        .is_some_and(|x| !x.is_ident && x.text == "(")
                        && (j + 2..matching_paren(toks, j + 1))
                            .any(|k| !toks[k].is_ident && toks[k].text == ",");
                    if !tie_broken {
                        push(
                            Rule::UnorderedFloatReduction,
                            t,
                            "`partial_cmp` sort over a derived float key without a \
                             value tie-break; sort `(key, index)` tuples so equal keys \
                             order deterministically, or bless with \
                             `// fabcheck::allow(unordered_float_reduction): why`"
                                .to_string(),
                        );
                        break;
                    }
                }
            }
            // Every raw mutable span must claim the partition argument
            // that makes its aliasing sound.
            "from_raw_parts_mut"
                if (on(Rule::UnclaimedRawSpan, i) || on(Rule::SpanDisjointness, i))
                    && toks
                        .get(i + 1)
                        .is_some_and(|x| !x.is_ident && x.text == "(") =>
            {
                let close = matching_paren(toks, i + 1);
                let args: Vec<&str> = toks[i + 2..close]
                    .iter()
                    .filter(|x| x.is_ident)
                    .map(|x| x.text.as_str())
                    .collect();
                let best = lexed
                    .comments
                    .iter()
                    .enumerate()
                    .filter(|(k, c)| {
                        !claim_claimed[*k]
                            && c.text.contains("fabcheck::claim(disjoint)")
                            && c.line_end <= t.line
                            && c.line_end + SAFETY_WINDOW_LINES >= t.line
                    })
                    .max_by_key(|(_, c)| c.line_end)
                    .map(|(k, _)| k);
                match best {
                    None => {
                        if on(Rule::UnclaimedRawSpan, i) {
                            push(
                                Rule::UnclaimedRawSpan,
                                t,
                                "`from_raw_parts_mut` without its own \
                                 `// fabcheck::claim(disjoint): …` annotation in the \
                                 preceding lines (each span claims exactly one); state \
                                 which argument partitions the spans disjointly"
                                    .to_string(),
                            )
                        }
                    }
                    Some(k) => {
                        claim_claimed[k] = true;
                        if on(Rule::UnclaimedRawSpan, i)
                            && !args
                                .iter()
                                .any(|a| mentions_ident(&lexed.comments[k].text, a))
                        {
                            push(
                                Rule::UnclaimedRawSpan,
                                t,
                                "the `fabcheck::claim(disjoint)` annotation names none \
                                 of this `from_raw_parts_mut` call's arguments; name \
                                 the partition argument on the claim line itself"
                                    .to_string(),
                            )
                        }
                        if on(Rule::SpanDisjointness, i) && !span_partition_recognized(toks, i) {
                            push(
                                Rule::SpanDisjointness,
                                t,
                                "this `claim(disjoint)` span is not carved by a \
                                 recognized partition pattern (a bare base pointer, or \
                                 `.add/wrapping_add(off)` with `off` bound to an \
                                 `index * chunk` product, optionally `.min(…)`-clamped); \
                                 unverifiable claims ratchet as debt — restructure the \
                                 offset arithmetic into a block product to discharge it"
                                    .to_string(),
                            )
                        }
                    }
                }
            }
            _ => {}
        }
    }
    findings
}

/// Parses the integer value of a numeric-literal token (decimal or hex,
/// `_` separators and type suffixes tolerated).
fn int_value(text: &str) -> Option<u64> {
    let t: String = text.chars().filter(|&c| c != '_').collect();
    if let Some(hex) = t.strip_prefix("0x").or_else(|| t.strip_prefix("0X")) {
        let digits: String = hex.chars().take_while(|c| c.is_ascii_hexdigit()).collect();
        u64::from_str_radix(&digits, 16).ok()
    } else {
        let digits: String = t.chars().take_while(|c| c.is_ascii_digit()).collect();
        digits.parse().ok()
    }
}

/// The workspace-level `seed-stream-registry` pass (cross-file, so it
/// cannot run inside [`check_file`]).
///
/// Pass 1 collects the registry: every `pub const NAME: u64 = <id>;`
/// inside a `mod streams { … }` block in crate `fl`, flagging duplicate
/// ids (two streams sharing an id silently correlate their
/// "independent" randomness) and a second registry module. Pass 2 audits
/// every non-test `sub_seed(seed, STREAM, …)` call site in `crates/`:
/// the stream argument must be a path ending in a registered constant —
/// numeric literals and unregistered names are findings.
pub fn check_seed_streams(files: &[(&FileClass, &str)]) -> Vec<Finding> {
    let mut findings = Vec::new();
    let mut registry: BTreeSet<String> = BTreeSet::new();
    let mut by_id: BTreeMap<u64, String> = BTreeMap::new();
    let mut registry_file: Option<String> = None;

    for (class, src) in files {
        if !class.in_crates || class.crate_name != "fl" || class.is_test_file {
            continue;
        }
        let lexed = lex(src);
        let toks = &lexed.tokens;
        let mut i = 0;
        while i + 2 < toks.len() {
            if !(toks[i].is_ident
                && toks[i].text == "mod"
                && toks[i + 1].is_ident
                && toks[i + 1].text == "streams"
                && !toks[i + 2].is_ident
                && toks[i + 2].text == "{")
            {
                i += 1;
                continue;
            }
            match &registry_file {
                None => registry_file = Some(class.rel.clone()),
                Some(first) => findings.push(Finding {
                    rule: Rule::SeedStreamRegistry,
                    file: class.rel.clone(),
                    line: toks[i].line,
                    col: toks[i].col,
                    message: format!(
                        "second `mod streams` registry (first in `{first}`); the \
                         seed-stream registry must be a single module in `fl::faults`"
                    ),
                }),
            }
            // Walk the registry block, collecting `const NAME … = <id> ;`.
            let mut depth = 0i64;
            let mut j = i + 2;
            while j < toks.len() {
                let t = &toks[j];
                if !t.is_ident {
                    match t.text.as_str() {
                        "{" => depth += 1,
                        "}" => {
                            depth -= 1;
                            if depth == 0 {
                                break;
                            }
                        }
                        _ => {}
                    }
                    j += 1;
                    continue;
                }
                if t.text == "const" && toks.get(j + 1).is_some_and(|n| n.is_ident) {
                    let name = &toks[j + 1];
                    let mut k = j + 2;
                    while k < toks.len() && toks[k].text != "=" && toks[k].text != ";" {
                        k += 1;
                    }
                    let value = toks
                        .get(k + 1)
                        .filter(|v| {
                            toks[k].text == "="
                                && !v.is_ident
                                && v.text.starts_with(|c: char| c.is_ascii_digit())
                        })
                        .and_then(|v| int_value(&v.text));
                    registry.insert(name.text.clone());
                    if let Some(v) = value {
                        if let Some(first) = by_id.get(&v) {
                            findings.push(Finding {
                                rule: Rule::SeedStreamRegistry,
                                file: class.rel.clone(),
                                line: name.line,
                                col: name.col,
                                message: format!(
                                    "stream id {v} is declared twice in the registry \
                                     (`{first}` and `{}`); two streams sharing an id \
                                     derive identical sub-seeds",
                                    name.text
                                ),
                            });
                        } else {
                            by_id.insert(v, name.text.clone());
                        }
                    }
                    j = k;
                    continue;
                }
                j += 1;
            }
            i = j.max(i + 1);
        }
    }

    for (class, src) in files {
        if !class.in_crates || class.is_test_file {
            continue;
        }
        let lexed = lex(src);
        let toks = &lexed.tokens;
        let spans = test_spans(toks);
        let in_test = |idx: usize| spans.iter().any(|&(a, b)| idx >= a && idx < b);
        for (i, t) in toks.iter().enumerate() {
            if !(t.is_ident
                && t.text == "sub_seed"
                && toks.get(i + 1).is_some_and(|n| !n.is_ident && n.text == "(")
                && !in_test(i)
                // Skip the definition itself (`fn sub_seed(master, …)`).
                && !(i >= 1 && toks[i - 1].is_ident && toks[i - 1].text == "fn"))
            {
                continue;
            }
            let args = arg_ranges(toks, i + 1);
            let Some(&(a, b)) = args.get(1) else {
                continue;
            };
            let stream = &toks[a..b];
            if let Some(lit) = stream
                .iter()
                .find(|x| !x.is_ident && x.text.starts_with(|c: char| c.is_ascii_digit()))
            {
                findings.push(Finding {
                    rule: Rule::SeedStreamRegistry,
                    file: class.rel.clone(),
                    line: lit.line,
                    col: lit.col,
                    message: format!(
                        "`sub_seed` stream id is the magic number `{}`; declare it as \
                         a named constant in the `fl::faults::streams` registry and \
                         reference it, so stream collisions are visible in one place",
                        lit.text
                    ),
                });
                continue;
            }
            let Some(name) = stream.iter().rev().find(|x| x.is_ident) else {
                continue;
            };
            if !registry.contains(&name.text) {
                findings.push(Finding {
                    rule: Rule::SeedStreamRegistry,
                    file: class.rel.clone(),
                    line: name.line,
                    col: name.col,
                    message: format!(
                        "`sub_seed` stream id `{}` is not declared in the \
                         `fl::faults::streams` registry; every stream id lives there \
                         so collisions are impossible to miss",
                        name.text
                    ),
                });
            }
        }
    }
    findings
}

/// Collects `fn <name>` declarations between token indices `open..close`
/// as (name, line, col).
fn fn_names_in(toks: &[Token], open: usize, close: usize) -> Vec<(String, u32, u32)> {
    let mut out = Vec::new();
    let mut j = open;
    while j + 1 < close {
        if toks[j].is_ident && toks[j].text == "fn" && toks[j + 1].is_ident {
            out.push((toks[j + 1].text.clone(), toks[j + 1].line, toks[j + 1].col));
            j += 2;
            continue;
        }
        j += 1;
    }
    out
}

/// The workspace-level `backend-parity` pass: every method of the
/// `CpuBackend` trait must be implemented by **every**
/// `impl CpuBackend for <Type>` block in the trait's directory, and must
/// appear (as a whole-word identifier) in each cross-backend coverage
/// file (`backend_goldens.rs`, `proptests.rs`) present in the workspace.
/// Adding a trait method without a scalar fallback or determinism tests
/// therefore fails `--ci`. Trees without a `CpuBackend` trait are
/// silently exempt (the fixture workspaces that predate the backend
/// layer).
pub fn check_backend_parity(files: &[(&FileClass, &str)]) -> Vec<Finding> {
    let mut findings = Vec::new();
    // Pass 1: the trait declaration and its method roster.
    let mut trait_at: Option<(String, String, String)> = None; // (rel, dir prefix, crate)
    let mut methods: Vec<(String, u32, u32)> = Vec::new();
    for (class, src) in files {
        if class.is_test_file || !class.in_crates {
            continue;
        }
        let toks = lex(src).tokens;
        let mut i = 0;
        while i + 1 < toks.len() {
            if toks[i].is_ident
                && toks[i].text == "trait"
                && toks[i + 1].is_ident
                && toks[i + 1].text == "CpuBackend"
            {
                let mut open = i + 2;
                while open < toks.len() && (toks[open].is_ident || toks[open].text != "{") {
                    open += 1;
                }
                let close = matching_brace(&toks, open);
                methods = fn_names_in(&toks, open + 1, close);
                let dir = class
                    .rel
                    .rsplit_once('/')
                    .map(|(d, _)| format!("{d}/"))
                    .unwrap_or_default();
                trait_at = Some((class.rel.clone(), dir, class.crate_name.clone()));
                break;
            }
            i += 1;
        }
        if trait_at.is_some() {
            break;
        }
    }
    let Some((trait_rel, dir, trait_crate)) = trait_at else {
        return findings;
    };
    // Pass 2: the impl blocks in the trait's directory and the coverage
    // files' identifier sets.
    let mut impls: Vec<(String, String, BTreeSet<String>)> = Vec::new();
    let mut coverage: Vec<(String, BTreeSet<String>)> = Vec::new();
    for (class, src) in files {
        // Coverage lives in the trait's own crate — other crates carry
        // proptest modules of their own that say nothing about backends.
        let is_cov = class.crate_name == trait_crate
            && (class.rel.ends_with("tests/backend_goldens.rs")
                || class.rel.ends_with("src/proptests.rs"));
        if is_cov {
            let idents = lex(src)
                .tokens
                .into_iter()
                .filter(|t| t.is_ident)
                .map(|t| t.text)
                .collect();
            coverage.push((class.rel.clone(), idents));
            continue;
        }
        if class.is_test_file || !class.rel.starts_with(&dir) {
            continue;
        }
        let toks = lex(src).tokens;
        let mut i = 0;
        while i + 3 < toks.len() {
            if !(toks[i].is_ident
                && toks[i].text == "impl"
                && toks[i + 1].is_ident
                && toks[i + 1].text == "CpuBackend"
                && toks[i + 2].is_ident
                && toks[i + 2].text == "for"
                && toks[i + 3].is_ident)
            {
                i += 1;
                continue;
            }
            let ty = toks[i + 3].text.clone();
            let mut open = i + 4;
            while open < toks.len() && (toks[open].is_ident || toks[open].text != "{") {
                open += 1;
            }
            let close = matching_brace(&toks, open);
            let names = fn_names_in(&toks, open + 1, close)
                .into_iter()
                .map(|(n, _, _)| n)
                .collect();
            impls.push((class.rel.clone(), ty, names));
            i = close;
        }
    }
    coverage.sort();
    for (name, line, col) in &methods {
        for (file, ty, names) in &impls {
            if !names.contains(name) {
                findings.push(Finding {
                    rule: Rule::BackendParity,
                    file: trait_rel.clone(),
                    line: *line,
                    col: *col,
                    message: format!(
                        "`CpuBackend::{name}` has no implementation in \
                         `impl CpuBackend for {ty}` (`{file}`); every backend \
                         implements every kernel entry so dispatch can never \
                         fall through"
                    ),
                });
            }
        }
        for (file, idents) in &coverage {
            if !idents.contains(name) {
                findings.push(Finding {
                    rule: Rule::BackendParity,
                    file: trait_rel.clone(),
                    line: *line,
                    col: *col,
                    message: format!(
                        "`CpuBackend::{name}` never appears in the cross-backend \
                         coverage file `{file}`; add it to the bitwise/ULP parity \
                         tests so backend divergence is caught"
                    ),
                });
            }
        }
    }
    findings
}

/// Per-file unsafe-site audit: (sites with a claimed SAFETY comment,
/// total `unsafe` tokens). Replays the same one-comment-per-site
/// claiming the presence rule uses, so "claimed" here means exactly what
/// `unsafe-without-safety-comment` accepts. Powers the `--json`
/// `unsafe_audit` section, the baseline's pinned coverage, and the CI
/// job summary.
pub fn unsafe_site_audit(src: &str) -> (u64, u64) {
    let lexed = lex(src);
    let mut flags = vec![false; lexed.comments.len()];
    let (mut claimed, mut total) = (0u64, 0u64);
    for t in lexed.tokens.iter().filter(|t| t.is_ident) {
        if t.text != "unsafe" {
            continue;
        }
        total += 1;
        if claim_safety_comment(&lexed.comments, &mut flags, t.line).is_some() {
            claimed += 1;
        }
    }
    (claimed, total)
}

/// `--explain <rule>`: the rule's contract and, where one exists, an
/// example claim. Returns `None` for unknown rule names.
pub fn explain(name: &str) -> Option<&'static str> {
    Some(match name {
        "nondeterministic-collection" => {
            "HashMap/HashSet iteration order varies per process, so any float \
             accumulation or JSON emission driven by it breaks bitwise replay. \
             Use BTreeMap/BTreeSet or sorted-key iteration in numeric crates."
        }
        "entropy-rng" => {
            "thread_rng/from_entropy/OsRng/getrandom draw OS entropy, breaking \
             fixed-seed replay everywhere (tests included). Derive a StdRng from \
             the run seed via a registered SplitMix sub-stream."
        }
        "wallclock-in-kernel" => {
            "Instant/SystemTime reads inside numeric crates make results a \
             function of the clock. Timing belongs in crates/bench."
        }
        "env-var-outside-config" => {
            "env::var is allowed only in the FABFLIP_THREADS budget modules and \
             the backend dispatcher (FABFLIP_BACKEND); all other configuration \
             arrives through FlConfig/CLI flags."
        }
        "unsafe-without-safety-comment" => {
            "Every `unsafe` carries its own SAFETY comment within the 5 lines \
             above it, and no two sites share one. In the blessed unsafe dirs \
             the comment must additionally parse under the claim grammar \
             (see unsafe-claim-grammar)."
        }
        "thread-spawn-outside-par" => {
            "Thread creation is the worker pool's monopoly \
             (crates/tensor/src/par.rs); ad-hoc spawns bypass the thread budget \
             and the fixed-block determinism argument."
        }
        "raw-pointer-outside-par" => {
            "Raw-pointer types are confined to the worker pool and the SIMD \
             backend dir; product code everywhere else passes slices."
        }
        "alloc-on-hot-path" => {
            "No heap allocation is reachable from the kernel entry set: the \
             steady-state per-round loop must not touch the allocator. \
             Preallocate in setup and reuse buffers."
        }
        "panic-on-hot-path" => {
            "Counted debt: panic sites (indexing, assert!, unwrap) reachable \
             from kernel entries. Ratchets shrink-only against the baseline."
        }
        "io-on-hot-path" => {
            "No I/O or blocking synchronization reachable from kernel entries \
             outside the worker pool: the deterministic core stays pure so a \
             wire shell can wrap it."
        }
        "seed-stream-registry" => {
            "Every sub_seed stream id is a named constant in the single \
             fl::faults::streams registry; magic numbers and duplicate ids \
             silently correlate 'independent' randomness."
        }
        "unordered-float-reduction" => {
            "Order-sensitive float reductions (.sum::<f32>(), float-seeded \
             folds, partial_cmp sorts without tie-breaks) must route through \
             fixed-order kernels, or carry \
             `// fabcheck::allow(unordered_float_reduction): why`."
        }
        "unclaimed-raw-span" => {
            "Every from_raw_parts_mut span carries its own \
             `// fabcheck::claim(disjoint): …` naming the partition argument \
             that makes the aliasing sound.\n\
             Example: // fabcheck::claim(disjoint): lo strides by worker index."
        }
        "unwrap-in-lib" => {
            "Counted debt: .unwrap() in non-test library code. Prefer \
             expect(\"actionable message\") or Result propagation."
        }
        "todo-unimplemented" => {
            "Counted debt: todo!/unimplemented! in non-test code — tracked so \
             stubs cannot silently accumulate."
        }
        "target-feature-call-unguarded" => {
            "Every call edge into an `#[target_feature(enable = …)]` fn must \
             prove the ISA available: the caller either declares a superset of \
             the callee's features, or is a dispatcher method in \
             crates/tensor/src/backend/ whose instances exist only after \
             `is_x86_feature_detected!` succeeds (backend::active()). Any \
             other edge could execute illegal instructions on an unsupporting \
             host. Remedy: route the call through backend::active()."
        }
        "unsafe-claim-grammar" => {
            "SAFETY comments in crates/tensor/src/backend/ and par.rs must \
             parse under the claim grammar and match their site:\n\
             // SAFETY(bound: q*8 + 8 <= a.len()): pointer arithmetic stays \
             in bounds (required inside #[target_feature] kernels and at \
             raw-pointer sites);\n\
             // SAFETY(feature: avx2,fma): the dispatcher detected these \
             features before handing this backend out (required on blocks \
             calling #[target_feature] fns);\n\
             // SAFETY(sync: JobRef): why the type is sound to send/share \
             (required on `unsafe impl Send/Sync`)."
        }
        "span-disjointness" => {
            "A `fabcheck::claim(disjoint)` is verified against recognized \
             partition arithmetic: the span's base offset must be a bare base \
             or `.add/wrapping_add(off)` with `let off = index * chunk;` \
             (optionally `.min(len)`-clamped, tuple-lets allowed). Contiguous \
             block products are provably non-overlapping for distinct \
             indices; anything else ratchets as counted debt.\n\
             Example: let lo = b * items_per_worker; \
             base.ptr().wrapping_add(lo)"
        }
        "backend-parity" => {
            "Every CpuBackend trait method must be implemented by every \
             backend impl in crates/tensor/src/backend/ AND appear in the \
             cross-backend coverage (backend_goldens.rs, proptests.rs). A new \
             kernel entry without a scalar fallback and determinism tests \
             fails --ci."
        }
        _ => return None,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn class(rel: &str) -> FileClass {
        let mut parts = rel.split('/');
        let top = parts.next().unwrap_or_default();
        let krate = parts.next().unwrap_or_default().to_string();
        FileClass {
            rel: rel.to_string(),
            in_crates: top == "crates",
            crate_name: krate,
            is_test_file: rel.contains("/tests/"),
            is_example: rel.contains("/examples/"),
            is_bin: rel.ends_with("src/main.rs") || rel.contains("/src/bin/"),
        }
    }

    fn run(rel: &str, src: &str) -> Vec<String> {
        check_file(&class(rel), src)
            .into_iter()
            .map(|f| f.rule.name().to_string())
            .collect()
    }

    #[test]
    fn hashmap_flagged_only_in_numeric_crates() {
        let src = "use std::collections::HashMap;";
        assert_eq!(
            run("crates/fl/src/runner.rs", src),
            ["nondeterministic-collection"]
        );
        assert!(run("crates/bench/src/lib.rs", src).is_empty());
        assert!(run("compat/serde/src/lib.rs", src).is_empty());
    }

    #[test]
    fn hashmap_in_comment_string_or_test_mod_is_clean() {
        assert!(run("crates/fl/src/a.rs", "// HashMap in prose").is_empty());
        assert!(run("crates/fl/src/a.rs", r#"let s = "HashMap";"#).is_empty());
        assert!(run(
            "crates/fl/src/a.rs",
            "#[cfg(test)]\nmod tests {\n use std::collections::HashMap;\n}"
        )
        .is_empty());
        // Non-test code after the test mod is still checked.
        assert_eq!(
            run(
                "crates/fl/src/a.rs",
                "#[cfg(test)]\nmod tests { }\nuse std::collections::HashMap;"
            ),
            ["nondeterministic-collection"]
        );
    }

    #[test]
    fn entropy_rng_flagged_everywhere_even_tests() {
        let src = "#[cfg(test)]\nmod tests { fn f() { let r = thread_rng(); } }";
        assert_eq!(run("crates/cli/src/lib.rs", src), ["entropy-rng"]);
        assert_eq!(
            run("compat/rand/src/lib.rs", "pub fn from_entropy() {}"),
            ["entropy-rng"]
        );
    }

    #[test]
    fn wallclock_scoped_to_numeric_crates() {
        let src = "let t = std::time::Instant::now();";
        assert_eq!(
            run("crates/tensor/src/matmul.rs", src),
            ["wallclock-in-kernel"]
        );
        assert!(run("crates/bench/src/lib.rs", src).is_empty());
        // Doc-comment prose like `/// Instantiates the rule.` is clean.
        assert!(run(
            "crates/aggregation/src/types.rs",
            "/// Instantiates the rule."
        )
        .is_empty());
    }

    #[test]
    fn env_var_blessed_only_in_budget_modules() {
        let src = r#"let v = std::env::var("FABFLIP_THREADS");"#;
        assert!(run("crates/tensor/src/par.rs", src).is_empty());
        assert!(run("compat/rayon/src/lib.rs", src).is_empty());
        assert_eq!(run("crates/fl/src/sim.rs", src), ["env-var-outside-config"]);
        // env::args and env::temp_dir stay legal everywhere.
        assert!(run("crates/cli/src/main.rs", "let a = std::env::args();").is_empty());
    }

    #[test]
    fn unsafe_requires_safety_comment() {
        // Snippets live at a compat path: the presence rule applies
        // everywhere, but neither the raw-pointer confinement nor the
        // blessed-dir claim grammar interferes there.
        let bad = "fn f(p: *const u8) { unsafe { p.read() }; }";
        assert_eq!(
            run("compat/simd/src/lib.rs", bad),
            ["unsafe-without-safety-comment"]
        );
        let good = "// SAFETY: p is valid for reads per the caller contract.\n\
                    fn f(p: *const u8) { unsafe { p.read() }; }";
        assert!(run("compat/simd/src/lib.rs", good).is_empty());
        // Attribute + doc-comment noise between the SAFETY line and the
        // unsafe token stays within the window.
        let noisy = "// SAFETY: index < len checked above.\n\
                     #[allow(clippy::missing_docs_in_private_items)]\n\
                     #[inline(always)]\n\
                     fn g(s: &[u8]) { unsafe { s.get_unchecked(0) }; }";
        assert!(run("compat/simd/src/lib.rs", noisy).is_empty());
        // A SAFETY comment far above does not annotate.
        let far = format!(
            "// SAFETY: stale.\n{}\nfn f(p: *const u8) {{ unsafe {{ p.read() }}; }}",
            "\n".repeat(8)
        );
        assert_eq!(
            run("compat/simd/src/lib.rs", &far),
            ["unsafe-without-safety-comment"]
        );
        // Trailing same-line comment counts.
        let inline = "fn f(p: *const u8) { unsafe { p.read() }; } // SAFETY: valid ptr.";
        assert!(run("compat/simd/src/lib.rs", inline).is_empty());
        // In the blessed unsafe dirs the grammar form also satisfies the
        // presence rule (the widened needle).
        let grammar = "// SAFETY(bound: p valid for 1 byte): caller contract.\n\
                       fn f(p: *const u8) { unsafe { p.read() }; }";
        assert!(run("crates/tensor/src/par.rs", grammar).is_empty());
        // The word SAFETY: inside a doc example string does not annotate
        // and an `unsafe` inside a string is not a finding.
        assert!(run("crates/nn/src/x.rs", r#"let s = "unsafe";"#).is_empty());
    }

    #[test]
    fn each_unsafe_claims_its_own_safety_comment() {
        // Two unsafe blocks, one comment: the second block is naked.
        let shared = "// SAFETY: covers only one block.\n\
                      fn f(s: &[u8]) { unsafe { s.get_unchecked(0) }; unsafe { s.get_unchecked(1) }; }";
        assert_eq!(
            run("compat/simd/src/lib.rs", shared),
            ["unsafe-without-safety-comment"]
        );
        // Two comments, two blocks: both annotated.
        let paired = "// SAFETY: first index in bounds.\n\
                      // SAFETY: second index in bounds.\n\
                      fn f(s: &[u8]) { unsafe { s.get_unchecked(0) }; unsafe { s.get_unchecked(1) }; }";
        assert!(run("compat/simd/src/lib.rs", paired).is_empty());
    }

    #[test]
    fn raw_pointer_types_confined_to_par() {
        let ty = "fn f(p: *const f32, q: *mut f32) {}";
        assert_eq!(
            run("crates/tensor/src/matmul.rs", ty),
            ["raw-pointer-outside-par", "raw-pointer-outside-par"]
        );
        assert!(run("crates/tensor/src/par.rs", ty).is_empty());
        // Multiplication and deref are not raw-pointer types.
        assert!(run("crates/tensor/src/matmul.rs", "let y = a * b; let z = *r;").is_empty());
        // Test files (e.g. the alloc_guard allocator) are exempt.
        assert!(run("crates/tensor/tests/alloc_guard.rs", ty).is_empty());
        assert!(run(
            "crates/nn/src/conv.rs",
            "#[cfg(test)]\nmod tests { fn t(p: *const u8) {} }"
        )
        .is_empty());
    }

    #[test]
    fn thread_spawn_flagged_outside_par() {
        let spawn = "std::thread::spawn(|| {});";
        assert_eq!(
            run("crates/fl/src/runner.rs", spawn),
            ["thread-spawn-outside-par"]
        );
        // The worker pool itself and the compat shims are exempt.
        assert!(run("crates/tensor/src/par.rs", spawn).is_empty());
        assert!(run("compat/rayon/src/lib.rs", spawn).is_empty());
        // `thread::scope` and `thread::Builder` count too.
        assert_eq!(
            run(
                "crates/nn/src/x.rs",
                "thread::scope(|s| { s.spawn(|| {}); });"
            ),
            ["thread-spawn-outside-par"]
        );
        assert_eq!(
            run("crates/fl/src/x.rs", "thread::Builder::new();"),
            ["thread-spawn-outside-par"]
        );
        // Test code is NOT exempt: scoped threads in tests still race the
        // pool's parked workers.
        assert_eq!(
            run(
                "crates/nn/src/x.rs",
                "#[cfg(test)]\nmod tests { fn t() { std::thread::spawn(|| {}); } }"
            ),
            ["thread-spawn-outside-par"]
        );
        // A method call `cmd.spawn()` (e.g. std::process::Command) and the
        // bare words in prose are clean.
        assert!(run("crates/fl/src/x.rs", "cmd.spawn();").is_empty());
        assert!(run("crates/fl/src/x.rs", "// thread::spawn in prose").is_empty());
    }

    #[test]
    fn unwrap_counted_in_lib_only() {
        let src = "fn f() { x.unwrap(); }";
        assert_eq!(run("crates/nn/src/gradcheck.rs", src), ["unwrap-in-lib"]);
        assert!(run("crates/nn/src/main.rs", src).is_empty());
        assert!(run("crates/bench/src/bin/perf.rs", src).is_empty());
        assert!(run("crates/fl/examples/probe.rs", src).is_empty());
        assert!(run("compat/rand/src/lib.rs", src).is_empty());
        // unwrap_or and a fn named unwrap don't count.
        assert!(run("crates/nn/src/a.rs", "x.unwrap_or(0);").is_empty());
        assert!(run("crates/nn/src/a.rs", "fn unwrap() {}").is_empty());
        // Test-module unwraps don't count.
        assert!(run(
            "crates/nn/src/a.rs",
            "#[cfg(test)]\nmod tests { fn t() { x.unwrap(); } }"
        )
        .is_empty());
    }

    #[test]
    fn todo_and_unimplemented_counted() {
        assert_eq!(
            run("crates/fl/src/a.rs", "fn f() { todo!() }"),
            ["todo-unimplemented"]
        );
        assert_eq!(
            run("crates/fl/src/a.rs", "fn f() { unimplemented!() }"),
            ["todo-unimplemented"]
        );
        // The identifier alone (e.g. a variable named todo) is clean.
        assert!(run("crates/fl/src/a.rs", "let todo = 3;").is_empty());
    }

    #[test]
    fn cfg_all_test_gates_are_recognized() {
        let src = "#[cfg(all(test, feature = \"slow\"))]\nmod tests { fn t() { x.unwrap(); } }";
        assert!(run("crates/nn/src/a.rs", src).is_empty());
    }

    #[test]
    fn out_of_line_test_mods_are_reported() {
        let src = "#[cfg(test)]\nmod proptests;\npub fn f() {}";
        assert_eq!(test_only_mods(src), ["proptests"]);
        assert!(test_only_mods("mod proptests;").is_empty());
    }

    #[test]
    fn claim_grammar_parses_bound_feature_and_sync() {
        assert_eq!(
            parse_safety_claim("// SAFETY(bound: q*8 + 8 <= a.len() == b.len()): lanes fit."),
            Some(Ok(SafetyClaim::Bound(
                "q*8 + 8 <= a.len() == b.len()".into()
            )))
        );
        assert_eq!(
            parse_safety_claim("// SAFETY(feature: avx2, fma): detected at dispatch."),
            Some(Ok(SafetyClaim::Feature(vec!["avx2".into(), "fma".into()])))
        );
        assert_eq!(
            parse_safety_claim("// SAFETY(sync: JobRef): erased pointer outlives the job."),
            Some(Ok(SafetyClaim::Sync("JobRef".into())))
        );
        // Free text has no opener at all.
        assert_eq!(parse_safety_claim("// SAFETY: trust me."), None);
        // Malformed claims are errors, not silently free text.
        assert!(matches!(
            parse_safety_claim("// SAFETY(feature: neon): wrong ISA."),
            Some(Err(e)) if e.contains("neon")
        ));
        assert!(matches!(
            parse_safety_claim("// SAFETY(vibes: good): unknown kind."),
            Some(Err(e)) if e.contains("vibes")
        ));
        assert!(matches!(
            parse_safety_claim("// SAFETY(bound q < n): no separator."),
            Some(Err(_))
        ));
        assert!(matches!(
            parse_safety_claim("// SAFETY(bound: ): empty."),
            Some(Err(e)) if e.contains("empty")
        ));
    }

    #[test]
    fn claim_grammar_scoped_to_blessed_dirs() {
        // Free-text SAFETY: fine outside the blessed dirs, a grammar
        // finding inside them.
        let free = "// SAFETY: p is valid per the caller contract.\n\
                    fn f(p: *const u8) { unsafe { p.read() }; }";
        assert!(run("crates/tensor/src/par.rs", free).contains(&"unsafe-claim-grammar".into()));
        assert!(
            run("crates/tensor/src/backend/avx9.rs", free).contains(&"unsafe-claim-grammar".into())
        );
        assert!(!run("crates/nn/src/lib.rs", free).contains(&"unsafe-claim-grammar".into()));
    }

    #[test]
    fn claim_kind_must_match_site() {
        // A kernel block inside a #[target_feature] fn must claim bound.
        let tf_wrong = "#[target_feature(enable = \"avx2\")]\n\
                        fn k(a: &[f32]) {\n\
                            // SAFETY(feature: avx2): wrong kind for a kernel interior.\n\
                            unsafe { core::arch::x86_64::_mm_setzero_ps() };\n\
                        }";
        assert_eq!(
            run("crates/tensor/src/backend/avx2.rs", tf_wrong),
            ["unsafe-claim-grammar"]
        );
        let tf_right = tf_wrong.replace(
            "// SAFETY(feature: avx2): wrong kind for a kernel interior.",
            "// SAFETY(bound: lanes never exceed a.len()): in bounds.",
        );
        assert!(run("crates/tensor/src/backend/avx2.rs", &tf_right).is_empty());
        // An unsafe impl must claim sync.
        let imp_wrong = "// SAFETY(bound: n/a): wrong kind.\n\
                         unsafe impl Send for JobRef {}";
        assert_eq!(
            run("crates/tensor/src/par.rs", imp_wrong),
            ["unsafe-claim-grammar"]
        );
        let imp_right = "// SAFETY(sync: JobRef): the pointee outlives the job.\n\
                         unsafe impl Send for JobRef {}";
        assert!(run("crates/tensor/src/par.rs", imp_right).is_empty());
        // A dispatch block calling a same-file target-feature fn must
        // claim every feature the callee enables.
        let disp = "#[target_feature(enable = \"avx2,fma\")]\n\
                    fn dot(a: &[f32]) -> f32 { 0.0 }\n\
                    fn entry(a: &[f32]) -> f32 {\n\
                        // SAFETY(feature: avx2): fma missing.\n\
                        unsafe { dot(a) }\n\
                    }";
        let hits = run("crates/tensor/src/backend/avx2.rs", disp);
        assert_eq!(hits, ["unsafe-claim-grammar"], "{hits:?}");
        let disp_ok = disp.replace("feature: avx2)", "feature: avx2,fma)");
        assert!(run("crates/tensor/src/backend/avx2.rs", &disp_ok).is_empty());
    }

    #[test]
    fn span_disjointness_verifies_partition_arithmetic() {
        // Recognized: offset bound to a block product.
        let good = "fn f(base: *mut f32, b: usize, per: usize, hi: usize) {\n\
                    let lo = b * per;\n\
                    // SAFETY(bound: lo..hi within the allocation): carved.\n\
                    // fabcheck::claim(disjoint): lo strides by b, blocks are per wide.\n\
                    let s = unsafe { std::slice::from_raw_parts_mut(base.wrapping_add(lo), hi) };\n\
                    }";
        assert!(
            run("crates/tensor/src/par.rs", good).is_empty(),
            "{:?}",
            run("crates/tensor/src/par.rs", good)
        );
        // Tuple-let bindings match positionally.
        let tuple = good.replace("let lo = b * per;", "let (lo, other) = (b * per, b + per);");
        assert!(run("crates/tensor/src/par.rs", tuple.as_str()).is_empty());
        // Clamped products are recognized.
        let clamped = good.replace("let lo = b * per;", "let lo = (b * per).min(hi);");
        assert!(run("crates/tensor/src/par.rs", clamped.as_str()).is_empty());
        // A sum offset is NOT a recognized partition: counted debt.
        let bad = good.replace("let lo = b * per;", "let lo = b + per;");
        assert_eq!(
            run("crates/tensor/src/par.rs", bad.as_str()),
            ["span-disjointness"]
        );
        // An unbound offset name is likewise debt.
        let unbound = good.replace("let lo = b * per;", "");
        assert_eq!(
            run("crates/tensor/src/par.rs", unbound.as_str()),
            ["span-disjointness"]
        );
    }

    fn parity_run(files: &[(&str, &str)]) -> Vec<String> {
        let classes: Vec<FileClass> = files.iter().map(|(rel, _)| class(rel)).collect();
        let pairs: Vec<(&FileClass, &str)> = classes
            .iter()
            .zip(files.iter())
            .map(|(c, (_, src))| (c, *src))
            .collect();
        check_backend_parity(&pairs)
            .into_iter()
            .map(|f| f.message)
            .collect()
    }

    #[test]
    fn backend_parity_requires_every_impl_and_coverage() {
        let trait_src = "pub trait CpuBackend: Send + Sync {\n\
                         fn name(&self) -> &'static str;\n\
                         fn dot(&self, a: &[f32]) -> f32;\n\
                         }";
        let scalar = "impl CpuBackend for Scalar {\n\
                      fn name(&self) -> &'static str { \"scalar\" }\n\
                      fn dot(&self, a: &[f32]) -> f32 { 0.0 }\n\
                      }";
        let avx2_missing_dot = "impl CpuBackend for Avx2 {\n\
                                fn name(&self) -> &'static str { \"avx2\" }\n\
                                }";
        let msgs = parity_run(&[
            ("crates/tensor/src/backend/mod.rs", trait_src),
            ("crates/tensor/src/backend/scalar.rs", scalar),
            ("crates/tensor/src/backend/avx2.rs", avx2_missing_dot),
        ]);
        assert_eq!(msgs.len(), 1, "{msgs:?}");
        assert!(msgs[0].contains("CpuBackend::dot") && msgs[0].contains("Avx2"));
        // Coverage files must mention every method.
        let msgs = parity_run(&[
            ("crates/tensor/src/backend/mod.rs", trait_src),
            ("crates/tensor/src/backend/scalar.rs", scalar),
            (
                "crates/tensor/tests/backend_goldens.rs",
                "fn golden() { b.dot(&a); }",
            ),
            (
                "crates/tensor/src/proptests.rs",
                "fn prop() { b.name(); b.dot(&a); }",
            ),
        ]);
        assert_eq!(msgs.len(), 1, "{msgs:?}");
        assert!(
            msgs[0].contains("CpuBackend::name") && msgs[0].contains("backend_goldens"),
            "{msgs:?}"
        );
        // A workspace without the trait is silently exempt.
        assert!(parity_run(&[("crates/tensor/src/kernel.rs", "fn k() {}")]).is_empty());
    }

    #[test]
    fn unsafe_audit_counts_claimed_sites() {
        let src = "// SAFETY(bound: one): ok.\n\
                   fn f() { unsafe { a() }; unsafe { b() }; }";
        assert_eq!(unsafe_site_audit(src), (1, 2));
        assert_eq!(unsafe_site_audit("fn g() {}"), (0, 0));
    }

    #[test]
    fn every_rule_has_an_explanation() {
        for rule in Rule::ALL {
            assert!(
                explain(rule.name()).is_some(),
                "missing --explain text for {}",
                rule.name()
            );
        }
        assert!(explain("no-such-rule").is_none());
        assert!(explain("unsafe-claim-grammar")
            .expect("text")
            .contains("SAFETY(bound:"));
    }
}
