//! A minimal Rust lexer: just enough to tell identifiers apart from
//! comment and literal *content*, which is all the rule engine needs.
//!
//! The full `rustc` grammar is deliberately out of scope (no `syn`, no
//! proc-macro expansion). What the lexer must get right — and what the
//! unit tests pin down — is the set of constructs that would otherwise
//! produce false positives or false negatives for identifier matching:
//!
//! * line comments (`//`, `///`, `//!`) and **nested** block comments
//!   (`/* /* */ */`), whose text is captured for `// SAFETY:` detection
//!   but never produces identifier tokens;
//! * string literals with escapes (`"\" HashMap \""`), raw strings with
//!   any hash arity (`r"…"`, `r##"…"##`), byte and raw byte strings;
//! * char literals (including `'\''`, `'\\'`, `'\u{…}'`, `'"'`)
//!   disambiguated from lifetimes (`'static`) and loop labels;
//! * raw identifiers (`r#mod` lexes as the identifier `mod`);
//! * numeric literals, emitted as non-identifier tokens carrying the
//!   literal text (the seed-stream and float-fold rules need the
//!   values), scanned so `0..n` still yields the ident `n`.
//!
//! Whole-identifier matching means `Instantiates` never matches the
//! `Instant` needle and `unwrap_or` never matches `unwrap`.

/// One significant token: an identifier/keyword, a numeric literal, or a
/// single punctuation character. Multi-character operators (`::`, `->`)
/// appear as consecutive punctuation tokens; rules match sequences. A
/// numeric literal is one token with `is_ident == false` and the full
/// literal text (`0xFF_u8`, `1.5e3f32`) — no punctuation string is ever
/// longer than one character, so rules matching punctuation by text are
/// unaffected.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Token {
    /// Identifier text, or the punctuation character as a string.
    pub text: String,
    /// `true` for identifiers and keywords, `false` for punctuation.
    pub is_ident: bool,
    /// 1-based source line.
    pub line: u32,
    /// 1-based column (in characters).
    pub col: u32,
}

/// A comment's text and the lines it spans, kept separately from the token
/// stream so the `unsafe`-annotation rule can look for `// SAFETY:` without
/// comments polluting identifier matching.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Comment {
    /// Full comment text, delimiters included.
    pub text: String,
    /// 1-based first line.
    pub line_start: u32,
    /// 1-based last line.
    pub line_end: u32,
}

/// Lexer output: significant tokens plus the comment side channel.
#[derive(Debug, Default)]
pub struct Lexed {
    /// Identifier and punctuation tokens in source order.
    pub tokens: Vec<Token>,
    /// Comments in source order.
    pub comments: Vec<Comment>,
}

struct Cursor<'s> {
    chars: Vec<char>,
    src: std::marker::PhantomData<&'s str>,
    i: usize,
    line: u32,
    col: u32,
}

impl Cursor<'_> {
    fn new(src: &str) -> Cursor<'_> {
        Cursor {
            chars: src.chars().collect(),
            src: std::marker::PhantomData,
            i: 0,
            line: 1,
            col: 1,
        }
    }

    fn peek(&self, ahead: usize) -> Option<char> {
        self.chars.get(self.i + ahead).copied()
    }

    fn bump(&mut self) -> Option<char> {
        let c = self.chars.get(self.i).copied()?;
        self.i += 1;
        if c == '\n' {
            self.line += 1;
            self.col = 1;
        } else {
            self.col += 1;
        }
        Some(c)
    }
}

fn is_ident_start(c: char) -> bool {
    c == '_' || c.is_alphabetic()
}

fn is_ident_continue(c: char) -> bool {
    c == '_' || c.is_alphanumeric()
}

/// Lexes `src`, returning significant tokens and comments. Never fails:
/// unterminated literals or comments simply end at EOF (the scanner's job
/// is robust pattern extraction, not validation — `rustc` owns rejection).
pub fn lex(src: &str) -> Lexed {
    let mut cur = Cursor::new(src);
    let mut out = Lexed::default();
    // A leading shebang (`#!/usr/bin/env …`) is not an inner attribute:
    // rustc skips the whole first line, and so do we. `#![…]` stays an
    // attribute (the `[` disambiguates, exactly as in the reference lexer).
    if cur.peek(0) == Some('#') && cur.peek(1) == Some('!') && cur.peek(2) != Some('[') {
        while let Some(c) = cur.peek(0) {
            if c == '\n' {
                break;
            }
            cur.bump();
        }
    }
    while let Some(c) = cur.peek(0) {
        let (line, col) = (cur.line, cur.col);
        match c {
            c if c.is_whitespace() => {
                cur.bump();
            }
            '/' if cur.peek(1) == Some('/') => lex_line_comment(&mut cur, &mut out, line),
            '/' if cur.peek(1) == Some('*') => lex_block_comment(&mut cur, &mut out, line),
            '"' => {
                cur.bump();
                skip_quoted(&mut cur, '"');
            }
            '\'' => lex_quote(&mut cur),
            c if c.is_ascii_digit() => lex_number(&mut cur, &mut out, line, col),
            c if is_ident_start(c) => lex_ident_or_prefixed(&mut cur, &mut out, line, col),
            _ => {
                cur.bump();
                out.tokens.push(Token {
                    text: c.to_string(),
                    is_ident: false,
                    line,
                    col,
                });
            }
        }
    }
    out
}

fn lex_line_comment(cur: &mut Cursor, out: &mut Lexed, line: u32) {
    let mut text = String::new();
    while let Some(c) = cur.peek(0) {
        if c == '\n' {
            break;
        }
        text.push(c);
        cur.bump();
    }
    out.comments.push(Comment {
        text,
        line_start: line,
        line_end: line,
    });
}

fn lex_block_comment(cur: &mut Cursor, out: &mut Lexed, line_start: u32) {
    let mut text = String::new();
    let mut depth = 0usize;
    while let Some(c) = cur.peek(0) {
        if c == '/' && cur.peek(1) == Some('*') {
            depth += 1;
            text.push_str("/*");
            cur.bump();
            cur.bump();
        } else if c == '*' && cur.peek(1) == Some('/') {
            depth -= 1;
            text.push_str("*/");
            cur.bump();
            cur.bump();
            if depth == 0 {
                break;
            }
        } else {
            text.push(c);
            cur.bump();
        }
    }
    out.comments.push(Comment {
        text,
        line_start,
        line_end: cur.line,
    });
}

/// Consumes a `quote`-delimited literal body (opening quote already
/// consumed), honouring `\` escapes.
fn skip_quoted(cur: &mut Cursor, quote: char) {
    while let Some(c) = cur.bump() {
        match c {
            '\\' => {
                cur.bump();
            }
            c if c == quote => break,
            _ => {}
        }
    }
}

/// Consumes a raw-string body: `#` arity already counted, opening `"`
/// already consumed. Ends at `"` followed by `hashes` `#`s.
fn skip_raw_string(cur: &mut Cursor, hashes: usize) {
    while let Some(c) = cur.bump() {
        if c == '"' && (0..hashes).all(|h| cur.peek(h) == Some('#')) {
            for _ in 0..hashes {
                cur.bump();
            }
            break;
        }
    }
}

/// `'` — either a char literal (skipped) or a lifetime/label (skipped; it
/// can never satisfy a whole-identifier rule needle because needles are
/// plain identifiers, and flagging `'static` as `static` would be wrong).
fn lex_quote(cur: &mut Cursor) {
    cur.bump(); // the opening '
    match (cur.peek(0), cur.peek(1)) {
        // Escape: definitely a char literal ('\'', '\\', '\u{…}').
        (Some('\\'), _) => {
            skip_quoted(cur, '\'');
        }
        // 'x' where x could open an identifier: char literal only if the
        // very next char closes it; otherwise a lifetime like 'static.
        (Some(c), Some('\'')) if is_ident_start(c) => {
            cur.bump();
            cur.bump();
        }
        (Some(c), _) if is_ident_start(c) => {
            while cur.peek(0).map(is_ident_continue) == Some(true) {
                cur.bump();
            }
        }
        // Non-identifier content: a char literal like '9', '"', '}'.
        (Some(_), _) => {
            skip_quoted(cur, '\'');
        }
        (None, _) => {}
    }
}

/// Scans a numeric literal: digits, `_`, letters (hex digits, exponent
/// markers, type suffixes), and `.` only when followed by a digit — so
/// `0..n` leaves the range dots and the identifier `n` intact. The full
/// literal text is emitted as a non-identifier token.
fn lex_number(cur: &mut Cursor, out: &mut Lexed, line: u32, col: u32) {
    let mut text = String::new();
    while let Some(c) = cur.peek(0) {
        let continues = c.is_ascii_alphanumeric()
            || c == '_'
            || (c == '.' && cur.peek(1).map(|d| d.is_ascii_digit()) == Some(true));
        if !continues {
            break;
        }
        text.push(c);
        cur.bump();
    }
    out.tokens.push(Token {
        text,
        is_ident: false,
        line,
        col,
    });
}

/// Identifier, or one of the prefixed literal forms that *start* like an
/// identifier: `r"…"`, `r#"…"#`, `b"…"`, `br#"…"#`, `b'…'`, `r#ident`.
fn lex_ident_or_prefixed(cur: &mut Cursor, out: &mut Lexed, line: u32, col: u32) {
    // Raw string r"…" / r#"…"# (and br variants below).
    if cur.peek(0) == Some('r') {
        let mut h = 1;
        while cur.peek(h) == Some('#') {
            h += 1;
        }
        if cur.peek(h) == Some('"') {
            for _ in 0..=h {
                cur.bump(); // r, #s, opening "
            }
            skip_raw_string(cur, h - 1);
            return;
        }
        if h > 1 {
            // r#ident — a raw identifier: emit the bare name so rules see
            // it (it names the same item).
            cur.bump();
            cur.bump();
            let mut text = String::new();
            while let Some(c) = cur.peek(0) {
                if is_ident_continue(c) {
                    text.push(c);
                    cur.bump();
                } else {
                    break;
                }
            }
            out.tokens.push(Token {
                text,
                is_ident: true,
                line,
                col,
            });
            return;
        }
    }
    if cur.peek(0) == Some('b') {
        match cur.peek(1) {
            Some('"') => {
                cur.bump();
                cur.bump();
                skip_quoted(cur, '"');
                return;
            }
            Some('\'') => {
                cur.bump();
                cur.bump();
                skip_quoted(cur, '\'');
                return;
            }
            Some('r') => {
                let mut h = 2;
                while cur.peek(h) == Some('#') {
                    h += 1;
                }
                if cur.peek(h) == Some('"') {
                    for _ in 0..=h {
                        cur.bump();
                    }
                    skip_raw_string(cur, h - 2);
                    return;
                }
            }
            _ => {}
        }
    }
    // Rust 1.77 C-string literals: c"…" and cr"…" / cr#"…"# (no bare
    // `c'…'` form exists). Without this arm, `c"thread_rng"` would lex as
    // the ident `c` followed by an ordinary string — harmless — but
    // `cr#"…"#` would lex `cr` then treat `#"…"#` as punctuation + a
    // *plain* string ending at the first interior `"`, misclassifying
    // everything after it.
    if cur.peek(0) == Some('c') {
        match cur.peek(1) {
            Some('"') => {
                cur.bump();
                cur.bump();
                skip_quoted(cur, '"');
                return;
            }
            Some('r') => {
                let mut h = 2;
                while cur.peek(h) == Some('#') {
                    h += 1;
                }
                if cur.peek(h) == Some('"') {
                    for _ in 0..=h {
                        cur.bump();
                    }
                    skip_raw_string(cur, h - 2);
                    return;
                }
            }
            _ => {}
        }
    }
    // Plain identifier / keyword.
    let mut text = String::new();
    while let Some(c) = cur.peek(0) {
        if is_ident_continue(c) {
            text.push(c);
            cur.bump();
        } else {
            break;
        }
    }
    out.tokens.push(Token {
        text,
        is_ident: true,
        line,
        col,
    });
}

#[cfg(test)]
mod tests {
    use super::*;

    fn idents(src: &str) -> Vec<String> {
        lex(src)
            .tokens
            .into_iter()
            .filter(|t| t.is_ident)
            .map(|t| t.text)
            .collect()
    }

    #[test]
    fn plain_identifiers_with_positions() {
        let l = lex("let x = foo();");
        let toks: Vec<(&str, u32, u32)> = l
            .tokens
            .iter()
            .map(|t| (t.text.as_str(), t.line, t.col))
            .collect();
        assert_eq!(
            toks,
            vec![
                ("let", 1, 1),
                ("x", 1, 5),
                ("=", 1, 7),
                ("foo", 1, 9),
                ("(", 1, 12),
                (")", 1, 13),
                (";", 1, 14),
            ]
        );
    }

    #[test]
    fn line_comments_do_not_emit_idents() {
        let l = lex("// a HashMap lives here\nreal_ident");
        assert_eq!(
            idents("// a HashMap lives here\nreal_ident"),
            ["real_ident"]
        );
        assert_eq!(l.comments.len(), 1);
        assert!(l.comments[0].text.contains("HashMap"));
    }

    #[test]
    fn nested_block_comments() {
        let src = "/* outer /* inner HashMap */ still comment */ HashMap";
        assert_eq!(idents(src), ["HashMap"]);
        let l = lex(src);
        assert_eq!(l.comments.len(), 1);
        assert_eq!(l.comments[0].line_start, 1);
    }

    #[test]
    fn multiline_block_comment_spans_lines() {
        let l = lex("/* a\nb\nc */ x");
        assert_eq!(l.comments[0].line_start, 1);
        assert_eq!(l.comments[0].line_end, 3);
        assert_eq!(l.tokens[0].line, 3);
    }

    #[test]
    fn string_contents_are_invisible() {
        assert_eq!(idents(r#"let s = "thread_rng() HashMap";"#), ["let", "s"]);
    }

    #[test]
    fn escaped_quotes_do_not_end_strings() {
        // The \" keeps the string open across the needle.
        assert_eq!(
            idents(r#"let s = "a \" HashMap \" b"; tail"#),
            ["let", "s", "tail"]
        );
        assert_eq!(
            idents(r#"let s = "backslash \\"; HashMap"#),
            ["let", "s", "HashMap"]
        );
    }

    #[test]
    fn raw_strings_any_hash_arity() {
        assert_eq!(idents(r##"let s = r"HashMap"; t"##), ["let", "s", "t"]);
        assert_eq!(
            idents(r###"let s = r#"quote " inside HashMap"#; t"###),
            ["let", "s", "t"]
        );
        // A "# inside an r##"…"## raw string does not terminate it.
        assert_eq!(
            idents("let s = r##\"inner \"# HashMap\"##; t"),
            ["let", "s", "t"]
        );
    }

    #[test]
    fn byte_and_raw_byte_strings() {
        assert_eq!(idents(r#"let s = b"HashMap"; t"#), ["let", "s", "t"]);
        assert_eq!(idents(r##"let s = br#"HashMap"#; t"##), ["let", "s", "t"]);
        assert_eq!(idents(r#"let c = b'x'; t"#), ["let", "c", "t"]);
    }

    #[test]
    fn char_literals_vs_lifetimes() {
        assert_eq!(idents("let c = 'a'; x"), ["let", "c", "x"]);
        assert_eq!(idents(r"let c = '\''; x"), ["let", "c", "x"]);
        assert_eq!(idents(r"let c = '\\'; x"), ["let", "c", "x"]);
        assert_eq!(idents(r"let c = '\u{1F600}'; x"), ["let", "c", "x"]);
        // A double quote inside a char literal must not open a string.
        assert_eq!(idents("let c = '\"'; HashMap"), ["let", "c", "HashMap"]);
        // Lifetimes do not produce identifier tokens and do not consume
        // the following code.
        assert_eq!(
            idents("fn f<'a>(x: &'a str) {} y"),
            ["fn", "f", "x", "str", "y"]
        );
        assert_eq!(idents("&'static str; z"), ["str", "z"]);
    }

    #[test]
    fn raw_identifiers_lex_as_bare_name() {
        assert_eq!(idents("let r#mod = 1; r#fn"), ["let", "mod", "fn"]);
    }

    #[test]
    fn numbers_do_not_eat_range_operands() {
        assert_eq!(idents("for i in 0..n {}"), ["for", "i", "in", "n"]);
        assert_eq!(idents("let x = 1.5e3f32; y"), ["let", "x", "y"]);
        assert_eq!(idents("let x = 0xFF_u8; y"), ["let", "x", "y"]);
    }

    #[test]
    fn numeric_literals_are_tokens_with_text() {
        let l = lex("sub_seed(seed, 11, r, c)");
        let nums: Vec<(&str, u32)> = l
            .tokens
            .iter()
            .filter(|t| !t.is_ident && t.text.starts_with(|c: char| c.is_ascii_digit()))
            .map(|t| (t.text.as_str(), t.col))
            .collect();
        assert!(nums.contains(&("11", 16)), "{nums:?}");
        // Suffixed and float forms keep their full text.
        let l = lex("let x = 1.5e3f32; let y = 0xFF_u8;");
        let texts: Vec<&str> = l
            .tokens
            .iter()
            .filter(|t| !t.is_ident && t.text.len() > 1)
            .map(|t| t.text.as_str())
            .collect();
        assert_eq!(texts, ["1.5e3f32", "0xFF_u8"]);
    }

    #[test]
    fn whole_ident_matching_is_possible() {
        // The lexer yields `Instantiates` as one token, never `Instant`.
        assert_eq!(
            idents("/// Instantiates the rule.\nInstantiates"),
            ["Instantiates"]
        );
        assert_eq!(idents("x.unwrap_or(0)"), ["x", "unwrap_or"]);
    }

    #[test]
    fn c_string_literals() {
        // Plain C strings hide their contents like ordinary strings.
        assert_eq!(idents(r#"let s = c"HashMap"; t"#), ["let", "s", "t"]);
        // Raw C strings at any hash arity; interior quotes stay inside.
        assert_eq!(idents(r##"let s = cr"HashMap"; t"##), ["let", "s", "t"]);
        assert_eq!(
            idents(r###"let s = cr#"quote " inside thread_rng"#; t"###),
            ["let", "s", "t"]
        );
        // Tokens after the literal are classified normally (the bug this
        // guards against: `cr#"…"#` swallowing the rest of the line).
        assert_eq!(
            idents("let s = cr#\"x\"#; let y = HashMap::new();"),
            ["let", "s", "let", "y", "HashMap", "new"]
        );
        // An identifier merely starting with c/cr is still an identifier.
        assert_eq!(
            idents("let crate_name = c; cr"),
            ["let", "crate_name", "c", "cr"]
        );
    }

    #[test]
    fn shebang_line_is_skipped() {
        assert_eq!(
            idents("#!/usr/bin/env run-cargo-script\nlet x = 1;"),
            ["let", "x"]
        );
        // Position bookkeeping survives the skip: first token is line 2.
        let l = lex("#!/usr/bin/env rust\nident");
        assert_eq!(l.tokens[0].line, 2);
        // An inner attribute is NOT a shebang.
        assert_eq!(
            idents("#![allow(dead_code)]\nx"),
            ["allow", "dead_code", "x"]
        );
        // A shebang only counts at the very start of the file.
        let mid = lex("let a = 1;\n#!/not/a/shebang");
        assert!(mid.tokens.iter().any(|t| t.text == "#"));
    }

    #[test]
    fn unterminated_constructs_end_at_eof() {
        assert_eq!(idents("let s = \"unterminated"), ["let", "s"]);
        let l = lex("/* never closed\nident_inside");
        assert!(l.tokens.is_empty());
        assert_eq!(l.comments.len(), 1);
    }
}
