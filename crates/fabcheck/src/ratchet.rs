//! The counted-rule ratchet: a committed baseline of `rule × file`
//! counts. Counts may only shrink — CI fails when any cell grows, and
//! `fabcheck --bless` rewrites the baseline once counts have been driven
//! down, locking in the improvement.

use std::collections::BTreeMap;
use std::path::Path;

/// `rule name → file → count`, ordered so serialization is deterministic.
pub type Counts = BTreeMap<String, BTreeMap<String, u64>>;

/// `file → (claimed, total)` unsafe-site coverage: how many `unsafe`
/// sites in the file carry a machine-parsed SAFETY claim, out of all of
/// them. Pinned at bless time so the CI job summary can show coverage
/// drift alongside the per-rule deltas.
pub type UnsafeAudit = BTreeMap<String, (u64, u64)>;

/// Baseline file schema version written by `--bless`. v1 was a bare
/// `rule → file → count` map; v2 wrapped it as
/// `{"schema_version": 2, "counts": {…}}`; v3 adds a `"rules"` roster
/// array naming the counted rules the baseline was blessed under, so a
/// reviewer (and the CI delta summary) can tell "rule added since the
/// bless" apart from "rule was clean at bless time" without replaying
/// history; v4 adds the `"unsafe_audit"` coverage map
/// (`file → {"claimed", "total"}`) snapshotting how much of the unsafe
/// surface carried machine-parsed claims when the baseline was blessed.
/// All four versions parse; `--bless` always writes v4.
pub const SCHEMA_VERSION: u64 = 4;

/// A parsed baseline: the ratcheted counts plus the unsafe-audit
/// coverage snapshot pinned at bless time (empty for pre-v4 baselines).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Baseline {
    /// Committed counted-rule tallies the ratchet compares against.
    pub counts: Counts,
    /// Committed unsafe-site coverage (informational, not ratcheted).
    pub unsafe_audit: UnsafeAudit,
}

/// One cell whose count exceeds the committed baseline.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Regression {
    /// Counted rule name.
    pub rule: String,
    /// Root-relative file.
    pub file: String,
    /// Committed count (0 for a file new to the baseline).
    pub baseline: u64,
    /// Observed count.
    pub actual: u64,
}

/// Loads a baseline file. A missing file is an empty baseline (every
/// count regresses against 0), so a fresh checkout fails closed.
///
/// # Errors
///
/// Returns a message for unreadable files or malformed JSON.
pub fn load(path: &Path) -> Result<Baseline, String> {
    if !path.exists() {
        return Ok(Baseline::default());
    }
    let text = std::fs::read_to_string(path)
        .map_err(|e| format!("cannot read baseline {}: {e}", path.display()))?;
    parse(&text).map_err(|e| format!("malformed baseline {}: {e}", path.display()))
}

/// Reads a non-negative integer out of a JSON value.
fn as_u64(v: &serde_json::Value, what: &str) -> Result<u64, String> {
    v.as_f64()
        .filter(|n| *n >= 0.0 && n.fract() == 0.0)
        .map(|n| n as u64)
        .ok_or_else(|| format!("{what}: expected a non-negative integer"))
}

fn parse(text: &str) -> Result<Baseline, String> {
    let value: serde_json::Value = serde_json::from_str(text).map_err(|e| format!("{e:?}"))?;
    let top = value.as_map().ok_or("expected a top-level object")?;
    // v2+ wrap the rule map under "counts"; a baseline without a
    // "schema_version" key is the v1 bare map (migration read path).
    let mut unsafe_audit = UnsafeAudit::new();
    let rules_value = match top.iter().find(|(k, _)| k == "schema_version") {
        Some((_, ver)) => {
            let ver = as_u64(ver, "schema_version")?;
            if ver > SCHEMA_VERSION {
                return Err(format!(
                    "schema_version {ver} is newer than this fabcheck (v{SCHEMA_VERSION}); \
                     update the tool or re-bless"
                ));
            }
            // The v3 roster is advisory (counts carry explicit zeros for
            // every counted rule), but a malformed one is still a
            // malformed baseline; v2 has no roster.
            match top.iter().find(|(k, _)| k == "rules") {
                Some((_, serde_json::Value::Seq(entries)))
                    if entries.iter().all(|e| e.as_str().is_some()) => {}
                Some(_) => {
                    return Err("rules: expected an array of rule names".into());
                }
                None if ver >= 3 => {
                    return Err("schema v3 baseline is missing the \"rules\" roster".into());
                }
                None => {}
            }
            // v4 pins the unsafe-site coverage map; earlier schemas
            // migrate with an empty one (next bless fills it in).
            match top.iter().find(|(k, _)| k == "unsafe_audit") {
                Some((_, audit)) => {
                    let files = audit
                        .as_map()
                        .ok_or("unsafe_audit: expected an object of file coverage")?;
                    for (file, cell) in files {
                        let cell = cell.as_map().ok_or_else(|| {
                            format!("unsafe_audit/{file:?}: expected {{claimed, total}}")
                        })?;
                        let field = |name: &str| -> Result<u64, String> {
                            cell.iter()
                                .find(|(k, _)| k == name)
                                .ok_or_else(|| format!("unsafe_audit/{file:?}: missing {name:?}"))
                                .and_then(|(_, v)| {
                                    as_u64(v, &format!("unsafe_audit/{file:?}/{name}"))
                                })
                        };
                        unsafe_audit.insert(file.clone(), (field("claimed")?, field("total")?));
                    }
                }
                None if ver >= 4 => {
                    return Err(
                        "schema v4 baseline is missing the \"unsafe_audit\" coverage map".into(),
                    );
                }
                None => {}
            }
            &top.iter()
                .find(|(k, _)| k == "counts")
                .ok_or("schema v2+ baseline is missing the \"counts\" object")?
                .1
        }
        None => &value,
    };
    let rules = rules_value
        .as_map()
        .ok_or("expected an object of rule counts")?;
    let mut counts = Counts::new();
    for (rule, files) in rules {
        let files = files
            .as_map()
            .ok_or_else(|| format!("rule {rule:?}: expected an object of file counts"))?;
        let mut per_file = BTreeMap::new();
        for (file, count) in files {
            per_file.insert(file.clone(), as_u64(count, &format!("{rule:?}/{file:?}"))?);
        }
        counts.insert(rule.clone(), per_file);
    }
    Ok(Baseline {
        counts,
        unsafe_audit,
    })
}

/// Serializes counts + unsafe-audit coverage as stable, diff-friendly
/// pretty JSON (always the current [`SCHEMA_VERSION`] shape).
pub fn render(counts: &Counts, unsafe_audit: &UnsafeAudit) -> String {
    // v3 roster: the counted rules this baseline was blessed under.
    // `check_workspace` seeds every counted rule with an explicit (possibly
    // empty) cell, so the counts' key set *is* the roster at bless time.
    let roster = counts
        .keys()
        .map(|r| json_string(r))
        .collect::<Vec<_>>()
        .join(", ");
    let mut out = format!(
        "{{\n  \"schema_version\": {SCHEMA_VERSION},\n  \"rules\": [{roster}],\n  \"counts\": {{"
    );
    if counts.is_empty() {
        out.push('}');
    } else {
        out.push('\n');
        for (ri, (rule, files)) in counts.iter().enumerate() {
            out.push_str(&format!("    {}: {{", json_string(rule)));
            if files.is_empty() {
                out.push('}');
            } else {
                out.push('\n');
                for (fi, (file, count)) in files.iter().enumerate() {
                    out.push_str(&format!("      {}: {count}", json_string(file)));
                    if fi + 1 < files.len() {
                        out.push(',');
                    }
                    out.push('\n');
                }
                out.push_str("    }");
            }
            if ri + 1 < counts.len() {
                out.push(',');
            }
            out.push('\n');
        }
        out.push_str("  }");
    }
    out.push_str(",\n  \"unsafe_audit\": {");
    if unsafe_audit.is_empty() {
        out.push('}');
    } else {
        out.push('\n');
        for (fi, (file, (claimed, total))) in unsafe_audit.iter().enumerate() {
            out.push_str(&format!(
                "    {}: {{\"claimed\": {claimed}, \"total\": {total}}}",
                json_string(file)
            ));
            if fi + 1 < unsafe_audit.len() {
                out.push(',');
            }
            out.push('\n');
        }
        out.push_str("  }");
    }
    out.push_str("\n}\n");
    out
}

/// Writes the baseline (the `--bless` action).
///
/// # Errors
///
/// Propagates file-write failures as a message.
pub fn bless(path: &Path, counts: &Counts, unsafe_audit: &UnsafeAudit) -> Result<(), String> {
    std::fs::write(path, render(counts, unsafe_audit))
        .map_err(|e| format!("cannot write baseline {}: {e}", path.display()))
}

/// Compares observed counts against the baseline: cells that grew (CI
/// failures) and whether anything shrank (a `--bless` opportunity).
pub fn compare(baseline: &Counts, actual: &Counts) -> (Vec<Regression>, bool) {
    let empty = BTreeMap::new();
    let mut regressions = Vec::new();
    let mut improved = false;
    let mut rules: Vec<&String> = baseline.keys().chain(actual.keys()).collect();
    rules.sort();
    rules.dedup();
    for rule in rules {
        let base_files = baseline.get(rule).unwrap_or(&empty);
        let act_files = actual.get(rule).unwrap_or(&empty);
        let mut files: Vec<&String> = base_files.keys().chain(act_files.keys()).collect();
        files.sort();
        files.dedup();
        for file in files {
            let b = base_files.get(file).copied().unwrap_or(0);
            let a = act_files.get(file).copied().unwrap_or(0);
            if a > b {
                regressions.push(Regression {
                    rule: rule.clone(),
                    file: file.clone(),
                    baseline: b,
                    actual: a,
                });
            } else if a < b {
                improved = true;
            }
        }
    }
    (regressions, improved)
}

/// Escapes a string as a JSON literal.
pub fn json_string(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn counts(cells: &[(&str, &str, u64)]) -> Counts {
        let mut out = Counts::new();
        for (rule, file, n) in cells {
            out.entry(rule.to_string())
                .or_default()
                .insert(file.to_string(), *n);
        }
        out
    }

    #[test]
    fn render_parse_roundtrip() {
        let c = counts(&[
            ("unwrap-in-lib", "crates/nn/src/gradcheck.rs", 25),
            ("unwrap-in-lib", "crates/fl/src/sim.rs", 2),
            ("todo-unimplemented", "crates/core/src/lib.rs", 1),
        ]);
        let text = render(&c, &UnsafeAudit::new());
        assert_eq!(parse(&text).expect("roundtrip").counts, c);
        // v4 envelope plus deterministic ordering: rules and files sorted.
        assert!(text.starts_with(
            "{\n  \"schema_version\": 4,\n  \"rules\": [\"todo-unimplemented\", \"unwrap-in-lib\"],"
        ));
        let first_rule = text.lines().nth(4).expect("rule line");
        assert!(first_rule.contains("todo-unimplemented"), "{text}");
    }

    #[test]
    fn v4_audit_roundtrips_and_is_required() {
        let mut audit = UnsafeAudit::new();
        audit.insert("crates/tensor/src/par.rs".into(), (7, 7));
        audit.insert("crates/tensor/src/backend/avx2.rs".into(), (29, 30));
        let text = render(&counts(&[("unwrap-in-lib", "a.rs", 1)]), &audit);
        let b = parse(&text).expect("v4 roundtrip");
        assert_eq!(b.unsafe_audit, audit);
        assert!(text.contains("\"unsafe_audit\": {"), "{text}");
        assert!(
            text.contains("\"crates/tensor/src/par.rs\": {\"claimed\": 7, \"total\": 7}"),
            "{text}"
        );
        // A v4 envelope without the coverage map is malformed…
        let err = parse("{\"schema_version\": 4, \"rules\": [], \"counts\": {}}")
            .expect_err("missing audit");
        assert!(err.contains("unsafe_audit"), "{err}");
        // …and so is a coverage cell missing a field.
        assert!(parse(
            "{\"schema_version\": 4, \"rules\": [], \"counts\": {}, \
             \"unsafe_audit\": {\"a.rs\": {\"claimed\": 1}}}"
        )
        .is_err());
    }

    #[test]
    fn v2_envelope_migrates_and_rerenders_as_v4() {
        let v2 = "{\n  \"schema_version\": 2,\n  \"counts\": {\n    \"unwrap-in-lib\": {\n      \
                  \"crates/nn/src/a.rs\": 2\n    }\n  }\n}\n";
        let b = parse(v2).expect("v2 migration");
        assert_eq!(b.counts["unwrap-in-lib"]["crates/nn/src/a.rs"], 2);
        assert!(b.unsafe_audit.is_empty());
        let v4 = render(&b.counts, &b.unsafe_audit);
        assert!(v4.contains("\"schema_version\": 4"), "{v4}");
        assert!(v4.contains("\"rules\": [\"unwrap-in-lib\"]"), "{v4}");
        assert!(v4.contains("\"unsafe_audit\": {}"), "{v4}");
        // And the upgraded text roundtrips to the same baseline.
        assert_eq!(parse(&v4).expect("v4 roundtrip"), b);
    }

    #[test]
    fn v3_baselines_migrate_with_an_empty_audit() {
        let v3 = "{\n  \"schema_version\": 3,\n  \"rules\": [\"unwrap-in-lib\"],\n  \
                  \"counts\": {\n    \"unwrap-in-lib\": {\n      \"a.rs\": 1\n    }\n  }\n}\n";
        let b = parse(v3).expect("v3 migration");
        assert_eq!(b.counts["unwrap-in-lib"]["a.rs"], 1);
        assert!(b.unsafe_audit.is_empty());
        assert!(render(&b.counts, &b.unsafe_audit).contains("\"schema_version\": 4"));
    }

    #[test]
    fn v3_roster_is_validated() {
        assert!(parse("{\"schema_version\": 3, \"counts\": {}}")
            .expect_err("missing roster")
            .contains("roster"));
        assert!(parse("{\"schema_version\": 3, \"rules\": [1], \"counts\": {}}").is_err());
        assert!(parse("{\"schema_version\": 3, \"rules\": \"x\", \"counts\": {}}").is_err());
        assert!(
            parse("{\"schema_version\": 3, \"rules\": [], \"counts\": {}}")
                .expect("empty roster is fine")
                .counts
                .is_empty()
        );
    }

    #[test]
    fn v1_bare_map_baselines_still_parse() {
        let v1 = "{\n  \"unwrap-in-lib\": {\n    \"crates/nn/src/a.rs\": 2\n  }\n}\n";
        let b = parse(v1).expect("v1 migration");
        assert_eq!(b.counts["unwrap-in-lib"]["crates/nn/src/a.rs"], 2);
        // Re-rendering upgrades to the current schema.
        assert!(render(&b.counts, &b.unsafe_audit).contains("\"schema_version\": 4"));
    }

    #[test]
    fn future_schema_versions_are_rejected() {
        let v99 = "{\"schema_version\": 99, \"counts\": {}}";
        let err = parse(v99).expect_err("future schema");
        assert!(err.contains("newer"), "{err}");
        assert!(parse("{\"schema_version\": 2, \"counts\": {}}")
            .expect("v2 empty")
            .counts
            .is_empty());
        assert!(parse("{\"schema_version\": 2}").is_err());
        assert!(parse("{\"schema_version\": -1, \"counts\": {}}").is_err());
    }

    #[test]
    fn empty_rule_maps_render_inline() {
        let mut c = Counts::new();
        c.insert("unwrap-in-lib".into(), BTreeMap::new());
        let text = render(&c, &UnsafeAudit::new());
        assert!(text.contains("\"unwrap-in-lib\": {}"));
        assert_eq!(parse(&text).expect("parse").counts, c);
    }

    #[test]
    fn growth_is_a_regression_shrink_is_improvement() {
        let base = counts(&[("unwrap-in-lib", "a.rs", 3), ("unwrap-in-lib", "b.rs", 1)]);
        let worse = counts(&[("unwrap-in-lib", "a.rs", 4), ("unwrap-in-lib", "b.rs", 1)]);
        let (regs, improved) = compare(&base, &worse);
        assert_eq!(regs.len(), 1);
        assert_eq!(regs[0].baseline, 3);
        assert_eq!(regs[0].actual, 4);
        assert!(!improved);

        let better = counts(&[("unwrap-in-lib", "a.rs", 2), ("unwrap-in-lib", "b.rs", 1)]);
        let (regs, improved) = compare(&base, &better);
        assert!(regs.is_empty());
        assert!(improved);
    }

    #[test]
    fn new_file_regresses_against_zero() {
        let base = counts(&[]);
        let act = counts(&[("todo-unimplemented", "new.rs", 1)]);
        let (regs, _) = compare(&base, &act);
        assert_eq!(regs.len(), 1);
        assert_eq!(regs[0].baseline, 0);
    }

    #[test]
    fn file_dropping_to_zero_is_fine() {
        let base = counts(&[("unwrap-in-lib", "gone.rs", 5)]);
        let act = counts(&[]);
        let (regs, improved) = compare(&base, &act);
        assert!(regs.is_empty());
        assert!(improved);
    }

    #[test]
    fn malformed_baseline_is_an_error() {
        assert!(parse("[1, 2]").is_err());
        assert!(parse("{\"r\": 3}").is_err());
        assert!(parse("{\"r\": {\"f\": -1}}").is_err());
        assert!(parse("{\"r\": {\"f\": 1.5}}").is_err());
    }

    #[test]
    fn json_string_escapes() {
        assert_eq!(json_string("a\"b\\c\n"), "\"a\\\"b\\\\c\\n\"");
    }
}
