//! # fabflip-data
//!
//! Data substrate for the `fabflip` reproduction: procedural stand-ins for
//! Fashion-MNIST and CIFAR-10, the Dirichlet label-skew partitioner of the
//! paper's heterogeneity experiments, and small statistical utilities (gamma
//! /Dirichlet samplers, 2-D PCA for the Fig. 4 diversity visualization).
//!
//! ## Why procedural datasets?
//!
//! The reproduction environment has no access to the real datasets. The
//! attacks and defenses under study never exploit image *semantics* — only
//! the classifier's loss surface and the diversity of client updates — so a
//! learnable synthetic 10-class image task with a comparable accuracy
//! ceiling preserves every effect the paper measures (see DESIGN.md §3).
//! [`SynthSpec::fashion_like`] is tuned so the paper's 2-conv CNN reaches a
//! high clean accuracy; [`SynthSpec::cifar_like`] is deliberately harder
//! (3 channels, heavier intra-class variation) so the deeper CNN plateaus
//! around half, mirroring the 82% / 50% ceilings reported in Table II.
//!
//! # Examples
//!
//! ```
//! use fabflip_data::{Dataset, SynthSpec};
//!
//! let spec = SynthSpec::fashion_like();
//! let train = Dataset::synthesize(&spec, 200, 42);
//! assert_eq!(train.len(), 200);
//! assert_eq!(train.image_shape(), (1, 28, 28));
//! ```

mod dataset;
pub mod io;
mod partition;
mod pca;
mod samplers;
mod synth;

pub use dataset::{Batch, Dataset};
pub use partition::{dirichlet_partition, PartitionError};
pub use pca::pca_2d;
pub use samplers::{sample_dirichlet, sample_gamma};
pub use synth::SynthSpec;

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(24))]

        #[test]
        fn instances_always_land_in_unit_range(
            label in 0usize..10, seed in 0u64..500, noise in 0.0f32..2.0
        ) {
            let mut spec = SynthSpec::fashion_like();
            spec.noise_std = noise;
            let proto = spec.prototype(label, seed);
            let mut rng = <rand::rngs::StdRng as rand::SeedableRng>::seed_from_u64(seed);
            let inst = spec.instance(&proto, &mut rng);
            prop_assert_eq!(inst.len(), spec.image_len());
            prop_assert!(inst.iter().all(|&v| (0.0..=1.0).contains(&v)));
        }

        #[test]
        fn partition_covers_every_sample_once(
            n_clients in 1usize..30, beta in 0.05f64..5.0, seed in 0u64..200
        ) {
            let d = Dataset::synthesize(&SynthSpec::fashion_like(), 120, 3);
            let shards = dirichlet_partition(&d, n_clients, beta, seed).unwrap();
            prop_assert_eq!(shards.len(), n_clients);
            let mut seen = vec![0usize; d.len()];
            for shard in &shards {
                for &i in shard {
                    seen[i] += 1;
                }
            }
            prop_assert!(seen.iter().all(|&c| c == 1));
        }

        #[test]
        fn dirichlet_draws_are_simplex_points(beta in 0.02f64..10.0, k in 1usize..20, seed in 0u64..300) {
            let mut rng = <rand::rngs::StdRng as rand::SeedableRng>::seed_from_u64(seed);
            let p = sample_dirichlet(beta, k, &mut rng);
            prop_assert_eq!(p.len(), k);
            let s: f64 = p.iter().sum();
            prop_assert!((s - 1.0).abs() < 1e-9);
            prop_assert!(p.iter().all(|&x| (0.0..=1.0).contains(&x)));
        }

        #[test]
        fn pca_projection_count_matches_rows(n in 1usize..12) {
            let rows: Vec<Vec<f32>> = (0..n)
                .map(|i| (0..6).map(|j| ((i * 6 + j) as f32 * 0.77).sin()).collect())
                .collect();
            prop_assert_eq!(pca_2d(&rows).len(), n);
        }
    }
}
