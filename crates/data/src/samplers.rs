//! Gamma and Dirichlet samplers, implemented locally (no distribution
//! crate) with the Marsaglia–Tsang squeeze method.

use rand::Rng;

/// Draws one sample from `Gamma(shape, 1)` via Marsaglia–Tsang (2000).
///
/// For `shape < 1` the boosting identity
/// `Gamma(a) = Gamma(a + 1) · U^(1/a)` is applied.
///
/// # Panics
///
/// Panics when `shape <= 0`.
pub fn sample_gamma<R: Rng + ?Sized>(shape: f64, rng: &mut R) -> f64 {
    assert!(shape > 0.0, "gamma shape must be positive");
    if shape < 1.0 {
        let u: f64 = rng.gen_range(f64::EPSILON..1.0);
        return sample_gamma(shape + 1.0, rng) * u.powf(1.0 / shape);
    }
    let d = shape - 1.0 / 3.0;
    let c = 1.0 / (9.0 * d).sqrt();
    loop {
        // Standard normal via Box–Muller.
        let u1: f64 = rng.gen_range(f64::EPSILON..1.0);
        let u2: f64 = rng.gen_range(0.0..1.0);
        let x = (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos();
        let v = (1.0 + c * x).powi(3);
        if v <= 0.0 {
            continue;
        }
        let u: f64 = rng.gen_range(f64::EPSILON..1.0);
        if u.ln() < 0.5 * x * x + d - d * v + d * v.ln() {
            return d * v;
        }
    }
}

/// Draws one sample from a symmetric Dirichlet distribution with
/// concentration `beta` over `k` categories.
///
/// This is the client-assignment distribution of the paper (Sec. V-A):
/// lower `beta` means higher label skew / data heterogeneity.
///
/// # Panics
///
/// Panics when `k == 0` or `beta <= 0`.
pub fn sample_dirichlet<R: Rng + ?Sized>(beta: f64, k: usize, rng: &mut R) -> Vec<f64> {
    assert!(k > 0, "dirichlet needs at least one category");
    assert!(beta > 0.0, "dirichlet concentration must be positive");
    let mut draws: Vec<f64> = (0..k).map(|_| sample_gamma(beta, rng)).collect();
    let sum: f64 = draws.iter().sum();
    if sum <= 0.0 {
        // Numerically degenerate (possible for tiny beta): fall back to a
        // single random winner, the limit of Dirichlet as beta -> 0.
        let winner = rng.gen_range(0..k);
        draws.iter_mut().for_each(|d| *d = 0.0);
        draws[winner] = 1.0;
        return draws;
    }
    draws.iter_mut().for_each(|d| *d /= sum);
    draws
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn gamma_mean_matches_shape() {
        let mut rng = StdRng::seed_from_u64(0);
        for &shape in &[0.3f64, 1.0, 2.5, 8.0] {
            let n = 4000;
            let mean: f64 = (0..n).map(|_| sample_gamma(shape, &mut rng)).sum::<f64>() / n as f64;
            assert!(
                (mean - shape).abs() < 0.15 * shape.max(1.0),
                "shape {shape}: mean {mean}"
            );
        }
    }

    #[test]
    fn gamma_is_positive() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..500 {
            assert!(sample_gamma(0.1, &mut rng) > 0.0);
        }
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn gamma_rejects_nonpositive_shape() {
        let mut rng = StdRng::seed_from_u64(0);
        let _ = sample_gamma(0.0, &mut rng);
    }

    #[test]
    fn dirichlet_sums_to_one() {
        let mut rng = StdRng::seed_from_u64(2);
        for &beta in &[0.1f64, 0.5, 0.9, 5.0] {
            let p = sample_dirichlet(beta, 10, &mut rng);
            assert_eq!(p.len(), 10);
            let s: f64 = p.iter().sum();
            assert!((s - 1.0).abs() < 1e-9);
            assert!(p.iter().all(|&x| x >= 0.0));
        }
    }

    #[test]
    fn low_beta_is_more_skewed_than_high_beta() {
        // Measure the mean max-probability over many draws: it must be
        // larger for beta = 0.1 (heterogeneous) than beta = 5 (homogeneous).
        let mut rng = StdRng::seed_from_u64(3);
        let mean_max = |beta: f64, rng: &mut StdRng| -> f64 {
            (0..300)
                .map(|_| {
                    sample_dirichlet(beta, 10, rng)
                        .into_iter()
                        .fold(0.0f64, f64::max)
                })
                .sum::<f64>()
                / 300.0
        };
        let skewed = mean_max(0.1, &mut rng);
        let flat = mean_max(5.0, &mut rng);
        assert!(skewed > flat + 0.2, "skewed {skewed} vs flat {flat}");
    }
}
