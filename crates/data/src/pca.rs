//! 2-D principal component analysis by power iteration with deflation.
//!
//! The paper's Fig. 4 visualizes ZKA-R vs ZKA-G synthetic-data diversity
//! with UMAP; any variance-preserving linear projection exhibits the same
//! variance gap, so this reproduction uses PCA (see DESIGN.md §3).

/// Projects `rows` (each of dimension `dim`) onto their first two principal
/// components. Returns the projected `(x, y)` coordinates, one per row.
///
/// Uses mean-centering, then power iteration on the implicit covariance
/// (never materializing the `dim × dim` matrix), with deflation for the
/// second component.
///
/// # Panics
///
/// Panics when rows have inconsistent lengths or `rows` is empty.
pub fn pca_2d(rows: &[Vec<f32>]) -> Vec<(f32, f32)> {
    assert!(!rows.is_empty(), "pca of zero rows");
    let dim = rows[0].len();
    assert!(
        rows.iter().all(|r| r.len() == dim),
        "inconsistent row lengths"
    );
    let n = rows.len();

    // Mean-center.
    let mut mean = vec![0.0f32; dim];
    for r in rows {
        for (m, &v) in mean.iter_mut().zip(r) {
            *m += v;
        }
    }
    for m in &mut mean {
        *m /= n as f32;
    }
    let centered: Vec<Vec<f32>> = rows
        .iter()
        .map(|r| r.iter().zip(&mean).map(|(v, m)| v - m).collect())
        .collect();

    let pc1 = power_iterate(&centered, None);
    let pc2 = power_iterate(&centered, Some(&pc1));

    centered
        .iter()
        .map(|r| {
            let x: f32 = r.iter().zip(&pc1).map(|(a, b)| a * b).sum();
            let y: f32 = r.iter().zip(&pc2).map(|(a, b)| a * b).sum();
            (x, y)
        })
        .collect()
}

/// Power iteration for the leading eigenvector of `Xᵀ X / n`, with optional
/// deflation against a previous (unit) component.
fn power_iterate(centered: &[Vec<f32>], deflate: Option<&[f32]>) -> Vec<f32> {
    let dim = centered[0].len();
    // Deterministic pseudo-random start.
    let mut v: Vec<f32> = (0..dim)
        .map(|i| ((i as f32 * 12.9898).sin() * 43758.547).fract() - 0.5)
        .collect();
    normalize(&mut v);
    for _ in 0..60 {
        if let Some(d) = deflate {
            project_out(&mut v, d);
        }
        // w = Xᵀ (X v)
        let mut w = vec![0.0f32; dim];
        for r in centered {
            let s: f32 = r.iter().zip(&v).map(|(a, b)| a * b).sum();
            for (wv, &rv) in w.iter_mut().zip(r) {
                *wv += s * rv;
            }
        }
        if let Some(d) = deflate {
            project_out(&mut w, d);
        }
        // fabcheck::allow(unordered_float_reduction): serial squared-norm accumulation in slice order
        let norm: f32 = w.iter().map(|x| x * x).sum::<f32>().sqrt();
        if norm < 1e-12 {
            break; // Degenerate direction (e.g. all rows identical).
        }
        for (vv, wv) in v.iter_mut().zip(&w) {
            *vv = wv / norm;
        }
    }
    v
}

fn normalize(v: &mut [f32]) {
    // fabcheck::allow(unordered_float_reduction): serial squared-norm accumulation in slice order
    let n: f32 = v.iter().map(|x| x * x).sum::<f32>().sqrt();
    if n > 1e-12 {
        for x in v.iter_mut() {
            *x /= n;
        }
    }
}

fn project_out(v: &mut [f32], d: &[f32]) {
    let s: f32 = v.iter().zip(d).map(|(a, b)| a * b).sum();
    for (vv, &dv) in v.iter_mut().zip(d) {
        *vv -= s * dv;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn recovers_dominant_axis() {
        // Points spread along axis 0 with small noise on axis 1: PC1 scores
        // must carry far more variance than PC2 scores.
        let rows: Vec<Vec<f32>> = (0..40)
            .map(|i| {
                let t = i as f32 - 20.0;
                vec![t, 0.01 * (i as f32 * 0.7).sin(), 0.0]
            })
            .collect();
        let proj = pca_2d(&rows);
        let var = |sel: fn(&(f32, f32)) -> f32| -> f32 {
            let m: f32 = proj.iter().map(sel).sum::<f32>() / proj.len() as f32;
            proj.iter().map(|p| (sel(p) - m).powi(2)).sum::<f32>() / proj.len() as f32
        };
        let v1 = var(|p| p.0);
        let v2 = var(|p| p.1);
        assert!(v1 > 100.0 * v2.max(1e-9), "v1 {v1} vs v2 {v2}");
    }

    #[test]
    fn projection_preserves_relative_spread() {
        // A wide cloud must project to higher total variance than a tight one.
        let wide: Vec<Vec<f32>> = (0..30)
            .map(|i| {
                vec![
                    (i as f32 * 1.7).sin() * 10.0,
                    (i as f32 * 0.9).cos() * 10.0,
                    i as f32,
                ]
            })
            .collect();
        let tight: Vec<Vec<f32>> = (0..30)
            .map(|i| vec![(i as f32 * 1.7).sin() * 0.1, 0.0, 0.0])
            .collect();
        let spread = |rows: &[Vec<f32>]| -> f32 {
            let p = pca_2d(rows);
            let mx: f32 = p.iter().map(|q| q.0).sum::<f32>() / p.len() as f32;
            let my: f32 = p.iter().map(|q| q.1).sum::<f32>() / p.len() as f32;
            p.iter()
                .map(|q| (q.0 - mx).powi(2) + (q.1 - my).powi(2))
                .sum::<f32>()
                / p.len() as f32
        };
        assert!(spread(&wide) > 10.0 * spread(&tight));
    }

    #[test]
    fn identical_rows_project_to_one_point() {
        let rows = vec![vec![1.0, 2.0, 3.0]; 5];
        let proj = pca_2d(&rows);
        for (x, y) in proj {
            assert!(x.abs() < 1e-5 && y.abs() < 1e-5);
        }
    }

    #[test]
    #[should_panic(expected = "zero rows")]
    fn rejects_empty_input() {
        let _ = pca_2d(&[]);
    }
}
