//! Dirichlet label-skew partitioning (Sec. V-A of the paper).
//!
//! For every class, a proportion vector over the clients is drawn from a
//! symmetric Dirichlet with concentration `beta`, and the class's samples
//! are dealt out according to it. Lower `beta` ⇒ fewer clients own most of
//! a class ⇒ higher heterogeneity.

use crate::Dataset;
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;
use std::fmt;

/// Error returned by [`dirichlet_partition`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PartitionError {
    /// `num_clients` was zero.
    NoClients,
    /// `beta` was not strictly positive.
    NonPositiveBeta,
}

impl fmt::Display for PartitionError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PartitionError::NoClients => write!(f, "cannot partition over zero clients"),
            PartitionError::NonPositiveBeta => write!(f, "dirichlet beta must be positive"),
        }
    }
}

impl std::error::Error for PartitionError {}

/// Partitions `dataset` over `num_clients` clients with label skew governed
/// by the Dirichlet concentration `beta` (paper notation; higher `beta` =
/// less heterogeneity). Returns one index list per client; every sample is
/// assigned to exactly one client. Clients may receive zero samples under
/// extreme skew — callers must tolerate empty shards.
///
/// # Errors
///
/// Returns [`PartitionError`] for zero clients or non-positive `beta`.
pub fn dirichlet_partition(
    dataset: &Dataset,
    num_clients: usize,
    beta: f64,
    seed: u64,
) -> Result<Vec<Vec<usize>>, PartitionError> {
    if num_clients == 0 {
        return Err(PartitionError::NoClients);
    }
    if beta <= 0.0 {
        return Err(PartitionError::NonPositiveBeta);
    }
    let mut rng = StdRng::seed_from_u64(seed);
    let mut shards: Vec<Vec<usize>> = vec![Vec::new(); num_clients];
    for class in 0..dataset.num_classes() {
        let mut members: Vec<usize> = dataset
            .labels()
            .iter()
            .enumerate()
            .filter(|(_, &l)| l == class)
            .map(|(i, _)| i)
            .collect();
        members.shuffle(&mut rng);
        let props = crate::sample_dirichlet(beta, num_clients, &mut rng);
        // Cumulative split points over the class's members.
        let n = members.len();
        let mut start = 0usize;
        let mut acc = 0.0f64;
        for (client, &p) in props.iter().enumerate() {
            acc += p;
            let end = if client + 1 == num_clients {
                n
            } else {
                (acc * n as f64).round() as usize
            };
            let end = end.clamp(start, n);
            shards[client].extend_from_slice(&members[start..end]);
            start = end;
        }
    }
    Ok(shards)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::SynthSpec;

    fn dataset(n: usize) -> Dataset {
        Dataset::synthesize(&SynthSpec::fashion_like(), n, 11)
    }

    #[test]
    fn partition_is_exhaustive_and_disjoint() {
        let d = dataset(500);
        let shards = dirichlet_partition(&d, 20, 0.5, 3).unwrap();
        assert_eq!(shards.len(), 20);
        let mut seen = vec![false; d.len()];
        for shard in &shards {
            for &i in shard {
                assert!(!seen[i], "sample {i} assigned twice");
                seen[i] = true;
            }
        }
        assert!(seen.iter().all(|&s| s), "not all samples assigned");
    }

    #[test]
    fn partition_is_deterministic_in_seed() {
        let d = dataset(300);
        let a = dirichlet_partition(&d, 10, 0.5, 7).unwrap();
        let b = dirichlet_partition(&d, 10, 0.5, 7).unwrap();
        assert_eq!(a, b);
        let c = dirichlet_partition(&d, 10, 0.5, 8).unwrap();
        assert_ne!(a, c);
    }

    #[test]
    fn low_beta_produces_more_skew() {
        // Skew metric: mean over clients of (max class share within client).
        let d = dataset(2000);
        let skew_of = |beta: f64| -> f64 {
            let shards = dirichlet_partition(&d, 10, beta, 5).unwrap();
            let mut total = 0.0;
            let mut counted = 0usize;
            for shard in &shards {
                if shard.len() < 10 {
                    continue;
                }
                let mut hist = vec![0usize; d.num_classes()];
                for &i in shard {
                    hist[d.labels()[i]] += 1;
                }
                let max = *hist.iter().max().unwrap() as f64;
                total += max / shard.len() as f64;
                counted += 1;
            }
            total / counted.max(1) as f64
        };
        let hetero = skew_of(0.1);
        let homo = skew_of(5.0);
        assert!(hetero > homo + 0.1, "hetero {hetero} vs homo {homo}");
    }

    #[test]
    fn errors_on_degenerate_input() {
        let d = dataset(10);
        assert_eq!(
            dirichlet_partition(&d, 0, 0.5, 0),
            Err(PartitionError::NoClients)
        );
        assert_eq!(
            dirichlet_partition(&d, 5, 0.0, 0),
            Err(PartitionError::NonPositiveBeta)
        );
    }
}
