//! Tiny image export: write `[C, H, W]` tensors as binary PGM (grayscale)
//! or PPM (RGB) so the fabricated images of the attacks can be inspected
//! with any image viewer (used by `examples/synthetic_data.rs` and the
//! Fig. 4 pipeline for qualitative checks).

use fabflip_tensor::Tensor;
use std::io::{self, Write};
use std::path::Path;

/// Writes a single image tensor (`[C, H, W]` or `[1, C, H, W]`, values in
/// `[0, 1]`) as PGM (1 channel) or PPM (3 channels).
///
/// # Errors
///
/// Returns an I/O error on write failure, or `InvalidInput` for shapes that
/// are not 1- or 3-channel images.
pub fn save_image<P: AsRef<Path>>(img: &Tensor, path: P) -> io::Result<()> {
    let shape = img.shape();
    let (c, h, w) = match shape.len() {
        3 => (shape[0], shape[1], shape[2]),
        4 if shape[0] == 1 => (shape[1], shape[2], shape[3]),
        _ => {
            return Err(io::Error::new(
                io::ErrorKind::InvalidInput,
                format!("expected [C,H,W] or [1,C,H,W], got {shape:?}"),
            ))
        }
    };
    let mut out = Vec::new();
    match c {
        1 => {
            out.extend_from_slice(format!("P5\n{w} {h}\n255\n").as_bytes());
            for &v in img.data().iter().take(h * w) {
                out.push((v.clamp(0.0, 1.0) * 255.0).round() as u8);
            }
        }
        3 => {
            out.extend_from_slice(format!("P6\n{w} {h}\n255\n").as_bytes());
            let plane = h * w;
            for i in 0..plane {
                for ch in 0..3 {
                    let v = img.data()[ch * plane + i];
                    out.push((v.clamp(0.0, 1.0) * 255.0).round() as u8);
                }
            }
        }
        other => {
            return Err(io::Error::new(
                io::ErrorKind::InvalidInput,
                format!("{other} channels not supported (1 or 3)"),
            ))
        }
    }
    let mut f = std::fs::File::create(path)?;
    f.write_all(&out)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmp(name: &str) -> std::path::PathBuf {
        std::env::temp_dir().join(format!("fabflip-io-{}-{name}", std::process::id()))
    }

    #[test]
    fn writes_valid_pgm_header_and_payload() {
        let img = Tensor::from_vec(vec![1, 2, 2], vec![0.0, 0.5, 1.0, 0.25]).unwrap();
        let path = tmp("a.pgm");
        save_image(&img, &path).unwrap();
        let bytes = std::fs::read(&path).unwrap();
        assert!(bytes.starts_with(b"P5\n2 2\n255\n"));
        assert_eq!(bytes.len(), b"P5\n2 2\n255\n".len() + 4);
        assert_eq!(bytes[bytes.len() - 4], 0); // 0.0
        assert_eq!(bytes[bytes.len() - 1], 64); // 0.25
        std::fs::remove_file(path).ok();
    }

    #[test]
    fn writes_ppm_for_rgb_and_accepts_batched_shape() {
        let img = Tensor::full(vec![1, 3, 2, 2], 1.0);
        let path = tmp("b.ppm");
        save_image(&img, &path).unwrap();
        let bytes = std::fs::read(&path).unwrap();
        assert!(bytes.starts_with(b"P6\n2 2\n255\n"));
        assert!(bytes.ends_with(&[255u8; 12]));
        std::fs::remove_file(path).ok();
    }

    #[test]
    fn rejects_unsupported_shapes() {
        let img = Tensor::zeros(vec![2, 2]);
        assert!(save_image(&img, tmp("c.pgm")).is_err());
        let img = Tensor::zeros(vec![4, 2, 2]);
        assert!(save_image(&img, tmp("d.pgm")).is_err());
        let img = Tensor::zeros(vec![2, 1, 2, 2]); // batch of 2
        assert!(save_image(&img, tmp("e.pgm")).is_err());
    }

    #[test]
    fn values_are_clamped() {
        let img = Tensor::from_vec(vec![1, 1, 2], vec![-1.0, 2.0]).unwrap();
        let path = tmp("f.pgm");
        save_image(&img, &path).unwrap();
        let bytes = std::fs::read(&path).unwrap();
        assert_eq!(&bytes[bytes.len() - 2..], &[0u8, 255u8]);
        std::fs::remove_file(path).ok();
    }
}
