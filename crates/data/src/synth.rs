//! Procedural image-classification tasks standing in for Fashion-MNIST and
//! CIFAR-10 (see crate docs and DESIGN.md §3 for the substitution argument).
//!
//! Each class `c` owns a deterministic *prototype* pattern — a mixture of
//! Gaussian blobs plus an oriented sinusoid, both seeded from `(seed, c)` —
//! and an instance is the prototype under a random translation plus pixel
//! noise. Difficulty is controlled by the noise level, translation range and
//! per-instance amplitude jitter.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Specification of a procedural dataset.
#[derive(Debug, Clone, PartialEq)]
pub struct SynthSpec {
    /// Number of channels (1 = grayscale, 3 = RGB).
    pub channels: usize,
    /// Image height in pixels.
    pub height: usize,
    /// Image width in pixels.
    pub width: usize,
    /// Number of classes `L`.
    pub num_classes: usize,
    /// Standard deviation of additive Gaussian pixel noise.
    pub noise_std: f32,
    /// Maximum absolute translation (pixels) applied per instance.
    pub max_shift: usize,
    /// Per-instance multiplicative amplitude jitter (0 = none).
    pub amplitude_jitter: f32,
    /// Human-readable task name used in reports.
    pub name: &'static str,
}

impl SynthSpec {
    /// The Fashion-MNIST stand-in: 28×28 grayscale, 10 classes, moderate
    /// noise — the 2-conv CNN reaches a high accuracy ceiling.
    pub fn fashion_like() -> SynthSpec {
        SynthSpec {
            channels: 1,
            height: 28,
            width: 28,
            num_classes: 10,
            noise_std: 0.45,
            max_shift: 2,
            amplitude_jitter: 0.35,
            name: "fashion",
        }
    }

    /// The CIFAR-10 stand-in: 32×32 RGB, 10 classes, heavy noise and
    /// stronger augmentation — the 6-conv CNN plateaus near half accuracy,
    /// and benign client updates are markedly more diverse (the property
    /// Sec. V-C attributes CIFAR-10's higher DPR to).
    pub fn cifar_like() -> SynthSpec {
        SynthSpec {
            channels: 3,
            height: 32,
            width: 32,
            num_classes: 10,
            noise_std: 0.8,
            max_shift: 5,
            amplitude_jitter: 0.7,
            name: "cifar",
        }
    }

    /// Flat length of one image.
    pub fn image_len(&self) -> usize {
        self.channels * self.height * self.width
    }

    /// Deterministic prototype pattern for class `label` under `seed`,
    /// flattened `[C, H, W]`, values in `[0, 1]`.
    ///
    /// # Panics
    ///
    /// Panics when `label >= num_classes`.
    pub fn prototype(&self, label: usize, seed: u64) -> Vec<f32> {
        assert!(label < self.num_classes, "label {label} out of range");
        let mut rng =
            StdRng::seed_from_u64(seed ^ (0x9E37_79B9_7F4A_7C15u64.wrapping_mul(label as u64 + 1)));
        let (c, h, w) = (self.channels, self.height, self.width);
        let mut img = vec![0.0f32; c * h * w];
        for ch in 0..c {
            // Three Gaussian blobs.
            let blobs: Vec<(f32, f32, f32, f32)> = (0..3)
                .map(|_| {
                    (
                        rng.gen_range(0.2..0.8) * h as f32,
                        rng.gen_range(0.2..0.8) * w as f32,
                        rng.gen_range(0.08..0.25) * h as f32,
                        rng.gen_range(0.5..1.0),
                    )
                })
                .collect();
            // One oriented sinusoid.
            let freq = rng.gen_range(0.15..0.55);
            let phase = rng.gen_range(0.0..std::f32::consts::TAU);
            let angle = rng.gen_range(0.0..std::f32::consts::PI);
            let (ca, sa) = (angle.cos(), angle.sin());
            for y in 0..h {
                for x in 0..w {
                    let mut v = 0.0f32;
                    for &(by, bx, sigma, amp) in &blobs {
                        let d2 = (y as f32 - by).powi(2) + (x as f32 - bx).powi(2);
                        v += amp * (-d2 / (2.0 * sigma * sigma)).exp();
                    }
                    let t = ca * y as f32 + sa * x as f32;
                    v += 0.3 * (freq * t + phase).sin() + 0.3;
                    img[(ch * h + y) * w + x] = v;
                }
            }
        }
        // Normalize to [0, 1].
        let (mut lo, mut hi) = (f32::INFINITY, f32::NEG_INFINITY);
        for &v in &img {
            lo = lo.min(v);
            hi = hi.max(v);
        }
        let span = (hi - lo).max(1e-6);
        for v in &mut img {
            *v = (*v - lo) / span;
        }
        img
    }

    /// Synthesizes one instance of class `label`: prototype → random shift →
    /// amplitude jitter → additive noise → clamp to `[0, 1]`.
    pub fn instance<R: Rng + ?Sized>(&self, prototype: &[f32], rng: &mut R) -> Vec<f32> {
        let (c, h, w) = (self.channels, self.height, self.width);
        debug_assert_eq!(prototype.len(), c * h * w);
        let s = self.max_shift as isize;
        let (dy, dx) = if s > 0 {
            (rng.gen_range(-s..=s), rng.gen_range(-s..=s))
        } else {
            (0, 0)
        };
        let gain = 1.0 + self.amplitude_jitter * rng.gen_range(-1.0f32..1.0);
        let mut out = vec![0.0f32; c * h * w];
        for ch in 0..c {
            for y in 0..h {
                let sy = y as isize - dy;
                for x in 0..w {
                    let sx = x as isize - dx;
                    let base = if sy >= 0 && sy < h as isize && sx >= 0 && sx < w as isize {
                        prototype[(ch * h + sy as usize) * w + sx as usize]
                    } else {
                        0.5
                    };
                    // Box–Muller noise, one draw per pixel (cos branch only).
                    let u1: f32 = rng.gen_range(f32::EPSILON..1.0);
                    let u2: f32 = rng.gen_range(0.0..1.0);
                    let n = (-2.0 * u1.ln()).sqrt() * (std::f32::consts::TAU * u2).cos();
                    out[(ch * h + y) * w + x] = (gain * base + self.noise_std * n).clamp(0.0, 1.0);
                }
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn prototypes_are_deterministic_and_distinct() {
        let spec = SynthSpec::fashion_like();
        let p0a = spec.prototype(0, 42);
        let p0b = spec.prototype(0, 42);
        assert_eq!(p0a, p0b);
        let p1 = spec.prototype(1, 42);
        let diff: f32 = p0a.iter().zip(&p1).map(|(a, b)| (a - b).abs()).sum();
        assert!(diff > 10.0, "classes too similar: {diff}");
        // Different dataset seed gives different prototypes.
        let p0c = spec.prototype(0, 43);
        assert_ne!(p0a, p0c);
    }

    #[test]
    fn prototypes_are_normalized() {
        let spec = SynthSpec::cifar_like();
        for label in 0..10 {
            let p = spec.prototype(label, 7);
            assert!(p.iter().all(|&v| (0.0..=1.0).contains(&v)));
        }
    }

    #[test]
    fn instances_vary_but_stay_in_range() {
        use rand::rngs::StdRng;
        use rand::SeedableRng;
        let spec = SynthSpec::fashion_like();
        let proto = spec.prototype(3, 1);
        let mut rng = StdRng::seed_from_u64(5);
        let a = spec.instance(&proto, &mut rng);
        let b = spec.instance(&proto, &mut rng);
        assert_ne!(a, b);
        assert!(a.iter().all(|&v| (0.0..=1.0).contains(&v)));
        // Instance still correlates with its prototype.
        let corr: f32 = a.iter().zip(&proto).map(|(x, p)| x * p).sum();
        let anti: f32 = a.iter().zip(proto.iter().rev()).map(|(x, p)| x * p).sum();
        assert!(corr > 0.0 && corr > anti * 0.5);
    }

    #[test]
    fn cifar_like_is_noisier_than_fashion_like() {
        assert!(SynthSpec::cifar_like().noise_std > SynthSpec::fashion_like().noise_std);
        assert!(SynthSpec::cifar_like().max_shift > SynthSpec::fashion_like().max_shift);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn prototype_rejects_bad_label() {
        let _ = SynthSpec::fashion_like().prototype(10, 0);
    }
}
