use crate::SynthSpec;
use fabflip_tensor::Tensor;
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::{Rng, SeedableRng};

/// An in-memory labelled image dataset.
///
/// Images are stored as one `[N, C, H, W]` tensor; labels as `Vec<usize>`.
/// Client shards created by [`crate::dirichlet_partition`] are views by
/// index into a shared dataset.
#[derive(Debug, Clone)]
pub struct Dataset {
    images: Tensor,
    labels: Vec<usize>,
    num_classes: usize,
}

/// One training batch: images plus aligned labels.
#[derive(Debug, Clone)]
pub struct Batch {
    /// Images `[B, C, H, W]`.
    pub images: Tensor,
    /// Labels, one per image.
    pub labels: Vec<usize>,
}

impl Dataset {
    /// Builds a dataset from an image tensor and labels.
    ///
    /// # Panics
    ///
    /// Panics when the batch axis disagrees with `labels.len()` or a label
    /// is out of range.
    pub fn new(images: Tensor, labels: Vec<usize>, num_classes: usize) -> Dataset {
        assert_eq!(
            images.shape()[0],
            labels.len(),
            "image/label count mismatch"
        );
        assert!(
            labels.iter().all(|&l| l < num_classes),
            "label out of range"
        );
        Dataset {
            images,
            labels,
            num_classes,
        }
    }

    /// Synthesizes `n` i.i.d. samples (labels uniform over classes) from a
    /// [`SynthSpec`], deterministically in `seed`.
    ///
    /// The class prototypes *and* the instance noise both derive from
    /// `seed`, so two datasets with different seeds are different tasks.
    /// For matching train/test splits use [`Dataset::synthesize_split`].
    pub fn synthesize(spec: &SynthSpec, n: usize, seed: u64) -> Dataset {
        Dataset::synthesize_split(spec, n, seed, seed)
    }

    /// Synthesizes `n` samples of the task defined by `task_seed` (which
    /// fixes the class prototypes), drawing instance noise from
    /// `sample_seed`. Train and test splits of the same task share
    /// `task_seed` and differ in `sample_seed`.
    pub fn synthesize_split(
        spec: &SynthSpec,
        n: usize,
        task_seed: u64,
        sample_seed: u64,
    ) -> Dataset {
        let mut rng = StdRng::seed_from_u64(sample_seed);
        let protos: Vec<Vec<f32>> = (0..spec.num_classes)
            .map(|c| spec.prototype(c, task_seed))
            .collect();
        let mut data = Vec::with_capacity(n * spec.image_len());
        let mut labels = Vec::with_capacity(n);
        for _ in 0..n {
            let label = rng.gen_range(0..spec.num_classes);
            data.extend_from_slice(&spec.instance(&protos[label], &mut rng));
            labels.push(label);
        }
        let images = Tensor::from_vec(vec![n, spec.channels, spec.height, spec.width], data)
            .expect("internal geometry is consistent");
        Dataset {
            images,
            labels,
            num_classes: spec.num_classes,
        }
    }

    /// Number of samples.
    pub fn len(&self) -> usize {
        self.labels.len()
    }

    /// Whether the dataset is empty.
    pub fn is_empty(&self) -> bool {
        self.labels.is_empty()
    }

    /// Number of classes.
    pub fn num_classes(&self) -> usize {
        self.num_classes
    }

    /// Per-sample image geometry `(C, H, W)`.
    pub fn image_shape(&self) -> (usize, usize, usize) {
        let s = self.images.shape();
        (s[1], s[2], s[3])
    }

    /// The full image tensor `[N, C, H, W]`.
    pub fn images(&self) -> &Tensor {
        &self.images
    }

    /// All labels.
    pub fn labels(&self) -> &[usize] {
        &self.labels
    }

    /// Gathers the samples at `indices` into a [`Batch`].
    ///
    /// # Panics
    ///
    /// Panics when an index is out of range.
    pub fn gather(&self, indices: &[usize]) -> Batch {
        let (c, h, w) = self.image_shape();
        let sample_len = c * h * w;
        let mut data = Vec::with_capacity(indices.len() * sample_len);
        let mut labels = Vec::with_capacity(indices.len());
        for &i in indices {
            assert!(i < self.len(), "index {i} out of range");
            data.extend_from_slice(&self.images.data()[i * sample_len..(i + 1) * sample_len]);
            labels.push(self.labels[i]);
        }
        let images = Tensor::from_vec(vec![indices.len(), c, h, w], data)
            .expect("internal geometry is consistent");
        Batch { images, labels }
    }

    /// Splits `indices` into shuffled mini-batches of at most `batch_size`.
    ///
    /// # Panics
    ///
    /// Panics when `batch_size == 0`.
    pub fn shuffled_batches(
        &self,
        indices: &[usize],
        batch_size: usize,
        rng: &mut StdRng,
    ) -> Vec<Batch> {
        assert!(batch_size > 0, "batch size must be positive");
        let mut order = indices.to_vec();
        order.shuffle(rng);
        order
            .chunks(batch_size)
            .map(|chunk| self.gather(chunk))
            .collect()
    }

    /// Per-class sample counts (length = `num_classes`).
    pub fn class_histogram(&self) -> Vec<usize> {
        let mut h = vec![0usize; self.num_classes];
        for &l in &self.labels {
            h[l] += 1;
        }
        h
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn synthesize_is_deterministic() {
        let spec = SynthSpec::fashion_like();
        let a = Dataset::synthesize(&spec, 50, 9);
        let b = Dataset::synthesize(&spec, 50, 9);
        assert_eq!(a.labels(), b.labels());
        assert_eq!(a.images().data(), b.images().data());
        let c = Dataset::synthesize(&spec, 50, 10);
        assert_ne!(a.images().data(), c.images().data());
    }

    #[test]
    fn class_histogram_roughly_uniform() {
        let spec = SynthSpec::fashion_like();
        let d = Dataset::synthesize(&spec, 2000, 1);
        let h = d.class_histogram();
        assert_eq!(h.iter().sum::<usize>(), 2000);
        for &count in &h {
            assert!(count > 120 && count < 280, "histogram {h:?}");
        }
    }

    #[test]
    fn gather_aligns_images_and_labels() {
        let spec = SynthSpec::fashion_like();
        let d = Dataset::synthesize(&spec, 20, 2);
        let b = d.gather(&[3, 7, 3]);
        assert_eq!(b.images.shape()[0], 3);
        assert_eq!(b.labels[0], d.labels()[3]);
        assert_eq!(b.labels[1], d.labels()[7]);
        assert_eq!(b.labels[0], b.labels[2]);
        let one = d.images().slice_batch(3).unwrap();
        assert_eq!(&b.images.data()[..one.len()], one.data());
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn gather_rejects_bad_index() {
        let spec = SynthSpec::fashion_like();
        let d = Dataset::synthesize(&spec, 5, 3);
        let _ = d.gather(&[5]);
    }

    #[test]
    fn shuffled_batches_cover_all_indices() {
        let spec = SynthSpec::fashion_like();
        let d = Dataset::synthesize(&spec, 23, 4);
        let idx: Vec<usize> = (0..23).collect();
        let mut rng = StdRng::seed_from_u64(0);
        let batches = d.shuffled_batches(&idx, 8, &mut rng);
        assert_eq!(batches.len(), 3);
        let total: usize = batches.iter().map(|b| b.labels.len()).sum();
        assert_eq!(total, 23);
    }
}
