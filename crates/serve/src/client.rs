//! Client-side connection handling: reconnect, deterministic jittered
//! exponential backoff, and at-least-once submission with server-side
//! dedup (DESIGN.md §4g).
//!
//! The client's durability contract is *retry until durable*: a
//! submission is finished only when the server answers `Accepted`
//! (persisted now) or `Duplicate` (persisted earlier; the first ack was
//! lost), or the round has moved on (`WrongRound`). Everything else —
//! connection resets, checksum teardown, timeouts, `BUSY` backpressure —
//! feeds the retry loop. Backoff jitter comes from the same pure `mix64`
//! as the chaos schedule, seeded per policy: no RNG object, no entropy,
//! reproducible run-to-run.

use crate::chaos::mix64;
use crate::wire::{self, Frame, StatusOk, Submit, Verdict, WireError};
use std::net::{SocketAddr, TcpStream};
use std::time::Duration;

/// Client-side failure after retries are exhausted.
#[derive(Debug)]
pub enum ClientError {
    /// The operation kept failing for `attempts` tries; `last` is the
    /// final failure.
    Exhausted {
        /// Attempts made.
        attempts: u32,
        /// The last error observed.
        last: String,
    },
    /// The server answered with a frame that makes no sense for the
    /// request — a protocol bug, not a transient fault.
    Protocol(String),
}

impl std::fmt::Display for ClientError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ClientError::Exhausted { attempts, last } => {
                write!(f, "gave up after {attempts} attempts: {last}")
            }
            ClientError::Protocol(what) => write!(f, "protocol violation: {what}"),
        }
    }
}

impl std::error::Error for ClientError {}

/// Jittered exponential backoff, deterministic per `(seed, stream, attempt)`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RetryPolicy {
    /// First-retry delay in milliseconds (doubles each attempt).
    pub base_ms: u64,
    /// Upper bound on any single delay.
    pub cap_ms: u64,
    /// Attempts before giving up.
    pub max_attempts: u32,
    /// Jitter seed.
    pub seed: u64,
}

impl Default for RetryPolicy {
    fn default() -> RetryPolicy {
        RetryPolicy {
            base_ms: 5,
            cap_ms: 400,
            // Generous: must span a server kill + restart window.
            max_attempts: 600,
            seed: 0x5E1_7BAC0FF,
        }
    }
}

impl RetryPolicy {
    /// The delay before retry number `attempt` (0-based) of logical
    /// stream `stream`: exponential growth capped at `cap_ms`, with the
    /// upper half jittered so concurrent clients do not retry in
    /// lockstep. Pure — same inputs, same delay.
    pub fn backoff_ms(&self, stream: u64, attempt: u32) -> u64 {
        let exp = self
            .base_ms
            .saturating_mul(1u64 << attempt.min(16))
            .min(self.cap_ms)
            .max(1);
        let half = exp / 2;
        half + mix64(self.seed, stream, attempt as u64) % (exp - half + 1)
    }
}

/// Counters of the repair work a client had to do — the soak test's
/// evidence that chaos was actually exercised.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ClientStats {
    /// Reconnections after an i/o or wire failure.
    pub reconnects: u64,
    /// `BUSY` replies honoured with a backoff.
    pub busy: u64,
    /// Total retries across all operations.
    pub retries: u64,
}

/// One client connection to the aggregation server, with transparent
/// reconnect-and-retry.
pub struct ServeClient {
    addr: SocketAddr,
    io_timeout: Duration,
    max_frame: usize,
    policy: RetryPolicy,
    stream: Option<TcpStream>,
    /// Repair-work counters (reset at construction only).
    pub stats: ClientStats,
}

impl ServeClient {
    /// Creates a client for the server at `addr`. No connection is made
    /// until the first request.
    pub fn new(
        addr: SocketAddr,
        io_timeout: Duration,
        max_frame: usize,
        policy: RetryPolicy,
    ) -> ServeClient {
        ServeClient {
            addr,
            io_timeout,
            max_frame,
            policy,
            stream: None,
            stats: ClientStats::default(),
        }
    }

    fn connect(&mut self) -> Result<(), WireError> {
        let stream = TcpStream::connect_timeout(&self.addr, self.io_timeout)?;
        stream.set_read_timeout(Some(self.io_timeout))?;
        stream.set_write_timeout(Some(self.io_timeout))?;
        stream.set_nodelay(true)?;
        self.stream = Some(stream);
        // Handshake: verifies protocol compatibility before any payload.
        match self.call_once(&Frame::Hello)? {
            Frame::HelloOk { .. } => Ok(()),
            other => {
                self.stream = None;
                Err(unexpected(&other))
            }
        }
    }

    /// One request/response on the current connection; drops the
    /// connection on any failure so the next call reconnects.
    fn call_once(&mut self, req: &Frame) -> Result<Frame, WireError> {
        let max_frame = self.max_frame;
        let Some(stream) = self.stream.as_mut() else {
            return Err(WireError::Io(std::io::Error::new(
                std::io::ErrorKind::NotConnected,
                "not connected",
            )));
        };
        let result =
            wire::write_frame(stream, req).and_then(|()| wire::read_frame(stream, max_frame));
        if result.is_err() {
            self.stream = None;
        }
        result
    }

    /// One request/response, reconnecting first if needed.
    fn call(&mut self, req: &Frame) -> Result<Frame, WireError> {
        if self.stream.is_none() {
            self.stats.reconnects += 1;
            self.connect()?;
        }
        self.call_once(req)
    }

    /// Runs `req` with full retry: reconnects on transport failures and
    /// honours `BUSY` backpressure, sleeping the policy's jittered
    /// backoff between attempts. `stream` keys the jitter sequence.
    /// Returns the first non-`BUSY` response.
    fn call_retry(&mut self, req: &Frame, stream: u64) -> Result<Frame, ClientError> {
        let mut last = String::new();
        for attempt in 0..self.policy.max_attempts {
            if attempt > 0 {
                self.stats.retries += 1;
                std::thread::sleep(Duration::from_millis(
                    self.policy.backoff_ms(stream, attempt - 1),
                ));
            }
            match self.call(req) {
                Ok(Frame::Busy { retry_ms }) => {
                    self.stats.busy += 1;
                    last = format!("server busy (hint {retry_ms}ms)");
                    // The server's hint is a floor under the policy's own
                    // backoff for the next attempt.
                    std::thread::sleep(Duration::from_millis(retry_ms as u64));
                }
                Ok(frame) => return Ok(frame),
                Err(e) => last = e.to_string(),
            }
        }
        Err(ClientError::Exhausted {
            attempts: self.policy.max_attempts,
            last,
        })
    }

    /// Polls server status; with `include_model` the reply carries the
    /// global (and previous) model bits.
    ///
    /// # Errors
    ///
    /// [`ClientError::Exhausted`] after the policy's attempts.
    pub fn status(&mut self, include_model: bool) -> Result<StatusOk, ClientError> {
        match self.call_retry(&Frame::Status { include_model }, 0)? {
            Frame::StatusOk(st) => Ok(*st),
            other => Err(ClientError::Protocol(format!(
                "status answered with {}",
                frame_name(&other)
            ))),
        }
    }

    /// Submits one update until it is durable or moot. `Accepted` and
    /// `Duplicate` both mean the submission is in the server's persisted
    /// log; `WrongRound` means the round closed without it;
    /// `Quarantined` means the server validator rejected the decoded
    /// payload (retrying identical bytes cannot help).
    ///
    /// # Errors
    ///
    /// [`ClientError::Exhausted`] after the policy's attempts.
    pub fn submit(&mut self, sub: &Submit) -> Result<(Verdict, u64), ClientError> {
        let stream = (sub.round << 20) | sub.seq as u64;
        match self.call_retry(&Frame::Submit(sub.clone()), stream)? {
            Frame::SubmitOk { verdict, round } => Ok((verdict, round)),
            other => Err(ClientError::Protocol(format!(
                "submit answered with {}",
                frame_name(&other)
            ))),
        }
    }

    /// Announces the round's cohort; returns the server's current round.
    ///
    /// # Errors
    ///
    /// [`ClientError::Exhausted`] after the policy's attempts.
    pub fn meta(
        &mut self,
        round: u64,
        expected: u32,
        offline: u32,
        diverged: u32,
        silent: u32,
    ) -> Result<u64, ClientError> {
        let req = Frame::Meta {
            round,
            expected,
            offline,
            diverged,
            silent,
        };
        match self.call_retry(&req, round ^ 0x4E7A)? {
            Frame::MetaOk { round } => Ok(round),
            other => Err(ClientError::Protocol(format!(
                "meta answered with {}",
                frame_name(&other)
            ))),
        }
    }

    /// Requests server shutdown (best-effort, no retry: a dead server is
    /// already shut down).
    pub fn shutdown_server(&mut self) {
        let _ = self.call(&Frame::Shutdown);
        self.stream = None;
    }
}

fn unexpected(frame: &Frame) -> WireError {
    let _ = frame;
    WireError::Malformed("unexpected response frame")
}

fn frame_name(f: &Frame) -> &'static str {
    match f {
        Frame::Hello => "HELLO",
        Frame::HelloOk { .. } => "HELLO_OK",
        Frame::Submit(_) => "SUBMIT",
        Frame::SubmitOk { .. } => "SUBMIT_OK",
        Frame::Busy { .. } => "BUSY",
        Frame::Meta { .. } => "META",
        Frame::MetaOk { .. } => "META_OK",
        Frame::Status { .. } => "STATUS",
        Frame::StatusOk(_) => "STATUS_OK",
        Frame::Shutdown => "SHUTDOWN",
        Frame::ShutdownOk => "SHUTDOWN_OK",
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn backoff_grows_caps_and_jitters_deterministically() {
        let p = RetryPolicy {
            base_ms: 10,
            cap_ms: 200,
            max_attempts: 10,
            seed: 5,
        };
        for stream in 0..4u64 {
            for attempt in 0..12u32 {
                let d = p.backoff_ms(stream, attempt);
                assert_eq!(d, p.backoff_ms(stream, attempt), "pure");
                let exp = (10u64 << attempt.min(16)).min(200);
                assert!(
                    d >= exp / 2 && d <= exp,
                    "delay {d} outside [{}, {exp}]",
                    exp / 2
                );
            }
        }
        // Different streams jitter differently somewhere.
        assert!((0..10u32).any(|a| p.backoff_ms(1, a) != p.backoff_ms(2, a)));
    }

    #[test]
    fn backoff_never_overflows_on_huge_attempts() {
        let p = RetryPolicy::default();
        assert!(p.backoff_ms(0, u32::MAX) <= p.cap_ms);
        let tiny = RetryPolicy {
            base_ms: 0,
            cap_ms: 0,
            max_attempts: 1,
            seed: 0,
        };
        // Degenerate policy still returns a sane (≥ 0, tiny) delay.
        assert!(tiny.backoff_ms(3, 7) <= 1);
    }
}
