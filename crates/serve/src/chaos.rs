//! Deterministic wire-level chaos proxy (DESIGN.md §4g).
//!
//! A loopback TCP proxy that sits between load-generator clients and the
//! aggregation server and injects faults at exact frame boundaries:
//! per-frame delay, one-byte payload corruption (caught by the frame
//! checksum at the receiving end), mid-frame truncation followed by
//! connection teardown, and whole-connection drops.
//!
//! Which fault (if any) strikes a given frame is a *pure function* of
//! `(seed, connection id, direction, frame index)` — no RNG object, no
//! wall-clock input — so a chaos schedule is reproducible run-to-run for
//! the same connection/frame arrival structure. (Retries change frame
//! indices, so chaos runs are not bitwise-scripted end-to-end; what *is*
//! guaranteed, and what the soak test pins, is that the aggregation
//! transcript survives any schedule bitwise-unchanged, because every
//! injected fault is repaired by checksums, teardown and client retry.)

use crate::wire;
use std::io::Write;
use std::net::{Shutdown, SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Duration;

/// Which way a frame is travelling through the proxy.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Direction {
    /// Client → server.
    ClientToServer,
    /// Server → client.
    ServerToClient,
}

impl Direction {
    fn tag(self) -> u64 {
        match self {
            Direction::ClientToServer => 0,
            Direction::ServerToClient => 1,
        }
    }
}

/// The fault injected into one forwarded frame.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ChaosAction {
    /// Forward untouched.
    Forward,
    /// Sleep this many milliseconds, then forward.
    Delay(u64),
    /// Flip one payload byte before forwarding (the receiver's checksum
    /// catches it and tears the connection down).
    Corrupt,
    /// Forward only a prefix of the frame, then tear the connection down
    /// (a mid-frame crash of the link).
    Truncate,
    /// Tear the connection down without forwarding.
    Drop,
}

/// Per-frame fault rates in parts-per-million, plus the schedule seed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ChaosProfile {
    /// Schedule seed: same seed, same per-(conn, direction, frame) faults.
    pub seed: u64,
    /// Delay probability (ppm).
    pub delay_ppm: u32,
    /// Injected delay in milliseconds.
    pub delay_ms: u64,
    /// One-byte payload corruption probability (ppm).
    pub corrupt_ppm: u32,
    /// Mid-frame truncation probability (ppm).
    pub truncate_ppm: u32,
    /// Connection-drop probability (ppm).
    pub drop_ppm: u32,
}

impl ChaosProfile {
    /// No faults at all: the proxy is a transparent frame forwarder.
    pub fn off(seed: u64) -> ChaosProfile {
        ChaosProfile {
            seed,
            delay_ppm: 0,
            delay_ms: 0,
            corrupt_ppm: 0,
            truncate_ppm: 0,
            drop_ppm: 0,
        }
    }

    /// The soak-test profile: ~13% of frames suffer *something* — enough
    /// to exercise every repair path many times per round without
    /// stalling the run.
    pub fn light(seed: u64) -> ChaosProfile {
        ChaosProfile {
            seed,
            delay_ppm: 60_000,
            delay_ms: 3,
            corrupt_ppm: 30_000,
            truncate_ppm: 20_000,
            drop_ppm: 20_000,
        }
    }

    /// `true` when every fault rate is zero.
    pub fn is_off(&self) -> bool {
        self.delay_ppm == 0 && self.corrupt_ppm == 0 && self.truncate_ppm == 0 && self.drop_ppm == 0
    }

    /// The fault for frame number `frame` of connection `conn` in
    /// direction `dir` — pure, so unit tests can assert the schedule and
    /// reruns see the same faults at the same frame positions.
    pub fn action(&self, conn: u64, dir: Direction, frame: u64) -> ChaosAction {
        let draw = mix64(
            self.seed ^ 0xC4A0_5C11A0_u64,
            conn.wrapping_mul(3).wrapping_add(dir.tag()),
            frame,
        );
        let r = (draw % 1_000_000) as u32;
        let mut edge = self.drop_ppm;
        if r < edge {
            return ChaosAction::Drop;
        }
        edge += self.truncate_ppm;
        if r < edge {
            return ChaosAction::Truncate;
        }
        edge += self.corrupt_ppm;
        if r < edge {
            return ChaosAction::Corrupt;
        }
        edge += self.delay_ppm;
        if r < edge {
            return ChaosAction::Delay(self.delay_ms);
        }
        ChaosAction::Forward
    }
}

/// SplitMix64-style finalizer over three words: the chaos schedule's (and
/// the client backoff jitter's) only source of "randomness".
pub(crate) fn mix64(a: u64, b: u64, c: u64) -> u64 {
    let mut z = a
        .wrapping_mul(0x9E37_79B9_7F4A_7C15)
        .wrapping_add(b.wrapping_mul(0xBF58_476D_1CE4_E5B9))
        .wrapping_add(c.wrapping_mul(0x94D0_49BB_1331_11EB));
    z ^= z >> 30;
    z = z.wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z ^= z >> 27;
    z = z.wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^= z >> 31;
    z
}

/// Counts of injected faults, for soak-test vacuity checks and bench
/// reporting.
#[derive(Debug, Default)]
pub struct ChaosStats {
    /// Frames forwarded untouched.
    pub forwarded: AtomicU64,
    /// Frames delayed.
    pub delayed: AtomicU64,
    /// Frames corrupted.
    pub corrupted: AtomicU64,
    /// Frames truncated (connection then torn down).
    pub truncated: AtomicU64,
    /// Connections dropped by the drop action.
    pub dropped: AtomicU64,
    /// Connections proxied in total.
    pub connections: AtomicU64,
}

impl ChaosStats {
    /// Total injected faults (everything except clean forwards).
    pub fn injected(&self) -> u64 {
        self.delayed.load(Ordering::Relaxed)
            + self.corrupted.load(Ordering::Relaxed)
            + self.truncated.load(Ordering::Relaxed)
            + self.dropped.load(Ordering::Relaxed)
    }
}

/// A running chaos proxy. Dropping it (or calling
/// [`ChaosProxy::shutdown`]) stops the accept loop and tears down every
/// live proxied connection.
pub struct ChaosProxy {
    addr: SocketAddr,
    stats: Arc<ChaosStats>,
    stop: Arc<AtomicBool>,
    live: Arc<Mutex<Vec<TcpStream>>>,
    accept_thread: Option<std::thread::JoinHandle<()>>,
}

impl ChaosProxy {
    /// Starts a proxy on an ephemeral loopback port, forwarding to
    /// `upstream` under `profile`.
    ///
    /// # Errors
    ///
    /// Propagates listener-creation failures.
    pub fn spawn(upstream: SocketAddr, profile: ChaosProfile) -> std::io::Result<ChaosProxy> {
        let listener = TcpListener::bind((std::net::Ipv4Addr::LOCALHOST, 0))?;
        let addr = listener.local_addr()?;
        listener.set_nonblocking(true)?;
        let stats = Arc::new(ChaosStats::default());
        let stop = Arc::new(AtomicBool::new(false));
        let live: Arc<Mutex<Vec<TcpStream>>> = Arc::new(Mutex::new(Vec::new()));

        let t_stats = Arc::clone(&stats);
        let t_stop = Arc::clone(&stop);
        let t_live = Arc::clone(&live);
        let accept_thread = std::thread::spawn(move || {
            let mut conn_id = 0u64;
            while !t_stop.load(Ordering::Relaxed) {
                match listener.accept() {
                    Ok((client, _)) => {
                        conn_id += 1;
                        t_stats.connections.fetch_add(1, Ordering::Relaxed);
                        proxy_connection(
                            client, upstream, conn_id, profile, &t_stats, &t_live, &t_stop,
                        );
                    }
                    Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                        std::thread::sleep(Duration::from_millis(2));
                    }
                    Err(_) => break,
                }
            }
        });

        Ok(ChaosProxy {
            addr,
            stats,
            stop,
            live,
            accept_thread: Some(accept_thread),
        })
    }

    /// The proxy's listen address — point clients here.
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Fault-injection counters.
    pub fn stats(&self) -> &ChaosStats {
        &self.stats
    }

    /// Stops accepting and tears down all live proxied connections.
    pub fn shutdown(&mut self) {
        self.stop.store(true, Ordering::Relaxed);
        if let Ok(mut streams) = self.live.lock() {
            for s in streams.drain(..) {
                let _ = s.shutdown(Shutdown::Both);
            }
        }
        if let Some(t) = self.accept_thread.take() {
            let _ = t.join();
        }
    }
}

impl Drop for ChaosProxy {
    fn drop(&mut self) {
        self.shutdown();
    }
}

fn register(live: &Mutex<Vec<TcpStream>>, s: &TcpStream) {
    if let (Ok(mut l), Ok(c)) = (live.lock(), s.try_clone()) {
        l.push(c);
    }
}

#[allow(clippy::too_many_arguments)]
fn proxy_connection(
    client: TcpStream,
    upstream: SocketAddr,
    conn_id: u64,
    profile: ChaosProfile,
    stats: &Arc<ChaosStats>,
    live: &Arc<Mutex<Vec<TcpStream>>>,
    stop: &Arc<AtomicBool>,
) {
    // A connect failure (server down mid-kill) simply drops the client
    // connection; the client's retry loop absorbs it.
    let Ok(server) = TcpStream::connect_timeout(&upstream, Duration::from_secs(5)) else {
        let _ = client.shutdown(Shutdown::Both);
        return;
    };
    let _ = client.set_nodelay(true);
    let _ = server.set_nodelay(true);
    // Pump reads block at most this long, so shutdown() never waits on an
    // idle peer for more than one tick.
    let _ = client.set_read_timeout(Some(Duration::from_millis(250)));
    let _ = server.set_read_timeout(Some(Duration::from_millis(250)));
    register(live, &client);
    register(live, &server);

    for dir in [Direction::ClientToServer, Direction::ServerToClient] {
        let (Ok(src), Ok(dst)) = (client.try_clone(), server.try_clone()) else {
            let _ = client.shutdown(Shutdown::Both);
            let _ = server.shutdown(Shutdown::Both);
            return;
        };
        let (src, dst) = match dir {
            Direction::ClientToServer => (src, dst),
            Direction::ServerToClient => (dst, src),
        };
        let stats = Arc::clone(stats);
        let stop = Arc::clone(stop);
        std::thread::spawn(move || pump(src, dst, conn_id, dir, profile, &stats, &stop));
    }
}

/// Forwards frames from `src` to `dst`, injecting the profile's faults.
/// Exits (tearing both ends down) on any fatal fault, read error, or
/// proxy shutdown.
fn pump(
    mut src: TcpStream,
    mut dst: TcpStream,
    conn_id: u64,
    dir: Direction,
    profile: ChaosProfile,
    stats: &ChaosStats,
    stop: &AtomicBool,
) {
    let teardown = |src: &TcpStream, dst: &TcpStream| {
        let _ = src.shutdown(Shutdown::Both);
        let _ = dst.shutdown(Shutdown::Both);
    };
    let mut frame_idx = 0u64;
    loop {
        if stop.load(Ordering::Relaxed) {
            teardown(&src, &dst);
            return;
        }
        let raw = match wire::read_raw_frame(&mut src, wire::DEFAULT_MAX_FRAME) {
            Ok(raw) => raw,
            Err(e) if e.is_timeout() => continue, // idle link: poll the stop flag
            Err(_) => {
                teardown(&src, &dst);
                return;
            }
        };
        let action = profile.action(conn_id, dir, frame_idx);
        frame_idx += 1;
        let ok = match action {
            ChaosAction::Forward => {
                stats.forwarded.fetch_add(1, Ordering::Relaxed);
                dst.write_all(&raw.bytes).is_ok()
            }
            ChaosAction::Delay(ms) => {
                stats.delayed.fetch_add(1, Ordering::Relaxed);
                std::thread::sleep(Duration::from_millis(ms));
                dst.write_all(&raw.bytes).is_ok()
            }
            ChaosAction::Corrupt => {
                stats.corrupted.fetch_add(1, Ordering::Relaxed);
                let mut bytes = raw.bytes;
                let range = wire::HEADER_LEN..bytes.len();
                // Flip one byte: in the payload when there is one, else in
                // the checksum field — either way the receiver rejects it.
                let at = if range.is_empty() {
                    wire::HEADER_LEN - 1
                } else {
                    range.start + (mix64(profile.seed, conn_id, frame_idx) as usize) % range.len()
                };
                bytes[at] ^= 0x20;
                dst.write_all(&bytes).is_ok()
            }
            ChaosAction::Truncate => {
                stats.truncated.fetch_add(1, Ordering::Relaxed);
                let cut = raw.bytes.len() / 2;
                let _ = dst.write_all(&raw.bytes[..cut]);
                teardown(&src, &dst);
                return;
            }
            ChaosAction::Drop => {
                stats.dropped.fetch_add(1, Ordering::Relaxed);
                teardown(&src, &dst);
                return;
            }
        };
        if !ok {
            teardown(&src, &dst);
            return;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn schedule_is_a_pure_function_of_its_inputs() {
        let p = ChaosProfile::light(42);
        for conn in 0..5u64 {
            for dir in [Direction::ClientToServer, Direction::ServerToClient] {
                for frame in 0..200u64 {
                    assert_eq!(p.action(conn, dir, frame), p.action(conn, dir, frame));
                }
            }
        }
        // Different seeds give different schedules (overwhelmingly).
        let q = ChaosProfile::light(43);
        let differs = (0..2000u64).any(|f| {
            p.action(0, Direction::ClientToServer, f) != q.action(0, Direction::ClientToServer, f)
        });
        assert!(differs);
    }

    #[test]
    fn light_profile_exercises_every_action() {
        let p = ChaosProfile::light(7);
        let mut seen = [false; 5];
        for conn in 0..4u64 {
            for frame in 0..3000u64 {
                let i = match p.action(conn, Direction::ClientToServer, frame) {
                    ChaosAction::Forward => 0,
                    ChaosAction::Delay(_) => 1,
                    ChaosAction::Corrupt => 2,
                    ChaosAction::Truncate => 3,
                    ChaosAction::Drop => 4,
                };
                seen[i] = true;
            }
        }
        assert_eq!(seen, [true; 5]);
    }

    #[test]
    fn off_profile_always_forwards() {
        let p = ChaosProfile::off(99);
        assert!(p.is_off());
        for frame in 0..5000u64 {
            assert_eq!(
                p.action(1, Direction::ServerToClient, frame),
                ChaosAction::Forward
            );
        }
    }

    #[test]
    fn fault_rates_roughly_match_ppm() {
        let p = ChaosProfile::light(3);
        let n = 100_000u64;
        let mut drops = 0u64;
        for frame in 0..n {
            if p.action(9, Direction::ClientToServer, frame) == ChaosAction::Drop {
                drops += 1;
            }
        }
        let ppm = drops * 1_000_000 / n;
        assert!(
            (10_000..40_000).contains(&ppm),
            "drop rate {ppm}ppm far from configured {}ppm",
            p.drop_ppm
        );
    }
}
