//! The crash-tolerant TCP aggregation server (DESIGN.md §4g).
//!
//! A thread-per-core `std::net` shell around the pure round engine of
//! `fabflip_fl::round`: acceptor/handler threads parse and validate
//! frames, a single engine thread owns the [`ServerCore`] and the round's
//! write-ahead log, and every aggregation decision is a pure function of
//! the ordered, validated submission log — so a `kill -9` at any instant
//! resumes, from the checkpoint, to a bitwise-identical global model.
//!
//! Robustness mechanics:
//!
//! * **Durability before acknowledgement** — a submission is answered
//!   `Accepted` only after it is in the persisted checkpoint's in-flight
//!   log. A crash between enqueue and persist loses only submissions the
//!   client still owns (it never saw `Accepted`) and will retry; a crash
//!   after persist makes the retry a `Duplicate`. Either way the final
//!   log — sorted by canonical sequence number — is identical.
//! * **Bounded queues, explicit backpressure** — the handler→engine
//!   submission queue is bounded; when full, handlers answer `BUSY` with
//!   a retry hint instead of queueing unboundedly. The accept side is
//!   bounded by the worker count: each worker serves one connection at a
//!   time, and waiting connections sit in the OS backlog.
//! * **Deadlines with graceful degradation** — each round arms a
//!   deadline at its first event. If the full announced cohort arrives,
//!   the round closes exactly as the batch simulator would
//!   (`degrade = false`); if the deadline fires short, the round closes
//!   over the delivered cohort with `DefenseKind::for_cohort`
//!   degradation.
//! * **Poisoned connections never take down the round** — wire errors
//!   tear down that one connection; handler panics are caught and also
//!   only cost the connection. Round state lives in the engine thread.

use crate::wire::{self, Frame, StatusOk, Verdict};
use fabflip_fl::checkpoint::{self, Checkpoint, InflightSubmission};
use fabflip_fl::metrics::RoundRecord;
use fabflip_fl::round::{server_accepts, RoundInput, ServerCore};
use fabflip_fl::{FlConfig, FlError};
use fabflip_tensor::quant;
use std::collections::VecDeque;
use std::net::{Shutdown, SocketAddr, TcpListener, TcpStream};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Condvar, Mutex, MutexGuard};
use std::time::{Duration, Instant};

/// Server failure.
#[derive(Debug)]
pub enum ServeError {
    /// Invalid serving configuration.
    Config(String),
    /// Socket-level failure while starting up.
    Io(std::io::Error),
    /// A round failed to close (training/aggregation/checkpoint error).
    Fl(FlError),
}

impl std::fmt::Display for ServeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ServeError::Config(m) => write!(f, "config: {m}"),
            ServeError::Io(e) => write!(f, "i/o: {e}"),
            ServeError::Fl(e) => write!(f, "round engine: {e}"),
        }
    }
}

impl std::error::Error for ServeError {}

impl From<std::io::Error> for ServeError {
    fn from(e: std::io::Error) -> ServeError {
        ServeError::Io(e)
    }
}

impl From<FlError> for ServeError {
    fn from(e: FlError) -> ServeError {
        ServeError::Fl(e)
    }
}

/// How the server runs one FL deployment.
#[derive(Debug, Clone)]
pub struct ServeOptions {
    /// The experiment configuration. The fault plan must be inactive —
    /// the serve path's faults come from the real wire (and the chaos
    /// proxy), not the simulated transport.
    pub cfg: FlConfig,
    /// Bind address (`port 0` picks an ephemeral port).
    pub bind: SocketAddr,
    /// Checkpoint directory (the write-ahead log lives here too).
    pub ckpt_dir: PathBuf,
    /// Connection-handler threads (`0` = one per available core).
    pub workers: usize,
    /// Bound on the handler→engine submission queue; a full queue answers
    /// `BUSY`.
    pub queue_cap: usize,
    /// Per-round deadline, armed at the round's first event. When it
    /// fires with a short cohort the round closes degraded.
    pub deadline: Duration,
    /// Per-connection socket read/write timeout.
    pub io_timeout: Duration,
    /// Per-frame payload cap.
    pub max_frame: usize,
}

impl ServeOptions {
    /// Defaults tuned for loopback test deployments.
    pub fn new(cfg: FlConfig, ckpt_dir: impl Into<PathBuf>) -> ServeOptions {
        ServeOptions {
            cfg,
            bind: SocketAddr::from(([127, 0, 0, 1], 0)),
            ckpt_dir: ckpt_dir.into(),
            workers: 0,
            queue_cap: 16,
            deadline: Duration::from_secs(30),
            io_timeout: Duration::from_secs(10),
            max_frame: wire::DEFAULT_MAX_FRAME,
        }
    }
}

/// Reply slot a handler waits on while the engine makes its submission
/// durable.
struct Ack {
    slot: Mutex<Option<(Verdict, u64)>>,
    cv: Condvar,
}

impl Ack {
    fn new() -> Arc<Ack> {
        Arc::new(Ack {
            slot: Mutex::new(None),
            cv: Condvar::new(),
        })
    }

    fn set(&self, verdict: Verdict, round: u64) {
        if let Ok(mut s) = self.slot.lock() {
            *s = Some((verdict, round));
            self.cv.notify_all();
        }
    }

    fn wait(&self, timeout: Duration) -> Option<(Verdict, u64)> {
        let mut s = match self.slot.lock() {
            Ok(s) => s,
            Err(p) => p.into_inner(),
        };
        let deadline = Instant::now() + timeout;
        while s.is_none() {
            let now = Instant::now();
            if now >= deadline {
                return None;
            }
            s = match self.cv.wait_timeout(s, deadline - now) {
                Ok((g, _)) => g,
                Err(p) => p.into_inner().0,
            };
        }
        *s
    }
}

/// A validated submission handed from a handler to the engine.
struct SubmitJob {
    round: u64,
    seq: u32,
    client: u32,
    malicious: bool,
    weight: f32,
    payload: Vec<f32>,
    ack: Arc<Ack>,
}

/// One validated, persisted log entry of the round in progress.
struct LogEntry {
    seq: u32,
    client: u32,
    malicious: bool,
    weight: f32,
    payload: Vec<f32>,
}

/// The round's META announcement.
#[derive(Clone, Copy)]
struct MetaInfo {
    expected: u32,
    offline: u32,
    diverged: u32,
    silent: u32,
}

/// All mutable server state, owned by one mutex. Handlers take the lock
/// only for short validations and queue pushes; the engine thread drains
/// the queue, persists, and closes rounds.
struct Engine {
    core: ServerCore,
    cfg: FlConfig,
    fingerprint: String,
    ckpt_dir: PathBuf,
    dim: usize,
    round: usize,
    rounds: Vec<RoundRecord>,
    /// Sorted by `seq` (canonical order), deduped.
    log: Vec<LogEntry>,
    queue: VecDeque<SubmitJob>,
    meta: Option<MetaInfo>,
    quarantined: usize,
    deadline_at: Option<Instant>,
    done: bool,
    fatal: Option<String>,
}

impl Engine {
    fn seq_logged(&self, seq: u32) -> bool {
        self.log.binary_search_by_key(&seq, |e| e.seq).is_ok()
    }

    fn seq_pending(&self, seq: u32, round: u64) -> bool {
        self.queue.iter().any(|j| j.seq == seq && j.round == round)
    }

    /// Persists the full resumable state, including the round-in-progress
    /// write-ahead log.
    fn persist(&self) -> Result<(), FlError> {
        let ckpt = Checkpoint {
            version: checkpoint::CHECKPOINT_VERSION,
            fingerprint: self.fingerprint.clone(),
            next_round: self.round,
            global_bits: checkpoint::to_bits(self.core.global()),
            prev_global_bits: self.core.prev_global().map(checkpoint::to_bits),
            rounds: self.rounds.clone(),
            pending: Vec::new(),
            // The attack's cross-round state lives in the load
            // generator's ClientFleet, which survives server crashes; the
            // server checkpoint does not carry it.
            attack_state: Vec::new(),
            inflight: self
                .log
                .iter()
                .map(|e| InflightSubmission {
                    seq: e.seq,
                    client: e.client as usize,
                    malicious: e.malicious,
                    weight_bits: e.weight.to_bits(),
                    payload_bits: checkpoint::to_bits(&e.payload),
                })
                .collect(),
            inflight_meta: match self.meta {
                None => Vec::new(),
                Some(m) => vec![
                    m.expected as u64,
                    m.offline as u64,
                    m.diverged as u64,
                    m.silent as u64,
                    0, // deadline_fired: a fired deadline closes the round at once
                ],
            },
            checksum: 0,
        }
        .seal();
        checkpoint::save(&self.ckpt_dir, &ckpt)
    }

    /// Closes the round in progress over the current log.
    fn close_round(&mut self, degrade: bool) -> Result<(), FlError> {
        let meta = self.meta;
        let input = RoundInput {
            updates: self.log.iter().map(|e| e.payload.clone()).collect(),
            weights: self.log.iter().map(|e| e.weight).collect(),
            malicious_indices: self
                .log
                .iter()
                .enumerate()
                .filter(|(_, e)| e.malicious)
                .map(|(i, _)| i)
                .collect(),
            degrade,
            quarantined: self.quarantined,
            offline: meta.map_or(0, |m| m.offline as usize),
            diverged: meta.map_or(0, |m| m.diverged as usize),
            silent: meta.map_or(0, |m| m.silent as usize),
            ..RoundInput::default()
        };
        let round = self.round;
        let record = self.core.close_round(round, input)?;
        self.rounds.push(record);
        self.round += 1;
        self.log.clear();
        self.meta = None;
        self.quarantined = 0;
        self.deadline_at = None;
        self.done = self.round >= self.cfg.rounds;
        self.persist()
    }
}

struct Inner {
    state: Mutex<Engine>,
    /// Wakes the engine on queue pushes, META arrival, and stop.
    cv: Condvar,
    stop: AtomicBool,
    queue_cap: usize,
    deadline: Duration,
    io_timeout: Duration,
    max_frame: usize,
}

impl Inner {
    fn lock(&self) -> MutexGuard<'_, Engine> {
        match self.state.lock() {
            Ok(g) => g,
            Err(p) => p.into_inner(),
        }
    }

    fn request_stop(&self) {
        self.stop.store(true, Ordering::SeqCst);
        self.cv.notify_all();
    }
}

/// A running aggregation server.
pub struct ServeHandle {
    addr: SocketAddr,
    inner: Arc<Inner>,
    threads: Vec<std::thread::JoinHandle<()>>,
}

impl ServeHandle {
    /// The bound listen address.
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Requests shutdown (idempotent; also triggered by a SHUTDOWN
    /// frame).
    pub fn stop(&self) {
        self.inner.request_stop();
    }

    /// Rounds closed so far (records in order).
    pub fn records(&self) -> Vec<RoundRecord> {
        self.inner.lock().rounds.clone()
    }

    /// Waits for shutdown and returns the closed-round records.
    ///
    /// # Errors
    ///
    /// [`ServeError::Fl`] when a round failed to close; the server stops
    /// serving at the failure point (state up to the last durable
    /// checkpoint is preserved for a restart).
    pub fn join(mut self) -> Result<Vec<RoundRecord>, ServeError> {
        for t in self.threads.drain(..) {
            let _ = t.join();
        }
        let st = self.inner.lock();
        match &st.fatal {
            Some(m) => Err(ServeError::Fl(FlError::Checkpoint(m.clone()))),
            None => Ok(st.rounds.clone()),
        }
    }
}

/// Starts the server: binds, recovers any checkpointed state (including a
/// mid-round write-ahead log), and spawns the engine and worker threads.
///
/// # Errors
///
/// [`ServeError::Config`] for an active fault plan or invalid config;
/// [`ServeError::Io`] on bind failure; [`ServeError::Fl`] when the
/// recovered checkpoint is unusable.
pub fn spawn(opts: ServeOptions) -> Result<ServeHandle, ServeError> {
    if opts.cfg.faults.is_active() {
        return Err(ServeError::Config(
            "serve requires an inactive fault plan: wire faults come from the network \
             (use the chaos proxy), not the simulated transport"
                .into(),
        ));
    }
    opts.cfg.validate().map_err(ServeError::Config)?;
    if opts.queue_cap == 0 {
        return Err(ServeError::Config("queue_cap must be positive".into()));
    }

    let mut core = ServerCore::new(&opts.cfg)?;
    let fingerprint = checkpoint::fingerprint(&opts.cfg);
    let mut round = 0usize;
    let mut rounds: Vec<RoundRecord> = Vec::new();
    let mut log: Vec<LogEntry> = Vec::new();
    let mut meta: Option<MetaInfo> = None;

    // Crash recovery: the checkpoint carries both the last closed-round
    // state and the in-flight log of the round that was in progress.
    if let Some(c) = checkpoint::load(&opts.ckpt_dir, &opts.cfg) {
        core.restore(
            checkpoint::from_bits(&c.global_bits),
            c.prev_global_bits.as_deref().map(checkpoint::from_bits),
        )?;
        round = c.next_round;
        rounds = c.rounds;
        log = c
            .inflight
            .iter()
            .map(|s| LogEntry {
                seq: s.seq,
                client: s.client as u32,
                malicious: s.malicious,
                weight: f32::from_bits(s.weight_bits),
                payload: checkpoint::from_bits(&s.payload_bits),
            })
            .collect();
        log.sort_by_key(|e| e.seq);
        if c.inflight_meta.len() >= 4 {
            meta = Some(MetaInfo {
                expected: c.inflight_meta[0] as u32,
                offline: c.inflight_meta[1] as u32,
                diverged: c.inflight_meta[2] as u32,
                silent: c.inflight_meta[3] as u32,
            });
        }
    }

    let listener = TcpListener::bind(opts.bind)?;
    let addr = listener.local_addr()?;
    listener.set_nonblocking(true)?;

    let dim = core.dim();
    let done = round >= opts.cfg.rounds;
    // Re-arm the deadline on mid-round recovery so a cohort that died
    // with the server still degrades instead of stalling forever.
    let deadline_at = (!log.is_empty() || meta.is_some()).then(|| Instant::now() + opts.deadline);
    let engine = Engine {
        core,
        cfg: opts.cfg.clone(),
        fingerprint,
        ckpt_dir: opts.ckpt_dir.clone(),
        dim,
        round,
        rounds,
        log,
        queue: VecDeque::new(),
        meta,
        quarantined: 0,
        deadline_at,
        done,
        fatal: None,
    };

    let inner = Arc::new(Inner {
        state: Mutex::new(engine),
        cv: Condvar::new(),
        stop: AtomicBool::new(false),
        queue_cap: opts.queue_cap,
        deadline: opts.deadline,
        io_timeout: opts.io_timeout,
        max_frame: opts.max_frame,
    });

    let workers = if opts.workers > 0 {
        opts.workers
    } else {
        std::thread::available_parallelism().map_or(2, |n| n.get())
    };

    let mut threads = Vec::with_capacity(workers + 1);
    let engine_inner = Arc::clone(&inner);
    threads.push(std::thread::spawn(move || engine_loop(&engine_inner)));
    for _ in 0..workers {
        let w_inner = Arc::clone(&inner);
        let w_listener = listener.try_clone()?;
        threads.push(std::thread::spawn(move || {
            accept_loop(&w_inner, &w_listener)
        }));
    }

    Ok(ServeHandle {
        addr,
        inner,
        threads,
    })
}

/// Worker thread: accept one connection at a time, serve it to
/// completion. A panic while serving (a handler bug, never an expected
/// path) is caught so the worker — and the round — survive it.
fn accept_loop(inner: &Arc<Inner>, listener: &TcpListener) {
    while !inner.stop.load(Ordering::SeqCst) {
        match listener.accept() {
            Ok((stream, _)) => {
                let conn_inner = Arc::clone(inner);
                let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(move || {
                    handle_conn(&conn_inner, stream);
                }));
                // A poisoned connection (panic included) costs only
                // itself.
                drop(result);
            }
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                std::thread::sleep(Duration::from_millis(2));
            }
            Err(_) => break,
        }
    }
}

/// Serves one connection until EOF, error, timeout, or shutdown.
fn handle_conn(inner: &Arc<Inner>, stream: TcpStream) {
    if stream.set_read_timeout(Some(inner.io_timeout)).is_err()
        || stream.set_write_timeout(Some(inner.io_timeout)).is_err()
    {
        return;
    }
    let _ = stream.set_nodelay(true);
    let mut stream = stream;
    loop {
        if inner.stop.load(Ordering::SeqCst) {
            let _ = stream.shutdown(Shutdown::Both);
            return;
        }
        let frame = match wire::read_frame(&mut stream, inner.max_frame) {
            Ok(f) => f,
            // Any wire failure (timeout, checksum, truncation, garbage):
            // this connection is poisoned; tear it down — the round and
            // every other connection are untouched.
            Err(_) => {
                let _ = stream.shutdown(Shutdown::Both);
                return;
            }
        };
        let reply = match frame {
            Frame::Hello => {
                let st = inner.lock();
                Frame::HelloOk {
                    dim: st.dim as u32,
                    round: st.round as u64,
                    done: st.done,
                }
            }
            Frame::Submit(sub) => handle_submit(inner, sub),
            Frame::Meta {
                round,
                expected,
                offline,
                diverged,
                silent,
            } => {
                let mut st = inner.lock();
                if !st.done && round == st.round as u64 && st.meta.is_none() {
                    st.meta = Some(MetaInfo {
                        expected,
                        offline,
                        diverged,
                        silent,
                    });
                    if st.deadline_at.is_none() {
                        st.deadline_at = Some(Instant::now() + inner.deadline);
                    }
                    inner.cv.notify_all();
                }
                Frame::MetaOk {
                    round: st.round as u64,
                }
            }
            Frame::Status { include_model } => {
                let st = inner.lock();
                Frame::StatusOk(Box::new(StatusOk {
                    round: st.round as u64,
                    done: st.done,
                    logged: st.log.len() as u32,
                    expected: st.meta.map(|m| m.expected),
                    global_bits: include_model.then(|| checkpoint::to_bits(st.core.global())),
                    prev_global_bits: if include_model {
                        st.core.prev_global().map(checkpoint::to_bits)
                    } else {
                        None
                    },
                }))
            }
            Frame::Shutdown => {
                let _ = wire::write_frame(&mut stream, &Frame::ShutdownOk);
                inner.request_stop();
                let _ = stream.shutdown(Shutdown::Both);
                return;
            }
            // Server-to-client frames arriving at the server: protocol
            // violation; poisoned connection.
            _ => {
                let _ = stream.shutdown(Shutdown::Both);
                return;
            }
        };
        if wire::write_frame(&mut stream, &reply).is_err() {
            let _ = stream.shutdown(Shutdown::Both);
            return;
        }
    }
}

/// Validates one submission and hands it to the engine, waiting for the
/// durability acknowledgement.
fn handle_submit(inner: &Arc<Inner>, sub: wire::Submit) -> Frame {
    // Decode outside the lock: it is the submission's only O(d) work.
    let payload = quant::decode(&sub.payload);
    let ack = Ack::new();
    {
        let mut st = inner.lock();
        let round = st.round as u64;
        if st.done || sub.round != round {
            return Frame::SubmitOk {
                verdict: Verdict::WrongRound,
                round,
            };
        }
        if st.seq_logged(sub.seq) {
            return Frame::SubmitOk {
                verdict: Verdict::Duplicate,
                round,
            };
        }
        if st.seq_pending(sub.seq, sub.round) {
            // Queued but not yet durable: only the persisted log may
            // answer `Duplicate` (the client is allowed to forget a
            // submission on that answer), so a concurrent retry backs
            // off instead.
            return Frame::Busy {
                retry_ms: busy_hint_ms(inner),
            };
        }
        if !server_accepts(&payload, st.dim) {
            st.quarantined += 1;
            return Frame::SubmitOk {
                verdict: Verdict::Quarantined,
                round,
            };
        }
        if st.queue.len() >= inner.queue_cap {
            // Explicit backpressure: the client backs off and retries.
            return Frame::Busy {
                retry_ms: busy_hint_ms(inner),
            };
        }
        st.queue.push_back(SubmitJob {
            round: sub.round,
            seq: sub.seq,
            client: sub.client,
            malicious: sub.malicious,
            weight: f32::from_bits(sub.weight_bits),
            payload,
            ack: Arc::clone(&ack),
        });
        if st.deadline_at.is_none() {
            st.deadline_at = Some(Instant::now() + inner.deadline);
        }
        inner.cv.notify_all();
    }
    // Durability gate: only the engine's persisted-log verdict is
    // acknowledged. If the engine cannot keep up, answer BUSY — the
    // retry will be deduped once the entry lands.
    match ack.wait(inner.io_timeout) {
        Some((verdict, round)) => Frame::SubmitOk { verdict, round },
        None => Frame::Busy {
            retry_ms: busy_hint_ms(inner),
        },
    }
}

fn busy_hint_ms(inner: &Inner) -> u32 {
    (inner.io_timeout.as_millis() / 4).clamp(5, 250) as u32
}

/// The engine thread: drains the submission queue (dedup → append to the
/// sorted log → persist → acknowledge), closes rounds when the announced
/// cohort is complete or the deadline fires, and exits on shutdown.
fn engine_loop(inner: &Arc<Inner>) {
    let mut st = inner.lock();
    loop {
        if inner.stop.load(Ordering::SeqCst) {
            // Unanswered handlers get BUSY via their ack timeout; every
            // accepted submission is already durable.
            return;
        }
        if let Some(job) = st.queue.pop_front() {
            let round = st.round as u64;
            let verdict = if st.done || job.round != round {
                Verdict::WrongRound
            } else if st.seq_logged(job.seq) {
                Verdict::Duplicate
            } else {
                let at = st
                    .log
                    .binary_search_by_key(&job.seq, |e| e.seq)
                    .unwrap_or_else(|i| i);
                st.log.insert(
                    at,
                    LogEntry {
                        seq: job.seq,
                        client: job.client,
                        malicious: job.malicious,
                        weight: job.weight,
                        payload: job.payload,
                    },
                );
                match st.persist() {
                    Ok(()) => Verdict::Accepted,
                    Err(_) => {
                        // Durability failed: withdraw the entry and leave
                        // the ack unanswered — the handler times out into
                        // BUSY and the client retries. Answering anything
                        // durable-sounding here would lose the submission.
                        if let Ok(i) = st.log.binary_search_by_key(&job.seq, |e| e.seq) {
                            st.log.remove(i);
                        }
                        continue;
                    }
                }
            };
            job.ack.set(verdict, st.round as u64);
            continue;
        }

        // Queue drained: close if the cohort is complete or overdue.
        if !st.done {
            if let Some(m) = st.meta {
                if st.log.len() >= m.expected as usize {
                    if let Err(e) = st.close_round(false) {
                        st.fatal = Some(e.to_string());
                        inner.request_stop();
                        return;
                    }
                    continue;
                }
            }
            if let Some(t) = st.deadline_at {
                let now = Instant::now();
                if now >= t {
                    // Deadline fired with a short (or unannounced)
                    // cohort: close degraded over what was delivered.
                    if let Err(e) = st.close_round(true) {
                        st.fatal = Some(e.to_string());
                        inner.request_stop();
                        return;
                    }
                    continue;
                }
                let (g, _) = match inner.cv.wait_timeout(st, t - now) {
                    Ok(r) => r,
                    Err(p) => p.into_inner(),
                };
                st = g;
                continue;
            }
        }
        // Idle (no deadline armed, or all rounds done): wait for work.
        // The periodic timeout keeps the stop flag polled even if a
        // notification is missed.
        let (g, _) = match inner.cv.wait_timeout(st, Duration::from_millis(100)) {
            Ok(r) => r,
            Err(p) => p.into_inner(),
        };
        st = g;
    }
}
