//! The length-prefixed wire protocol of the aggregation server
//! (DESIGN.md §4g).
//!
//! Every frame is a fixed 20-byte header followed by `len` payload bytes,
//! all little-endian:
//!
//! ```text
//! magic: u32   version: u16   kind: u8   flags: u8   len: u32   checksum: u64
//! ```
//!
//! `checksum` is FNV-1a (64-bit) over the payload bytes, so a frame
//! corrupted in flight (the chaos proxy's corrupt action, a torn write)
//! is detected at the receiver and the connection is torn down — never
//! decoded into garbage state. `len` is validated against the receiver's
//! frame cap *before* the payload is read, bounding per-connection memory.
//!
//! Submission payloads cross the wire in the configured
//! [`fabflip_tensor::quant`] codec, so the server's decoded view is
//! bitwise the batch simulator's `roundtrip_in_place` view — the parity
//! anchor for the serve path.
//!
//! Encoding and decoding are pure functions of byte slices; only
//! [`read_frame`]/[`write_frame`] touch a socket.

use fabflip_tensor::quant::{Codec, Encoded, F16};
use std::io::{Read, Write};

/// Frame magic: rejects peers that are not speaking this protocol at all.
pub const MAGIC: u32 = 0xFABF_11B5;

/// Protocol version; bump on any incompatible frame-layout change.
pub const VERSION: u16 = 1;

/// Fixed header length in bytes.
pub const HEADER_LEN: usize = 20;

/// Default per-frame payload cap (16 MiB — comfortably above any model
/// this workspace trains, far below an allocation bomb).
pub const DEFAULT_MAX_FRAME: usize = 16 << 20;

/// Wire-level failure. Every variant except `Io` means the stream can no
/// longer be trusted to be frame-aligned: the connection must be torn
/// down, never resynchronized.
#[derive(Debug)]
pub enum WireError {
    /// Socket-level failure (includes read/write timeouts).
    Io(std::io::Error),
    /// Header magic mismatch: not this protocol.
    BadMagic(u32),
    /// Protocol version mismatch.
    BadVersion(u16),
    /// Declared payload length exceeds the receiver's frame cap.
    Oversize {
        /// Declared payload length.
        len: u32,
        /// The receiver's cap.
        max: usize,
    },
    /// Payload checksum mismatch: corrupted in flight.
    Checksum,
    /// Unknown frame kind byte.
    UnknownKind(u8),
    /// Payload too short / malformed for its declared kind.
    Malformed(&'static str),
}

impl std::fmt::Display for WireError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            WireError::Io(e) => write!(f, "i/o: {e}"),
            WireError::BadMagic(m) => write!(f, "bad magic {m:#010x}"),
            WireError::BadVersion(v) => write!(f, "unsupported protocol version {v}"),
            WireError::Oversize { len, max } => {
                write!(f, "frame of {len} bytes exceeds cap {max}")
            }
            WireError::Checksum => write!(f, "payload checksum mismatch"),
            WireError::UnknownKind(k) => write!(f, "unknown frame kind {k}"),
            WireError::Malformed(what) => write!(f, "malformed payload: {what}"),
        }
    }
}

impl std::error::Error for WireError {}

impl From<std::io::Error> for WireError {
    fn from(e: std::io::Error) -> WireError {
        WireError::Io(e)
    }
}

impl WireError {
    /// `true` when the failure is a socket timeout (the peer may simply be
    /// slow) rather than a protocol violation.
    pub fn is_timeout(&self) -> bool {
        matches!(self, WireError::Io(e) if matches!(
            e.kind(),
            std::io::ErrorKind::WouldBlock | std::io::ErrorKind::TimedOut
        ))
    }
}

/// FNV-1a (64-bit) over a byte slice — the frame payload checksum.
pub fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h = 0xCBF2_9CE4_8422_2325u64;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    h
}

/// The fate of one submission, as told to the submitting client.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Verdict {
    /// Validated, logged and *persisted* — the client may forget it.
    Accepted,
    /// Rejected by the server validator; retrying the same bytes is
    /// pointless.
    Quarantined,
    /// This sequence number is already in the persisted log (a retry of a
    /// submission whose first acknowledgement was lost). As durable as
    /// `Accepted`.
    Duplicate,
    /// The round has moved on; the submission no longer applies.
    WrongRound,
}

impl Verdict {
    fn code(self) -> u8 {
        match self {
            Verdict::Accepted => 0,
            Verdict::Quarantined => 1,
            Verdict::Duplicate => 2,
            Verdict::WrongRound => 3,
        }
    }

    fn from_code(c: u8) -> Result<Verdict, WireError> {
        match c {
            0 => Ok(Verdict::Accepted),
            1 => Ok(Verdict::Quarantined),
            2 => Ok(Verdict::Duplicate),
            3 => Ok(Verdict::WrongRound),
            _ => Err(WireError::Malformed("verdict code")),
        }
    }
}

/// One client update submission.
#[derive(Debug, Clone, PartialEq)]
pub struct Submit {
    /// The round this submission belongs to.
    pub round: u64,
    /// Canonical staging sequence number within the round — the server's
    /// dedup and ordering key.
    pub seq: u32,
    /// Submitting client id.
    pub client: u32,
    /// Whether this is one of the adversary's copies (ground truth for the
    /// DPR accounting, not a security boundary — the testbed's clients are
    /// cooperative about labels even when their *updates* are poisoned).
    pub malicious: bool,
    /// Aggregation weight as f32 bits.
    pub weight_bits: u32,
    /// The update payload in the configured transport codec.
    pub payload: Encoded,
}

/// Server status snapshot.
#[derive(Debug, Clone, PartialEq)]
pub struct StatusOk {
    /// The round currently in progress (= rounds closed so far).
    pub round: u64,
    /// All configured rounds have closed.
    pub done: bool,
    /// Validated submissions persisted for the round in progress.
    pub logged: u32,
    /// The round's announced cohort size, once its META arrived.
    pub expected: Option<u32>,
    /// Current global model (f32 bits), when requested.
    pub global_bits: Option<Vec<u32>>,
    /// Previous global model (f32 bits), when requested and present.
    pub prev_global_bits: Option<Vec<u32>>,
}

/// A decoded protocol frame.
#[derive(Debug, Clone, PartialEq)]
pub enum Frame {
    /// Client hello; the server answers with [`Frame::HelloOk`].
    Hello,
    /// Handshake reply: model dimension and round position.
    HelloOk {
        /// Model dimension `d`.
        dim: u32,
        /// Round currently in progress.
        round: u64,
        /// All rounds have closed.
        done: bool,
    },
    /// One update submission.
    Submit(Submit),
    /// Submission verdict.
    SubmitOk {
        /// The submission's fate.
        verdict: Verdict,
        /// The server's current round (lets a client detect advancement
        /// without a second round-trip).
        round: u64,
    },
    /// Explicit backpressure: the submission queue is full; retry after a
    /// jittered backoff of at least the hinted delay.
    Busy {
        /// Server-suggested minimum retry delay.
        retry_ms: u32,
    },
    /// The round's cohort announcement: how many submissions to expect and
    /// the client-side accounting of selected clients that never submit.
    Meta {
        /// The round being announced.
        round: u64,
        /// Staged submissions (the cohort size the server waits for).
        expected: u32,
        /// Selected clients with no local data.
        offline: u32,
        /// Benign clients whose local training went non-finite.
        diverged: u32,
        /// Selected malicious clients with nothing to submit.
        silent: u32,
    },
    /// META acknowledgement carrying the server's current round.
    MetaOk {
        /// The server's current round.
        round: u64,
    },
    /// Status poll.
    Status {
        /// Also return the global (and previous) model bits.
        include_model: bool,
    },
    /// Status reply.
    StatusOk(Box<StatusOk>),
    /// Graceful server shutdown request.
    Shutdown,
    /// Shutdown acknowledgement.
    ShutdownOk,
}

const K_HELLO: u8 = 1;
const K_HELLO_OK: u8 = 2;
const K_SUBMIT: u8 = 3;
const K_SUBMIT_OK: u8 = 4;
const K_BUSY: u8 = 5;
const K_META: u8 = 6;
const K_META_OK: u8 = 7;
const K_STATUS: u8 = 8;
const K_STATUS_OK: u8 = 9;
const K_SHUTDOWN: u8 = 10;
const K_SHUTDOWN_OK: u8 = 11;

/// Little-endian payload writer.
#[derive(Default)]
struct Enc(Vec<u8>);

impl Enc {
    fn u8(&mut self, v: u8) {
        self.0.push(v);
    }
    fn u32(&mut self, v: u32) {
        self.0.extend_from_slice(&v.to_le_bytes());
    }
    fn u64(&mut self, v: u64) {
        self.0.extend_from_slice(&v.to_le_bytes());
    }
    fn bits(&mut self, v: &[u32]) {
        self.u32(v.len() as u32);
        for &b in v {
            self.u32(b);
        }
    }
    fn opt_bits(&mut self, v: Option<&Vec<u32>>) {
        match v {
            None => self.u8(0),
            Some(bits) => {
                self.u8(1);
                self.bits(bits);
            }
        }
    }
}

/// Little-endian payload reader over a borrowed slice.
struct Dec<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Dec<'a> {
    fn new(buf: &'a [u8]) -> Dec<'a> {
        Dec { buf, pos: 0 }
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8], WireError> {
        let end = self
            .pos
            .checked_add(n)
            .ok_or(WireError::Malformed("length overflow"))?;
        if end > self.buf.len() {
            return Err(WireError::Malformed("payload too short"));
        }
        let s = &self.buf[self.pos..end];
        self.pos = end;
        Ok(s)
    }

    fn u8(&mut self) -> Result<u8, WireError> {
        Ok(self.take(1)?[0])
    }

    fn u32(&mut self) -> Result<u32, WireError> {
        let s = self.take(4)?;
        Ok(u32::from_le_bytes([s[0], s[1], s[2], s[3]]))
    }

    fn u64(&mut self) -> Result<u64, WireError> {
        let s = self.take(8)?;
        Ok(u64::from_le_bytes([
            s[0], s[1], s[2], s[3], s[4], s[5], s[6], s[7],
        ]))
    }

    fn bool(&mut self) -> Result<bool, WireError> {
        match self.u8()? {
            0 => Ok(false),
            1 => Ok(true),
            _ => Err(WireError::Malformed("bool flag")),
        }
    }

    fn bits(&mut self) -> Result<Vec<u32>, WireError> {
        let n = self.u32()? as usize;
        // The count is bounded by the already-capped payload length.
        if n > self.buf.len().saturating_sub(self.pos) / 4 {
            return Err(WireError::Malformed("bits count"));
        }
        let mut out = Vec::with_capacity(n);
        for _ in 0..n {
            out.push(self.u32()?);
        }
        Ok(out)
    }

    fn opt_bits(&mut self) -> Result<Option<Vec<u32>>, WireError> {
        if self.bool()? {
            Ok(Some(self.bits()?))
        } else {
            Ok(None)
        }
    }

    fn finish(self) -> Result<(), WireError> {
        if self.pos == self.buf.len() {
            Ok(())
        } else {
            Err(WireError::Malformed("trailing payload bytes"))
        }
    }
}

fn encode_payload_codec(e: &mut Enc, enc: &Encoded) {
    match enc {
        Encoded::F32(v) => {
            e.u8(0);
            e.u32(0); // scale slot unused
            e.u32(v.len() as u32);
            for &x in v {
                e.u32(x.to_bits());
            }
        }
        Encoded::F16(v) => {
            e.u8(1);
            e.u32(0);
            e.u32(v.len() as u32);
            for &F16(h) in v {
                e.0.extend_from_slice(&h.to_le_bytes());
            }
        }
        Encoded::I8 { scale, data } => {
            e.u8(2);
            e.u32(scale.to_bits());
            e.u32(data.len() as u32);
            for &q in data {
                e.u8(q as u8);
            }
        }
    }
}

fn decode_payload_codec(d: &mut Dec<'_>) -> Result<Encoded, WireError> {
    let codec = d.u8()?;
    let scale_bits = d.u32()?;
    let count = d.u32()? as usize;
    let per_elem = match codec {
        0 => 4,
        1 => 2,
        2 => 1,
        _ => return Err(WireError::Malformed("codec tag")),
    };
    let raw = d.take(
        count
            .checked_mul(per_elem)
            .ok_or(WireError::Malformed("payload size overflow"))?,
    )?;
    Ok(match codec {
        0 => Encoded::F32(
            raw.chunks_exact(4)
                .map(|c| f32::from_bits(u32::from_le_bytes([c[0], c[1], c[2], c[3]])))
                .collect(),
        ),
        1 => Encoded::F16(
            raw.chunks_exact(2)
                .map(|c| F16(u16::from_le_bytes([c[0], c[1]])))
                .collect(),
        ),
        _ => Encoded::I8 {
            scale: f32::from_bits(scale_bits),
            data: raw.iter().map(|&b| b as i8).collect(),
        },
    })
}

/// The wire codec tag of an [`Encoded`] payload, mirroring [`Codec`].
pub fn codec_of(enc: &Encoded) -> Codec {
    match enc {
        Encoded::F32(_) => Codec::F32,
        Encoded::F16(_) => Codec::F16,
        Encoded::I8 { .. } => Codec::I8,
    }
}

impl Frame {
    fn kind(&self) -> u8 {
        match self {
            Frame::Hello => K_HELLO,
            Frame::HelloOk { .. } => K_HELLO_OK,
            Frame::Submit(_) => K_SUBMIT,
            Frame::SubmitOk { .. } => K_SUBMIT_OK,
            Frame::Busy { .. } => K_BUSY,
            Frame::Meta { .. } => K_META,
            Frame::MetaOk { .. } => K_META_OK,
            Frame::Status { .. } => K_STATUS,
            Frame::StatusOk(_) => K_STATUS_OK,
            Frame::Shutdown => K_SHUTDOWN,
            Frame::ShutdownOk => K_SHUTDOWN_OK,
        }
    }

    fn encode_payload(&self) -> Vec<u8> {
        let mut e = Enc::default();
        match self {
            Frame::Hello | Frame::Shutdown | Frame::ShutdownOk => {}
            Frame::HelloOk { dim, round, done } => {
                e.u32(*dim);
                e.u64(*round);
                e.u8(*done as u8);
            }
            Frame::Submit(s) => {
                e.u64(s.round);
                e.u32(s.seq);
                e.u32(s.client);
                e.u8(s.malicious as u8);
                e.u32(s.weight_bits);
                encode_payload_codec(&mut e, &s.payload);
            }
            Frame::SubmitOk { verdict, round } => {
                e.u8(verdict.code());
                e.u64(*round);
            }
            Frame::Busy { retry_ms } => e.u32(*retry_ms),
            Frame::Meta {
                round,
                expected,
                offline,
                diverged,
                silent,
            } => {
                e.u64(*round);
                e.u32(*expected);
                e.u32(*offline);
                e.u32(*diverged);
                e.u32(*silent);
            }
            Frame::MetaOk { round } => e.u64(*round),
            Frame::Status { include_model } => e.u8(*include_model as u8),
            Frame::StatusOk(st) => {
                e.u64(st.round);
                e.u8(st.done as u8);
                e.u32(st.logged);
                match st.expected {
                    None => e.u8(0),
                    Some(x) => {
                        e.u8(1);
                        e.u32(x);
                    }
                }
                e.opt_bits(st.global_bits.as_ref());
                e.opt_bits(st.prev_global_bits.as_ref());
            }
        }
        e.0
    }

    fn decode_payload(kind: u8, payload: &[u8]) -> Result<Frame, WireError> {
        let mut d = Dec::new(payload);
        let frame = match kind {
            K_HELLO => Frame::Hello,
            K_SHUTDOWN => Frame::Shutdown,
            K_SHUTDOWN_OK => Frame::ShutdownOk,
            K_HELLO_OK => Frame::HelloOk {
                dim: d.u32()?,
                round: d.u64()?,
                done: d.bool()?,
            },
            K_SUBMIT => Frame::Submit(Submit {
                round: d.u64()?,
                seq: d.u32()?,
                client: d.u32()?,
                malicious: d.bool()?,
                weight_bits: d.u32()?,
                payload: decode_payload_codec(&mut d)?,
            }),
            K_SUBMIT_OK => Frame::SubmitOk {
                verdict: Verdict::from_code(d.u8()?)?,
                round: d.u64()?,
            },
            K_BUSY => Frame::Busy { retry_ms: d.u32()? },
            K_META => Frame::Meta {
                round: d.u64()?,
                expected: d.u32()?,
                offline: d.u32()?,
                diverged: d.u32()?,
                silent: d.u32()?,
            },
            K_META_OK => Frame::MetaOk { round: d.u64()? },
            K_STATUS => Frame::Status {
                include_model: d.bool()?,
            },
            K_STATUS_OK => Frame::StatusOk(Box::new(StatusOk {
                round: d.u64()?,
                done: d.bool()?,
                logged: d.u32()?,
                expected: if d.bool()? { Some(d.u32()?) } else { None },
                global_bits: d.opt_bits()?,
                prev_global_bits: d.opt_bits()?,
            })),
            k => return Err(WireError::UnknownKind(k)),
        };
        d.finish()?;
        Ok(frame)
    }

    /// Serializes the frame to its full wire bytes (header + payload).
    pub fn to_bytes(&self) -> Vec<u8> {
        let payload = self.encode_payload();
        let mut out = Vec::with_capacity(HEADER_LEN + payload.len());
        out.extend_from_slice(&MAGIC.to_le_bytes());
        out.extend_from_slice(&VERSION.to_le_bytes());
        out.push(self.kind());
        out.push(0); // flags, reserved
        out.extend_from_slice(&(payload.len() as u32).to_le_bytes());
        out.extend_from_slice(&fnv1a(&payload).to_le_bytes());
        out.extend_from_slice(&payload);
        out
    }
}

/// A validated raw frame: header plus payload bytes, not yet decoded.
/// The chaos proxy forwards these so it can inject faults at exact frame
/// boundaries without understanding payloads.
#[derive(Debug, Clone)]
pub struct RawFrame {
    /// Full wire bytes (header + payload).
    pub bytes: Vec<u8>,
}

impl RawFrame {
    /// Payload byte range within [`RawFrame::bytes`].
    pub fn payload_range(&self) -> std::ops::Range<usize> {
        HEADER_LEN..self.bytes.len()
    }
}

fn read_header(r: &mut impl Read, max_frame: usize) -> Result<(u8, usize, u64), WireError> {
    let mut h = [0u8; HEADER_LEN];
    r.read_exact(&mut h)?;
    let magic = u32::from_le_bytes([h[0], h[1], h[2], h[3]]);
    if magic != MAGIC {
        return Err(WireError::BadMagic(magic));
    }
    let version = u16::from_le_bytes([h[4], h[5]]);
    if version != VERSION {
        return Err(WireError::BadVersion(version));
    }
    let kind = h[6];
    let len = u32::from_le_bytes([h[8], h[9], h[10], h[11]]);
    if len as usize > max_frame {
        return Err(WireError::Oversize {
            len,
            max: max_frame,
        });
    }
    let checksum = u64::from_le_bytes([h[12], h[13], h[14], h[15], h[16], h[17], h[18], h[19]]);
    Ok((kind, len as usize, checksum))
}

/// Reads and decodes one frame, enforcing the `max_frame` payload cap and
/// verifying the payload checksum.
///
/// # Errors
///
/// [`WireError::Io`] on socket failure (including timeouts); any other
/// variant means the stream is no longer trustworthy and must be closed.
pub fn read_frame(r: &mut impl Read, max_frame: usize) -> Result<Frame, WireError> {
    let (kind, len, checksum) = read_header(r, max_frame)?;
    let mut payload = vec![0u8; len];
    r.read_exact(&mut payload)?;
    if fnv1a(&payload) != checksum {
        return Err(WireError::Checksum);
    }
    Frame::decode_payload(kind, &payload)
}

/// Reads one frame without decoding its payload, still enforcing the
/// frame cap (the checksum is *not* verified — the proxy forwards
/// corruption; endpoints detect it).
///
/// # Errors
///
/// As [`read_frame`], minus checksum/kind validation.
pub fn read_raw_frame(r: &mut impl Read, max_frame: usize) -> Result<RawFrame, WireError> {
    let mut h = [0u8; HEADER_LEN];
    r.read_exact(&mut h)?;
    let magic = u32::from_le_bytes([h[0], h[1], h[2], h[3]]);
    if magic != MAGIC {
        return Err(WireError::BadMagic(magic));
    }
    let len = u32::from_le_bytes([h[8], h[9], h[10], h[11]]) as usize;
    if len > max_frame {
        return Err(WireError::Oversize {
            len: len as u32,
            max: max_frame,
        });
    }
    let mut bytes = vec![0u8; HEADER_LEN + len];
    bytes[..HEADER_LEN].copy_from_slice(&h);
    r.read_exact(&mut bytes[HEADER_LEN..])?;
    Ok(RawFrame { bytes })
}

/// Writes one frame and flushes.
///
/// # Errors
///
/// Propagates socket failures (including write timeouts).
pub fn write_frame(w: &mut impl Write, frame: &Frame) -> Result<(), WireError> {
    w.write_all(&frame.to_bytes())?;
    w.flush()?;
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn all_frames() -> Vec<Frame> {
        vec![
            Frame::Hello,
            Frame::HelloOk {
                dim: 1234,
                round: 7,
                done: false,
            },
            Frame::Submit(Submit {
                round: 3,
                seq: 9,
                client: 41,
                malicious: true,
                weight_bits: 5.5f32.to_bits(),
                payload: Encoded::F32(vec![1.0, -2.5, f32::NAN]),
            }),
            Frame::Submit(Submit {
                round: 0,
                seq: 0,
                client: 0,
                malicious: false,
                weight_bits: 0,
                payload: Encoded::F16(vec![F16(0x3C00), F16(0x8000)]),
            }),
            Frame::Submit(Submit {
                round: 1,
                seq: 2,
                client: 3,
                malicious: false,
                weight_bits: 1.0f32.to_bits(),
                payload: Encoded::I8 {
                    scale: 0.25,
                    data: vec![-127, 0, 64],
                },
            }),
            Frame::SubmitOk {
                verdict: Verdict::Duplicate,
                round: 4,
            },
            Frame::Busy { retry_ms: 35 },
            Frame::Meta {
                round: 2,
                expected: 6,
                offline: 1,
                diverged: 0,
                silent: 2,
            },
            Frame::MetaOk { round: 2 },
            Frame::Status {
                include_model: true,
            },
            Frame::StatusOk(Box::new(StatusOk {
                round: 5,
                done: true,
                logged: 3,
                expected: Some(6),
                global_bits: Some(vec![1, 2, 3]),
                prev_global_bits: None,
            })),
            Frame::Shutdown,
            Frame::ShutdownOk,
        ]
    }

    #[test]
    fn every_frame_roundtrips_bitwise() {
        for f in all_frames() {
            let bytes = f.to_bytes();
            let mut r = &bytes[..];
            let back = read_frame(&mut r, DEFAULT_MAX_FRAME).unwrap();
            // NaN payloads break PartialEq; compare re-encoded bytes (bit
            // transport is the actual contract).
            assert_eq!(back.to_bytes(), bytes);
        }
    }

    #[test]
    fn corrupting_any_payload_byte_is_detected() {
        let f = Frame::Submit(Submit {
            round: 1,
            seq: 2,
            client: 3,
            malicious: false,
            weight_bits: 2.0f32.to_bits(),
            payload: Encoded::F32(vec![0.5; 16]),
        });
        let bytes = f.to_bytes();
        for i in HEADER_LEN..bytes.len() {
            let mut bad = bytes.clone();
            bad[i] ^= 0x40;
            let mut r = &bad[..];
            assert!(
                matches!(
                    read_frame(&mut r, DEFAULT_MAX_FRAME),
                    Err(WireError::Checksum)
                ),
                "flip at byte {i} must fail the checksum"
            );
        }
    }

    #[test]
    fn header_validation_rejects_garbage() {
        let good = Frame::Hello.to_bytes();

        let mut bad_magic = good.clone();
        bad_magic[0] ^= 0xFF;
        assert!(matches!(
            read_frame(&mut &bad_magic[..], DEFAULT_MAX_FRAME),
            Err(WireError::BadMagic(_))
        ));

        let mut bad_version = good.clone();
        bad_version[4] = 0xEE;
        assert!(matches!(
            read_frame(&mut &bad_version[..], DEFAULT_MAX_FRAME),
            Err(WireError::BadVersion(_))
        ));

        let mut bad_kind = good.clone();
        bad_kind[6] = 200;
        assert!(matches!(
            read_frame(&mut &bad_kind[..], DEFAULT_MAX_FRAME),
            Err(WireError::UnknownKind(200))
        ));
    }

    #[test]
    fn oversize_frames_are_rejected_before_allocation() {
        let f = Frame::Submit(Submit {
            round: 0,
            seq: 0,
            client: 0,
            malicious: false,
            weight_bits: 0,
            payload: Encoded::F32(vec![1.0; 64]),
        });
        let bytes = f.to_bytes();
        assert!(matches!(
            read_frame(&mut &bytes[..], 16),
            Err(WireError::Oversize { .. })
        ));
        assert!(matches!(
            read_raw_frame(&mut &bytes[..], 16),
            Err(WireError::Oversize { .. })
        ));
    }

    #[test]
    fn truncated_stream_is_an_io_error() {
        let bytes = Frame::MetaOk { round: 3 }.to_bytes();
        for cut in 0..bytes.len() {
            let r = read_frame(&mut &bytes[..cut], DEFAULT_MAX_FRAME);
            assert!(matches!(r, Err(WireError::Io(_))), "cut at {cut}");
        }
    }

    #[test]
    fn trailing_bytes_are_malformed() {
        // Hand-build a MetaOk whose payload has one extra byte (checksum
        // valid over the padded payload, so only the decoder catches it).
        let mut payload = 3u64.to_le_bytes().to_vec();
        payload.push(0);
        let mut bytes = Vec::new();
        bytes.extend_from_slice(&MAGIC.to_le_bytes());
        bytes.extend_from_slice(&VERSION.to_le_bytes());
        bytes.push(7); // K_META_OK
        bytes.push(0);
        bytes.extend_from_slice(&(payload.len() as u32).to_le_bytes());
        bytes.extend_from_slice(&fnv1a(&payload).to_le_bytes());
        bytes.extend_from_slice(&payload);
        assert!(matches!(
            read_frame(&mut &bytes[..], DEFAULT_MAX_FRAME),
            Err(WireError::Malformed(_))
        ));
    }

    #[test]
    fn raw_frames_preserve_bytes_and_boundaries() {
        let a = Frame::Hello.to_bytes();
        let b = Frame::Busy { retry_ms: 9 }.to_bytes();
        let mut stream = Vec::new();
        stream.extend_from_slice(&a);
        stream.extend_from_slice(&b);
        let mut r = &stream[..];
        let ra = read_raw_frame(&mut r, DEFAULT_MAX_FRAME).unwrap();
        let rb = read_raw_frame(&mut r, DEFAULT_MAX_FRAME).unwrap();
        assert_eq!(ra.bytes, a);
        assert_eq!(rb.bytes, b);
        assert!(ra.payload_range().is_empty());
        assert_eq!(rb.payload_range().len(), 4);
    }

    #[test]
    fn encoded_payloads_cross_every_codec() {
        use fabflip_tensor::quant;
        let v: Vec<f32> = (0..33).map(|i| ((i as f32) * 0.7).sin() * 2.0).collect();
        for codec in [Codec::F32, Codec::F16, Codec::I8] {
            let enc = quant::encode(codec, &v);
            let f = Frame::Submit(Submit {
                round: 0,
                seq: 1,
                client: 2,
                malicious: false,
                weight_bits: 1.0f32.to_bits(),
                payload: enc.clone(),
            });
            let back = read_frame(&mut &f.to_bytes()[..], DEFAULT_MAX_FRAME).unwrap();
            match back {
                Frame::Submit(s) => {
                    assert_eq!(codec_of(&s.payload), codec);
                    let direct = quant::decode(&enc);
                    let wired = quant::decode(&s.payload);
                    let bits = |v: &[f32]| v.iter().map(|x| x.to_bits()).collect::<Vec<_>>();
                    assert_eq!(bits(&direct), bits(&wired), "codec={}", codec.label());
                }
                other => panic!("expected Submit, got {other:?}"),
            }
        }
    }
}
