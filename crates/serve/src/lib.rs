//! # fabflip-serve
//!
//! The crash-tolerant TCP aggregation server of the `fabflip`
//! reproduction, plus its companion client, load generator and
//! wire-level chaos harness (DESIGN.md §4g).
//!
//! The crate is the *I/O shell* around the pure round engine in
//! `fabflip_fl::round`: sockets, timeouts, queues and checkpoints live
//! here; every aggregation decision remains a pure function of the
//! ordered, validated submission log. That boundary is what makes the
//! headline guarantee testable — a `kill -9` at any instant, under
//! active chaos injection, resumes to a bitwise-identical global model,
//! and a fault-free serve run produces the same per-round transcript as
//! the batch simulator for the same `(seed, config)`.
//!
//! * [`wire`] — the length-prefixed, checksummed frame protocol,
//! * [`server`] — thread-per-core server: bounded queues, BUSY
//!   backpressure, per-round deadlines with cohort degradation, and a
//!   per-submission write-ahead log,
//! * [`client`] — reconnecting client with deterministic jittered
//!   exponential backoff,
//! * [`loadgen`] — drives a whole deployment's client side over the wire,
//! * [`chaos`] — deterministic frame-level fault-injection proxy.

pub mod chaos;
pub mod client;
pub mod loadgen;
pub mod server;
pub mod wire;

pub use chaos::{ChaosProfile, ChaosProxy};
pub use client::{ClientError, RetryPolicy, ServeClient};
pub use loadgen::{run_load, LoadGenOptions, LoadGenReport};
pub use server::{spawn, ServeError, ServeHandle, ServeOptions};
