//! The CLI load generator: drives a full FL deployment's client side —
//! [`ClientFleet`] staging, quantized encoding, META announcements and
//! concurrent submission fan-out — against a running aggregation server
//! (DESIGN.md §4g).
//!
//! The generator is *idempotent per round*: it stages each round exactly
//! once (the fleet, including the adversary's cross-round state, lives
//! here and survives server crashes), then sends META + submissions and
//! re-sends until the server's round advances. Re-sent submissions are
//! deduped server-side by sequence number, so crashes, chaos drops and
//! lost acknowledgements all converge to the same persisted log.

use crate::client::{ClientError, RetryPolicy, ServeClient};
use crate::wire::{Submit, Verdict};
use fabflip_fl::round::{ClientFleet, StagedRound};
use fabflip_fl::{checkpoint, FlConfig, FlError};
use fabflip_tensor::quant;
use std::net::SocketAddr;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::time::Duration;

/// Load-generator failure.
#[derive(Debug)]
pub enum LoadGenError {
    /// Invalid configuration (the fleet rejected it).
    Fl(FlError),
    /// The server stayed unreachable past the retry budget.
    Client(ClientError),
}

impl std::fmt::Display for LoadGenError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            LoadGenError::Fl(e) => write!(f, "fleet: {e}"),
            LoadGenError::Client(e) => write!(f, "server unreachable: {e}"),
        }
    }
}

impl std::error::Error for LoadGenError {}

impl From<FlError> for LoadGenError {
    fn from(e: FlError) -> LoadGenError {
        LoadGenError::Fl(e)
    }
}

impl From<ClientError> for LoadGenError {
    fn from(e: ClientError) -> LoadGenError {
        LoadGenError::Client(e)
    }
}

/// How the load generator drives the server.
#[derive(Debug, Clone)]
pub struct LoadGenOptions {
    /// The experiment configuration — must equal the server's (the
    /// fingerprint in the server's checkpoint is keyed on it).
    pub cfg: FlConfig,
    /// Server (or chaos proxy) address.
    pub addr: SocketAddr,
    /// Concurrent submission connections.
    pub senders: usize,
    /// Per-connection socket timeout.
    pub io_timeout: Duration,
    /// Per-frame payload cap.
    pub max_frame: usize,
    /// Backoff policy for every connection.
    pub retry: RetryPolicy,
    /// Round-advance poll interval.
    pub poll: Duration,
    /// When `> 0`, skip every `omit_every`-th staged submission (by
    /// sequence number) — a deliberate short cohort for exercising the
    /// server's deadline degradation. `0` sends everything.
    pub omit_every: usize,
    /// Send SHUTDOWN once all rounds are done.
    pub shutdown_when_done: bool,
}

impl LoadGenOptions {
    /// Defaults for loopback runs.
    pub fn new(cfg: FlConfig, addr: SocketAddr) -> LoadGenOptions {
        LoadGenOptions {
            cfg,
            addr,
            senders: 4,
            io_timeout: Duration::from_secs(10),
            max_frame: crate::wire::DEFAULT_MAX_FRAME,
            retry: RetryPolicy::default(),
            poll: Duration::from_millis(20),
            omit_every: 0,
            shutdown_when_done: false,
        }
    }
}

/// What one load-generation run did.
#[derive(Debug, Clone, Default)]
pub struct LoadGenReport {
    /// Rounds the generator staged and drove.
    pub rounds_driven: usize,
    /// Submissions answered `Accepted`.
    pub accepted: u64,
    /// Submissions answered `Duplicate` (re-sends of durable entries).
    pub duplicates: u64,
    /// Submissions answered `Quarantined`.
    pub quarantined: u64,
    /// Submissions deliberately omitted (`omit_every`).
    pub omitted: u64,
    /// `BUSY` backpressure replies honoured.
    pub busy: u64,
    /// Reconnections across all connections.
    pub reconnects: u64,
    /// Retries across all connections.
    pub retries: u64,
    /// The server's final global model (f32 bits).
    pub final_global_bits: Vec<u32>,
}

fn sent(seq: usize, omit_every: usize) -> bool {
    omit_every == 0 || !(seq + 1).is_multiple_of(omit_every)
}

/// Runs the load generator until the server reports all rounds done.
///
/// # Errors
///
/// [`LoadGenError::Fl`] on an invalid config or a staging failure;
/// [`LoadGenError::Client`] when the server stays unreachable past the
/// retry budget.
pub fn run_load(opts: &LoadGenOptions) -> Result<LoadGenReport, LoadGenError> {
    let mut fleet = ClientFleet::new(&opts.cfg)?;
    let mut ctl = ServeClient::new(opts.addr, opts.io_timeout, opts.max_frame, opts.retry);
    let mut report = LoadGenReport::default();
    let mut staged: Option<(usize, StagedRound)> = None;

    loop {
        let st = ctl.status(true)?;
        if st.done {
            report.final_global_bits = st.global_bits.unwrap_or_default();
            break;
        }
        let round = st.round as usize;

        // Stage each round exactly once: the fleet's attack state must
        // advance once per round, like the batch simulator's.
        if staged.as_ref().map(|(r, _)| *r) != Some(round) {
            let global = checkpoint::from_bits(st.global_bits.as_deref().unwrap_or(&[]));
            let prev = st.prev_global_bits.as_deref().map(checkpoint::from_bits);
            let sr = fleet.stage_round(round, &global, prev.as_deref())?;
            report.rounds_driven += 1;
            staged = Some((round, sr));
        }
        let Some((_, sr)) = staged.as_ref() else {
            continue;
        };

        // Announce the cohort (idempotent; the server takes the first).
        // The server cannot tell an omitted submission from a lost one,
        // so META always announces the *full* staged cohort — omission
        // shows up as a short cohort at the deadline, exactly like a
        // real straggler.
        let full = sr.submissions.len() as u32;
        if opts.omit_every > 0 {
            report.omitted += sr
                .submissions
                .iter()
                .enumerate()
                .filter(|(i, _)| !sent(*i, opts.omit_every))
                .count() as u64;
        }
        ctl.meta(
            round as u64,
            full,
            sr.offline as u32,
            sr.diverged as u32,
            sr.silent as u32,
        )?;

        // Fan the round's submissions over the sender connections.
        send_round(opts, round as u64, sr, &mut report)?;

        // Wait for the server to close the round (or degrade past it).
        let mut polls = 0u32;
        loop {
            let st = ctl.status(false)?;
            if st.done || st.round as usize != round {
                break;
            }
            std::thread::sleep(opts.poll);
            polls += 1;
            // Periodic re-send: anything lost to chaos or a crash gets
            // another chance; durable entries answer `Duplicate`. Spaced
            // out so the happy path is one send and a couple of polls.
            if polls.is_multiple_of(16) {
                send_round(opts, round as u64, sr, &mut report)?;
            }
        }
        report.reconnects += ctl.stats.reconnects;
        report.retries += ctl.stats.retries;
        report.busy += ctl.stats.busy;
        ctl.stats = Default::default();
    }

    if opts.shutdown_when_done {
        ctl.shutdown_server();
    }
    report.reconnects += ctl.stats.reconnects;
    report.retries += ctl.stats.retries;
    report.busy += ctl.stats.busy;
    Ok(report)
}

/// Sends (or re-sends) every non-omitted submission of the round,
/// partitioned across `senders` concurrent connections. Stops early when
/// any sender observes the round has moved on.
fn send_round(
    opts: &LoadGenOptions,
    round: u64,
    sr: &StagedRound,
    report: &mut LoadGenReport,
) -> Result<(), LoadGenError> {
    let jobs: Vec<(usize, Submit)> = sr
        .submissions
        .iter()
        .enumerate()
        .filter(|(i, _)| sent(*i, opts.omit_every))
        .map(|(i, s)| {
            (
                i,
                Submit {
                    round,
                    seq: i as u32,
                    client: s.client as u32,
                    malicious: s.malicious,
                    weight_bits: s.weight.to_bits(),
                    payload: quant::encode(opts.cfg.transport, &s.payload),
                },
            )
        })
        .collect();

    let senders = opts.senders.max(1);
    let moved = AtomicBool::new(false);
    let accepted = AtomicU64::new(0);
    let duplicates = AtomicU64::new(0);
    let quarantined = AtomicU64::new(0);
    let busy = AtomicU64::new(0);
    let reconnects = AtomicU64::new(0);
    let retries = AtomicU64::new(0);
    let first_err: std::sync::Mutex<Option<ClientError>> = std::sync::Mutex::new(None);

    std::thread::scope(|scope| {
        for w in 0..senders {
            let jobs = &jobs;
            let moved = &moved;
            let accepted = &accepted;
            let duplicates = &duplicates;
            let quarantined = &quarantined;
            let busy = &busy;
            let reconnects = &reconnects;
            let retries = &retries;
            let first_err = &first_err;
            scope.spawn(move || {
                let mut conn =
                    ServeClient::new(opts.addr, opts.io_timeout, opts.max_frame, opts.retry);
                for (_, sub) in jobs.iter().filter(|(i, _)| i % senders == w) {
                    if moved.load(Ordering::Relaxed) {
                        break;
                    }
                    match conn.submit(sub) {
                        Ok((Verdict::Accepted, _)) => {
                            accepted.fetch_add(1, Ordering::Relaxed);
                        }
                        Ok((Verdict::Duplicate, _)) => {
                            duplicates.fetch_add(1, Ordering::Relaxed);
                        }
                        Ok((Verdict::Quarantined, _)) => {
                            quarantined.fetch_add(1, Ordering::Relaxed);
                        }
                        Ok((Verdict::WrongRound, _)) => {
                            moved.store(true, Ordering::Relaxed);
                            break;
                        }
                        Err(e) => {
                            if let Ok(mut slot) = first_err.lock() {
                                slot.get_or_insert(e);
                            }
                            break;
                        }
                    }
                }
                busy.fetch_add(conn.stats.busy, Ordering::Relaxed);
                reconnects.fetch_add(conn.stats.reconnects, Ordering::Relaxed);
                retries.fetch_add(conn.stats.retries, Ordering::Relaxed);
            });
        }
    });

    report.accepted += accepted.into_inner();
    report.duplicates += duplicates.into_inner();
    report.quarantined += quarantined.into_inner();
    report.busy += busy.into_inner();
    report.reconnects += reconnects.into_inner();
    report.retries += retries.into_inner();
    match first_err.into_inner() {
        Ok(Some(e)) => Err(e.into()),
        _ => Ok(()),
    }
}
