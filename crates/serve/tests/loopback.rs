//! Loopback integration tests for the aggregation server (DESIGN.md
//! §4g): serve/batch transcript parity, chaos-soak bitwise identity,
//! stop-and-respawn recovery of a mid-round write-ahead log, deadline
//! degradation of short cohorts, and client BUSY backpressure handling.

use fabflip_agg::DefenseKind;
use fabflip_fl::{checkpoint, simulate, AttackSpec, Codec, FlConfig, RunResult, TaskKind};
use fabflip_serve::chaos::{ChaosProfile, ChaosProxy};
use fabflip_serve::client::{RetryPolicy, ServeClient};
use fabflip_serve::loadgen::{run_load, LoadGenOptions};
use fabflip_serve::server::{spawn, ServeError, ServeHandle, ServeOptions};
use fabflip_serve::wire::{self, Frame, Submit, Verdict};
use fabflip_tensor::quant;
use std::path::PathBuf;
use std::time::Duration;

/// Unique scratch directory (pid + counter; no wall clock).
fn test_dir(tag: &str) -> PathBuf {
    use std::sync::atomic::{AtomicUsize, Ordering};
    static N: AtomicUsize = AtomicUsize::new(0);
    let d = std::env::temp_dir().join(format!(
        "fabflip-serve-{tag}-{}-{}",
        std::process::id(),
        N.fetch_add(1, Ordering::Relaxed)
    ));
    std::fs::create_dir_all(&d).expect("test dir");
    d
}

/// The robustness suite's tiny-but-real deployment: an attack the
/// defense must actually fight, at a scale where three rounds finish in
/// seconds.
fn tiny_cfg(seed: u64) -> FlConfig {
    FlConfig::builder(TaskKind::Fashion)
        .rounds(3)
        .n_clients(12)
        .clients_per_round(6)
        .train_size(240)
        .test_size(80)
        .synth_set_size(6)
        .attack(AttackSpec::Lie)
        .defense(DefenseKind::MKrum { f: 2 })
        .seed(seed)
        .build()
}

fn serve_opts(cfg: FlConfig, dir: &PathBuf) -> ServeOptions {
    let mut opts = ServeOptions::new(cfg, dir);
    opts.workers = 3;
    opts.queue_cap = 8;
    opts.deadline = Duration::from_secs(60);
    opts.io_timeout = Duration::from_secs(2);
    opts
}

fn model_bits(r: &RunResult) -> Vec<u32> {
    r.final_model.iter().map(|w| w.to_bits()).collect()
}

/// Re-binding the port a just-stopped server held can race lingering
/// connections (no `SO_REUSEADDR` in std); retry through the window.
fn spawn_retry(opts: &ServeOptions) -> ServeHandle {
    for _ in 0..200 {
        match spawn(opts.clone()) {
            Ok(h) => return h,
            Err(ServeError::Io(_)) => std::thread::sleep(Duration::from_millis(25)),
            Err(e) => panic!("respawn failed: {e}"),
        }
    }
    panic!("could not rebind {}", opts.bind);
}

/// Acceptance criterion (d): a fault-free serve run over loopback
/// produces the same per-round transcript — and the same final global
/// model, bitwise — as the batch simulator for the same (seed, config).
#[test]
fn fault_free_serve_matches_batch_transcript() {
    let cfg = tiny_cfg(11);
    let batch = simulate(&cfg).expect("batch");
    let dir = test_dir("parity");

    let handle = spawn(serve_opts(cfg.clone(), &dir)).expect("spawn");
    let mut opts = LoadGenOptions::new(cfg.clone(), handle.addr());
    opts.shutdown_when_done = true;
    let report = run_load(&opts).expect("loadgen");
    handle.stop();
    let records = handle.join().expect("join");

    assert_eq!(records, batch.rounds, "per-round transcripts diverge");
    assert_eq!(
        report.final_global_bits,
        model_bits(&batch),
        "final global model is not bitwise identical"
    );
    assert_eq!(report.rounds_driven, cfg.rounds);
    assert_eq!(report.quarantined, 0);
    let _ = std::fs::remove_dir_all(&dir);
}

/// Soak through the chaos proxy: with frames being delayed, corrupted,
/// truncated and dropped, retry + dedup must still converge to the exact
/// batch transcript. Quantized transport rides along for codec coverage.
#[test]
fn chaos_soak_still_converges_bitwise() {
    let mut cfg = tiny_cfg(12);
    cfg.transport = Codec::F16;
    let batch = simulate(&cfg).expect("batch");
    let dir = test_dir("chaos");

    let handle = spawn(serve_opts(cfg.clone(), &dir)).expect("spawn");
    let mut proxy = ChaosProxy::spawn(handle.addr(), ChaosProfile::light(99)).expect("proxy");
    let mut opts = LoadGenOptions::new(cfg.clone(), proxy.addr());
    opts.io_timeout = Duration::from_secs(1);
    let report = run_load(&opts).expect("loadgen");
    // Stop directly (not via a SHUTDOWN frame): chaos could eat it.
    handle.stop();
    let records = handle.join().expect("join");

    let stats = proxy.stats();
    assert!(stats.injected() > 0, "chaos injected nothing: {stats:?}");
    assert_eq!(records, batch.rounds, "per-round transcripts diverge");
    assert_eq!(
        report.final_global_bits,
        model_bits(&batch),
        "final global model is not bitwise identical under chaos"
    );
    proxy.shutdown();
    let _ = std::fs::remove_dir_all(&dir);
}

/// Acceptance criterion (c), in-process edition: stop the server with a
/// durable mid-round write-ahead log while clients keep hammering it,
/// respawn on the same address, and the run must finish with the exact
/// batch transcript. (The cli crate repeats this with a real `kill -9`.)
#[test]
fn stop_and_respawn_mid_round_resumes_bitwise() {
    let cfg = tiny_cfg(13);
    let batch = simulate(&cfg).expect("batch");
    let dir = test_dir("respawn");

    let handle = spawn(serve_opts(cfg.clone(), &dir)).expect("spawn");
    let addr = handle.addr();

    let lg_cfg = cfg.clone();
    let lg = std::thread::spawn(move || {
        let mut opts = LoadGenOptions::new(lg_cfg, addr);
        opts.shutdown_when_done = true;
        run_load(&opts)
    });

    // Wait for durable progress — a mid-round in-flight log if we catch
    // one, a closed round otherwise — then yank the server out from
    // under the load generator.
    loop {
        if let Some(c) = checkpoint::load(&dir, &cfg) {
            if !c.inflight.is_empty() || c.next_round >= 1 {
                break;
            }
        }
        std::thread::sleep(Duration::from_millis(1));
    }
    handle.stop();
    let _ = handle.join();

    let mut opts2 = serve_opts(cfg.clone(), &dir);
    opts2.bind = addr;
    let handle2 = spawn_retry(&opts2);

    let report = lg.join().expect("loadgen thread").expect("loadgen");
    handle2.stop();
    let records = handle2.join().expect("join");

    assert_eq!(records, batch.rounds, "resumed transcript diverges");
    assert_eq!(
        report.final_global_bits,
        model_bits(&batch),
        "resumed final global model is not bitwise identical"
    );
    assert!(
        report.rounds_driven >= cfg.rounds,
        "fleet staged every round"
    );
    let _ = std::fs::remove_dir_all(&dir);
}

/// When the announced cohort stays short (deliberately omitted
/// submissions), the round deadline fires and the server closes degraded
/// over what was delivered — it never stalls and never skips the run.
#[test]
fn deadline_closes_short_cohorts_degraded() {
    let cfg = tiny_cfg(14);
    let dir = test_dir("deadline");

    let mut sopts = serve_opts(cfg.clone(), &dir);
    sopts.deadline = Duration::from_millis(1200);
    let handle = spawn(sopts).expect("spawn");
    let mut opts = LoadGenOptions::new(cfg.clone(), handle.addr());
    opts.omit_every = 3; // drop seqs 2 and 5 of every 6-strong cohort
    opts.shutdown_when_done = true;
    let report = run_load(&opts).expect("loadgen");
    handle.stop();
    let records = handle.join().expect("join");

    assert_eq!(records.len(), cfg.rounds, "every round must still close");
    for r in &records {
        assert_eq!(r.delivered, 4, "round {} cohort: {r:?}", r.round);
        assert!(!r.skipped, "degraded rounds still aggregate: {r:?}");
    }
    assert_eq!(report.omitted as usize, 2 * cfg.rounds);
    let _ = std::fs::remove_dir_all(&dir);
}

/// The client treats `BUSY` as backpressure, not failure: it backs off,
/// retries, and reports the eventual verdict.
#[test]
fn client_honours_busy_backpressure() {
    let listener = std::net::TcpListener::bind("127.0.0.1:0").expect("bind");
    let addr = listener.local_addr().expect("addr");
    let server = std::thread::spawn(move || {
        let (mut s, _) = listener.accept().expect("accept");
        let mut busy_left = 3u32;
        loop {
            let frame = match wire::read_frame(&mut s, wire::DEFAULT_MAX_FRAME) {
                Ok(f) => f,
                Err(_) => return,
            };
            let reply = match frame {
                Frame::Hello => Frame::HelloOk {
                    dim: 4,
                    round: 0,
                    done: false,
                },
                Frame::Submit(_) if busy_left > 0 => {
                    busy_left -= 1;
                    Frame::Busy { retry_ms: 1 }
                }
                Frame::Submit(sub) => Frame::SubmitOk {
                    verdict: Verdict::Accepted,
                    round: sub.round,
                },
                _ => return,
            };
            let done = matches!(reply, Frame::SubmitOk { .. });
            if wire::write_frame(&mut s, &reply).is_err() || done {
                return;
            }
        }
    });

    let policy = RetryPolicy {
        base_ms: 1,
        cap_ms: 4,
        max_attempts: 50,
        seed: 9,
    };
    let mut client = ServeClient::new(
        addr,
        Duration::from_secs(2),
        wire::DEFAULT_MAX_FRAME,
        policy,
    );
    let sub = Submit {
        round: 0,
        seq: 0,
        client: 0,
        malicious: false,
        weight_bits: 1.0f32.to_bits(),
        payload: quant::encode(Codec::F32, &[0.0, 0.25, -0.5, 1.0]),
    };
    let (verdict, round) = client.submit(&sub).expect("submit");
    assert_eq!(verdict, Verdict::Accepted);
    assert_eq!(round, 0);
    assert_eq!(client.stats.busy, 3, "all three BUSY replies honoured");
    server.join().expect("fake server");
}
