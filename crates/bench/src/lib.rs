//! # fabflip-bench
//!
//! The benchmark harness that regenerates every table and figure of the
//! paper (see DESIGN.md §5 for the experiment index):
//!
//! | binary         | reproduces |
//! |----------------|------------|
//! | `table1`       | Table I — attack assumption matrix |
//! | `table2`       | Table II — ASR & max accuracy, full grid, β = 0.5 |
//! | `table3`       | Table III — ASR vs heterogeneity β, Bulyan |
//! | `table4`       | Table IV — static vs trained ZKA |
//! | `table5`       | Table V — distance-regularizer ablation |
//! | `fig4`         | Fig. 4 — synthetic-data diversity (PCA projection) |
//! | `fig5`         | Fig. 5 — DPR on mKrum / Bulyan |
//! | `fig6`         | Fig. 6 — generation-loss convergence |
//! | `fig7`         | Fig. 7 — real-data vs synthetic-data ASR |
//! | `micro_random` | Sec. IV-A — random-weight DPR strawman |
//!
//! Every binary accepts `--scale smoke|default|full` (grid size / repeats),
//! `--repeats N`, and `--out DIR` (default `results/`). Cells are memoized
//! on disk (`results/cache.json`) so binaries sharing cells (e.g. `table2`
//! and `fig5`) do not recompute them.
//!
//! Criterion micro-benchmarks (`cargo bench`) measure the Sec. IV-E
//! complexity claims: adversarial crafting cost vs a benign client's local
//! epoch, and per-rule aggregation cost.

use fabflip_fl::runner::{run_cell, CellSummary};
use fabflip_fl::FlConfig;
use std::collections::BTreeMap;
use std::path::{Path, PathBuf};

/// Experiment scale profiles.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Scale {
    /// Minutes-scale sanity run (tiny population, few rounds).
    Smoke,
    /// The calibrated single-repeat profile used for EXPERIMENTS.md.
    Default,
    /// Paper-style three-repeat averaging.
    Full,
}

impl Scale {
    /// Repeats per cell.
    pub fn repeats(&self) -> usize {
        match self {
            Scale::Smoke | Scale::Default => 1,
            Scale::Full => 3,
        }
    }

    /// Applies the profile's size overrides to a config.
    pub fn shrink(&self, mut cfg: FlConfig) -> FlConfig {
        if let Scale::Smoke = self {
            cfg.n_clients = 20;
            cfg.rounds = 6;
            cfg.train_size = 400;
            cfg.test_size = 100;
            cfg.synth_set_size = 6;
            cfg.local_epochs = cfg.local_epochs.min(2);
        }
        cfg
    }
}

/// Parsed command-line options shared by all bench binaries.
#[derive(Debug, Clone)]
pub struct BenchOpts {
    /// Scale profile.
    pub scale: Scale,
    /// Repeats override (defaults to the scale's).
    pub repeats: usize,
    /// Output directory for JSON results and the cell cache.
    pub out_dir: PathBuf,
}

impl BenchOpts {
    /// Parses `--scale`, `--repeats`, `--out` from `std::env::args`.
    ///
    /// # Panics
    ///
    /// Panics with a usage message on unknown flags or bad values.
    pub fn from_args() -> BenchOpts {
        let mut scale = Scale::Default;
        let mut repeats: Option<usize> = None;
        let mut out_dir = PathBuf::from("results");
        let args: Vec<String> = std::env::args().skip(1).collect();
        let mut i = 0;
        while i < args.len() {
            match args[i].as_str() {
                "--scale" => {
                    i += 1;
                    scale = match args.get(i).map(String::as_str) {
                        Some("smoke") => Scale::Smoke,
                        Some("default") => Scale::Default,
                        Some("full") => Scale::Full,
                        other => panic!("--scale smoke|default|full, got {other:?}"),
                    };
                }
                "--repeats" => {
                    i += 1;
                    repeats = Some(
                        args.get(i)
                            .and_then(|s| s.parse().ok())
                            .unwrap_or_else(|| panic!("--repeats needs a positive integer")),
                    );
                }
                "--out" => {
                    i += 1;
                    out_dir = PathBuf::from(args.get(i).expect("--out needs a path"));
                }
                other => panic!("unknown flag {other}; supported: --scale, --repeats, --out"),
            }
            i += 1;
        }
        let repeats = repeats.unwrap_or(scale.repeats());
        BenchOpts {
            scale,
            repeats,
            out_dir,
        }
    }
}

/// A disk-backed memo of grid cells, so binaries sharing cells reuse them.
// BTreeMap keeps `cache.json` key order (and therefore its diffs) stable
// across runs regardless of cell completion order.
#[derive(Debug)]
pub struct CellCache {
    path: PathBuf,
    map: BTreeMap<String, CellSummary>,
}

impl CellCache {
    /// Opens (or creates) the cache under `dir/cache.json`.
    pub fn open(dir: &Path) -> CellCache {
        std::fs::create_dir_all(dir).ok();
        let path = dir.join("cache.json");
        let map = std::fs::read_to_string(&path)
            .ok()
            .and_then(|s| serde_json::from_str(&s).ok())
            .unwrap_or_default();
        CellCache { path, map }
    }

    fn key(cfg: &FlConfig, repeats: usize) -> String {
        format!(
            "r{repeats}:{}",
            serde_json::to_string(cfg).expect("config serializes")
        )
    }

    /// Runs (or recalls) one cell; persists the cache after a miss.
    ///
    /// # Panics
    ///
    /// Panics when the underlying simulation fails — bench binaries treat
    /// that as fatal.
    pub fn run(&mut self, cfg: &FlConfig, repeats: usize) -> CellSummary {
        let key = Self::key(cfg, repeats);
        if let Some(hit) = self.map.get(&key) {
            return hit.clone();
        }
        let t0 = std::time::Instant::now();
        let summary = run_cell(cfg, repeats).expect("simulation failed");
        eprintln!(
            "  [cell] {} / {} / {} β={} → ASR {:.1}% DPR {} ({:.0}s)",
            summary.task,
            summary.attack,
            summary.defense,
            summary.beta,
            summary.asr * 100.0,
            summary.dpr_display(),
            t0.elapsed().as_secs_f32()
        );
        self.map.insert(key, summary.clone());
        self.persist();
        summary
    }

    fn persist(&self) {
        if let Ok(s) = serde_json::to_string(&self.map) {
            std::fs::write(&self.path, s).ok();
        }
    }

    /// Number of memoized cells.
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// Whether the cache is empty.
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }
}

/// Writes pretty JSON to `dir/name`, creating the directory.
pub fn save_json<T: serde::Serialize>(dir: &Path, name: &str, value: &T) {
    std::fs::create_dir_all(dir).ok();
    let s = serde_json::to_string_pretty(value).expect("serializable");
    std::fs::write(dir.join(name), s).expect("write results");
}

/// Renders an aligned text table: header row plus data rows.
pub fn render_table(headers: &[&str], rows: &[Vec<String>]) -> String {
    let cols = headers.len();
    let mut widths: Vec<usize> = headers.iter().map(|h| h.len()).collect();
    for row in rows {
        for (i, cell) in row.iter().enumerate().take(cols) {
            widths[i] = widths[i].max(cell.len());
        }
    }
    let mut out = String::new();
    let fmt_row = |cells: &[String], widths: &[usize]| -> String {
        let mut line = String::new();
        for (i, c) in cells.iter().enumerate() {
            line.push_str(&format!("{:<w$}  ", c, w = widths[i]));
        }
        line.trim_end().to_string()
    };
    let head: Vec<String> = headers.iter().map(|s| s.to_string()).collect();
    out.push_str(&fmt_row(&head, &widths));
    out.push('\n');
    out.push_str(&"-".repeat(widths.iter().sum::<usize>() + 2 * cols));
    out.push('\n');
    for row in rows {
        out.push_str(&fmt_row(row, &widths));
        out.push('\n');
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use fabflip_fl::TaskKind;

    #[test]
    fn scale_profiles() {
        assert_eq!(Scale::Smoke.repeats(), 1);
        assert_eq!(Scale::Full.repeats(), 3);
        let cfg = FlConfig::builder(TaskKind::Fashion).build();
        let small = Scale::Smoke.shrink(cfg.clone());
        assert!(small.rounds < cfg.rounds);
        assert!(small.n_clients < cfg.n_clients);
        let same = Scale::Default.shrink(cfg.clone());
        assert_eq!(same, cfg);
    }

    #[test]
    fn cache_roundtrip() {
        let dir = std::env::temp_dir().join(format!("fabflip-cache-{}", std::process::id()));
        let mut cache = CellCache::open(&dir);
        assert!(cache.is_empty());
        let cfg = Scale::Smoke.shrink(
            FlConfig::builder(TaskKind::Fashion)
                .rounds(2)
                .n_clients(8)
                .clients_per_round(4)
                .train_size(80)
                .test_size(40)
                .build(),
        );
        let a = cache.run(&cfg, 1);
        assert_eq!(cache.len(), 1);
        // Second call: memo hit (and a fresh cache re-reads from disk).
        let b = cache.run(&cfg, 1);
        assert_eq!(a, b);
        let mut cache2 = CellCache::open(&dir);
        let c = cache2.run(&cfg, 1);
        assert_eq!(a, c);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn table_rendering_aligns_columns() {
        let t = render_table(
            &["Defense", "ASR"],
            &[
                vec!["mKrum".into(), "35.85".into()],
                vec!["TRmean".into(), "73.29".into()],
            ],
        );
        assert!(t.contains("Defense"));
        assert!(t.lines().count() >= 4);
    }
}
