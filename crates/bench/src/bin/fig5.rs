//! Fig. 5: defense pass rate (DPR) on the selection defenses mKrum and
//! Bulyan, both datasets, β = 0.5. Shares cells with table2 via the cache.

use fabflip_agg::DefenseKind;
use fabflip_bench::{render_table, save_json, BenchOpts, CellCache};
use fabflip_fl::{AttackSpec, FlConfig, TaskKind};

fn main() {
    let opts = BenchOpts::from_args();
    let mut cache = CellCache::open(&opts.out_dir);
    let mut all = Vec::new();
    let mut rows = Vec::new();
    for task in [TaskKind::Fashion, TaskKind::Cifar] {
        for defense in [DefenseKind::MKrum { f: 2 }, DefenseKind::Bulyan { f: 2 }] {
            let mut row = vec![task.label().to_string(), defense.label().to_string()];
            for attack in AttackSpec::paper_grid() {
                let cfg = opts.scale.shrink(
                    FlConfig::builder(task)
                        .defense(defense)
                        .attack(attack.clone())
                        .seed(1)
                        .build(),
                );
                let s = cache.run(&cfg, opts.repeats);
                row.push(s.dpr_display());
                all.push(s);
            }
            rows.push(row);
        }
    }
    println!("\nFig. 5 — defense pass rate (DPR, %) on selection defenses");
    println!(
        "{}",
        render_table(
            &["Dataset", "Defense", "Fang", "LIE", "Min-Max", "ZKA-R", "ZKA-G"],
            &rows
        )
    );
    save_json(&opts.out_dir, "fig5.json", &all);
}
