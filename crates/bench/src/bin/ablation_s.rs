//! Ablation of the synthetic-set size |S| — the hyper-parameter the paper
//! calls task-dependent, noting that "a similar number of images as benign
//! clients produce[s] good results" (Sec. IV-A). Sweeps |S| around the
//! benign shard size (20 images/client at default scale) for both ZKA
//! variants on Fashion-MNIST with mKrum.

use fabflip::ZkaConfig;
use fabflip_agg::DefenseKind;
use fabflip_bench::{render_table, save_json, BenchOpts, CellCache};
use fabflip_fl::{AttackSpec, FlConfig, TaskKind};

fn main() {
    let opts = BenchOpts::from_args();
    let mut cache = CellCache::open(&opts.out_dir);
    let mut all = Vec::new();
    let mut rows = Vec::new();
    for (name, make) in [
        (
            "ZKA-R",
            (|cfg: ZkaConfig| AttackSpec::ZkaR { cfg }) as fn(ZkaConfig) -> AttackSpec,
        ),
        ("ZKA-G", |cfg: ZkaConfig| AttackSpec::ZkaG { cfg }),
    ] {
        for s_size in [5usize, 20, 50] {
            let cfg = opts.scale.shrink(
                FlConfig::builder(TaskKind::Fashion)
                    .defense(DefenseKind::MKrum { f: 2 })
                    .attack(make(ZkaConfig::paper()))
                    .synth_set_size(s_size)
                    .seed(1)
                    .build(),
            );
            let s = cache.run(&cfg, opts.repeats);
            rows.push(vec![
                name.to_string(),
                format!("|S| = {s_size}"),
                format!("{:.2}", s.asr * 100.0),
                s.dpr_display(),
            ]);
            all.push(s);
        }
    }
    println!("\nAblation — synthetic-set size |S| (Fashion-MNIST, mKrum)");
    println!(
        "{}",
        render_table(&["Attack", "Set size", "ASR %", "DPR %"], &rows)
    );
    save_json(&opts.out_dir, "ablation_s.json", &all);
}
