//! Table II: ASR and max accuracy for the full attack × defense × dataset
//! grid at β = 0.5. Fig. 5 reuses these cells via the on-disk cache.

use fabflip_agg::DefenseKind;
use fabflip_bench::{render_table, save_json, BenchOpts, CellCache};
use fabflip_fl::{AttackSpec, FlConfig, TaskKind};

fn main() {
    let opts = BenchOpts::from_args();
    let mut cache = CellCache::open(&opts.out_dir);
    let mut all = Vec::new();
    for task in [TaskKind::Fashion, TaskKind::Cifar] {
        let mut rows = Vec::new();
        for defense in DefenseKind::paper_grid(2) {
            let mut row = vec![task.label().to_string(), defense.label().to_string()];
            for attack in AttackSpec::paper_grid() {
                let cfg = opts.scale.shrink(
                    FlConfig::builder(task)
                        .defense(defense)
                        .attack(attack.clone())
                        .seed(1)
                        .build(),
                );
                let s = cache.run(&cfg, opts.repeats);
                row.push(format!("{:.1}/{:.1}", s.acc_max * 100.0, s.asr * 100.0));
                all.push(s);
            }
            rows.push(row);
        }
        let natk = all.last().map(|s| s.acc_natk).unwrap_or(0.0);
        println!(
            "\nTable II — {} (acc_natk = {:.1}); cells are acc/ASR in %",
            task.label(),
            natk * 100.0
        );
        println!(
            "{}",
            render_table(
                &["Dataset", "Defense", "Fang", "LIE", "Min-Max", "ZKA-R", "ZKA-G"],
                &rows
            )
        );
    }
    save_json(&opts.out_dir, "table2.json", &all);
}
