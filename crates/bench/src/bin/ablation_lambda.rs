//! Ablation of the distance-regularizer strength λ for ZKA-G on
//! Fashion-MNIST + mKrum. Motivated by a reproduction deviation: at λ = 1
//! our ZKA-G deviates further than ZKA-R on the low-diversity fashion task
//! (the paper reports the opposite DPR ordering); this sweep shows how the
//! stealth/effectiveness trade-off moves with λ.

use fabflip::ZkaConfig;
use fabflip_agg::DefenseKind;
use fabflip_bench::{render_table, save_json, BenchOpts, CellCache};
use fabflip_fl::{AttackSpec, FlConfig, TaskKind};

fn main() {
    let opts = BenchOpts::from_args();
    let mut cache = CellCache::open(&opts.out_dir);
    let mut all = Vec::new();
    let mut rows = Vec::new();
    for lambda in [0.0f32, 1.0, 3.0, 10.0] {
        let mut zcfg = ZkaConfig::paper();
        zcfg.reg_lambda = lambda;
        let cfg = opts.scale.shrink(
            FlConfig::builder(TaskKind::Fashion)
                .defense(DefenseKind::MKrum { f: 2 })
                .attack(AttackSpec::ZkaG { cfg: zcfg })
                .seed(1)
                .build(),
        );
        let s = cache.run(&cfg, opts.repeats);
        rows.push(vec![
            format!("λ = {lambda}"),
            format!("{:.2}", s.asr * 100.0),
            s.dpr_display(),
        ]);
        all.push(s);
    }
    println!("\nAblation — regularizer strength λ (ZKA-G, Fashion-MNIST, mKrum)");
    println!("{}", render_table(&["Lambda", "ASR %", "DPR %"], &rows));
    save_json(&opts.out_dir, "ablation_lambda.json", &all);
}
