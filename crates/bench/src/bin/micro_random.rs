//! Sec. IV-A strawman: random model weights almost never pass the
//! selection defenses (paper: 2.62% / 6.57% DPR on mKrum, ≤ 3.27% Bulyan).

use fabflip_agg::DefenseKind;
use fabflip_bench::{render_table, save_json, BenchOpts, CellCache};
use fabflip_fl::{AttackSpec, FlConfig, TaskKind};

fn main() {
    let opts = BenchOpts::from_args();
    let mut cache = CellCache::open(&opts.out_dir);
    let mut all = Vec::new();
    let mut rows = Vec::new();
    for task in [TaskKind::Fashion, TaskKind::Cifar] {
        for defense in [DefenseKind::MKrum { f: 2 }, DefenseKind::Bulyan { f: 2 }] {
            let cfg = opts.scale.shrink(
                FlConfig::builder(task)
                    .defense(defense)
                    .attack(AttackSpec::RandomWeights)
                    .seed(1)
                    .build(),
            );
            let s = cache.run(&cfg, opts.repeats);
            rows.push(vec![
                task.label().to_string(),
                defense.label().to_string(),
                s.dpr_display(),
                format!("{:.2}", s.asr * 100.0),
            ]);
            all.push(s);
        }
    }
    println!("\nSec. IV-A — random-weight strawman (DPR %, ASR %)");
    println!(
        "{}",
        render_table(&["Dataset", "Defense", "DPR", "ASR"], &rows)
    );
    save_json(&opts.out_dir, "micro_random.json", &all);
}
