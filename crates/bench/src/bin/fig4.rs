//! Fig. 4: diversity of the synthetic data — 2-D projection (PCA standing
//! in for UMAP, see DESIGN.md §3) of |S| = 50 ZKA-R vs ZKA-G images on the
//! Fashion-MNIST task, plus the raw per-pixel variance gap.

use fabflip::{ZkaConfig, ZkaG, ZkaR};
use fabflip_attacks::TaskInfo;
use fabflip_bench::{save_json, BenchOpts};
use fabflip_data::pca_2d;
use fabflip_fl::TaskKind;
use fabflip_tensor::Tensor;
use rand::rngs::StdRng;
use rand::SeedableRng;
use serde::Serialize;

#[derive(Serialize)]
struct Fig4Output {
    zka_r_points: Vec<(f32, f32)>,
    zka_g_points: Vec<(f32, f32)>,
    zka_r_pixel_variance: f32,
    zka_g_pixel_variance: f32,
}

fn set_variance(s: &Tensor) -> f32 {
    let n = s.shape()[0];
    let d: usize = s.shape()[1..].iter().product();
    let mut var_sum = 0.0f32;
    for j in 0..d {
        let mean: f32 = (0..n).map(|i| s.data()[i * d + j]).sum::<f32>() / n as f32;
        var_sum += (0..n)
            .map(|i| (s.data()[i * d + j] - mean).powi(2))
            .sum::<f32>()
            / n as f32;
    }
    var_sum / d as f32
}

fn main() {
    let opts = BenchOpts::from_args();
    let set_size = if matches!(opts.scale, fabflip_bench::Scale::Smoke) {
        10
    } else {
        50
    };
    let mut rng = StdRng::seed_from_u64(4);
    let mut global = TaskKind::Fashion.build_model(&mut rng);
    let spec = TaskKind::Fashion.spec();
    let task = TaskInfo {
        channels: spec.channels,
        height: spec.height,
        width: spec.width,
        num_classes: spec.num_classes,
        synth_set_size: set_size,
        local_lr: 0.08,
        local_batch: 16,
        local_epochs: 1,
    };
    let cfg = ZkaConfig::paper();
    let (s_r, _) = ZkaR::new(cfg)
        .synthesize(&mut global, &task, &mut rng)
        .expect("zka-r");
    let (s_g, _) = ZkaG::new(cfg)
        .synthesize(&mut global, &task, 0, &mut rng)
        .expect("zka-g");

    // Joint PCA so both sets live in the same projection (as UMAP in Fig 4).
    let rows: Vec<Vec<f32>> = (0..2 * set_size)
        .map(|i| {
            let (src, j) = if i < set_size {
                (&s_r, i)
            } else {
                (&s_g, i - set_size)
            };
            let d: usize = src.shape()[1..].iter().product();
            src.data()[j * d..(j + 1) * d].to_vec()
        })
        .collect();
    let proj = pca_2d(&rows);
    let out = Fig4Output {
        zka_r_points: proj[..set_size].to_vec(),
        zka_g_points: proj[set_size..].to_vec(),
        zka_r_pixel_variance: set_variance(&s_r),
        zka_g_pixel_variance: set_variance(&s_g),
    };
    println!("Fig. 4 — synthetic-data diversity (|S| = {set_size}, Fashion-MNIST)");
    println!(
        "  ZKA-R mean per-pixel variance: {:.5}",
        out.zka_r_pixel_variance
    );
    println!(
        "  ZKA-G mean per-pixel variance: {:.5}",
        out.zka_g_pixel_variance
    );
    let spread = |pts: &[(f32, f32)]| -> f32 {
        let mx: f32 = pts.iter().map(|p| p.0).sum::<f32>() / pts.len() as f32;
        let my: f32 = pts.iter().map(|p| p.1).sum::<f32>() / pts.len() as f32;
        pts.iter()
            .map(|p| (p.0 - mx).powi(2) + (p.1 - my).powi(2))
            .sum::<f32>()
            / pts.len() as f32
    };
    println!("  ZKA-R projected spread: {:.4}", spread(&out.zka_r_points));
    println!("  ZKA-G projected spread: {:.4}", spread(&out.zka_g_points));
    println!("  (paper claim: ZKA-R > ZKA-G on both measures)");
    save_json(&opts.out_dir, "fig4.json", &out);
}
