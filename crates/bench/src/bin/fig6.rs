//! Fig. 6: convergence of the local generation loss over epochs, on global
//! models trained under each of the four defenses (Fashion-MNIST). ZKA-R
//! minimizes its loss, ZKA-G maximizes its cross-entropy — both converge
//! within a few epochs.

use fabflip::{ZkaConfig, ZkaG, ZkaR};
use fabflip_agg::DefenseKind;
use fabflip_attacks::TaskInfo;
use fabflip_bench::{save_json, BenchOpts, Scale};
use fabflip_fl::{simulate, FlConfig, TaskKind};
use rand::rngs::StdRng;
use rand::SeedableRng;
use serde::Serialize;
use std::collections::BTreeMap;

#[derive(Serialize)]
struct Fig6Output {
    zka_r_loss_by_defense: BTreeMap<String, Vec<f32>>,
    zka_g_loss_by_defense: BTreeMap<String, Vec<f32>>,
}

fn main() {
    let opts = BenchOpts::from_args();
    let warmup_rounds = if matches!(opts.scale, Scale::Smoke) {
        3
    } else {
        10
    };
    let epochs = 10usize;
    let mut out = Fig6Output {
        zka_r_loss_by_defense: BTreeMap::new(),
        zka_g_loss_by_defense: BTreeMap::new(),
    };
    for defense in DefenseKind::paper_grid(2) {
        // Warm up a clean global model under this defense, then trace the
        // attack-side generation losses against it.
        let cfg = opts.scale.shrink(
            FlConfig::builder(TaskKind::Fashion)
                .defense(defense)
                .rounds(warmup_rounds)
                .seed(2)
                .build(),
        );
        let spec = TaskKind::Fashion.spec();
        let task = TaskInfo {
            channels: spec.channels,
            height: spec.height,
            width: spec.width,
            num_classes: spec.num_classes,
            synth_set_size: 10,
            local_lr: cfg.lr,
            local_batch: cfg.batch,
            local_epochs: cfg.local_epochs,
        };
        // The traced global model is the defense's own FL-warmed model, so
        // each defense yields a different loss trajectory (as in Fig. 6).
        let warm = simulate(&cfg).expect("warmup sim");
        let mut rng = StdRng::seed_from_u64(7);
        let mut global = TaskKind::Fashion.build_model(&mut rng);
        global
            .set_flat_params(&warm.final_model)
            .expect("weights fit the architecture");
        let mut zcfg = ZkaConfig::paper();
        zcfg.gen_epochs = epochs;
        let (_, r_trace) = ZkaR::new(zcfg)
            .synthesize(&mut global, &task, &mut rng)
            .expect("zka-r");
        let (_, g_trace) = ZkaG::new(zcfg)
            .synthesize(&mut global, &task, 0, &mut rng)
            .expect("zka-g");
        println!("{}: ZKA-R loss {:?}", defense.label(), r_trace);
        println!("{}: ZKA-G CE   {:?}", defense.label(), g_trace);
        out.zka_r_loss_by_defense
            .insert(defense.label().to_string(), r_trace);
        out.zka_g_loss_by_defense
            .insert(defense.label().to_string(), g_trace);
    }
    println!("(paper claim: both converge to a local optimum within a few epochs)");
    save_json(&opts.out_dir, "fig6.json", &out);
}
