//! Table I: attack assumption matrix (qualitative threat-model comparison).

use fabflip::{ZkaConfig, ZkaG, ZkaR};
use fabflip_attacks::{Attack, Fang, Lie, MinMax};
use fabflip_bench::render_table;

fn main() {
    let attacks: Vec<Box<dyn Attack>> = vec![
        Box::new(Lie::new()),
        Box::new(Fang::new()),
        Box::new(MinMax::new()),
        Box::new(ZkaR::new(ZkaConfig::paper())),
        Box::new(ZkaG::new(ZkaConfig::paper())),
    ];
    let rows: Vec<Vec<String>> = attacks
        .iter()
        .map(|a| {
            let c = a.capabilities();
            vec![
                a.name().to_string(),
                if c.needs_benign_updates { "yes" } else { "no" }.to_string(),
                if c.defenses_known.is_empty() {
                    "—".to_string()
                } else {
                    c.defenses_known.join(", ")
                },
                if c.works_defense_unknown { "yes" } else { "no" }.to_string(),
                if c.needs_raw_data { "yes" } else { "no" }.to_string(),
                if c.handles_heterogeneity { "yes" } else { "no" }.to_string(),
            ]
        })
        .collect();
    println!("Table I — attack scenarios (paper Sec. III-B)\n");
    println!(
        "{}",
        render_table(
            &[
                "Attack",
                "Benign updates",
                "Defenses known",
                "Defense-unknown",
                "Raw data",
                "Heterogeneity"
            ],
            &rows
        )
    );
}
