//! Table IV: static (randomly initialized, untrained) vs trained synthetic
//! data generation for ZKA-R and ZKA-G — ASR and DPR on all four defenses.

use fabflip::ZkaConfig;
use fabflip_agg::DefenseKind;
use fabflip_bench::{render_table, save_json, BenchOpts, CellCache};
use fabflip_fl::{AttackSpec, FlConfig, TaskKind};

fn main() {
    let opts = BenchOpts::from_args();
    let mut cache = CellCache::open(&opts.out_dir);
    let mut all = Vec::new();
    let mut rows = Vec::new();
    for task in [TaskKind::Fashion, TaskKind::Cifar] {
        for (name, make) in [
            (
                "ZKA-R",
                (|cfg: ZkaConfig| AttackSpec::ZkaR { cfg }) as fn(ZkaConfig) -> AttackSpec,
            ),
            ("ZKA-G", |cfg: ZkaConfig| AttackSpec::ZkaG { cfg }),
        ] {
            for defense in DefenseKind::paper_grid(2) {
                let mut row = vec![
                    format!("{name} {}", task.label()),
                    defense.label().to_string(),
                ];
                for zcfg in [ZkaConfig::static_variant(), ZkaConfig::paper()] {
                    let cfg = opts.scale.shrink(
                        FlConfig::builder(task)
                            .defense(defense)
                            .attack(make(zcfg))
                            .seed(1)
                            .build(),
                    );
                    let s = cache.run(&cfg, opts.repeats);
                    row.push(format!("{:.2}", s.asr * 100.0));
                    row.push(s.dpr_display());
                    all.push(s);
                }
                rows.push(row);
            }
        }
    }
    println!("\nTable IV — static vs trained synthetic data (ASR %, DPR %)");
    println!(
        "{}",
        render_table(
            &[
                "Attack",
                "Defense",
                "Static ASR",
                "Static DPR",
                "Trained ASR",
                "Trained DPR"
            ],
            &rows
        )
    );
    save_json(&opts.out_dir, "table4.json", &all);
}
