//! Fig. 7: ASR of the real-data label flip vs the ZKA synthetic data, on
//! all four defenses and both datasets.

use fabflip::ZkaConfig;
use fabflip_agg::DefenseKind;
use fabflip_bench::{render_table, save_json, BenchOpts, CellCache};
use fabflip_fl::{AttackSpec, FlConfig, TaskKind};

fn main() {
    let opts = BenchOpts::from_args();
    let mut cache = CellCache::open(&opts.out_dir);
    let mut all = Vec::new();
    let mut rows = Vec::new();
    let attacks = [
        AttackSpec::RealData { lambda: 1.0 },
        AttackSpec::ZkaR {
            cfg: ZkaConfig::paper(),
        },
        AttackSpec::ZkaG {
            cfg: ZkaConfig::paper(),
        },
    ];
    for task in [TaskKind::Fashion, TaskKind::Cifar] {
        for defense in DefenseKind::paper_grid(2) {
            let mut row = vec![task.label().to_string(), defense.label().to_string()];
            for attack in &attacks {
                let cfg = opts.scale.shrink(
                    FlConfig::builder(task)
                        .defense(defense)
                        .attack(attack.clone())
                        .seed(1)
                        .build(),
                );
                let s = cache.run(&cfg, opts.repeats);
                row.push(format!("{:.2}", s.asr * 100.0));
                all.push(s);
            }
            rows.push(row);
        }
    }
    println!("\nFig. 7 — real vs synthetic data, ASR (%)");
    println!(
        "{}",
        render_table(
            &["Dataset", "Defense", "Real-data", "ZKA-R", "ZKA-G"],
            &rows
        )
    );
    save_json(&opts.out_dir, "fig7.json", &all);
}
