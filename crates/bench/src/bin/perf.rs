//! Kernel/throughput benchmark: emits `BENCH_kernels.json` in the current
//! directory with matmul GFLOP/s (new tiled kernels vs the seed's ikj
//! kernel re-implemented below as the baseline), conv forward/backward
//! throughput, per-rule aggregation timings at `n = 50, d = 100k`, one
//! full FL round, the worker-pool dispatch-overhead microbench (persistent
//! pool vs per-dispatch `thread::scope`), and the Sec. IV-E complexity
//! claims (ZKA crafting cost vs a benign client's local epoch).
//!
//! Run with `cargo run --release -p fabflip-bench --bin perf`. The thread
//! budget follows `FABFLIP_THREADS` (see README); the dispatch microbench
//! pins the budget to 4 so it exercises the pool even on small runners.
//!
//! `--smoke` runs only the dispatch microbench with a reduced dispatch
//! count, does not write `BENCH_kernels.json`, and exits non-zero when the
//! pool is not measurably faster than per-dispatch spawning — CI uses this
//! as a cheap dispatch-overhead regression gate.

use fabflip::{ZkaConfig, ZkaG, ZkaR};
use fabflip_agg::{
    Bulyan, Defense, FedAvg, FoolsGold, Krum, Median, MultiKrum, NormBound, TrimmedMean,
};
use fabflip_attacks::TaskInfo;
use fabflip_data::{Dataset, SynthSpec};
use fabflip_fl::{simulate, FlConfig, TaskKind};
use fabflip_nn::losses::softmax_cross_entropy_hard;
use fabflip_nn::{Conv2d, Layer};
use fabflip_tensor::{matmul_into, matmul_into_serial, par, Tensor};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde_json::Value;
use std::time::Instant;

/// The seed repository's matmul kernel (ikj order with the zero-skip
/// branch), kept here verbatim as the performance baseline.
fn seed_matmul_into(a: &[f32], b: &[f32], c: &mut [f32], m: usize, k: usize, n: usize) {
    for i in 0..m {
        let a_row = &a[i * k..(i + 1) * k];
        let c_row = &mut c[i * n..(i + 1) * n];
        for (p, &a_ip) in a_row.iter().enumerate() {
            if a_ip == 0.0 {
                continue;
            }
            let b_row = &b[p * n..(p + 1) * n];
            for (c_v, &b_v) in c_row.iter_mut().zip(b_row) {
                *c_v += a_ip * b_v;
            }
        }
    }
}

/// Best-of-`reps` wall-clock seconds for `f`.
fn time_best<F: FnMut()>(reps: usize, mut f: F) -> f64 {
    let mut best = f64::INFINITY;
    for _ in 0..reps {
        let t = Instant::now();
        f();
        best = best.min(t.elapsed().as_secs_f64());
    }
    best
}

fn bench_matmul(sizes: &[usize]) -> (Vec<Value>, f64) {
    let mut rows = Vec::new();
    let mut speedup_1024 = 0.0f64;
    for &s in sizes {
        let mut rng = StdRng::seed_from_u64(42);
        let a: Vec<f32> = (0..s * s).map(|_| rng.gen_range(-1.0f32..1.0)).collect();
        let b: Vec<f32> = (0..s * s).map(|_| rng.gen_range(-1.0f32..1.0)).collect();
        let mut c = vec![0.0f32; s * s];
        let flops = 2.0 * (s as f64).powi(3);
        let reps = if s >= 1024 { 3 } else { 5 };

        let t_new = time_best(reps, || {
            c.iter_mut().for_each(|v| *v = 0.0);
            matmul_into(&a, &b, &mut c, s, s, s);
        });
        let t_seed = time_best(reps.min(3), || {
            c.iter_mut().for_each(|v| *v = 0.0);
            seed_matmul_into(&a, &b, &mut c, s, s, s);
        });
        let speedup = t_seed / t_new;
        if s == 1024 {
            speedup_1024 = speedup;
        }
        println!(
            "matmul {s}x{s}x{s}: new {:.2} GFLOP/s, seed {:.2} GFLOP/s, speedup {:.2}x",
            flops / t_new / 1e9,
            flops / t_seed / 1e9,
            speedup
        );
        rows.push(serde_json::json!({
            "size": s as u64,
            "new_gflops": flops / t_new / 1e9,
            "seed_gflops": flops / t_seed / 1e9,
            "speedup": speedup,
        }));
    }
    (rows, speedup_1024)
}

fn bench_conv() -> Value {
    // Cifar-scale middle layer: batch 32, 8 -> 16 channels, 3x3 on 32x32.
    let (batch, cin, cout, hw) = (32usize, 8usize, 16usize, 32usize);
    let mut rng = StdRng::seed_from_u64(7);
    let mut conv = Conv2d::new(cin, cout, 3, 1, 1, &mut rng);
    let x = Tensor::uniform(vec![batch, cin, hw, hw], -1.0, 1.0, &mut rng);
    let y = conv.forward(&x).expect("conv forward");
    let g = Tensor::uniform(y.shape().to_vec(), -1.0, 1.0, &mut rng);

    let t_fwd = time_best(5, || {
        let _ = conv.forward(&x).expect("conv forward");
    });
    let t_bwd = time_best(5, || {
        let _ = conv.backward(&g).expect("conv backward");
    });
    println!(
        "conv fwd {:.1} samples/s, bwd {:.1} samples/s (batch {batch}, {cin}->{cout} ch, {hw}x{hw})",
        batch as f64 / t_fwd,
        batch as f64 / t_bwd
    );
    serde_json::json!({
        "batch": batch as u64,
        "in_channels": cin as u64,
        "out_channels": cout as u64,
        "spatial": hw as u64,
        "forward_samples_per_s": batch as f64 / t_fwd,
        "backward_samples_per_s": batch as f64 / t_bwd,
    })
}

fn bench_aggregation(n: usize, d: usize) -> Vec<Value> {
    let mut rng = StdRng::seed_from_u64(11);
    let updates: Vec<Vec<f32>> = (0..n)
        .map(|_| (0..d).map(|_| rng.gen_range(-1.0f32..1.0)).collect())
        .collect();
    let weights = vec![1.0f32; n];
    let rules: Vec<(&str, Box<dyn Defense>)> = vec![
        ("FedAvg", Box::new(FedAvg::new())),
        ("Krum", Box::new(Krum::new(10))),
        ("mKrum", Box::new(MultiKrum::with_default_m(10))),
        ("TRmean", Box::new(TrimmedMean::new(10))),
        ("Median", Box::new(Median::new())),
        ("Bulyan", Box::new(Bulyan::new(10))),
        ("FoolsGold", Box::new(FoolsGold::new())),
        ("NormBound", Box::new(NormBound::new(1.0))),
    ];
    let mut rows = Vec::new();
    for (name, rule) in &rules {
        let t = time_best(3, || {
            let _ = rule.aggregate(&updates, &weights).expect("aggregate");
        });
        println!("agg {name}: {:.1} ms (n={n}, d={d})", t * 1e3);
        rows.push(serde_json::json!({
            "rule": *name,
            "n": n as u64,
            "d": d as u64,
            "seconds": t,
        }));
    }
    rows
}

/// Dispatch-overhead microbench: many small parallel jobs, where per-job
/// fixed cost (thread hand-off) dominates the arithmetic. Compares the
/// persistent worker pool against [`par::spawn_reference`] — the pre-pool
/// per-dispatch `thread::scope` implementation kept verbatim as the
/// baseline. Pins the thread budget to 4 (restored afterwards) so both
/// sides actually hand work to helpers; each dispatch is a 32x32x32 matmul
/// split into four row blocks.
fn bench_dispatch(smoke: bool) -> (Value, f64) {
    const S: usize = 32;
    const ROWS_PER_BLOCK: usize = 8;
    let dispatches = if smoke { 1_000 } else { 10_000 };
    let reps = if smoke { 2 } else { 3 };
    let threads = 4usize;
    let prev_budget = par::max_threads();
    par::set_max_threads(threads);

    let mut rng = StdRng::seed_from_u64(21);
    let a: Vec<f32> = (0..S * S).map(|_| rng.gen_range(-1.0f32..1.0)).collect();
    let b: Vec<f32> = (0..S * S).map(|_| rng.gen_range(-1.0f32..1.0)).collect();
    let mut c = vec![0.0f32; S * S];
    let block = |lo_block: usize, chunk: &mut [f32]| {
        chunk.fill(0.0);
        let lo = lo_block * ROWS_PER_BLOCK;
        let rows = chunk.len() / S;
        matmul_into_serial(&a[lo * S..(lo + rows) * S], &b, chunk, rows, S, S);
    };

    // Both dispatch paths must agree bitwise with the serial kernel before
    // their timings mean anything.
    let mut c_serial = vec![0.0f32; S * S];
    matmul_into_serial(&a, &b, &mut c_serial, S, S, S);
    par::for_each_chunk_mut(&mut c, ROWS_PER_BLOCK * S, block);
    assert!(
        c.iter()
            .zip(&c_serial)
            .all(|(x, y)| x.to_bits() == y.to_bits()),
        "pool dispatch diverged from serial"
    );
    c.fill(1.0);
    par::spawn_reference::for_each_chunk_mut(&mut c, ROWS_PER_BLOCK * S, block);
    assert!(
        c.iter()
            .zip(&c_serial)
            .all(|(x, y)| x.to_bits() == y.to_bits()),
        "spawn-reference dispatch diverged from serial"
    );

    let t_pool = time_best(reps, || {
        for _ in 0..dispatches {
            par::for_each_chunk_mut(&mut c, ROWS_PER_BLOCK * S, block);
        }
    });
    let t_spawn = time_best(reps, || {
        for _ in 0..dispatches {
            par::spawn_reference::for_each_chunk_mut(&mut c, ROWS_PER_BLOCK * S, block);
        }
    });
    par::set_max_threads(prev_budget);

    let speedup = t_spawn / t_pool;
    println!(
        "dispatch ({dispatches} x {S}x{S}x{S} matmul, {threads} threads): \
         pool {:.2} us/dispatch, spawn {:.2} us/dispatch, speedup {:.2}x",
        t_pool / dispatches as f64 * 1e6,
        t_spawn / dispatches as f64 * 1e6,
        speedup
    );
    let row = serde_json::json!({
        "dispatches": dispatches as u64,
        "threads": threads as u64,
        "matmul_size": S as u64,
        "pool_seconds": t_pool,
        "spawn_seconds": t_spawn,
        "pool_us_per_dispatch": t_pool / dispatches as f64 * 1e6,
        "spawn_us_per_dispatch": t_spawn / dispatches as f64 * 1e6,
        "speedup_vs_spawn": speedup,
    });
    (row, speedup)
}

fn fashion_task(set_size: usize) -> TaskInfo {
    let spec = SynthSpec::fashion_like();
    TaskInfo {
        channels: spec.channels,
        height: spec.height,
        width: spec.width,
        num_classes: spec.num_classes,
        synth_set_size: set_size,
        local_lr: 0.08,
        local_batch: 16,
        local_epochs: 1,
    }
}

/// The paper's Sec. IV-E complexity claims, measured: the adversary's
/// per-round synthetic-set crafting (ZKA-R's O(|S| J² Q I²), ZKA-G's
/// O(|S| (P + Q) I²)) stays within a small factor of a benign client's
/// local epoch. Formerly a criterion bench (`benches/micro.rs`), folded
/// into this JSON so the numbers land next to the kernel timings.
fn bench_complexity() -> Value {
    let set_size = 20usize;
    let spec = SynthSpec::fashion_like();
    let data = Dataset::synthesize(&spec, set_size, 1);
    let idx: Vec<usize> = (0..set_size).collect();
    let t_benign = time_best(3, || {
        let mut rng = StdRng::seed_from_u64(2);
        let mut model = TaskKind::Fashion.build_model(&mut rng);
        for batch in data.shuffled_batches(&idx, 16, &mut rng) {
            model
                .train_step(&batch.images, 0.08, |lg| {
                    softmax_cross_entropy_hard(lg, &batch.labels)
                })
                .expect("train step");
        }
    });

    let task = fashion_task(set_size);
    let t_zka_r = time_best(2, || {
        let mut rng = StdRng::seed_from_u64(3);
        let mut global = TaskKind::Fashion.build_model(&mut rng);
        let _ = ZkaR::new(ZkaConfig::paper())
            .synthesize(&mut global, &task, &mut rng)
            .expect("zka-r synthesize");
    });
    let t_zka_g = time_best(2, || {
        let mut rng = StdRng::seed_from_u64(4);
        let mut global = TaskKind::Fashion.build_model(&mut rng);
        let _ = ZkaG::new(ZkaConfig::paper())
            .synthesize(&mut global, &task, 0, &mut rng)
            .expect("zka-g synthesize");
    });
    println!(
        "complexity (|S|={set_size}, fashion): benign epoch {:.3} s, \
         zka-r {:.3} s ({:.1}x), zka-g {:.3} s ({:.1}x)",
        t_benign,
        t_zka_r,
        t_zka_r / t_benign,
        t_zka_g,
        t_zka_g / t_benign
    );
    serde_json::json!({
        "set_size": set_size as u64,
        "benign_local_epoch_s": t_benign,
        "zka_r_synthesize_s": t_zka_r,
        "zka_g_synthesize_s": t_zka_g,
        "zka_r_over_benign": t_zka_r / t_benign,
        "zka_g_over_benign": t_zka_g / t_benign,
    })
}

fn bench_fl_round() -> Value {
    let cfg = FlConfig::builder(TaskKind::Fashion)
        .rounds(1)
        .n_clients(12)
        .clients_per_round(6)
        .train_size(240)
        .test_size(80)
        .synth_set_size(6)
        .seed(5)
        .build();
    let t = time_best(2, || {
        let _ = simulate(&cfg).expect("fl round");
    });
    println!("fl round: {:.2} s (fashion, 6 clients)", t);
    serde_json::json!({
        "task": "fashion",
        "clients_per_round": 6u64,
        "seconds": t,
    })
}

fn main() {
    let smoke = std::env::args().any(|a| a == "--smoke");
    if smoke {
        // CI regression gate: dispatch overhead only, no JSON rewrite.
        let (_, speedup) = bench_dispatch(true);
        if speedup < 1.3 {
            eprintln!("FAIL: pool dispatch speedup {speedup:.2}x < 1.3x vs per-dispatch spawn");
            std::process::exit(1);
        }
        println!("smoke ok: pool dispatch {speedup:.2}x vs per-dispatch spawn");
        return;
    }
    println!("threads: {}", par::max_threads());
    let (matmul_rows, speedup_1024) = bench_matmul(&[256, 512, 1024]);
    let conv = bench_conv();
    let agg = bench_aggregation(50, 100_000);
    let fl_round = bench_fl_round();
    let (dispatch, dispatch_speedup) = bench_dispatch(false);
    let complexity = bench_complexity();
    let out = serde_json::json!({
        "threads": par::max_threads() as u64,
        "matmul": matmul_rows,
        "matmul_1024_speedup_vs_seed": speedup_1024,
        "conv": conv,
        "aggregation": agg,
        "fl_round": fl_round,
        "dispatch": dispatch,
        "complexity": complexity,
    });
    let json = serde_json::to_string_pretty(&out).expect("serialize");
    std::fs::write("BENCH_kernels.json", &json).expect("write BENCH_kernels.json");
    println!("wrote BENCH_kernels.json (dispatch speedup {dispatch_speedup:.2}x)");
}
