//! Kernel/throughput benchmark: emits `BENCH_kernels.json` in the current
//! directory with matmul GFLOP/s (new tiled kernels vs the seed's ikj
//! kernel re-implemented below as the baseline), conv forward/backward
//! throughput, per-rule aggregation timings at `n = 50, d = 100k`, and one
//! full FL round.
//!
//! Run with `cargo run --release -p fabflip-bench --bin perf`. The thread
//! budget follows `FABFLIP_THREADS` (see README).

use fabflip_agg::{
    Bulyan, Defense, FedAvg, FoolsGold, Krum, Median, MultiKrum, NormBound, TrimmedMean,
};
use fabflip_fl::{simulate, FlConfig, TaskKind};
use fabflip_nn::{Conv2d, Layer};
use fabflip_tensor::{matmul_into, par, Tensor};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde_json::Value;
use std::time::Instant;

/// The seed repository's matmul kernel (ikj order with the zero-skip
/// branch), kept here verbatim as the performance baseline.
fn seed_matmul_into(a: &[f32], b: &[f32], c: &mut [f32], m: usize, k: usize, n: usize) {
    for i in 0..m {
        let a_row = &a[i * k..(i + 1) * k];
        let c_row = &mut c[i * n..(i + 1) * n];
        for (p, &a_ip) in a_row.iter().enumerate() {
            if a_ip == 0.0 {
                continue;
            }
            let b_row = &b[p * n..(p + 1) * n];
            for (c_v, &b_v) in c_row.iter_mut().zip(b_row) {
                *c_v += a_ip * b_v;
            }
        }
    }
}

/// Best-of-`reps` wall-clock seconds for `f`.
fn time_best<F: FnMut()>(reps: usize, mut f: F) -> f64 {
    let mut best = f64::INFINITY;
    for _ in 0..reps {
        let t = Instant::now();
        f();
        best = best.min(t.elapsed().as_secs_f64());
    }
    best
}

fn bench_matmul(sizes: &[usize]) -> (Vec<Value>, f64) {
    let mut rows = Vec::new();
    let mut speedup_1024 = 0.0f64;
    for &s in sizes {
        let mut rng = StdRng::seed_from_u64(42);
        let a: Vec<f32> = (0..s * s).map(|_| rng.gen_range(-1.0f32..1.0)).collect();
        let b: Vec<f32> = (0..s * s).map(|_| rng.gen_range(-1.0f32..1.0)).collect();
        let mut c = vec![0.0f32; s * s];
        let flops = 2.0 * (s as f64).powi(3);
        let reps = if s >= 1024 { 3 } else { 5 };

        let t_new = time_best(reps, || {
            c.iter_mut().for_each(|v| *v = 0.0);
            matmul_into(&a, &b, &mut c, s, s, s);
        });
        let t_seed = time_best(reps.min(3), || {
            c.iter_mut().for_each(|v| *v = 0.0);
            seed_matmul_into(&a, &b, &mut c, s, s, s);
        });
        let speedup = t_seed / t_new;
        if s == 1024 {
            speedup_1024 = speedup;
        }
        println!(
            "matmul {s}x{s}x{s}: new {:.2} GFLOP/s, seed {:.2} GFLOP/s, speedup {:.2}x",
            flops / t_new / 1e9,
            flops / t_seed / 1e9,
            speedup
        );
        rows.push(serde_json::json!({
            "size": s as u64,
            "new_gflops": flops / t_new / 1e9,
            "seed_gflops": flops / t_seed / 1e9,
            "speedup": speedup,
        }));
    }
    (rows, speedup_1024)
}

fn bench_conv() -> Value {
    // Cifar-scale middle layer: batch 32, 8 -> 16 channels, 3x3 on 32x32.
    let (batch, cin, cout, hw) = (32usize, 8usize, 16usize, 32usize);
    let mut rng = StdRng::seed_from_u64(7);
    let mut conv = Conv2d::new(cin, cout, 3, 1, 1, &mut rng);
    let x = Tensor::uniform(vec![batch, cin, hw, hw], -1.0, 1.0, &mut rng);
    let y = conv.forward(&x).expect("conv forward");
    let g = Tensor::uniform(y.shape().to_vec(), -1.0, 1.0, &mut rng);

    let t_fwd = time_best(5, || {
        let _ = conv.forward(&x).expect("conv forward");
    });
    let t_bwd = time_best(5, || {
        let _ = conv.backward(&g).expect("conv backward");
    });
    println!(
        "conv fwd {:.1} samples/s, bwd {:.1} samples/s (batch {batch}, {cin}->{cout} ch, {hw}x{hw})",
        batch as f64 / t_fwd,
        batch as f64 / t_bwd
    );
    serde_json::json!({
        "batch": batch as u64,
        "in_channels": cin as u64,
        "out_channels": cout as u64,
        "spatial": hw as u64,
        "forward_samples_per_s": batch as f64 / t_fwd,
        "backward_samples_per_s": batch as f64 / t_bwd,
    })
}

fn bench_aggregation(n: usize, d: usize) -> Vec<Value> {
    let mut rng = StdRng::seed_from_u64(11);
    let updates: Vec<Vec<f32>> = (0..n)
        .map(|_| (0..d).map(|_| rng.gen_range(-1.0f32..1.0)).collect())
        .collect();
    let weights = vec![1.0f32; n];
    let rules: Vec<(&str, Box<dyn Defense>)> = vec![
        ("FedAvg", Box::new(FedAvg::new())),
        ("Krum", Box::new(Krum::new(10))),
        ("mKrum", Box::new(MultiKrum::with_default_m(10))),
        ("TRmean", Box::new(TrimmedMean::new(10))),
        ("Median", Box::new(Median::new())),
        ("Bulyan", Box::new(Bulyan::new(10))),
        ("FoolsGold", Box::new(FoolsGold::new())),
        ("NormBound", Box::new(NormBound::new(1.0))),
    ];
    let mut rows = Vec::new();
    for (name, rule) in &rules {
        let t = time_best(3, || {
            let _ = rule.aggregate(&updates, &weights).expect("aggregate");
        });
        println!("agg {name}: {:.1} ms (n={n}, d={d})", t * 1e3);
        rows.push(serde_json::json!({
            "rule": *name,
            "n": n as u64,
            "d": d as u64,
            "seconds": t,
        }));
    }
    rows
}

fn bench_fl_round() -> Value {
    let cfg = FlConfig::builder(TaskKind::Fashion)
        .rounds(1)
        .n_clients(12)
        .clients_per_round(6)
        .train_size(240)
        .test_size(80)
        .synth_set_size(6)
        .seed(5)
        .build();
    let t = time_best(2, || {
        let _ = simulate(&cfg).expect("fl round");
    });
    println!("fl round: {:.2} s (fashion, 6 clients)", t);
    serde_json::json!({
        "task": "fashion",
        "clients_per_round": 6u64,
        "seconds": t,
    })
}

fn main() {
    println!("threads: {}", par::max_threads());
    let (matmul_rows, speedup_1024) = bench_matmul(&[256, 512, 1024]);
    let conv = bench_conv();
    let agg = bench_aggregation(50, 100_000);
    let fl_round = bench_fl_round();
    let out = serde_json::json!({
        "threads": par::max_threads() as u64,
        "matmul": matmul_rows,
        "matmul_1024_speedup_vs_seed": speedup_1024,
        "conv": conv,
        "aggregation": agg,
        "fl_round": fl_round,
    });
    let json = serde_json::to_string_pretty(&out).expect("serialize");
    std::fs::write("BENCH_kernels.json", &json).expect("write BENCH_kernels.json");
    println!("wrote BENCH_kernels.json");
}
