//! Kernel/throughput benchmark: emits `BENCH_kernels.json` in the current
//! directory with matmul GFLOP/s (new tiled kernels vs the seed's ikj
//! kernel re-implemented below as the baseline), conv forward/backward
//! throughput, per-rule aggregation timings at `n = 50, d = 100k`, one
//! full FL round, the worker-pool dispatch-overhead microbench (persistent
//! pool vs per-dispatch `thread::scope`), and the Sec. IV-E complexity
//! claims (ZKA crafting cost vs a benign client's local epoch).
//!
//! Run with `cargo run --release -p fabflip-bench --bin perf`. The thread
//! budget follows `FABFLIP_THREADS` (see README); the dispatch microbench
//! pins the budget to 4 so it exercises the pool even on small runners.
//!
//! The million-client n-sweep (DESIGN.md §4e) times every aggregation
//! rule as the cohort grows at fixed `d`: the mean family streams through
//! a [`StreamingServer`] (per-rule seconds plus the actual O(shards·d)
//! resident aggregation state), FedAvg additionally at the f16/i8 wire
//! codecs, and the quadratic selection family runs the blocked O(B·n)-
//! resident kernels.
//!
//! The full run also reports the per-backend GEMM section (every
//! supported `fabflip_tensor::backend` at 256/1024), backend × thread
//! GEMM scaling, and the per-backend `vecops` reduction microbench at
//! d = 256/4096/65536 (DESIGN.md §4f).
//!
//! `--smoke` runs the dispatch microbench with a reduced dispatch count
//! plus a reduced n-sweep (n = 50/500), does not write
//! `BENCH_kernels.json`, and exits non-zero when the pool is not
//! measurably faster than per-dispatch spawning, the streaming path
//! diverges from batch FedAvg, or (on SIMD-capable hosts) the detected
//! backend's 1024³ GEMM falls below the committed autovectorized
//! baseline — CI uses this as a cheap perf/correctness regression gate.

use fabflip::{ZkaConfig, ZkaG, ZkaR};
use fabflip_agg::{
    Bulyan, Defense, DefenseKind, FedAvg, FoolsGold, Krum, Median, MultiKrum, NormBound,
    StreamingConfig, TrimmedMean, KRUM_ROW_BLOCK,
};
use fabflip_attacks::TaskInfo;
use fabflip_data::{Dataset, SynthSpec};
use fabflip_fl::{simulate, Codec, FlConfig, StreamingServer, TaskKind};
use fabflip_nn::losses::softmax_cross_entropy_hard;
use fabflip_nn::{Conv2d, Layer};
use fabflip_tensor::backend::{self, Kind, ALL_KINDS};
use fabflip_tensor::{matmul_into, matmul_into_serial, par, quant, vecops, Tensor};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde_json::Value;
use std::time::Instant;

/// The seed repository's matmul kernel (ikj order with the zero-skip
/// branch), kept here verbatim as the performance baseline.
fn seed_matmul_into(a: &[f32], b: &[f32], c: &mut [f32], m: usize, k: usize, n: usize) {
    for i in 0..m {
        let a_row = &a[i * k..(i + 1) * k];
        let c_row = &mut c[i * n..(i + 1) * n];
        for (p, &a_ip) in a_row.iter().enumerate() {
            if a_ip == 0.0 {
                continue;
            }
            let b_row = &b[p * n..(p + 1) * n];
            for (c_v, &b_v) in c_row.iter_mut().zip(b_row) {
                *c_v += a_ip * b_v;
            }
        }
    }
}

/// 1024³ GEMM GFLOP/s of the pre-backend autovectorized
/// `target-cpu=native` build (committed BENCH_kernels.json baseline).
/// The detected-SIMD runtime backend must beat it — runtime dispatch is
/// only worth shipping if it recovers at least what static codegen gave.
const COMMITTED_AUTOVEC_1024_GFLOPS: f64 = 66.038;

/// Best-of-`reps` wall-clock seconds for `f`.
fn time_best<F: FnMut()>(reps: usize, mut f: F) -> f64 {
    let mut best = f64::INFINITY;
    for _ in 0..reps {
        let t = Instant::now();
        f();
        best = best.min(t.elapsed().as_secs_f64());
    }
    best
}

fn bench_matmul(sizes: &[usize]) -> (Vec<Value>, f64) {
    let mut rows = Vec::new();
    let mut speedup_1024 = 0.0f64;
    for &s in sizes {
        let mut rng = StdRng::seed_from_u64(42);
        let a: Vec<f32> = (0..s * s).map(|_| rng.gen_range(-1.0f32..1.0)).collect();
        let b: Vec<f32> = (0..s * s).map(|_| rng.gen_range(-1.0f32..1.0)).collect();
        let mut c = vec![0.0f32; s * s];
        let flops = 2.0 * (s as f64).powi(3);
        let reps = if s >= 1024 { 3 } else { 5 };

        let t_new = time_best(reps, || {
            c.iter_mut().for_each(|v| *v = 0.0);
            matmul_into(&a, &b, &mut c, s, s, s);
        });
        let t_seed = time_best(reps.min(3), || {
            c.iter_mut().for_each(|v| *v = 0.0);
            seed_matmul_into(&a, &b, &mut c, s, s, s);
        });
        let speedup = t_seed / t_new;
        if s == 1024 {
            speedup_1024 = speedup;
        }
        println!(
            "matmul {s}x{s}x{s}: new {:.2} GFLOP/s, seed {:.2} GFLOP/s, speedup {:.2}x",
            flops / t_new / 1e9,
            flops / t_seed / 1e9,
            speedup
        );
        rows.push(serde_json::json!({
            "size": s as u64,
            "new_gflops": flops / t_new / 1e9,
            "seed_gflops": flops / t_seed / 1e9,
            "speedup": speedup,
        }));
    }
    (rows, speedup_1024)
}

/// Per-backend serial GEMM throughput (DESIGN.md §4f): every supported
/// backend at each size, forced via `backend::force` (safe here — the
/// bench harness is single-threaded). Returns the rows plus the
/// auto-detected backend's 1024³ GFLOP/s for the smoke gate.
fn bench_matmul_backends(sizes: &[usize]) -> (Vec<Value>, f64) {
    let detected = backend::active_kind();
    let mut rows = Vec::new();
    let mut detected_1024 = 0.0f64;
    for &s in sizes {
        let mut rng = StdRng::seed_from_u64(42);
        let a: Vec<f32> = (0..s * s).map(|_| rng.gen_range(-1.0f32..1.0)).collect();
        let b: Vec<f32> = (0..s * s).map(|_| rng.gen_range(-1.0f32..1.0)).collect();
        let mut c = vec![0.0f32; s * s];
        let flops = 2.0 * (s as f64).powi(3);
        let reps = if s >= 1024 { 5 } else { 7 };
        for kind in ALL_KINDS {
            if !kind.supported() {
                continue;
            }
            backend::force(Some(kind));
            let t = time_best(reps, || {
                c.iter_mut().for_each(|v| *v = 0.0);
                matmul_into_serial(&a, &b, &mut c, s, s, s);
            });
            backend::force(None);
            let gflops = flops / t / 1e9;
            if s == 1024 && kind == detected {
                detected_1024 = gflops;
            }
            println!(
                "matmul {s}x{s}x{s} [{}]: {gflops:.2} GFLOP/s{}",
                kind.name(),
                if kind == detected { " (detected)" } else { "" }
            );
            rows.push(serde_json::json!({
                "backend": kind.name(),
                "detected": kind == detected,
                "size": s as u64,
                "gflops": gflops,
            }));
        }
    }
    (rows, detected_1024)
}

/// GEMM scaling across backend × thread budget: the same `matmul_into`
/// under every supported backend at explicit thread counts, so the JSON
/// reports how SIMD width and parallelism compose instead of only the
/// ambient (often 1-thread CI) budget.
fn bench_matmul_threads() -> Vec<Value> {
    const S: usize = 512;
    let mut rng = StdRng::seed_from_u64(42);
    let a: Vec<f32> = (0..S * S).map(|_| rng.gen_range(-1.0f32..1.0)).collect();
    let b: Vec<f32> = (0..S * S).map(|_| rng.gen_range(-1.0f32..1.0)).collect();
    let mut c = vec![0.0f32; S * S];
    let flops = 2.0 * (S as f64).powi(3);
    let prev = par::max_threads();
    let mut rows = Vec::new();
    for kind in ALL_KINDS {
        if !kind.supported() {
            continue;
        }
        backend::force(Some(kind));
        let mut t_one = 0.0f64;
        for threads in [1usize, 2, 4] {
            par::set_max_threads(threads);
            let t = time_best(3, || {
                c.iter_mut().for_each(|v| *v = 0.0);
                matmul_into(&a, &b, &mut c, S, S, S);
            });
            if threads == 1 {
                t_one = t;
            }
            println!(
                "matmul {S}x{S}x{S} [{}] @ {threads} threads: {:.2} GFLOP/s, speedup {:.2}x vs 1 thread",
                kind.name(),
                flops / t / 1e9,
                t_one / t
            );
            rows.push(serde_json::json!({
                "backend": kind.name(),
                "size": S as u64,
                "threads": threads as u64,
                "gflops": flops / t / 1e9,
                "speedup_vs_one_thread": t_one / t,
            }));
        }
        backend::force(None);
    }
    par::set_max_threads(prev);
    rows
}

/// Reduction microbench: `dot`/`l2_norm` and their fused delta forms per
/// backend at paper-relevant vector lengths (a conv layer's filter bank,
/// a small model, a Cifar-scale model slice).
fn bench_vecops_reduce() -> Vec<Value> {
    let mut rows = Vec::new();
    for &d in &[256usize, 4_096, 65_536] {
        let mut rng = StdRng::seed_from_u64(9 + d as u64);
        let x: Vec<f32> = (0..d).map(|_| rng.gen_range(-1.0f32..1.0)).collect();
        let y: Vec<f32> = (0..d).map(|_| rng.gen_range(-1.0f32..1.0)).collect();
        let r: Vec<f32> = (0..d).map(|_| rng.gen_range(-1.0f32..1.0)).collect();
        // Repeat each timed call enough to rise above timer noise.
        let inner = (1 << 22) / d.max(1);
        let mut sink = 0.0f32;
        for kind in ALL_KINDS {
            if !kind.supported() {
                continue;
            }
            backend::force(Some(kind));
            let t_dot = time_best(3, || {
                for _ in 0..inner {
                    sink += vecops::dot(&x, &y);
                }
            }) / inner as f64;
            let t_l2 = time_best(3, || {
                for _ in 0..inner {
                    sink += vecops::l2_norm(&x);
                }
            }) / inner as f64;
            let t_dotd = time_best(3, || {
                for _ in 0..inner {
                    sink += vecops::dot_delta(&x, &y, &r);
                }
            }) / inner as f64;
            let t_l2d = time_best(3, || {
                for _ in 0..inner {
                    sink += vecops::l2_norm_delta(&x, &r);
                }
            }) / inner as f64;
            backend::force(None);
            // dot reads 2 vectors: 8 bytes per element per pass.
            let gbps = |t: f64, vecs: f64| (d as f64) * 4.0 * vecs / t / 1e9;
            println!(
                "vecops d={d} [{}]: dot {:.2} GB/s, l2 {:.2} GB/s, dot_delta {:.2} GB/s, l2_delta {:.2} GB/s",
                kind.name(),
                gbps(t_dot, 2.0),
                gbps(t_l2, 1.0),
                gbps(t_dotd, 3.0),
                gbps(t_l2d, 2.0),
            );
            rows.push(serde_json::json!({
                "backend": kind.name(),
                "d": d as u64,
                "dot_gbps": gbps(t_dot, 2.0),
                "l2_norm_gbps": gbps(t_l2, 1.0),
                "dot_delta_gbps": gbps(t_dotd, 3.0),
                "l2_norm_delta_gbps": gbps(t_l2d, 2.0),
            }));
        }
        assert!(sink.is_finite());
    }
    rows
}

fn bench_conv() -> Value {
    // Cifar-scale middle layer: batch 32, 8 -> 16 channels, 3x3 on 32x32.
    let (batch, cin, cout, hw) = (32usize, 8usize, 16usize, 32usize);
    let mut rng = StdRng::seed_from_u64(7);
    let mut conv = Conv2d::new(cin, cout, 3, 1, 1, &mut rng);
    let x = Tensor::uniform(vec![batch, cin, hw, hw], -1.0, 1.0, &mut rng);
    let y = conv.forward(&x).expect("conv forward");
    let g = Tensor::uniform(y.shape().to_vec(), -1.0, 1.0, &mut rng);

    let t_fwd = time_best(5, || {
        let _ = conv.forward(&x).expect("conv forward");
    });
    let t_bwd = time_best(5, || {
        let _ = conv.backward(&g).expect("conv backward");
    });
    println!(
        "conv fwd {:.1} samples/s, bwd {:.1} samples/s (batch {batch}, {cin}->{cout} ch, {hw}x{hw})",
        batch as f64 / t_fwd,
        batch as f64 / t_bwd
    );
    serde_json::json!({
        "batch": batch as u64,
        "in_channels": cin as u64,
        "out_channels": cout as u64,
        "spatial": hw as u64,
        "forward_samples_per_s": batch as f64 / t_fwd,
        "backward_samples_per_s": batch as f64 / t_bwd,
    })
}

fn bench_aggregation(n: usize, d: usize) -> Vec<Value> {
    let mut rng = StdRng::seed_from_u64(11);
    let updates: Vec<Vec<f32>> = (0..n)
        .map(|_| (0..d).map(|_| rng.gen_range(-1.0f32..1.0)).collect())
        .collect();
    let weights = vec![1.0f32; n];
    let rules: Vec<(&str, Box<dyn Defense>)> = vec![
        ("FedAvg", Box::new(FedAvg::new())),
        ("Krum", Box::new(Krum::new(10))),
        ("mKrum", Box::new(MultiKrum::with_default_m(10))),
        ("TRmean", Box::new(TrimmedMean::new(10))),
        ("Median", Box::new(Median::new())),
        ("Bulyan", Box::new(Bulyan::new(10))),
        ("FoolsGold", Box::new(FoolsGold::new())),
        ("NormBound", Box::new(NormBound::new(1.0))),
    ];
    let mut rows = Vec::new();
    for (name, rule) in &rules {
        let t = time_best(3, || {
            let _ = rule.aggregate(&updates, &weights).expect("aggregate");
        });
        println!("agg {name}: {:.1} ms (n={n}, d={d})", t * 1e3);
        rows.push(serde_json::json!({
            "rule": *name,
            "n": n as u64,
            "d": d as u64,
            "seconds": t,
        }));
    }
    rows
}

/// Deterministic per-client update for the n-sweep, generated on the fly
/// so the streaming benches never hold an O(n·d) cohort.
fn gen_update(buf: &mut [f32], client: usize) {
    let mut rng = StdRng::seed_from_u64(0xBEEF ^ client as u64);
    for v in buf.iter_mut() {
        *v = rng.gen_range(-1.0f32..1.0);
    }
}

/// Correctness gate for the streaming path, run before its timings mean
/// anything: streaming FedAvg must match batch FedAvg to rounding and be
/// bitwise reproducible across replays.
fn streaming_gate(d: usize) -> bool {
    let n = 500usize;
    let mut buf = vec![0.0f32; d];
    let updates: Vec<Vec<f32>> = (0..n)
        .map(|i| {
            gen_update(&mut buf, i);
            buf.clone()
        })
        .collect();
    let batch = FedAvg::new()
        .aggregate(&updates, &vec![1.0; n])
        .expect("batch fedavg");
    let run = || {
        let mut srv =
            StreamingServer::new(DefenseKind::FedAvg, d, StreamingConfig::default(), None)
                .expect("streaming server");
        for u in &updates {
            srv.submit_f32(u, 1.0);
        }
        srv.finalize().expect("streaming finalize").model
    };
    let (a, b) = (run(), run());
    let bitwise = a.iter().zip(&b).all(|(x, y)| x.to_bits() == y.to_bits());
    let close = a
        .iter()
        .zip(&batch.model)
        .all(|(x, y)| (x - y).abs() <= 1e-4 * y.abs().max(1.0));
    if !bitwise {
        eprintln!("FAIL: streaming FedAvg is not bitwise reproducible across replays");
    }
    if !close {
        eprintln!("FAIL: streaming FedAvg diverged from batch FedAvg beyond rounding");
    }
    bitwise && close
}

/// The §4e n-sweep: per-rule seconds and resident aggregation bytes as
/// the cohort grows at fixed `d`. The mean family streams (resident
/// O(shards·d), measured from the live server); the quadratic selection
/// family runs the blocked kernels over a materialized cohort (resident
/// O(B·n + B²), analytic, excluding the inherent n·d input).
fn bench_n_sweep(smoke: bool) -> Vec<Value> {
    const D: usize = 256;
    const TILE: usize = 128; // FoolsGold FG_TILE (crate-private)
    let stream_ns: &[usize] = if smoke {
        &[50, 500]
    } else {
        &[50, 5_000, 50_000]
    };
    let quad_ns: &[usize] = if smoke { &[50] } else { &[50, 1_000, 5_000] };
    let mut rows = Vec::new();
    let scfg = StreamingConfig::default();

    let stream_cases: &[(&str, DefenseKind, Codec)] = &[
        ("FedAvg", DefenseKind::FedAvg, Codec::F32),
        ("FedAvg", DefenseKind::FedAvg, Codec::F16),
        ("FedAvg", DefenseKind::FedAvg, Codec::I8),
        ("TRmean", DefenseKind::TrMean { trim: 2 }, Codec::F32),
        ("Median", DefenseKind::Median, Codec::F32),
        (
            "NormBound",
            DefenseKind::NormBound {
                max_norm_milli: 1000,
            },
            Codec::F32,
        ),
    ];
    let reference = vec![0.1f32; D];
    let mut buf = vec![0.0f32; D];
    // The mean family's server state is O(shards·d): residency must be
    // byte-identical at every n, or streaming has silently re-grown with
    // the cohort.
    let mut mean_resident: Option<usize> = None;
    for &n in stream_ns {
        for &(label, kind, codec) in stream_cases {
            let reps = if n >= 5_000 { 1 } else { 2 };
            let mut resident = 0usize;
            let t = time_best(reps, || {
                let r = matches!(kind, DefenseKind::NormBound { .. }).then(|| reference.clone());
                let mut srv = StreamingServer::new(kind, D, scfg, r).expect("streaming server");
                for i in 0..n {
                    gen_update(&mut buf, i);
                    if codec.is_f32() {
                        srv.submit_f32(&buf, 1.0);
                    } else {
                        let enc = quant::encode(codec, &buf);
                        srv.submit(&enc, 1.0);
                    }
                }
                resident = srv.resident_bytes();
                let _ = srv.finalize().expect("streaming finalize");
            });
            if !matches!(kind, DefenseKind::TrMean { .. } | DefenseKind::Median) {
                let expect = *mean_resident.get_or_insert(resident);
                assert_eq!(
                    resident, expect,
                    "mean-family aggregation residency grew with n (n={n})"
                );
            }
            println!(
                "n-sweep stream {label}/{}: n={n} d={D} {:.1} ms, resident {} B",
                codec.label(),
                t * 1e3,
                resident
            );
            rows.push(serde_json::json!({
                "family": "stream",
                "rule": label,
                "codec": codec.label(),
                "n": n as u64,
                "d": D as u64,
                "seconds": t,
                "resident_bytes": resident as u64,
            }));
        }
    }

    for &n in quad_ns {
        let updates: Vec<Vec<f32>> = (0..n)
            .map(|i| {
                gen_update(&mut buf, i);
                buf.clone()
            })
            .collect();
        let weights = vec![1.0f32; n];
        let f = 10usize.min(n.saturating_sub(3));
        let block = KRUM_ROW_BLOCK.min(n);
        let krum_resident = (block * n + 2 * n) * 4;
        let fg_tile = TILE.min(n);
        let fg_resident = (fg_tile * fg_tile + 4 * n) * 4;
        let theta = n - 2 * f;
        let bulyan_resident = if n <= 512 {
            (n * n + 2 * n + 3 * theta) * 4
        } else {
            (block * n + 2 * n + 3 * theta) * 4
        };
        let rules: Vec<(&str, Box<dyn Defense>, usize)> = vec![
            ("Krum", Box::new(Krum::new(f)), krum_resident),
            (
                "mKrum",
                Box::new(MultiKrum::with_default_m(f)),
                krum_resident,
            ),
            ("FoolsGold", Box::new(FoolsGold::new()), fg_resident),
            ("Bulyan", Box::new(Bulyan::new(f)), bulyan_resident),
        ];
        for (name, rule, resident) in &rules {
            let reps = if n >= 1_000 { 1 } else { 2 };
            let t = time_best(reps, || {
                let _ = rule.aggregate(&updates, &weights).expect("aggregate");
            });
            println!(
                "n-sweep blocked {name}: n={n} d={D} {:.1} ms, resident {} B (+ {} B input)",
                t * 1e3,
                resident,
                n * D * 4
            );
            rows.push(serde_json::json!({
                "family": "blocked",
                "rule": *name,
                "n": n as u64,
                "d": D as u64,
                "seconds": t,
                "resident_bytes": *resident as u64,
                "input_bytes": (n * D * 4) as u64,
            }));
        }
    }
    rows
}

/// Dispatch-overhead microbench: many small parallel jobs, where per-job
/// fixed cost (thread hand-off) dominates the arithmetic. Compares the
/// persistent worker pool against [`par::spawn_reference`] — the pre-pool
/// per-dispatch `thread::scope` implementation kept verbatim as the
/// baseline. Pins the thread budget to 4 (restored afterwards) so both
/// sides actually hand work to helpers; each dispatch is a 32x32x32 matmul
/// split into four row blocks.
fn bench_dispatch(smoke: bool) -> (Value, f64) {
    const S: usize = 32;
    const ROWS_PER_BLOCK: usize = 8;
    let dispatches = if smoke { 1_000 } else { 10_000 };
    let reps = if smoke { 2 } else { 3 };
    let threads = 4usize;
    let prev_budget = par::max_threads();
    par::set_max_threads(threads);

    let mut rng = StdRng::seed_from_u64(21);
    let a: Vec<f32> = (0..S * S).map(|_| rng.gen_range(-1.0f32..1.0)).collect();
    let b: Vec<f32> = (0..S * S).map(|_| rng.gen_range(-1.0f32..1.0)).collect();
    let mut c = vec![0.0f32; S * S];
    let block = |lo_block: usize, chunk: &mut [f32]| {
        chunk.fill(0.0);
        let lo = lo_block * ROWS_PER_BLOCK;
        let rows = chunk.len() / S;
        matmul_into_serial(&a[lo * S..(lo + rows) * S], &b, chunk, rows, S, S);
    };

    // Both dispatch paths must agree bitwise with the serial kernel before
    // their timings mean anything.
    let mut c_serial = vec![0.0f32; S * S];
    matmul_into_serial(&a, &b, &mut c_serial, S, S, S);
    par::for_each_chunk_mut(&mut c, ROWS_PER_BLOCK * S, block);
    assert!(
        c.iter()
            .zip(&c_serial)
            .all(|(x, y)| x.to_bits() == y.to_bits()),
        "pool dispatch diverged from serial"
    );
    c.fill(1.0);
    par::spawn_reference::for_each_chunk_mut(&mut c, ROWS_PER_BLOCK * S, block);
    assert!(
        c.iter()
            .zip(&c_serial)
            .all(|(x, y)| x.to_bits() == y.to_bits()),
        "spawn-reference dispatch diverged from serial"
    );

    let t_pool = time_best(reps, || {
        for _ in 0..dispatches {
            par::for_each_chunk_mut(&mut c, ROWS_PER_BLOCK * S, block);
        }
    });
    let t_spawn = time_best(reps, || {
        for _ in 0..dispatches {
            par::spawn_reference::for_each_chunk_mut(&mut c, ROWS_PER_BLOCK * S, block);
        }
    });
    par::set_max_threads(prev_budget);

    let speedup = t_spawn / t_pool;
    println!(
        "dispatch ({dispatches} x {S}x{S}x{S} matmul, {threads} threads): \
         pool {:.2} us/dispatch, spawn {:.2} us/dispatch, speedup {:.2}x",
        t_pool / dispatches as f64 * 1e6,
        t_spawn / dispatches as f64 * 1e6,
        speedup
    );
    let row = serde_json::json!({
        "dispatches": dispatches as u64,
        "threads": threads as u64,
        "matmul_size": S as u64,
        "pool_seconds": t_pool,
        "spawn_seconds": t_spawn,
        "pool_us_per_dispatch": t_pool / dispatches as f64 * 1e6,
        "spawn_us_per_dispatch": t_spawn / dispatches as f64 * 1e6,
        "speedup_vs_spawn": speedup,
    });
    (row, speedup)
}

fn fashion_task(set_size: usize) -> TaskInfo {
    let spec = SynthSpec::fashion_like();
    TaskInfo {
        channels: spec.channels,
        height: spec.height,
        width: spec.width,
        num_classes: spec.num_classes,
        synth_set_size: set_size,
        local_lr: 0.08,
        local_batch: 16,
        local_epochs: 1,
    }
}

/// The paper's Sec. IV-E complexity claims, measured: the adversary's
/// per-round synthetic-set crafting (ZKA-R's O(|S| J² Q I²), ZKA-G's
/// O(|S| (P + Q) I²)) stays within a small factor of a benign client's
/// local epoch. Formerly a criterion bench (`benches/micro.rs`), folded
/// into this JSON so the numbers land next to the kernel timings.
fn bench_complexity() -> Value {
    let set_size = 20usize;
    let spec = SynthSpec::fashion_like();
    let data = Dataset::synthesize(&spec, set_size, 1);
    let idx: Vec<usize> = (0..set_size).collect();
    let t_benign = time_best(3, || {
        let mut rng = StdRng::seed_from_u64(2);
        let mut model = TaskKind::Fashion.build_model(&mut rng);
        for batch in data.shuffled_batches(&idx, 16, &mut rng) {
            model
                .train_step(&batch.images, 0.08, |lg| {
                    softmax_cross_entropy_hard(lg, &batch.labels)
                })
                .expect("train step");
        }
    });

    let task = fashion_task(set_size);
    let t_zka_r = time_best(2, || {
        let mut rng = StdRng::seed_from_u64(3);
        let mut global = TaskKind::Fashion.build_model(&mut rng);
        let _ = ZkaR::new(ZkaConfig::paper())
            .synthesize(&mut global, &task, &mut rng)
            .expect("zka-r synthesize");
    });
    let t_zka_g = time_best(2, || {
        let mut rng = StdRng::seed_from_u64(4);
        let mut global = TaskKind::Fashion.build_model(&mut rng);
        let _ = ZkaG::new(ZkaConfig::paper())
            .synthesize(&mut global, &task, 0, &mut rng)
            .expect("zka-g synthesize");
    });
    println!(
        "complexity (|S|={set_size}, fashion): benign epoch {:.3} s, \
         zka-r {:.3} s ({:.1}x), zka-g {:.3} s ({:.1}x)",
        t_benign,
        t_zka_r,
        t_zka_r / t_benign,
        t_zka_g,
        t_zka_g / t_benign
    );
    serde_json::json!({
        "set_size": set_size as u64,
        "benign_local_epoch_s": t_benign,
        "zka_r_synthesize_s": t_zka_r,
        "zka_g_synthesize_s": t_zka_g,
        "zka_r_over_benign": t_zka_r / t_benign,
        "zka_g_over_benign": t_zka_g / t_benign,
    })
}

fn bench_fl_round() -> Value {
    let cfg = FlConfig::builder(TaskKind::Fashion)
        .rounds(1)
        .n_clients(12)
        .clients_per_round(6)
        .train_size(240)
        .test_size(80)
        .synth_set_size(6)
        .seed(5)
        .build();
    let t = time_best(2, || {
        let _ = simulate(&cfg).expect("fl round");
    });
    println!("fl round: {:.2} s (fashion, 6 clients)", t);
    serde_json::json!({
        "task": "fashion",
        "clients_per_round": 6u64,
        "seconds": t,
    })
}

fn main() {
    let smoke = std::env::args().any(|a| a == "--smoke");
    if smoke {
        // CI regression gate: dispatch overhead + reduced n-sweep with
        // the streaming correctness checks, no JSON rewrite.
        let (_, speedup) = bench_dispatch(true);
        if speedup < 1.3 {
            eprintln!("FAIL: pool dispatch speedup {speedup:.2}x < 1.3x vs per-dispatch spawn");
            std::process::exit(1);
        }
        if !streaming_gate(256) {
            std::process::exit(1);
        }
        let _ = bench_n_sweep(true);
        // SIMD-dispatch gate (DESIGN.md §4f): on hosts where CPUID finds
        // a SIMD backend, its 1024³ GEMM must beat the committed
        // autovectorized `target-cpu=native` number — runtime dispatch
        // must not cost throughput vs the old static build. Scalar-only
        // hosts skip the gate (there the portable build is the baseline).
        let detected = backend::active_kind();
        if detected == Kind::Scalar {
            println!("smoke: scalar-only host, skipping SIMD GEMM gate");
        } else {
            let (_, detected_1024) = bench_matmul_backends(&[1024]);
            if detected_1024 < COMMITTED_AUTOVEC_1024_GFLOPS {
                eprintln!(
                    "FAIL: detected backend {} 1024^3 GEMM {detected_1024:.2} GFLOP/s \
                     < committed autovectorized {COMMITTED_AUTOVEC_1024_GFLOPS} GFLOP/s",
                    detected.name()
                );
                std::process::exit(1);
            }
            println!(
                "smoke: {} 1024^3 GEMM {detected_1024:.2} GFLOP/s >= committed {COMMITTED_AUTOVEC_1024_GFLOPS}",
                detected.name()
            );
        }
        println!("smoke ok: pool dispatch {speedup:.2}x vs per-dispatch spawn, n-sweep ran");
        return;
    }
    println!("backend: {} (detected)", backend::active().name());
    println!("threads: {}", par::max_threads());
    if !streaming_gate(256) {
        std::process::exit(1);
    }
    // Backend comparison first: the committed per-backend GFLOP/s (and
    // the committed gate number they are read against) are captured on a
    // cold package, before the longer sections below pull the clock down.
    let (matmul_backends, _) = bench_matmul_backends(&[256, 1024]);
    let (matmul_rows, speedup_1024) = bench_matmul(&[256, 512, 1024]);
    let matmul_threads = bench_matmul_threads();
    let vecops_reduce = bench_vecops_reduce();
    let conv = bench_conv();
    let agg = bench_aggregation(50, 100_000);
    let n_sweep = bench_n_sweep(false);
    let fl_round = bench_fl_round();
    let (dispatch, dispatch_speedup) = bench_dispatch(false);
    let complexity = bench_complexity();
    let out = serde_json::json!({
        "threads": par::max_threads() as u64,
        "backend_detected": backend::active().name(),
        "matmul": matmul_rows,
        "matmul_1024_speedup_vs_seed": speedup_1024,
        "matmul_backends": matmul_backends,
        "matmul_threads": matmul_threads,
        "vecops_reduce": vecops_reduce,
        "conv": conv,
        "aggregation": agg,
        "n_sweep": n_sweep,
        "fl_round": fl_round,
        "dispatch": dispatch,
        "complexity": complexity,
    });
    let json = serde_json::to_string_pretty(&out).expect("serialize");
    std::fs::write("BENCH_kernels.json", &json).expect("write BENCH_kernels.json");
    println!("wrote BENCH_kernels.json (dispatch speedup {dispatch_speedup:.2}x)");
}
