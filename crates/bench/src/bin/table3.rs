//! Table III: ASR under varying data heterogeneity β ∈ {0.1, 0.5, 0.9},
//! Bulyan defense (the paper's most aggressive rule), both datasets.

use fabflip_agg::DefenseKind;
use fabflip_bench::{render_table, save_json, BenchOpts, CellCache};
use fabflip_fl::{AttackSpec, FlConfig, TaskKind};

fn main() {
    let opts = BenchOpts::from_args();
    let mut cache = CellCache::open(&opts.out_dir);
    let mut all = Vec::new();
    let mut rows = Vec::new();
    for task in [TaskKind::Fashion, TaskKind::Cifar] {
        for beta in [0.1f64, 0.5, 0.9] {
            let mut row = vec![task.label().to_string(), format!("β = {beta}")];
            for attack in AttackSpec::paper_grid() {
                let cfg = opts.scale.shrink(
                    FlConfig::builder(task)
                        .defense(DefenseKind::Bulyan { f: 2 })
                        .attack(attack.clone())
                        .beta(beta)
                        .seed(1)
                        .build(),
                );
                let s = cache.run(&cfg, opts.repeats);
                row.push(format!("{:.2}", s.asr * 100.0));
                all.push(s);
            }
            rows.push(row);
        }
    }
    println!("\nTable III — ASR (%) vs heterogeneity (Bulyan defense)");
    println!(
        "{}",
        render_table(
            &[
                "Dataset",
                "Heterogeneity",
                "Fang",
                "LIE",
                "Min-Max",
                "ZKA-R",
                "ZKA-G"
            ],
            &rows
        )
    );
    save_json(&opts.out_dir, "table3.json", &all);
}
