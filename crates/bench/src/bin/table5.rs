//! Table V: ablation of the distance-based regularizer (Eq. 3) on
//! Fashion-MNIST — ASR and DPR with λ = 0 vs the paper's λ.

use fabflip::ZkaConfig;
use fabflip_agg::DefenseKind;
use fabflip_bench::{render_table, save_json, BenchOpts, CellCache};
use fabflip_fl::{AttackSpec, FlConfig, TaskKind};

fn main() {
    let opts = BenchOpts::from_args();
    let mut cache = CellCache::open(&opts.out_dir);
    let mut all = Vec::new();
    let mut rows = Vec::new();
    for (name, make) in [
        (
            "ZKA-R",
            (|cfg: ZkaConfig| AttackSpec::ZkaR { cfg }) as fn(ZkaConfig) -> AttackSpec,
        ),
        ("ZKA-G", |cfg: ZkaConfig| AttackSpec::ZkaG { cfg }),
    ] {
        for defense in DefenseKind::paper_grid(2) {
            let mut row = vec![name.to_string(), defense.label().to_string()];
            for zcfg in [ZkaConfig::without_regularization(), ZkaConfig::paper()] {
                let cfg = opts.scale.shrink(
                    FlConfig::builder(TaskKind::Fashion)
                        .defense(defense)
                        .attack(make(zcfg))
                        .seed(1)
                        .build(),
                );
                let s = cache.run(&cfg, opts.repeats);
                row.push(format!("{:.2}", s.asr * 100.0));
                row.push(s.dpr_display());
                all.push(s);
            }
            rows.push(row);
        }
    }
    println!("\nTable V — distance-regularizer ablation, Fashion-MNIST (ASR %, DPR %)");
    println!(
        "{}",
        render_table(
            &[
                "Attack",
                "Defense",
                "no-reg ASR",
                "no-reg DPR",
                "reg ASR",
                "reg DPR"
            ],
            &rows
        )
    );
    save_json(&opts.out_dir, "table5.json", &all);
}
