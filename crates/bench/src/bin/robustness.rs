//! Robustness appendix (DESIGN.md §4d): graceful degradation under the
//! deterministic fault plan. For every defense × attack × fault profile,
//! run the simulation and report accuracy, skipped rounds, and the full
//! fault ledger — asserting that every round's counters reconcile to the
//! cohort size (no client silently unaccounted).

use fabflip_agg::DefenseKind;
use fabflip_bench::{render_table, save_json, BenchOpts};
use fabflip_fl::{simulate, AttackSpec, FaultPlan, FlConfig, StragglerPolicy, TaskKind};
use serde::Serialize;

#[derive(Debug, Serialize)]
struct RobustnessRow {
    defense: String,
    attack: String,
    faults: String,
    acc_max: f32,
    skipped_rounds: usize,
    delivered: usize,
    dropped: usize,
    straggling: usize,
    quarantined: usize,
    offline: usize,
    diverged: usize,
    reconciled: bool,
}

fn fault_profiles() -> Vec<(&'static str, FaultPlan)> {
    let mut mixed = FaultPlan {
        dropout: 0.2,
        straggler: 0.1,
        malformed: 0.05,
        ..FaultPlan::default()
    };
    mixed.straggler_policy = StragglerPolicy::Stale {
        discount_milli: 500,
    };
    vec![
        ("none", FaultPlan::default()),
        ("dropout-0.2", FaultPlan::dropout_only(0.2)),
        ("mixed-0.2/0.1/0.05", mixed),
    ]
}

fn main() {
    let opts = BenchOpts::from_args();
    let defenses = [
        DefenseKind::FedAvg,
        DefenseKind::MKrum { f: 2 },
        DefenseKind::Median,
        DefenseKind::Bulyan { f: 2 },
    ];
    let attacks = [AttackSpec::None, AttackSpec::RandomWeights];
    let mut rows = Vec::new();
    let mut table = Vec::new();
    for defense in defenses {
        for attack in &attacks {
            for (fault_label, plan) in fault_profiles() {
                let cfg = opts.scale.shrink(
                    FlConfig::builder(TaskKind::Fashion)
                        .defense(defense)
                        .attack(attack.clone())
                        .faults(plan)
                        .seed(1)
                        .build(),
                );
                let t0 = std::time::Instant::now();
                let r = simulate(&cfg).expect("faulted simulation must degrade, not fail");
                let reconciled = r
                    .rounds
                    .iter()
                    .all(|rec| rec.reconciles(cfg.clients_per_round));
                assert!(
                    reconciled,
                    "fault ledger failed to reconcile: {:?} / {:?} / {fault_label}",
                    defense, attack
                );
                let row = RobustnessRow {
                    defense: defense.label().to_string(),
                    attack: attack.label().to_string(),
                    faults: fault_label.to_string(),
                    acc_max: r.max_accuracy(),
                    skipped_rounds: r.skipped_rounds(),
                    delivered: r.rounds.iter().map(|x| x.delivered).sum(),
                    dropped: r.rounds.iter().map(|x| x.dropped).sum(),
                    straggling: r.rounds.iter().map(|x| x.straggling).sum(),
                    quarantined: r
                        .rounds
                        .iter()
                        .map(|x| x.quarantined + x.stale_quarantined)
                        .sum(),
                    offline: r.rounds.iter().map(|x| x.offline).sum(),
                    diverged: r.rounds.iter().map(|x| x.diverged).sum(),
                    reconciled,
                };
                eprintln!(
                    "  [cell] {} / {} / {fault_label} → acc {:.3}, skipped {}, \
                     dropped {}, quarantined {} ({:.0}s)",
                    row.defense,
                    row.attack,
                    row.acc_max,
                    row.skipped_rounds,
                    row.dropped,
                    row.quarantined,
                    t0.elapsed().as_secs_f32()
                );
                table.push(vec![
                    row.defense.clone(),
                    row.attack.clone(),
                    row.faults.clone(),
                    format!("{:.3}", row.acc_max),
                    row.skipped_rounds.to_string(),
                    row.dropped.to_string(),
                    row.quarantined.to_string(),
                ]);
                rows.push(row);
            }
        }
    }
    println!("\nRobustness — graceful degradation under the fault plan");
    println!(
        "{}",
        render_table(
            &["Defense", "Attack", "Faults", "acc_max", "Skipped", "Dropped", "Quarant."],
            &table
        )
    );
    save_json(&opts.out_dir, "robustness.json", &rows);
}
