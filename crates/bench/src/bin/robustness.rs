//! Robustness appendix (DESIGN.md §4d): graceful degradation under the
//! deterministic fault plan. For every defense × attack × fault profile,
//! run the simulation and report accuracy, skipped rounds, and the full
//! fault ledger — asserting that every round's counters reconcile to the
//! cohort size (no client silently unaccounted).

use fabflip_agg::DefenseKind;
use fabflip_bench::{render_table, save_json, BenchOpts};
use fabflip_fl::{simulate, AttackSpec, FaultPlan, FlConfig, StragglerPolicy, TaskKind};
use fabflip_serve::chaos::{ChaosProfile, ChaosProxy};
use fabflip_serve::loadgen::{run_load, LoadGenOptions};
use fabflip_serve::server::{spawn, ServeOptions};
use serde::Serialize;
use std::time::Duration;

#[derive(Debug, Serialize)]
struct RobustnessRow {
    defense: String,
    attack: String,
    faults: String,
    acc_max: f32,
    skipped_rounds: usize,
    delivered: usize,
    dropped: usize,
    straggling: usize,
    quarantined: usize,
    offline: usize,
    diverged: usize,
    reconciled: bool,
}

fn fault_profiles() -> Vec<(&'static str, FaultPlan)> {
    let mut mixed = FaultPlan {
        dropout: 0.2,
        straggler: 0.1,
        malformed: 0.05,
        ..FaultPlan::default()
    };
    mixed.straggler_policy = StragglerPolicy::Stale {
        discount_milli: 500,
    };
    vec![
        ("none", FaultPlan::default()),
        ("dropout-0.2", FaultPlan::dropout_only(0.2)),
        ("mixed-0.2/0.1/0.05", mixed),
    ]
}

/// Server-mode robustness (DESIGN.md §4g): run the loopback aggregation
/// server under the chaos proxy and require the wire path — quantized
/// transport, backpressure, retries and all — to land on the exact
/// batch-simulation model, bitwise.
#[derive(Debug, Serialize)]
struct ServeRow {
    chaos: String,
    rounds_closed: usize,
    accepted: u64,
    duplicates: u64,
    busy: u64,
    retries: u64,
    reconnects: u64,
    frames_injected: u64,
    bitwise_match: bool,
}

fn serve_mode_rows() -> Vec<ServeRow> {
    let cfg = FlConfig::builder(TaskKind::Fashion)
        .rounds(3)
        .n_clients(12)
        .clients_per_round(6)
        .train_size(240)
        .test_size(80)
        .synth_set_size(6)
        .attack(AttackSpec::Lie)
        .defense(DefenseKind::MKrum { f: 2 })
        .seed(7)
        .build();
    let batch = simulate(&cfg).expect("batch reference");
    let batch_bits: Vec<u32> = batch.final_model.iter().map(|w| w.to_bits()).collect();
    let mut rows = Vec::new();
    for (label, profile) in [
        ("off", ChaosProfile::off(7)),
        ("light-7", ChaosProfile::light(7)),
    ] {
        let dir = std::env::temp_dir().join(format!(
            "fabflip-bench-serve-{}-{label}",
            std::process::id()
        ));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).expect("scratch dir");
        let mut sopts = ServeOptions::new(cfg.clone(), &dir);
        sopts.workers = 2;
        sopts.queue_cap = 8;
        sopts.deadline = Duration::from_secs(60);
        sopts.io_timeout = Duration::from_secs(2);
        let t0 = std::time::Instant::now();
        let handle = spawn(sopts).expect("serve spawn");
        let mut proxy = ChaosProxy::spawn(handle.addr(), profile).expect("chaos proxy");
        let mut lopts = LoadGenOptions::new(cfg.clone(), proxy.addr());
        lopts.io_timeout = Duration::from_secs(2);
        let report = run_load(&lopts).expect("load generator");
        let frames_injected = proxy.stats().injected();
        handle.stop();
        let records = handle.join().expect("serve shutdown");
        proxy.shutdown();
        let _ = std::fs::remove_dir_all(&dir);
        let row = ServeRow {
            chaos: label.to_string(),
            rounds_closed: records.len(),
            accepted: report.accepted,
            duplicates: report.duplicates,
            busy: report.busy,
            retries: report.retries,
            reconnects: report.reconnects,
            frames_injected,
            bitwise_match: report.final_global_bits == batch_bits,
        };
        assert!(
            row.bitwise_match,
            "serve-mode model diverged from batch under chaos={label}"
        );
        assert_eq!(
            records, batch.rounds,
            "serve-mode transcript diverged from batch under chaos={label}"
        );
        eprintln!(
            "  [serve] chaos={label} → {} rounds, {} accepted, {} busy, \
             {} injected, bitwise ok ({:.0}s)",
            row.rounds_closed,
            row.accepted,
            row.busy,
            row.frames_injected,
            t0.elapsed().as_secs_f32()
        );
        rows.push(row);
    }
    rows
}

fn main() {
    let opts = BenchOpts::from_args();
    let defenses = [
        DefenseKind::FedAvg,
        DefenseKind::MKrum { f: 2 },
        DefenseKind::Median,
        DefenseKind::Bulyan { f: 2 },
    ];
    let attacks = [AttackSpec::None, AttackSpec::RandomWeights];
    let mut rows = Vec::new();
    let mut table = Vec::new();
    for defense in defenses {
        for attack in &attacks {
            for (fault_label, plan) in fault_profiles() {
                let cfg = opts.scale.shrink(
                    FlConfig::builder(TaskKind::Fashion)
                        .defense(defense)
                        .attack(attack.clone())
                        .faults(plan)
                        .seed(1)
                        .build(),
                );
                let t0 = std::time::Instant::now();
                let r = simulate(&cfg).expect("faulted simulation must degrade, not fail");
                let reconciled = r
                    .rounds
                    .iter()
                    .all(|rec| rec.reconciles(cfg.clients_per_round));
                assert!(
                    reconciled,
                    "fault ledger failed to reconcile: {:?} / {:?} / {fault_label}",
                    defense, attack
                );
                let row = RobustnessRow {
                    defense: defense.label().to_string(),
                    attack: attack.label().to_string(),
                    faults: fault_label.to_string(),
                    acc_max: r.max_accuracy(),
                    skipped_rounds: r.skipped_rounds(),
                    delivered: r.rounds.iter().map(|x| x.delivered).sum(),
                    dropped: r.rounds.iter().map(|x| x.dropped).sum(),
                    straggling: r.rounds.iter().map(|x| x.straggling).sum(),
                    quarantined: r
                        .rounds
                        .iter()
                        .map(|x| x.quarantined + x.stale_quarantined)
                        .sum(),
                    offline: r.rounds.iter().map(|x| x.offline).sum(),
                    diverged: r.rounds.iter().map(|x| x.diverged).sum(),
                    reconciled,
                };
                eprintln!(
                    "  [cell] {} / {} / {fault_label} → acc {:.3}, skipped {}, \
                     dropped {}, quarantined {} ({:.0}s)",
                    row.defense,
                    row.attack,
                    row.acc_max,
                    row.skipped_rounds,
                    row.dropped,
                    row.quarantined,
                    t0.elapsed().as_secs_f32()
                );
                table.push(vec![
                    row.defense.clone(),
                    row.attack.clone(),
                    row.faults.clone(),
                    format!("{:.3}", row.acc_max),
                    row.skipped_rounds.to_string(),
                    row.dropped.to_string(),
                    row.quarantined.to_string(),
                ]);
                rows.push(row);
            }
        }
    }
    println!("\nRobustness — graceful degradation under the fault plan");
    println!(
        "{}",
        render_table(
            &["Defense", "Attack", "Faults", "acc_max", "Skipped", "Dropped", "Quarant."],
            &table
        )
    );
    save_json(&opts.out_dir, "robustness.json", &rows);

    let serve_rows = serve_mode_rows();
    let serve_table: Vec<Vec<String>> = serve_rows
        .iter()
        .map(|r| {
            vec![
                r.chaos.clone(),
                r.rounds_closed.to_string(),
                r.accepted.to_string(),
                r.duplicates.to_string(),
                r.busy.to_string(),
                r.retries.to_string(),
                r.frames_injected.to_string(),
                if r.bitwise_match { "yes" } else { "NO" }.to_string(),
            ]
        })
        .collect();
    println!("\nServer mode — loopback serve vs batch, bitwise (chaos proxy)");
    println!(
        "{}",
        render_table(
            &["Chaos", "Rounds", "Accepted", "Dup", "Busy", "Retries", "Injected", "Bitwise"],
            &serve_table
        )
    );
    save_json(&opts.out_dir, "robustness_serve.json", &serve_rows);
}
