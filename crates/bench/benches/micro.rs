//! Criterion micro-benchmarks for the paper's Sec. IV-E complexity claims:
//! the adversary's per-round crafting cost is within a small factor of a
//! benign client's local training, and the per-rule aggregation cost.

use criterion::{criterion_group, criterion_main, Criterion};
use fabflip::{ZkaConfig, ZkaG, ZkaR};
use fabflip_agg::{Bulyan, Defense, FedAvg, Median, MultiKrum, TrimmedMean};
use fabflip_attacks::TaskInfo;
use fabflip_data::{Dataset, SynthSpec};
use fabflip_fl::TaskKind;
use fabflip_nn::losses::softmax_cross_entropy_hard;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::hint::black_box;

fn fashion_task(set_size: usize) -> TaskInfo {
    let spec = SynthSpec::fashion_like();
    TaskInfo {
        channels: spec.channels,
        height: spec.height,
        width: spec.width,
        num_classes: spec.num_classes,
        synth_set_size: set_size,
        local_lr: 0.08,
        local_batch: 16,
        local_epochs: 1,
    }
}

/// A benign client's whole local round: one epoch over a 20-image shard.
fn bench_benign_local_epoch(c: &mut Criterion) {
    let spec = SynthSpec::fashion_like();
    let data = Dataset::synthesize(&spec, 20, 1);
    let idx: Vec<usize> = (0..20).collect();
    c.bench_function("benign_local_epoch_fashion", |b| {
        b.iter(|| {
            let mut rng = StdRng::seed_from_u64(2);
            let mut model = TaskKind::Fashion.build_model(&mut rng);
            for batch in data.shuffled_batches(&idx, 16, &mut rng) {
                model
                    .train_step(&batch.images, 0.08, |lg| {
                        softmax_cross_entropy_hard(lg, &batch.labels)
                    })
                    .unwrap();
            }
            black_box(model.flat_params().len())
        })
    });
}

/// ZKA-R synthetic-set generation (|S| = 20, E = 5), Sec. IV-E's
/// O(|S| J² Q I²) term.
fn bench_zka_r_generation(c: &mut Criterion) {
    let task = fashion_task(20);
    c.bench_function("zka_r_synthesize_s20", |b| {
        b.iter(|| {
            let mut rng = StdRng::seed_from_u64(3);
            let mut global = TaskKind::Fashion.build_model(&mut rng);
            let (s, _) = ZkaR::new(ZkaConfig::paper())
                .synthesize(&mut global, &task, &mut rng)
                .unwrap();
            black_box(s.len())
        })
    });
}

/// ZKA-G synthetic-set generation (|S| = 20, E = 5), Sec. IV-E's
/// O(|S| (P + Q) I²) term.
fn bench_zka_g_generation(c: &mut Criterion) {
    let task = fashion_task(20);
    c.bench_function("zka_g_synthesize_s20", |b| {
        b.iter(|| {
            let mut rng = StdRng::seed_from_u64(4);
            let mut global = TaskKind::Fashion.build_model(&mut rng);
            let (s, _) = ZkaG::new(ZkaConfig::paper())
                .synthesize(&mut global, &task, 0, &mut rng)
                .unwrap();
            black_box(s.len())
        })
    });
}

/// Server-side aggregation cost per rule, 10 updates of fashion-model size.
fn bench_defenses(c: &mut Criterion) {
    let mut rng = StdRng::seed_from_u64(5);
    let mut model = {
        let mut r = StdRng::seed_from_u64(0);
        TaskKind::Fashion.build_model(&mut r)
    };
    let d = model.num_params();
    let updates: Vec<Vec<f32>> = (0..10)
        .map(|_| (0..d).map(|_| rng.gen_range(-0.1..0.1)).collect())
        .collect();
    let weights = vec![20.0f32; 10];
    let rules: Vec<(&str, Box<dyn Defense>)> = vec![
        ("fedavg", Box::new(FedAvg::new())),
        ("mkrum", Box::new(MultiKrum::with_default_m(2))),
        ("trmean", Box::new(TrimmedMean::new(2))),
        ("median", Box::new(Median::new())),
        ("bulyan", Box::new(Bulyan::new(2))),
    ];
    let mut group = c.benchmark_group("aggregate_10x_fashion_model");
    for (name, rule) in &rules {
        group.bench_function(name, |b| {
            b.iter(|| black_box(rule.aggregate(&updates, &weights).unwrap().model.len()))
        });
    }
    group.finish();
}

fn config() -> Criterion {
    Criterion::default().sample_size(10)
}

criterion_group! {
    name = benches;
    config = config();
    targets = bench_benign_local_epoch, bench_zka_r_generation, bench_zka_g_generation, bench_defenses
}
criterion_main!(benches);
