use std::fmt;

/// Error type for aggregation rules.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum AggError {
    /// No (finite) updates were available to aggregate.
    NoUpdates,
    /// Updates (or the weight vector) had inconsistent lengths.
    LengthMismatch {
        /// Length of the first update / expected length.
        expected: usize,
        /// Offending length encountered.
        actual: usize,
    },
    /// The rule's robustness precondition on the number of updates failed
    /// (e.g. Krum needs `n >= f + 3`).
    TooFewUpdates {
        /// Name of the rule.
        rule: &'static str,
        /// Minimum required number of updates.
        needed: usize,
        /// Number of updates provided (after non-finite filtering).
        got: usize,
    },
    /// A rule parameter was invalid at construction time.
    InvalidParameter(String),
}

impl fmt::Display for AggError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AggError::NoUpdates => write!(f, "no finite updates to aggregate"),
            AggError::LengthMismatch { expected, actual } => {
                write!(f, "update length {actual} differs from expected {expected}")
            }
            AggError::TooFewUpdates { rule, needed, got } => {
                write!(f, "`{rule}` needs at least {needed} updates, got {got}")
            }
            AggError::InvalidParameter(msg) => write!(f, "invalid parameter: {msg}"),
        }
    }
}

impl std::error::Error for AggError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_variants() {
        assert!(AggError::NoUpdates.to_string().contains("no finite"));
        assert!(AggError::LengthMismatch {
            expected: 2,
            actual: 3
        }
        .to_string()
        .contains('3'));
        assert!(AggError::TooFewUpdates {
            rule: "krum",
            needed: 4,
            got: 2
        }
        .to_string()
        .contains("krum"));
        assert!(AggError::InvalidParameter("f too big".into())
            .to_string()
            .contains("f too big"));
    }
}
