use crate::krum::{krum_scores, krum_scores_into};
use crate::types::finite_updates;
use crate::{AggError, Aggregation, Defense, Selection};
use fabflip_tensor::scratch::{scratch_f32, Purpose};
use fabflip_tensor::{par, vecops};

/// Minimum `coordinates × selected` work before stage 2 goes parallel.
const PAR_STAGE2_WORK: usize = 1 << 20;

/// Largest pool the exact iterative stage-1 selection handles. Up to this
/// size Bulyan materializes the dense `n × n` distance matrix and re-runs
/// Krum per selection round — the historical, bitwise-stable path. Above
/// it, stage 1 degrades to a single blocked Krum ranking (see
/// [`select_ranked`] and DESIGN.md §4e) so memory stays O(B·n).
pub const BULYAN_DENSE_MAX: usize = 512;

/// Bulyan's stage-2 coordinate kernel, allocation-free: for each
/// coordinate of `out` (coordinates `lo..lo + out.len()` of the model),
/// averages the `beta` values among `selected` closest to the
/// coordinate-wise median. `cols` is a `3 × selected.len()` workspace
/// (gather column, median sort, closeness sort).
///
/// Closeness ties break on the value itself — the sort key is the
/// lexicographic pair `(|v − median|, v)` — so the result is a pure
/// function of the column's *values*, independent of sort stability and
/// of the order updates arrived in.
///
/// # Panics
///
/// Panics when `cols.len() != 3 * selected.len()`, `beta` exceeds the
/// column length, or a coordinate index falls outside a selected update.
pub fn bulyan_coordinate_chunk(
    selected: &[&[f32]],
    lo: usize,
    out: &mut [f32],
    beta: usize,
    cols: &mut [f32],
) {
    let theta = selected.len();
    assert_eq!(cols.len(), 3 * theta, "bulyan: cols workspace is 3·θ");
    let (column, rest) = cols.split_at_mut(theta);
    let (sorted, by_closeness) = rest.split_at_mut(theta);
    for (i, out_v) in out.iter_mut().enumerate() {
        let coord = lo + i;
        for (slot, r) in column.iter_mut().zip(selected) {
            *slot = r[coord];
        }
        sorted.copy_from_slice(column);
        sorted.sort_unstable_by(|a, b| a.partial_cmp(b).unwrap_or(std::cmp::Ordering::Equal));
        let med = if theta % 2 == 1 {
            sorted[theta / 2]
        } else {
            0.5 * (sorted[theta / 2 - 1] + sorted[theta / 2])
        };
        // β values closest to the median, value tie-broken.
        by_closeness.copy_from_slice(column);
        by_closeness.sort_unstable_by(|a, b| {
            ((a - med).abs(), *a)
                .partial_cmp(&((b - med).abs(), *b))
                .unwrap_or(std::cmp::Ordering::Equal)
        });
        // fabcheck::allow(unordered_float_reduction): serial sum over the value-sorted prefix; iteration order is the sorted order, fixed
        *out_v = by_closeness[..beta].iter().sum::<f32>() / beta as f32;
    }
}

/// Exact stage-1 selection (pools of at most [`BULYAN_DENSE_MAX`]): the
/// flat pairwise distance matrix is computed once (parallel over rows
/// inside `vecops`) and each selection round re-scores the shrinking pool
/// from it with buffers reused across rounds, instead of recomputing all
/// O(n²·d) distances (and reallocating) per round. Returns `theta` local
/// indices in selection order.
fn select_iterative(refs: &[&[f32]], f: usize, theta: usize) -> Result<Vec<usize>, AggError> {
    let n = refs.len();
    let mut dists = vec![0.0f32; n * n];
    vecops::pairwise_sq_distances_into(refs, &mut dists);
    let mut pool: Vec<usize> = (0..n).collect(); // local indices
    let mut selected: Vec<usize> = Vec::with_capacity(theta);
    let mut scores_buf = vec![0.0f32; n];
    let mut row_buf = vec![0.0f32; n - 1];
    while selected.len() < theta {
        let m = pool.len();
        let scores = &mut scores_buf[..m];
        krum_scores_into(&dists, n, &pool, f, scores, &mut row_buf[..m - 1])?;
        let best_pos = scores
            .iter()
            .enumerate()
            .min_by(|a, b| a.1.partial_cmp(b.1).unwrap_or(std::cmp::Ordering::Equal))
            .map(|(i, _)| i)
            .expect("pool nonempty");
        selected.push(pool.remove(best_pos));
    }
    Ok(selected)
}

/// Large-pool stage-1 degradation (DESIGN.md §4e): one blocked Krum
/// scoring pass over the full pool, then the θ lowest-score updates by the
/// deterministic key `(score, index)`. This keeps resident memory at
/// O(B·n) — the iterative rule needs the dense O(n²) matrix *and* θ ≈ n
/// re-scoring rounds, both quadratic at million-client scale. The
/// selection set can differ from the iterative rule's (which re-scores
/// after each removal); stage 2 is unchanged and exact either way.
fn select_ranked(refs: &[&[f32]], f: usize, theta: usize) -> Result<Vec<usize>, AggError> {
    let scores = krum_scores(refs, f)?;
    let mut order: Vec<usize> = (0..refs.len()).collect();
    order.sort_unstable_by(|&a, &b| {
        (scores[a], a)
            .partial_cmp(&(scores[b], b))
            .unwrap_or(std::cmp::Ordering::Equal)
    });
    order.truncate(theta);
    Ok(order)
}

/// Bulyan (El Mhamdi et al., 2018): two-stage robust aggregation.
///
/// 1. **Selection** — iteratively run Krum, each time moving the
///    lowest-score update into the selection set `S` and removing it from
///    the pool, until `|S| = θ = n − 2f`. Pools above [`BULYAN_DENSE_MAX`]
///    switch to a single blocked Krum ranking (DESIGN.md §4e) so stage 1
///    never materializes the dense distance matrix.
/// 2. **Aggregation** — per coordinate, average the `β = θ − 2f` values of
///    `S` closest to the coordinate-wise median.
///
/// The paper calls Bulyan the most aggressive of its four defenses; with
/// `n = 10, f = 2` it keeps θ = 6 updates and averages the β = 2 most
/// median-like values per coordinate.
#[derive(Debug, Clone, Copy)]
pub struct Bulyan {
    f: usize,
}

impl Bulyan {
    /// Creates Bulyan tolerating `f` Byzantine clients.
    pub fn new(f: usize) -> Bulyan {
        Bulyan { f }
    }
}

impl Defense for Bulyan {
    fn aggregate(&self, updates: &[Vec<f32>], _weights: &[f32]) -> Result<Aggregation, AggError> {
        let v = finite_updates(updates)?;
        let (idx, refs) = (v.idx, v.refs);
        let n = refs.len();
        let f = self.f;
        // Need θ = n − 2f ≥ 1 and the Krum precondition on the *last*
        // selection round: pool size n − θ + 1 ≥ f + 3.
        let theta = n
            .checked_sub(2 * f)
            .filter(|&t| t >= 1)
            .ok_or(AggError::TooFewUpdates {
                rule: "bulyan",
                needed: 2 * f + 1,
                got: n,
            })?;
        let beta = theta.saturating_sub(2 * f).max(1);
        if n < theta + f + 2 {
            return Err(AggError::TooFewUpdates {
                rule: "bulyan",
                needed: theta + f + 2,
                got: n,
            });
        }

        // Stage 1: pick θ most-central updates. Small pools use the exact
        // iterative selection on a dense distance matrix; large pools use
        // one blocked ranking pass so nothing O(n²) is ever resident.
        let selected = if n <= BULYAN_DENSE_MAX {
            select_iterative(&refs, f, theta)?
        } else {
            select_ranked(&refs, f, theta)?
        };

        // Stage 2: per-coordinate trimmed mean around the median, in fixed
        // coordinate chunks (parallel above PAR_STAGE2_WORK) with the
        // column/sort workspace drawn from the executing thread's scratch
        // arena. Every coordinate is an independent pure function of the
        // selected column, so chunking cannot change results.
        let d = refs[0].len();
        let mut model = vec![0.0f32; d];
        let selected_refs: Vec<&[f32]> = selected.iter().map(|&i| refs[i]).collect();
        let stage2 = |chunk_idx: usize, out: &mut [f32]| {
            let mut cols = scratch_f32(Purpose::BulyanCols, 3 * theta);
            bulyan_coordinate_chunk(&selected_refs, chunk_idx * par::CHUNK, out, beta, &mut cols);
        };
        if d.saturating_mul(theta) < PAR_STAGE2_WORK || par::max_threads() == 1 {
            for (ci, chunk) in model.chunks_mut(par::CHUNK).enumerate() {
                stage2(ci, chunk);
            }
        } else {
            par::for_each_chunk_mut(&mut model, par::CHUNK, stage2);
        }

        let mut chosen: Vec<usize> = selected.iter().map(|&i| idx[i]).collect();
        chosen.sort_unstable();
        Ok(Aggregation {
            model,
            selection: Selection::Chosen(chosen),
            rejected_non_finite: v.rejected_non_finite,
            rejected_malformed: v.rejected_malformed,
        })
    }

    fn name(&self) -> &'static str {
        "Bulyan"
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn benign_cluster(n: usize) -> Vec<Vec<f32>> {
        (0..n)
            .map(|i| {
                let eps = (i as f32 * 0.713).sin() * 0.1;
                vec![1.0 + eps, -1.0 - eps, 0.5 + 0.5 * eps]
            })
            .collect()
    }

    #[test]
    fn excludes_large_outliers_from_selection() {
        let mut ups = benign_cluster(8);
        ups.push(vec![100.0, 100.0, 100.0]);
        ups.push(vec![-100.0, -100.0, -100.0]);
        let agg = Bulyan::new(2).aggregate(&ups, &[1.0; 10]).unwrap();
        match agg.selection {
            Selection::Chosen(ref c) => {
                assert_eq!(c.len(), 6); // θ = 10 − 4
                assert!(!c.contains(&8) && !c.contains(&9));
            }
            _ => panic!(),
        }
        assert!((agg.model[0] - 1.0).abs() < 0.2, "{:?}", agg.model);
    }

    #[test]
    fn paper_geometry_n10_f2() {
        let ups = benign_cluster(10);
        let agg = Bulyan::new(2).aggregate(&ups, &[1.0; 10]).unwrap();
        match agg.selection {
            Selection::Chosen(ref c) => assert_eq!(c.len(), 6),
            _ => panic!(),
        }
    }

    #[test]
    fn output_bounded_by_selected_values() {
        let ups = benign_cluster(10);
        let agg = Bulyan::new(2).aggregate(&ups, &[1.0; 10]).unwrap();
        for coord in 0..3 {
            let lo = ups.iter().map(|u| u[coord]).fold(f32::INFINITY, f32::min);
            let hi = ups
                .iter()
                .map(|u| u[coord])
                .fold(f32::NEG_INFINITY, f32::max);
            assert!(agg.model[coord] >= lo && agg.model[coord] <= hi);
        }
    }

    #[test]
    fn large_pool_ranked_selection_excludes_outliers() {
        // n > BULYAN_DENSE_MAX exercises the single-pass ranked stage 1.
        let f = 6;
        let n = BULYAN_DENSE_MAX + 10;
        let mut ups = benign_cluster(n - f);
        for i in 0..f {
            let s = if i % 2 == 0 { 200.0 } else { -200.0 };
            ups.push(vec![s, s, s]);
        }
        let agg = Bulyan::new(f).aggregate(&ups, &vec![1.0; n]).unwrap();
        match agg.selection {
            Selection::Chosen(ref c) => {
                assert_eq!(c.len(), n - 2 * f);
                for outlier in (n - f)..n {
                    assert!(!c.contains(&outlier), "outlier {outlier} selected");
                }
            }
            _ => panic!(),
        }
        assert!((agg.model[0] - 1.0).abs() < 0.2, "{:?}", &agg.model[..3]);
    }

    #[test]
    fn ranked_selection_breaks_score_ties_by_index() {
        // Identical updates share a score; the (score, index) key must
        // order them by index deterministically.
        let ups: Vec<Vec<f32>> = (0..8).map(|_| vec![1.0, -1.0, 0.5]).collect();
        let refs: Vec<&[f32]> = ups.iter().map(|u| u.as_slice()).collect();
        let sel = select_ranked(&refs, 1, 4).unwrap();
        assert_eq!(sel, vec![0, 1, 2, 3]);
    }

    #[test]
    fn too_few_updates_error() {
        // θ = n − 2f underflows at n = 4, f = 2.
        let ups = benign_cluster(4);
        assert!(matches!(
            Bulyan::new(2).aggregate(&ups, &[1.0; 4]),
            Err(AggError::TooFewUpdates { .. })
        ));
        // n = 5 is degenerate (θ = 1) but valid under the paper's relaxed
        // geometry (the paper itself runs n = 10 < 4f + 3): must succeed.
        let ups5 = benign_cluster(5);
        assert!(Bulyan::new(2).aggregate(&ups5, &[1.0; 5]).is_ok());
    }
}
